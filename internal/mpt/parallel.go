package mpt

import (
	"runtime"
	"sync"

	"dcert/internal/chash"
)

// Parallel dirty-subtree rehash. After a block commits, statedb recomputes
// the post-state root; on a trie with hundreds of dirty leaves that rehash
// is pure hash throughput and parallelizes cleanly, because the digest of a
// disjoint subtree depends only on its own content. The walk fans out at
// branch nodes within parallelHashLevels of the root, runs each dirty child
// subtree on a bounded process-wide worker pool, and merges bottom-up —
// producing exactly the digests a sequential walk computes.

const (
	// parallelHashLevels is how far below the root Hash keeps fanning out.
	// Two levels of 16-way branches expose up to 256 independent subtrees,
	// plenty to saturate any realistic core count.
	parallelHashLevels = 2
	// parallelDirtyMin is the minimum number of dirty nodes before the
	// fan-out pays for its goroutine overhead; smaller rehashes stay on the
	// caller's goroutine.
	parallelDirtyMin = 32
)

// hashSem bounds in-flight subtree hashing goroutines across every trie in
// the process, so concurrent commits (e.g. pipelined issuers) cannot
// oversubscribe the host.
var hashSem = make(chan struct{}, runtime.GOMAXPROCS(0))

// dirtyAtLeast reports whether at least min dirty nodes hang below n,
// walking only dirty regions and stopping as soon as the threshold is met.
func dirtyAtLeast(n node, min int) bool {
	return countDirty(n, min) >= min
}

// countDirty counts dirty nodes under n, short-circuiting at budget.
func countDirty(n node, budget int) int {
	if n == nil {
		return 0
	}
	if _, ok := n.cachedHash(); ok {
		return 0
	}
	count := 1
	switch v := n.(type) {
	case *extNode:
		count += countDirty(v.child, budget-count)
	case *branchNode:
		for _, c := range v.children {
			if count >= budget {
				return count
			}
			count += countDirty(c, budget-count)
		}
	}
	return count
}

// DirtyFanout reports how many independent dirty subtrees sit at the
// parallel fan-out frontier — the maximum worker count a Hash call can keep
// busy. The state bench uses it to model multi-core commit throughput from
// single-threaded measurements.
func (t *Trie) DirtyFanout() int {
	return dirtyFanout(t.root, 0)
}

func dirtyFanout(n node, level int) int {
	if n == nil {
		return 0
	}
	if _, ok := n.cachedHash(); ok {
		return 0
	}
	if level >= parallelHashLevels {
		return 1
	}
	switch v := n.(type) {
	case *extNode:
		return dirtyFanout(v.child, level)
	case *branchNode:
		count := 0
		for _, c := range v.children {
			count += dirtyFanout(c, level+1)
		}
		if count == 0 {
			return 1
		}
		return count
	default:
		return 1
	}
}

// hashPar is hashRec with bounded fan-out over the top branch levels.
func (t *Trie) hashPar(n node, level int) (chash.Hash, error) {
	if h, ok := n.cachedHash(); ok {
		return h, nil
	}
	switch v := n.(type) {
	case *extNode:
		// Extensions compress nibble runs; descend without consuming a
		// fan-out level so a branch right below still parallelizes.
		if _, err := t.hashPar(v.child, level); err != nil {
			return chash.Zero, err
		}
		raw, err := encodeNode(v)
		if err != nil {
			return chash.Zero, err
		}
		v.hash = chash.Sum(chash.DomainNode, raw)
		v.dirty = false
		return v.hash, nil
	case *branchNode:
		if level >= parallelHashLevels {
			return t.hashRec(v)
		}
		if err := t.hashChildren(v, level); err != nil {
			return chash.Zero, err
		}
		raw, err := encodeNode(v)
		if err != nil {
			return chash.Zero, err
		}
		v.hash = chash.Sum(chash.DomainNode, raw)
		v.dirty = false
		return v.hash, nil
	default:
		return t.hashRec(n)
	}
}

// hashChildren rehashes the dirty children of a branch, spawning a worker
// per child while pool slots are free and hashing inline otherwise. Children
// are disjoint subtrees, so workers share nothing; the WaitGroup join makes
// every child digest visible before the parent encodes them.
func (t *Trie) hashChildren(v *branchNode, level int) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for _, c := range v.children {
		if c == nil {
			continue
		}
		if _, ok := c.cachedHash(); ok {
			continue
		}
		select {
		case hashSem <- struct{}{}:
			wg.Add(1)
			go func(c node) {
				defer wg.Done()
				defer func() { <-hashSem }()
				if _, err := t.hashPar(c, level+1); err != nil {
					record(err)
				}
			}(c)
		default:
			// Pool saturated: hash on this goroutine instead of queueing,
			// which also keeps single-core hosts free of fan-out overhead.
			if _, err := t.hashPar(c, level+1); err != nil {
				record(err)
			}
		}
	}
	wg.Wait()
	return firstErr
}
