// Package network provides the simulated peer-to-peer message fabric that
// connects the DCert node roles (miner, certificate issuer, service
// provider, clients) in examples and integration tests. It is a topic-based
// publish/subscribe bus with optional simulated propagation latency and a
// deterministic fault-injection layer (seeded drop/duplicate/reorder/jitter
// rules plus healable topic partitions, see FaultPlan) — enough to exercise
// the certification workflow of Fig. 2 end to end, including its behavior
// under adversarial delivery, without real sockets.
package network

import (
	"errors"
	"sync"
	"time"
)

// Package errors.
var (
	// ErrClosed is returned when publishing on a closed network.
	ErrClosed = errors.New("network: closed")
)

// Well-known topics of the DCert certification workflow (Fig. 2).
const (
	// TopicBlocks carries newly proposed blocks (miner → everyone).
	TopicBlocks = "blocks"
	// TopicCerts carries block certificates (CI → clients).
	TopicCerts = "certs"
	// TopicIndexCerts carries index certificates (CI → clients).
	TopicIndexCerts = "index-certs"
	// TopicCertRequests carries clients' explicit catch-up requests for the
	// latest certificate (client → CIs) when the cert stream stalls.
	TopicCertRequests = "cert-requests"
)

// Message is one published datum.
type Message struct {
	// Topic is the channel the message was published on.
	Topic string
	// From identifies the publisher.
	From string
	// Payload is the message body (shared, treat as immutable).
	Payload any
}

// Network is an in-memory pub/sub fabric.
//
// Network is safe for concurrent use.
type Network struct {
	mu      sync.Mutex
	subs    map[string][]*Subscription
	latency time.Duration
	faults  *faultState
	obs     *netObs
	closed  bool
	wg      sync.WaitGroup
}

// Option configures a Network.
type Option func(*Network)

// WithLatency adds a fixed simulated propagation delay to every delivery.
func WithLatency(d time.Duration) Option {
	return func(n *Network) {
		n.latency = d
	}
}

// New creates a network fabric.
func New(opts ...Option) *Network {
	n := &Network{subs: make(map[string][]*Subscription)}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Subscription is one subscriber's inbound queue. It is minted either by
// Network.Subscribe (attached to the in-process fabric) or by
// NewDetachedSubscription (fed by a wire transport).
type Subscription struct {
	// C delivers messages in publish order (per publisher).
	C <-chan Message

	net      *Network // nil for detached subscriptions
	topic    string
	ch       chan Message
	cancel   sync.Once
	onCancel func() // transport teardown hook, nil when attached

	// mu guards closed so in-flight deliveries never race Cancel's close of
	// ch (a concurrent Publish must not send on a closed channel).
	mu     sync.Mutex
	closed bool
}

// Cancel removes the subscription and closes C.
func (s *Subscription) Cancel() {
	s.cancel.Do(func() {
		if s.net != nil {
			s.net.remove(s)
		}
		s.mu.Lock()
		s.closed = true
		close(s.ch)
		s.mu.Unlock()
		if s.onCancel != nil {
			s.onCancel()
		}
	})
}

// Subscribe registers for a topic with the given queue depth. Messages that
// would overflow a subscriber's queue are dropped for that subscriber (as a
// slow real peer would miss gossip).
func (n *Network) Subscribe(topic string, depth int) *Subscription {
	if depth < 1 {
		depth = 1
	}
	ch := make(chan Message, depth)
	s := &Subscription{C: ch, net: n, topic: topic, ch: ch}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.subs[topic] = append(n.subs[topic], s)
	return s
}

func (n *Network) remove(s *Subscription) {
	n.mu.Lock()
	defer n.mu.Unlock()
	list := n.subs[s.topic]
	for i, cur := range list {
		if cur == s {
			n.subs[s.topic] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Publish broadcasts a payload to all current subscribers of the topic.
// With a fault plan installed, the message may be dropped, duplicated,
// delayed, or reordered per the plan's matching rule — Publish still
// returns nil, as a real sender never learns what gossip did to a packet.
func (n *Network) Publish(topic, from string, payload any) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	targets := make([]*Subscription, len(n.subs[topic]))
	copy(targets, n.subs[topic])
	faults := n.faults
	o := n.obs
	n.mu.Unlock()

	copies := []delivery{{}}
	var v verdict
	if faults != nil {
		copies, v = faults.plan(topic, from)
	}
	o.record(topic, len(copies), v)

	msg := Message{Topic: topic, From: from, Payload: payload}
	for _, c := range copies {
		delay := n.latency + c.delay
		if delay == 0 {
			for _, s := range targets {
				s.Deliver(msg)
			}
			continue
		}
		n.wg.Add(1)
		time.AfterFunc(delay, func() {
			defer n.wg.Done()
			for _, s := range targets {
				s.Deliver(msg)
			}
		})
	}
	return nil
}

// Close stops the network: in-flight delayed deliveries flush, and further
// publishes fail.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}
