package dcert

import (
	"encoding/binary"
	"fmt"
	"time"

	"dcert/internal/attest"
	"dcert/internal/consensus"
	"dcert/internal/core"
	"dcert/internal/network"
	"dcert/internal/node"
	"dcert/internal/query"
	"dcert/internal/storage"
	"dcert/internal/storage/vfs"
	"dcert/internal/workload"
)

// The durability plane: a deployment configured with Storage journals every
// mined block, certificate, and state write set through the crash-safe
// engine in internal/storage. Killing the process (or pulling the plug —
// chaos plans inject disk faults under the vfs seam) and reopening the same
// data directory resumes the deployment at its certified tip: the miner,
// SP, and persistence replica rebuild from disk, and a fresh enclave
// resumes the certificate recursion from the persisted checkpoint, exactly
// as §4.3's re-certification argument requires — without re-signing any
// height at or below the checkpoint.

// StorageConfig attaches a durable data directory to a deployment.
type StorageConfig struct {
	// Dir is the data directory (created if missing).
	Dir string
	// FsyncInterval batches log fsyncs (group commit). Zero syncs every
	// append: each block is durable before mining continues.
	FsyncInterval time.Duration
	// SegmentBytes rotates chain-log segments (default 64 MiB).
	SegmentBytes int64
	// SnapshotEvery writes a state snapshot every N certified blocks
	// (default 4096).
	SnapshotEvery uint64
	// FS overrides the file system — the disk fault-injection seam. Nil
	// means the real OS.
	FS vfs.FS
}

func (s *StorageConfig) engineOptions() storage.Options {
	return storage.Options{
		FS:            s.FS,
		FsyncInterval: s.FsyncInterval,
		SegmentBytes:  s.SegmentBytes,
		SnapshotEvery: s.SnapshotEvery,
	}
}

// storageSeed derives the deterministic trust-anchor seed for a durable
// deployment: the same Config must rebuild the same attestation authority
// after a restart, or persisted certificates could never re-verify.
func storageSeed(cfg Config) []byte {
	seed := make([]byte, 8)
	binary.BigEndian.PutUint64(seed, uint64(cfg.Seed))
	return append([]byte("dcert/storage/"), seed...)
}

// durableAuthority builds the attestation authority for a durable
// deployment (deterministic from the config seed).
func durableAuthority(cfg Config) (*attest.Authority, error) {
	return attest.NewAuthorityFromSeed(storageSeed(cfg))
}

// OpenDeployment creates a deployment on an empty data directory, or
// resumes one from disk when the directory already holds a chain. This is
// what dcert-node uses for kill/restart cycles.
func OpenDeployment(cfg Config) (*Deployment, error) {
	if cfg.Storage != nil && storage.HasData(cfg.Storage.FS, cfg.Storage.Dir) {
		return ResumeDeployment(cfg)
	}
	return NewDeployment(cfg)
}

// ResumeDeployment reopens a durable deployment from its data directory:
// recovery truncates any torn log tail, reconstructs the certified prefix,
// rebuilds the miner / CI / SP / persistence replicas at the recovered tip
// (fast-path from the state snapshot+WAL image, transaction replay when
// that image cannot be trusted), and resumes the certificate issuer from
// the persisted checkpoint.
func ResumeDeployment(cfg Config) (*Deployment, error) {
	cfg = cfg.withDefaults()
	if cfg.Storage == nil {
		return nil, fmt.Errorf("dcert: resume needs Config.Storage")
	}
	params := consensus.Params{Difficulty: cfg.Difficulty}

	authority, err := durableAuthority(cfg)
	if err != nil {
		return nil, fmt.Errorf("dcert: resume: %w", err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("dcert: resume: %w", err)
	}

	engine, err := storage.OpenEngine(cfg.Storage.Dir, cfg.Storage.engineOptions())
	if err != nil {
		return nil, fmt.Errorf("dcert: resume: %w", err)
	}
	fail := func(e error) (*Deployment, error) {
		engine.Close()
		return nil, e
	}

	// The genesis is deterministic from the config; recovery verifies the
	// data directory actually belongs to it.
	scratch, err := cfg.newFullNode(params)
	if err != nil {
		return fail(fmt.Errorf("dcert: resume genesis: %w", err))
	}
	genesis := scratch.Store().Best()
	if err := engine.Bootstrap(genesis, nil); err != nil {
		return fail(fmt.Errorf("dcert: resume: %w", err))
	}

	resumeNode := func(restore bool) (*node.FullNode, error) {
		reg, err := cfg.newRegistry()
		if err != nil {
			return nil, err
		}
		return engine.ResumeNode(storage.ResumeConfig{
			Backend:  cfg.StateBackend,
			Registry: reg,
			Params:   params,
			Restore:  restore,
		})
	}
	// The persistence replica resumes first with Restore on: if the state
	// image did not survive, its replay re-journals every write set.
	persist, err := resumeNode(true)
	if err != nil {
		return fail(fmt.Errorf("dcert: resume persist replica: %w", err))
	}
	minerNode, err := resumeNode(false)
	if err != nil {
		return fail(fmt.Errorf("dcert: resume miner: %w", err))
	}
	ciNode, err := resumeNode(false)
	if err != nil {
		return fail(fmt.Errorf("dcert: resume CI node: %w", err))
	}
	spNode, err := resumeNode(false)
	if err != nil {
		return fail(fmt.Errorf("dcert: resume SP node: %w", err))
	}

	// A fresh enclave (fresh sealed key, same measurement) adopts the
	// persisted checkpoint: certificate verification is measurement-based,
	// so the recursion continues across the restart without double-signing
	// any certified height.
	issuer, err := core.ResumeIssuer(ciNode, authority, platform, cfg.EnclaveCost, engine.Checkpoint())
	if err != nil {
		return fail(fmt.Errorf("dcert: resume issuer: %w", err))
	}

	accounts, err := workload.NewAccounts(cfg.Accounts)
	if err != nil {
		return fail(fmt.Errorf("dcert: accounts: %w", err))
	}
	gen, err := workload.NewGenerator(workload.Config{
		Kind:        cfg.Workload,
		Contracts:   cfg.Contracts,
		Seed:        cfg.Seed,
		KeySpace:    cfg.KeySpace,
		CPUSortSize: cfg.CPUSortSize,
		IOOpsPerTx:  cfg.IOOpsPerTx,
	}, accounts)
	if err != nil {
		return fail(fmt.Errorf("dcert: generator: %w", err))
	}

	return &Deployment{
		cfg:       cfg,
		authority: authority,
		miner:     node.NewMiner(minerNode),
		issuer:    issuer,
		sp:        query.NewServiceProvider(spNode),
		net:       network.New(),
		gen:       gen,
		params:    params,
		engine:    engine,
		persist:   persist,
	}, nil
}

// StorageRecovery reports what the durability engine reconstructed at open
// (nil for in-memory deployments).
func (d *Deployment) StorageRecovery() *storage.Recovery {
	if d.engine == nil {
		return nil
	}
	return d.engine.Recovery()
}

// Engine exposes the durability engine (nil for in-memory deployments).
func (d *Deployment) Engine() *storage.Engine {
	return d.engine
}

// Close releases the deployment's durable resources: the engine syncs,
// snapshots, and closes, so the next open takes the fast path. In-memory
// deployments close trivially.
func (d *Deployment) Close() error {
	if d.engine == nil {
		return nil
	}
	err := d.engine.Close()
	d.engine = nil
	return err
}

// persistBlock journals a freshly mined block — and its certificate, when
// one was already issued — through the durability engine, advancing the
// validating persistence replica. A no-op for in-memory deployments and
// for heights the engine already holds (redundant issuers re-announce the
// same height).
func (d *Deployment) persistBlock(blk *Block, cert *Certificate) error {
	if d.engine == nil {
		return nil
	}
	if blk.Header.Height <= d.persist.Tip().Header.Height {
		return nil
	}
	res, err := d.persist.State().ExecuteBlock(d.persist.Registry(), blk.Txs)
	if err != nil {
		return fmt.Errorf("dcert: persist execute height %d: %w", blk.Header.Height, err)
	}
	root, err := d.persist.State().Commit(res.WriteSet)
	if err != nil {
		return fmt.Errorf("dcert: persist commit height %d: %w", blk.Header.Height, err)
	}
	if root != blk.Header.StateRoot {
		return fmt.Errorf("dcert: persist height %d: replica root diverges from header", blk.Header.Height)
	}
	if _, err := d.persist.Store().Add(blk); err != nil {
		return fmt.Errorf("dcert: persist height %d: %w", blk.Header.Height, err)
	}
	return d.engine.ApplyBlock(blk, cert, res.WriteSet)
}

// persistCert journals a certificate that arrived after its block was
// persisted (pipelined certification, issuer catch-up).
func (d *Deployment) persistCert(blockHash Hash, cert *Certificate) error {
	if d.engine == nil {
		return nil
	}
	return d.engine.ApplyCert(blockHash, cert)
}
