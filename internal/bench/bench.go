// Package bench regenerates every table and figure of the DCert paper's
// evaluation (§7). Each experiment has a Run function returning a structured
// result that prints the same rows/series the paper reports:
//
//   - Table 1  — system parameters (RunParams)
//   - Fig. 7   — bootstrapping cost: storage and validation time vs chain
//     length, traditional light client vs superlight client (RunFig7)
//   - Fig. 8   — block certificate construction cost per Blockbench
//     workload, inside/outside-enclave breakdown (RunFig8)
//   - Fig. 9   — impact of block size on construction cost, KV and SB
//     (RunFig9)
//   - Fig. 10  — augmented vs hierarchical certificate construction vs
//     number of authenticated indexes (RunFig10)
//   - Fig. 11  — verifiable historical query latency and proof size, DCert
//     two-level index vs LineageChain skip list (RunFig11)
//   - headline — the paper's constants: 2.97 KB storage, 0.14 ms bootstrap,
//     <500 ms construction (RunHeadline)
//
// Absolute numbers differ from the paper (different hardware, simulated
// enclave); the experiments reproduce the qualitative shape: constant vs
// linear client costs, inside-enclave dominance with a bounded enclave
// factor, the augmented/hierarchical crossover at one index, and the
// two-level index beating the skip list baseline.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects experiment sizing.
type Scale int

// Scales. Small keeps every experiment under a few seconds for CI; Paper
// approaches the paper's parameters (Table 1) and runs for minutes.
const (
	// Small is the scaled-down default.
	Small Scale = iota + 1
	// Paper approximates the paper's full parameters.
	Paper
)

// ParseScale converts a -scale flag value.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small", "":
		return Small, nil
	case "paper", "full":
		return Paper, nil
	default:
		return 0, fmt.Errorf("bench: unknown scale %q (want small|paper)", s)
	}
}

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Table is a printable experiment result.
type Table struct {
	// Title names the experiment (e.g. "Fig. 8 — certificate construction").
	Title string
	// Note carries scaling/interpretation caveats.
	Note string
	// Columns are the header labels.
	Columns []string
	// Rows are the data cells, formatted.
	Rows [][]string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// ms formats seconds as milliseconds.
func ms(seconds float64) string {
	return fmt.Sprintf("%.3f", seconds*1000)
}

// kb formats bytes as KB.
func kb(bytes int) string {
	return fmt.Sprintf("%.2f", float64(bytes)/1024)
}

// RunParams prints Table 1: the system parameters with defaults in bold
// (marked with *).
func RunParams(scale Scale) *Table {
	p := ParamsFor(scale)
	fmtInts := func(vals []int, def int) string {
		parts := make([]string, len(vals))
		for i, v := range vals {
			if v == def {
				parts[i] = fmt.Sprintf("*%d*", v)
			} else {
				parts[i] = fmt.Sprintf("%d", v)
			}
		}
		return strings.Join(parts, ", ")
	}
	return &Table{
		Title:   "Table 1 — system parameters (scale: " + scale.String() + ")",
		Note:    "defaults marked *bold*; small scale divides the paper's sizes for CI-speed runs",
		Columns: []string{"parameter", "values"},
		Rows: [][]string{
			{"block size (#tx)", fmtInts(p.BlockSizes, p.DefaultBlockSize)},
			{"# authenticated indexes", fmtInts(p.IndexCounts, p.DefaultIndexes)},
			{"query time window (blocks)", fmtInts(p.WindowBlocks, p.DefaultWindow)},
			{"chain length (Fig. 7 measured)", fmtInts(p.ChainLengths, p.ChainLengths[len(p.ChainLengths)-1])},
			{"deployed contracts", fmt.Sprintf("%d", p.Contracts)},
			{"sender accounts", fmt.Sprintf("%d", p.Accounts)},
			{"query chain length (Fig. 11)", fmt.Sprintf("%d", p.QueryChainBlocks)},
			{"key-value tuples (Fig. 11)", fmt.Sprintf("%d", p.QueryTuples)},
		},
	}
}

// Params bundles every experiment's sizing knobs.
type Params struct {
	// BlockSizes is the Fig. 9 sweep; DefaultBlockSize is used elsewhere.
	BlockSizes       []int
	DefaultBlockSize int
	// IndexCounts is the Fig. 10 sweep.
	IndexCounts    []int
	DefaultIndexes int
	// WindowBlocks is the Fig. 11 sweep (1h/1d/1w/1m expressed in blocks).
	WindowBlocks  []int
	DefaultWindow int
	// ChainLengths are the measured Fig. 7 points.
	ChainLengths []int
	// Contracts and Accounts size the workload.
	Contracts int
	Accounts  int
	// CertBlocks is how many blocks Fig. 8/9/10 average over.
	CertBlocks int
	// QueryChainBlocks and QueryTuples size the Fig. 11 setup.
	QueryChainBlocks int
	QueryTuples      int
	// QueryRepeat is queries per Fig. 11 point.
	QueryRepeat int
}

// ParamsFor returns the sizing for a scale. Paper matches Table 1 (500
// contracts, block sizes 500-4000, 1-16 indexes, 10k-block query ledger);
// Small divides sizes so the full suite runs in seconds.
func ParamsFor(scale Scale) Params {
	if scale == Paper {
		return Params{
			BlockSizes:       []int{500, 1000, 2000, 3000, 4000},
			DefaultBlockSize: 2000,
			IndexCounts:      []int{1, 2, 4, 8, 16},
			DefaultIndexes:   2,
			WindowBlocks:     []int{240, 5760, 40320, 172800},
			DefaultWindow:    5760,
			ChainLengths:     []int{100, 1000, 10000},
			Contracts:        500,
			Accounts:         2000,
			CertBlocks:       5,
			QueryChainBlocks: 10000,
			QueryTuples:      500,
			QueryRepeat:      20,
		}
	}
	return Params{
		BlockSizes:       []int{50, 100, 200, 300, 400},
		DefaultBlockSize: 200,
		IndexCounts:      []int{1, 2, 4, 8, 16},
		DefaultIndexes:   2,
		WindowBlocks:     []int{25, 100, 250, 500},
		DefaultWindow:    100,
		ChainLengths:     []int{20, 50, 100},
		Contracts:        20,
		Accounts:         32,
		CertBlocks:       3,
		QueryChainBlocks: 600,
		QueryTuples:      100,
		QueryRepeat:      5,
	}
}
