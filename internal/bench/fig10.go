package bench

import (
	"fmt"
	"time"

	"dcert"
)

// Fig10Point is one (scheme, #indexes) sample.
type Fig10Point struct {
	// Scheme is "augmented" or "hierarchical".
	Scheme string
	// Indexes is the number of authenticated indexes certified per block.
	Indexes int
	// Construction is the average per-block CI time in seconds (enclave
	// calls only — the cost the paper's Fig. 10 compares).
	Construction float64
	// Ecalls is the average number of enclave entries per block.
	Ecalls float64
}

// Fig10Result holds the multi-index certification comparison.
type Fig10Result struct {
	Points []Fig10Point
}

// fig10Deployment builds a KVStore deployment with n historical indexes
// registered under distinct names.
func fig10Deployment(p Params, n int) (*dcert.Deployment, []string, error) {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:    dcert.KVStore,
		Contracts:   p.Contracts,
		Accounts:    p.Accounts,
		Difficulty:  4,
		EnclaveCost: dcert.DefaultEnclaveCostModel(),
		Seed:        int64(n),
	})
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("hist-%02d", i)
		name := names[i]
		if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
			return dcert.NewHistoricalIndex(name, "ct/")
		}); err != nil {
			return nil, nil, err
		}
	}
	return dep, names, nil
}

// runScheme measures one scheme at one index count.
func runScheme(p Params, scheme string, indexes, blockSize, blocks int) (Fig10Point, error) {
	dep, names, err := fig10Deployment(p, indexes)
	if err != nil {
		return Fig10Point{}, err
	}
	var totalSec float64
	var ecallsBefore, ecallsAfter uint64
	ecallsBefore = dep.Issuer().Enclave().Stats().Ecalls
	for i := 0; i < blocks; i++ {
		txs, err := dep.GenerateBlockTxs(blockSize)
		if err != nil {
			return Fig10Point{}, err
		}
		blk, err := dep.Miner().Propose(txs)
		if err != nil {
			return Fig10Point{}, err
		}
		jobs, err := dep.PrepareIndexJobs(blk, names)
		if err != nil {
			return Fig10Point{}, err
		}
		start := time.Now()
		switch scheme {
		case "augmented":
			if _, _, err := dep.Issuer().ProcessBlockAugmented(blk, jobs); err != nil {
				return Fig10Point{}, fmt.Errorf("bench: augmented: %w", err)
			}
		case "hierarchical":
			if _, _, _, err := dep.Issuer().ProcessBlockHierarchical(blk, jobs); err != nil {
				return Fig10Point{}, fmt.Errorf("bench: hierarchical: %w", err)
			}
		default:
			return Fig10Point{}, fmt.Errorf("bench: unknown scheme %q", scheme)
		}
		totalSec += time.Since(start).Seconds()
		if err := dep.SP().ProcessBlock(blk); err != nil {
			return Fig10Point{}, err
		}
	}
	ecallsAfter = dep.Issuer().Enclave().Stats().Ecalls
	return Fig10Point{
		Scheme:       scheme,
		Indexes:      indexes,
		Construction: totalSec / float64(blocks),
		Ecalls:       float64(ecallsAfter-ecallsBefore) / float64(blocks),
	}, nil
}

// RunFig10 measures Fig. 10: augmented vs hierarchical certificate
// construction as the number of authenticated indexes grows. The augmented
// scheme re-runs full block verification inside the enclave for every index;
// the hierarchical scheme verifies the block once and reuses its certificate.
func RunFig10(scale Scale) (*Fig10Result, error) {
	p := ParamsFor(scale)
	res := &Fig10Result{}
	for _, scheme := range []string{"augmented", "hierarchical"} {
		for _, n := range p.IndexCounts {
			pt, err := runScheme(p, scheme, n, p.DefaultBlockSize, p.CertBlocks)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Table renders the result.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title: "Fig. 10 — augmented vs hierarchical certificate construction vs #indexes",
		Note:  "augmented re-executes block verification per index; hierarchical verifies the block certificate instead (one extra Ecall)",
		Columns: []string{
			"scheme", "#indexes", "construction (ms/block)", "ecalls/block",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			pt.Scheme, fmt.Sprintf("%d", pt.Indexes),
			ms(pt.Construction), fmt.Sprintf("%.0f", pt.Ecalls),
		})
	}
	return t
}
