package dcert

import (
	"fmt"
	"sync/atomic"

	"dcert/internal/attest"
	"dcert/internal/consensus"
	"dcert/internal/core"
	"dcert/internal/network"
	"dcert/internal/node"
	"dcert/internal/obs"
	"dcert/internal/query"
	"dcert/internal/query/fleet"
	"dcert/internal/statedb"
	"dcert/internal/storage"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// Config parameterizes a simulated DCert deployment. The zero value is a
// usable KVStore deployment with light proof-of-work and no simulated
// enclave overhead.
type Config struct {
	// Workload selects the Blockbench workload (default KVStore).
	Workload Workload
	// Contracts is the number of deployed contract instances (default 500,
	// the paper's setting; tests often use fewer).
	Contracts int
	// Accounts is the sender-account pool size (default 64).
	Accounts int
	// Difficulty is the PoW difficulty in leading zero bits (default 8).
	Difficulty uint32
	// EnclaveCost configures the simulated SGX overheads (zero = none).
	EnclaveCost EnclaveCostModel
	// Seed makes the transaction stream reproducible.
	Seed int64
	// KeySpace bounds distinct user keys/accounts touched (default 100000).
	KeySpace int
	// CPUSortSize is the CPUHeavy per-tx sort size (default 1024).
	CPUSortSize int
	// IOOpsPerTx is the IOHeavy keys-per-tx count (default 16).
	IOOpsPerTx int
	// StateBackend selects the state commitment structure: statedb.BackendMPT
	// (default) or statedb.BackendSMT (the paper's Fig. 4 binary tree).
	StateBackend statedb.BackendKind
	// Storage, when non-nil, attaches a crash-safe data directory: every
	// mined block, certificate, and state write set is journaled, and
	// OpenDeployment/ResumeDeployment recover the deployment from disk
	// after a crash. Nil keeps everything in memory (tests, benchmarks).
	Storage *StorageConfig
}

func (c Config) withDefaults() Config {
	if c.Workload == 0 {
		c.Workload = KVStore
	}
	if c.Contracts == 0 {
		c.Contracts = workload.DefaultContracts
	}
	if c.Accounts == 0 {
		c.Accounts = 64
	}
	if c.Difficulty == 0 {
		c.Difficulty = 8
	}
	return c
}

// Deployment is a complete simulated DCert network: an attestation
// authority, a miner, an SGX-enabled certificate issuer, a query service
// provider, and a pub/sub fabric connecting them — the system model of
// Fig. 2.
type Deployment struct {
	cfg       Config
	authority *attest.Authority
	miner     *node.Miner
	issuer    *core.Issuer
	sp        *query.ServiceProvider
	net       *network.Network
	gen       *workload.Generator
	params    consensus.Params

	// Sharded serving plane, empty until StartFleet. Atomic because the
	// wire transport's RPC goroutines consult it per request.
	fleet          atomic.Pointer[fleet.Fleet]
	indexFactories []func() (*AuthIndex, error)

	// Instrumentation plane, nil until EnableObservability.
	reg    *obs.Registry
	tracer *obs.Tracer
	logger *obs.Logger

	// Durability plane, nil unless Config.Storage is set: the crash-safe
	// engine plus the validating persistence replica that feeds it.
	engine  *storage.Engine
	persist *node.FullNode
}

// newRegistry builds a contract registry for the deployment's workload.
func (c Config) newRegistry() (*vm.Registry, error) {
	reg := vm.NewRegistry()
	if err := workload.Register(reg, c.Workload, c.Contracts); err != nil {
		return nil, err
	}
	return reg, nil
}

// newFullNode builds an independent full-node replica for the deployment's
// genesis and workload.
func (c Config) newFullNode(params consensus.Params) (*node.FullNode, error) {
	reg, err := c.newRegistry()
	if err != nil {
		return nil, err
	}
	genesis, db, err := node.BuildGenesis(node.GenesisConfig{Time: 1, Consensus: params, Backend: c.StateBackend})
	if err != nil {
		return nil, err
	}
	return node.NewFullNode(genesis, db, reg, params)
}

// NewDeployment assembles a deployment per the config. With Config.Storage
// set, the data directory must be empty or absent — resuming an existing one
// is OpenDeployment / ResumeDeployment's job.
func NewDeployment(cfg Config) (*Deployment, error) {
	cfg = cfg.withDefaults()
	params := consensus.Params{Difficulty: cfg.Difficulty}

	var authority *attest.Authority
	var err error
	if cfg.Storage != nil {
		if storage.HasData(cfg.Storage.FS, cfg.Storage.Dir) {
			return nil, fmt.Errorf("dcert: data directory %s already holds a chain; use OpenDeployment or ResumeDeployment", cfg.Storage.Dir)
		}
		// The trust anchor must be reconstructible after a restart, so
		// durable deployments derive it from the config seed.
		authority, err = durableAuthority(cfg)
	} else {
		authority, err = attest.NewAuthority()
	}
	if err != nil {
		return nil, fmt.Errorf("dcert: deployment: %w", err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("dcert: deployment: %w", err)
	}

	minerNode, err := cfg.newFullNode(params)
	if err != nil {
		return nil, fmt.Errorf("dcert: miner node: %w", err)
	}
	ciNode, err := cfg.newFullNode(params)
	if err != nil {
		return nil, fmt.Errorf("dcert: CI node: %w", err)
	}
	spNode, err := cfg.newFullNode(params)
	if err != nil {
		return nil, fmt.Errorf("dcert: SP node: %w", err)
	}

	issuer, err := core.NewIssuer(ciNode, authority, platform, cfg.EnclaveCost)
	if err != nil {
		return nil, fmt.Errorf("dcert: issuer: %w", err)
	}

	accounts, err := workload.NewAccounts(cfg.Accounts)
	if err != nil {
		return nil, fmt.Errorf("dcert: accounts: %w", err)
	}
	gen, err := workload.NewGenerator(workload.Config{
		Kind:        cfg.Workload,
		Contracts:   cfg.Contracts,
		Seed:        cfg.Seed,
		KeySpace:    cfg.KeySpace,
		CPUSortSize: cfg.CPUSortSize,
		IOOpsPerTx:  cfg.IOOpsPerTx,
	}, accounts)
	if err != nil {
		return nil, fmt.Errorf("dcert: generator: %w", err)
	}

	d := &Deployment{
		cfg:       cfg,
		authority: authority,
		miner:     node.NewMiner(minerNode),
		issuer:    issuer,
		sp:        query.NewServiceProvider(spNode),
		net:       network.New(),
		gen:       gen,
		params:    params,
	}
	if cfg.Storage != nil {
		persist, err := cfg.newFullNode(params)
		if err != nil {
			return nil, fmt.Errorf("dcert: persist replica: %w", err)
		}
		engine, err := storage.OpenEngine(cfg.Storage.Dir, cfg.Storage.engineOptions())
		if err != nil {
			return nil, fmt.Errorf("dcert: storage: %w", err)
		}
		if err := engine.Bootstrap(persist.Store().Best(), nil); err != nil {
			engine.Close()
			return nil, fmt.Errorf("dcert: storage bootstrap: %w", err)
		}
		d.engine = engine
		d.persist = persist
	}
	return d, nil
}

// Authority returns the attestation authority (clients pin its public key).
func (d *Deployment) Authority() *attest.Authority {
	return d.authority
}

// Issuer returns the certificate issuer.
func (d *Deployment) Issuer() *Issuer {
	return d.issuer
}

// SP returns the query service provider.
func (d *Deployment) SP() *ServiceProvider {
	return d.sp
}

// Miner returns the block proposer.
func (d *Deployment) Miner() *node.Miner {
	return d.miner
}

// Net returns the simulated network fabric.
func (d *Deployment) Net() *network.Network {
	return d.net
}

// Params returns the consensus parameters.
func (d *Deployment) Params() ConsensusParams {
	return d.params
}

// NewSuperlightClient creates a client pinned to this deployment's
// attestation authority and CI enclave measurement.
func (d *Deployment) NewSuperlightClient() *SuperlightClient {
	return core.NewSuperlightClient(d.authority.PublicKey(), d.issuer.Measurement(), d.params)
}

// NewLightClient creates a traditional light client pinned to the genesis —
// the Fig. 7 baseline.
func (d *Deployment) NewLightClient() *LightClient {
	return NewTraditionalLightClient(d.miner.Store().Genesis(), d.params)
}

// GenerateBlockTxs produces one block's worth of signed workload
// transactions.
func (d *Deployment) GenerateBlockTxs(n int) ([]*Transaction, error) {
	return d.gen.Block(n)
}

// MineAndCertify generates a block of n transactions, mines it, runs the CI
// certification (Alg. 1), feeds the SP, and publishes both block and
// certificate on the network. It returns the block and its certificate.
func (d *Deployment) MineAndCertify(n int) (*Block, *Certificate, error) {
	txs, err := d.gen.Block(n)
	if err != nil {
		return nil, nil, err
	}
	blk, err := d.miner.Propose(txs)
	if err != nil {
		return nil, nil, fmt.Errorf("dcert: propose: %w", err)
	}
	cert, _, err := d.issuer.ProcessBlock(blk)
	if err != nil {
		return nil, nil, fmt.Errorf("dcert: certify: %w", err)
	}
	if err := d.feedServing(blk); err != nil {
		return nil, nil, fmt.Errorf("dcert: SP: %w", err)
	}
	if err := d.net.Publish(TopicBlocks, "miner", blk); err != nil {
		return nil, nil, err
	}
	if err := d.net.Publish(TopicCerts, "ci", cert); err != nil {
		return nil, nil, err
	}
	if err := d.persistBlock(blk, cert); err != nil {
		return nil, nil, err
	}
	return blk, cert, nil
}

// MineAndCertifySegment mines `blocks` consecutive blocks of n transactions
// each and certifies them with ONE segment Ecall (core.Issuer.ProcessSegment)
// — the amortized counterpart of calling MineAndCertify in a loop. Every
// block feeds the SP and publishes on TopicBlocks; the segment certificate
// publishes once on TopicCerts, and each covered block journals under it.
func (d *Deployment) MineAndCertifySegment(blocks, n int) ([]*Block, *SegmentCert, error) {
	if blocks < 1 {
		return nil, nil, fmt.Errorf("dcert: segment needs at least 1 block, got %d", blocks)
	}
	blks := make([]*Block, 0, blocks)
	for i := 0; i < blocks; i++ {
		txs, err := d.gen.Block(n)
		if err != nil {
			return nil, nil, err
		}
		blk, err := d.miner.Propose(txs)
		if err != nil {
			return nil, nil, fmt.Errorf("dcert: propose: %w", err)
		}
		blks = append(blks, blk)
	}
	seg, _, err := d.issuer.ProcessSegment(blks)
	if err != nil {
		return nil, nil, fmt.Errorf("dcert: certify segment: %w", err)
	}
	for _, blk := range blks {
		if err := d.feedServing(blk); err != nil {
			return nil, nil, fmt.Errorf("dcert: SP: %w", err)
		}
		if err := d.net.Publish(TopicBlocks, "miner", blk); err != nil {
			return nil, nil, err
		}
		if err := d.persistBlock(blk, seg.Cert); err != nil {
			return nil, nil, err
		}
	}
	if err := d.net.Publish(TopicCerts, "ci", seg); err != nil {
		return nil, nil, err
	}
	return blks, seg, nil
}

// AddIndex registers a two-level authenticated index with both the SP (real
// maintenance) and the CI's trusted program (certification logic). Call it
// before mining the blocks the index should cover.
func (d *Deployment) AddIndex(mk func() (*AuthIndex, error)) (*AuthIndex, error) {
	spIdx, err := mk()
	if err != nil {
		return nil, err
	}
	ciIdx, err := mk()
	if err != nil {
		return nil, err
	}
	if err := d.sp.AddIndex(spIdx); err != nil {
		return nil, err
	}
	if err := d.issuer.Program().RegisterUpdater(ciIdx); err != nil {
		return nil, err
	}
	// Record the factory so StartFleet can equip each replica with its own
	// copy of the index.
	d.indexFactories = append(d.indexFactories, mk)
	return spIdx, nil
}

// MineAndCertifyHierarchical is MineAndCertify for deployments with
// authenticated indexes: the CI runs the hierarchical scheme (Alg. 5),
// producing the block certificate plus one index certificate per registered
// index (jobs prepared from the SP's replicas).
func (d *Deployment) MineAndCertifyHierarchical(n int, indexNames []string) (*Block, *Certificate, []*Certificate, error) {
	txs, err := d.gen.Block(n)
	if err != nil {
		return nil, nil, nil, err
	}
	blk, err := d.miner.Propose(txs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dcert: propose: %w", err)
	}
	jobs, err := d.PrepareIndexJobs(blk, indexNames)
	if err != nil {
		return nil, nil, nil, err
	}
	blkCert, idxCerts, _, err := d.issuer.ProcessBlockHierarchical(blk, jobs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dcert: certify: %w", err)
	}
	if err := d.feedServing(blk); err != nil {
		return nil, nil, nil, fmt.Errorf("dcert: SP: %w", err)
	}
	if err := d.persistBlock(blk, blkCert); err != nil {
		return nil, nil, nil, err
	}
	return blk, blkCert, idxCerts, nil
}

// PrepareIndexJobs builds the per-index certification inputs from the SP's
// pre-block index state.
func (d *Deployment) PrepareIndexJobs(blk *Block, indexNames []string) ([]*IndexJob, error) {
	writes, err := d.sp.Node().ValidateBlock(blk)
	if err != nil {
		return nil, fmt.Errorf("dcert: validate for index jobs: %w", err)
	}
	jobs := make([]*IndexJob, 0, len(indexNames))
	for _, name := range indexNames {
		ix, err := d.sp.Index(name)
		if err != nil {
			return nil, err
		}
		prevRoot, err := ix.Root()
		if err != nil {
			return nil, err
		}
		witness, err := ix.UpdateWitness(blk, writes)
		if err != nil {
			return nil, err
		}
		newRoot, err := ix.Replay(prevRoot, witness, blk, writes)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, &IndexJob{Updater: name, NewRoot: newRoot, Witness: witness})
	}
	return jobs, nil
}

// NewTraditionalLightClient creates the linear-cost baseline client.
func NewTraditionalLightClient(genesis Hash, params ConsensusParams) *LightClient {
	return newLightClient(genesis, params)
}

// AddIssuer provisions an additional certificate issuer on the same chain
// and attestation authority — the multi-CI setting of §4.3, where a
// superlight client may switch certification services and must check the new
// CI's attestation report once. The new CI runs the same trusted program
// (same measurement) in its own enclave with its own sealed key, and builds
// its own recursive certificate chain from genesis.
//
// Feed it blocks with Issuer.ProcessBlock; MineAndCertify only drives the
// deployment's primary issuer.
func (d *Deployment) AddIssuer() (*Issuer, error) {
	platform, err := d.authority.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("dcert: add issuer: %w", err)
	}
	n, err := d.cfg.newFullNode(d.params)
	if err != nil {
		return nil, fmt.Errorf("dcert: add issuer node: %w", err)
	}
	issuer, err := core.NewIssuer(n, d.authority, platform, d.cfg.EnclaveCost)
	if err != nil {
		return nil, fmt.Errorf("dcert: add issuer: %w", err)
	}
	return issuer, nil
}
