package query

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dcert/internal/obs"
	"dcert/internal/workload"
)

// Regression for the old FIFO cache's retention behavior: under sustained
// churn of distinct requests, cached bytes must stay inside the configured
// budget — the previous entry-count bound let large responses pin unbounded
// memory.
func TestResponseCacheBytesBoundedUnderChurn(t *testing.T) {
	const budget = 4096
	c := NewResponseCache(budget)
	payload := bytes.Repeat([]byte("x"), 300)
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("req-%05d", i)
		c.Do(key, func() []byte { return payload })
		if c.Bytes() > budget {
			t.Fatalf("after %d inserts cache holds %dB > budget %dB", i+1, c.Bytes(), budget)
		}
	}
	if c.Len() == 0 {
		t.Fatal("cache should retain recent entries")
	}
	// Entry accounting matches byte accounting.
	wantBytes := c.Len() * (len("req-00000") + len(payload))
	if c.Bytes() != wantBytes {
		t.Fatalf("byte accounting drifted: %dB held, %d entries × %dB = %dB",
			c.Bytes(), c.Len(), len("req-00000")+len(payload), wantBytes)
	}
	_, _, _, evictions := c.Stats()
	if evictions == 0 {
		t.Fatal("churn past the budget must evict")
	}
}

func TestResponseCacheLRUKeepsHotKeys(t *testing.T) {
	// Budget fits ~4 entries; key "hot" is touched between every insert and
	// must survive while cold keys cycle out.
	c := NewResponseCache(4 * (3 + 64))
	val := bytes.Repeat([]byte("v"), 64)
	c.Do("hot", func() []byte { return val })
	for i := 0; i < 50; i++ {
		c.Do(fmt.Sprintf("c%02d", i), func() []byte { return val })
		if _, ok := c.Get("hot"); !ok {
			t.Fatalf("hot key evicted after %d cold inserts", i+1)
		}
	}
	if _, ok := c.Get("c00"); ok {
		t.Fatal("cold key c00 should have been evicted")
	}
}

func TestResponseCacheOversizedResponseNotCached(t *testing.T) {
	c := NewResponseCache(100)
	big := bytes.Repeat([]byte("b"), 200)
	got, outcome := c.Do("huge", func() []byte { return big })
	if outcome != CacheComputed || !bytes.Equal(got, big) {
		t.Fatal("oversized response must still be computed and served")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("oversized response must not enter the cache")
	}
}

// Singleflight: M concurrent identical queries on a cold key run the
// computation exactly once; every caller gets byte-identical verified
// responses, and the collapse counter accounts for the other M-1.
func TestResponseCacheSingleflightCollapses(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 4, 12)
	tip := r.sp.Node().Tip()
	key := writtenKeys(t, r, 1)[0]

	reg := obs.NewRegistry()
	c := NewResponseCache(DefaultCacheBytes)
	c.Instrument(reg, "sp-0")

	var computations atomic.Uint64
	gate := make(chan struct{})
	compute := func() []byte {
		<-gate // hold every caller at the cold-key moment
		computations.Add(1)
		res, err := r.sp.StateQuery(key)
		if err != nil {
			t.Errorf("StateQuery: %v", err)
			return nil
		}
		return res.Marshal()
	}

	const m = 100
	results := make([][]byte, m)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	wg.Add(m)
	started.Add(m)
	for i := 0; i < m; i++ {
		go func(i int) {
			defer wg.Done()
			started.Done()
			resp, _ := c.Do("q", compute)
			results[i] = resp
		}(i)
	}
	started.Wait() // all M goroutines launched before the flight resolves
	close(gate)
	wg.Wait()

	if n := computations.Load(); n != 1 {
		t.Fatalf("%d-way burst ran the computation %d times, want 1", m, n)
	}
	for i := 1; i < m; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("caller %d received different bytes", i)
		}
	}
	// Every caller's response verifies against the certified tip.
	sr, err := UnmarshalStateResult(results[0])
	if err != nil {
		t.Fatalf("UnmarshalStateResult: %v", err)
	}
	if err := VerifyState(&tip.Header, sr); err != nil {
		t.Fatalf("VerifyState: %v", err)
	}

	hits, misses, collapsed, _ := c.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if hits+collapsed != m-1 {
		t.Fatalf("hits+collapsed = %d, want %d", hits+collapsed, m-1)
	}
	if collapsed == 0 {
		t.Fatal("a gated 100-way burst must collapse at least one caller")
	}
	// The obs counter mirrors the collapse accounting (registry lookups are
	// identity-stable: same name+labels returns the same instrument).
	obsCollapsed := reg.Counter("dcert_sp_cache_outcomes_total",
		"Response cache lookups by outcome.", obs.L("sp", "sp-0"), obs.L("outcome", "collapsed"))
	if got := obsCollapsed.Value(); got != collapsed {
		t.Fatalf("obs collapsed counter = %d, cache reports %d", got, collapsed)
	}
}
