package transport

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dcert/internal/network"
)

// Client is one wire connection implementing network.Bus: Publish sends a
// publish frame, Subscribe registers a remote subscription and returns the
// same *network.Subscription the in-process bus hands out (fed by the reader
// as message frames arrive), and Request runs a correlated RPC call. A
// follower or query requester built on network.Bus therefore runs unchanged
// whether its bus is the in-process fabric or a socket.

// Client errors.
var (
	// ErrClientClosed is returned for operations on a closed client.
	ErrClientClosed = errors.New("transport: client closed")
	// ErrRequestTimeout is returned when an RPC gets no answer in time.
	ErrRequestTimeout = errors.New("transport: request timed out")
	// ErrRemote wraps an error string reported by the server for an RPC.
	ErrRemote = errors.New("transport: remote error")
)

// ClientConfig tunes a wire client.
type ClientConfig struct {
	// Name identifies this client to the server (diagnostics only).
	Name string
	// TLS, when non-nil, dials a TLS connection. Nil dials plaintext.
	TLS *tls.Config
	// DialTimeout bounds connection establishment plus the protocol
	// handshake (default 5s).
	DialTimeout time.Duration
	// SubscribeTimeout bounds the wait for a subscription ack (default 5s).
	SubscribeTimeout time.Duration
	// RequestTimeout bounds one RPC round trip (default 10s).
	RequestTimeout time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Name == "" {
		c.Name = "dcert-client"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.SubscribeTimeout <= 0 {
		c.SubscribeTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	return c
}

// ClientStats counts a client's activity.
type ClientStats struct {
	// Delivered counts messages handed to subscription queues.
	Delivered uint64
	// Dropped counts messages dropped because a subscription's queue was
	// full (slow consumer) or already cancelled.
	Dropped uint64
}

// Client is a wire connection to a transport Server.
type Client struct {
	cfg  ClientConfig
	conn net.Conn

	// wmu serializes frame writes, which also serializes this client's
	// publishes: per-publisher order on the wire follows from it.
	wmu sync.Mutex

	mu      sync.Mutex
	subs    map[uint64]*network.Subscription
	subAcks map[uint64]chan struct{}
	pending map[uint64]chan *responseMsg
	nextSub uint64
	nextReq uint64
	closed  bool
	err     error // terminal connection error, set once

	done      chan struct{}
	closeOnce sync.Once
	readerWG  sync.WaitGroup

	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// Client is a network.Bus.
var _ network.Bus = (*Client)(nil)

// Dial connects to a transport Server and completes the handshake.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	var conn net.Conn
	var err error
	if cfg.TLS != nil {
		d := &net.Dialer{Timeout: cfg.DialTimeout}
		conn, err = tls.DialWithDialer(d, "tcp", addr, cfg.TLS)
	} else {
		conn, err = net.DialTimeout("tcp", addr, cfg.DialTimeout)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}

	conn.SetDeadline(time.Now().Add(cfg.DialTimeout))
	if err := writeFrame(conn, (&helloMsg{version: ProtocolVersion, name: cfg.Name}).encode()); err != nil {
		conn.Close()
		return nil, err
	}
	body, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	kind, d, err := splitKind(body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if kind == kindResponse {
		// The server rejects mismatched versions with an error response.
		if resp, derr := decodeResponse(d); derr == nil && resp.errMsg != "" {
			conn.Close()
			return nil, fmt.Errorf("%w: %s", ErrVersionMismatch, resp.errMsg)
		}
		conn.Close()
		return nil, ErrBadHandshake
	}
	if kind != kindWelcome {
		conn.Close()
		return nil, fmt.Errorf("%w: first frame kind %d", ErrBadHandshake, kind)
	}
	welcome, err := decodeWelcome(d)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if welcome.version != ProtocolVersion {
		conn.Close()
		return nil, fmt.Errorf("%w: server speaks %d, client %d", ErrVersionMismatch, welcome.version, ProtocolVersion)
	}
	conn.SetDeadline(time.Time{})

	c := &Client{
		cfg:     cfg,
		conn:    conn,
		subs:    make(map[uint64]*network.Subscription),
		subAcks: make(map[uint64]chan struct{}),
		pending: make(map[uint64]chan *responseMsg),
		done:    make(chan struct{}),
	}
	c.readerWG.Add(1)
	go c.readLoop()
	return c, nil
}

// Stats snapshots the client's delivery counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{Delivered: c.delivered.Load(), Dropped: c.dropped.Load()}
}

// Publish broadcasts a payload through the server's hub. The payload must be
// part of the wire vocabulary ([]byte, blocks, certificates, bundles, cert
// requests); anything else is rejected with ErrPayloadType.
func (c *Client) Publish(topic, from string, payload any) error {
	raw, err := encodePayload(payload)
	if err != nil {
		return err
	}
	return c.send((&publishMsg{topic: topic, from: from, payload: raw}).encode())
}

// Subscribe registers a remote subscription and blocks until the server
// acknowledges it, so a publish issued after Subscribe returns — from this
// client or any other peer of the same hub — reaches the new subscription,
// matching the in-process bus's happens-before edge. On a dead connection or
// ack timeout the returned subscription is already cancelled (its channel is
// closed), which is how the bus API signals a terminal fabric to consumers.
func (c *Client) Subscribe(topic string, depth int) *network.Subscription {
	c.mu.Lock()
	c.nextSub++
	id := c.nextSub
	ack := make(chan struct{})
	sub := network.NewDetachedSubscription(topic, depth, func() { c.unsubscribe(id) })
	if c.closed {
		c.mu.Unlock()
		sub.Cancel()
		return sub
	}
	c.subs[id] = sub
	c.subAcks[id] = ack
	c.mu.Unlock()

	if err := c.send((&subscribeMsg{id: id, topic: topic, depth: uint32(depth)}).encode()); err != nil {
		c.dropSub(id)
		sub.Cancel()
		return sub
	}
	t := time.NewTimer(c.cfg.SubscribeTimeout)
	defer t.Stop()
	select {
	case <-ack:
	case <-c.done:
		sub.Cancel()
	case <-t.C:
		c.dropSub(id)
		sub.Cancel()
	}
	return sub
}

// Request runs one RPC round trip against the server's route table.
func (c *Client) Request(method string, body []byte) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	c.nextReq++
	id := c.nextReq
	ch := make(chan *responseMsg, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.send((&requestMsg{id: id, method: method, body: body}).encode()); err != nil {
		c.dropPending(id)
		return nil, err
	}
	t := time.NewTimer(c.cfg.RequestTimeout)
	defer t.Stop()
	select {
	case resp := <-ch:
		if resp.errMsg != "" {
			return nil, fmt.Errorf("%w: %s", ErrRemote, resp.errMsg)
		}
		return resp.body, nil
	case <-c.done:
		c.dropPending(id)
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	case <-t.C:
		c.dropPending(id)
		return nil, fmt.Errorf("%w: %s", ErrRequestTimeout, method)
	}
}

// Close tears the connection down: all subscriptions' channels close and all
// in-flight requests fail.
func (c *Client) Close() error {
	c.shutdown(ErrClientClosed)
	c.readerWG.Wait()
	return nil
}

// send writes one frame under the write lock.
func (c *Client) send(frame []byte) error {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return err
	}
	c.mu.Unlock()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeFrame(c.conn, frame); err != nil {
		c.shutdown(err)
		return err
	}
	return nil
}

// unsubscribe is the Cancel hook for this client's subscriptions: it drops
// the local registration and tells the server, fire-and-forget (the server
// also reaps on disconnect).
func (c *Client) unsubscribe(id uint64) {
	c.mu.Lock()
	_, known := c.subs[id]
	delete(c.subs, id)
	delete(c.subAcks, id)
	closed := c.closed
	c.mu.Unlock()
	if !known || closed {
		return
	}
	c.wmu.Lock()
	writeFrame(c.conn, (&unsubscribeMsg{id: id}).encode())
	c.wmu.Unlock()
}

// dropSub removes a subscription registration without the Cancel hook.
func (c *Client) dropSub(id uint64) {
	c.mu.Lock()
	delete(c.subs, id)
	delete(c.subAcks, id)
	c.mu.Unlock()
}

// dropPending removes an RPC registration.
func (c *Client) dropPending(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// readLoop demultiplexes inbound frames: topic deliveries to subscription
// queues, acks to blocked Subscribe calls, responses to blocked Requests.
func (c *Client) readLoop() {
	defer c.readerWG.Done()
	for {
		body, err := readFrame(c.conn)
		if err != nil {
			c.shutdown(err)
			return
		}
		if err := c.handleFrame(body); err != nil {
			c.shutdown(err)
			return
		}
	}
}

// handleFrame processes one inbound frame; an error is terminal.
func (c *Client) handleFrame(body []byte) error {
	kind, d, err := splitKind(body)
	if err != nil {
		return err
	}
	switch kind {
	case kindMessage:
		m, err := decodeMessage(d)
		if err != nil {
			return err
		}
		payload, err := decodePayload(m.payload)
		if err != nil {
			return err
		}
		c.mu.Lock()
		sub := c.subs[m.subID]
		c.mu.Unlock()
		if sub == nil {
			return nil // raced with an unsubscribe; the server reaps soon
		}
		if sub.Deliver(network.Message{Topic: m.topic, From: m.from, Payload: payload}) {
			c.delivered.Add(1)
		} else {
			c.dropped.Add(1)
		}
		return nil
	case kindSubscribed:
		m, err := decodeSubscribed(d)
		if err != nil {
			return err
		}
		c.mu.Lock()
		ack := c.subAcks[m.id]
		delete(c.subAcks, m.id)
		c.mu.Unlock()
		if ack != nil {
			close(ack)
		}
		return nil
	case kindResponse:
		m, err := decodeResponse(d)
		if err != nil {
			return err
		}
		c.mu.Lock()
		ch := c.pending[m.id]
		delete(c.pending, m.id)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
}

// shutdown marks the client terminal: the connection closes, every
// subscription's channel closes (so followers and requesters unblock and
// exit), and pending RPCs fail. Idempotent.
func (c *Client) shutdown(cause error) {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.err = cause
		subs := make([]*network.Subscription, 0, len(c.subs))
		for _, sub := range c.subs {
			subs = append(subs, sub)
		}
		c.subs = make(map[uint64]*network.Subscription)
		for _, ack := range c.subAcks {
			close(ack)
		}
		c.subAcks = make(map[uint64]chan struct{})
		c.pending = make(map[uint64]chan *responseMsg)
		c.mu.Unlock()
		close(c.done)
		c.conn.Close()
		for _, sub := range subs {
			sub.Cancel()
		}
	})
}
