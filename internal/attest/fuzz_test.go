package attest

import (
	"testing"

	"dcert/internal/chash"
)

func FuzzUnmarshalReport(f *testing.F) {
	a, err := NewAuthority()
	if err != nil {
		f.Fatalf("NewAuthority: %v", err)
	}
	p, err := a.NewPlatform()
	if err != nil {
		f.Fatalf("NewPlatform: %v", err)
	}
	m := chash.Leaf([]byte("program"))
	rd := chash.Leaf([]byte("pk"))
	q, err := p.SignQuote(m, rd)
	if err != nil {
		f.Fatalf("SignQuote: %v", err)
	}
	rep, err := a.Attest(q)
	if err != nil {
		f.Fatalf("Attest: %v", err)
	}
	f.Add(rep.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})

	genuine := string(rep.Marshal())
	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := UnmarshalReport(raw)
		if err != nil {
			return
		}
		if string(parsed.Marshal()) != string(raw) {
			t.Fatal("non-canonical report decode")
		}
		// Only the genuine bytes may verify.
		if err := parsed.Verify(a.PublicKey(), m, rd); err == nil && string(raw) != genuine {
			t.Fatal("a mutated report verified")
		}
	})
}
