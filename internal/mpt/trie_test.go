package mpt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dcert/internal/chash"
)

func mustPut(t *testing.T, tr *Trie, key, val string) {
	t.Helper()
	if err := tr.Put([]byte(key), []byte(val)); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func mustGet(t *testing.T, tr *Trie, key string) []byte {
	t.Helper()
	v, err := tr.Get([]byte(key))
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	return v
}

func mustHash(t *testing.T, tr *Trie) chash.Hash {
	t.Helper()
	h, err := tr.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	return h
}

func TestEmptyTrie(t *testing.T) {
	tr := New()
	if h := mustHash(t, tr); !h.IsZero() {
		t.Fatal("empty trie must hash to zero")
	}
	if v := mustGet(t, tr, "missing"); v != nil {
		t.Fatal("empty trie Get must return nil")
	}
}

func TestPutGetBasic(t *testing.T) {
	tr := New()
	mustPut(t, tr, "key", "value")
	if got := mustGet(t, tr, "key"); !bytes.Equal(got, []byte("value")) {
		t.Fatalf("Get = %q", got)
	}
	if got := mustGet(t, tr, "kex"); got != nil {
		t.Fatalf("absent key returned %q", got)
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := New()
	mustPut(t, tr, "key", "v1")
	h1 := mustHash(t, tr)
	mustPut(t, tr, "key", "v2")
	if got := mustGet(t, tr, "key"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("Get = %q", got)
	}
	if mustHash(t, tr) == h1 {
		t.Fatal("overwrite must change the root")
	}
}

func TestPutEmptyValueRejected(t *testing.T) {
	tr := New()
	if err := tr.Put([]byte("k"), nil); !errors.Is(err, ErrEmptyValue) {
		t.Fatalf("want ErrEmptyValue, got %v", err)
	}
}

func TestPrefixKeys(t *testing.T) {
	// Keys where one is a strict prefix of another exercise branch values.
	tr := New()
	mustPut(t, tr, "do", "verb")
	mustPut(t, tr, "dog", "animal")
	mustPut(t, tr, "doge", "meme")
	mustPut(t, tr, "", "root-value")

	for key, want := range map[string]string{
		"do": "verb", "dog": "animal", "doge": "meme", "": "root-value",
	} {
		if got := mustGet(t, tr, key); !bytes.Equal(got, []byte(want)) {
			t.Fatalf("Get(%q) = %q, want %q", key, got, want)
		}
	}
	if got := mustGet(t, tr, "d"); got != nil {
		t.Fatalf("Get(d) = %q, want nil", got)
	}
}

func TestDeterministicRootRegardlessOfInsertOrder(t *testing.T) {
	kv := map[string]string{}
	for i := 0; i < 100; i++ {
		kv[fmt.Sprintf("key-%d", i)] = fmt.Sprintf("val-%d", i)
	}
	build := func(order []string) chash.Hash {
		tr := New()
		for _, k := range order {
			mustPut(t, tr, k, kv[k])
		}
		return mustHash(t, tr)
	}
	var orderA, orderB []string
	for k := range kv {
		orderA = append(orderA, k)
	}
	orderB = append(orderB, orderA...)
	rand.New(rand.NewSource(1)).Shuffle(len(orderB), func(i, j int) {
		orderB[i], orderB[j] = orderB[j], orderB[i]
	})
	if build(orderA) != build(orderB) {
		t.Fatal("root must be independent of insertion order")
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := New()
	mustPut(t, tr, "a", "1")
	empty := mustHash(t, New())
	mustPut(t, tr, "b", "2")
	if err := tr.Delete([]byte("a")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := mustGet(t, tr, "a"); got != nil {
		t.Fatalf("deleted key returned %q", got)
	}
	if got := mustGet(t, tr, "b"); !bytes.Equal(got, []byte("2")) {
		t.Fatalf("surviving key = %q", got)
	}
	if err := tr.Delete([]byte("b")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if mustHash(t, tr) != empty {
		t.Fatal("deleting all keys must restore the empty root")
	}
}

func TestDeleteAbsentIsNoop(t *testing.T) {
	tr := New()
	mustPut(t, tr, "a", "1")
	h := mustHash(t, tr)
	if err := tr.Delete([]byte("zzz")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if mustHash(t, tr) != h {
		t.Fatal("deleting an absent key must not change the root")
	}
}

func TestDeleteRestoresCanonicalForm(t *testing.T) {
	// Insert-then-delete must produce the same root as never inserting,
	// exercising branch collapse and extension merging.
	keys := []string{"abcde", "abcdf", "abcxy", "ab", "q"}
	base := New()
	for _, k := range keys {
		mustPut(t, base, k, "v-"+k)
	}
	want := mustHash(t, base)

	tr := New()
	for _, k := range keys {
		mustPut(t, tr, k, "v-"+k)
	}
	extra := []string{"abcdg", "abcxz", "abd", "", "qq"}
	for _, k := range extra {
		mustPut(t, tr, k, "extra")
	}
	for _, k := range extra {
		if err := tr.Delete([]byte(k)); err != nil {
			t.Fatalf("Delete(%q): %v", k, err)
		}
	}
	if mustHash(t, tr) != want {
		t.Fatal("insert+delete must restore the original canonical root")
	}
}

func TestTrieAgainstMapQuick(t *testing.T) {
	// Property: a trie behaves exactly like a map under random workloads,
	// and equal maps yield equal roots.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		model := map[string]string{}
		for op := 0; op < 200; op++ {
			k := fmt.Sprintf("k%d", rng.Intn(40))
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Int())
				if err := tr.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 2:
				if err := tr.Delete([]byte(k)); err != nil {
					return false
				}
				delete(model, k)
			}
		}
		for k, v := range model {
			got, err := tr.Get([]byte(k))
			if err != nil || !bytes.Equal(got, []byte(v)) {
				return false
			}
		}
		// Rebuild from the model and compare roots.
		rebuilt := New()
		for k, v := range model {
			if err := rebuilt.Put([]byte(k), []byte(v)); err != nil {
				return false
			}
		}
		ha, err := tr.Hash()
		if err != nil {
			return false
		}
		hb, err := rebuilt.Hash()
		if err != nil {
			return false
		}
		return ha == hb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHashStableAcrossGets(t *testing.T) {
	tr := New()
	mustPut(t, tr, "a", "1")
	mustPut(t, tr, "ab", "2")
	h := mustHash(t, tr)
	mustGet(t, tr, "a")
	mustGet(t, tr, "zz")
	if mustHash(t, tr) != h {
		t.Fatal("Get must not change the root")
	}
}

func TestLargeTrie(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		mustPut(t, tr, fmt.Sprintf("account-%06d", i), fmt.Sprintf("balance-%d", i*7))
	}
	mustHash(t, tr)
	for _, i := range []int{0, 1, n / 2, n - 1} {
		want := fmt.Sprintf("balance-%d", i*7)
		if got := mustGet(t, tr, fmt.Sprintf("account-%06d", i)); !bytes.Equal(got, []byte(want)) {
			t.Fatalf("account %d = %q, want %q", i, got, want)
		}
	}
}
