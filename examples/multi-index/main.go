// Multi-index: the augmented vs hierarchical certificate trade-off (§5.2,
// Fig. 10) on a live deployment.
//
// With one authenticated index, the augmented scheme (block + index fused in
// one Ecall) is slightly cheaper; as indexes multiply, it re-executes full
// block verification per index while the hierarchical scheme verifies the
// block once and certifies each index against the fresh block certificate.
// This example runs both schemes over the same blocks at 1, 4, and 8 indexes
// and prints the measured construction times and enclave entry counts.
//
// Run with:
//
//	go run ./examples/multi-index
package main

import (
	"fmt"
	"os"
	"time"

	"dcert"
)

// buildDeployment creates a KV deployment with n historical indexes.
func buildDeployment(n int) (*dcert.Deployment, []string, error) {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:    dcert.KVStore,
		Contracts:   5,
		Accounts:    16,
		KeySpace:    100,
		Seed:        int64(n),
		EnclaveCost: dcert.DefaultEnclaveCostModel(),
	})
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, n)
	for i := range names {
		name := fmt.Sprintf("hist-%d", i)
		names[i] = name
		if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
			return dcert.NewHistoricalIndex(name, "ct/")
		}); err != nil {
			return nil, nil, err
		}
	}
	return dep, names, nil
}

// runScheme certifies `blocks` blocks under one scheme and reports the mean
// CI time and enclave entries per block.
func runScheme(scheme string, indexes, blocks, txs int) (time.Duration, uint64, error) {
	dep, names, err := buildDeployment(indexes)
	if err != nil {
		return 0, 0, err
	}
	var total time.Duration
	before := dep.Issuer().Enclave().Stats().Ecalls
	for i := 0; i < blocks; i++ {
		batch, err := dep.GenerateBlockTxs(txs)
		if err != nil {
			return 0, 0, err
		}
		blk, err := dep.Miner().Propose(batch)
		if err != nil {
			return 0, 0, err
		}
		jobs, err := dep.PrepareIndexJobs(blk, names)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		switch scheme {
		case "augmented":
			_, _, err = dep.Issuer().ProcessBlockAugmented(blk, jobs)
		case "hierarchical":
			_, _, _, err = dep.Issuer().ProcessBlockHierarchical(blk, jobs)
		}
		if err != nil {
			return 0, 0, fmt.Errorf("%s block %d: %w", scheme, i, err)
		}
		total += time.Since(start)
		if err := dep.SP().ProcessBlock(blk); err != nil {
			return 0, 0, err
		}
	}
	ecalls := dep.Issuer().Enclave().Stats().Ecalls - before
	return total / time.Duration(blocks), ecalls / uint64(blocks), nil
}

func main() {
	logger := dcert.NewLogger(os.Stderr, dcert.LogInfo, dcert.LogF("node", "multi-index"))
	const blocks, txs = 3, 60
	fmt.Println("augmented vs hierarchical certification (Fig. 10 live demo)")
	fmt.Printf("%-14s %-9s %-18s %s\n", "scheme", "#indexes", "CI time/block", "ecalls/block")
	for _, n := range []int{1, 4, 8} {
		for _, scheme := range []string{"augmented", "hierarchical"} {
			mean, ecalls, err := runScheme(scheme, n, blocks, txs)
			if err != nil {
				logger.Fatal("scheme run failed", dcert.LogF("scheme", scheme), dcert.LogF("indexes", n), dcert.LogF("err", err))
			}
			fmt.Printf("%-14s %-9d %-18v %d\n", scheme, n, mean.Round(time.Microsecond), ecalls)
		}
	}
	fmt.Println("\naugmented re-verifies the block per index; hierarchical verifies the")
	fmt.Println("block certificate instead, so it scales to many on-demand indexes.")
}
