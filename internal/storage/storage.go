// Package storage persists the canonical chain and its DCert certificates
// to an append-only archive file, so that full nodes, certificate issuers,
// and service providers can restart without re-synchronizing from the
// network. Records are type-tagged and length-prefixed; loading replays them
// in order, and a fresh full node re-validates every block as it would from
// live gossip (the archive is untrusted input).
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/core"
	"dcert/internal/node"
)

// Package errors.
var (
	// ErrCorrupt is returned when an archive fails structural validation.
	ErrCorrupt = errors.New("storage: corrupt archive")
)

// Record tags.
const (
	tagBlock byte = 1
	tagCert  byte = 2
)

// maxRecord bounds any single archive record (a block with thousands of
// transactions stays far below this).
const maxRecord = 256 << 20

// Archive is an append-only chain archive.
//
// Archive is not safe for concurrent use.
type Archive struct {
	f *os.File
	w *bufio.Writer
}

// Create opens (creating or truncating) an archive for writing.
func Create(path string) (*Archive, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create archive: %w", err)
	}
	return &Archive{f: f, w: bufio.NewWriter(f)}, nil
}

// appendRecord writes one tagged record.
func (a *Archive) appendRecord(tag byte, payload []byte) error {
	if err := a.w.WriteByte(tag); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := a.w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if _, err := a.w.Write(payload); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	return nil
}

// AppendBlock persists a block.
func (a *Archive) AppendBlock(blk *chain.Block) error {
	return a.appendRecord(tagBlock, blk.Marshal())
}

// AppendCert persists a block's certificate.
func (a *Archive) AppendCert(blockHash chash.Hash, cert *core.Certificate) error {
	certRaw := cert.Marshal()
	e := chash.NewEncoder(8 + chash.Size + len(certRaw))
	e.PutHash(blockHash)
	e.PutBytes(certRaw)
	return a.appendRecord(tagCert, e.Bytes())
}

// Close flushes and closes the archive.
func (a *Archive) Close() error {
	if err := a.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	if err := a.f.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	return nil
}

// Contents is a loaded archive.
type Contents struct {
	// Blocks are the archived blocks in append order (height order for a
	// canonical chain archive).
	Blocks []*chain.Block
	// Certs maps block hashes to their certificates.
	Certs map[chash.Hash]*core.Certificate
}

// Load reads an archive back. The data is structurally validated here;
// semantic validation (PoW, state transitions, certificate chains) happens
// when replaying into a node or validating certificates.
func Load(path string) (*Contents, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open archive: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	out := &Contents{Certs: make(map[chash.Hash]*core.Certificate)}
	for {
		tag, err := r.ReadByte()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("storage: read tag: %w", err)
		}
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated length", ErrCorrupt)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxRecord {
			return nil, fmt.Errorf("%w: record of %d bytes", ErrCorrupt, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: truncated record", ErrCorrupt)
		}
		switch tag {
		case tagBlock:
			blk, err := chain.UnmarshalBlock(payload)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			out.Blocks = append(out.Blocks, blk)
		case tagCert:
			d := chash.NewDecoder(payload)
			h, err := d.ReadHash()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			certRaw, err := d.ReadBytes()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if err := d.Finish(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			cert, err := core.UnmarshalCertificate(certRaw)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			out.Certs[h] = cert
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
		}
	}
}

// Replay feeds archived blocks (beyond genesis) into a freshly initialized
// full node, re-running the complete full-node validation for each. It
// returns the number of blocks applied.
func Replay(n *node.FullNode, c *Contents) (int, error) {
	applied := 0
	for _, blk := range c.Blocks {
		if blk.Header.Height == 0 {
			if blk.Hash() != n.Store().Genesis() {
				return applied, fmt.Errorf("%w: archive genesis mismatch", ErrCorrupt)
			}
			continue
		}
		if err := n.ProcessBlock(blk); err != nil {
			return applied, fmt.Errorf("storage: replay height %d: %w", blk.Header.Height, err)
		}
		applied++
	}
	return applied, nil
}

// WriteChain archives a node's entire canonical chain plus the certificates
// the issuer holds for it (certificates may be absent for some blocks, e.g.
// pre-DCert history).
func WriteChain(path string, n *node.FullNode, certFor func(chash.Hash) (*core.Certificate, bool)) error {
	a, err := Create(path)
	if err != nil {
		return err
	}
	store := n.Store()
	for h := uint64(0); h <= store.BestHeight(); h++ {
		blk, err := store.AtHeight(h)
		if err != nil {
			return fmt.Errorf("storage: write height %d: %w", h, err)
		}
		if err := a.AppendBlock(blk); err != nil {
			return err
		}
		if certFor != nil {
			if cert, ok := certFor(blk.Hash()); ok {
				if err := a.AppendCert(blk.Hash(), cert); err != nil {
					return err
				}
			}
		}
	}
	return a.Close()
}
