package query

import (
	"fmt"
	"math"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/mbtree"
	"dcert/internal/node"
)

// ServiceProvider is the SP of §3.2: a full node that additionally maintains
// authenticated indexes over the chain and answers queries with integrity
// proofs. The SP is untrusted — clients verify everything it returns against
// index roots certified by the CI.
//
// ServiceProvider is not safe for concurrent use.
type ServiceProvider struct {
	node    *node.FullNode
	indexes map[string]*TwoLevel
}

// NewServiceProvider wraps a full node.
func NewServiceProvider(n *node.FullNode) *ServiceProvider {
	return &ServiceProvider{node: n, indexes: make(map[string]*TwoLevel)}
}

// Node exposes the SP's full-node core.
func (sp *ServiceProvider) Node() *node.FullNode {
	return sp.node
}

// AddIndex registers an authenticated index. Indexes must be added before
// the blocks they should cover are processed (on-demand indexes cover data
// from their adoption point onward).
func (sp *ServiceProvider) AddIndex(ix *TwoLevel) error {
	if _, ok := sp.indexes[ix.Name()]; ok {
		return fmt.Errorf("query: index %q already added", ix.Name())
	}
	sp.indexes[ix.Name()] = ix
	return nil
}

// Index returns a registered index.
func (sp *ServiceProvider) Index(name string) (*TwoLevel, error) {
	ix, ok := sp.indexes[name]
	if !ok {
		return nil, fmt.Errorf("query: unknown index %q", name)
	}
	return ix, nil
}

// ProcessBlock validates the block as a full node, advances the state
// replica, and applies the block to every index.
func (sp *ServiceProvider) ProcessBlock(blk *chain.Block) error {
	writes, err := sp.node.ValidateBlock(blk)
	if err != nil {
		return err
	}
	if _, err := sp.node.State().Commit(writes); err != nil {
		return err
	}
	if _, err := sp.node.Store().Add(blk); err != nil {
		return err
	}
	for _, ix := range sp.indexes {
		if err := ix.Apply(blk, writes); err != nil {
			return fmt.Errorf("query: apply to %q: %w", ix.Name(), err)
		}
	}
	return nil
}

// Seal pre-hashes every lazily-hashed structure the SP serves from — the
// state commitment, each index's upper trie, and each index's lower trees —
// so that subsequent query paths (Get, Prove, WitnessForRange) are pure
// reads. A sealed SP that processes no further blocks can answer queries
// from many goroutines concurrently; the fleet's snapshot discipline relies
// on this.
func (sp *ServiceProvider) Seal() error {
	if _, err := sp.node.State().Root(); err != nil {
		return fmt.Errorf("query: seal state: %w", err)
	}
	for _, ix := range sp.indexes {
		if _, err := ix.Root(); err != nil {
			return fmt.Errorf("query: seal index %q: %w", ix.Name(), err)
		}
		for key, lower := range ix.lowers {
			if _, err := lower.Root(); err != nil {
				return fmt.Errorf("query: seal index %q key %q: %w", ix.Name(), key, err)
			}
		}
	}
	return nil
}

// HistoricalResult is the SP's answer to a historical range query.
type HistoricalResult struct {
	// Key is the queried state key.
	Key string
	// Lo and Hi bound the version window.
	Lo, Hi uint64
	// Entries are the claimed results.
	Entries []mbtree.Entry
	// Proof is the integrity/completeness proof.
	Proof *RangeProof
}

// HistoricalQuery answers "values of key in [lo, hi]" on the named index.
func (sp *ServiceProvider) HistoricalQuery(index, key string, lo, hi uint64) (*HistoricalResult, error) {
	ix, err := sp.Index(index)
	if err != nil {
		return nil, err
	}
	entries, proof, err := ix.QueryRange(key, lo, hi)
	if err != nil {
		return nil, err
	}
	return &HistoricalResult{Key: key, Lo: lo, Hi: hi, Entries: entries, Proof: proof}, nil
}

// VerifyHistorical validates a historical result against the certified index
// root.
func VerifyHistorical(indexRoot chash.Hash, res *HistoricalResult) error {
	return VerifyRange(indexRoot, res.Key, res.Lo, res.Hi, res.Entries, res.Proof)
}

// Posting is one keyword-index hit.
type Posting struct {
	// Version encodes (height, txIndex); see PostingVersion.
	Version uint64
	// TxHash is the matching transaction's digest.
	TxHash chash.Hash
}

// KeywordResult is the SP's answer to a conjunctive keyword query: the
// per-keyword posting lists with proofs, plus the claimed intersection.
type KeywordResult struct {
	// Keywords are the conjuncts, in query order.
	Keywords []string
	// Lists holds each keyword's complete posting list.
	Lists [][]mbtree.Entry
	// Proofs authenticate each list.
	Proofs []*RangeProof
	// Matches is the claimed intersection (transactions containing ALL
	// keywords), ordered by version.
	Matches []Posting
}

// ProofSize returns the total proof size in bytes.
func (r *KeywordResult) ProofSize() int {
	size := 0
	for _, p := range r.Proofs {
		size += p.EncodedSize()
	}
	return size
}

// KeywordQuery answers a conjunctive keyword query (q = [w1 AND w2 AND …],
// §5.4) on the named index.
func (sp *ServiceProvider) KeywordQuery(index string, keywords []string) (*KeywordResult, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("query: empty keyword query")
	}
	ix, err := sp.Index(index)
	if err != nil {
		return nil, err
	}
	res := &KeywordResult{Keywords: keywords}
	for _, kw := range keywords {
		entries, proof, err := ix.QueryRange(kw, 0, math.MaxUint64)
		if err != nil {
			return nil, err
		}
		res.Lists = append(res.Lists, entries)
		res.Proofs = append(res.Proofs, proof)
	}
	res.Matches = intersectPostings(res.Lists)
	return res, nil
}

// intersectPostings intersects sorted posting lists by version.
func intersectPostings(lists [][]mbtree.Entry) []Posting {
	if len(lists) == 0 {
		return nil
	}
	// Start with the shortest list to bound work.
	shortest := 0
	for i, l := range lists {
		if len(l) < len(lists[shortest]) {
			shortest = i
		}
	}
	var out []Posting
	for _, e := range lists[shortest] {
		inAll := true
		for i, l := range lists {
			if i == shortest {
				continue
			}
			if !containsVersion(l, e.Version) {
				inAll = false
				break
			}
		}
		if inAll {
			h, err := chash.FromBytes(e.Value)
			if err != nil {
				continue // malformed entry cannot be a genuine posting
			}
			out = append(out, Posting{Version: e.Version, TxHash: h})
		}
	}
	return out
}

// containsVersion binary-searches a sorted entry list.
func containsVersion(l []mbtree.Entry, v uint64) bool {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case l[mid].Version == v:
			return true
		case l[mid].Version < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// VerifyKeyword validates a conjunctive keyword result against the certified
// index root: each posting list is verified complete, and the intersection
// is recomputed locally and compared with the claim.
func VerifyKeyword(indexRoot chash.Hash, res *KeywordResult) error {
	if len(res.Keywords) == 0 || len(res.Lists) != len(res.Keywords) || len(res.Proofs) != len(res.Keywords) {
		return fmt.Errorf("%w: malformed keyword result", ErrBadProof)
	}
	for i, kw := range res.Keywords {
		if err := VerifyRange(indexRoot, kw, 0, math.MaxUint64, res.Lists[i], res.Proofs[i]); err != nil {
			return fmt.Errorf("%w: keyword %q: %v", ErrBadProof, kw, err)
		}
	}
	want := intersectPostings(res.Lists)
	if len(want) != len(res.Matches) {
		return fmt.Errorf("%w: %d matches claimed, %d proven", ErrResultMismatch, len(res.Matches), len(want))
	}
	for i := range want {
		if want[i] != res.Matches[i] {
			return fmt.Errorf("%w: match %d", ErrResultMismatch, i)
		}
	}
	return nil
}
