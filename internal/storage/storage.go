// Package storage persists the canonical chain and its DCert certificates.
//
// Two layers live here. Archive is the portable single-file chain archive
// (written by dcert-archive, replayed into fresh nodes); Engine is the
// crash-safe data directory a running deployment appends to (segment log +
// snapshot/WAL + checkpoint, see engine.go). Both share the CRC32C record
// framing defined in seglog.go, so a torn or bit-flipped record is detected
// rather than replayed.
package storage

import (
	"errors"
	"fmt"
	"os"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/core"
	"dcert/internal/node"
	"dcert/internal/storage/vfs"
)

// Package errors.
var (
	// ErrCorrupt is returned when an archive fails structural validation.
	ErrCorrupt = errors.New("storage: corrupt archive")
	// ErrExists is returned by Create when the target archive already holds
	// data; use Open to append or Recover to repair.
	ErrExists = errors.New("storage: archive already exists")
)

// Record tags.
const (
	tagBlock byte = 1
	tagCert  byte = 2
)

// maxRecord bounds any single archive record (a block with thousands of
// transactions stays far below this).
const maxRecord = 256 << 20

// Archive is an append-only chain archive: a single file of CRC32C-framed,
// length-prefixed records (the same frame layout as the engine's segment
// log).
//
// Archive is not safe for concurrent use.
type Archive struct {
	fs vfs.FS
	f  vfs.File
}

// Create opens a fresh archive for writing. It refuses to overwrite an
// archive that already holds data (ErrExists): truncating an existing
// archive must be an explicit caller decision, not a side effect.
func Create(path string) (*Archive, error) {
	return createFS(vfs.OS{}, path)
}

func createFS(fs vfs.FS, path string) (*Archive, error) {
	if info, err := fs.Stat(path); err == nil && info.Size() > 0 {
		return nil, fmt.Errorf("%w: %s (%d bytes)", ErrExists, path, info.Size())
	}
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create archive: %w", err)
	}
	return &Archive{fs: fs, f: f}, nil
}

// Open opens an existing archive for appending. The current contents are
// structurally validated first; a corrupt archive is refused (run Recover
// to repair it), so appends always extend a valid record sequence.
func Open(path string) (*Archive, error) {
	return openFS(vfs.OS{}, path)
}

func openFS(fs vfs.FS, path string) (*Archive, error) {
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return nil, fmt.Errorf("storage: open archive: %w", err)
	}
	if valid := validPrefix(raw); valid != int64(len(raw)) {
		return nil, fmt.Errorf("%w: %s has a torn tail at byte %d (run Recover)", ErrCorrupt, path, valid)
	}
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open archive: %w", err)
	}
	return &Archive{fs: fs, f: f}, nil
}

// appendRecord writes one tagged, CRC-framed record in a single Write.
func (a *Archive) appendRecord(tag byte, payload []byte) error {
	if len(payload)+1 > maxRecord {
		return fmt.Errorf("storage: append: record of %d bytes exceeds limit", len(payload))
	}
	if _, err := a.f.Write(buildFrame(tag, payload)); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	return nil
}

// AppendBlock persists a block.
func (a *Archive) AppendBlock(blk *chain.Block) error {
	return a.appendRecord(tagBlock, blk.Marshal())
}

// AppendCert persists a block's certificate.
func (a *Archive) AppendCert(blockHash chash.Hash, cert *core.Certificate) error {
	return a.appendRecord(tagCert, encodeCertPayload(blockHash, cert))
}

// Sync flushes appended records to stable storage.
func (a *Archive) Sync() error {
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// Close syncs and closes the archive. The descriptor is closed even when
// the sync fails, and the first error wins.
func (a *Archive) Close() error {
	err := a.f.Sync()
	if cerr := a.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	return nil
}

// Contents is a loaded archive.
type Contents struct {
	// Blocks are the archived blocks in append order (height order for a
	// canonical chain archive).
	Blocks []*chain.Block
	// Certs maps block hashes to their certificates.
	Certs map[chash.Hash]*core.Certificate
}

// ArchiveRecovery describes what Recover repaired.
type ArchiveRecovery struct {
	// Records is the number of valid records kept.
	Records int
	// TruncatedBytes counts bytes cut from the torn/corrupt tail.
	TruncatedBytes int64
	// Torn reports whether any repair happened.
	Torn bool
}

// Load reads an archive strictly: any structural defect — torn frame, CRC
// mismatch, oversized length, undecodable record — fails the load. Use
// Recover to salvage the valid prefix of a damaged archive.
func Load(path string) (*Contents, error) {
	return loadFS(vfs.OS{}, path)
}

func loadFS(fs vfs.FS, path string) (*Contents, error) {
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return nil, fmt.Errorf("storage: open archive: %w", err)
	}
	out := &Contents{Certs: make(map[chash.Hash]*core.Certificate)}
	off := 0
	for off < len(raw) {
		n, ok := nextFrame(raw[off:])
		if !ok {
			return nil, fmt.Errorf("%w: torn frame at byte %d", ErrCorrupt, off)
		}
		body := raw[off+frameHeaderSize : off+n]
		if err := decodeArchiveRecord(body[0], body[1:], out); err != nil {
			return nil, err
		}
		off += n
	}
	return out, nil
}

// Recover reads the valid prefix of a possibly damaged archive, truncates
// the file to that prefix (fsyncing the repair), and returns what survived.
// A record whose frame passes CRC but whose contents do not decode also
// ends the prefix: nothing corrupt is ever served.
func Recover(path string) (*Contents, *ArchiveRecovery, error) {
	return recoverFS(vfs.OS{}, path)
}

func recoverFS(fs vfs.FS, path string) (*Contents, *ArchiveRecovery, error) {
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: open archive: %w", err)
	}
	out := &Contents{Certs: make(map[chash.Hash]*core.Certificate)}
	rec := &ArchiveRecovery{}
	off := 0
	for off < len(raw) {
		n, ok := nextFrame(raw[off:])
		if !ok {
			break
		}
		body := raw[off+frameHeaderSize : off+n]
		if err := decodeArchiveRecord(body[0], body[1:], out); err != nil {
			break
		}
		off += n
		rec.Records++
	}
	if off < len(raw) {
		if err := truncateSegment(fs, path, int64(off)); err != nil {
			return nil, nil, err
		}
		rec.TruncatedBytes = int64(len(raw) - off)
		rec.Torn = true
	}
	return out, rec, nil
}

// validPrefix returns the byte length of the valid frame prefix of raw.
func validPrefix(raw []byte) int64 {
	off := 0
	for {
		n, ok := nextFrame(raw[off:])
		if !ok {
			return int64(off)
		}
		off += n
	}
}

// decodeArchiveRecord dispatches one record into Contents.
func decodeArchiveRecord(tag byte, payload []byte, out *Contents) error {
	switch tag {
	case tagBlock:
		blk, err := chain.UnmarshalBlock(payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		out.Blocks = append(out.Blocks, blk)
	case tagCert:
		h, cert, err := decodeCertPayload(payload)
		if err != nil {
			return err
		}
		out.Certs[h] = cert
	default:
		return fmt.Errorf("%w: unknown tag %d", ErrCorrupt, tag)
	}
	return nil
}

// encodeCertPayload frames a certificate record body.
func encodeCertPayload(blockHash chash.Hash, cert *core.Certificate) []byte {
	certRaw := cert.Marshal()
	e := chash.NewEncoder(8 + chash.Size + len(certRaw))
	e.PutHash(blockHash)
	e.PutBytes(certRaw)
	return e.Bytes()
}

// decodeCertPayload parses a certificate record body.
func decodeCertPayload(payload []byte) (chash.Hash, *core.Certificate, error) {
	d := chash.NewDecoder(payload)
	h, err := d.ReadHash()
	if err != nil {
		return chash.Hash{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	certRaw, err := d.ReadBytes()
	if err != nil {
		return chash.Hash{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := d.Finish(); err != nil {
		return chash.Hash{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	cert, err := core.UnmarshalCertificate(certRaw)
	if err != nil {
		return chash.Hash{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return h, cert, nil
}

// Replay feeds archived blocks (beyond genesis) into a freshly initialized
// full node, re-running the complete full-node validation for each. It
// returns the number of blocks applied.
func Replay(n *node.FullNode, c *Contents) (int, error) {
	applied := 0
	for _, blk := range c.Blocks {
		if blk.Header.Height == 0 {
			if blk.Hash() != n.Store().Genesis() {
				return applied, fmt.Errorf("%w: archive genesis mismatch", ErrCorrupt)
			}
			continue
		}
		if err := n.ProcessBlock(blk); err != nil {
			return applied, fmt.Errorf("storage: replay height %d: %w", blk.Header.Height, err)
		}
		applied++
	}
	return applied, nil
}

// WriteChain archives a node's entire canonical chain plus the certificates
// the issuer holds for it (certificates may be absent for some blocks, e.g.
// pre-DCert history).
func WriteChain(path string, n *node.FullNode, certFor func(chash.Hash) (*core.Certificate, bool)) error {
	a, err := Create(path)
	if err != nil {
		return err
	}
	store := n.Store()
	for h := uint64(0); h <= store.BestHeight(); h++ {
		blk, err := store.AtHeight(h)
		if err != nil {
			a.Close()
			return fmt.Errorf("storage: write height %d: %w", h, err)
		}
		if err := a.AppendBlock(blk); err != nil {
			a.Close()
			return err
		}
		if certFor != nil {
			if cert, ok := certFor(blk.Hash()); ok {
				if err := a.AppendCert(blk.Hash(), cert); err != nil {
					a.Close()
					return err
				}
			}
		}
	}
	return a.Close()
}
