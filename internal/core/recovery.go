package core

import (
	"errors"
	"fmt"

	"dcert/internal/attest"
	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/enclave"
	"dcert/internal/node"
)

// Issuer crash/restart recovery. A CI that dies loses its enclave (the
// sealed key is gone for good), but the untrusted host keeps the chain
// replica and the last issued certificate on disk. Because cert_verify_t
// checks certificates against the enclave *measurement* — not the signing
// key — a fresh enclave running the same trusted program can verify its
// predecessor's certificate and continue the recursion from there: no
// re-certification from genesis, ever. The checkpoint is untrusted input,
// so ResumeIssuer re-verifies it through the full attestation chain before
// adopting it.

// Recovery errors.
var (
	// ErrBadCheckpoint is returned when a recovery checkpoint fails
	// validation against the node's tip or the attestation chain.
	ErrBadCheckpoint = errors.New("core: bad issuer checkpoint")
)

// IssuerCheckpoint is the CI's minimal crash-recovery record: the identity
// of the last certified block plus its certificate. Together with the full
// node's own persistent chain state this is everything a restarted CI needs.
type IssuerCheckpoint struct {
	// Height is the last certified block's height.
	Height uint64
	// BlockHash is the last certified block's hash.
	BlockHash chash.Hash
	// Cert is the certificate issued for that block.
	Cert *Certificate
}

// Checkpoint captures the issuer's current recovery record, or nil when
// nothing has been certified yet (a restart from genesis needs no record).
func (ci *Issuer) Checkpoint() *IssuerCheckpoint {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	if ci.lastCert == nil {
		return nil
	}
	tip := ci.node.Tip()
	return &IssuerCheckpoint{
		Height:    tip.Header.Height,
		BlockHash: tip.Hash(),
		Cert:      ci.lastCert,
	}
}

// Marshal serializes the checkpoint for persistence.
func (c *IssuerCheckpoint) Marshal() []byte {
	cert := c.Cert.Marshal()
	e := chash.NewEncoder(64 + len(cert))
	e.PutUint64(c.Height)
	e.PutHash(c.BlockHash)
	e.PutBytes(cert)
	return e.Bytes()
}

// UnmarshalIssuerCheckpoint parses a persisted checkpoint.
func UnmarshalIssuerCheckpoint(raw []byte) (*IssuerCheckpoint, error) {
	d := chash.NewDecoder(raw)
	var c IssuerCheckpoint
	var err error
	if c.Height, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("core: unmarshal checkpoint: %w", err)
	}
	if c.BlockHash, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("core: unmarshal checkpoint: %w", err)
	}
	certRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("core: unmarshal checkpoint: %w", err)
	}
	if c.Cert, err = UnmarshalCertificate(certRaw); err != nil {
		return nil, fmt.Errorf("core: unmarshal checkpoint: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: unmarshal checkpoint: %w", err)
	}
	return &c, nil
}

// ResumeIssuer restarts a crashed CI on its surviving full-node replica: a
// new enclave (fresh sealed key, fresh attestation report, same measured
// program) adopts the checkpointed certificate as the base of its recursive
// chain and continues certifying from the node's tip — never from genesis.
//
// The checkpoint must describe the node's current tip, and its certificate
// must verify through the complete attestation chain (it may have been
// issued by any enclave running the same trusted program, including the
// crashed predecessor). A nil checkpoint is only valid at genesis, where
// plain initialization suffices.
func ResumeIssuer(n *node.FullNode, authority *attest.Authority, platform *attest.Platform, cost enclave.CostModel, ckpt *IssuerCheckpoint) (*Issuer, error) {
	tip := n.Tip()
	if ckpt == nil {
		if tip.Header.Height != 0 {
			return nil, fmt.Errorf("%w: nil checkpoint with tip at height %d", ErrBadCheckpoint, tip.Header.Height)
		}
		return NewIssuer(n, authority, platform, cost)
	}
	if ckpt.BlockHash != tip.Hash() || ckpt.Height != tip.Header.Height {
		return nil, fmt.Errorf("%w: checkpoint (height %d, %s) does not match node tip (height %d, %s)",
			ErrBadCheckpoint, ckpt.Height, ckpt.BlockHash, tip.Header.Height, tip.Hash())
	}
	ci, err := NewIssuer(n, authority, platform, cost)
	if err != nil {
		return nil, err
	}
	// The checkpoint came from untrusted storage: verify its certificate
	// exactly as the enclave would a peer's (authority signature, program
	// measurement, signature over the certified digest). The certificate may
	// cover a K-block segment ending at the tip, so recover the covered
	// suffix first — for a single-block certificate the one-header suffix
	// matches immediately, keeping pre-segment checkpoints valid unchanged.
	headers, err := segmentSuffixFor(n, tip.Header.Height, ckpt.Cert.Digest)
	if err != nil {
		return nil, err
	}
	if err := ckpt.Cert.Verify(authority.PublicKey(), ci.Measurement(), SegmentDigest(headers)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	ci.mu.Lock()
	ci.lastCert = ckpt.Cert
	for _, h := range headers {
		ci.certs[h.Hash()] = ckpt.Cert
	}
	ci.recordSegmentLocked(headers, ckpt.Cert)
	ci.mu.Unlock()
	return ci, nil
}

// segmentSuffixFor finds the chain suffix ending at the tip whose segment
// digest matches a checkpointed certificate's digest — i.e. which blocks the
// certificate covers. Single-block certificates match at length 1 (their
// segment digest IS the block digest); a certificate from a K-block segment
// committer matches at its segment length.
func segmentSuffixFor(n *node.FullNode, tipHeight uint64, digest chash.Hash) ([]*chain.Header, error) {
	var suffix []*chain.Header
	for k := 1; k <= maxSegmentBlocks; k++ {
		h := tipHeight + 1 - uint64(k)
		blk, err := n.Store().AtHeight(h)
		if err != nil {
			break // ran out of chain below the tip
		}
		suffix = append([]*chain.Header{&blk.Header}, suffix...)
		if SegmentDigest(suffix) == digest {
			return suffix, nil
		}
		if h == 0 {
			break
		}
	}
	return nil, fmt.Errorf("%w: certificate digest matches no chain suffix at the tip", ErrBadCheckpoint)
}
