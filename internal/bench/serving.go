package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcert"
	"dcert/internal/query"
	"dcert/internal/workload"
)

// Serving-plane experiment. A closed-loop load generator simulates a large
// population of superlight clients issuing verifiable state reads, and
// compares two serving configurations over the same chain:
//
//   - single SP — the pre-fleet wire door: every request runs the full
//     uncached prove path on one ServiceProvider (query.HandleRaw);
//   - fleet — the sharded serving plane: a consistent-hash router spreads
//     keys over N replicas, each with a singleflight LRU response cache.
//
// Every response is parsed and verified against the certified tip header;
// an unverifiable response fails the experiment. As with the pipeline
// experiment, two throughput numbers are reported per side: the wall
// requests/s actually measured on this host, and a modeled requests/s for an
// N-core host — replicas own disjoint key shards and share nothing on the
// read path, so fleet throughput is N / (mean per-request service time),
// with the mean service time measured, not assumed.
//
// Two micro-measurements complete the picture:
//
//   - burst — a cold-key 100-way burst gauges singleflight: the whole burst
//     must collapse onto one proof computation;
//   - batch — one K=16 batched multiproof request against 16 sequential
//     single-key round trips, both on the uncached path (the merged witness
//     shares upper trie nodes, so the batch must cost well under half).

// ServingSide is one serving configuration's measurement.
type ServingSide struct {
	// WallRPS is requests/s actually measured on this host.
	WallRPS float64 `json:"wall_rps"`
	// ModeledRPS is the N-core schedule model: replicas / mean service time
	// (N=1 for the single SP).
	ModeledRPS float64 `json:"modeled_rps"`
	// MeanServiceUS is the measured mean per-request service time (µs).
	MeanServiceUS float64 `json:"mean_service_us"`
	// P50US and P99US are per-request latency percentiles (µs).
	P50US float64 `json:"p50_us"`
	P99US float64 `json:"p99_us"`
	// HitRate is the response-cache hit fraction (hits+collapsed over
	// served; zero for the uncached single SP).
	HitRate float64 `json:"hit_rate"`
	// Modeled flags ModeledRPS as schedule-model output.
	Modeled bool `json:"modeled"`
}

// ServingResult is the full experiment output (and the BENCH_serving.json
// schema).
type ServingResult struct {
	Scale    string `json:"scale"`
	Replicas int    `json:"replicas"`
	// Clients is the simulated superlight-client population; each client
	// issues one verified request.
	Clients int `json:"clients"`
	// HotKeys is the distinct-key working set the population draws from.
	HotKeys int `json:"hot_keys"`
	// Verified counts responses that passed client-side verification
	// (every request, across both sides and the micro-measurements).
	Verified int `json:"verified_responses"`

	SingleSP ServingSide `json:"single_sp"`
	Fleet    ServingSide `json:"fleet"`
	// SpeedupModeled is Fleet.ModeledRPS / SingleSP.ModeledRPS — the
	// headline (gate: ≥3 at 4 replicas).
	SpeedupModeled float64 `json:"speedup_modeled"`
	// SpeedupWall is the same ratio on wall numbers.
	SpeedupWall float64 `json:"speedup_wall"`

	// BurstWaiters concurrent requests for one cold key produced
	// BurstComputations proof computations (gate: exactly 1) and
	// BurstCollapsed singleflight-collapsed waiters.
	BurstWaiters      int    `json:"burst_waiters"`
	BurstComputations uint64 `json:"burst_computations"`
	BurstCollapsed    uint64 `json:"burst_collapsed"`

	// BatchK-key batched multiproof vs BatchK sequential single-key round
	// trips, uncached path, averaged over reps (gate: ratio < 0.5).
	BatchK       int     `json:"batch_k"`
	BatchMS      float64 `json:"batch_ms"`
	SequentialMS float64 `json:"sequential_ms"`
	// BatchRatio is BatchMS / SequentialMS.
	BatchRatio float64 `json:"batch_ratio"`
}

// servingParams sizes the experiment.
type servingParams struct {
	clients  int
	hotKeys  int
	workers  int
	replicas int
	burst    int
	batchK   int
	reps     int
	blocks   int
}

func servingParamsFor(scale Scale) servingParams {
	p := servingParams{
		clients:  10_000,
		hotKeys:  64,
		workers:  32,
		replicas: 4,
		burst:    100,
		batchK:   16,
		reps:     8,
		blocks:   4,
	}
	if scale == Paper {
		p.clients = 50_000
		p.hotKeys = 256
		p.blocks = 8
	}
	return p
}

// servingLoop drives n closed-loop requests through handle with c workers,
// verifying every response against hdr; it returns the wall time and the
// sorted per-request latencies.
func servingLoop(n, c, hotKeys int, keys []string, hdr *dcert.Header,
	handle func(raw []byte) []byte) (time.Duration, []time.Duration, error) {
	lat := make([]time.Duration, n)
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || firstErr.Load() != nil {
					return
				}
				req := query.NewStateRequest(keys[i%hotKeys])
				req.ID = uint64(i + 1) // each simulated client is distinct
				raw := req.Marshal()
				t0 := time.Now()
				respRaw := handle(raw)
				lat[i] = time.Since(t0)
				resp, err := query.UnmarshalResponse(respRaw)
				if err == nil && resp.Err != "" {
					err = fmt.Errorf("remote: %s", resp.Err)
				}
				var res *query.StateResult
				if err == nil {
					res, err = query.UnmarshalStateResult(resp.Body)
				}
				if err == nil {
					err = query.VerifyState(hdr, res)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("request %d (%s): %w", i, keys[i%hotKeys], err))
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err := firstErr.Load(); err != nil {
		return 0, nil, err.(error)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return wall, lat, nil
}

// pct reads a percentile from sorted latencies, in µs.
func pct(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}

// fleetCacheStats sums response-cache counters across the fleet.
func fleetCacheStats(f *dcert.QueryFleet) (hits, misses, collapsed uint64) {
	for _, name := range f.Router().Members() {
		rep, err := f.Replica(name)
		if err != nil {
			continue
		}
		h, m, c, _ := rep.Cache().Stats()
		hits += h
		misses += m
		collapsed += c
	}
	return
}

// RunServing measures the sharded serving plane against the single-SP
// baseline on one chain.
func RunServing(scale Scale) (*ServingResult, error) {
	sp := servingParamsFor(scale)
	p := ParamsFor(scale)
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:   dcert.KVStore,
		Contracts:  p.Contracts,
		Accounts:   p.Accounts,
		Difficulty: 2,
		Seed:       21,
		KeySpace:   sp.hotKeys,
	})
	if err != nil {
		return nil, err
	}
	var tip *dcert.Block
	for i := 0; i < sp.blocks; i++ {
		if tip, _, err = dep.MineAndCertify(p.DefaultBlockSize); err != nil {
			return nil, err
		}
	}
	fleet, err := dep.StartFleet(sp.replicas)
	if err != nil {
		return nil, err
	}
	hdr := &tip.Header

	// The working set: state keys the workload actually wrote.
	var keys []string
	for c := 0; c < p.Contracts && len(keys) < sp.hotKeys; c++ {
		for i := 0; i < sp.hotKeys && len(keys) < sp.hotKeys; i++ {
			probe := fmt.Sprintf("ct/%s/kv/user-key-%d", workload.ContractName(workload.KVStore, c), i)
			res, err := dep.SP().StateQuery(probe)
			if err != nil {
				return nil, err
			}
			if res.Value != nil {
				keys = append(keys, probe)
			}
		}
	}
	if len(keys) < sp.batchK {
		return nil, fmt.Errorf("bench: only %d written keys, need ≥%d", len(keys), sp.batchK)
	}
	hot := sp.hotKeys
	if hot > len(keys) {
		hot = len(keys)
	}

	res := &ServingResult{
		Scale:    scale.String(),
		Replicas: sp.replicas,
		Clients:  sp.clients,
		HotKeys:  hot,
	}

	// Side 1: single SP, the pre-fleet wire door (uncached prove path).
	singleSP := dep.SP()
	wall, lat, err := servingLoop(sp.clients, sp.workers, hot, keys, hdr,
		func(raw []byte) []byte { return query.HandleRaw(singleSP, raw) })
	if err != nil {
		return nil, fmt.Errorf("bench: single SP: %w", err)
	}
	res.Verified += sp.clients
	mean := wall.Seconds() / float64(sp.clients)
	res.SingleSP = ServingSide{
		WallRPS:       float64(sp.clients) / wall.Seconds(),
		ModeledRPS:    1 / mean,
		MeanServiceUS: mean * 1e6,
		P50US:         pct(lat, 0.50),
		P99US:         pct(lat, 0.99),
		Modeled:       true,
	}

	// Side 2: the fleet door (router + per-replica singleflight LRU).
	wall, lat, err = servingLoop(sp.clients, sp.workers, hot, keys, hdr, fleet.HandleRaw)
	if err != nil {
		return nil, fmt.Errorf("bench: fleet: %w", err)
	}
	res.Verified += sp.clients
	hits, misses, collapsed := fleetCacheStats(fleet)
	mean = wall.Seconds() / float64(sp.clients)
	res.Fleet = ServingSide{
		WallRPS:       float64(sp.clients) / wall.Seconds(),
		ModeledRPS:    float64(sp.replicas) / mean,
		MeanServiceUS: mean * 1e6,
		P50US:         pct(lat, 0.50),
		P99US:         pct(lat, 0.99),
		HitRate:       float64(hits+collapsed) / float64(hits+misses+collapsed),
		Modeled:       true,
	}
	res.SpeedupModeled = res.Fleet.ModeledRPS / res.SingleSP.ModeledRPS
	res.SpeedupWall = res.Fleet.WallRPS / res.SingleSP.WallRPS

	// Burst: mine one block (advancing every replica resets its cache, so
	// the key is cold again), then slam one key from all waiters at once.
	if tip, _, err = dep.MineAndCertify(p.DefaultBlockSize / 4); err != nil {
		return nil, err
	}
	hdr = &tip.Header
	_, m0, c0 := fleetCacheStats(fleet)
	var ready, done sync.WaitGroup
	gate := make(chan struct{})
	var burstErr atomic.Value
	for i := 0; i < sp.burst; i++ {
		ready.Add(1)
		done.Add(1)
		go func(id uint64) {
			defer done.Done()
			req := query.NewStateRequest(keys[0])
			req.ID = id
			ready.Done()
			<-gate
			resp := fleet.Handle(req)
			if resp.Err != "" {
				burstErr.CompareAndSwap(nil, fmt.Errorf("burst: remote: %s", resp.Err))
				return
			}
			r, err := query.UnmarshalStateResult(resp.Body)
			if err == nil {
				err = query.VerifyState(hdr, r)
			}
			if err != nil {
				burstErr.CompareAndSwap(nil, fmt.Errorf("burst: %w", err))
			}
		}(uint64(i + 1))
	}
	ready.Wait()
	close(gate)
	done.Wait()
	if err := burstErr.Load(); err != nil {
		return nil, err.(error)
	}
	res.Verified += sp.burst
	_, m1, c1 := fleetCacheStats(fleet)
	res.BurstWaiters = sp.burst
	res.BurstComputations = m1 - m0
	res.BurstCollapsed = c1 - c0

	// Batch: K-key multiproof vs K sequential round trips, both on the
	// uncached single-SP path so the comparison isolates the merged witness.
	res.BatchK = sp.batchK
	var batchSec, seqSec float64
	for rep := 0; rep < sp.reps; rep++ {
		batch := make([]string, sp.batchK)
		for i := range batch {
			batch[i] = keys[(rep*sp.batchK+i)%len(keys)]
		}

		t0 := time.Now()
		breq := query.NewBatchStateRequest(batch)
		bresp := query.Execute(singleSP, breq)
		if bresp.Err != "" {
			return nil, fmt.Errorf("bench: batch: %s", bresp.Err)
		}
		br, err := query.UnmarshalBatchStateResult(bresp.Body)
		if err == nil {
			err = query.VerifyBatchState(hdr, br)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: batch: %w", err)
		}
		batchSec += time.Since(t0).Seconds()
		res.Verified++

		t0 = time.Now()
		for _, k := range batch {
			sresp := query.Execute(singleSP, query.NewStateRequest(k))
			if sresp.Err != "" {
				return nil, fmt.Errorf("bench: sequential: %s", sresp.Err)
			}
			sr, err := query.UnmarshalStateResult(sresp.Body)
			if err == nil {
				err = query.VerifyState(hdr, sr)
			}
			if err != nil {
				return nil, fmt.Errorf("bench: sequential: %w", err)
			}
			res.Verified++
		}
		seqSec += time.Since(t0).Seconds()
	}
	res.BatchMS = batchSec / float64(sp.reps) * 1000
	res.SequentialMS = seqSec / float64(sp.reps) * 1000
	res.BatchRatio = batchSec / seqSec
	return res, nil
}

// WriteJSON persists the result (the make bench-json artifact).
func (r *ServingResult) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Table renders the result.
func (r *ServingResult) Table() *Table {
	t := &Table{
		Title: "Serving — sharded SP fleet vs single SP",
		Note: fmt.Sprintf("%d clients over %d hot keys, every response verified (%d total); modeled rps assumes one core per replica; burst: %d waiters → %d computation(s), %d collapsed; batch K=%d: %.2f ms vs %.2f ms sequential (%.2fx)",
			r.Clients, r.HotKeys, r.Verified, r.BurstWaiters, r.BurstComputations, r.BurstCollapsed,
			r.BatchK, r.BatchMS, r.SequentialMS, r.BatchRatio),
		Columns: []string{"side", "replicas", "wall rps", "modeled rps", "mean µs", "p50 µs", "p99 µs", "hit rate"},
	}
	row := func(name string, n int, s ServingSide) []string {
		return []string{
			name, fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", s.WallRPS), fmt.Sprintf("%.0f", s.ModeledRPS),
			fmt.Sprintf("%.1f", s.MeanServiceUS),
			fmt.Sprintf("%.1f", s.P50US), fmt.Sprintf("%.1f", s.P99US),
			fmt.Sprintf("%.3f", s.HitRate),
		}
	}
	t.Rows = append(t.Rows, row("single-sp", 1, r.SingleSP))
	t.Rows = append(t.Rows, row("fleet", r.Replicas, r.Fleet))
	t.Rows = append(t.Rows, []string{"speedup", "", fmt.Sprintf("%.2fx", r.SpeedupWall),
		fmt.Sprintf("%.2fx", r.SpeedupModeled), "", "", "", ""})
	return t
}
