package node

import (
	"errors"
	"testing"

	"dcert/internal/chain"
	"dcert/internal/consensus"
	"dcert/internal/statedb"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// testChain wires a miner and an independent full node over the same genesis.
type testChain struct {
	miner *Miner
	full  *FullNode
	gen   *workload.Generator
}

func newTestChain(t *testing.T, kind workload.Kind) *testChain {
	t.Helper()
	accounts, err := workload.NewAccounts(6)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	cfg := workload.Config{Kind: kind, Contracts: 3, Seed: 5, KeySpace: 40, CPUSortSize: 32, IOOpsPerTx: 3}
	params := consensus.Params{Difficulty: 4}

	mkNode := func() *FullNode {
		t.Helper()
		reg := vm.NewRegistry()
		if err := workload.Register(reg, kind, cfg.Contracts); err != nil {
			t.Fatalf("Register: %v", err)
		}
		genesis, db, err := BuildGenesis(GenesisConfig{Time: 1, Consensus: params})
		if err != nil {
			t.Fatalf("BuildGenesis: %v", err)
		}
		n, err := NewFullNode(genesis, db, reg, params)
		if err != nil {
			t.Fatalf("NewFullNode: %v", err)
		}
		return n
	}

	gen, err := workload.NewGenerator(cfg, accounts)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return &testChain{miner: NewMiner(mkNode()), full: mkNode(), gen: gen}
}

func (tc *testChain) mine(t *testing.T, n int) *chain.Block {
	t.Helper()
	txs, err := tc.gen.Block(n)
	if err != nil {
		t.Fatalf("gen.Block: %v", err)
	}
	b, err := tc.miner.Propose(txs)
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	return b
}

func TestGenesisDeterministic(t *testing.T) {
	cfg := GenesisConfig{Time: 7, State: map[string][]byte{"k": []byte("v")}}
	a, _, err := BuildGenesis(cfg)
	if err != nil {
		t.Fatalf("BuildGenesis: %v", err)
	}
	b, _, err := BuildGenesis(cfg)
	if err != nil {
		t.Fatalf("BuildGenesis: %v", err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("genesis must be deterministic")
	}
}

func TestMinerProposesValidBlocks(t *testing.T) {
	tc := newTestChain(t, workload.KVStore)
	for i := 0; i < 5; i++ {
		b := tc.mine(t, 10)
		if err := tc.full.ProcessBlock(b); err != nil {
			t.Fatalf("ProcessBlock(%d): %v", i, err)
		}
	}
	if tc.full.Tip().Header.Height != 5 {
		t.Fatalf("full node height = %d, want 5", tc.full.Tip().Header.Height)
	}
	if tc.full.Tip().Hash() != tc.miner.Tip().Hash() {
		t.Fatal("miner and full node diverged")
	}
	// Both state replicas must agree.
	mr, err := tc.miner.State().Root()
	if err != nil {
		t.Fatalf("miner Root: %v", err)
	}
	fr, err := tc.full.State().Root()
	if err != nil {
		t.Fatalf("full Root: %v", err)
	}
	if mr != fr {
		t.Fatal("state replicas diverged")
	}
}

func TestAllWorkloadsProcessCleanly(t *testing.T) {
	for _, kind := range workload.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestChain(t, kind)
			for i := 0; i < 3; i++ {
				b := tc.mine(t, 8)
				if err := tc.full.ProcessBlock(b); err != nil {
					t.Fatalf("ProcessBlock: %v", err)
				}
			}
		})
	}
}

func TestFullNodeRejectsTamperedStateRoot(t *testing.T) {
	tc := newTestChain(t, workload.KVStore)
	b := tc.mine(t, 5)
	tampered := *b
	tampered.Header.StateRoot = chainHashOf(t, "bogus")
	// Re-seal so PoW passes and the failure is attributed to the state root.
	if err := consensus.Seal(tc.full.Params(), &tampered.Header); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	err := tc.full.ProcessBlock(&tampered)
	if err == nil {
		t.Fatal("tampered state root must be rejected")
	}
	if !errors.Is(err, ErrStateMismatch) && !errors.Is(err, statedb.ErrStateRootMismatch) {
		t.Fatalf("unexpected error class: %v", err)
	}
}

func TestFullNodeRejectsTamperedTxs(t *testing.T) {
	tc := newTestChain(t, workload.KVStore)
	b := tc.mine(t, 5)
	tampered := &chain.Block{Header: b.Header, Txs: b.Txs[:4]}
	if err := tc.full.ProcessBlock(tampered); !errors.Is(err, chain.ErrBadBlock) {
		t.Fatalf("want ErrBadBlock, got %v", err)
	}
}

func TestFullNodeRejectsBadPoW(t *testing.T) {
	tc := newTestChain(t, workload.DoNothing)
	b := tc.mine(t, 2)
	tampered := *b
	tampered.Header.Consensus.Difficulty = 0
	if err := tc.full.ProcessBlock(&tampered); !errors.Is(err, consensus.ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestFullNodeRejectsNonExtendingBlock(t *testing.T) {
	tc := newTestChain(t, workload.DoNothing)
	b1 := tc.mine(t, 1)
	b2 := tc.mine(t, 1)
	// Process b2 without b1: does not extend the tip.
	if err := tc.full.ProcessBlock(b2); !errors.Is(err, ErrNotNextBlock) {
		t.Fatalf("want ErrNotNextBlock, got %v", err)
	}
	if err := tc.full.ProcessBlock(b1); err != nil {
		t.Fatalf("ProcessBlock(b1): %v", err)
	}
	if err := tc.full.ProcessBlock(b2); err != nil {
		t.Fatalf("ProcessBlock(b2): %v", err)
	}
}

func TestMinerRejectsInvalidTx(t *testing.T) {
	tc := newTestChain(t, workload.KVStore)
	txs, err := tc.gen.Block(3)
	if err != nil {
		t.Fatalf("gen.Block: %v", err)
	}
	txs[1].Signature[4] ^= 0xff
	if _, err := tc.miner.Propose(txs); err == nil {
		t.Fatal("miner must reject invalid transactions")
	}
}

func TestNewFullNodeRejectsMismatchedGenesisState(t *testing.T) {
	genesis, _, err := BuildGenesis(GenesisConfig{Time: 1})
	if err != nil {
		t.Fatalf("BuildGenesis: %v", err)
	}
	otherDB := statedb.New()
	if err := otherDB.Set([]byte("x"), []byte("y")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if _, err := NewFullNode(genesis, otherDB, vm.NewRegistry(), consensus.Params{}); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("want ErrStateMismatch, got %v", err)
	}
}

// chainHashOf builds a deterministic bogus hash for tests.
func chainHashOf(t *testing.T, s string) (h [32]byte) {
	t.Helper()
	copy(h[:], s)
	return h
}
