package query

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dcert/internal/network"
)

// servedRig builds a rig with indexes and a running network query server.
func servedRig(t *testing.T) (*rig, *network.Network, *Requester, func()) {
	t.Helper()
	r, _, _ := queryableRig(t)
	net := network.New()
	srv := Serve(r.sp, net)
	req := NewRequester(net, 2*time.Second)
	cleanup := func() {
		req.Close()
		srv.Stop()
		net.Close()
	}
	return r, net, req, cleanup
}

func TestNetworkedHistoricalQuery(t *testing.T) {
	r, _, req, cleanup := servedRig(t)
	defer cleanup()

	ix, err := r.sp.Index("hist")
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, ix)
	res, err := req.Historical("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("Historical: %v", err)
	}
	if err := VerifyHistorical(root, res); err != nil {
		t.Fatalf("VerifyHistorical over the wire: %v", err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("expected remote results")
	}
}

func TestNetworkedKeywordQuery(t *testing.T) {
	r, _, req, cleanup := servedRig(t)
	defer cleanup()

	ix, err := r.sp.Index("kw")
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := req.Keyword("kw", []string{"deposit_check"})
	if err != nil {
		t.Fatalf("Keyword: %v", err)
	}
	if err := VerifyKeyword(root, res); err != nil {
		t.Fatalf("VerifyKeyword over the wire: %v", err)
	}
}

func TestNetworkedStateQuery(t *testing.T) {
	r, _, req, cleanup := servedRig(t)
	defer cleanup()

	tip := r.sp.Node().Tip()
	res, err := req.State("never-written")
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if err := VerifyState(&tip.Header, res); err != nil {
		t.Fatalf("VerifyState over the wire: %v", err)
	}
}

func TestNetworkedQueryRemoteError(t *testing.T) {
	_, _, req, cleanup := servedRig(t)
	defer cleanup()

	_, err := req.Historical("no-such-index", "k", 0, 1)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "unknown index") {
		t.Fatalf("remote error should carry the cause: %v", err)
	}
}

func TestNetworkedQueryTimeout(t *testing.T) {
	// No server running on this fabric.
	net := network.New()
	defer net.Close()
	req := NewRequester(net, 50*time.Millisecond)
	defer req.Close()
	if _, err := req.Historical("hist", "k", 0, 1); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestNetworkedQueryConcurrentClients(t *testing.T) {
	r, _, req, cleanup := servedRig(t)
	defer cleanup()

	ix, err := r.sp.Index("hist")
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, ix)

	const parallel = 8
	errs := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		go func() {
			res, err := req.Historical("hist", key, 0, 100)
			if err != nil {
				errs <- err
				return
			}
			errs <- VerifyHistorical(root, res)
		}()
	}
	for i := 0; i < parallel; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent query %d: %v", i, err)
		}
	}
}

func TestRetryingRequesterSurvivesDrops(t *testing.T) {
	r, net, _, cleanup := servedRig(t)
	defer cleanup()

	// Drop 60% of both request and response traffic; 6 attempts with fast
	// backoff push the success probability to ~1 for a seeded stream.
	net.SetFaults(&network.FaultPlan{Seed: 21, Rules: []network.FaultRule{
		{Topic: TopicQueries, Drop: 0.6},
		{Topic: TopicResults, Drop: 0.6},
	}})
	req := NewRequesterWithPolicy(net, 30*time.Millisecond, RetryPolicy{
		MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, JitterSeed: 21,
	})
	defer req.Close()

	ix, err := r.sp.Index("hist")
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, ix)
	res, err := req.Historical("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("Historical under 60%% loss: %v", err)
	}
	if err := VerifyHistorical(root, res); err != nil {
		t.Fatalf("VerifyHistorical: %v", err)
	}
}

func TestRetriedTimeoutIsErrTimeout(t *testing.T) {
	// No server: every attempt times out; the final error must still be
	// errors.Is-able as ErrTimeout through the retry wrapper.
	net := network.New()
	defer net.Close()
	req := NewRequesterWithPolicy(net, 10*time.Millisecond, RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Millisecond,
	})
	defer req.Close()
	if _, err := req.State("k"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout through retry path, got %v", err)
	}
}

func TestRemoteErrorIsNotRetried(t *testing.T) {
	r, net, _, cleanup := servedRig(t)
	defer cleanup()
	_ = r
	// Huge backoff: if the remote error were retried, the call would stall
	// for minutes instead of returning on the first attempt.
	req := NewRequesterWithPolicy(net, 2*time.Second, RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Minute})
	defer req.Close()
	start := time.Now()
	_, err := req.Historical("no-such-index", "k", 0, 1)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote through retry path, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("remote error appears to have been retried: took %v", elapsed)
	}
}

func TestCloseFailsPendingRequestsImmediately(t *testing.T) {
	// No server, long timeout: the request would block for 10s; Close must
	// release it at once with ErrRequesterClosed (not ErrTimeout).
	net := network.New()
	defer net.Close()
	req := NewRequesterWithPolicy(net, 10*time.Second, RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Second})
	errs := make(chan error, 1)
	go func() {
		_, err := req.State("k")
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the attempt get in flight
	start := time.Now()
	req.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrRequesterClosed) {
			t.Fatalf("want ErrRequesterClosed, got %v", err)
		}
		if errors.Is(err, ErrTimeout) {
			t.Fatalf("closed request must not read as a timeout: %v", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("Close took %v to release the pending request", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending request still blocked after Close")
	}
	if _, err := req.State("k"); !errors.Is(err, ErrRequesterClosed) {
		t.Fatalf("post-Close request: want ErrRequesterClosed, got %v", err)
	}
}

func TestServerIgnoresMalformedAndNonByteRequests(t *testing.T) {
	r, net, req, cleanup := servedRig(t)
	defer cleanup()

	// Garbage bytes, truncated request, and a non-[]byte payload must all be
	// ignored without wedging the serve loop.
	if err := net.Publish(TopicQueries, "fuzzer", []byte{0xff, 0x01}); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := net.Publish(TopicQueries, "fuzzer", (&Request{ID: 9, Kind: reqState, Key: "k"}).Marshal()[:3]); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := net.Publish(TopicQueries, "fuzzer", 12345); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	// The server still answers well-formed requests afterwards.
	tip := r.sp.Node().Tip()
	res, err := req.State("still-served")
	if err != nil {
		t.Fatalf("State after malformed traffic: %v", err)
	}
	if err := VerifyState(&tip.Header, res); err != nil {
		t.Fatalf("VerifyState: %v", err)
	}
}

func TestServerRejectsUnknownRequestKind(t *testing.T) {
	_, net, _, cleanup := servedRig(t)
	defer cleanup()

	results := net.Subscribe(TopicResults, 8)
	defer results.Cancel()
	if err := net.Publish(TopicQueries, "client", (&Request{ID: 77, Kind: 0xAB}).Marshal()); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	select {
	case m := <-results.C:
		resp, err := UnmarshalResponse(m.Payload.([]byte))
		if err != nil {
			t.Fatalf("UnmarshalResponse: %v", err)
		}
		if resp.ID != 77 || !strings.Contains(resp.Err, "unknown request kind") {
			t.Fatalf("response = %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no response to unknown-kind request")
	}
}

func TestServerIdempotentUnderDuplicatedRequests(t *testing.T) {
	r, _, _ := queryableRig(t)
	net := network.New()
	defer net.Close()
	srv := Serve(r.sp, net)
	defer srv.Stop()

	results := net.Subscribe(TopicResults, 16)
	defer results.Cancel()
	raw := (&Request{ID: 42, Kind: reqState, Key: "dup"}).Marshal()
	const resends = 4
	for i := 0; i < resends; i++ {
		if err := net.Publish(TopicQueries, "client", raw); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}

	// Every duplicate is answered (byte-identical), but computed only once.
	var first []byte
	got := 0
	deadline := time.After(2 * time.Second)
	for got < resends {
		select {
		case m := <-results.C:
			resp, err := UnmarshalResponse(m.Payload.([]byte))
			if err != nil {
				t.Fatalf("UnmarshalResponse: %v", err)
			}
			if resp.ID != 42 {
				t.Fatalf("unexpected response ID %d", resp.ID)
			}
			if first == nil {
				first = m.Payload.([]byte)
			} else if string(first) != string(m.Payload.([]byte)) {
				t.Fatal("duplicate request produced a different response")
			}
			got++
		case <-deadline:
			t.Fatalf("only %d/%d duplicate responses arrived", got, resends)
		}
	}
	computed, replayed := srv.Stats()
	if computed != 1 {
		t.Fatalf("server computed %d times for one unique request", computed)
	}
	if replayed != resends-1 {
		t.Fatalf("server replayed %d times, want %d", replayed, resends-1)
	}
}

func TestRequestMarshalRoundTrip(t *testing.T) {
	req := &Request{ID: 7, Kind: reqKeyword, Index: "kw", Keywords: []string{"a", "b"}}
	parsed, err := UnmarshalRequest(req.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalRequest: %v", err)
	}
	if parsed.ID != 7 || parsed.Kind != reqKeyword || len(parsed.Keywords) != 2 {
		t.Fatalf("round trip mismatch: %+v", parsed)
	}
	if _, err := UnmarshalRequest([]byte{1}); err == nil {
		t.Fatal("want error for garbage request")
	}
	if _, err := UnmarshalResponse([]byte{1}); err == nil {
		t.Fatal("want error for garbage response")
	}
}
