// Command dcert-bench regenerates the DCert paper's evaluation (§7): every
// figure and table, at a CI-friendly "small" scale or the paper's "paper"
// scale.
//
// Usage:
//
//	dcert-bench [-scale small|paper] [-exp all|params|fig7|fig8|fig9|fig10|fig11|headline|ablation|vendors|pipeline|certify|state|storage|serving] [-json path]
//	            [-cpuprofile path] [-memprofile path]
//
// Output is a set of plain-text tables with the same rows/series the paper
// plots; EXPERIMENTS.md records a reference run next to the paper's numbers.
// The profile flags capture pprof data over the selected experiments, for
// digging into hashing hot spots found by -exp state.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dcert/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dcert-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	scaleFlag := flag.String("scale", "small", "experiment scale: small (seconds) or paper (minutes)")
	expFlag := flag.String("exp", "all", "experiment: all, params, fig7, fig8, fig9, fig10, fig11, headline, ablation, vendors, pipeline, certify, state, storage, serving")
	jsonFlag := flag.String("json", "", "also write the pipeline/state experiment result as JSON to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this path")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dcert-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap counters before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dcert-bench: memprofile: %v\n", err)
			}
		}()
	}

	runners := map[string]func() error{
		"params": func() error {
			bench.RunParams(scale).Fprint(os.Stdout)
			return nil
		},
		"fig7": func() error {
			res, err := bench.RunFig7(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			return nil
		},
		"fig8": func() error {
			res, err := bench.RunFig8(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			return nil
		},
		"fig9": func() error {
			res, err := bench.RunFig9(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			return nil
		},
		"fig10": func() error {
			res, err := bench.RunFig10(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			return nil
		},
		"fig11": func() error {
			res, err := bench.RunFig11(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			return nil
		},
		"headline": func() error {
			res, err := bench.RunHeadline(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			return nil
		},
		"ablation": func() error {
			res, err := bench.RunAblation(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			return nil
		},
		"vendors": func() error {
			res, err := bench.RunVendors(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			return nil
		},
		"pipeline": func() error {
			res, err := bench.RunPipeline(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			if *jsonFlag != "" {
				if err := res.WriteJSON(*jsonFlag); err != nil {
					return err
				}
				fmt.Printf("  wrote %s\n", *jsonFlag)
			}
			return nil
		},
		"storage": func() error {
			res, err := bench.RunStorage(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			if *jsonFlag != "" {
				if err := res.WriteJSON(*jsonFlag); err != nil {
					return err
				}
				fmt.Printf("  wrote %s\n", *jsonFlag)
			}
			return nil
		},
		"serving": func() error {
			res, err := bench.RunServing(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			if *jsonFlag != "" {
				if err := res.WriteJSON(*jsonFlag); err != nil {
					return err
				}
				fmt.Printf("  wrote %s\n", *jsonFlag)
			}
			return nil
		},
		"certify": func() error {
			res, err := bench.RunCertify(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			res.BootstrapTable().Fprint(os.Stdout)
			if *jsonFlag != "" {
				if err := res.WriteJSON(*jsonFlag); err != nil {
					return err
				}
				fmt.Printf("  wrote %s\n", *jsonFlag)
			}
			return nil
		},
		"state": func() error {
			res, err := bench.RunState(scale)
			if err != nil {
				return err
			}
			res.Table().Fprint(os.Stdout)
			if *jsonFlag != "" {
				if err := res.WriteJSON(*jsonFlag); err != nil {
					return err
				}
				fmt.Printf("  wrote %s\n", *jsonFlag)
			}
			return nil
		},
	}

	order := []string{"params", "headline", "fig7", "fig8", "fig9", "fig10", "fig11", "ablation", "vendors", "pipeline", "certify", "state", "storage", "serving"}
	if *expFlag != "all" {
		r, ok := runners[*expFlag]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *expFlag)
		}
		order = []string{*expFlag}
		_ = r
	}

	fmt.Printf("DCert evaluation reproduction (scale: %s)\n", scale)
	for _, name := range order {
		start := time.Now()
		if err := runners[name](); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("  [%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
