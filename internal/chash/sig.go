package chash

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"math/big"
)

// Signature-related errors.
var (
	// ErrBadSignature is returned when a signature fails verification.
	ErrBadSignature = errors.New("chash: signature verification failed")
	// ErrBadPublicKey is returned when a serialized public key cannot be parsed.
	ErrBadPublicKey = errors.New("chash: malformed public key")
)

// PrivateKey is an ECDSA P-256 signing key. In the real system the issuer's
// instance of this key lives inside the SGX enclave and never leaves it; the
// simulator enforces the same property via the enclave package.
type PrivateKey struct {
	key *ecdsa.PrivateKey
}

// PublicKey is the verification half of a PrivateKey, in a canonical
// serializable form.
type PublicKey struct {
	der []byte
	key *ecdsa.PublicKey
}

// GenerateKey creates a fresh P-256 key pair.
func GenerateKey() (*PrivateKey, error) {
	k, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("chash: generate ecdsa key: %w", err)
	}
	return &PrivateKey{key: k}, nil
}

// GenerateKeyFromSeed derives a P-256 key pair deterministically from a seed
// (hash-chain expansion with rejection sampling over the group order). Two
// calls with the same seed yield byte-identical keys, which is what lets a
// pipelined and a sequential issuer produce byte-identical certificates in
// equivalence tests. Production key generation stays on GenerateKey.
func GenerateKeyFromSeed(seed []byte) (*PrivateKey, error) {
	curve := elliptic.P256()
	n := curve.Params().N
	h := sha256.New()
	h.Write([]byte("dcert-seeded-key-v1"))
	h.Write(seed)
	buf := h.Sum(nil)
	d := new(big.Int)
	for {
		d.SetBytes(buf)
		if d.Sign() > 0 && d.Cmp(n) < 0 {
			break
		}
		next := sha256.Sum256(buf)
		buf = next[:]
	}
	priv := &ecdsa.PrivateKey{D: d}
	priv.Curve = curve
	priv.X, priv.Y = curve.ScalarBaseMult(d.FillBytes(make([]byte, 32)))
	return &PrivateKey{key: priv}, nil
}

// Public returns the public half of the key.
func (p *PrivateKey) Public() (*PublicKey, error) {
	der, err := x509.MarshalPKIXPublicKey(&p.key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("chash: marshal public key: %w", err)
	}
	return &PublicKey{der: der, key: &p.key.PublicKey}, nil
}

// SignatureSize is the fixed length of serialized signatures (raw r ‖ s,
// 32 bytes each). A fixed size keeps DCert certificates — and therefore the
// superlight client's storage — exactly constant.
const SignatureSize = 64

// Sign produces a fixed-size raw (r ‖ s) signature over the given digest.
// Signatures are deterministic (RFC 6979 nonce derivation): the same key and
// digest always yield the same bytes. Determinism matters twice here — it
// removes the per-signature entropy dependency an enclave would have to
// justify, and it makes certificates reproducible, so a pipelined and a
// sequential certification run can be compared byte for byte.
func (p *PrivateKey) Sign(digest Hash) ([]byte, error) {
	r, s, err := signRFC6979(p.key, digest)
	if err != nil {
		return nil, fmt.Errorf("chash: sign: %w", err)
	}
	sig := make([]byte, SignatureSize)
	r.FillBytes(sig[:32])
	s.FillBytes(sig[32:])
	return sig, nil
}

// signRFC6979 is deterministic ECDSA per RFC 6979 with HMAC-SHA256, for the
// P-256 / SHA-256 pairing (qlen = hlen = 256 bits, so bits2int is the plain
// big-endian interpretation).
func signRFC6979(priv *ecdsa.PrivateKey, digest Hash) (*big.Int, *big.Int, error) {
	curve := priv.Curve
	n := curve.Params().N

	x := priv.D.FillBytes(make([]byte, 32))
	h1 := new(big.Int).SetBytes(digest[:])
	hq := new(big.Int).Mod(h1, n).FillBytes(make([]byte, 32)) // bits2octets

	mac := func(key []byte, parts ...[]byte) []byte {
		m := hmac.New(sha256.New, key)
		for _, p := range parts {
			m.Write(p)
		}
		return m.Sum(nil)
	}

	// RFC 6979 §3.2 steps b-g.
	v := make([]byte, 32)
	k := make([]byte, 32)
	for i := range v {
		v[i] = 0x01
	}
	k = mac(k, v, []byte{0x00}, x, hq)
	v = mac(k, v)
	k = mac(k, v, []byte{0x01}, x, hq)
	v = mac(k, v)

	e := new(big.Int).SetBytes(digest[:]) // hash-to-int, no reduction
	for {
		v = mac(k, v)
		kInt := new(big.Int).SetBytes(v)
		if kInt.Sign() > 0 && kInt.Cmp(n) < 0 {
			rx, _ := curve.ScalarBaseMult(kInt.FillBytes(make([]byte, 32)))
			r := new(big.Int).Mod(rx, n)
			if r.Sign() != 0 {
				kInv := new(big.Int).ModInverse(kInt, n)
				s := new(big.Int).Mul(r, priv.D)
				s.Add(s, e)
				s.Mul(s, kInv)
				s.Mod(s, n)
				if s.Sign() != 0 {
					return r, s, nil
				}
			}
		}
		k = mac(k, v, []byte{0x00})
		v = mac(k, v)
	}
}

// ParsePublicKey deserializes a public key previously produced by
// PublicKey.Marshal.
func ParsePublicKey(der []byte) (*PublicKey, error) {
	anyKey, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPublicKey, err)
	}
	ek, ok := anyKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: not an ECDSA key", ErrBadPublicKey)
	}
	out := make([]byte, len(der))
	copy(out, der)
	return &PublicKey{der: out, key: ek}, nil
}

// Marshal returns the canonical DER (PKIX) encoding of the key.
func (k *PublicKey) Marshal() []byte {
	out := make([]byte, len(k.der))
	copy(out, k.der)
	return out
}

// Fingerprint returns the digest of the canonical encoding; used to bind the
// key into attestation report data.
func (k *PublicKey) Fingerprint() Hash {
	return Sum(DomainQuote, k.der)
}

// Verify checks a fixed-size raw (r ‖ s) signature over the digest.
func (k *PublicKey) Verify(digest Hash, sig []byte) error {
	if len(sig) != SignatureSize {
		return fmt.Errorf("%w: signature must be %d bytes, got %d", ErrBadSignature, SignatureSize, len(sig))
	}
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:])
	if !ecdsa.Verify(k.key, digest[:], r, s) {
		return ErrBadSignature
	}
	return nil
}

// Equal reports whether two public keys have identical canonical encodings.
func (k *PublicKey) Equal(other *PublicKey) bool {
	if other == nil {
		return false
	}
	return string(k.der) == string(other.der)
}
