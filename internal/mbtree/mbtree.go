// Package mbtree implements the Merkle B⁺-tree of Li et al. (SIGMOD'06) used
// as the lower level of DCert's two-level query index (Fig. 5): a B⁺-tree
// keyed by version (timestamp / block height) whose every node carries a
// digest, so that range queries come with integrity *and completeness*
// proofs.
//
// Nodes are content-addressed, as in package mpt: a proof or update witness
// is a set of node encodings, and a partial tree rebuilt from the root digest
// resolves children by hash. Verifying a range query is re-running the range
// scan on the partial tree — the scan succeeds only if every subtree
// overlapping the range is present and authentic, which yields completeness
// for free.
package mbtree

import (
	"errors"
	"fmt"
	"sort"

	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrMissingNode is returned when a partial tree lacks a needed node.
	ErrMissingNode = errors.New("mbtree: node not in witness")
	// ErrBadNode is returned for malformed node encodings.
	ErrBadNode = errors.New("mbtree: malformed node encoding")
	// ErrBadOrder is returned for invalid tree fanout.
	ErrBadOrder = errors.New("mbtree: order must be at least 3")
	// ErrBadRange is returned when lo > hi.
	ErrBadRange = errors.New("mbtree: invalid range")
	// ErrCorrupt is returned when node invariants are violated during a
	// verified walk (a malicious witness).
	ErrCorrupt = errors.New("mbtree: node invariant violated")
)

// DefaultOrder is the default fanout.
const DefaultOrder = 16

// Entry is a versioned value stored in a leaf.
type Entry struct {
	// Version is the entry key (timestamp or block height).
	Version uint64
	// Value is the stored payload.
	Value []byte
}

// node is a B⁺-tree node. Leaves hold entries; internal nodes hold separator
// keys and children. children[i] covers versions in [keys[i-1], keys[i])
// with keys[-1] = 0 and keys[n] = +inf; by construction keys[i] equals the
// smallest version in children[i+1]'s subtree.
type node struct {
	leaf    bool
	entries []Entry // leaf only
	keys    []uint64
	kids    []child // internal only
	hash    chash.Hash
	dirty   bool
}

// child references a subtree either in memory or by hash (unresolved).
type child struct {
	hash chash.Hash
	n    *node
}

// Tree is a Merkle B⁺-tree. A Tree with a nil resolver is fully in memory;
// NewPartial builds a stateless tree over a witness.
//
// Tree is not safe for concurrent use.
type Tree struct {
	root     *node
	rootRef  chash.Hash // set when root itself is unresolved (partial tree)
	order    int
	resolver Resolver
	size     int // entry count; -1 when unknown (partial trees)
}

// Resolver loads node encodings by hash.
type Resolver interface {
	// Node returns the canonical encoding of the node with the given hash,
	// or ErrMissingNode if unavailable.
	Node(h chash.Hash) ([]byte, error)
}

// New returns an empty in-memory tree with the given fanout.
func New(order int) (*Tree, error) {
	if order < 3 {
		return nil, fmt.Errorf("%w: %d", ErrBadOrder, order)
	}
	return &Tree{order: order}, nil
}

// NewDefault returns an empty tree with DefaultOrder fanout.
func NewDefault() *Tree {
	t, err := New(DefaultOrder)
	if err != nil {
		// DefaultOrder is a valid constant; this cannot fail.
		panic(err)
	}
	return t
}

// NewPartial returns a stateless tree rooted at root that resolves nodes from
// r. A zero root is the empty tree.
func NewPartial(order int, root chash.Hash, r Resolver) (*Tree, error) {
	if order < 3 {
		return nil, fmt.Errorf("%w: %d", ErrBadOrder, order)
	}
	return &Tree{order: order, rootRef: root, resolver: r, size: -1}, nil
}

// Order returns the tree fanout.
func (t *Tree) Order() int {
	return t.order
}

// Len returns the entry count (-1 for partial trees, where it is unknown).
func (t *Tree) Len() int {
	return t.size
}

// Root returns the root digest (chash.Zero for an empty tree), recomputing
// dirty nodes.
func (t *Tree) Root() (chash.Hash, error) {
	if t.root == nil {
		if !t.rootRef.IsZero() {
			return t.rootRef, nil
		}
		return chash.Zero, nil
	}
	return t.hashRec(t.root)
}

// loadRoot materializes the root for partial trees.
func (t *Tree) loadRoot() (*node, error) {
	if t.root != nil {
		return t.root, nil
	}
	if t.rootRef.IsZero() {
		return nil, nil
	}
	n, err := t.resolveHash(t.rootRef)
	if err != nil {
		return nil, err
	}
	t.root = n
	return n, nil
}

func (t *Tree) resolveHash(h chash.Hash) (*node, error) {
	if t.resolver == nil {
		return nil, fmt.Errorf("%w: %s", ErrMissingNode, h)
	}
	raw, err := t.resolver.Node(h)
	if err != nil {
		return nil, err
	}
	if chash.Sum(chash.DomainIndex, raw) != h {
		return nil, fmt.Errorf("%w: witness bytes do not hash to reference", ErrBadNode)
	}
	return decodeNode(h, raw)
}

func (t *Tree) resolveChild(c *child) (*node, error) {
	if c.n != nil {
		return c.n, nil
	}
	n, err := t.resolveHash(c.hash)
	if err != nil {
		return nil, err
	}
	c.n = n
	return n, nil
}

// Get returns the value at the exact version, or nil if absent.
func (t *Tree) Get(version uint64) ([]byte, error) {
	n, err := t.loadRoot()
	if err != nil {
		return nil, err
	}
	for n != nil {
		if n.leaf {
			i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].Version >= version })
			if i < len(n.entries) && n.entries[i].Version == version {
				return n.entries[i].Value, nil
			}
			return nil, nil
		}
		idx := childIndex(n.keys, version)
		c, err := t.resolveChild(&n.kids[idx])
		if err != nil {
			return nil, err
		}
		n = c
	}
	return nil, nil
}

// childIndex returns which child of an internal node covers version.
func childIndex(keys []uint64, version uint64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > version })
}

// Insert stores value at version, overwriting any existing entry.
func (t *Tree) Insert(version uint64, value []byte) error {
	val := make([]byte, len(value))
	copy(val, value)

	root, err := t.loadRoot()
	if err != nil {
		return err
	}
	if root == nil {
		t.root = &node{leaf: true, entries: []Entry{{Version: version, Value: val}}, dirty: true}
		t.rootRef = chash.Zero
		if t.size >= 0 {
			t.size++
		}
		return nil
	}
	split, promoted, inserted, err := t.insert(root, version, val)
	if err != nil {
		return err
	}
	if split != nil {
		// Grow a new root above the old one.
		t.root = &node{
			leaf:  false,
			keys:  []uint64{promoted},
			kids:  []child{{n: root}, {n: split}},
			dirty: true,
		}
		t.rootRef = chash.Zero
	}
	if inserted && t.size >= 0 {
		t.size++
	}
	return nil
}

// insert adds the entry under n. If n split, it returns the new right
// sibling and the separator key to promote into the parent; inserted
// reports whether a new entry was created (vs. overwritten).
func (t *Tree) insert(n *node, version uint64, value []byte) (split *node, promoted uint64, inserted bool, err error) {
	n.dirty = true
	if n.leaf {
		i := sort.Search(len(n.entries), func(i int) bool { return n.entries[i].Version >= version })
		if i < len(n.entries) && n.entries[i].Version == version {
			n.entries[i].Value = value
			return nil, 0, false, nil
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = Entry{Version: version, Value: value}
		if len(n.entries) < t.order {
			return nil, 0, true, nil
		}
		mid := len(n.entries) / 2
		right := &node{leaf: true, entries: append([]Entry(nil), n.entries[mid:]...), dirty: true}
		n.entries = n.entries[:mid]
		return right, right.entries[0].Version, true, nil
	}

	idx := childIndex(n.keys, version)
	c, err := t.resolveChild(&n.kids[idx])
	if err != nil {
		return nil, 0, false, err
	}
	childSplit, childPromoted, inserted, err := t.insert(c, version, value)
	if err != nil {
		return nil, 0, false, err
	}
	n.kids[idx] = child{n: c}
	if childSplit == nil {
		return nil, 0, inserted, nil
	}
	// Insert the split sibling after idx with the promoted separator.
	n.keys = append(n.keys, 0)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = childPromoted
	n.kids = append(n.kids, child{})
	copy(n.kids[idx+2:], n.kids[idx+1:])
	n.kids[idx+1] = child{n: childSplit}
	if len(n.kids) <= t.order {
		return nil, 0, inserted, nil
	}
	// Split this internal node: the middle separator moves up.
	midKey := len(n.keys) / 2
	promoted = n.keys[midKey]
	right := &node{
		leaf:  false,
		keys:  append([]uint64(nil), n.keys[midKey+1:]...),
		kids:  append([]child(nil), n.kids[midKey+1:]...),
		dirty: true,
	}
	n.keys = n.keys[:midKey]
	n.kids = n.kids[:midKey+1]
	return right, promoted, inserted, nil
}

// Range returns all entries with versions in [lo, hi], in order.
func (t *Tree) Range(lo, hi uint64) ([]Entry, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: [%d, %d]", ErrBadRange, lo, hi)
	}
	root, err := t.loadRoot()
	if err != nil {
		return nil, err
	}
	var out []Entry
	if root == nil {
		return out, nil
	}
	if err := t.rangeWalk(root, lo, hi, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// rangeWalk descends into every child overlapping [lo, hi], validating node
// invariants so that walks over hostile witnesses cannot fabricate results.
func (t *Tree) rangeWalk(n *node, lo, hi uint64, out *[]Entry) error {
	if n.leaf {
		prev := int64(-1)
		for _, e := range n.entries {
			if int64(e.Version) <= prev {
				return fmt.Errorf("%w: unsorted leaf", ErrCorrupt)
			}
			prev = int64(e.Version)
			if e.Version >= lo && e.Version <= hi {
				*out = append(*out, e)
			}
		}
		return nil
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return fmt.Errorf("%w: unsorted separators", ErrCorrupt)
		}
	}
	for i := range n.kids {
		// Child i covers [keys[i-1], keys[i]).
		cLo := uint64(0)
		if i > 0 {
			cLo = n.keys[i-1]
		}
		cHi := uint64(1<<64 - 1)
		if i < len(n.keys) {
			cHi = n.keys[i] - 1
		}
		if cHi < lo || cLo > hi {
			continue
		}
		c, err := t.resolveChild(&n.kids[i])
		if err != nil {
			return err
		}
		if err := t.rangeWalk(c, lo, hi, out); err != nil {
			return err
		}
	}
	return nil
}
