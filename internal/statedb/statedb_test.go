package statedb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dcert/internal/chain"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// testEnv bundles a populated DB, a registry with KV contracts, and signed
// transactions.
type testEnv struct {
	db  *DB
	reg *vm.Registry
	gen *workload.Generator
}

func newTestEnv(t *testing.T, kind workload.Kind) *testEnv {
	t.Helper()
	accounts, err := workload.NewAccounts(8)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	reg := vm.NewRegistry()
	cfg := workload.Config{Kind: kind, Contracts: 4, Seed: 1, KeySpace: 50, CPUSortSize: 64, IOOpsPerTx: 4}
	if err := workload.Register(reg, kind, cfg.Contracts); err != nil {
		t.Fatalf("Register: %v", err)
	}
	gen, err := workload.NewGenerator(cfg, accounts)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return &testEnv{db: New(), reg: reg, gen: gen}
}

func (e *testEnv) block(t *testing.T, n int) []*chain.Transaction {
	t.Helper()
	txs, err := e.gen.Block(n)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	return txs
}

func TestExecuteBlockDoesNotMutate(t *testing.T) {
	e := newTestEnv(t, workload.KVStore)
	before, err := e.db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if _, err := e.db.ExecuteBlock(e.reg, e.block(t, 20)); err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	after, err := e.db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if before != after {
		t.Fatal("ExecuteBlock must not change the committed state")
	}
}

func TestExecuteCommitReadBack(t *testing.T) {
	e := newTestEnv(t, workload.KVStore)
	txs := e.block(t, 30)
	res, err := e.db.ExecuteBlock(e.reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	if len(res.WriteSet) == 0 {
		t.Fatal("KV workload must produce writes")
	}
	if _, err := e.db.Commit(res.WriteSet); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	for k, v := range res.WriteSet {
		got, err := e.db.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %q, want %q", k, got, v)
		}
	}
}

func TestReadSetRecordsPreStateOnly(t *testing.T) {
	e := newTestEnv(t, workload.SmallBank)
	// Seed a balance so some reads hit existing state.
	if err := e.db.Set([]byte("seeded"), []byte("x")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	txs := e.block(t, 40)
	res, err := e.db.ExecuteBlock(e.reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	for k, v := range res.ReadSet {
		got, err := e.db.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("read set value for %q is not the pre-state value", k)
		}
	}
}

func TestReplayBlockMatchesCommit(t *testing.T) {
	for _, kind := range workload.AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			e := newTestEnv(t, kind)
			// Two rounds so the second block sees non-empty pre-state.
			for round := 0; round < 2; round++ {
				txs := e.block(t, 25)
				prevRoot, err := e.db.Root()
				if err != nil {
					t.Fatalf("Root: %v", err)
				}
				res, err := e.db.ExecuteBlock(e.reg, txs)
				if err != nil {
					t.Fatalf("ExecuteBlock: %v", err)
				}
				proof, err := e.db.UpdateProofFor(res)
				if err != nil {
					t.Fatalf("UpdateProofFor: %v", err)
				}
				replayRoot, err := ReplayBlock(prevRoot, proof, e.reg, txs)
				if err != nil {
					t.Fatalf("ReplayBlock: %v", err)
				}
				commitRoot, err := e.db.Commit(res.WriteSet)
				if err != nil {
					t.Fatalf("Commit: %v", err)
				}
				if replayRoot != commitRoot {
					t.Fatalf("round %d: replay root != commit root", round)
				}
			}
		})
	}
}

func TestReplayBlockRejectsForgedReadSet(t *testing.T) {
	e := newTestEnv(t, workload.SmallBank)
	txs := e.block(t, 20)
	prevRoot, err := e.db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := e.db.ExecuteBlock(e.reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.db.UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	// Forge one read value: the enclave-side replay must detect it.
	for k := range proof.ReadSet {
		proof.ReadSet[k] = []byte("forged-balance")
		break
	}
	if len(proof.ReadSet) == 0 {
		t.Skip("workload produced no reads")
	}
	if _, err := ReplayBlock(prevRoot, proof, e.reg, txs); !errors.Is(err, ErrReadSetMismatch) {
		t.Fatalf("want ErrReadSetMismatch, got %v", err)
	}
}

func TestReplayBlockRejectsTamperedTxs(t *testing.T) {
	e := newTestEnv(t, workload.KVStore)
	txs := e.block(t, 10)
	prevRoot, err := e.db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := e.db.ExecuteBlock(e.reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.db.UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	txs[3].Args = [][]byte{[]byte("evil-key"), []byte("evil-value")} // breaks signature
	if _, err := ReplayBlock(prevRoot, proof, e.reg, txs); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("want ErrTxInvalid, got %v", err)
	}
}

func TestReplayBlockRejectsInsufficientWitness(t *testing.T) {
	e := newTestEnv(t, workload.KVStore)
	// Commit one block so state is non-trivial.
	txs := e.block(t, 20)
	res, err := e.db.ExecuteBlock(e.reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	if _, err := e.db.Commit(res.WriteSet); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	prevRoot, err := e.db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	// Proof built for block A cannot replay unrelated block B.
	blkA := e.block(t, 10)
	resA, err := e.db.ExecuteBlock(e.reg, blkA)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proofA, err := e.db.UpdateProofFor(resA)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	blkB := e.block(t, 10)
	if _, err := ReplayBlock(prevRoot, proofA, e.reg, blkB); err == nil {
		t.Fatal("replaying a different block over a mismatched witness must fail")
	}
}

func TestRevertedTransactionsKeepStateConsistent(t *testing.T) {
	// A SmallBank overdraft reverts; the write sets on both sides must agree.
	accounts, err := workload.NewAccounts(2)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	reg := vm.NewRegistry()
	if err := workload.Register(reg, workload.SmallBank, 1); err != nil {
		t.Fatalf("Register: %v", err)
	}
	db := New()

	amount := func(v uint64) []byte {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[7-i] = byte(v >> (8 * i))
		}
		return b
	}
	mkTx := func(nonce uint64, method string, args ...[]byte) *chain.Transaction {
		tx := &chain.Transaction{
			Nonce:    nonce,
			Contract: workload.ContractName(workload.SmallBank, 0),
			Method:   method,
			Args:     args,
		}
		if err := tx.Sign(accounts[0].Key); err != nil {
			t.Fatalf("Sign: %v", err)
		}
		return tx
	}
	txs := []*chain.Transaction{
		mkTx(0, "deposit_check", []byte("alice"), amount(100)),
		mkTx(1, "write_check", []byte("alice"), amount(500)), // overdraft: reverts
		mkTx(2, "write_check", []byte("alice"), amount(30)),
	}
	prevRoot, err := db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := db.ExecuteBlock(reg, txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	if len(res.Reverted) != 1 || res.Reverted[0] != 1 {
		t.Fatalf("Reverted = %v, want [1]", res.Reverted)
	}
	proof, err := db.UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	replayRoot, err := ReplayBlock(prevRoot, proof, reg, txs)
	if err != nil {
		t.Fatalf("ReplayBlock: %v", err)
	}
	commitRoot, err := db.Commit(res.WriteSet)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if replayRoot != commitRoot {
		t.Fatal("revert semantics diverge between execute and replay")
	}
	// Alice ends with 100 - 30 = 70.
	key := []byte("ct/" + workload.ContractName(workload.SmallBank, 0) + "/checking/alice")
	got, err := db.Get(key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, amount(70)) {
		t.Fatalf("alice checking = %x, want 70", got)
	}
}

func TestUpdateProofEncodedSizePositive(t *testing.T) {
	e := newTestEnv(t, workload.KVStore)
	res, err := e.db.ExecuteBlock(e.reg, e.block(t, 10))
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.db.UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	if proof.EncodedSize() <= 0 {
		t.Fatal("proof size must be positive")
	}
}

func TestSetGetDirect(t *testing.T) {
	db := New()
	for i := 0; i < 50; i++ {
		if err := db.Set([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
	got, err := db.Get([]byte("k7"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, []byte("v7")) {
		t.Fatalf("Get = %q", got)
	}
	root, err := db.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if root.IsZero() {
		t.Fatal("populated DB root must not be zero")
	}
}
