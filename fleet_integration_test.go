package dcert_test

import (
	"fmt"
	"testing"
	"time"

	"dcert"
	"dcert/internal/query"
	"dcert/internal/workload"
)

// probeWrittenKey finds a state key the KV workload has written.
func probeWrittenKey(t *testing.T, dep *dcert.Deployment) string {
	t.Helper()
	for i := 0; i < 100; i++ {
		probe := fmt.Sprintf("ct/%s/kv/user-key-%d", workload.ContractName(workload.KVStore, 0), i)
		res, err := dep.SP().StateQuery(probe)
		if err != nil {
			t.Fatalf("StateQuery: %v", err)
		}
		if res.Value != nil {
			return probe
		}
	}
	t.Skip("no written key found")
	return ""
}

// TestFleetDeploymentEndToEnd drives the full sharded serving plane: a
// deployment with an index mines certified blocks, starts a 4-replica
// fleet mid-chain (exercising replica catch-up), and serves verified
// queries through both doors — the fabric topic path and the TCP wire RPC.
func TestFleetDeploymentEndToEnd(t *testing.T) {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:   dcert.KVStore,
		Contracts:  4,
		Accounts:   8,
		Difficulty: 2,
		Seed:       11,
		KeySpace:   30,
	})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewHistoricalIndex("hist", "ct/")
	}); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	client := dep.NewSuperlightClient()

	// Mine a few blocks BEFORE the fleet exists: replicas must catch up.
	var lastBlk *dcert.Block
	var lastCert *dcert.Certificate
	for i := 0; i < 3; i++ {
		blk, cert, err := dep.MineAndCertify(10)
		if err != nil {
			t.Fatalf("MineAndCertify: %v", err)
		}
		lastBlk, lastCert = blk, cert
	}

	f, err := dep.StartFleet(4)
	if err != nil {
		t.Fatalf("StartFleet: %v", err)
	}
	if dep.Fleet() != f || f.Size() != 4 {
		t.Fatalf("fleet not registered: size %d", f.Size())
	}
	if _, err := dep.StartFleet(2); err == nil {
		t.Fatal("second StartFleet must fail")
	}

	// Mine more AFTER: every replica must follow the chain.
	for i := 0; i < 3; i++ {
		blk, cert, err := dep.MineAndCertify(10)
		if err != nil {
			t.Fatalf("MineAndCertify: %v", err)
		}
		lastBlk, lastCert = blk, cert
	}
	if err := client.ValidateChain(&lastBlk.Header, lastCert); err != nil {
		t.Fatalf("ValidateChain: %v", err)
	}
	key := probeWrittenKey(t, dep)

	// Door 1: the fabric topic path, served by the fleet's bus server.
	bsrv, err := dep.ServeFleetQueries(2)
	if err != nil {
		t.Fatalf("ServeFleetQueries: %v", err)
	}
	defer bsrv.Stop()
	req := dcert.NewQueryRequesterOver(dep.Net(), 2*time.Second)
	defer req.Close()
	sr, err := req.State(key)
	if err != nil {
		t.Fatalf("State over fabric: %v", err)
	}
	if err := dcert.VerifyState(&lastBlk.Header, sr); err != nil {
		t.Fatalf("VerifyState (fabric door): %v", err)
	}

	// Door 2: the TCP wire RPC path.
	srv, err := dep.ServeWire(dcert.WireServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("ServeWire: %v", err)
	}
	defer srv.Close()
	wc, err := dcert.DialWire(srv.Addr(), dcert.WireClientConfig{Name: "fleet-client"})
	if err != nil {
		t.Fatalf("DialWire: %v", err)
	}
	defer wc.Close()

	resp, err := dcert.RequestQuery(wc, query.NewStateRequest(key))
	if err != nil {
		t.Fatalf("RequestQuery: %v", err)
	}
	wsr, err := query.UnmarshalStateResult(resp.Body)
	if err != nil {
		t.Fatalf("UnmarshalStateResult: %v", err)
	}
	if err := dcert.VerifyState(&lastBlk.Header, wsr); err != nil {
		t.Fatalf("VerifyState (wire door): %v", err)
	}

	// Batched multi-key read over the wire: one merged multiproof.
	bresp, err := dcert.RequestQuery(wc, query.NewBatchStateRequest([]string{key, "never-written"}))
	if err != nil {
		t.Fatalf("RequestQuery(batch): %v", err)
	}
	br, err := query.UnmarshalBatchStateResult(bresp.Body)
	if err != nil {
		t.Fatalf("UnmarshalBatchStateResult: %v", err)
	}
	if err := dcert.VerifyBatchState(&lastBlk.Header, br); err != nil {
		t.Fatalf("VerifyBatchState (wire door): %v", err)
	}

	// The fleet actually answered: per-replica counters sum to the traffic.
	var served uint64
	for _, name := range f.Router().Members() {
		rep, err := f.Replica(name)
		if err != nil {
			t.Fatalf("Replica: %v", err)
		}
		h, m, c, _ := rep.Cache().Stats()
		served += h + m + c
	}
	if served == 0 {
		t.Fatal("no replica served any request — queries bypassed the fleet")
	}
}
