package bench

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"sort"
	"time"

	"dcert"
)

// Segment-certification experiment. The recursive scheme pays a fixed cost
// per Ecall — transition, previous-certificate verification, and the final
// signature — on top of the per-block replay. Segment certification extends
// the recursion unit to K blocks, so the fixed cost amortizes: ecalls/block
// falls as 1/K and the enclave-side cost per block approaches the pure replay
// floor. The experiment runs the real segmented pipeline at K ∈ {1,2,4,8,16}
// over empty blocks (the purest measurement of the fixed recursion cost —
// payload execution scales with K identically on both sides and is covered by
// BENCH_pipeline.json), fits inside(K) = fixed + perBlock·K to the measured
// per-Ecall enclave times, and models certified-blocks/s from the fit. The
// tip-latency p99 column is the cost side of the trade: early blocks in a
// batch wait for it to fill.
//
// The second half measures the interlink bootstrap: a stale superlight client
// walks from the tip back to the genesis anchor in O(log n) verified
// certificate fetches (BootstrapSublinear) instead of the linear follower's
// one-bundle-per-block replay. Fetch counts at 1k and 10k blocks are
// measured against a real certified chain; the 100k point is the exact walk
// model (pinned model == measured by the core regression tests), not an
// extrapolation.

// CertifyPoint is one segment size's measurement.
type CertifyPoint struct {
	// K is the segment size (1 = the per-block baseline committer).
	K int `json:"k"`
	// Ecalls is the enclave entry count of the real pipeline run.
	Ecalls uint64 `json:"ecalls"`
	// EcallsPerBlock is Ecalls over the block count (≈ 1/K).
	EcallsPerBlock float64 `json:"ecalls_per_block"`
	// InsidePerEcallMS is the measured mean enclave time per Ecall.
	InsidePerEcallMS float64 `json:"inside_per_ecall_ms"`
	// InsidePerBlockMS is the measured enclave time per certified block.
	InsidePerBlockMS float64 `json:"inside_per_block_ms"`
	// WallBlocksPerSec is the real pipeline run on this host.
	WallBlocksPerSec float64 `json:"wall_blocks_per_sec"`
	// ModeledBlocksPerSec is K / (fixed + perBlock·K) from the fit.
	ModeledBlocksPerSec float64 `json:"modeled_blocks_per_sec"`
	// Speedup is ModeledBlocksPerSec over the K=1 model.
	Speedup float64 `json:"speedup"`
	// TipP99MS is the p99 submit-to-certificate latency (batching cost).
	TipP99MS float64 `json:"tip_p99_ms"`
}

// BootstrapPoint is one chain length's sublinear-bootstrap cost.
type BootstrapPoint struct {
	// ChainLen is the certified chain length.
	ChainLen uint64 `json:"chain_len"`
	// SegBlocks is the segment size the chain was certified with.
	SegBlocks int `json:"seg_blocks"`
	// Fetches is the certificate fetch count of the interlink walk.
	Fetches int `json:"fetches"`
	// LinearFetches is the linear follower's cost (one bundle per block).
	LinearFetches uint64 `json:"linear_fetches"`
	// LogBound is the 3·log2(n) sublinearity bound the gate asserts.
	LogBound int `json:"log_bound"`
	// Modeled flags walk-model output (measured otherwise).
	Modeled bool `json:"modeled"`
}

// CertifyResult is the full experiment output (and the BENCH_certify.json
// schema).
type CertifyResult struct {
	Scale  string `json:"scale"`
	Blocks int    `json:"blocks"`
	// EcallFixedMS is the fitted per-Ecall fixed cost (intercept).
	EcallFixedMS float64 `json:"ecall_fixed_ms"`
	// EcallPerBlockMS is the fitted per-block enclave cost (slope).
	EcallPerBlockMS float64          `json:"ecall_per_block_ms"`
	Points          []CertifyPoint   `json:"points"`
	Bootstrap       []BootstrapPoint `json:"bootstrap"`
}

// certifySegSizes is the amortization sweep.
var certifySegSizes = []int{1, 2, 4, 8, 16}

// RunCertify measures the segment amortization curve and the sublinear
// bootstrap fetch counts.
func RunCertify(scale Scale) (*CertifyResult, error) {
	blocks := 32
	if scale == Paper {
		blocks = 64
	}
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:    dcert.DoNothing,
		Contracts:   1,
		Accounts:    1,
		Difficulty:  4,
		EnclaveCost: dcert.DefaultEnclaveCostModel(),
		Seed:        11,
	})
	if err != nil {
		return nil, err
	}
	blks := make([]*dcert.Block, blocks)
	for i := range blks {
		if blks[i], err = dep.Miner().Propose(nil); err != nil {
			return nil, err
		}
	}

	// Each K runs reps times on a fresh issuer; per-rep means are
	// min-filtered (scheduler preemption and GC pauses only ever inflate a
	// rep, never deflate it), so two Ecall samples at K=16 cannot let one
	// bad rep bend the amortization fit.
	const reps = 3
	res := &CertifyResult{Scale: scale.String(), Blocks: blocks}
	for _, k := range certifySegSizes {
		pt := CertifyPoint{K: k}
		for rep := 0; rep < reps; rep++ {
			ci, err := dep.AddIssuer()
			if err != nil {
				return nil, err
			}
			cfg := dcert.PipelineConfig{Workers: 2}
			if k > 1 {
				cfg.Segment = &dcert.SegmentPolicy{MaxBlocks: k}
			}
			pl, err := dcert.NewPipeline(ci, cfg)
			if err != nil {
				return nil, err
			}
			before := ci.Enclave().Stats()
			submitted := make([]time.Time, blocks)
			start := time.Now()
			go func() {
				for i, blk := range blks {
					submitted[i] = time.Now()
					if err := pl.Submit(blk); err != nil {
						return
					}
				}
				pl.Close()
			}()
			latencies := make([]float64, 0, blocks)
			for pres := range pl.Results() {
				if pres.Err != nil {
					return nil, fmt.Errorf("bench: certify K=%d: %w", k, pres.Err)
				}
				i := pres.Block.Header.Height - 1
				latencies = append(latencies, time.Since(submitted[i]).Seconds())
			}
			wall := time.Since(start).Seconds()
			after := ci.Enclave().Stats()
			ecalls := after.Ecalls - before.Ecalls
			inside := (after.InsideTime() - before.InsideTime()).Seconds()
			perEcall := inside / float64(ecalls) * 1000
			if rep == 0 || perEcall < pt.InsidePerEcallMS {
				pt.InsidePerEcallMS = perEcall
				pt.InsidePerBlockMS = inside / float64(blocks) * 1000
			}
			if bps := float64(blocks) / wall; bps > pt.WallBlocksPerSec {
				pt.WallBlocksPerSec = bps
			}
			if lat := p99(latencies) * 1000; rep == 0 || lat < pt.TipP99MS {
				pt.TipP99MS = lat
			}
			pt.Ecalls = ecalls
		}
		pt.EcallsPerBlock = float64(pt.Ecalls) / float64(blocks)
		res.Points = append(res.Points, pt)
	}

	// Fit inside(K) = fixed + perBlock·K over the measured per-Ecall times,
	// then model certified-blocks/s as K / inside(K): the enclave is the
	// pipeline's serial stage, so its amortized cost sets the throughput
	// ceiling (BENCH_pipeline.json shows the untrusted stages overlap it).
	fixed, perBlock := fitEndpoints(res.Points)
	res.EcallFixedMS = fixed * 1000
	res.EcallPerBlockMS = perBlock * 1000
	base := 1 / (fixed + perBlock)
	for i := range res.Points {
		k := float64(res.Points[i].K)
		modeled := k / (fixed + perBlock*k)
		res.Points[i].ModeledBlocksPerSec = modeled
		res.Points[i].Speedup = modeled / base
	}

	// Bootstrap fetch counts: measured against real certified chains at 1k
	// and 10k, exact walk model at 100k.
	const bootK = 16
	for _, n := range []uint64{1_000, 10_000} {
		fetches, err := measureBootstrap(n, bootK)
		if err != nil {
			return nil, err
		}
		res.Bootstrap = append(res.Bootstrap, BootstrapPoint{
			ChainLen: n, SegBlocks: bootK, Fetches: fetches,
			LinearFetches: n, LogBound: 3 * bits.Len64(n),
		})
	}
	res.Bootstrap = append(res.Bootstrap, BootstrapPoint{
		ChainLen: 100_000, SegBlocks: bootK,
		Fetches:       dcert.ModelBootstrapFetches(100_000, bootK),
		LinearFetches: 100_000, LogBound: 3 * bits.Len64(100_000),
		Modeled: true,
	})
	return res, nil
}

// measureBootstrap certifies a chainLen-block chain in segBlocks-block
// segments, then counts the fetches a stale superlight client needs to walk
// from the tip certificate back to the genesis anchor.
func measureBootstrap(chainLen uint64, segBlocks int) (int, error) {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:   dcert.DoNothing,
		Contracts:  1,
		Accounts:   1,
		Difficulty: 4,
		Seed:       13,
	})
	if err != nil {
		return 0, err
	}
	iss := dep.Issuer()
	batch := make([]*dcert.Block, 0, segBlocks)
	for i := uint64(0); i < chainLen; i++ {
		blk, err := dep.Miner().Propose(nil)
		if err != nil {
			return 0, err
		}
		batch = append(batch, blk)
		if len(batch) == segBlocks || i == chainLen-1 {
			if _, _, err := iss.ProcessSegment(batch); err != nil {
				return 0, err
			}
			batch = batch[:0]
		}
	}
	tip := iss.LatestSegment()
	if tip == nil {
		return 0, fmt.Errorf("bench: no tip segment after %d blocks", chainLen)
	}
	fetch := func(height uint64) (*dcert.SegmentCert, error) {
		if seg := iss.SegmentCovering(height); seg != nil {
			return seg, nil
		}
		return nil, fmt.Errorf("bench: no segment covering height %d", height)
	}
	client := dep.NewSuperlightClient()
	return client.BootstrapSublinear(fetch, tip, 0, iss.Node().Store().Genesis())
}

// fitEndpoints derives inside(K) = fixed + perBlock·K from the sweep's
// endpoints: the slope from the smallest to the largest K, the intercept from
// the smallest. With min-filtered monotone data this is exact; least squares
// over five points would let a single outlier drive the intercept negative
// (and a clamp-to-zero intercept degenerates the whole amortization model).
func fitEndpoints(points []CertifyPoint) (fixed, perBlock float64) {
	lo, hi := points[0], points[len(points)-1]
	perBlock = (hi.InsidePerEcallMS - lo.InsidePerEcallMS) / 1000 / float64(hi.K-lo.K)
	if perBlock < 0 {
		perBlock = 0
	}
	fixed = lo.InsidePerEcallMS/1000 - perBlock*float64(lo.K)
	if fixed < 0 {
		fixed = 0
	}
	return fixed, perBlock
}

// p99 returns the 99th-percentile of samples (seconds).
func p99(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := (len(s)*99 + 99) / 100
	if i > len(s) {
		i = len(s)
	}
	return s[i-1]
}

// WriteJSON persists the result (the make bench-certify artifact).
func (r *CertifyResult) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Table renders the amortization curve.
func (r *CertifyResult) Table() *Table {
	t := &Table{
		Title: "Certify — segment amortization (ecalls/block, modeled blocks/s) vs K",
		Note: fmt.Sprintf("%d empty blocks per run; fitted per-Ecall cost: fixed %.3f ms + %.3f ms/block; modeled blocks/s = K / fit(K); tip p99 is the batching latency cost",
			r.Blocks, r.EcallFixedMS, r.EcallPerBlockMS),
		Columns: []string{
			"K", "ecalls", "ecalls/block", "inside/ecall ms", "inside/block ms",
			"blocks/s (modeled)", "speedup", "wall blocks/s", "tip p99 ms",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%d", p.Ecalls),
			fmt.Sprintf("%.3f", p.EcallsPerBlock),
			fmt.Sprintf("%.3f", p.InsidePerEcallMS),
			fmt.Sprintf("%.3f", p.InsidePerBlockMS),
			fmt.Sprintf("%.1f", p.ModeledBlocksPerSec),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.1f", p.WallBlocksPerSec),
			fmt.Sprintf("%.2f", p.TipP99MS),
		})
	}
	return t
}

// BootstrapTable renders the sublinear-bootstrap fetch counts.
func (r *CertifyResult) BootstrapTable() *Table {
	t := &Table{
		Title: "Certify — sublinear bootstrap (interlink walk vs linear follower)",
		Note:  "fetches is the superlight client's certificate fetch count from tip to genesis anchor; 100k is the exact walk model (model == measured is pinned by the core tests)",
		Columns: []string{
			"chain len", "K", "fetches", "linear fetches", "3·log2(n) bound", "measured",
		},
	}
	for _, b := range r.Bootstrap {
		measured := "yes"
		if b.Modeled {
			measured = "model"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b.ChainLen),
			fmt.Sprintf("%d", b.SegBlocks),
			fmt.Sprintf("%d", b.Fetches),
			fmt.Sprintf("%d", b.LinearFetches),
			fmt.Sprintf("%d", b.LogBound),
			measured,
		})
	}
	return t
}
