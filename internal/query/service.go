package query

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dcert/internal/chash"
	"dcert/internal/network"
)

// Network query service: the SP serves the §5.3 query protocol over the
// simulated fabric using the canonical wire formats, so superlight clients
// interact with it exactly as they would over a real transport — send a
// request, receive serialized results, verify them locally against certified
// roots.

// Service errors.
var (
	// ErrTimeout is returned when a networked query receives no response.
	ErrTimeout = errors.New("query: request timed out")
	// ErrRemote is returned when the SP reports a failure.
	ErrRemote = errors.New("query: remote error")
)

// Network topics for the query protocol.
const (
	// TopicQueries carries requests to the SP.
	TopicQueries = "queries"
	// TopicResults carries responses back to clients.
	TopicResults = "query-results"
)

// Request kinds.
const (
	reqHistorical byte = 1
	reqKeyword    byte = 2
	reqState      byte = 3
)

// Request is a serializable query request.
type Request struct {
	// ID correlates the response.
	ID uint64
	// Kind selects the query type.
	Kind byte
	// Index names the authenticated index (historical/keyword queries).
	Index string
	// Key is the state or account key.
	Key string
	// Lo and Hi bound historical windows.
	Lo, Hi uint64
	// Keywords are the conjuncts of a keyword query.
	Keywords []string
}

// Marshal serializes the request.
func (r *Request) Marshal() []byte {
	e := chash.NewEncoder(128)
	e.PutUint64(r.ID)
	e.PutByte(r.Kind)
	e.PutString(r.Index)
	e.PutString(r.Key)
	e.PutUint64(r.Lo)
	e.PutUint64(r.Hi)
	e.PutUint32(uint32(len(r.Keywords)))
	for _, kw := range r.Keywords {
		e.PutString(kw)
	}
	return e.Bytes()
}

// UnmarshalRequest parses a request.
func UnmarshalRequest(raw []byte) (*Request, error) {
	d := chash.NewDecoder(raw)
	var r Request
	var err error
	if r.ID, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Kind, err = d.Byte(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Index, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Key, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Lo, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Hi, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if n > 64 {
		return nil, fmt.Errorf("query: unmarshal request: %d keywords", n)
	}
	for i := uint32(0); i < n; i++ {
		kw, err := d.ReadString()
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal request: %w", err)
		}
		r.Keywords = append(r.Keywords, kw)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	return &r, nil
}

// Response is a serializable query response.
type Response struct {
	// ID echoes the request.
	ID uint64
	// Err carries a remote failure description ("" on success).
	Err string
	// Body is the serialized result (kind-specific wire format).
	Body []byte
}

// Marshal serializes the response.
func (r *Response) Marshal() []byte {
	e := chash.NewEncoder(64 + len(r.Body))
	e.PutUint64(r.ID)
	e.PutString(r.Err)
	e.PutBytes(r.Body)
	return e.Bytes()
}

// UnmarshalResponse parses a response.
func UnmarshalResponse(raw []byte) (*Response, error) {
	d := chash.NewDecoder(raw)
	var r Response
	var err error
	if r.ID, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal response: %w", err)
	}
	if r.Err, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("query: unmarshal response: %w", err)
	}
	if r.Body, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("query: unmarshal response: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("query: unmarshal response: %w", err)
	}
	return &r, nil
}

// Server runs a ServiceProvider behind the network's query topic.
type Server struct {
	sp   *ServiceProvider
	net  *network.Network
	sub  *network.Subscription
	done chan struct{}
	wg   sync.WaitGroup
}

// Serve starts answering requests until Stop is called.
func Serve(sp *ServiceProvider, net *network.Network) *Server {
	s := &Server{
		sp:   sp,
		net:  net,
		sub:  net.Subscribe(TopicQueries, 64),
		done: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Stop shuts the server down and waits for the serving goroutine.
func (s *Server) Stop() {
	s.sub.Cancel()
	close(s.done)
	s.wg.Wait()
}

func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case m, ok := <-s.sub.C:
			if !ok {
				return
			}
			raw, isBytes := m.Payload.([]byte)
			if !isBytes {
				continue
			}
			req, err := UnmarshalRequest(raw)
			if err != nil {
				continue // malformed request: nothing to respond to
			}
			resp := s.handle(req)
			// Publish errors only mean the fabric shut down.
			if err := s.net.Publish(TopicResults, "sp", resp.Marshal()); err != nil {
				return
			}
		}
	}
}

// handle executes one request against the local SP.
func (s *Server) handle(req *Request) *Response {
	resp := &Response{ID: req.ID}
	switch req.Kind {
	case reqHistorical:
		res, err := s.sp.HistoricalQuery(req.Index, req.Key, req.Lo, req.Hi)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Body = res.Marshal()
	case reqKeyword:
		res, err := s.sp.KeywordQuery(req.Index, req.Keywords)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Body = res.Marshal()
	case reqState:
		res, err := s.sp.StateQuery(req.Key)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Body = res.Marshal()
	default:
		resp.Err = fmt.Sprintf("unknown request kind %d", req.Kind)
	}
	return resp
}

// Requester issues queries over the network and awaits responses.
//
// Requester is safe for concurrent use.
type Requester struct {
	net     *network.Network
	sub     *network.Subscription
	nextID  atomic.Uint64
	timeout time.Duration

	mu      sync.Mutex
	pending map[uint64]chan *Response
	closed  bool
}

// NewRequester creates a query client over the fabric.
func NewRequester(net *network.Network, timeout time.Duration) *Requester {
	r := &Requester{
		net:     net,
		sub:     net.Subscribe(TopicResults, 64),
		timeout: timeout,
		pending: make(map[uint64]chan *Response),
	}
	go r.dispatch()
	return r
}

// Close stops the requester.
func (r *Requester) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.sub.Cancel()
}

func (r *Requester) dispatch() {
	for m := range r.sub.C {
		raw, ok := m.Payload.([]byte)
		if !ok {
			continue
		}
		resp, err := UnmarshalResponse(raw)
		if err != nil {
			continue
		}
		r.mu.Lock()
		ch, ok := r.pending[resp.ID]
		if ok {
			delete(r.pending, resp.ID)
		}
		r.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// roundTrip sends a request and waits for its response.
func (r *Requester) roundTrip(req *Request) (*Response, error) {
	req.ID = r.nextID.Add(1)
	ch := make(chan *Response, 1)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("query: requester closed")
	}
	r.pending[req.ID] = ch
	r.mu.Unlock()

	if err := r.net.Publish(TopicQueries, "client", req.Marshal()); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Err)
		}
		return resp, nil
	case <-time.After(r.timeout):
		r.mu.Lock()
		delete(r.pending, req.ID)
		r.mu.Unlock()
		return nil, ErrTimeout
	}
}

// Historical runs a remote historical query.
func (r *Requester) Historical(index, key string, lo, hi uint64) (*HistoricalResult, error) {
	resp, err := r.roundTrip(&Request{Kind: reqHistorical, Index: index, Key: key, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	return UnmarshalHistoricalResult(resp.Body)
}

// Keyword runs a remote conjunctive keyword query.
func (r *Requester) Keyword(index string, keywords []string) (*KeywordResult, error) {
	resp, err := r.roundTrip(&Request{Kind: reqKeyword, Index: index, Keywords: keywords})
	if err != nil {
		return nil, err
	}
	return UnmarshalKeywordResult(resp.Body)
}

// State runs a remote direct state read.
func (r *Requester) State(key string) (*StateResult, error) {
	resp, err := r.roundTrip(&Request{Kind: reqState, Key: key})
	if err != nil {
		return nil, err
	}
	return UnmarshalStateResult(resp.Body)
}
