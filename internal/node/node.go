// Package node implements the classic blockchain node roles of §2.1 of the
// DCert paper: the miner, which executes transactions and proposes sealed
// blocks, and the full node, which re-validates every incoming block
// (metadata, transactions, re-execution against its own state replica)
// before appending it. The DCert certificate issuer embeds a FullNode — it
// is "a full node equipped with the SGX enclave".
package node

import (
	"errors"
	"fmt"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/statedb"
	"dcert/internal/vm"
)

// Package errors.
var (
	// ErrStateMismatch is returned when a block's state root disagrees with
	// local re-execution.
	ErrStateMismatch = errors.New("node: state root mismatch")
	// ErrNotNextBlock is returned when a block does not extend the node's
	// current tip.
	ErrNotNextBlock = errors.New("node: block does not extend current tip")
)

// GenesisConfig seeds the chain.
type GenesisConfig struct {
	// Time is the genesis timestamp.
	Time uint64
	// State holds pre-funded state entries (key → value).
	State map[string][]byte
	// Consensus selects the PoW parameters recorded in every header.
	Consensus consensus.Params
	// Backend selects the state commitment structure (zero = MPT).
	Backend statedb.BackendKind
}

// BuildGenesis constructs the deterministic genesis block and its state.
func BuildGenesis(cfg GenesisConfig) (*chain.Block, *statedb.DB, error) {
	if cfg.Backend == 0 {
		cfg.Backend = statedb.BackendMPT
	}
	db, err := statedb.NewWithBackend(cfg.Backend)
	if err != nil {
		return nil, nil, fmt.Errorf("node: genesis backend: %w", err)
	}
	for k, v := range cfg.State {
		if err := db.Set([]byte(k), v); err != nil {
			return nil, nil, fmt.Errorf("node: genesis state %q: %w", k, err)
		}
	}
	root, err := db.Root()
	if err != nil {
		return nil, nil, fmt.Errorf("node: genesis root: %w", err)
	}
	blk := &chain.Block{
		Header: chain.Header{
			Height:    0,
			PrevHash:  chash.Zero,
			StateRoot: root,
			TxRoot:    chash.Zero,
			Time:      cfg.Time,
			Consensus: chain.ConsensusProof{Difficulty: cfg.Consensus.Difficulty},
		},
	}
	return blk, db, nil
}

// FullNode validates and stores the chain while maintaining a full state
// replica.
//
// FullNode is not safe for concurrent use (the embedded store is, but the
// state replica advances strictly block by block).
type FullNode struct {
	store  *chain.Store
	db     *statedb.DB
	reg    *vm.Registry
	params consensus.Params
}

// NewFullNode creates a node seeded with the genesis block and state.
func NewFullNode(genesis *chain.Block, db *statedb.DB, reg *vm.Registry, params consensus.Params) (*FullNode, error) {
	root, err := db.Root()
	if err != nil {
		return nil, err
	}
	if root != genesis.Header.StateRoot {
		return nil, fmt.Errorf("%w: genesis state root", ErrStateMismatch)
	}
	store, err := chain.NewStore(genesis)
	if err != nil {
		return nil, err
	}
	return &FullNode{store: store, db: db, reg: reg, params: params}, nil
}

// ResumeFullNode reconstructs a node from locally persisted state: a chain
// of blocks whose integrity the caller has already established (CRC-framed
// recovery plus linkage checks here) and a state replica advanced to the
// last block. Blocks are linked into the store without re-executing
// transactions — the fast path for cold starts from a trusted local disk,
// as opposed to Replay, which treats its input as untrusted gossip.
func ResumeFullNode(blocks []*chain.Block, db *statedb.DB, reg *vm.Registry, params consensus.Params) (*FullNode, error) {
	if len(blocks) == 0 {
		return nil, errors.New("node: resume without blocks")
	}
	n, err := NewFullNode(blocks[0], db, reg, params)
	if err != nil && len(blocks) > 1 {
		// The replica is ahead of genesis; defer the root check to the tip.
		store, serr := chain.NewStore(blocks[0])
		if serr != nil {
			return nil, serr
		}
		n, err = &FullNode{store: store, db: db, reg: reg, params: params}, nil
	}
	if err != nil {
		return nil, err
	}
	for _, blk := range blocks[1:] {
		if _, err := n.store.Add(blk); err != nil {
			return nil, fmt.Errorf("node: resume height %d: %w", blk.Header.Height, err)
		}
	}
	tip := n.store.Best()
	root, err := db.Root()
	if err != nil {
		return nil, err
	}
	if root != tip.Header.StateRoot {
		return nil, fmt.Errorf("%w: resume tip %d", ErrStateMismatch, tip.Header.Height)
	}
	return n, nil
}

// Store exposes the node's block store.
func (n *FullNode) Store() *chain.Store {
	return n.store
}

// State exposes the node's state replica (current as of the best tip).
func (n *FullNode) State() *statedb.DB {
	return n.db
}

// Registry exposes the node's contract registry.
func (n *FullNode) Registry() *vm.Registry {
	return n.reg
}

// Params returns the consensus parameters.
func (n *FullNode) Params() consensus.Params {
	return n.params
}

// Tip returns the best block.
func (n *FullNode) Tip() *chain.Block {
	return n.store.Best()
}

// ValidateBlock performs the full-node checks of §2.1 against the node's
// current tip without mutating anything: header linkage, consensus proof,
// transaction root and signatures, and state-transition re-execution. It
// returns the write set needed to advance the state replica.
func (n *FullNode) ValidateBlock(b *chain.Block) (map[string][]byte, error) {
	tip := n.store.Best()
	if b.Header.PrevHash != tip.Hash() || b.Header.Height != tip.Header.Height+1 {
		return nil, fmt.Errorf("%w: height %d prev %s", ErrNotNextBlock, b.Header.Height, b.Header.PrevHash)
	}
	if err := consensus.Verify(n.params, &b.Header); err != nil {
		return nil, err
	}
	if err := b.VerifyTxRoot(); err != nil {
		return nil, err
	}
	res, err := n.db.ExecuteBlock(n.reg, b.Txs)
	if err != nil {
		return nil, err
	}
	// Recompute the post-state root on a throwaway partial view: commit
	// would mutate; instead derive via update proof replay.
	proof, err := n.db.UpdateProofFor(res)
	if err != nil {
		return nil, err
	}
	prevRoot, err := n.db.Root()
	if err != nil {
		return nil, err
	}
	newRoot, err := statedb.ReplayBlock(prevRoot, proof, n.reg, b.Txs)
	if err != nil {
		return nil, err
	}
	if newRoot != b.Header.StateRoot {
		return nil, fmt.Errorf("%w: computed %s, header %s", ErrStateMismatch, newRoot, b.Header.StateRoot)
	}
	return res.WriteSet, nil
}

// ProcessBlock validates b and, if valid, commits its writes and appends it.
func (n *FullNode) ProcessBlock(b *chain.Block) error {
	writes, err := n.ValidateBlock(b)
	if err != nil {
		return err
	}
	if _, err := n.db.Commit(writes); err != nil {
		return err
	}
	if _, err := n.store.Add(b); err != nil {
		return err
	}
	return nil
}

// Miner is a full node that can also propose new blocks.
type Miner struct {
	// FullNode is the miner's validating core.
	*FullNode
	// clock supplies block timestamps (monotonic counter by default).
	clock uint64
}

// NewMiner wraps a full node with block-proposal capability.
func NewMiner(n *FullNode) *Miner {
	return &Miner{FullNode: n, clock: n.Tip().Header.Time}
}

// Propose executes the transactions, seals a block extending the current
// tip, commits it locally, and returns it for broadcast.
func (m *Miner) Propose(txs []*chain.Transaction) (*chain.Block, error) {
	for i, tx := range txs {
		if err := tx.Verify(); err != nil {
			return nil, fmt.Errorf("node: propose tx %d: %w", i, err)
		}
	}
	res, err := m.db.ExecuteBlock(m.reg, txs)
	if err != nil {
		return nil, err
	}
	newRoot, err := m.db.Commit(res.WriteSet)
	if err != nil {
		return nil, err
	}
	txRoot, err := chain.ComputeTxRoot(txs)
	if err != nil {
		return nil, err
	}
	tip := m.store.Best()
	m.clock++
	blk := &chain.Block{
		Header: chain.Header{
			Height:    tip.Header.Height + 1,
			PrevHash:  tip.Hash(),
			StateRoot: newRoot,
			TxRoot:    txRoot,
			Time:      m.clock,
		},
		Txs: txs,
	}
	if err := consensus.Seal(m.params, &blk.Header); err != nil {
		return nil, err
	}
	if _, err := m.store.Add(blk); err != nil {
		return nil, err
	}
	return blk, nil
}
