package smt

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dcert/internal/chash"
)

// rawKey builds a key whose leading bits match the given '0'/'1' pattern,
// mirroring the 2-bit keys (00, 01, 10, 11) of Fig. 4 in the paper.
func rawKey(bits string) Key {
	var k Key
	for i, c := range bits {
		if c == '1' {
			k[i/8] |= 1 << (7 - i%8)
		}
	}
	return k
}

func valHash(s string) chash.Hash {
	return chash.Leaf([]byte(s))
}

func TestNewRejectsBadDepth(t *testing.T) {
	for _, d := range []int{0, -1, MaxDepth + 1} {
		if _, err := New(d); !errors.Is(err, ErrBadDepth) {
			t.Fatalf("depth %d: want ErrBadDepth, got %v", d, err)
		}
	}
}

func TestEmptyTreeRoot(t *testing.T) {
	a, err := New(4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := New(4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if a.Root() != b.Root() {
		t.Fatal("empty roots of equal depth must match")
	}
	c, err := New(5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if a.Root() == c.Root() {
		t.Fatal("empty roots of different depths must differ")
	}
}

func TestFig4Structure(t *testing.T) {
	// Fig. 4: depth-2 tree with keys 00..11 holding v1..v4.
	tree, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v := []chash.Hash{valHash("v1"), valHash("v2"), valHash("v3"), valHash("v4")}
	keys := []Key{rawKey("00"), rawKey("01"), rawKey("10"), rawKey("11")}
	for i, k := range keys {
		tree.Put(k, v[i])
	}
	// Root = H( H(v1||v2) || H(v3||v4) ) with our node hashing.
	want := chash.Node(chash.Node(v[0], v[1]), chash.Node(v[2], v[3]))
	if tree.Root() != want {
		t.Fatal("root does not match hand-computed Fig. 4 structure")
	}
}

func TestFig4UpdateExample(t *testing.T) {
	// Reproduce the paper's running example: read {00:v1}, write {01:v2'}.
	tree, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v := map[string]chash.Hash{
		"00": valHash("v1"), "01": valHash("v2"),
		"10": valHash("v3"), "11": valHash("v4"),
	}
	for bits, h := range v {
		tree.Put(rawKey(bits), h)
	}
	oldRoot := tree.Root()

	// Read proof for key 00.
	readProof, err := tree.Prove([]Key{rawKey("00")})
	if err != nil {
		t.Fatalf("Prove(read): %v", err)
	}
	if err := readProof.Verify(oldRoot, map[Key]chash.Hash{rawKey("00"): v["00"]}); err != nil {
		t.Fatalf("read proof verify: %v", err)
	}

	// Write proof for key 01: verify old value then compute updated root.
	writeProof, err := tree.Prove([]Key{rawKey("01")})
	if err != nil {
		t.Fatalf("Prove(write): %v", err)
	}
	v2New := valHash("v2'")
	newRoot, err := writeProof.UpdateRoot(oldRoot,
		map[Key]chash.Hash{rawKey("01"): v["01"]},
		map[Key]chash.Hash{rawKey("01"): v2New},
	)
	if err != nil {
		t.Fatalf("UpdateRoot: %v", err)
	}

	// The stateless update must agree with mutating the real tree.
	tree.Put(rawKey("01"), v2New)
	if newRoot != tree.Root() {
		t.Fatal("stateless root update disagrees with the real tree")
	}
}

func TestAbsenceProof(t *testing.T) {
	tree, err := New(8)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tree.Put(rawKey("00000001"), valHash("present"))

	absent := rawKey("10000000")
	p, err := tree.Prove([]Key{absent})
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := p.Verify(tree.Root(), map[Key]chash.Hash{absent: chash.Zero}); err != nil {
		t.Fatalf("absence proof failed: %v", err)
	}
	// Claiming the absent key holds a value must fail.
	if err := p.Verify(tree.Root(), map[Key]chash.Hash{absent: valHash("forged")}); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestDeleteRestoresEmptyRoot(t *testing.T) {
	tree, err := New(16)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	empty := tree.Root()
	k := KeyFromString("acct")
	tree.Put(k, valHash("v"))
	if tree.Root() == empty {
		t.Fatal("insert must change the root")
	}
	if tree.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tree.Len())
	}
	tree.Put(k, chash.Zero)
	if tree.Root() != empty {
		t.Fatal("deleting the only leaf must restore the empty root")
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tree.Len())
	}
}

func TestGet(t *testing.T) {
	tree, err := New(16)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	k := KeyFromString("k")
	if !tree.Get(k).IsZero() {
		t.Fatal("absent key must read as zero")
	}
	tree.Put(k, valHash("v"))
	if tree.Get(k) != valHash("v") {
		t.Fatal("Get after Put mismatch")
	}
}

func TestMultiKeyProofAndBatchUpdate(t *testing.T) {
	tree, err := New(32)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 64
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = KeyFromString(fmt.Sprintf("key-%d", i))
		tree.Put(keys[i], valHash(fmt.Sprintf("val-%d", i)))
	}
	oldRoot := tree.Root()

	// Prove a mixed batch: some present keys plus one absent.
	batch := []Key{keys[3], keys[17], keys[42], KeyFromString("missing")}
	p, err := tree.Prove(batch)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	oldVals := map[Key]chash.Hash{
		keys[3]:                  valHash("val-3"),
		keys[17]:                 valHash("val-17"),
		keys[42]:                 valHash("val-42"),
		KeyFromString("missing"): chash.Zero,
	}
	newVals := map[Key]chash.Hash{
		keys[3]:                  valHash("val-3'"),
		keys[17]:                 valHash("val-17"), // unchanged
		keys[42]:                 chash.Zero,        // deleted
		KeyFromString("missing"): valHash("created"),
	}
	newRoot, err := p.UpdateRoot(oldRoot, oldVals, newVals)
	if err != nil {
		t.Fatalf("UpdateRoot: %v", err)
	}

	for k, v := range newVals {
		tree.Put(k, v)
	}
	if newRoot != tree.Root() {
		t.Fatal("batch stateless update disagrees with the real tree")
	}
}

func TestProofRejectsTamperedValue(t *testing.T) {
	tree, err := New(32)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	k := KeyFromString("k")
	tree.Put(k, valHash("honest"))
	p, err := tree.Prove([]Key{k})
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := p.Verify(tree.Root(), map[Key]chash.Hash{k: valHash("tampered")}); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestProofRejectsKeySetMismatch(t *testing.T) {
	tree, err := New(32)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := KeyFromString("a"), KeyFromString("b")
	tree.Put(a, valHash("va"))
	tree.Put(b, valHash("vb"))
	p, err := tree.Prove([]Key{a, b})
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := p.Verify(tree.Root(), map[Key]chash.Hash{a: valHash("va")}); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("want ErrKeyMismatch, got %v", err)
	}
	if err := p.Verify(tree.Root(), map[Key]chash.Hash{
		a: valHash("va"), KeyFromString("c"): valHash("vc"),
	}); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("want ErrKeyMismatch, got %v", err)
	}
}

func TestProofRejectsForgedFill(t *testing.T) {
	tree, err := New(32)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := KeyFromString("a"), KeyFromString("b")
	tree.Put(a, valHash("va"))
	tree.Put(b, valHash("vb"))
	p, err := tree.Prove([]Key{a})
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	// Corrupt one fill digest.
	for prefix := range p.Fills {
		p.Fills[prefix] = valHash("forged")
		break
	}
	if err := p.Verify(tree.Root(), map[Key]chash.Hash{a: valHash("va")}); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestProveZeroKeys(t *testing.T) {
	tree, err := New(8)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := tree.Prove(nil); err == nil {
		t.Fatal("want error for empty key set")
	}
}

func TestProveDeduplicatesKeys(t *testing.T) {
	tree, err := New(16)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	k := KeyFromString("dup")
	tree.Put(k, valHash("v"))
	p, err := tree.Prove([]Key{k, k, k})
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if len(p.Keys) != 1 {
		t.Fatalf("want 1 deduplicated key, got %d", len(p.Keys))
	}
}

func TestEncodedSizePositive(t *testing.T) {
	tree, err := New(64)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 32; i++ {
		tree.Put(KeyFromString(fmt.Sprintf("k%d", i)), valHash(fmt.Sprintf("v%d", i)))
	}
	p, err := tree.Prove([]Key{KeyFromString("k0")})
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if p.EncodedSize() <= chash.Size {
		t.Fatalf("EncodedSize = %d, suspiciously small", p.EncodedSize())
	}
}

func TestRandomizedAgainstRealTreeQuick(t *testing.T) {
	// Property: for random insert sequences and random proof batches, the
	// stateless UpdateRoot always agrees with mutating the real tree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, err := New(64)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(50)
		keys := make([]Key, n)
		for i := range keys {
			keys[i] = KeyFromString(fmt.Sprintf("s%d-k%d", seed, i))
			tree.Put(keys[i], valHash(fmt.Sprintf("v%d", rng.Int())))
		}
		oldRoot := tree.Root()

		k := 1 + rng.Intn(n)
		batch := make([]Key, 0, k)
		oldVals := make(map[Key]chash.Hash, k)
		newVals := make(map[Key]chash.Hash, k)
		for _, i := range rng.Perm(n)[:k] {
			batch = append(batch, keys[i])
			oldVals[keys[i]] = tree.Get(keys[i])
			newVals[keys[i]] = valHash(fmt.Sprintf("new-%d", rng.Int()))
		}
		p, err := tree.Prove(batch)
		if err != nil {
			return false
		}
		newRoot, err := p.UpdateRoot(oldRoot, oldVals, newVals)
		if err != nil {
			return false
		}
		for kk, v := range newVals {
			tree.Put(kk, v)
		}
		return newRoot == tree.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyBitAndPath(t *testing.T) {
	k := rawKey("1010")
	want := []byte{1, 0, 1, 0}
	for i, w := range want {
		if k.Bit(i) != w {
			t.Fatalf("Bit(%d) = %d, want %d", i, k.Bit(i), w)
		}
	}
	p := k.Path(4)
	if p.Len() != 4 || p.String() != "1010" {
		t.Fatalf("Path(4) = %q (len %d)", p.String(), p.Len())
	}
	rt, err := PathFromString("1010")
	if err != nil {
		t.Fatalf("PathFromString: %v", err)
	}
	if rt != p {
		t.Fatalf("PathFromString round-trip mismatch: %q vs %q", rt, p)
	}
}

// TestPathCompareMatchesStringOrder pins the proof wire format's fill order:
// Path.Compare must sort exactly like the lexicographic order of the '0'/'1'
// string forms the original implementation sorted by.
func TestPathCompareMatchesStringOrder(t *testing.T) {
	strs := []string{"", "0", "00", "0000000011", "01", "011", "1", "10", "1010", "11", "110"}
	for i, a := range strs {
		pa, err := PathFromString(a)
		if err != nil {
			t.Fatal(err)
		}
		if pa.String() != a {
			t.Fatalf("round trip %q -> %q", a, pa.String())
		}
		for j, b := range strs {
			pb, _ := PathFromString(b)
			wantLess := i < j
			if gotLess := pa.Compare(pb) < 0; gotLess != wantLess {
				t.Fatalf("Compare(%q, %q) < 0 = %v, want %v", a, b, gotLess, wantLess)
			}
			if (pa.Compare(pb) == 0) != (a == b) {
				t.Fatalf("Compare(%q, %q) equality mismatch", a, b)
			}
		}
	}
}
