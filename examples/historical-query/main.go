// Historical-query: the Fig. 5 case study of the paper — verifiable
// historical account queries on a superlight client.
//
// A SmallBank chain runs with a two-level authenticated index (Merkle
// Patricia Trie over account keys → Merkle B-tree over versions) maintained
// by an untrusted service provider. The certificate issuer's enclave
// certifies the index root on every block (hierarchical scheme, Alg. 5), so
// the client can verify both the integrity and the completeness of "what
// were the values of account X in blocks [t1, t2]".
//
// The example also shows tampering being caught: a dishonest SP that drops
// or alters a result fails verification.
//
// Run with:
//
//	go run ./examples/historical-query
package main

import (
	"encoding/binary"
	"fmt"
	"os"

	"dcert"
)

func main() {
	logger := dcert.NewLogger(os.Stderr, dcert.LogInfo, dcert.LogF("node", "historical-query"))
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.SmallBank,
		Contracts: 2,
		Accounts:  12,
		KeySpace:  20, // few customers → each account has a rich history
		Seed:      2,
	})
	if err != nil {
		logger.Fatal("deployment", dcert.LogF("err", err))
	}
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewHistoricalIndex("history", "ct/")
	}); err != nil {
		logger.Fatal("add index", dcert.LogF("err", err))
	}
	client := dep.NewSuperlightClient()

	// Build 25 blocks; every block also carries an enclave-certified index
	// root which the client tracks.
	fmt.Println("building a SmallBank chain with a certified historical index...")
	for i := 0; i < 25; i++ {
		blk, blkCert, idxCerts, err := dep.MineAndCertifyHierarchical(20, []string{"history"})
		if err != nil {
			logger.Fatal("block failed", dcert.LogF("height", i), dcert.LogF("err", err))
		}
		if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
			logger.Fatal("chain validation", dcert.LogF("err", err))
		}
		ix, err := dep.SP().Index("history")
		if err != nil {
			logger.Fatal("index", dcert.LogF("err", err))
		}
		root, err := ix.Root()
		if err != nil {
			logger.Fatal("root", dcert.LogF("err", err))
		}
		if err := client.ValidateIndex("history", &blk.Header, root, idxCerts[0]); err != nil {
			logger.Fatal("index certificate", dcert.LogF("err", err))
		}
	}
	tip, _ := client.Latest()
	certifiedRoot, certifiedAt, err := client.IndexRoot("history")
	if err != nil {
		logger.Fatal("index root", dcert.LogF("err", err))
	}
	fmt.Printf("chain height %d; index root certified at height %d\n\n", tip.Height, certifiedAt)

	// Query the balance history of a checking account over a window.
	key := "ct/SB-0000/checking/cust-3"
	lo, hi := uint64(5), tip.Height
	res, err := dep.SP().HistoricalQuery("history", key, lo, hi)
	if err != nil {
		logger.Fatal("query", dcert.LogF("err", err))
	}
	if err := dcert.VerifyHistorical(certifiedRoot, res); err != nil {
		logger.Fatal("verification failed", dcert.LogF("err", err))
	}
	fmt.Printf("verified history of %q in blocks [%d, %d] (%d versions, proof %d B):\n",
		key, lo, hi, len(res.Entries), res.Proof.EncodedSize())
	for _, e := range res.Entries {
		fmt.Printf("  block %3d: balance %d\n", e.Version, binary.BigEndian.Uint64(e.Value))
	}

	// A dishonest SP cannot drop a version...
	if len(res.Entries) > 0 {
		dropped := *res
		dropped.Entries = res.Entries[1:]
		if err := dcert.VerifyHistorical(certifiedRoot, &dropped); err != nil {
			fmt.Printf("\ndropping a result is caught: %v\n", err)
		} else {
			logger.Fatal("BUG: dropped result went undetected")
		}

		// ...nor alter one.
		tampered := *res
		tampered.Entries = append([]dcert.Entry(nil), res.Entries...)
		tampered.Entries[0].Value = []byte("\x00\x00\x00\x00\x00\x0f\x42\x40") // fake 1M balance
		if err := dcert.VerifyHistorical(certifiedRoot, &tampered); err != nil {
			fmt.Printf("altering a balance is caught: %v\n", err)
		} else {
			logger.Fatal("BUG: tampered result went undetected")
		}
	}
}
