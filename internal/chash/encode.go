package chash

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Encoding errors.
var (
	// ErrTruncated is returned when a decoder runs out of input.
	ErrTruncated = errors.New("chash: truncated input")
	// ErrOversized is returned when a length prefix exceeds the decoder limit.
	ErrOversized = errors.New("chash: length prefix exceeds limit")
)

// maxChunk bounds any single length-prefixed chunk to guard decoders against
// hostile length prefixes. 64 MiB is far above any legitimate DCert payload.
const maxChunk = 64 << 20

// Encoder builds canonical length-prefixed binary encodings. It is the single
// wire format used for blocks, certificates, proofs, and network messages, so
// that every hashed preimage is unambiguous.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The buffer is owned by the encoder; copy
// it if it must outlive further Put calls.
func (e *Encoder) Bytes() []byte {
	return e.buf
}

// PutUint64 appends a big-endian uint64.
func (e *Encoder) PutUint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// PutUint32 appends a big-endian uint32.
func (e *Encoder) PutUint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// PutByte appends a single byte.
func (e *Encoder) PutByte(b byte) {
	e.buf = append(e.buf, b)
}

// PutBool appends a boolean as one byte.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
		return
	}
	e.buf = append(e.buf, 0)
}

// PutHash appends a fixed-size digest (no length prefix).
func (e *Encoder) PutHash(h Hash) {
	e.buf = append(e.buf, h[:]...)
}

// PutBytes appends a uint32 length prefix followed by the bytes.
func (e *Encoder) PutBytes(b []byte) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutString appends a length-prefixed UTF-8 string.
func (e *Encoder) PutString(s string) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads the format produced by Encoder.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps the given buffer. The decoder does not copy; the caller
// must not mutate buf while decoding.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Remaining reports how many bytes are left to decode.
func (d *Decoder) Remaining() int {
	return len(d.buf) - d.off
}

// Finish returns an error unless the decoder consumed exactly all input.
// Canonical decoders must call it so that trailing garbage is rejected.
func (d *Decoder) Finish() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("chash: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) ([]byte, error) {
	if d.Remaining() < n {
		return nil, fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, d.Remaining())
	}
	out := d.buf[d.off : d.off+n]
	d.off += n
	return out, nil
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Byte reads a single byte.
func (d *Decoder) Byte() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Bool reads a one-byte boolean, rejecting non-canonical values.
func (d *Decoder) Bool() (bool, error) {
	b, err := d.Byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("chash: non-canonical bool byte 0x%02x", b)
	}
}

// ReadHash reads a fixed-size digest.
func (d *Decoder) ReadHash() (Hash, error) {
	b, err := d.take(Size)
	if err != nil {
		return Zero, err
	}
	var h Hash
	copy(h[:], b)
	return h, nil
}

// ReadBytes reads a length-prefixed byte slice. The returned slice is a copy.
func (d *Decoder) ReadBytes() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > maxChunk {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversized, n)
	}
	b, err := d.take(int(n))
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// ReadString reads a length-prefixed string.
func (d *Decoder) ReadString() (string, error) {
	b, err := d.ReadBytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}
