package obs

import (
	"testing"
	"time"
)

// TestTracerRing: spans land oldest-first, the ring caps retention, and
// Total keeps the all-time count.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		sp := tr.Start("op", 0)
		sp.End()
	}
	spans := tr.Recent(0)
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// The newest 4 of 6 spans are IDs 3..6, oldest first.
	for i, sp := range spans {
		if want := SpanID(i + 3); sp.ID != want {
			t.Fatalf("span %d has ID %d, want %d", i, sp.ID, want)
		}
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d, want 6", tr.Total())
	}
	if got := tr.Recent(2); len(got) != 2 || got[1].ID != 6 {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

// TestTracerParentLinks: children record their parent's ID so /debug/spans
// can rebuild the tree.
func TestTracerParentLinks(t *testing.T) {
	tr := NewTracer(8)
	root := tr.Start("pipeline.block", 0)
	child := tr.Start("pipeline.verify", root.ID())
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	spans := tr.Recent(0)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "pipeline.verify" || spans[0].Parent != root.ID() {
		t.Fatalf("child span = %+v, want parent %d", spans[0], root.ID())
	}
	if spans[1].Parent != 0 {
		t.Fatalf("root span has parent %d", spans[1].Parent)
	}
	if spans[0].Duration <= 0 {
		t.Fatal("child span has no duration")
	}
}
