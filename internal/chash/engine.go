package chash

import (
	"crypto/sha256"
	"hash"
	"sync"
)

// The hashing engine behind Sum/Leaf/Node. Every Merkle structure in the
// repository funnels through these three entry points, so their cost sets the
// floor for certification throughput (the paper's §6 numbers are dominated by
// exactly this loop, inside and outside the enclave).
//
// Two fast paths keep the steady state allocation-free:
//
//   - Preimages up to inlineMax bytes (every Node, every Leaf over typical
//     state values) are assembled in a stack buffer and hashed with the
//     single-shot sha256.Sum256, avoiding both the hash.Hash interface
//     dispatch and any heap traffic.
//   - Larger preimages stream through a sync.Pool of reusable SHA-256 states
//     with preallocated domain/sum scratch, so no per-call state allocation
//     survives warm-up.
//
// Outputs are byte-identical to the original sha256.New()-per-call
// implementation (golden_test.go pins them): both hash the domain byte
// followed by the concatenated parts.

// inlineMax is the largest preimage hashed via the stack-buffer single-shot
// path. It covers the dominant shapes: interior nodes (1+64 bytes), header
// and certificate digests, and small state values.
const inlineMax = 256

// engine is a pooled streaming SHA-256 state. The scratch fields live beside
// the state so that no per-call temporary escapes to the heap.
type engine struct {
	h   hash.Hash
	dom [1]byte
	sum [Size]byte
}

var engines = sync.Pool{
	New: func() any {
		return &engine{h: sha256.New()}
	},
}

// sumParts hashes d || parts[0] || parts[1] || ... choosing the fast path by
// total preimage size.
func sumParts(d Domain, parts ...[]byte) Hash {
	total := 1
	for _, p := range parts {
		total += len(p)
	}
	if total <= inlineMax {
		var buf [inlineMax]byte
		buf[0] = byte(d)
		n := 1
		for _, p := range parts {
			n += copy(buf[n:], p)
		}
		return sha256.Sum256(buf[:n])
	}
	e := engines.Get().(*engine)
	e.h.Reset()
	e.dom[0] = byte(d)
	e.h.Write(e.dom[:])
	for _, p := range parts {
		e.h.Write(p)
	}
	e.h.Sum(e.sum[:0])
	out := Hash(e.sum)
	engines.Put(e)
	return out
}

// sumOne is sumParts for the common single-part case, avoiding the variadic
// slice on hot call sites (Leaf, single-buffer Sum callers routed here).
func sumOne(d Domain, p []byte) Hash {
	if len(p) < inlineMax {
		var buf [inlineMax]byte
		buf[0] = byte(d)
		n := 1 + copy(buf[1:], p)
		return sha256.Sum256(buf[:n])
	}
	e := engines.Get().(*engine)
	e.h.Reset()
	e.dom[0] = byte(d)
	e.h.Write(e.dom[:])
	e.h.Write(p)
	e.h.Sum(e.sum[:0])
	out := Hash(e.sum)
	engines.Put(e)
	return out
}
