package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Lightweight span tracing: a fixed-capacity ring buffer of recently
// finished spans with parent/child links. There is no sampling and no
// export — the ring is the whole story, sized for "what did the pipeline do
// in the last few seconds", and /debug/spans dumps it.

// SpanID identifies one span; 0 is "no span" (root).
type SpanID uint64

// Span is one finished traced operation.
type Span struct {
	// ID is the span's own identity.
	ID SpanID `json:"id"`
	// Parent links to the enclosing span (0 for roots).
	Parent SpanID `json:"parent,omitempty"`
	// Name is the operation (e.g. "pipeline.verify").
	Name string `json:"name"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// Duration is how long it ran.
	Duration time.Duration `json:"duration_ns"`
}

// Tracer records finished spans into a ring buffer.
//
// Tracer is safe for concurrent use; a nil *Tracer is a no-op.
type Tracer struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int    // next write position
	total uint64 // spans ever recorded
}

// NewTracer creates a tracer keeping the most recent capacity spans
// (default 256 when capacity < 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 256
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// SpanHandle is an in-flight span. It is a value type: starting and ending
// a span allocates nothing as long as the handle stays on the stack.
type SpanHandle struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
}

// Start begins a span under the given parent (0 for a root span).
func (t *Tracer) Start(name string, parent SpanID) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{
		tr:     t,
		id:     SpanID(t.nextID.Add(1)),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

// ID returns the span's identity, for parenting children (0 on a no-op
// handle).
func (h SpanHandle) ID() SpanID {
	return h.id
}

// End finishes the span and records it into the ring.
func (h SpanHandle) End() {
	if h.tr == nil {
		return
	}
	t := h.tr
	t.mu.Lock()
	t.ring[t.next] = Span{
		ID:       h.id,
		Parent:   h.parent,
		Name:     h.name,
		Start:    h.start,
		Duration: time.Since(h.start),
	}
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	t.mu.Unlock()
}

// Recent returns up to max finished spans, oldest first (all retained spans
// when max <= 0). The returned slice is a copy.
func (t *Tracer) Recent(max int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int(t.total)
	if n > len(t.ring) {
		n = len(t.ring)
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]Span, 0, n)
	// Oldest retained span sits at t.next when the ring has wrapped,
	// otherwise at 0; we want the newest n, oldest first.
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Total reports how many spans were ever recorded (including those the ring
// has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
