package query

import (
	"errors"
	"fmt"
	"testing"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/mbtree"
	"dcert/internal/node"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// rig wires a miner and an SP over the same genesis and KV workload.
type rig struct {
	miner *node.Miner
	sp    *ServiceProvider
	gen   *workload.Generator
	kind  workload.Kind
}

func mkNode(t *testing.T, kind workload.Kind, contracts int, params consensus.Params) *node.FullNode {
	t.Helper()
	reg := vm.NewRegistry()
	if err := workload.Register(reg, kind, contracts); err != nil {
		t.Fatalf("Register: %v", err)
	}
	genesis, db, err := node.BuildGenesis(node.GenesisConfig{Time: 1, Consensus: params})
	if err != nil {
		t.Fatalf("BuildGenesis: %v", err)
	}
	n, err := node.NewFullNode(genesis, db, reg, params)
	if err != nil {
		t.Fatalf("NewFullNode: %v", err)
	}
	return n
}

func newRig(t *testing.T, kind workload.Kind) *rig {
	t.Helper()
	accounts, err := workload.NewAccounts(5)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	cfg := workload.Config{Kind: kind, Contracts: 2, Seed: 3, KeySpace: 20, CPUSortSize: 16, IOOpsPerTx: 2}
	params := consensus.Params{Difficulty: 2}
	gen, err := workload.NewGenerator(cfg, accounts)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return &rig{
		miner: node.NewMiner(mkNode(t, kind, cfg.Contracts, params)),
		sp:    NewServiceProvider(mkNode(t, kind, cfg.Contracts, params)),
		gen:   gen,
		kind:  kind,
	}
}

// advance mines n blocks of size txs and feeds them to the SP.
func (r *rig) advance(t *testing.T, n, txs int) {
	t.Helper()
	for i := 0; i < n; i++ {
		batch, err := r.gen.Block(txs)
		if err != nil {
			t.Fatalf("gen.Block: %v", err)
		}
		blk, err := r.miner.Propose(batch)
		if err != nil {
			t.Fatalf("Propose: %v", err)
		}
		if err := r.sp.ProcessBlock(blk); err != nil {
			t.Fatalf("sp.ProcessBlock: %v", err)
		}
	}
}

// anyIndexedKey returns a state key present in the index.
func anyIndexedKey(t *testing.T, ix *TwoLevel) string {
	t.Helper()
	for k := range ix.lowers {
		return k
	}
	t.Fatal("index is empty")
	return ""
}

func TestHistoricalQueryRoundTrip(t *testing.T) {
	r := newRig(t, workload.KVStore)
	ix, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 10, 15)

	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, ix)
	res, err := r.sp.HistoricalQuery("hist", key, 0, 10)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("expected at least one historical entry")
	}
	if err := VerifyHistorical(root, res); err != nil {
		t.Fatalf("VerifyHistorical: %v", err)
	}
	// Entry versions are block heights within the window.
	for _, e := range res.Entries {
		if e.Version < 1 || e.Version > 10 {
			t.Fatalf("entry version %d outside window", e.Version)
		}
	}
}

func TestHistoricalQueryAbsentKey(t *testing.T) {
	r := newRig(t, workload.KVStore)
	ix, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 3, 10)

	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := r.sp.HistoricalQuery("hist", "ct/never-written", 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	if len(res.Entries) != 0 {
		t.Fatal("absent key must have no entries")
	}
	if err := VerifyHistorical(root, res); err != nil {
		t.Fatalf("VerifyHistorical(absent): %v", err)
	}
	// Claiming entries for an absent key must fail.
	res.Entries = []mbtree.Entry{{Version: 1, Value: []byte("forged")}}
	if err := VerifyHistorical(root, res); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("want ErrResultMismatch, got %v", err)
	}
}

func TestVerifyRejectsDroppedResult(t *testing.T) {
	r := newRig(t, workload.KVStore)
	ix, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 12, 15)

	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := ""
	var res *HistoricalResult
	// Find a key with at least 2 entries so dropping one is detectable.
	for k, lower := range ix.lowers {
		if lower.Len() >= 2 {
			key = k
			break
		}
	}
	if key == "" {
		t.Skip("no key with multiple versions")
	}
	res, err = r.sp.HistoricalQuery("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	res.Entries = res.Entries[:len(res.Entries)-1] // SP hides a result
	if err := VerifyHistorical(root, res); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("want ErrResultMismatch, got %v", err)
	}
}

func TestVerifyRejectsTamperedValue(t *testing.T) {
	r := newRig(t, workload.KVStore)
	ix, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 5, 10)

	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, ix)
	res, err := r.sp.HistoricalQuery("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	if len(res.Entries) == 0 {
		t.Skip("no entries")
	}
	res.Entries[0].Value = []byte("tampered")
	if err := VerifyHistorical(root, res); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("want ErrResultMismatch, got %v", err)
	}
}

func TestVerifyRejectsStaleRoot(t *testing.T) {
	r := newRig(t, workload.KVStore)
	ix, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 5, 10)
	staleRoot, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	r.advance(t, 5, 10)
	key := anyIndexedKey(t, ix)
	res, err := r.sp.HistoricalQuery("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	if err := VerifyHistorical(staleRoot, res); err == nil {
		t.Fatal("proof against newer index must not verify under stale root")
	}
}

func TestReplayMatchesApply(t *testing.T) {
	// The core certification property: the enclave-side stateless Replay
	// must reproduce exactly the root the SP reaches via Apply.
	r := newRig(t, workload.SmallBank)
	ix, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	// Shadow replica used to produce witnesses on pre-block state.
	shadow, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}

	for i := 0; i < 8; i++ {
		batch, err := r.gen.Block(12)
		if err != nil {
			t.Fatalf("gen.Block: %v", err)
		}
		blk, err := r.miner.Propose(batch)
		if err != nil {
			t.Fatalf("Propose: %v", err)
		}
		writes, err := r.sp.Node().ValidateBlock(blk)
		if err != nil {
			t.Fatalf("ValidateBlock: %v", err)
		}
		prevRoot, err := shadow.Root()
		if err != nil {
			t.Fatalf("Root: %v", err)
		}
		witness, err := shadow.UpdateWitness(blk, writes)
		if err != nil {
			t.Fatalf("UpdateWitness: %v", err)
		}
		replayRoot, err := shadow.Replay(prevRoot, witness, blk, writes)
		if err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if err := shadow.Apply(blk, writes); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		applyRoot, err := shadow.Root()
		if err != nil {
			t.Fatalf("Root: %v", err)
		}
		if replayRoot != applyRoot {
			t.Fatalf("block %d: replay root != apply root", i)
		}
		if err := r.sp.ProcessBlock(blk); err != nil {
			t.Fatalf("sp.ProcessBlock: %v", err)
		}
	}
	// SP's index and the shadow agree.
	a, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	b, err := shadow.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if a != b {
		t.Fatal("SP index and shadow replica diverged")
	}
}

func TestReplayRejectsTamperedWitness(t *testing.T) {
	r := newRig(t, workload.KVStore)
	ix, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	batch, err := r.gen.Block(10)
	if err != nil {
		t.Fatalf("gen.Block: %v", err)
	}
	blk, err := r.miner.Propose(batch)
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	writes, err := r.sp.Node().ValidateBlock(blk)
	if err != nil {
		t.Fatalf("ValidateBlock: %v", err)
	}
	prevRoot, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	witness, err := ix.UpdateWitness(blk, writes)
	if err != nil {
		t.Fatalf("UpdateWitness: %v", err)
	}
	witness[len(witness)/2] ^= 0xff
	if _, err := ix.Replay(prevRoot, witness, blk, writes); err == nil {
		t.Fatal("tampered witness must not replay")
	}
}

func TestKeywordQueryRoundTrip(t *testing.T) {
	r := newRig(t, workload.SmallBank)
	ix, err := NewKeywordIndex("kw")
	if err != nil {
		t.Fatalf("NewKeywordIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 6, 15)

	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	// Every SmallBank tx carries its contract name; method names vary.
	contract := workload.ContractName(workload.SmallBank, 0)
	res, err := r.sp.KeywordQuery("kw", []string{contract, "deposit_check"})
	if err != nil {
		t.Fatalf("KeywordQuery: %v", err)
	}
	if err := VerifyKeyword(root, res); err != nil {
		t.Fatalf("VerifyKeyword: %v", err)
	}
	// Matches must actually be deposit_check txs on that contract.
	for _, m := range res.Matches {
		height := PostingHeight(m.Version)
		blk, err := r.sp.Node().Store().AtHeight(height)
		if err != nil {
			t.Fatalf("AtHeight: %v", err)
		}
		found := false
		for _, tx := range blk.Txs {
			if tx.Hash() == m.TxHash && tx.Contract == contract && tx.Method == "deposit_check" {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("match %x does not correspond to a matching tx", m.TxHash)
		}
	}
}

func TestKeywordQueryConjunctionSemantics(t *testing.T) {
	r := newRig(t, workload.SmallBank)
	ix, err := NewKeywordIndex("kw")
	if err != nil {
		t.Fatalf("NewKeywordIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 6, 15)

	// Two mutually exclusive methods can never co-occur in one tx.
	res, err := r.sp.KeywordQuery("kw", []string{"deposit_check", "update_saving"})
	if err != nil {
		t.Fatalf("KeywordQuery: %v", err)
	}
	if len(res.Matches) != 0 {
		t.Fatalf("exclusive conjunction returned %d matches", len(res.Matches))
	}
	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if err := VerifyKeyword(root, res); err != nil {
		t.Fatalf("VerifyKeyword: %v", err)
	}
}

func TestVerifyKeywordRejectsForgedMatch(t *testing.T) {
	r := newRig(t, workload.SmallBank)
	ix, err := NewKeywordIndex("kw")
	if err != nil {
		t.Fatalf("NewKeywordIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 4, 10)
	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := r.sp.KeywordQuery("kw", []string{"deposit_check"})
	if err != nil {
		t.Fatalf("KeywordQuery: %v", err)
	}
	res.Matches = append(res.Matches, Posting{Version: 999999, TxHash: chash.Leaf([]byte("ghost"))})
	if err := VerifyKeyword(root, res); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("want ErrResultMismatch, got %v", err)
	}
}

func TestKeywordsExtraction(t *testing.T) {
	tx := &chain.Transaction{
		Contract: "SB-0001",
		Method:   "send_payment",
		Args:     [][]byte{[]byte("Stock Exchange"), []byte("Bank"), {0x01, 0x02}},
	}
	kws := Keywords(tx)
	want := map[string]bool{"SB-0001": true, "send_payment": true, "stock": true, "exchange": true, "bank": true}
	if len(kws) != len(want) {
		t.Fatalf("Keywords = %v", kws)
	}
	for _, k := range kws {
		if !want[k] {
			t.Fatalf("unexpected keyword %q", k)
		}
	}
}

func TestPostingVersionRoundTrip(t *testing.T) {
	v := PostingVersion(12345, 678)
	if PostingHeight(v) != 12345 {
		t.Fatalf("PostingHeight = %d", PostingHeight(v))
	}
	if PostingVersion(1, 2) >= PostingVersion(2, 0) {
		t.Fatal("posting versions must order by height first")
	}
}

func TestSkipListBaselineRoundTrip(t *testing.T) {
	r := newRig(t, workload.KVStore)
	base := NewSkipListIndex("base", "ct/")
	twol, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	if err := r.sp.AddIndex(twol); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	// Feed the baseline the same blocks.
	for i := 0; i < 8; i++ {
		batch, err := r.gen.Block(12)
		if err != nil {
			t.Fatalf("gen.Block: %v", err)
		}
		blk, err := r.miner.Propose(batch)
		if err != nil {
			t.Fatalf("Propose: %v", err)
		}
		writes, err := r.sp.Node().ValidateBlock(blk)
		if err != nil {
			t.Fatalf("ValidateBlock: %v", err)
		}
		if err := r.sp.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
		if err := base.Apply(blk, writes); err != nil {
			t.Fatalf("baseline Apply: %v", err)
		}
	}
	root, err := base.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, twol)
	entries, proof, err := base.QueryRange(key, 0, 100)
	if err != nil {
		t.Fatalf("QueryRange: %v", err)
	}
	if err := VerifySkipRange(root, key, 0, 100, entries, proof); err != nil {
		t.Fatalf("VerifySkipRange: %v", err)
	}
	// Both index designs return the same answer set.
	res, err := r.sp.HistoricalQuery("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	if len(res.Entries) != len(entries) {
		t.Fatalf("baseline %d entries, two-level %d", len(entries), len(res.Entries))
	}
	for i := range entries {
		if entries[i].Version != res.Entries[i].Version {
			t.Fatalf("entry %d version mismatch", i)
		}
	}
	// Tampered claims fail.
	if len(entries) > 0 {
		entries[0].Value = []byte("tampered")
		if err := VerifySkipRange(root, key, 0, 100, entries, proof); !errors.Is(err, ErrResultMismatch) {
			t.Fatalf("want ErrResultMismatch, got %v", err)
		}
	}
}

func TestSPRejectsDuplicateIndex(t *testing.T) {
	r := newRig(t, workload.KVStore)
	ix, err := NewHistoricalIndex("dup", "")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err == nil {
		t.Fatal("want error for duplicate index")
	}
	if _, err := r.sp.Index("ghost"); err == nil {
		t.Fatal("want error for unknown index")
	}
	if _, err := r.sp.KeywordQuery("dup", nil); err == nil {
		t.Fatal("want error for empty keyword query")
	}
}

func TestProofSizeReporting(t *testing.T) {
	r := newRig(t, workload.KVStore)
	ix, err := NewHistoricalIndex("hist", "ct/")
	if err != nil {
		t.Fatalf("NewHistoricalIndex: %v", err)
	}
	if err := r.sp.AddIndex(ix); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	r.advance(t, 5, 10)
	key := anyIndexedKey(t, ix)
	res, err := r.sp.HistoricalQuery("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	if res.Proof.EncodedSize() <= 0 {
		t.Fatal("proof size must be positive")
	}
	kres, err := r.sp.KeywordQuery("hist", []string{fmt.Sprintf("%v", key)})
	if err != nil {
		t.Fatalf("KeywordQuery: %v", err)
	}
	if kres.ProofSize() <= 0 {
		t.Fatal("keyword proof size must be positive")
	}
}
