package dcert

import (
	"fmt"
	"math"
	"time"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/core"
	"dcert/internal/network"
	"dcert/internal/query"
	"dcert/internal/transport"
)

// The wire plane: a deployment can expose its fabric and services over real
// sockets (internal/transport), so the node and its clients run as separate
// OS processes. The wire carries two shapes of traffic:
//
//   - the topic streams (blocks, certificate bundles, catch-up requests,
//     query request/response topics) — a remote WireClient is a network.Bus,
//     so CertFollower and QueryRequester run over it unchanged;
//   - an RPC route table for the pull-style interactions a fresh client
//     needs before it can follow streams: node identity (trust anchors),
//     the latest certificate bundle, raw blocks, and one-shot queries.

// Bus is the topic API shared by the in-process fabric and the wire
// transport (see internal/network.Bus).
type Bus = network.Bus

// Wire transport types (package internal/transport).
type (
	// WireServer serves a deployment's fabric and RPC routes over TCP.
	WireServer = transport.Server
	// WireServerConfig tunes a wire server (address, TLS, queue depths).
	WireServerConfig = transport.ServerConfig
	// WireClient is a remote connection to a WireServer; it implements Bus.
	WireClient = transport.Client
	// WireClientConfig tunes a wire client (identity, TLS, timeouts).
	WireClientConfig = transport.ClientConfig
	// WireServerStats counts a wire server's activity.
	WireServerStats = transport.ServerStats
)

// Wire RPC routes served by ServeWire.
const (
	// WireRouteInfo returns the node's trust anchors (authority key, enclave
	// measurement, consensus parameters).
	WireRouteInfo = "dcert/info"
	// WireRouteCertLatest returns the primary issuer's newest cert bundle.
	WireRouteCertLatest = "dcert/cert-latest"
	// WireRouteBlock returns one raw block by height.
	WireRouteBlock = "dcert/block"
	// WireRouteQuery answers one serialized query request.
	WireRouteQuery = "dcert/query"
	// WireRouteCertSegment returns the certified segment covering a height
	// (tipHeight = the newest segment) — the serving side of the interlink
	// bootstrap walk.
	WireRouteCertSegment = "dcert/cert-segment"
)

// tipHeight requests the best block on WireRouteBlock.
const tipHeight = math.MaxUint64

// NodeInfo is a node's self-description served on WireRouteInfo: everything
// a superlight client needs to start validating. The demo commands accept
// these anchors from the node itself (trust-on-first-use); a production
// client pins the authority key and measurement out of band, exactly as the
// paper's clients pin the IAS key.
type NodeInfo struct {
	// AuthorityKey is the attestation authority's public key.
	AuthorityKey *chash.PublicKey
	// Measurement is the CI's enclave program measurement.
	Measurement Hash
	// Params are the chain's consensus parameters.
	Params ConsensusParams
}

// encodeNodeInfo renders a NodeInfo for the wire.
func encodeNodeInfo(info *NodeInfo) []byte {
	der := info.AuthorityKey.Marshal()
	e := chash.NewEncoder(64 + len(der))
	e.PutBytes(der)
	e.PutHash(info.Measurement)
	e.PutUint32(info.Params.Difficulty)
	return e.Bytes()
}

// decodeNodeInfo parses a WireRouteInfo response.
func decodeNodeInfo(raw []byte) (*NodeInfo, error) {
	d := chash.NewDecoder(raw)
	der, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("dcert: node info: %w", err)
	}
	var info NodeInfo
	if info.AuthorityKey, err = chash.ParsePublicKey(der); err != nil {
		return nil, fmt.Errorf("dcert: node info: %w", err)
	}
	if info.Measurement, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("dcert: node info: %w", err)
	}
	if info.Params.Difficulty, err = d.Uint32(); err != nil {
		return nil, fmt.Errorf("dcert: node info: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("dcert: node info: %w", err)
	}
	return &info, nil
}

// encodeBundle renders a cert bundle for the wire ("" means none yet).
func encodeBundle(b *CertBundle) []byte {
	if b == nil {
		return nil
	}
	hdr := b.Header.Marshal()
	cert := b.Cert.Marshal()
	e := chash.NewEncoder(16 + len(hdr) + len(cert))
	e.PutBytes(hdr)
	e.PutBytes(cert)
	return e.Bytes()
}

// decodeBundle parses a WireRouteCertLatest response (nil when the node has
// not certified anything yet).
func decodeBundle(raw []byte) (*CertBundle, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	d := chash.NewDecoder(raw)
	hdrRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("dcert: cert bundle: %w", err)
	}
	certRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("dcert: cert bundle: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("dcert: cert bundle: %w", err)
	}
	hdr, err := chain.UnmarshalHeader(hdrRaw)
	if err != nil {
		return nil, fmt.Errorf("dcert: cert bundle header: %w", err)
	}
	cert, err := core.UnmarshalCertificate(certRaw)
	if err != nil {
		return nil, fmt.Errorf("dcert: cert bundle certificate: %w", err)
	}
	return &CertBundle{Header: hdr, Cert: cert}, nil
}

// ServeWire exposes the deployment over TCP: topic traffic bridges onto the
// deployment's fabric (so fault plans and instrumentation apply to socket
// traffic), and the standard RPC routes are mounted. The deployment keeps
// running in-process exactly as before; the wire is an additional door.
func (d *Deployment) ServeWire(cfg WireServerConfig) (*WireServer, error) {
	srv, err := transport.Serve(d.net, cfg)
	if err != nil {
		return nil, fmt.Errorf("dcert: serve wire: %w", err)
	}
	srv.Handle(WireRouteInfo, func([]byte) ([]byte, error) {
		return encodeNodeInfo(&NodeInfo{
			AuthorityKey: d.authority.PublicKey(),
			Measurement:  d.issuer.Measurement(),
			Params:       d.params,
		}), nil
	})
	srv.Handle(WireRouteCertLatest, func([]byte) ([]byte, error) {
		return encodeBundle(d.issuer.LatestBundle()), nil
	})
	srv.Handle(WireRouteBlock, func(body []byte) ([]byte, error) {
		dec := chash.NewDecoder(body)
		height, err := dec.Uint64()
		if err != nil {
			return nil, fmt.Errorf("block request: %w", err)
		}
		if err := dec.Finish(); err != nil {
			return nil, fmt.Errorf("block request: %w", err)
		}
		store := d.miner.Store()
		if height == tipHeight {
			height = store.BestHeight()
		}
		blk, err := store.AtHeight(height)
		if err != nil {
			return nil, err
		}
		return blk.Marshal(), nil
	})
	srv.Handle(WireRouteCertSegment, func(body []byte) ([]byte, error) {
		dec := chash.NewDecoder(body)
		height, err := dec.Uint64()
		if err != nil {
			return nil, fmt.Errorf("segment request: %w", err)
		}
		if err := dec.Finish(); err != nil {
			return nil, fmt.Errorf("segment request: %w", err)
		}
		var seg *SegmentCert
		if height == tipHeight {
			seg = d.issuer.LatestSegment()
		} else {
			seg = d.issuer.SegmentCovering(height)
		}
		if seg == nil {
			return nil, nil // empty body = no segment covering that height
		}
		return seg.Marshal(), nil
	})
	srv.Handle(WireRouteQuery, func(body []byte) ([]byte, error) {
		// With a fleet started, wire queries route through the
		// consistent-hash front door; otherwise the single SP answers.
		if f := d.fleet.Load(); f != nil {
			return f.HandleRaw(body), nil
		}
		return query.HandleRaw(d.sp, body), nil
	})
	return srv, nil
}

// DialWire connects to a node's wire endpoint.
func DialWire(addr string, cfg WireClientConfig) (*WireClient, error) {
	return transport.Dial(addr, cfg)
}

// RequestNodeInfo fetches a remote node's trust anchors.
func RequestNodeInfo(c *WireClient) (*NodeInfo, error) {
	raw, err := c.Request(WireRouteInfo, nil)
	if err != nil {
		return nil, err
	}
	return decodeNodeInfo(raw)
}

// NewRemoteSuperlightClient builds a superlight client from a remote node's
// self-reported trust anchors (trust-on-first-use; pin anchors out of band
// for adversarial settings and construct the client directly).
func NewRemoteSuperlightClient(c *WireClient) (*SuperlightClient, error) {
	info, err := RequestNodeInfo(c)
	if err != nil {
		return nil, err
	}
	return core.NewSuperlightClient(info.AuthorityKey, info.Measurement, info.Params), nil
}

// RequestLatestBundle fetches the node's newest certificate bundle (nil
// before the first certification).
func RequestLatestBundle(c *WireClient) (*CertBundle, error) {
	raw, err := c.Request(WireRouteCertLatest, nil)
	if err != nil {
		return nil, err
	}
	return decodeBundle(raw)
}

// RequestBlock fetches one raw block by height.
func RequestBlock(c *WireClient, height uint64) (*Block, error) {
	e := chash.NewEncoder(8)
	e.PutUint64(height)
	raw, err := c.Request(WireRouteBlock, e.Bytes())
	if err != nil {
		return nil, err
	}
	return chain.UnmarshalBlock(raw)
}

// RequestTipBlock fetches the node's best block.
func RequestTipBlock(c *WireClient) (*Block, error) {
	return RequestBlock(c, tipHeight)
}

// RequestSegment fetches the certified segment covering a height (nil when
// the node holds none for it).
func RequestSegment(c *WireClient, height uint64) (*SegmentCert, error) {
	e := chash.NewEncoder(8)
	e.PutUint64(height)
	raw, err := c.Request(WireRouteCertSegment, e.Bytes())
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, nil
	}
	return core.UnmarshalSegmentCert(raw)
}

// RequestTipSegment fetches the node's newest certified segment.
func RequestTipSegment(c *WireClient) (*SegmentCert, error) {
	return RequestSegment(c, tipHeight)
}

// BootstrapSublinearOver brings a superlight client current over the wire in
// O(log n) certificate fetches: it pulls the tip segment, then walks the
// certificate interlink back to the trusted anchor via per-height segment
// requests (each hop fully re-verified; see core.BootstrapSublinear). It
// returns the total number of segment fetches, tip fetch included.
func BootstrapSublinearOver(c *WireClient, client *SuperlightClient, anchorHeight uint64, anchorHash Hash) (int, error) {
	tip, err := RequestTipSegment(c)
	if err != nil {
		return 0, err
	}
	if tip == nil {
		return 1, fmt.Errorf("dcert: bootstrap: node has no certified segment")
	}
	fetches, err := client.BootstrapSublinear(func(height uint64) (*SegmentCert, error) {
		seg, err := RequestSegment(c, height)
		if err != nil {
			return nil, err
		}
		if seg == nil {
			return nil, fmt.Errorf("%w: no segment covering height %d", core.ErrSegmentUnavailable, height)
		}
		return seg, nil
	}, tip, anchorHeight, anchorHash)
	return fetches + 1, err
}

// RequestQuery runs one verifiable query over the wire's RPC path and
// returns the serialized response (use the query result parsers plus the
// Verify* helpers against a certified header).
func RequestQuery(c *WireClient, req *QueryRequest) (*QueryResponse, error) {
	raw, err := c.Request(WireRouteQuery, req.Marshal())
	if err != nil {
		return nil, err
	}
	resp, err := query.UnmarshalResponse(raw)
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("dcert: remote query: %s", resp.Err)
	}
	return resp, nil
}

// FollowCertsOver starts a certificate follower on an arbitrary bus — in
// particular a WireClient, putting a remote client on the node's live
// certificate stream with stall-triggered catch-up over the same socket.
func FollowCertsOver(bus Bus, client *SuperlightClient, cfg FollowerConfig) *CertFollower {
	return core.FollowCerts(client, bus, cfg)
}

// NewQueryRequesterOver creates a networked query requester on an arbitrary
// bus — in particular a WireClient, for the streaming (topic) query path.
// The node must be running ServeQueries.
func NewQueryRequesterOver(bus Bus, timeout time.Duration) *QueryRequester {
	return query.NewRequester(bus, timeout)
}

// Serialized query protocol types (package internal/query), used with the
// wire's RPC query route.
type (
	// QueryRequest is a serializable query.
	QueryRequest = query.Request
	// QueryResponse is a serialized query answer.
	QueryResponse = query.Response
)

// NewRemoteStateRequest builds a direct state-read query.
func NewRemoteStateRequest(key string) *QueryRequest {
	return query.NewStateRequest(key)
}

// NewRemoteHistoricalRequest builds a historical range query.
func NewRemoteHistoricalRequest(index, key string, lo, hi uint64) *QueryRequest {
	return query.NewHistoricalRequest(index, key, lo, hi)
}

// NewRemoteKeywordRequest builds a conjunctive keyword query.
func NewRemoteKeywordRequest(index string, keywords []string) *QueryRequest {
	return query.NewKeywordRequest(index, keywords)
}

// ParseStateResult parses a state-read response body for VerifyState.
func ParseStateResult(resp *QueryResponse) (*StateResult, error) {
	return query.UnmarshalStateResult(resp.Body)
}

// ParseHistoricalResult parses a historical response body for
// VerifyHistorical.
func ParseHistoricalResult(resp *QueryResponse) (*HistoricalResult, error) {
	return query.UnmarshalHistoricalResult(resp.Body)
}

// ParseKeywordResult parses a keyword response body for VerifyKeyword.
func ParseKeywordResult(resp *QueryResponse) (*KeywordResult, error) {
	return query.UnmarshalKeywordResult(resp.Body)
}
