package mbtree

import (
	"fmt"
	"sort"

	"dcert/internal/chash"
)

// Node encoding tags.
const (
	tagLeaf     byte = 1
	tagInternal byte = 2
)

// hashRec computes (and caches) node digests bottom-up.
func (t *Tree) hashRec(n *node) (chash.Hash, error) {
	if !n.dirty && !n.hash.IsZero() {
		return n.hash, nil
	}
	if !n.leaf {
		for i := range n.kids {
			if n.kids[i].n == nil {
				// Unresolved child: its hash is already final.
				continue
			}
			h, err := t.hashRec(n.kids[i].n)
			if err != nil {
				return chash.Zero, err
			}
			n.kids[i].hash = h
		}
	}
	raw, err := encodeNode(n)
	if err != nil {
		return chash.Zero, err
	}
	n.hash = chash.Sum(chash.DomainIndex, raw)
	n.dirty = false
	return n.hash, nil
}

// encodeNode serializes a node. Child hashes must be current.
func encodeNode(n *node) ([]byte, error) {
	e := chash.NewEncoder(64)
	if n.leaf {
		e.PutByte(tagLeaf)
		e.PutUint32(uint32(len(n.entries)))
		for _, ent := range n.entries {
			e.PutUint64(ent.Version)
			e.PutBytes(ent.Value)
		}
		return e.Bytes(), nil
	}
	e.PutByte(tagInternal)
	e.PutUint32(uint32(len(n.keys)))
	for _, k := range n.keys {
		e.PutUint64(k)
	}
	e.PutUint32(uint32(len(n.kids)))
	for i := range n.kids {
		h := n.kids[i].hash
		if n.kids[i].n != nil {
			var ok bool
			if h, ok = cachedNodeHash(n.kids[i].n); !ok {
				return nil, fmt.Errorf("mbtree: encode with dirty child")
			}
		}
		e.PutHash(h)
	}
	return e.Bytes(), nil
}

func cachedNodeHash(n *node) (chash.Hash, bool) {
	if n.dirty || n.hash.IsZero() {
		return chash.Zero, false
	}
	return n.hash, true
}

// decodeNode parses a node encoding, leaving children unresolved.
func decodeNode(h chash.Hash, raw []byte) (*node, error) {
	d := chash.NewDecoder(raw)
	tag, err := d.Byte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
	}
	switch tag {
	case tagLeaf:
		count, err := d.Uint32()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
		}
		if count > 1<<20 {
			return nil, fmt.Errorf("%w: oversized leaf", ErrBadNode)
		}
		n := &node{leaf: true, hash: h, entries: make([]Entry, 0, count)}
		for i := uint32(0); i < count; i++ {
			v, err := d.Uint64()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
			}
			val, err := d.ReadBytes()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
			}
			n.entries = append(n.entries, Entry{Version: v, Value: val})
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
		}
		return n, nil
	case tagInternal:
		nKeys, err := d.Uint32()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
		}
		if nKeys > 1<<20 {
			return nil, fmt.Errorf("%w: oversized node", ErrBadNode)
		}
		n := &node{hash: h, keys: make([]uint64, 0, nKeys)}
		for i := uint32(0); i < nKeys; i++ {
			k, err := d.Uint64()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
			}
			n.keys = append(n.keys, k)
		}
		nKids, err := d.Uint32()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
		}
		if nKids != nKeys+1 {
			return nil, fmt.Errorf("%w: %d children for %d keys", ErrBadNode, nKids, nKeys)
		}
		n.kids = make([]child, 0, nKids)
		for i := uint32(0); i < nKids; i++ {
			ch, err := d.ReadHash()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
			}
			n.kids = append(n.kids, child{hash: ch})
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNode, err)
		}
		return n, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrBadNode, tag)
	}
}

// Witness is a set of content-addressed node encodings sufficient to replay
// a set of tree operations statelessly. It doubles as the integrity proof
// for range queries (the proof-size metric in Fig. 11 is its encoded size).
type Witness struct {
	nodes map[chash.Hash][]byte
}

var _ Resolver = (*Witness)(nil)

// NewWitness returns an empty witness.
func NewWitness() *Witness {
	return &Witness{nodes: make(map[chash.Hash][]byte)}
}

// Node implements Resolver.
func (w *Witness) Node(h chash.Hash) ([]byte, error) {
	raw, ok := w.nodes[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrMissingNode, h)
	}
	return raw, nil
}

func (w *Witness) add(raw []byte) {
	h := chash.Sum(chash.DomainIndex, raw)
	if _, ok := w.nodes[h]; ok {
		return
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	w.nodes[h] = cp
}

// Merge copies all nodes from other into w.
func (w *Witness) Merge(other *Witness) {
	for h, raw := range other.nodes {
		if _, ok := w.nodes[h]; !ok {
			w.nodes[h] = raw
		}
	}
}

// Len returns the number of distinct nodes.
func (w *Witness) Len() int {
	return len(w.nodes)
}

// EncodedSize returns the serialized size in bytes.
func (w *Witness) EncodedSize() int {
	size := 4
	for _, raw := range w.nodes {
		size += 4 + len(raw)
	}
	return size
}

// Marshal serializes the witness deterministically.
func (w *Witness) Marshal() []byte {
	hashes := make([]chash.Hash, 0, len(w.nodes))
	for h := range w.nodes {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		return string(hashes[i][:]) < string(hashes[j][:])
	})
	e := chash.NewEncoder(w.EncodedSize())
	e.PutUint32(uint32(len(hashes)))
	for _, h := range hashes {
		e.PutBytes(w.nodes[h])
	}
	return e.Bytes()
}

// UnmarshalWitness parses a witness produced by Marshal.
func UnmarshalWitness(raw []byte) (*Witness, error) {
	d := chash.NewDecoder(raw)
	n, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("mbtree: unmarshal witness: %w", err)
	}
	w := NewWitness()
	for i := uint32(0); i < n; i++ {
		nodeRaw, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("mbtree: unmarshal witness node %d: %w", i, err)
		}
		w.add(nodeRaw)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("mbtree: unmarshal witness: %w", err)
	}
	return w, nil
}

// WitnessForRange extracts the nodes visited by a [lo, hi] range scan: every
// node overlapping the range plus the path to it. Replaying Range on a
// partial tree over this witness yields the identical, provably complete
// result set.
func (t *Tree) WitnessForRange(lo, hi uint64) (*Witness, error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: [%d, %d]", ErrBadRange, lo, hi)
	}
	if _, err := t.Root(); err != nil {
		return nil, err
	}
	w := NewWitness()
	root, err := t.loadRoot()
	if err != nil {
		return nil, err
	}
	if root == nil {
		return w, nil
	}
	if err := t.witnessRange(root, lo, hi, w); err != nil {
		return nil, err
	}
	return w, nil
}

func (t *Tree) witnessRange(n *node, lo, hi uint64, w *Witness) error {
	raw, err := encodeNode(n)
	if err != nil {
		return err
	}
	w.add(raw)
	if n.leaf {
		return nil
	}
	for i := range n.kids {
		cLo := uint64(0)
		if i > 0 {
			cLo = n.keys[i-1]
		}
		cHi := uint64(1<<64 - 1)
		if i < len(n.keys) {
			cHi = n.keys[i] - 1
		}
		if cHi < lo || cLo > hi {
			continue
		}
		c, err := t.resolveChild(&n.kids[i])
		if err != nil {
			return err
		}
		if err := t.witnessRange(c, lo, hi, w); err != nil {
			return err
		}
	}
	return nil
}

// WitnessForInsert extracts the nodes needed to replay inserting the given
// versions: the lookup path of each version. Splits only restructure path
// nodes, so the witness is sufficient for stateless insertion.
func (t *Tree) WitnessForInsert(versions []uint64) (*Witness, error) {
	if _, err := t.Root(); err != nil {
		return nil, err
	}
	w := NewWitness()
	root, err := t.loadRoot()
	if err != nil {
		return nil, err
	}
	if root == nil {
		return w, nil
	}
	for _, v := range versions {
		if err := t.witnessPath(root, v, w); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func (t *Tree) witnessPath(n *node, version uint64, w *Witness) error {
	raw, err := encodeNode(n)
	if err != nil {
		return err
	}
	w.add(raw)
	if n.leaf {
		return nil
	}
	idx := childIndex(n.keys, version)
	c, err := t.resolveChild(&n.kids[idx])
	if err != nil {
		return err
	}
	return t.witnessPath(c, version, w)
}

// VerifyRange re-runs the range scan on a partial tree over the proof and
// returns the complete, authenticated result set. Callers compare it to the
// results claimed by the service provider. An error means the proof is
// missing nodes, tampered, or internally inconsistent.
func VerifyRange(order int, root chash.Hash, lo, hi uint64, proof *Witness) ([]Entry, error) {
	pt, err := NewPartial(order, root, proof)
	if err != nil {
		return nil, err
	}
	return pt.Range(lo, hi)
}
