package core

import (
	"fmt"
	"sync"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
)

// SuperlightClient validates the blockchain at constant cost (Alg. 3): it
// keeps only the latest block header and its certificate, plus the pinned
// trust anchors (the attestation authority's key and the expected enclave
// measurement). Index certificates for verifiable queries are tracked the
// same way, one per index.
//
// SuperlightClient is safe for concurrent use.
type SuperlightClient struct {
	authorityPK *chash.PublicKey
	measurement chash.Hash
	params      consensus.Params

	mu sync.RWMutex
	// latestHdr/latestCert are the client's entire chain state.
	latestHdr  *chain.Header
	latestCert *Certificate
	// latestSeg is set when the tip certificate covers a multi-block segment
	// (nil for single-block certificates, where latestHdr/latestCert suffice
	// — keeping single-block snapshots byte-identical to the pre-segment
	// format).
	latestSeg *SegmentCert
	// attestedKeys caches enclave public keys whose attestation report has
	// already been verified — the paper's "check an attestation report only
	// once for the same enclave" (§4.3).
	attestedKeys map[string]bool
	// indexState tracks the latest certified root per authenticated index.
	indexState map[string]indexTrack
}

type indexTrack struct {
	header *chain.Header
	root   chash.Hash
	cert   *Certificate
}

// NewSuperlightClient creates a client pinned to an attestation authority
// and an expected enclave program measurement.
func NewSuperlightClient(authorityPK *chash.PublicKey, measurement chash.Hash, params consensus.Params) *SuperlightClient {
	return &SuperlightClient{
		authorityPK:  authorityPK,
		measurement:  measurement,
		params:       params,
		attestedKeys: make(map[string]bool),
		indexState:   make(map[string]indexTrack),
	}
}

// verifyCert runs Alg. 3 lines 2-7 with the once-per-enclave attestation
// cache.
func (c *SuperlightClient) verifyCert(cert *Certificate, digest chash.Hash) error {
	if cert == nil {
		return fmt.Errorf("%w: nil certificate", ErrBadCertificate)
	}
	c.mu.RLock()
	attested := c.attestedKeys[string(cert.PubKey)]
	c.mu.RUnlock()
	if attested {
		return cert.VerifySignatureOnly(digest)
	}
	if err := cert.Verify(c.authorityPK, c.measurement, digest); err != nil {
		return err
	}
	c.mu.Lock()
	c.attestedKeys[string(cert.PubKey)] = true
	c.mu.Unlock()
	return nil
}

// ValidateChain is validate_chain (Alg. 3): verify the certificate chain of
// trust over H(hdr), check the consensus-facing header fields, apply the
// longest-chain selection rule, and adopt the header as the new tip.
func (c *SuperlightClient) ValidateChain(hdr *chain.Header, cert *Certificate) error {
	if hdr == nil {
		return fmt.Errorf("%w: nil header", ErrBadCertificate)
	}
	// Lines 2-7: certificate verification against dig = H(hdr).
	if err := c.verifyCert(cert, BlockDigest(hdr)); err != nil {
		return err
	}
	// The certificate already attests the consensus proof was verified
	// in-enclave; the client re-checks the cheap header-local part.
	if err := consensus.Verify(c.params, hdr); err != nil {
		return err
	}
	// Line 8: chain selection — longest chain wins.
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.latestHdr != nil && hdr.Height <= c.latestHdr.Height {
		return fmt.Errorf("%w: height %d does not extend %d", ErrChainRule, hdr.Height, c.latestHdr.Height)
	}
	c.latestHdr = hdr
	c.latestCert = cert
	c.latestSeg = nil
	return nil
}

// ValidateIndex validates an augmented/hierarchical index certificate over
// dig = H(hdr ‖ root) and adopts it as the index's latest state (§5.3).
func (c *SuperlightClient) ValidateIndex(name string, hdr *chain.Header, root chash.Hash, cert *Certificate) error {
	if hdr == nil {
		return fmt.Errorf("%w: nil header", ErrBadCertificate)
	}
	if err := c.verifyCert(cert, IndexDigest(hdr, root)); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.indexState[name]; ok && hdr.Height <= cur.header.Height {
		return fmt.Errorf("%w: index %q height %d does not extend %d", ErrChainRule, name, hdr.Height, cur.header.Height)
	}
	c.indexState[name] = indexTrack{header: hdr, root: root, cert: cert}
	return nil
}

// Latest returns the client's current tip header and certificate.
func (c *SuperlightClient) Latest() (*chain.Header, *Certificate) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.latestHdr, c.latestCert
}

// IndexRoot returns the latest certified root for an index.
func (c *SuperlightClient) IndexRoot(name string) (chash.Hash, uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st, ok := c.indexState[name]
	if !ok {
		return chash.Zero, 0, fmt.Errorf("%w: %q", ErrUnknownIndex, name)
	}
	return st.root, st.header.Height, nil
}

// StorageSize is the client's persistent footprint in bytes: the latest
// header plus its certificate — the constant of Fig. 7a (≈2.97 KB in the
// paper), independent of chain length.
func (c *SuperlightClient) StorageSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.latestHdr == nil || c.latestCert == nil {
		return 0
	}
	return c.latestHdr.EncodedSize() + c.latestCert.EncodedSize()
}

// Snapshot serializes the client's entire persistent state — the latest
// header and certificate (the ~3 KB of Fig. 7a). Trust anchors (authority
// key, measurement, consensus params) are configuration, not state.
func (c *SuperlightClient) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.latestHdr == nil || c.latestCert == nil {
		return nil, fmt.Errorf("core: snapshot of an empty client")
	}
	hdr := c.latestHdr.Marshal()
	cert := c.latestCert.Marshal()
	e := chash.NewEncoder(16 + len(hdr) + len(cert))
	e.PutBytes(hdr)
	e.PutBytes(cert)
	// A multi-block segment tip appends the whole segment: its certificate
	// only verifies against the segment digest, so the headers must travel
	// with it. Single-block tips omit the field entirely, keeping their
	// snapshot bytes identical to the pre-segment format.
	if c.latestSeg != nil && c.latestSeg.Tip().Hash() == c.latestHdr.Hash() {
		e.PutBytes(c.latestSeg.Marshal())
	}
	return e.Bytes(), nil
}

// Restore loads a snapshot, re-validating it through the full certificate
// path before adopting it — a client restarting from disk trusts only its
// pinned anchors, never the snapshot bytes.
func (c *SuperlightClient) Restore(raw []byte) error {
	d := chash.NewDecoder(raw)
	hdrRaw, err := d.ReadBytes()
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	hdr, err := chain.UnmarshalHeader(hdrRaw)
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	certRaw, err := d.ReadBytes()
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	cert, err := UnmarshalCertificate(certRaw)
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if d.Remaining() > 0 {
		// Segment-tip snapshot: the trailing field is the full segment whose
		// certificate is the one above.
		segRaw, err := d.ReadBytes()
		if err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
		if err := d.Finish(); err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
		seg, err := UnmarshalSegmentCert(segRaw)
		if err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
		if seg.Tip().Hash() != hdr.Hash() {
			return fmt.Errorf("%w: snapshot segment tip does not match header", ErrBadSegment)
		}
		return c.ValidateSegment(seg)
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	return c.ValidateChain(hdr, cert)
}
