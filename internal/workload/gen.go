package workload

import (
	"encoding/binary"
	"fmt"

	"math/rand"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/vm"
)

// Account is a sender with a signing key.
type Account struct {
	// Key signs the account's transactions.
	Key *chash.PrivateKey
	// Addr is the account address.
	Addr chain.Address
	// nonce counts issued transactions.
	nonce uint64
}

// NewAccounts generates n sender accounts with fresh signing keys,
// mirroring the paper's "randomly generate 100k sender accounts" setup.
func NewAccounts(n int) ([]*Account, error) {
	out := make([]*Account, n)
	for i := range out {
		sk, err := chash.GenerateKey()
		if err != nil {
			return nil, fmt.Errorf("workload: account %d: %w", i, err)
		}
		pk, err := sk.Public()
		if err != nil {
			return nil, fmt.Errorf("workload: account %d: %w", i, err)
		}
		out[i] = &Account{Key: sk, Addr: chain.AddressOf(pk)}
	}
	return out, nil
}

// Config parameterizes a workload generator. Zero-valued fields fall back to
// the paper's defaults (Table 1).
type Config struct {
	// Kind selects the Blockbench workload.
	Kind Kind
	// Contracts is the number of deployed contract instances (paper: 500).
	Contracts int
	// Seed makes the transaction stream reproducible.
	Seed int64
	// CPUSortSize is the per-transaction array size for CPUHeavy.
	CPUSortSize int
	// IOOpsPerTx is the keys touched per IOHeavy transaction.
	IOOpsPerTx int
	// KeySpace bounds the number of distinct user keys / accounts touched.
	KeySpace int
}

// Defaults for Config fields.
const (
	DefaultContracts   = 500
	DefaultCPUSortSize = 1024
	DefaultIOOpsPerTx  = 16
	DefaultKeySpace    = 100000
)

func (c Config) withDefaults() Config {
	if c.Contracts == 0 {
		c.Contracts = DefaultContracts
	}
	if c.CPUSortSize == 0 {
		c.CPUSortSize = DefaultCPUSortSize
	}
	if c.IOOpsPerTx == 0 {
		c.IOOpsPerTx = DefaultIOOpsPerTx
	}
	if c.KeySpace == 0 {
		c.KeySpace = DefaultKeySpace
	}
	return c
}

// Generator produces signed transaction streams for one workload.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	accounts []*Account
	names    []string
}

// ContractName returns the instance name of contract i for a workload.
func ContractName(k Kind, i int) string {
	return fmt.Sprintf("%s-%04d", k, i)
}

// NewGenerator creates a generator over the given sender accounts.
func NewGenerator(cfg Config, accounts []*Account) (*Generator, error) {
	cfg = cfg.withDefaults()
	if cfg.Kind < DoNothing || cfg.Kind > SmallBank {
		return nil, fmt.Errorf("workload: unknown kind %d", int(cfg.Kind))
	}
	if len(accounts) == 0 {
		return nil, fmt.Errorf("workload: no sender accounts")
	}
	names := make([]string, cfg.Contracts)
	for i := range names {
		names[i] = ContractName(cfg.Kind, i)
	}
	return &Generator{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		accounts: accounts,
		names:    names,
	}, nil
}

// Register deploys the workload's contract instances into a registry
// (the paper's "initially deploy 500 smart contracts").
func Register(reg *vm.Registry, k Kind, contracts int) error {
	if contracts == 0 {
		contracts = DefaultContracts
	}
	for i := 0; i < contracts; i++ {
		c, err := k.Contract()
		if err != nil {
			return err
		}
		if err := reg.Register(ContractName(k, i), c); err != nil {
			return err
		}
	}
	return nil
}

// RegisterAll deploys every workload's contract instances.
func RegisterAll(reg *vm.Registry, contracts int) error {
	for _, k := range AllKinds() {
		if err := Register(reg, k, contracts); err != nil {
			return err
		}
	}
	return nil
}

func (g *Generator) arg8(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// NextTx produces one signed transaction.
func (g *Generator) NextTx() (*chain.Transaction, error) {
	sender := g.accounts[g.rng.Intn(len(g.accounts))]
	tx := &chain.Transaction{
		Nonce:    sender.nonce,
		Contract: g.names[g.rng.Intn(len(g.names))],
	}
	sender.nonce++

	switch g.cfg.Kind {
	case DoNothing:
		tx.Method = "noop"
	case CPUHeavy:
		tx.Method = "sort"
		tx.Args = [][]byte{g.arg8(g.rng.Uint64()), g.arg8(uint64(g.cfg.CPUSortSize))}
	case IOHeavy:
		start := uint64(g.rng.Intn(g.cfg.KeySpace))
		if g.rng.Intn(2) == 0 {
			tx.Method = "write"
			tx.Args = [][]byte{g.arg8(start), g.arg8(uint64(g.cfg.IOOpsPerTx)), []byte("io-heavy-row-payload")}
		} else {
			tx.Method = "scan"
			tx.Args = [][]byte{g.arg8(start), g.arg8(uint64(g.cfg.IOOpsPerTx))}
		}
	case KVStore:
		key := fmt.Sprintf("user-key-%d", g.rng.Intn(g.cfg.KeySpace))
		if g.rng.Intn(10) < 8 { // Blockbench KVStore is write-heavy
			tx.Method = "set"
			tx.Args = [][]byte{[]byte(key), []byte(fmt.Sprintf("value-%d", g.rng.Uint64()))}
		} else {
			tx.Method = "get"
			tx.Args = [][]byte{[]byte(key)}
		}
	case SmallBank:
		a := fmt.Sprintf("cust-%d", g.rng.Intn(g.cfg.KeySpace))
		b := fmt.Sprintf("cust-%d", g.rng.Intn(g.cfg.KeySpace))
		amount := g.arg8(uint64(1 + g.rng.Intn(100)))
		switch g.rng.Intn(6) {
		case 0:
			tx.Method = "send_payment"
			tx.Args = [][]byte{[]byte(a), []byte(b), amount}
		case 1:
			tx.Method = "write_check"
			tx.Args = [][]byte{[]byte(a), amount}
		case 2:
			tx.Method = "deposit_check"
			tx.Args = [][]byte{[]byte(a), amount}
		case 3:
			tx.Method = "update_saving"
			tx.Args = [][]byte{[]byte(a), amount}
		case 4:
			tx.Method = "amalgamate"
			tx.Args = [][]byte{[]byte(a), []byte(b)}
		default:
			tx.Method = "get_balance"
			tx.Args = [][]byte{[]byte(a)}
		}
	default:
		return nil, fmt.Errorf("workload: unknown kind %d", int(g.cfg.Kind))
	}

	if err := tx.Sign(sender.Key); err != nil {
		return nil, err
	}
	return tx, nil
}

// Block produces n signed transactions (one block's worth).
func (g *Generator) Block(n int) ([]*chain.Transaction, error) {
	out := make([]*chain.Transaction, 0, n)
	for i := 0; i < n; i++ {
		tx, err := g.NextTx()
		if err != nil {
			return nil, err
		}
		out = append(out, tx)
	}
	return out, nil
}
