package dcert_test

import (
	"errors"
	"testing"
	"time"

	"dcert"
	"dcert/internal/core"
	"dcert/internal/network"
)

// newSmallDeployment builds a fast deployment for integration tests.
func newSmallDeployment(t *testing.T, w dcert.Workload, seed int64) *dcert.Deployment {
	t.Helper()
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:   w,
		Contracts:  4,
		Accounts:   8,
		Difficulty: 2,
		Seed:       seed,
		KeySpace:   30,
	})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	return dep
}

// TestNetworkedClientFollowsCertStream runs a superlight client as a
// goroutine subscribed to the simulated network's block and certificate
// topics — the certification workflow of Fig. 2 end to end over the fabric.
func TestNetworkedClientFollowsCertStream(t *testing.T) {
	dep := newSmallDeployment(t, dcert.KVStore, 1)
	client := dep.NewSuperlightClient()

	blocks := dep.Net().Subscribe(network.TopicBlocks, 32)
	certs := dep.Net().Subscribe(network.TopicCerts, 32)
	defer blocks.Cancel()
	defer certs.Cancel()

	const n = 6
	done := make(chan error, 1)
	go func() {
		for validated := 0; validated < n; validated++ {
			var pending *dcert.Block
			select {
			case m, ok := <-blocks.C:
				if !ok {
					done <- errors.New("block stream closed")
					return
				}
				pending = m.Payload.(*dcert.Block)
			case <-time.After(5 * time.Second):
				done <- errors.New("timed out waiting for a block")
				return
			}
			select {
			case m, ok := <-certs.C:
				if !ok {
					done <- errors.New("cert stream closed")
					return
				}
				cert := m.Payload.(*dcert.Certificate)
				if err := client.ValidateChain(&pending.Header, cert); err != nil {
					done <- err
					return
				}
			case <-time.After(5 * time.Second):
				done <- errors.New("timed out waiting for a certificate")
				return
			}
		}
		done <- nil
	}()

	for i := 0; i < n; i++ {
		if _, _, err := dep.MineAndCertify(8); err != nil {
			t.Fatalf("MineAndCertify: %v", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("networked client: %v", err)
	}
	hdr, _ := client.Latest()
	if hdr.Height != n {
		t.Fatalf("client height = %d, want %d", hdr.Height, n)
	}
}

// TestMultiCISwitch exercises the §4.3 multi-CI setting: a client validates
// certificates from one CI, then switches to a second CI running the same
// trusted program — requiring exactly one new attestation-report check — and
// keeps validating.
func TestMultiCISwitch(t *testing.T) {
	dep := newSmallDeployment(t, dcert.KVStore, 2)
	ci2, err := dep.AddIssuer()
	if err != nil {
		t.Fatalf("AddIssuer: %v", err)
	}
	if ci2.Measurement() != dep.Issuer().Measurement() {
		t.Fatal("same trusted program must yield the same measurement")
	}
	client := dep.NewSuperlightClient()

	// Both CIs follow the same chain; the client starts on CI 1.
	for i := 0; i < 3; i++ {
		txs, err := dep.GenerateBlockTxs(8)
		if err != nil {
			t.Fatalf("GenerateBlockTxs: %v", err)
		}
		blk, err := dep.Miner().Propose(txs)
		if err != nil {
			t.Fatalf("Propose: %v", err)
		}
		cert1, _, err := dep.Issuer().ProcessBlock(blk)
		if err != nil {
			t.Fatalf("CI1 ProcessBlock: %v", err)
		}
		cert2, _, err := ci2.ProcessBlock(blk)
		if err != nil {
			t.Fatalf("CI2 ProcessBlock: %v", err)
		}
		// Distinct enclaves sign with distinct sealed keys.
		if string(cert1.PubKey) == string(cert2.PubKey) {
			t.Fatal("independent CIs must have independent enclave keys")
		}
		if i < 2 {
			if err := client.ValidateChain(&blk.Header, cert1); err != nil {
				t.Fatalf("validate via CI1: %v", err)
			}
		} else {
			// Switch to CI 2 mid-stream: works after one fresh report check.
			if err := client.ValidateChain(&blk.Header, cert2); err != nil {
				t.Fatalf("validate via CI2: %v", err)
			}
		}
	}
	hdr, _ := client.Latest()
	if hdr.Height != 3 {
		t.Fatalf("client height = %d", hdr.Height)
	}
}

// TestRogueCIRejected pins the client to the genuine program and presents a
// certificate from an enclave running a DIFFERENT program (different
// measurement): the attestation check must reject it even though the
// signature chain is internally consistent.
func TestRogueCIRejected(t *testing.T) {
	dep := newSmallDeployment(t, dcert.KVStore, 3)
	client := dep.NewSuperlightClient()

	// The rogue deployment shares nothing with the genuine one except the
	// workload shape; its authority differs, so its reports cannot verify.
	rogue := newSmallDeployment(t, dcert.KVStore, 3)
	blk, cert, err := rogue.MineAndCertify(8)
	if err != nil {
		t.Fatalf("rogue MineAndCertify: %v", err)
	}
	if err := client.ValidateChain(&blk.Header, cert); !errors.Is(err, core.ErrBadCertificate) {
		t.Fatalf("want ErrBadCertificate for rogue CI, got %v", err)
	}
}

// TestSPAndCIIndexReplicasAgree cross-checks that the SP's index root always
// matches what the CI's enclave certified, block after block — divergence
// would mean the certified root no longer covers the data the SP serves.
func TestSPAndCIIndexReplicasAgree(t *testing.T) {
	dep := newSmallDeployment(t, dcert.SmallBank, 4)
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewHistoricalIndex("hist", "ct/")
	}); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	client := dep.NewSuperlightClient()

	for i := 0; i < 5; i++ {
		blk, blkCert, idxCerts, err := dep.MineAndCertifyHierarchical(10, []string{"hist"})
		if err != nil {
			t.Fatalf("MineAndCertifyHierarchical: %v", err)
		}
		if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
			t.Fatalf("ValidateChain: %v", err)
		}
		ix, err := dep.SP().Index("hist")
		if err != nil {
			t.Fatalf("Index: %v", err)
		}
		spRoot, err := ix.Root()
		if err != nil {
			t.Fatalf("Root: %v", err)
		}
		// The certificate the CI issued must be exactly over the SP's root.
		if err := client.ValidateIndex("hist", &blk.Header, spRoot, idxCerts[0]); err != nil {
			t.Fatalf("block %d: certified root does not match SP root: %v", i, err)
		}
	}
}

// TestAggregateEndToEnd runs a verified aggregation through the facade.
func TestAggregateEndToEnd(t *testing.T) {
	dep := newSmallDeployment(t, dcert.SmallBank, 5)
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewHistoricalIndex("hist", "ct/")
	}); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	client := dep.NewSuperlightClient()
	var lastRoot dcert.Hash
	for i := 0; i < 6; i++ {
		blk, blkCert, idxCerts, err := dep.MineAndCertifyHierarchical(12, []string{"hist"})
		if err != nil {
			t.Fatalf("MineAndCertifyHierarchical: %v", err)
		}
		if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
			t.Fatalf("ValidateChain: %v", err)
		}
		ix, err := dep.SP().Index("hist")
		if err != nil {
			t.Fatalf("Index: %v", err)
		}
		if lastRoot, err = ix.Root(); err != nil {
			t.Fatalf("Root: %v", err)
		}
		if err := client.ValidateIndex("hist", &blk.Header, lastRoot, idxCerts[0]); err != nil {
			t.Fatalf("ValidateIndex: %v", err)
		}
	}
	root, _, err := client.IndexRoot("hist")
	if err != nil {
		t.Fatalf("IndexRoot: %v", err)
	}
	res, err := dep.SP().AggregateQuery("hist", dcert.AggCount, "ct/SB-0000/checking/cust-1", 0, 100)
	if err != nil {
		t.Fatalf("AggregateQuery: %v", err)
	}
	if err := dcert.VerifyAggregate(root, res); err != nil {
		t.Fatalf("VerifyAggregate: %v", err)
	}
}

// TestClientCatchesUpAfterOffline shows the superlight client's key UX win:
// after missing many blocks, one certificate validation brings it current —
// no backfill needed.
func TestClientCatchesUpAfterOffline(t *testing.T) {
	dep := newSmallDeployment(t, dcert.KVStore, 6)
	client := dep.NewSuperlightClient()

	// Client sees block 1...
	blk, cert, err := dep.MineAndCertify(5)
	if err != nil {
		t.Fatalf("MineAndCertify: %v", err)
	}
	if err := client.ValidateChain(&blk.Header, cert); err != nil {
		t.Fatalf("ValidateChain: %v", err)
	}
	before := client.StorageSize()

	// ...then goes offline for 15 blocks.
	var lastBlk *dcert.Block
	var lastCert *dcert.Certificate
	for i := 0; i < 15; i++ {
		lastBlk, lastCert, err = dep.MineAndCertify(5)
		if err != nil {
			t.Fatalf("MineAndCertify: %v", err)
		}
	}

	// One validation catches up; storage stays constant.
	if err := client.ValidateChain(&lastBlk.Header, lastCert); err != nil {
		t.Fatalf("catch-up ValidateChain: %v", err)
	}
	hdr, _ := client.Latest()
	if hdr.Height != 16 {
		t.Fatalf("client height = %d, want 16", hdr.Height)
	}
	if client.StorageSize() != before {
		t.Fatalf("storage changed during catch-up: %d → %d", before, client.StorageSize())
	}
}

// TestIssuerPrunedStoreKeepsCertifying verifies a CI can drop deep history
// (its recursion only ever needs the previous block and certificate).
func TestIssuerPrunedStoreKeepsCertifying(t *testing.T) {
	dep := newSmallDeployment(t, dcert.KVStore, 7)
	client := dep.NewSuperlightClient()
	for i := 0; i < 10; i++ {
		if _, _, err := dep.MineAndCertify(5); err != nil {
			t.Fatalf("MineAndCertify: %v", err)
		}
	}
	if dropped := dep.Issuer().Node().Store().Prune(2); dropped == 0 {
		t.Fatal("expected pruning to drop blocks")
	}
	// Certification continues across the pruning horizon.
	for i := 0; i < 3; i++ {
		blk, cert, err := dep.MineAndCertify(5)
		if err != nil {
			t.Fatalf("MineAndCertify after prune: %v", err)
		}
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			t.Fatalf("ValidateChain after prune: %v", err)
		}
	}
}
