package bench

import (
	"fmt"
	"time"

	"dcert"
)

// HeadlineResult holds the paper's headline constants (§1, §7.4):
// a constant ~2.97 KB client storage, a constant ~0.14 ms bootstrap, and
// certificate construction within 500 ms.
type HeadlineResult struct {
	// StorageBytes is the superlight client footprint (header + cert).
	StorageBytes int
	// BootstrapCold is validation time with attestation-report checking.
	BootstrapCold float64
	// BootstrapWarm is validation time with the report already attested
	// (signature check only — the steady-state path).
	BootstrapWarm float64
	// Construction is the end-to-end block certification time at the
	// default block size with the calibrated enclave cost model.
	Construction float64
	// CertBytes is the certificate size alone.
	CertBytes int
}

// RunHeadline measures the headline constants.
func RunHeadline(scale Scale) (*HeadlineResult, error) {
	p := ParamsFor(scale)
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:    dcert.KVStore,
		Contracts:   p.Contracts,
		Accounts:    p.Accounts,
		Difficulty:  4,
		EnclaveCost: dcert.DefaultEnclaveCostModel(),
		Seed:        9,
	})
	if err != nil {
		return nil, err
	}

	var lastBlk *dcert.Block
	var lastCert *dcert.Certificate
	var constructionSec float64
	for i := 0; i < p.CertBlocks; i++ {
		txs, err := dep.GenerateBlockTxs(p.DefaultBlockSize)
		if err != nil {
			return nil, err
		}
		blk, err := dep.Miner().Propose(txs)
		if err != nil {
			return nil, err
		}
		cert, bd, err := dep.Issuer().ProcessBlock(blk)
		if err != nil {
			return nil, err
		}
		constructionSec += bd.Total()
		lastBlk, lastCert = blk, cert
	}
	constructionSec /= float64(p.CertBlocks)

	// Cold bootstrap: fresh client, full attestation path.
	cold := dep.NewSuperlightClient()
	start := time.Now()
	if err := cold.ValidateChain(&lastBlk.Header, lastCert); err != nil {
		return nil, err
	}
	coldSec := time.Since(start).Seconds()

	// Warm bootstrap: the same enclave's next certificate (report cached).
	txs, err := dep.GenerateBlockTxs(p.DefaultBlockSize)
	if err != nil {
		return nil, err
	}
	blk, err := dep.Miner().Propose(txs)
	if err != nil {
		return nil, err
	}
	cert, _, err := dep.Issuer().ProcessBlock(blk)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if err := cold.ValidateChain(&blk.Header, cert); err != nil {
		return nil, err
	}
	warmSec := time.Since(start).Seconds()

	return &HeadlineResult{
		StorageBytes:  cold.StorageSize(),
		BootstrapCold: coldSec,
		BootstrapWarm: warmSec,
		Construction:  constructionSec,
		CertBytes:     cert.EncodedSize(),
	}, nil
}

// Table renders the result next to the paper's reported constants.
func (r *HeadlineResult) Table() *Table {
	return &Table{
		Title:   "Headline constants — paper vs measured",
		Note:    "paper: 2.97 KB storage, 0.14 ms validation, <500 ms construction",
		Columns: []string{"metric", "paper", "measured"},
		Rows: [][]string{
			{"superlight storage (KB)", "2.97", kb(r.StorageBytes)},
			{"certificate size (KB)", "—", kb(r.CertBytes)},
			{"chain validation, cold (ms)", "—", ms(r.BootstrapCold)},
			{"chain validation, warm (ms)", "0.14", ms(r.BootstrapWarm)},
			{"certificate construction (ms)", "<500", ms(r.Construction)},
			{"construction < block interval", "yes (15 s)", fmt.Sprintf("%v", r.Construction < 15)},
		},
	}
}
