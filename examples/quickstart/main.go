// Quickstart: the smallest complete DCert program.
//
// It assembles a simulated DCert network (miner, SGX-enabled certificate
// issuer, attestation authority), mines a few blocks, and shows a superlight
// client validating the whole chain from nothing but the latest header and
// its certificate — constant storage, constant time, exactly the property
// the paper's Fig. 7 measures.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"dcert"
)

func main() {
	logger := dcert.NewLogger(os.Stderr, dcert.LogInfo, dcert.LogF("node", "quickstart"))

	// 1. Stand up a DCert deployment: a KVStore chain with an enclave-backed
	//    certificate issuer. The zero-ish config is fine for a demo.
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.KVStore,
		Contracts: 10,
		Accounts:  16,
		KeySpace:  100,
	})
	if err != nil {
		logger.Fatal("deployment failed", dcert.LogF("err", err))
	}
	// Attach the instrumentation plane so the run can report what the
	// enclave and the certification path actually did.
	reg, _ := dep.EnableObservability(logger)
	fmt.Println("DCert quickstart")
	fmt.Printf("  enclave measurement: %s\n", dep.Issuer().Measurement())

	// 2. A superlight client pins two trust anchors: the attestation
	//    authority's public key and the expected enclave measurement.
	client := dep.NewSuperlightClient()

	// 3. Mine and certify blocks. Each block is recursively certified by the
	//    enclave: it verifies the previous certificate, replays the state
	//    transition against Merkle proofs, and signs the new header.
	const blocks = 8
	for i := 0; i < blocks; i++ {
		blk, cert, err := dep.MineAndCertify(25)
		if err != nil {
			logger.Fatal("mine+certify failed", dcert.LogF("err", err))
		}

		// 4. The client validates the ENTIRE chain with one certificate.
		start := time.Now()
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			logger.Fatal("validation failed", dcert.LogF("err", err))
		}
		fmt.Printf("  height %d validated in %v (client stores %d bytes)\n",
			blk.Header.Height, time.Since(start).Round(time.Microsecond), client.StorageSize())
	}

	// 5. The client's storage never grew: latest header + certificate only.
	hdr, cert := client.Latest()
	fmt.Printf("\nfinal state: height=%d, header %d B + certificate %d B = %d B total\n",
		hdr.Height, hdr.EncodedSize(), cert.EncodedSize(), client.StorageSize())
	fmt.Println("a traditional light client would store every header and re-verify each one.")

	// 6. One-line metrics summary from the instrumentation plane.
	certified := reg.Counter("dcert_issuer_blocks_certified_total", "", dcert.MetricLabel("ci", "ci0")).Value()
	ecalls := reg.Counter("dcert_issuer_ecalls_total", "", dcert.MetricLabel("ci", "ci0"), dcert.MetricLabel("kind", "block")).Value()
	p99 := reg.Histogram("dcert_issuer_certify_seconds", "", nil, dcert.MetricLabel("ci", "ci0")).
		Snapshot().QuantileDuration(0.99)
	fmt.Printf("metrics: blocks_certified=%d ecalls=%d certify_p99=%v\n",
		certified, ecalls, p99.Round(time.Microsecond))
}
