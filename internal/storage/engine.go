package storage

import (
	"fmt"
	"os"
	"sync"
	"time"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/core"
	"dcert/internal/obs"
	"dcert/internal/storage/vfs"
)

// tagState frames a state-WAL record (height, post-root, write set) in the
// engine's state log. tagBlock/tagCert are shared with the chain archive.
const tagState byte = 3

// Engine is the crash-safe durable backend for a DCert deployment. It
// persists three artifacts under one data directory:
//
//	<dir>/chain/NNNNNNNN.seg   append-only block+certificate segment log
//	<dir>/state/wal/*.seg      state write-set WAL since the last snapshot
//	<dir>/state/snap           atomic-rename snapshot of the full state image
//	<dir>/ckpt                 atomic-rename issuer checkpoint snapshot
//
// Durability ordering: a block frame is appended before its certificate
// frame, and the certificate frame before the state WAL record, all within
// append-only logs whose fsync covers every earlier byte. A crash therefore
// loses only a suffix of each log, and recovery always reconstructs a
// prefix of the certified chain — never a gap, never a torn frame served.
//
// Recovery truncates each log physically to what it keeps, so a restarted
// deployment can never append a height the log already holds under a
// different hash.
type Engine struct {
	mu sync.Mutex

	fs  vfs.FS
	dir string

	chainLog *Log
	stateWAL *Log

	snapshotEvery uint64

	// Materialized view of the persisted chain.
	blocks  []*chain.Block // height-indexed, blocks[0] = genesis
	certs   map[chash.Hash]*core.Certificate
	tipCert *core.IssuerCheckpoint

	// mirror is the engine's own key/value image of the statedb at
	// mirrorHeight, maintained from write sets (the statedb interface has no
	// iterator, so the engine keeps the image needed for snapshots itself).
	mirror       map[string][]byte
	mirrorHeight uint64
	mirrorRoot   chash.Hash
	snapHeight   uint64 // height of the last durable state snapshot

	rec *Recovery

	// Metrics (nil-safe when not instrumented).
	mBlocks    *obs.Counter
	mSnapshots *obs.Counter
	mSnapSecs  *obs.Histogram
}

// Options configures an Engine.
type Options struct {
	// FS is the file-system seam; nil means the real OS. Chaos plans pass a
	// vfs.Fault here.
	FS vfs.FS
	// FsyncInterval batches log fsyncs (group commit). Zero syncs every
	// append — full durability per record.
	FsyncInterval time.Duration
	// SegmentBytes rotates log segments at this size (default 64 MiB).
	SegmentBytes int64
	// SnapshotEvery writes a state snapshot + checkpoint every N certified
	// blocks and resets the WAL (default 4096).
	SnapshotEvery uint64
}

// Recovery describes what Open reconstructed from disk.
type Recovery struct {
	// Blocks is the recovered certified prefix, including genesis. Empty for
	// a fresh data directory.
	Blocks []*chain.Block
	// Certs maps recovered block hashes to certificates.
	Certs map[chash.Hash]*core.Certificate
	// Checkpoint is the issuer checkpoint at the recovered tip (nil when the
	// tip is genesis).
	Checkpoint *core.IssuerCheckpoint
	// State is the durable state image at StateHeight, or nil when the
	// snapshot+WAL could not cover the recovered chain (the caller replays
	// transactions from genesis instead).
	State       map[string][]byte
	StateHeight uint64
	StateRoot   chash.Hash
	// WALRecords counts state WAL records applied on top of the snapshot.
	WALRecords int
	// DroppedBlocks counts blocks discarded because the crash lost their
	// certificate (the un-certified tail).
	DroppedBlocks int
	// TruncatedBytes counts bytes cut from torn/corrupt log tails.
	TruncatedBytes int64
	// Torn reports whether any log needed tail repair.
	Torn bool
	// Elapsed is the wall-clock recovery time.
	Elapsed time.Duration
}

// TipHeight is the height of the recovered tip (0 for genesis or empty).
func (r *Recovery) TipHeight() uint64 {
	if len(r.Blocks) == 0 {
		return 0
	}
	return r.Blocks[len(r.Blocks)-1].Header.Height
}

// HasData reports whether a data directory holds an existing chain log, i.e.
// whether OpenEngine would recover rather than start fresh.
func HasData(fs vfs.FS, dir string) bool {
	if fs == nil {
		fs = vfs.OS{}
	}
	names, err := fs.ReadDir(vfs.Join(dir, "chain"))
	return err == nil && len(names) > 0
}

// OpenEngine opens (creating if needed) a data directory and recovers its
// contents. The returned engine is ready for Bootstrap and ApplyBlock.
func OpenEngine(dir string, opts Options) (*Engine, error) {
	start := time.Now()
	if opts.FS == nil {
		opts.FS = vfs.OS{}
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 4096
	}
	logOpts := LogOptions{SegmentBytes: opts.SegmentBytes, FsyncInterval: opts.FsyncInterval}

	e := &Engine{
		fs:            opts.FS,
		dir:           dir,
		snapshotEvery: opts.SnapshotEvery,
		certs:         make(map[chash.Hash]*core.Certificate),
		mirror:        make(map[string][]byte),
	}

	var err error
	e.chainLog, err = OpenLog(opts.FS, vfs.Join(dir, "chain"), logOpts)
	if err != nil {
		return nil, err
	}
	e.stateWAL, err = OpenLog(opts.FS, vfs.Join(dir, "state", "wal"), logOpts)
	if err != nil {
		e.chainLog.Close()
		return nil, err
	}

	if err := e.recover(); err != nil {
		e.chainLog.Close()
		e.stateWAL.Close()
		return nil, err
	}
	e.rec.Elapsed = time.Since(start)
	return e, nil
}

// chainRecord is one scanned chain-log record with its physical position.
type chainRecord struct {
	tag     byte
	height  uint64 // block records
	block   *chain.Block
	hash    chash.Hash // cert records: the certified block hash
	cert    *core.Certificate
	seg     int
	end     int64
	keep    bool
	decoded bool
}

// recover reconstructs the certified prefix from the chain log, the state
// image from snapshot+WAL, and the issuer checkpoint. It physically
// truncates both logs to exactly what it keeps.
func (e *Engine) recover() error {
	rec := &Recovery{Certs: e.certs}
	chainRec := e.chainLog.Recovery()
	walRec := e.stateWAL.Recovery()
	rec.Torn = chainRec.Torn || walRec.Torn
	rec.TruncatedBytes = chainRec.TruncatedBytes + walRec.TruncatedBytes
	e.rec = rec

	// Pass 1: structurally decode the chain log in append order, stopping at
	// the first anomaly (CRC-valid frames with garbage inside, out-of-order
	// heights, certs for unknown blocks). Everything from the anomaly on is
	// treated like a torn tail.
	var records []*chainRecord
	byHash := make(map[chash.Hash]uint64) // block hash → height
	nextHeight := uint64(0)
	anomaly := false
	err := e.chainLog.scanPos(func(tag byte, payload []byte, seg int, end int64) error {
		if anomaly {
			return nil
		}
		r := &chainRecord{tag: tag, seg: seg, end: end}
		switch tag {
		case tagBlock:
			blk, err := chain.UnmarshalBlock(payload)
			if err != nil || blk.Header.Height != nextHeight {
				anomaly = true
				return nil
			}
			r.block, r.height, r.decoded = blk, blk.Header.Height, true
			byHash[blk.Hash()] = blk.Header.Height
			nextHeight++
		case tagCert:
			d := chash.NewDecoder(payload)
			h, err := d.ReadHash()
			if err != nil {
				anomaly = true
				return nil
			}
			certRaw, err := d.ReadBytes()
			if err != nil || d.Finish() != nil {
				anomaly = true
				return nil
			}
			cert, err := core.UnmarshalCertificate(certRaw)
			if err != nil {
				anomaly = true
				return nil
			}
			height, ok := byHash[h]
			if !ok {
				anomaly = true
				return nil
			}
			r.hash, r.cert, r.height, r.decoded = h, cert, height, true
		default:
			anomaly = true
			return nil
		}
		records = append(records, r)
		return nil
	})
	if err != nil {
		return err
	}

	// Pass 2: find the certified prefix. The recursive certificate at height
	// h attests the entire chain below it, so the recovered tip is the
	// highest block that has a certificate on disk; blocks above it are the
	// un-certified tail the crash made unprovable, and are dropped.
	certifiedTip := uint64(0)
	for _, r := range records {
		if r.tag == tagCert && r.height > certifiedTip {
			certifiedTip = r.height
		}
	}
	lastKeep := -1
	for i, r := range records {
		if r.height <= certifiedTip {
			r.keep = true
			lastKeep = i
		}
	}
	if anomaly {
		rec.Torn = true
	}

	// Pass 3: make the kept set the log's physical content. If the kept
	// records form a contiguous prefix a cheap tail truncation suffices;
	// otherwise (a dropped block sits between kept records) the log is
	// rewritten from the decoded kept records.
	contiguous := true
	for i := 0; i <= lastKeep; i++ {
		if !records[i].keep {
			contiguous = false
			break
		}
	}
	switch {
	case lastKeep < 0 && len(records) > 0:
		// Nothing certifiable survived; start the log over.
		if err := e.chainLog.Reset(); err != nil {
			return err
		}
		rec.Torn = true
	case lastKeep >= 0 && (lastKeep < len(records)-1 || !contiguous):
		rec.Torn = true
		if contiguous {
			if err := e.chainLog.TruncateTail(records[lastKeep].seg, records[lastKeep].end); err != nil {
				return err
			}
		} else if err := e.rewriteChainLog(records[:lastKeep+1]); err != nil {
			return err
		}
	}

	// Materialize the kept view.
	for _, r := range records[:lastKeep+1] {
		if !r.keep {
			rec.DroppedBlocks++
			continue
		}
		switch r.tag {
		case tagBlock:
			e.blocks = append(e.blocks, r.block)
		case tagCert:
			e.certs[r.hash] = r.cert
		}
	}
	rec.DroppedBlocks += len(records) - 1 - lastKeep
	rec.Blocks = e.blocks

	// Checkpoint: prefer the checkpoint snapshot when it matches the
	// recovered tip, else derive from the tip certificate on the log.
	if len(e.blocks) > 0 {
		tip := e.blocks[len(e.blocks)-1]
		if cert, ok := e.certs[tip.Hash()]; ok {
			e.tipCert = &core.IssuerCheckpoint{
				Height:    tip.Header.Height,
				BlockHash: tip.Hash(),
				Cert:      cert,
			}
		}
		if raw, err := readSnapshot(e.fs, vfs.Join(e.dir, "ckpt")); err == nil {
			if ckpt, err := core.UnmarshalIssuerCheckpoint(raw); err == nil &&
				ckpt.Height == tip.Header.Height && ckpt.BlockHash == tip.Hash() {
				e.tipCert = ckpt
			}
		}
	}
	rec.Checkpoint = e.tipCert

	// State: snapshot first, then WAL records on top, capped at the
	// recovered tip. A snapshot ahead of the recovered chain (tail was
	// dropped after the snapshot was cut) is unusable.
	if err := e.recoverState(certifiedTip); err != nil {
		return err
	}
	return nil
}

// rewriteChainLog rebuilds the chain log from decoded kept records — the
// slow path for recoveries where dropped blocks interleave with kept
// certificates (e.g. a crash during issuer catch-up re-certification).
func (e *Engine) rewriteChainLog(records []*chainRecord) error {
	if err := e.chainLog.Reset(); err != nil {
		return err
	}
	for _, r := range records {
		if !r.keep {
			continue
		}
		var payload []byte
		switch r.tag {
		case tagBlock:
			payload = r.block.Marshal()
		case tagCert:
			certRaw := r.cert.Marshal()
			enc := chash.NewEncoder(8 + chash.Size + len(certRaw))
			enc.PutHash(r.hash)
			enc.PutBytes(certRaw)
			payload = enc.Bytes()
		}
		if err := e.chainLog.Append(r.tag, payload); err != nil {
			return err
		}
	}
	return e.chainLog.Sync()
}

// recoverState loads snapshot + WAL into the engine mirror, capped at tip
// height, and physically truncates the WAL past what was applied.
func (e *Engine) recoverState(tipHeight uint64) error {
	snapPath := vfs.Join(e.dir, "state", "snap")
	raw, err := readSnapshot(e.fs, snapPath)
	switch {
	case err == nil:
		height, root, kv, derr := decodeStateImage(raw)
		if derr != nil || height > tipHeight {
			// Corrupt image, or a snapshot ahead of the recovered chain.
			e.mirror = make(map[string][]byte)
		} else {
			e.mirror, e.mirrorHeight, e.mirrorRoot = kv, height, root
			e.snapHeight = height
		}
	case os.IsNotExist(err):
		// No snapshot yet: the WAL alone must carry the image from genesis.
	default:
		// Structurally damaged snapshot: ignore it and fall back to replay.
		e.mirror = make(map[string][]byte)
	}

	// Apply WAL records strictly in height order on top of the snapshot.
	type pos struct {
		seg int
		end int64
	}
	var lastApplied *pos
	err = e.stateWAL.scanPos(func(tag byte, payload []byte, seg int, end int64) error {
		if tag != tagState {
			return nil
		}
		height, root, writes, derr := decodeStateRecord(payload)
		if derr != nil {
			return nil
		}
		if height != e.mirrorHeight+1 || height > tipHeight {
			// Stale (pre-snapshot), gapped, or beyond the recovered chain.
			return nil
		}
		applyWrites(e.mirror, writes)
		e.mirrorHeight, e.mirrorRoot = height, root
		lastApplied = &pos{seg: seg, end: end}
		e.rec.WALRecords++
		return nil
	})
	if err != nil {
		return err
	}

	// Cross-check the mirror against the chain's own state commitment; a
	// mismatch means the image cannot be trusted and the caller must replay.
	valid := e.mirrorHeight > 0 &&
		e.mirrorHeight < uint64(len(e.blocks)) &&
		e.blocks[e.mirrorHeight].Header.StateRoot == e.mirrorRoot
	if len(e.blocks) == 0 {
		// Fresh directory: nothing to mirror yet.
		e.mirror = make(map[string][]byte)
		e.mirrorHeight, e.mirrorRoot = 0, chash.Hash{}
		e.snapHeight = 0
		if err := e.stateWAL.Reset(); err != nil {
			return err
		}
		return nil
	}
	if !valid {
		e.mirror = make(map[string][]byte)
		e.mirrorHeight, e.mirrorRoot = 0, chash.Hash{}
		e.snapHeight = 0
		if err := e.stateWAL.Reset(); err != nil {
			return err
		}
		if vfs.Exists(e.fs, snapPath) {
			if err := e.fs.Remove(snapPath); err != nil {
				return fmt.Errorf("storage: drop stale snapshot: %w", err)
			}
		}
		e.rec.State, e.rec.StateHeight = nil, 0
		return nil
	}

	// Truncate WAL records beyond the last applied one so a restarted
	// session cannot leave two write sets for one height on disk.
	if lastApplied != nil {
		if err := e.stateWAL.TruncateTail(lastApplied.seg, lastApplied.end); err != nil {
			return err
		}
	} else if e.stateWAL.Size() > 0 && e.rec.WALRecords == 0 && e.mirrorHeight == e.snapHeight {
		// WAL holds only stale (pre-snapshot) or future records; clear it.
		if err := e.stateWAL.Reset(); err != nil {
			return err
		}
	}

	e.rec.State = copyImage(e.mirror)
	e.rec.StateHeight = e.mirrorHeight
	e.rec.StateRoot = e.mirrorRoot
	return nil
}

// Bootstrap fixes the genesis block and its state image for a fresh
// engine, or verifies them against the recovered chain. Must be called once
// before ApplyBlock. genesisState is the full key/value image at height 0:
// the WAL only ever carries per-block write sets, so every snapshot chain
// must be rooted in a complete genesis image.
func (e *Engine) Bootstrap(genesis *chain.Block, genesisState map[string][]byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.blocks) == 0 {
		if genesis.Header.Height != 0 {
			return fmt.Errorf("storage: bootstrap block has height %d", genesis.Header.Height)
		}
		if err := e.chainLog.Append(tagBlock, genesis.Marshal()); err != nil {
			return err
		}
		if err := e.chainLog.Sync(); err != nil {
			return err
		}
		e.blocks = append(e.blocks, genesis)
		e.mirror = copyImage(genesisState)
		e.mirrorHeight, e.mirrorRoot = 0, genesis.Header.StateRoot
		return e.snapshotLocked()
	}
	if e.blocks[0].Hash() != genesis.Hash() {
		return fmt.Errorf("%w: data directory belongs to a different genesis", ErrCorrupt)
	}
	if e.rec.State == nil {
		// The snapshot+WAL image did not survive; re-root the mirror at
		// genesis so the transaction replay (ResumeNode) can re-journal
		// every block's write set on a complete base image.
		e.mirror = copyImage(genesisState)
		e.mirrorHeight, e.mirrorRoot = 0, genesis.Header.StateRoot
		e.snapHeight = 0
		if err := e.stateWAL.Reset(); err != nil {
			return err
		}
		return e.snapshotLocked()
	}
	return nil
}

// ApplyBlock persists a newly certified block: the block frame, its
// certificate frame (when present), and the state write set, in that order.
// Heights at or below the persisted tip are ignored (idempotent under
// multi-issuer fan-out); heights beyond tip+1 are an error.
func (e *Engine) ApplyBlock(blk *chain.Block, cert *core.Certificate, writes map[string][]byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.blocks) == 0 {
		return fmt.Errorf("storage: ApplyBlock before Bootstrap")
	}
	tip := e.blocks[len(e.blocks)-1]
	h := blk.Header.Height
	if h <= tip.Header.Height {
		return nil
	}
	if h != tip.Header.Height+1 || blk.Header.PrevHash != tip.Hash() {
		return fmt.Errorf("storage: non-contiguous block %d on tip %d", h, tip.Header.Height)
	}

	if err := e.chainLog.Append(tagBlock, blk.Marshal()); err != nil {
		return err
	}
	if cert != nil {
		if err := e.appendCertLocked(blk.Hash(), cert); err != nil {
			return err
		}
	}
	if err := e.stateWAL.Append(tagState, encodeStateRecord(h, blk.Header.StateRoot, writes)); err != nil {
		return err
	}

	e.blocks = append(e.blocks, blk)
	applyWrites(e.mirror, writes)
	e.mirrorHeight, e.mirrorRoot = h, blk.Header.StateRoot
	if cert != nil {
		e.certs[blk.Hash()] = cert
		e.tipCert = &core.IssuerCheckpoint{Height: h, BlockHash: blk.Hash(), Cert: cert}
	}
	e.mBlocks.Inc()

	if cert != nil && h%e.snapshotEvery == 0 {
		return e.snapshotLocked()
	}
	return nil
}

// ApplyCert persists a certificate for an already-persisted block — the
// issuer catch-up path, where re-certification arrives after the blocks.
func (e *Engine) ApplyCert(blockHash chash.Hash, cert *core.Certificate) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.certs[blockHash]; ok {
		return nil
	}
	found := false
	var height uint64
	for _, blk := range e.blocks {
		if blk.Hash() == blockHash {
			found, height = true, blk.Header.Height
			break
		}
	}
	if !found {
		return fmt.Errorf("storage: certificate for unknown block %x", blockHash[:8])
	}
	if err := e.appendCertLocked(blockHash, cert); err != nil {
		return err
	}
	e.certs[blockHash] = cert
	tip := e.blocks[len(e.blocks)-1]
	if height == tip.Header.Height {
		e.tipCert = &core.IssuerCheckpoint{Height: height, BlockHash: blockHash, Cert: cert}
	}
	return nil
}

func (e *Engine) appendCertLocked(blockHash chash.Hash, cert *core.Certificate) error {
	certRaw := cert.Marshal()
	enc := chash.NewEncoder(8 + chash.Size + len(certRaw))
	enc.PutHash(blockHash)
	enc.PutBytes(certRaw)
	return e.chainLog.Append(tagCert, enc.Bytes())
}

// RestoreState advances the engine's state mirror during a transaction
// replay resume (used when the snapshot+WAL image did not survive). It
// re-journals each replayed write set so durability is rebuilt as the
// replay proceeds.
func (e *Engine) RestoreState(height uint64, root chash.Hash, writes map[string][]byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if height != e.mirrorHeight+1 {
		return fmt.Errorf("storage: restore height %d on mirror %d", height, e.mirrorHeight)
	}
	if err := e.stateWAL.Append(tagState, encodeStateRecord(height, root, writes)); err != nil {
		return err
	}
	applyWrites(e.mirror, writes)
	e.mirrorHeight, e.mirrorRoot = height, root
	return nil
}

// resetState re-roots the engine's state mirror and journal at genesis,
// discarding whatever image recovery produced. Used before a full replay
// re-journals every write set.
func (e *Engine) resetState(genesisState map[string][]byte, genesisRoot chash.Hash) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mirror = copyImage(genesisState)
	e.mirrorHeight, e.mirrorRoot = 0, genesisRoot
	e.snapHeight = 0
	if err := e.stateWAL.Reset(); err != nil {
		return err
	}
	return e.snapshotLocked()
}

// snapshotLocked writes the state image + issuer checkpoint durably and
// resets the WAL. The chain log is synced first so the snapshot never
// claims a height the chain could lose.
func (e *Engine) snapshotLocked() error {
	start := time.Now()
	if err := e.chainLog.Sync(); err != nil {
		return err
	}
	if err := e.stateWAL.Sync(); err != nil {
		return err
	}
	img := encodeStateImage(e.mirrorHeight, e.mirrorRoot, e.mirror)
	if err := writeSnapshot(e.fs, vfs.Join(e.dir, "state", "snap"), img); err != nil {
		return err
	}
	e.snapHeight = e.mirrorHeight
	if err := e.stateWAL.Reset(); err != nil {
		return err
	}
	if e.tipCert != nil {
		if err := writeSnapshot(e.fs, vfs.Join(e.dir, "ckpt"), e.tipCert.Marshal()); err != nil {
			return err
		}
	}
	e.mSnapshots.Inc()
	e.mSnapSecs.Observe(time.Since(start).Seconds())
	return nil
}

// Snapshot forces a state snapshot + checkpoint write now.
func (e *Engine) Snapshot() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

// SaveCheckpoint durably replaces the issuer checkpoint snapshot (used by
// CertPlane.Kill so a deliberate shutdown captures the freshest cert).
func (e *Engine) SaveCheckpoint(ckpt *core.IssuerCheckpoint) error {
	if ckpt == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.chainLog.Sync(); err != nil {
		return err
	}
	return writeSnapshot(e.fs, vfs.Join(e.dir, "ckpt"), ckpt.Marshal())
}

// Recovery returns what Open reconstructed.
func (e *Engine) Recovery() *Recovery { return e.rec }

// TipHeight is the height of the persisted tip.
func (e *Engine) TipHeight() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.blocks) == 0 {
		return 0
	}
	return e.blocks[len(e.blocks)-1].Header.Height
}

// BlockAt returns the persisted block at a height.
func (e *Engine) BlockAt(height uint64) (*chain.Block, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if height >= uint64(len(e.blocks)) {
		return nil, false
	}
	return e.blocks[height], true
}

// CertFor returns the persisted certificate for a block hash.
func (e *Engine) CertFor(blockHash chash.Hash) (*core.Certificate, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.certs[blockHash]
	return c, ok
}

// Checkpoint returns the issuer checkpoint at the persisted certified tip
// (nil when only genesis is persisted).
func (e *Engine) Checkpoint() *core.IssuerCheckpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tipCert
}

// Sync forces both logs to stable storage (a durability barrier).
func (e *Engine) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.chainLog.Sync(); err != nil {
		return err
	}
	return e.stateWAL.Sync()
}

// Close syncs, snapshots (so the next open is instant), and closes the
// engine. Safe to call once.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var firstErr error
	if len(e.blocks) > 0 && e.mirrorHeight > e.snapHeight {
		if err := e.snapshotLocked(); err != nil {
			firstErr = err
		}
	}
	if err := e.chainLog.Close(); firstErr == nil && err != nil {
		firstErr = err
	}
	if err := e.stateWAL.Close(); firstErr == nil && err != nil {
		firstErr = err
	}
	return firstErr
}

// Instrument registers the engine's metrics and its logs' counters.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.mBlocks = reg.Counter("dcert_storage_blocks_total",
		"Blocks persisted to the durable chain log.")
	e.mSnapshots = reg.Counter("dcert_storage_snapshots_total",
		"State snapshots written (WAL resets).")
	e.mSnapSecs = reg.Histogram("dcert_storage_snapshot_seconds",
		"Wall time per state snapshot.", obs.DefBuckets)
	e.chainLog.instrument(reg, "chain")
	e.stateWAL.instrument(reg, "wal")
	reg.Gauge("dcert_storage_recovered_height",
		"Chain height recovered from disk at open.").Set(int64(e.rec.TipHeight()))
	reg.Gauge("dcert_storage_recovery_millis",
		"Wall time of the last disk recovery in milliseconds.").Set(e.rec.Elapsed.Milliseconds())
	reg.Gauge("dcert_storage_recovery_truncated_bytes",
		"Bytes truncated from torn/corrupt log tails at last recovery.").Set(e.rec.TruncatedBytes)
}

// --- state record / image codecs ---

// encodeStateRecord frames one WAL entry: height, post-state root, writes.
func encodeStateRecord(height uint64, root chash.Hash, writes map[string][]byte) []byte {
	size := 16 + chash.Size
	for k, v := range writes {
		size += 16 + len(k) + len(v)
	}
	enc := chash.NewEncoder(size)
	enc.PutUint64(height)
	enc.PutHash(root)
	enc.PutUint64(uint64(len(writes)))
	for k, v := range writes {
		enc.PutString(k)
		enc.PutBytes(v)
	}
	return enc.Bytes()
}

func decodeStateRecord(payload []byte) (uint64, chash.Hash, map[string][]byte, error) {
	d := chash.NewDecoder(payload)
	height, err := d.Uint64()
	if err != nil {
		return 0, chash.Hash{}, nil, err
	}
	root, err := d.ReadHash()
	if err != nil {
		return 0, chash.Hash{}, nil, err
	}
	n, err := d.Uint64()
	if err != nil {
		return 0, chash.Hash{}, nil, err
	}
	if n > maxRecord {
		return 0, chash.Hash{}, nil, fmt.Errorf("%w: %d state writes", ErrCorrupt, n)
	}
	writes := make(map[string][]byte, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.ReadString()
		if err != nil {
			return 0, chash.Hash{}, nil, err
		}
		v, err := d.ReadBytes()
		if err != nil {
			return 0, chash.Hash{}, nil, err
		}
		writes[k] = v
	}
	if err := d.Finish(); err != nil {
		return 0, chash.Hash{}, nil, err
	}
	return height, root, writes, nil
}

// encodeStateImage frames a full state snapshot payload.
func encodeStateImage(height uint64, root chash.Hash, kv map[string][]byte) []byte {
	size := 16 + chash.Size
	for k, v := range kv {
		size += 16 + len(k) + len(v)
	}
	enc := chash.NewEncoder(size)
	enc.PutUint64(height)
	enc.PutHash(root)
	enc.PutUint64(uint64(len(kv)))
	for k, v := range kv {
		enc.PutString(k)
		enc.PutBytes(v)
	}
	return enc.Bytes()
}

func decodeStateImage(payload []byte) (uint64, chash.Hash, map[string][]byte, error) {
	return decodeStateRecord(payload)
}

// applyWrites merges a write set into a state image (nil value = delete,
// matching statedb.Commit semantics).
func applyWrites(img map[string][]byte, writes map[string][]byte) {
	for k, v := range writes {
		if v == nil {
			delete(img, k)
			continue
		}
		img[k] = append([]byte(nil), v...)
	}
}

// copyImage deep-copies a state image.
func copyImage(img map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(img))
	for k, v := range img {
		out[k] = append([]byte(nil), v...)
	}
	return out
}
