package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
)

// ErrInjected marks a fault injected by a Fault FS, so tests can tell an
// injected disk failure from a real one.
var ErrInjected = errors.New("vfs: injected disk fault")

// FaultPlan is a seeded, deterministic disk-fault schedule. Write and sync
// operations are counted globally (1-based, across all files on the FS);
// each trigger fires once when its counter is reached. The zero value
// injects nothing.
//
// The plan models the failure vocabulary of commodity disks:
//
//   - FailWriteOp: the Nth write returns an I/O error with nothing written
//     (dead device, full disk).
//   - ShortWriteOp: the Nth write persists only a prefix of the buffer and
//     then errors — a torn write at the syscall boundary.
//   - FailSyncOp: the Nth fsync returns an error without flushing; the
//     caller knows durability was not achieved.
//   - OmitSyncOp: the Nth fsync silently does nothing — a lying disk; the
//     caller believes the data is durable, a later power cut proves
//     otherwise.
//
// A PowerCut then discards every byte not covered by a successful sync,
// optionally leaving a seeded fraction of the un-synced tail behind (the
// sectors that happened to hit the platter) with a flipped byte in it (a
// torn, corrupted frame).
type FaultPlan struct {
	// Seed drives the torn-tail dice.
	Seed int64
	// FailWriteOp fails the Nth write outright (0 = never).
	FailWriteOp uint64
	// ShortWriteOp tears the Nth write in half (0 = never).
	ShortWriteOp uint64
	// FailSyncOp fails the Nth sync loudly (0 = never).
	FailSyncOp uint64
	// OmitSyncOp turns the Nth sync into a silent no-op (0 = never).
	OmitSyncOp uint64
	// TornTail, in [0,1], is the fraction of each file's un-synced bytes a
	// PowerCut leaves behind (sector-granularity survival). 0 drops all
	// un-synced bytes.
	TornTail float64
	// FlipInTorn corrupts one random byte of each surviving torn tail.
	FlipInTorn bool
}

// FaultStats counts what a Fault FS has seen and injected.
type FaultStats struct {
	// Writes and Syncs are the global operation counts.
	Writes uint64
	Syncs  uint64
	// Injected counts faults actually fired (including omitted syncs).
	Injected uint64
	// CutBytes is the total number of bytes discarded by power cuts.
	CutBytes int64
}

// Fault wraps an FS with the plan's fault schedule and power-cut support.
// It tracks, per file, how many bytes a successful sync has made durable;
// everything beyond that is "page cache" and dies with the power.
type Fault struct {
	base FS
	plan FaultPlan

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
	// files maps path → durability state, surviving close/reopen.
	files map[string]*fileDurability
}

// fileDurability is the per-path page-cache model.
type fileDurability struct {
	// synced is the file size covered by the last effective sync.
	synced int64
	// pending holds the written-but-unsynced byte suffix.
	pending []byte
}

// NewFault wraps base with a seeded fault plan.
func NewFault(base FS, plan FaultPlan) *Fault {
	return &Fault{
		base:  base,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		files: make(map[string]*fileDurability),
	}
}

// Stats snapshots the fault counters.
func (fs *Fault) Stats() FaultStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// OpenFile implements FS. Files opened for writing are tracked for
// power-cut accounting; read-only opens pass through untracked.
func (fs *Fault) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := fs.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&(os.O_WRONLY|os.O_RDWR) == 0 {
		return f, nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, ok := fs.files[name]
	if !ok || flag&os.O_TRUNC != 0 {
		st = &fileDurability{}
		fs.files[name] = st
	}
	if !ok {
		// First sighting of a pre-existing file (e.g. reopened after a
		// recovery pass on a fresh Fault FS): whatever is on disk now is
		// considered durable.
		if size, serr := f.Size(); serr == nil {
			st.synced = size
		}
	}
	return &faultFile{fs: fs, f: f, st: st}, nil
}

// Rename implements FS. Metadata operations are modelled as durable (the
// engine's snapshot writer syncs file contents before renaming; directory
// entry loss is out of scope for this fault model).
func (fs *Fault) Rename(oldpath, newpath string) error {
	if err := fs.base.Rename(oldpath, newpath); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if st, ok := fs.files[oldpath]; ok {
		delete(fs.files, oldpath)
		fs.files[newpath] = st
	}
	return nil
}

// Remove implements FS.
func (fs *Fault) Remove(name string) error {
	if err := fs.base.Remove(name); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
	return nil
}

// MkdirAll implements FS.
func (fs *Fault) MkdirAll(dir string, perm os.FileMode) error {
	return fs.base.MkdirAll(dir, perm)
}

// ReadDir implements FS.
func (fs *Fault) ReadDir(dir string) ([]string, error) {
	return fs.base.ReadDir(dir)
}

// Stat implements FS.
func (fs *Fault) Stat(name string) (os.FileInfo, error) {
	return fs.base.Stat(name)
}

// PowerCut simulates pulling the plug: for every tracked file, bytes not
// covered by an effective sync are discarded, except for a seeded TornTail
// fraction that survives (optionally with one byte flipped). The FS remains
// usable afterwards — reopening a file sees exactly what "survived on
// disk", which is what a recovery pass must cope with.
func (fs *Fault) PowerCut() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for path, st := range fs.files {
		if len(st.pending) == 0 {
			continue
		}
		keep := int(float64(len(st.pending)) * fs.plan.TornTail)
		if keep > len(st.pending) {
			keep = len(st.pending)
		}
		torn := append([]byte(nil), st.pending[:keep]...)
		if fs.plan.FlipInTorn && len(torn) > 0 {
			torn[fs.rng.Intn(len(torn))] ^= 0xA5
		}
		// O_APPEND: the torn tail must land after the synced prefix, not at
		// the fresh handle's offset 0.
		f, err := fs.base.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("vfs: power cut %s: %w", path, err)
		}
		err = f.Truncate(st.synced)
		if err == nil && len(torn) > 0 {
			_, err = f.Write(torn)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("vfs: power cut %s: %w", path, err)
		}
		fs.stats.CutBytes += int64(len(st.pending) - keep)
		st.synced += int64(len(torn))
		st.pending = nil
	}
	return nil
}

// faultFile wraps a base file with the plan's schedule.
type faultFile struct {
	fs *Fault
	f  File
	st *fileDurability
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.fs.stats.Writes++
	op := f.fs.stats.Writes
	plan := f.fs.plan
	switch {
	case plan.FailWriteOp != 0 && op == plan.FailWriteOp:
		f.fs.stats.Injected++
		f.fs.mu.Unlock()
		return 0, fmt.Errorf("%w: write op %d failed", ErrInjected, op)
	case plan.ShortWriteOp != 0 && op == plan.ShortWriteOp:
		f.fs.stats.Injected++
		f.fs.mu.Unlock()
		n, err := f.f.Write(p[:len(p)/2])
		f.fs.mu.Lock()
		f.st.pending = append(f.st.pending, p[:n]...)
		f.fs.mu.Unlock()
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: write op %d torn after %d/%d bytes", ErrInjected, op, n, len(p))
	}
	f.fs.mu.Unlock()
	n, err := f.f.Write(p)
	f.fs.mu.Lock()
	f.st.pending = append(f.st.pending, p[:n]...)
	f.fs.mu.Unlock()
	return n, err
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.stats.Syncs++
	op := f.fs.stats.Syncs
	plan := f.fs.plan
	switch {
	case plan.FailSyncOp != 0 && op == plan.FailSyncOp:
		f.fs.stats.Injected++
		f.fs.mu.Unlock()
		return fmt.Errorf("%w: sync op %d failed", ErrInjected, op)
	case plan.OmitSyncOp != 0 && op == plan.OmitSyncOp:
		// The lying disk: report success, persist nothing.
		f.fs.stats.Injected++
		f.fs.mu.Unlock()
		return nil
	}
	f.fs.mu.Unlock()
	if err := f.f.Sync(); err != nil {
		return err
	}
	size, err := f.f.Size()
	if err != nil {
		return err
	}
	f.fs.mu.Lock()
	// Everything the file holds now has reached stable storage.
	f.st.synced = size
	f.st.pending = nil
	f.fs.mu.Unlock()
	return nil
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *faultFile) Close() error                            { return f.f.Close() }
func (f *faultFile) Name() string                            { return f.f.Name() }
func (f *faultFile) Size() (int64, error)                    { return f.f.Size() }

func (f *faultFile) Truncate(size int64) error {
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.fs.mu.Lock()
	// A truncate during recovery discards the torn tail; the remaining
	// prefix is whatever the file holds now, and the pending model resets
	// (recovery syncs after repair).
	if size < f.st.synced {
		f.st.synced = size
	}
	f.st.pending = nil
	f.fs.mu.Unlock()
	return nil
}
