package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A minimal leveled structured logger in logfmt style, replacing ad-hoc
// log.Printf call sites. Every record carries the identity tags the logger
// was built With (node name, CI slot), so interleaved multi-issuer output
// stays attributable. A nil *Logger discards everything.

// Level orders log severities.
type Level int32

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level tag.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// Field is one structured key/value pair.
type Field struct {
	Key   string
	Value any
}

// F constructs a Field.
func F(key string, value any) Field {
	return Field{Key: key, Value: value}
}

// ErrField tags an error under the conventional "err" key.
func ErrField(err error) Field {
	return Field{Key: "err", Value: err}
}

// loggerCore is shared by a logger and everything derived from it With
// extra tags: one writer lock, one level threshold.
type loggerCore struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
	now func() time.Time // test hook; nil = time.Now
}

// Logger emits leveled logfmt records.
//
// Logger is safe for concurrent use; a nil *Logger discards all records.
type Logger struct {
	core *loggerCore
	tags []Field
}

// NewLogger creates a logger writing records at or above min to w.
func NewLogger(w io.Writer, min Level, tags ...Field) *Logger {
	core := &loggerCore{w: w}
	core.min.Store(int32(min))
	return &Logger{core: core, tags: tags}
}

// With derives a logger that stamps the extra identity tags on every
// record. Level and writer stay shared with the parent.
func (l *Logger) With(tags ...Field) *Logger {
	if l == nil {
		return nil
	}
	all := make([]Field, 0, len(l.tags)+len(tags))
	all = append(all, l.tags...)
	all = append(all, tags...)
	return &Logger{core: l.core, tags: all}
}

// SetLevel moves the shared threshold (affects With-derived loggers too).
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.core.min.Store(int32(min))
}

// Enabled reports whether records at the level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.core.min.Load()
}

// appendValue renders one value in logfmt style (bare if clean, quoted
// otherwise).
func appendValue(b *strings.Builder, v any) {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case error:
		s = t.Error()
	case fmt.Stringer:
		s = t.String()
	default:
		s = fmt.Sprint(v)
	}
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		b.WriteString(strconv.Quote(s))
		return
	}
	b.WriteString(s)
}

func (l *Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	now := time.Now
	if l.core.now != nil {
		now = l.core.now
	}
	var b strings.Builder
	b.WriteString(now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	b.WriteString(level.String())
	b.WriteByte(' ')
	appendValue(&b, msg)
	for _, f := range l.tags {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		appendValue(&b, f.Value)
	}
	for _, f := range fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		appendValue(&b, f.Value)
	}
	b.WriteByte('\n')
	l.core.mu.Lock()
	io.WriteString(l.core.w, b.String())
	l.core.mu.Unlock()
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

// Fatal logs at LevelError and exits the process with status 1. It exists
// for example programs and commands; library code must not call it. A nil
// logger still exits (the caller asked to die), writing to stderr.
func (l *Logger) Fatal(msg string, fields ...Field) {
	if l == nil {
		l = NewLogger(os.Stderr, LevelError)
	}
	// Fatal records always emit, whatever the threshold.
	if !l.Enabled(LevelError) {
		l.SetLevel(LevelError)
	}
	l.log(LevelError, msg, fields)
	osExit(1)
}

// osExit is swappable so Fatal is testable.
var osExit = os.Exit
