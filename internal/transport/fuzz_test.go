package transport

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dcert/internal/chash"
)

// Fuzz targets for the wire decoders: every byte sequence a hostile or
// corrupted peer could send must either parse into a valid structure or
// fail with an error — never panic, never over-allocate past MaxFrameSize.

// FuzzFrameDecode drives the pure frame decoder with arbitrary bytes:
// truncated headers, hostile length prefixes, corrupt CRCs, and valid
// frames alike.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendFrame(nil, []byte{kindHello, 1, 2, 3}))
	f.Add(AppendFrame(nil, bytes.Repeat([]byte{7}, 100)))
	// Oversized length prefix with no body behind it.
	huge := binary.BigEndian.AppendUint32(nil, MaxFrameSize+1)
	f.Add(append(huge, 0, 0, 0, 0))
	// Valid header, flipped CRC.
	corrupt := AppendFrame(nil, []byte{kindPublish, 9, 9})
	corrupt[4] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		body, n, err := DecodeFrame(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with nonzero consumed count %d", n)
			}
			return
		}
		if len(body) == 0 {
			t.Fatal("decoded an empty body without error")
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A decoded frame must re-encode to exactly the bytes consumed.
		if !bytes.Equal(AppendFrame(nil, body), data[:n]) {
			t.Fatal("re-encoding a decoded frame changed its bytes")
		}
	})
}

// FuzzHandshake drives the hello decoder — the first parser an unauth'd
// peer reaches — with arbitrary frame bodies, plus bad magic and version
// skew.
func FuzzHandshake(f *testing.F) {
	f.Add((&helloMsg{version: ProtocolVersion, name: "client"}).encode())
	f.Add((&helloMsg{version: 9999, name: "future"}).encode())
	f.Add([]byte{kindHello})
	f.Add([]byte{kindHello, 0xDE, 0xAD, 0xBE, 0xEF})
	f.Add((&welcomeMsg{version: ProtocolVersion}).encode())

	f.Fuzz(func(t *testing.T, body []byte) {
		kind, d, err := splitKind(body)
		if err != nil {
			return
		}
		if kind != kindHello {
			return
		}
		m, err := decodeHello(d)
		if err != nil {
			return
		}
		// A hello that parses must re-encode to the identical body.
		if !bytes.Equal(m.encode(), body) {
			t.Fatalf("hello round-trip mismatch: %x != %x", m.encode(), body)
		}
	})
}

// FuzzWireMessages drives every kind-specific decoder with arbitrary
// bodies; whatever parses must round-trip byte-identically.
func FuzzWireMessages(f *testing.F) {
	f.Add((&subscribeMsg{id: 1, topic: "certs", depth: 16}).encode())
	f.Add((&subscribedMsg{id: 1}).encode())
	f.Add((&unsubscribeMsg{id: 1}).encode())
	f.Add((&publishMsg{topic: "certs", from: "ci", payload: []byte{payloadBytes, 1}}).encode())
	f.Add((&messageMsg{subID: 3, topic: "blocks", from: "miner", payload: []byte{payloadBytes}}).encode())
	f.Add((&requestMsg{id: 7, method: "dcert/query", body: []byte("q")}).encode())
	f.Add((&responseMsg{id: 7, errMsg: "", body: []byte("r")}).encode())

	f.Fuzz(func(t *testing.T, body []byte) {
		kind, d, err := splitKind(body)
		if err != nil {
			return
		}
		var reencoded []byte
		switch kind {
		case kindSubscribe:
			m, err := decodeSubscribe(d)
			if err != nil {
				return
			}
			reencoded = m.encode()
		case kindSubscribed:
			m, err := decodeSubscribed(d)
			if err != nil {
				return
			}
			reencoded = m.encode()
		case kindUnsubscribe:
			m, err := decodeUnsubscribe(d)
			if err != nil {
				return
			}
			reencoded = m.encode()
		case kindPublish:
			m, err := decodePublish(d)
			if err != nil {
				return
			}
			reencoded = m.encode()
		case kindMessage:
			m, err := decodeMessage(d)
			if err != nil {
				return
			}
			reencoded = m.encode()
		case kindRequest:
			m, err := decodeRequest(d)
			if err != nil {
				return
			}
			reencoded = m.encode()
		case kindResponse:
			m, err := decodeResponse(d)
			if err != nil {
				return
			}
			reencoded = m.encode()
		default:
			return
		}
		if !bytes.Equal(reencoded, body) {
			t.Fatalf("kind %d round-trip mismatch", kind)
		}
	})
}

// FuzzPayload drives the typed payload codec: arbitrary tagged bytes must
// decode or error, and whatever decodes must re-encode to bytes that decode
// again to the same value.
func FuzzPayload(f *testing.F) {
	f.Add([]byte{payloadBytes, 1, 2, 3})
	f.Add([]byte{payloadBlock})
	f.Add([]byte{payloadCertificate, 0xFF})
	f.Add([]byte{payloadCertBundle, 0, 0, 0, 0})
	func() {
		e := chash.NewEncoder(32)
		e.PutByte(payloadCertRequest)
		e.PutString("client-1")
		e.PutUint64(12)
		f.Add(e.Bytes())
	}()

	f.Fuzz(func(t *testing.T, raw []byte) {
		v, err := decodePayload(raw)
		if err != nil {
			return
		}
		encoded, err := encodePayload(v)
		if err != nil {
			t.Fatalf("decoded payload failed to re-encode: %v", err)
		}
		if _, err := decodePayload(encoded); err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
	})
}
