package core

import (
	"fmt"
	"sync"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/enclave"
	"dcert/internal/statedb"
	"dcert/internal/vm"
)

// IndexUpdater is the stateless, deterministic index-update logic baked into
// the trusted program for one authenticated index. Implementations (package
// query) must derive the index updates from the block itself (plus its
// verified state write set) — never from untrusted claims — and replay them
// over a witness, exactly like state replay.
type IndexUpdater interface {
	// Name identifies the index instance.
	Name() string
	// Replay applies the index updates implied by blk (whose state write
	// set is writes) on top of prevRoot, resolving index nodes from the
	// witness. It returns the new index root. Missing or tampered witness
	// data must fail, not fabricate.
	Replay(prevRoot chash.Hash, witness []byte, blk *chain.Block, writes map[string][]byte) (chash.Hash, error)
}

// GenesisIndexRoot is H_genesis^idx: every authenticated index starts empty.
var GenesisIndexRoot = chash.Zero

// ProgramID builds the canonical identity of the DCert trusted program. The
// enclave measurement is the digest of these bytes, so two CIs running the
// same program over the same chain parameters are mutually verifiable.
func ProgramID(genesis chash.Hash, authorityPK *chash.PublicKey, params consensus.Params) []byte {
	e := chash.NewEncoder(256)
	e.PutString("dcert-trusted-program-v1")
	e.PutHash(genesis)
	e.PutBytes(authorityPK.Marshal())
	e.PutUint32(params.Difficulty)
	return e.Bytes()
}

// TrustedProgram is the in-enclave certificate-construction program
// (Alg. 2). Its fields are fixed at initialization and are part of the
// program identity; the write-set cache is enclave-resident scratch state
// used by the hierarchical scheme.
type TrustedProgram struct {
	genesis     chash.Hash
	authorityPK *chash.PublicKey
	params      consensus.Params
	reg         *vm.Registry
	updaters    map[string]IndexUpdater

	// mu guards the enclave-resident write-set cache and the TCS count.
	mu sync.Mutex
	// writeCache keeps the verified state write set of recently certified
	// blocks so hierarchical index certification (Alg. 5) can derive index
	// write data without re-executing the block. It lives entirely inside
	// the enclave, so its contents are trusted. cacheOrder tracks insertion
	// order for FIFO eviction — eviction must be deterministic so a
	// pipelined and a sequential issuer keep identical cache contents.
	writeCache map[chash.Hash]map[string][]byte
	cacheOrder []chash.Hash
	// parallelism is the number of enclave threads (TCS entries) available
	// to blk_verify_t for transaction-signature verification. 1 = the
	// paper's single-threaded enclave.
	parallelism int
}

// NewTrustedProgram builds the trusted program for a chain.
func NewTrustedProgram(genesis chash.Hash, authorityPK *chash.PublicKey, params consensus.Params, reg *vm.Registry) *TrustedProgram {
	return &TrustedProgram{
		genesis:     genesis,
		authorityPK: authorityPK,
		params:      params,
		reg:         reg,
		updaters:    make(map[string]IndexUpdater),
		writeCache:  make(map[chash.Hash]map[string][]byte),
	}
}

// ID returns the program identity bytes (measured by the enclave).
func (p *TrustedProgram) ID() []byte {
	return ProgramID(p.genesis, p.authorityPK, p.params)
}

// SetParallelism declares how many enclave threads (TCS entries) the trusted
// program may use for transaction-signature verification inside
// blk_verify_t. SGX enclaves are multi-threadable by provisioning multiple
// TCS pages; signature checks are data-independent, so they parallelize
// without changing any verified output. Values below 1 are treated as 1.
// The thread count is scratch configuration, not program identity: it does
// not alter the measurement, exactly as a TCS count does not alter
// MRENCLAVE's code pages.
func (p *TrustedProgram) SetParallelism(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 1 {
		n = 1
	}
	p.parallelism = n
}

// Parallelism reports the configured enclave thread count.
func (p *TrustedProgram) Parallelism() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.parallelism < 1 {
		return 1
	}
	return p.parallelism
}

// RegisterUpdater adds index-update logic to the program. In a real
// deployment this would be part of the measured enclave binary; registering
// a new index type corresponds to deploying an extended program.
func (p *TrustedProgram) RegisterUpdater(u IndexUpdater) error {
	if u == nil {
		return fmt.Errorf("core: nil index updater")
	}
	if _, ok := p.updaters[u.Name()]; ok {
		return fmt.Errorf("core: updater %q already registered", u.Name())
	}
	p.updaters[u.Name()] = u
	return nil
}

// certVerifyT is cert_verify_t (Alg. 2 lines 25-32): validate a peer
// certificate against an expected digest, inside the enclave.
func (p *TrustedProgram) certVerifyT(ctx *enclave.Context, expectDigest chash.Hash, cert *Certificate) error {
	return cert.Verify(p.authorityPK, ctx.Measurement(), expectDigest)
}

// blkVerifyT is blk_verify_t (Alg. 2 lines 10-24): verify that blk correctly
// extends prev, replaying the state transition over the update proof. It
// returns the verified state write set (reused by index certification).
func (p *TrustedProgram) blkVerifyT(prev, blk *chain.Block, proof *statedb.UpdateProof) (map[string][]byte, error) {
	// Line 14: linkage and height.
	if blk.Header.PrevHash != prev.Header.Hash() {
		return nil, fmt.Errorf("%w: previous hash mismatch", chain.ErrBadBlock)
	}
	if blk.Header.Height != prev.Header.Height+1 {
		return nil, fmt.Errorf("%w: height %d after %d", chain.ErrBadBlock, blk.Header.Height, prev.Header.Height)
	}
	// Line 15: verify_cons.
	if err := consensus.Verify(p.params, &blk.Header); err != nil {
		return nil, err
	}
	// Line 16: verify_hash(H_tx, {tx}).
	if err := blk.VerifyTxRoot(); err != nil {
		return nil, err
	}
	// Lines 17-23: read-set verification, re-execution, write-set
	// verification, and state-root update, all against the witness. With
	// more than one enclave thread the signature checks run first across
	// all TCS entries, then the (inherently sequential) stateful replay
	// skips them.
	var newRoot chash.Hash
	var writes map[string][]byte
	var err error
	if tcs := p.Parallelism(); tcs > 1 {
		if err = chain.VerifyTxs(blk.Txs, tcs); err != nil {
			return nil, fmt.Errorf("%w: %v", statedb.ErrTxInvalid, err)
		}
		newRoot, writes, err = statedb.ReplayBlockWithWritesPreverified(prev.Header.StateRoot, proof, p.reg, blk.Txs)
	} else {
		newRoot, writes, err = replayWithWrites(prev.Header.StateRoot, proof, p.reg, blk.Txs)
	}
	if err != nil {
		return nil, err
	}
	if newRoot != blk.Header.StateRoot {
		return nil, fmt.Errorf("%w: replayed %s, header %s", statedb.ErrStateRootMismatch, newRoot, blk.Header.StateRoot)
	}
	return writes, nil
}

// replayWithWrites mirrors statedb.ReplayBlock but also surfaces the write
// set for index certification.
func replayWithWrites(prevRoot chash.Hash, proof *statedb.UpdateProof, reg *vm.Registry, txs []*chain.Transaction) (chash.Hash, map[string][]byte, error) {
	root, writes, err := statedb.ReplayBlockWithWrites(prevRoot, proof, reg, txs)
	if err != nil {
		return chash.Zero, nil, err
	}
	return root, writes, nil
}

// verifyPrev dispatches the genesis/recursive check of Alg. 2 lines 3-6
// for a digest function (block or index digest).
func (p *TrustedProgram) verifyPrev(ctx *enclave.Context, prev *chain.Block, prevDigest chash.Hash, prevCert *Certificate) error {
	if prev.Header.Height == 0 {
		if prev.Hash() != p.genesis {
			return fmt.Errorf("%w: %s", ErrGenesisMismatch, prev.Hash())
		}
		return nil
	}
	return p.certVerifyT(ctx, prevDigest, prevCert)
}

// EcallSigGen is ecall_sig_gen (Alg. 2 lines 1-9), run inside the enclave:
// verify the previous certificate (or genesis), verify the new block, cache
// its write set, and sign H(hdr_i).
func (p *TrustedProgram) EcallSigGen(ctx *enclave.Context, prev *chain.Block, prevCert *Certificate, blk *chain.Block, proof *statedb.UpdateProof) ([]byte, error) {
	if err := p.verifyPrev(ctx, prev, BlockDigest(&prev.Header), prevCert); err != nil {
		return nil, err
	}
	writes, err := p.blkVerifyT(prev, blk, proof)
	if err != nil {
		return nil, err
	}
	p.cacheWrites(blk.Hash(), writes)
	return ctx.Sign(BlockDigest(&blk.Header))
}

// EcallSegmentSigGen is the segment analogue of ecall_sig_gen: ONE enclave
// entry that verifies the previous segment's certificate (or genesis),
// verifies all K blocks of the new segment as a chained run, caches their
// write sets, and signs the segment digest. Extending the recursion unit
// from one block to K blocks amortizes the fixed per-Ecall cost (transition
// + two signature operations) across K state transitions; the inductive
// trust argument is unchanged because the previous certificate covers the
// previous segment's digest, whose last header is exactly the block the new
// segment's first header must extend.
//
// prevHeaders are the headers covered by prevCert (so their SegmentDigest is
// prevCert's signed digest); their last element must be prev's header. For a
// single-block segment over a single-block predecessor this is exactly
// EcallSigGen: both digests collapse to BlockDigest, so the resulting
// signature — and the certificate built from it — is byte-identical.
func (p *TrustedProgram) EcallSegmentSigGen(ctx *enclave.Context, prev *chain.Block, prevHeaders []*chain.Header, prevCert *Certificate, blks []*chain.Block, proofs []*statedb.UpdateProof) ([]byte, error) {
	if len(blks) == 0 {
		return nil, fmt.Errorf("%w: empty segment", ErrBadSegment)
	}
	if len(proofs) != len(blks) {
		return nil, fmt.Errorf("%w: %d proofs for %d blocks", ErrBadSegment, len(proofs), len(blks))
	}
	// Verify the recursion base: genesis, or the previous segment's
	// certificate — which must be anchored at the claimed previous tip.
	if prev.Header.Height == 0 {
		if prev.Hash() != p.genesis {
			return nil, fmt.Errorf("%w: %s", ErrGenesisMismatch, prev.Hash())
		}
	} else {
		if len(prevHeaders) == 0 {
			return nil, fmt.Errorf("%w: missing previous segment headers", ErrBadSegment)
		}
		if prevHeaders[len(prevHeaders)-1].Hash() != prev.Hash() {
			return nil, fmt.Errorf("%w: previous segment does not end at claimed tip", ErrBadSegment)
		}
		if err := p.certVerifyT(ctx, SegmentDigest(prevHeaders), prevCert); err != nil {
			return nil, err
		}
	}
	// Verify the whole segment as a chained run of block transitions.
	cur := prev
	for i, blk := range blks {
		writes, err := p.blkVerifyT(cur, blk, proofs[i])
		if err != nil {
			return nil, fmt.Errorf("segment block %d (height %d): %w", i, blk.Header.Height, err)
		}
		p.cacheWrites(blk.Hash(), writes)
		cur = blk
	}
	return ctx.Sign(SegmentDigest(segmentHeaders(blks)))
}

// IndexInput bundles the per-index inputs of Alg. 4 / Alg. 5: the previous
// index root and certificate, the claimed new root, and the update witness.
type IndexInput struct {
	// Updater names the registered index-update logic.
	Updater string
	// PrevRoot is H_{i-1}^idx.
	PrevRoot chash.Hash
	// PrevCert is cert_{i-1}^idx (nil when bootstrapping from genesis).
	PrevCert *Certificate
	// NewRoot is the claimed H_i^idx.
	NewRoot chash.Hash
	// Witness is π_i^idx, the index update proof.
	Witness []byte
}

// replayIndex runs lines 8-10 of Alg. 4: derive the index write data from
// the (verified) block, check the witness, and recompute the index root.
func (p *TrustedProgram) replayIndex(in *IndexInput, blk *chain.Block, writes map[string][]byte) error {
	u, ok := p.updaters[in.Updater]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownIndex, in.Updater)
	}
	newRoot, err := u.Replay(in.PrevRoot, in.Witness, blk, writes)
	if err != nil {
		return err
	}
	if newRoot != in.NewRoot {
		return fmt.Errorf("%w: replayed %s, claimed %s", ErrIndexRootMismatch, newRoot, in.NewRoot)
	}
	return nil
}

// EcallAugmented is the trusted body of Alg. 4: one enclave entry that
// verifies the block transition AND the index update, then signs
// H(hdr_i ‖ H_i^idx).
func (p *TrustedProgram) EcallAugmented(ctx *enclave.Context, prev *chain.Block, blk *chain.Block, proof *statedb.UpdateProof, in *IndexInput) ([]byte, error) {
	// Lines 3-6: previous augmented certificate (or genesis index root).
	if prev.Header.Height == 0 {
		if prev.Hash() != p.genesis {
			return nil, fmt.Errorf("%w: %s", ErrGenesisMismatch, prev.Hash())
		}
		if in.PrevRoot != GenesisIndexRoot {
			return nil, fmt.Errorf("%w: genesis index root must be empty", ErrIndexRootMismatch)
		}
	} else {
		if err := p.certVerifyT(ctx, IndexDigest(&prev.Header, in.PrevRoot), in.PrevCert); err != nil {
			return nil, err
		}
	}
	// Line 7: full block verification (re-executed per index — the cost the
	// hierarchical scheme removes).
	writes, err := p.blkVerifyT(prev, blk, proof)
	if err != nil {
		return nil, err
	}
	// Lines 8-10: index update replay.
	if err := p.replayIndex(in, blk, writes); err != nil {
		return nil, err
	}
	// Lines 11-12: sign H(hdr_i ‖ H_i^idx).
	return ctx.Sign(IndexDigest(&blk.Header, in.NewRoot))
}

// EcallHierarchicalIndex is the per-index trusted body of Alg. 5 (lines
// 3-15): instead of re-verifying the block, it verifies the block
// certificate produced moments earlier, reuses the enclave-cached write set,
// replays the index update, and signs H(hdr_i ‖ H_i^idx).
func (p *TrustedProgram) EcallHierarchicalIndex(ctx *enclave.Context, prev *chain.Block, blk *chain.Block, blkCert *Certificate, in *IndexInput) ([]byte, error) {
	// Lines 5-9: previous index certificate (or genesis index root).
	if prev.Header.Height == 0 {
		if prev.Hash() != p.genesis {
			return nil, fmt.Errorf("%w: %s", ErrGenesisMismatch, prev.Hash())
		}
		if in.PrevRoot != GenesisIndexRoot {
			return nil, fmt.Errorf("%w: genesis index root must be empty", ErrIndexRootMismatch)
		}
	} else {
		if err := p.certVerifyT(ctx, IndexDigest(&prev.Header, in.PrevRoot), in.PrevCert); err != nil {
			return nil, err
		}
	}
	// Line 10: verify blk via its block certificate instead of re-execution.
	if err := p.certVerifyT(ctx, BlockDigest(&blk.Header), blkCert); err != nil {
		return nil, err
	}
	writes, ok := p.lookupWrites(blk.Hash())
	if !ok {
		return nil, fmt.Errorf("core: write set for block %s not in enclave cache", blk.Hash())
	}
	// Lines 11-13: index update replay.
	if err := p.replayIndex(in, blk, writes); err != nil {
		return nil, err
	}
	// Lines 14-15: sign H(hdr_i ‖ H_i^idx).
	return ctx.Sign(IndexDigest(&blk.Header, in.NewRoot))
}

// writeCacheLimit bounds the enclave-resident cache (the enclave's tight
// memory budget is the whole point of the paper's §2.2 discussion).
const writeCacheLimit = 4

func (p *TrustedProgram) cacheWrites(blockHash chash.Hash, writes map[string][]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.writeCache[blockHash]; ok {
		return
	}
	// FIFO eviction: the oldest certified block's set goes first. The
	// pipeline's index stage may lag block certification by a few blocks,
	// so eviction order must be deterministic — map-iteration eviction
	// could drop the set an in-flight index Ecall is about to need.
	for len(p.cacheOrder) >= writeCacheLimit {
		oldest := p.cacheOrder[0]
		p.cacheOrder = p.cacheOrder[1:]
		delete(p.writeCache, oldest)
	}
	p.writeCache[blockHash] = writes
	p.cacheOrder = append(p.cacheOrder, blockHash)
}

func (p *TrustedProgram) lookupWrites(blockHash chash.Hash) (map[string][]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.writeCache[blockHash]
	return w, ok
}
