package chain

import (
	"bytes"
	"errors"
	"testing"

	"dcert/internal/chash"
)

func testKey(t *testing.T) *chash.PrivateKey {
	t.Helper()
	sk, err := chash.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return sk
}

func signedTx(t *testing.T, sk *chash.PrivateKey, nonce uint64) *Transaction {
	t.Helper()
	tx := &Transaction{
		Nonce:    nonce,
		Contract: "kv-0001",
		Method:   "set",
		Args:     [][]byte{[]byte("key"), []byte("value")},
	}
	if err := tx.Sign(sk); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return tx
}

func TestHeaderHashDeterministic(t *testing.T) {
	h := Header{Height: 5, Time: 99, Consensus: ConsensusProof{Nonce: 7, Difficulty: 8}}
	if h.Hash() != h.Hash() {
		t.Fatal("header hash must be deterministic")
	}
	h2 := h
	h2.Height = 6
	if h.Hash() == h2.Hash() {
		t.Fatal("different headers must hash differently")
	}
}

func TestHeaderHashCoversAllFields(t *testing.T) {
	base := Header{Height: 1, PrevHash: chash.Leaf([]byte("p")), StateRoot: chash.Leaf([]byte("s")),
		TxRoot: chash.Leaf([]byte("t")), Time: 10, Consensus: ConsensusProof{Nonce: 1, Difficulty: 2}}
	mutations := []func(*Header){
		func(h *Header) { h.Height++ },
		func(h *Header) { h.PrevHash = chash.Leaf([]byte("x")) },
		func(h *Header) { h.StateRoot = chash.Leaf([]byte("x")) },
		func(h *Header) { h.TxRoot = chash.Leaf([]byte("x")) },
		func(h *Header) { h.Time++ },
		func(h *Header) { h.Consensus.Nonce++ },
		func(h *Header) { h.Consensus.Difficulty++ },
	}
	for i, mutate := range mutations {
		h := base
		mutate(&h)
		if h.Hash() == base.Hash() {
			t.Fatalf("mutation %d did not change the header hash", i)
		}
	}
}

func TestHeaderMarshalRoundTrip(t *testing.T) {
	h := Header{Height: 42, PrevHash: chash.Leaf([]byte("prev")), StateRoot: chash.Leaf([]byte("state")),
		TxRoot: chash.Leaf([]byte("tx")), Time: 1234, Consensus: ConsensusProof{Nonce: 55, Difficulty: 8}}
	got, err := UnmarshalHeader(h.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalHeader: %v", err)
	}
	if *got != h {
		t.Fatalf("round trip mismatch: %+v vs %+v", *got, h)
	}
	if h.EncodedSize() != len(h.Marshal()) {
		t.Fatal("EncodedSize mismatch")
	}
}

func TestUnmarshalHeaderRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalHeader([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for truncated header")
	}
	h := Header{Height: 1}
	raw := append(h.Marshal(), 0xff)
	if _, err := UnmarshalHeader(raw); err == nil {
		t.Fatal("want error for trailing bytes")
	}
}

func TestTransactionSignVerify(t *testing.T) {
	sk := testKey(t)
	tx := signedTx(t, sk, 1)
	if err := tx.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestTransactionVerifyRejectsTamperedArgs(t *testing.T) {
	sk := testKey(t)
	tx := signedTx(t, sk, 1)
	tx.Args[1] = []byte("tampered")
	if err := tx.Verify(); !errors.Is(err, ErrBadTx) {
		t.Fatalf("want ErrBadTx, got %v", err)
	}
}

func TestTransactionVerifyRejectsWrongSender(t *testing.T) {
	sk := testKey(t)
	tx := signedTx(t, sk, 1)
	tx.From[0] ^= 0xff
	if err := tx.Verify(); !errors.Is(err, ErrBadTx) {
		t.Fatalf("want ErrBadTx, got %v", err)
	}
}

func TestTransactionVerifyRejectsSwappedKey(t *testing.T) {
	skA := testKey(t)
	skB := testKey(t)
	tx := signedTx(t, skA, 1)
	pkB, err := skB.Public()
	if err != nil {
		t.Fatalf("Public: %v", err)
	}
	tx.PubKey = pkB.Marshal()
	if err := tx.Verify(); !errors.Is(err, ErrBadTx) {
		t.Fatalf("want ErrBadTx, got %v", err)
	}
}

func TestTransactionMarshalRoundTrip(t *testing.T) {
	sk := testKey(t)
	tx := signedTx(t, sk, 9)
	got, err := UnmarshalTransaction(tx.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalTransaction: %v", err)
	}
	if got.Hash() != tx.Hash() {
		t.Fatal("round-tripped tx hash mismatch")
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("round-tripped tx must verify: %v", err)
	}
	if got.From != tx.From || got.Nonce != tx.Nonce || got.Contract != tx.Contract || got.Method != tx.Method {
		t.Fatal("round-tripped tx fields mismatch")
	}
	if len(got.Args) != len(tx.Args) {
		t.Fatal("round-tripped args length mismatch")
	}
	for i := range got.Args {
		if !bytes.Equal(got.Args[i], tx.Args[i]) {
			t.Fatalf("arg %d mismatch", i)
		}
	}
}

func TestComputeTxRoot(t *testing.T) {
	sk := testKey(t)
	empty, err := ComputeTxRoot(nil)
	if err != nil {
		t.Fatalf("ComputeTxRoot(nil): %v", err)
	}
	if !empty.IsZero() {
		t.Fatal("empty tx root must be zero")
	}
	txs := []*Transaction{signedTx(t, sk, 1), signedTx(t, sk, 2)}
	r1, err := ComputeTxRoot(txs)
	if err != nil {
		t.Fatalf("ComputeTxRoot: %v", err)
	}
	r2, err := ComputeTxRoot([]*Transaction{txs[1], txs[0]})
	if err != nil {
		t.Fatalf("ComputeTxRoot: %v", err)
	}
	if r1 == r2 {
		t.Fatal("tx root must depend on order")
	}
}

func TestBlockVerifyTxRoot(t *testing.T) {
	sk := testKey(t)
	txs := []*Transaction{signedTx(t, sk, 1), signedTx(t, sk, 2)}
	root, err := ComputeTxRoot(txs)
	if err != nil {
		t.Fatalf("ComputeTxRoot: %v", err)
	}
	b := &Block{Header: Header{Height: 1, TxRoot: root}, Txs: txs}
	if err := b.VerifyTxRoot(); err != nil {
		t.Fatalf("VerifyTxRoot: %v", err)
	}
	b.Txs = b.Txs[:1]
	if err := b.VerifyTxRoot(); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("want ErrBadBlock, got %v", err)
	}
}

func TestBlockMarshalRoundTrip(t *testing.T) {
	sk := testKey(t)
	txs := []*Transaction{signedTx(t, sk, 1), signedTx(t, sk, 2), signedTx(t, sk, 3)}
	root, err := ComputeTxRoot(txs)
	if err != nil {
		t.Fatalf("ComputeTxRoot: %v", err)
	}
	b := &Block{Header: Header{Height: 3, TxRoot: root, Time: 77}, Txs: txs}
	got, err := UnmarshalBlock(b.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalBlock: %v", err)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("round-tripped block hash mismatch")
	}
	if len(got.Txs) != 3 {
		t.Fatalf("round-tripped block has %d txs", len(got.Txs))
	}
	if err := got.VerifyTxRoot(); err != nil {
		t.Fatalf("round-tripped block tx root: %v", err)
	}
}

func TestAddressOfStable(t *testing.T) {
	sk := testKey(t)
	pk, err := sk.Public()
	if err != nil {
		t.Fatalf("Public: %v", err)
	}
	if AddressOf(pk) != AddressOf(pk) {
		t.Fatal("address must be deterministic")
	}
	if len(AddressOf(pk).Hex()) != 2*AddressSize {
		t.Fatal("hex address length")
	}
}
