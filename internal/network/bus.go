package network

// Bus is the topic API every DCert component speaks: publish a payload to a
// topic, subscribe to a topic with a bounded queue. The in-process Network
// implements it directly; the wire transport (internal/transport) implements
// the same semantics over length-prefixed TCP, so followers, responders, and
// query services run unchanged against either fabric:
//
//   - delivery preserves per-publisher order on each topic;
//   - every current subscriber of a topic receives each delivered message
//     (including the publisher's own subscriptions);
//   - a subscriber whose queue is full misses messages instead of exerting
//     backpressure on the publisher (real gossip semantics);
//   - Publish never reports delivery failures caused by the fabric itself
//     (drops, partitions) — only a closed/terminal fabric errors.
type Bus interface {
	// Publish broadcasts a payload to all current subscribers of the topic.
	Publish(topic, from string, payload any) error
	// Subscribe registers for a topic with the given queue depth.
	Subscribe(topic string, depth int) *Subscription
}

// Network is the in-process Bus.
var _ Bus = (*Network)(nil)

// NewDetachedSubscription mints a Subscription that is not attached to any
// Network: the wire transport feeds it with Deliver as frames arrive and
// hooks Cancel to tear down the remote registration. It carries the exact
// queue semantics of an attached subscription (bounded buffer, drop on
// overflow, safe concurrent Cancel).
func NewDetachedSubscription(topic string, depth int, onCancel func()) *Subscription {
	if depth < 1 {
		depth = 1
	}
	ch := make(chan Message, depth)
	return &Subscription{C: ch, topic: topic, ch: ch, onCancel: onCancel}
}

// Topic returns the topic the subscription was registered for.
func (s *Subscription) Topic() string {
	return s.topic
}

// Deliver enqueues one message, reporting false if it was dropped because
// the queue is full (slow subscriber) or the subscription was cancelled.
// It never blocks. Transports use this to feed detached subscriptions and
// to account slow-consumer drops.
func (s *Subscription) Deliver(m Message) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	select {
	case s.ch <- m:
		return true
	default: // slow subscriber: drop, as real gossip would
		return false
	}
}
