// Package enclave simulates an Intel SGX enclave for environments without
// the hardware. All algorithmic work the DCert paper places inside the
// enclave (proof verification, transaction re-execution, signing with the
// sealed key) runs for real through this package; only the hardware-induced
// overheads are injected from a calibrated cost model:
//
//   - Ecall/Ocall transition latency (the paper's motivation for minimizing
//     enclave calls, §2.2),
//   - per-byte copy cost for moving call buffers into EPC memory,
//   - a multiplicative compute slowdown for in-enclave execution (memory
//     encryption engine), and
//   - a paging penalty once a call's working set exceeds the usable EPC
//     budget (93 MB on the paper's hardware).
//
// The enclave-generated signing key sk_enc never leaves the package: trusted
// code receives a Context whose Sign method uses it, mirroring the sealed-key
// design of §3.3.
package enclave

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dcert/internal/attest"
	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrNotInitialized is returned when using an enclave before New.
	ErrNotInitialized = errors.New("enclave: not initialized")
)

// CostModel parameterizes the simulated SGX overheads. The zero value
// disables all overheads (fast unit tests); DefaultCostModel returns values
// calibrated against published SGX measurements.
type CostModel struct {
	// TransitionLatency is charged once per Ecall (enter + exit).
	TransitionLatency time.Duration
	// CopyPerKB is charged per KiB of call input copied into the enclave.
	CopyPerKB time.Duration
	// ComputeFactor ≥ 1 multiplies in-enclave execution time (values below 1
	// are treated as 1).
	ComputeFactor float64
	// EPCBudget is the usable enclave memory in bytes; calls whose input
	// exceeds it incur PagingPerKB on the excess.
	EPCBudget int
	// PagingPerKB is charged per KiB of input beyond EPCBudget.
	PagingPerKB time.Duration
}

// DefaultCostModel returns overheads calibrated to published SGX numbers:
// ~8µs per enclave transition (HotCalls, Weisse et al.), ~0.4µs/KB EPC copy,
// ~1.25× in-enclave compute slowdown, 93 MB usable EPC with a steep paging
// penalty (Chakrabarti et al.).
func DefaultCostModel() CostModel {
	return CostModel{
		TransitionLatency: 8 * time.Microsecond,
		CopyPerKB:         400 * time.Nanosecond,
		ComputeFactor:     1.25,
		EPCBudget:         93 << 20,
		PagingPerKB:       20 * time.Microsecond,
	}
}

// Stats accumulates simulated-cost accounting for one enclave, split the way
// Fig. 8 of the paper breaks down certificate construction time.
type Stats struct {
	// Ecalls counts trusted entries.
	Ecalls uint64
	// BytesIn counts call input bytes copied into the enclave.
	BytesIn uint64
	// ExecTime is the real execution time of trusted code.
	ExecTime time.Duration
	// OverheadTime is the injected SGX overhead (transitions, copies,
	// compute factor, paging).
	OverheadTime time.Duration
}

// InsideTime is the total simulated in-enclave time.
func (s Stats) InsideTime() time.Duration {
	return s.ExecTime + s.OverheadTime
}

// Context is handed to trusted code running inside the enclave. It exposes
// the sealed key without ever revealing it.
type Context struct {
	e *Enclave
}

// Sign signs a digest with the sealed enclave key sk_enc (load_sk + Sign of
// Alg. 2 lines 8-9).
func (c *Context) Sign(digest chash.Hash) ([]byte, error) {
	return c.e.sk.Sign(digest)
}

// Measurement returns the running enclave's own measurement, which trusted
// code compares against attestation reports of peer certificates
// (Alg. 2 line 28: "the current enclave program's measurement").
func (c *Context) Measurement() chash.Hash {
	return c.e.measurement
}

// PublicKey returns pk_enc.
func (c *Context) PublicKey() *chash.PublicKey {
	return c.e.pk
}

// Enclave is a simulated SGX enclave instance.
//
// Enclave is safe for concurrent use; Ecalls serialize on an internal mutex,
// matching single-threaded enclave entry.
type Enclave struct {
	mu          sync.Mutex
	measurement chash.Hash
	sk          *chash.PrivateKey
	pk          *chash.PublicKey
	platform    *attest.Platform
	cost        CostModel
	stats       Stats
}

// New initializes an enclave running the program identified by programID
// (its measurement is the digest of programID) on the given platform. A
// fresh key pair (sk_enc, pk_enc) is generated inside; sk_enc never leaves.
func New(programID []byte, platform *attest.Platform, cost CostModel) (*Enclave, error) {
	sk, err := chash.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("enclave: generate sealed key: %w", err)
	}
	return build(programID, platform, cost, sk)
}

// NewFromSeed is New with a deterministically derived sealed key. Two
// enclaves built from the same seed sign identically — the handle that lets
// equivalence tests compare a pipelined and a sequential issuer byte for
// byte. The key still never leaves the package.
func NewFromSeed(programID []byte, platform *attest.Platform, cost CostModel, seed []byte) (*Enclave, error) {
	sk, err := chash.GenerateKeyFromSeed(append([]byte("enclave/"), seed...))
	if err != nil {
		return nil, fmt.Errorf("enclave: generate sealed key: %w", err)
	}
	return build(programID, platform, cost, sk)
}

func build(programID []byte, platform *attest.Platform, cost CostModel, sk *chash.PrivateKey) (*Enclave, error) {
	if platform == nil {
		return nil, fmt.Errorf("enclave: nil platform")
	}
	pk, err := sk.Public()
	if err != nil {
		return nil, fmt.Errorf("enclave: generate sealed key: %w", err)
	}
	return &Enclave{
		measurement: Measure(programID),
		sk:          sk,
		pk:          pk,
		platform:    platform,
		cost:        cost,
	}, nil
}

// Measure computes the measurement of a program identity.
func Measure(programID []byte) chash.Hash {
	return chash.Sum(chash.DomainQuote, []byte("enclave-measurement"), programID)
}

// Measurement returns the enclave's measurement.
func (e *Enclave) Measurement() chash.Hash {
	return e.measurement
}

// PublicKey returns pk_enc, the public half of the sealed key.
func (e *Enclave) PublicKey() *chash.PublicKey {
	return e.pk
}

// Quote produces a hardware quote binding pk_enc to this enclave's
// measurement; sending it to an attest.Authority yields the attestation
// report rep that accompanies every certificate.
func (e *Enclave) Quote() (*attest.Quote, error) {
	return e.platform.SignQuote(e.measurement, e.pk.Fingerprint())
}

// Stats returns a snapshot of the enclave's accounting.
func (e *Enclave) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ResetStats zeroes the accounting (between benchmark phases).
func (e *Enclave) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
}

// Ecall enters the enclave and runs trusted code. inputBytes is the size of
// the call buffers marshalled through the boundary; it drives the copy and
// paging components of the cost model. The trusted function's error is
// returned as-is.
func (e *Enclave) Ecall(inputBytes int, trusted func(ctx *Context) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	start := time.Now()
	err := trusted(&Context{e: e})
	exec := time.Since(start)

	overhead := e.cost.TransitionLatency
	overhead += time.Duration(float64(e.cost.CopyPerKB) * float64(inputBytes) / 1024)
	if e.cost.ComputeFactor > 1 {
		overhead += time.Duration(float64(exec) * (e.cost.ComputeFactor - 1))
	}
	if e.cost.EPCBudget > 0 && inputBytes > e.cost.EPCBudget {
		excess := inputBytes - e.cost.EPCBudget
		overhead += time.Duration(float64(e.cost.PagingPerKB) * float64(excess) / 1024)
	}
	if overhead > 0 {
		spin(overhead)
	}

	e.stats.Ecalls++
	e.stats.BytesIn += uint64(inputBytes)
	e.stats.ExecTime += exec
	e.stats.OverheadTime += overhead
	return err
}

// spin busy-waits for d so injected overheads show up in wall-clock
// measurements with sub-sleep-quantum precision.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
