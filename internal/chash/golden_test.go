package chash

import "testing"

// Golden digest vectors. Certificates are recursive signatures over these
// digests, so the hashing core must stay byte-identical across rewrites: any
// optimization that changes a single output byte breaks every certificate
// chain ever issued. The vectors were generated from the original
// sha256.New()-per-call implementation and pin the pooled/single-shot engine
// (and any future change) to the same outputs.
func TestGoldenSumPerDomain(t *testing.T) {
	vectors := []struct {
		domain Domain
		want   string
	}{
		{DomainLeaf, "6b07b8abaac5e4cb67964afb91f0baae6f2bf41c2173b9c9c5080dd66cec61a9"},
		{DomainNode, "5bdc6d9325cbd248e260f3d8150fb78491abd97b82c83daf73a4e31e5bc74ce4"},
		{DomainHeader, "ec18e8c6a1a9d42becfb0f10a44b740d4a56ea759cde309818fe546636654919"},
		{DomainTx, "650cd11c1234015fefbb5a8801a7c9d6bd42a337dd1096e2254eccfbdbebab18"},
		{DomainState, "25a6a05d941dde1508e1d6142081b4b839fa6e34662edbb8214663b050dc2225"},
		{DomainCert, "f1a54bc115488b9b948e5c4d33d8c65d556376d54487ab391e16b498198e6721"},
		{DomainQuote, "4fc41467de106ba40b3fc55c21843df0cf9207742cc69ecd6840b5d37cfab2db"},
		{DomainReport, "26befa30511b109f1c37a1e4659ae5376db2a9d4489572331f91c9691282f22e"},
		{DomainIndex, "0afb636269dd3286772f85c1086009125a0b4724eca7373a7691c5b9038107ce"},
		{DomainConsensus, "88b7412fdce58f3eedfc5b0689837c3bda0913824860ff028fe39042ae66fd26"},
	}
	for _, v := range vectors {
		t.Run(v.domain.String(), func(t *testing.T) {
			got := Sum(v.domain, []byte("dcert golden "), []byte(v.domain.String()))
			if got.Hex() != v.want {
				t.Fatalf("Sum(%s, ...) = %s, want %s", v.domain, got.Hex(), v.want)
			}
		})
	}
}

func TestGoldenShapes(t *testing.T) {
	a := Leaf([]byte("a"))
	b := Leaf([]byte("b"))
	vectors := []struct {
		name string
		got  Hash
		want string
	}{
		{"sum-empty", Sum(DomainLeaf), "4bf5122f344554c53bde2ebb8cd2b7e3d1600ad631c385a5d7cce23c7785459a"},
		{"sum-bytes", SumBytes([]byte("dcert golden raw")), "97d42e10106914afac0d79b350b4e6fd9c39888d7063778c93549fd06d9aa86c"},
		{"leaf", Leaf([]byte("dcert golden leaf")), "6b07b8abaac5e4cb67964afb91f0baae6f2bf41c2173b9c9c5080dd66cec61a9"},
		{"node", Node(a, b), "ddf7d5e743e693e9a9bde3c22082fc8776c215616943488c9ae75affcd91dbca"},
		// Node(Zero, Zero) is the height-1 empty-subtree default shared by
		// every SMT depth.
		{"node-zero", Node(Zero, Zero), "977c6d24ff2b851777af4dce0615e547112c6c0128a37338b3a1db9d055fff09"},
	}
	for _, v := range vectors {
		if v.got.Hex() != v.want {
			t.Fatalf("%s = %s, want %s", v.name, v.got.Hex(), v.want)
		}
	}
}

// TestGoldenSumConcat pins the (intentional) concatenation semantics of Sum:
// parts are hashed back-to-back with no per-part framing, so callers that
// need injective encodings length-prefix via chash.Encoder before hashing.
func TestGoldenSumConcat(t *testing.T) {
	one := Sum(DomainTx, []byte("dcert golden concat"))
	two := Sum(DomainTx, []byte("dcert golden "), []byte("concat"))
	if one != two {
		t.Fatalf("Sum must concatenate parts: %s != %s", one, two)
	}
}

// TestSumMatchesStreaming cross-checks the pooled fast paths against an
// independently computed digest for a spread of part counts and sizes.
func TestSumMatchesStreaming(t *testing.T) {
	for _, size := range []int{0, 1, 31, 32, 55, 64, 100, 1024, 1 << 16} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		want := SumBytes(append([]byte{byte(DomainLeaf)}, payload...))
		if got := Leaf(payload); got != want {
			t.Fatalf("Leaf(%d bytes) = %s, want %s", size, got, want)
		}
	}
}
