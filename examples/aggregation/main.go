// Aggregation: verifiable aggregate queries over account history.
//
// The paper notes (§5.1) that DCert supports any query type with an
// authenticated processing algorithm. This example shows the aggregation
// extension: COUNT / SUM / MIN / MAX over an account's balance history,
// where the SP's claimed aggregate is verified by recomputing it from a
// completeness-proven range — so a dishonest SP can neither skew the
// aggregate nor hide the versions that feed it.
//
// Run with:
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"os"

	"dcert"
)

func main() {
	logger := dcert.NewLogger(os.Stderr, dcert.LogInfo, dcert.LogF("node", "aggregation"))
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.SmallBank,
		Contracts: 2,
		Accounts:  10,
		KeySpace:  15,
		Seed:      8,
	})
	if err != nil {
		logger.Fatal("deployment", dcert.LogF("err", err))
	}
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewHistoricalIndex("history", "ct/")
	}); err != nil {
		logger.Fatal("add index", dcert.LogF("err", err))
	}
	client := dep.NewSuperlightClient()

	fmt.Println("building a SmallBank chain with a certified historical index...")
	for i := 0; i < 20; i++ {
		blk, blkCert, idxCerts, err := dep.MineAndCertifyHierarchical(20, []string{"history"})
		if err != nil {
			logger.Fatal("block failed", dcert.LogF("height", i), dcert.LogF("err", err))
		}
		if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
			logger.Fatal("chain validation", dcert.LogF("err", err))
		}
		ix, err := dep.SP().Index("history")
		if err != nil {
			logger.Fatal("index", dcert.LogF("err", err))
		}
		root, err := ix.Root()
		if err != nil {
			logger.Fatal("root", dcert.LogF("err", err))
		}
		if err := client.ValidateIndex("history", &blk.Header, root, idxCerts[0]); err != nil {
			logger.Fatal("index certificate", dcert.LogF("err", err))
		}
	}
	root, height, err := client.IndexRoot("history")
	if err != nil {
		logger.Fatal("index root", dcert.LogF("err", err))
	}
	fmt.Printf("index root certified at height %d\n\n", height)

	key := "ct/SB-0000/checking/cust-2"
	for _, op := range []dcert.AggregateOp{dcert.AggCount, dcert.AggSum, dcert.AggMin, dcert.AggMax} {
		res, err := dep.SP().AggregateQuery("history", op, key, 0, height)
		if err != nil {
			logger.Fatal("aggregate query failed", dcert.LogF("op", op), dcert.LogF("err", err))
		}
		if err := dcert.VerifyAggregate(root, res); err != nil {
			logger.Fatal("aggregate verification failed", dcert.LogF("op", op), dcert.LogF("err", err))
		}
		fmt.Printf("verified %s(%s over blocks [0, %d]) = %d  (backed by %d proven versions)\n",
			op, key, height, res.Value, len(res.Historical.Entries))
	}

	// A dishonest SP inflating the SUM is caught.
	res, err := dep.SP().AggregateQuery("history", dcert.AggSum, key, 0, height)
	if err != nil {
		logger.Fatal("sum", dcert.LogF("err", err))
	}
	res.Value *= 2
	if err := dcert.VerifyAggregate(root, res); err != nil {
		fmt.Printf("\ninflating the SUM is caught: %v\n", err)
	} else {
		logger.Fatal("BUG: inflated aggregate went undetected")
	}
}
