package core

import (
	"time"

	"dcert/internal/obs"
)

// Issuer-side instrumentation. An issuer is born uninstrumented: every hook
// below is a nil obs instrument whose methods no-op, so certification pays
// one predictable branch per record and zero allocations. Instrument wires
// the hooks into a registry under the issuer's identity label; because the
// registry dedups by (name, labels), an issuer restarted under the same
// identity keeps accumulating into the same series.

// issuerObs bundles an issuer's instrumentation hooks (all fields nil-safe).
type issuerObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	logger *obs.Logger
	id     string

	// ecalls counts enclave entries, split block- vs index-certification.
	ecallsBlock *obs.Counter
	ecallsIndex *obs.Counter
	// enclaveBlockSec / enclaveIndexSec split in-enclave time (real trusted
	// execution + simulated SGX overhead) the same way.
	enclaveBlockSec *obs.Histogram
	enclaveIndexSec *obs.Histogram
	// blocksCertified counts adopted blocks; certifySec is the end-to-end
	// per-block certification latency (prepare + Ecall + adopt).
	blocksCertified *obs.Counter
	certifySec      *obs.Histogram
}

// Instrument attaches the issuer to an instrumentation plane under the
// given identity (e.g. "ci0"). Passing a nil registry detaches nothing —
// instruments already wired keep working; nil hooks stay nil. Safe to call
// before certification starts; not safe concurrently with certification.
func (ci *Issuer) Instrument(reg *obs.Registry, tracer *obs.Tracer, logger *obs.Logger, id string) {
	ci.met = issuerObs{
		reg:    reg,
		tracer: tracer,
		logger: logger.With(obs.F("ci", id)),
		id:     id,

		ecallsBlock: reg.Counter("dcert_issuer_ecalls_total",
			"Enclave entries by certification kind.", obs.L("ci", id), obs.L("kind", "block")),
		ecallsIndex: reg.Counter("dcert_issuer_ecalls_total",
			"Enclave entries by certification kind.", obs.L("ci", id), obs.L("kind", "index")),
		enclaveBlockSec: reg.Histogram("dcert_issuer_enclave_seconds",
			"In-enclave time per Ecall by certification kind.", nil, obs.L("ci", id), obs.L("kind", "block")),
		enclaveIndexSec: reg.Histogram("dcert_issuer_enclave_seconds",
			"In-enclave time per Ecall by certification kind.", nil, obs.L("ci", id), obs.L("kind", "index")),
		blocksCertified: reg.Counter("dcert_issuer_blocks_certified_total",
			"Blocks adopted with a certificate.", obs.L("ci", id)),
		certifySec: reg.Histogram("dcert_issuer_certify_seconds",
			"End-to-end per-block certification latency.", nil, obs.L("ci", id)),
	}
}

// Observability returns the issuer's attached registry, tracer and logger
// (all nil while uninstrumented).
func (ci *Issuer) Observability() (*obs.Registry, *obs.Tracer, *obs.Logger) {
	return ci.met.reg, ci.met.tracer, ci.met.logger
}

// LastCertTime reports when the newest certificate was adopted (zero before
// the first), feeding /healthz certificate-freshness.
func (ci *Issuer) LastCertTime() time.Time {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	return ci.lastCertAt
}

// Pipeline-side instrumentation. The four stage histograms are always-on:
// they double as the pipeline's busy-time accounting (their atomic sums
// replaced the old mutex-guarded busy array, which raced Stats readers), so
// they exist even with no registry attached. With a registry, the same
// histograms are registered under the issuer's identity, plus queue-depth
// gauges and rollback/abort/block counters.
type pipelineObs struct {
	stage [numStages]*obs.Histogram // always non-nil

	queueVerify *obs.Gauge
	queueCommit *obs.Gauge
	queueIndex  *obs.Gauge
	rollbacks   *obs.Counter
	aborts      *obs.Counter
	blocks      *obs.Counter
}

// Stage indices (the stage histogram order).
const (
	stageVerify = iota
	stageExec
	stageCommit
	stageIndex
	numStages
)

var stageNames = [numStages]string{"verify", "execute", "commit", "index"}

// pipelineBuckets adds sub-10µs resolution to the default latency buckets:
// with no simulated enclave cost model, whole stages finish in microseconds.
var pipelineBuckets = func() []float64 {
	return append([]float64{1e-6, 2.5e-6, 5e-6}, obs.DefBuckets...)
}()

// newPipelineObs builds the pipeline's instruments. With a nil registry the
// stage histograms still exist (busy accounting); everything else stays nil.
func newPipelineObs(met issuerObs) pipelineObs {
	var po pipelineObs
	for s := 0; s < numStages; s++ {
		po.stage[s] = obs.NewHistogram(pipelineBuckets)
	}
	reg := met.reg
	if reg == nil {
		return po
	}
	for s := 0; s < numStages; s++ {
		// The registry keeps the first histogram registered under an
		// identity: a restarted pipeline adopts its predecessor's series.
		po.stage[s] = reg.RegisterHistogram("dcert_pipeline_stage_seconds",
			"Per-block latency of each pipeline stage.", po.stage[s],
			obs.L("ci", met.id), obs.L("stage", stageNames[s]))
	}
	po.queueVerify = reg.Gauge("dcert_pipeline_queue_depth",
		"Blocks waiting in a pipeline stage queue.", obs.L("ci", met.id), obs.L("queue", "verify"))
	po.queueCommit = reg.Gauge("dcert_pipeline_queue_depth",
		"Blocks waiting in a pipeline stage queue.", obs.L("ci", met.id), obs.L("queue", "commit"))
	po.queueIndex = reg.Gauge("dcert_pipeline_queue_depth",
		"Blocks waiting in a pipeline stage queue.", obs.L("ci", met.id), obs.L("queue", "index"))
	po.rollbacks = reg.Counter("dcert_pipeline_rollbacks_total",
		"Speculative block commits undone on abort or failure.", obs.L("ci", met.id))
	po.aborts = reg.Counter("dcert_pipeline_aborts_total",
		"Pipeline failures (first error per stream).", obs.L("ci", met.id))
	po.blocks = reg.Counter("dcert_pipeline_blocks_total",
		"Blocks certified through the pipeline.", obs.L("ci", met.id))
	return po
}

// observeStage records one stage execution (seconds since start).
func (po *pipelineObs) observeStage(stage int, start time.Time) {
	po.stage[stage].Observe(time.Since(start).Seconds())
}
