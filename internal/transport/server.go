package transport

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dcert/internal/network"
)

// Server exposes a hub bus over TCP. Every remote publish lands on the hub
// — where the seeded fault fabric, instrumentation, and all in-process
// subscribers live — and every hub delivery matching a remote subscription
// is pushed back out as a message frame. The server additionally routes
// request/response RPCs to registered handlers (queries, certificate
// catch-up, deployment info), celestia-style: one route table, one method
// string per route.
//
// Fault injection therefore applies at the transport seam for free: a
// FaultPlan installed on the hub perturbs remote traffic exactly as it
// perturbs in-process traffic, because both flow through hub.Publish.

// Server errors.
var (
	// ErrServerClosed is returned for operations on a closed server.
	ErrServerClosed = errors.New("transport: server closed")
	// ErrUnknownMethod is reported to callers of an unregistered RPC route.
	ErrUnknownMethod = errors.New("transport: unknown RPC method")
)

// Handler answers one RPC call. The returned bytes are the response body; a
// non-nil error is reported to the remote caller as a remote error string.
type Handler func(body []byte) ([]byte, error)

// ServerConfig tunes a wire server.
type ServerConfig struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// TLS, when non-nil, wraps the listener so every connection handshakes
	// TLS before the protocol handshake. Nil serves plaintext.
	TLS *tls.Config
	// QueueDepth bounds each connection's outbound frame queue (default
	// 1024). Topic messages that would overflow it are dropped for that
	// connection (slow consumer), mirroring the in-process bus's bounded
	// subscriber queues; control frames (acks, RPC responses) instead apply
	// backpressure up to WriteTimeout.
	QueueDepth int
	// WriteTimeout bounds one frame write plus control-frame queueing
	// (default 10s). A connection that cannot accept control traffic within
	// it is terminated.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the protocol handshake (default 5s).
	HandshakeTimeout time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	return c
}

// ServerStats counts a server's activity.
type ServerStats struct {
	// Accepted is the number of connections accepted over the lifetime.
	Accepted uint64
	// ActiveConns is the number of currently live connections.
	ActiveConns int
	// ActiveSubs is the number of currently live remote subscriptions.
	ActiveSubs int
	// MessagesSent counts topic message frames pushed to subscribers.
	MessagesSent uint64
	// SlowDrops counts topic messages dropped because a connection's
	// outbound queue was full — the wire's slow-consumer accounting.
	SlowDrops uint64
	// Publishes counts remote publishes forwarded onto the hub.
	Publishes uint64
	// Requests counts RPC calls served.
	Requests uint64
}

// Server is a wire endpoint over a hub bus.
type Server struct {
	hub network.Bus
	cfg ServerConfig
	ln  net.Listener

	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[*serverConn]struct{}
	closed   bool
	wg       sync.WaitGroup

	accepted  atomic.Uint64
	sent      atomic.Uint64
	slowDrops atomic.Uint64
	publishes atomic.Uint64
	requests  atomic.Uint64
	subCount  atomic.Int64
}

// Serve starts a wire server over the hub. The returned server is live:
// connections are accepted until Close.
func Serve(hub network.Bus, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
	}
	if cfg.TLS != nil {
		ln = tls.NewListener(ln, cfg.TLS)
	}
	s := &Server{
		hub:      hub,
		cfg:      cfg,
		ln:       ln,
		handlers: make(map[string]Handler),
		conns:    make(map[*serverConn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Handle mounts an RPC route. Routes may be added while serving; replacing
// an existing route swaps the handler atomically.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// handler looks up an RPC route.
func (s *Server) handler(method string) (Handler, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.handlers[method]
	return h, ok
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	active := len(s.conns)
	s.mu.Unlock()
	return ServerStats{
		Accepted:     s.accepted.Load(),
		ActiveConns:  active,
		ActiveSubs:   int(s.subCount.Load()),
		MessagesSent: s.sent.Load(),
		SlowDrops:    s.slowDrops.Load(),
		Publishes:    s.publishes.Load(),
		Requests:     s.requests.Load(),
	}
}

// Close stops accepting, terminates every connection, and waits for all
// serving goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.accepted.Add(1)
		c := &serverConn{
			srv:   s,
			conn:  conn,
			sendq: make(chan []byte, s.cfg.QueueDepth),
			done:  make(chan struct{}),
			subs:  make(map[uint64]*network.Subscription),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.serve()
	}
}

// serverConn is one accepted connection: a reader goroutine dispatching
// inbound frames, a writer goroutine draining the bounded outbound queue,
// and one forwarder goroutine per remote subscription.
type serverConn struct {
	srv   *Server
	conn  net.Conn
	name  string // remote identity from the handshake
	sendq chan []byte
	done  chan struct{}

	closeOnce sync.Once
	mu        sync.Mutex
	subs      map[uint64]*network.Subscription
	fwdWG     sync.WaitGroup
}

// close terminates the connection and detaches its subscriptions. Safe to
// call from any goroutine, any number of times.
func (c *serverConn) close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.conn.Close()
		c.mu.Lock()
		subs := make([]*network.Subscription, 0, len(c.subs))
		for _, sub := range c.subs {
			subs = append(subs, sub)
		}
		c.subs = make(map[uint64]*network.Subscription)
		c.mu.Unlock()
		for _, sub := range subs {
			sub.Cancel()
			c.srv.subCount.Add(-1)
		}
		c.srv.mu.Lock()
		delete(c.srv.conns, c)
		c.srv.mu.Unlock()
	})
}

func (c *serverConn) serve() {
	defer c.srv.wg.Done()
	defer c.close()

	if err := c.handshake(); err != nil {
		return
	}
	c.srv.wg.Add(1)
	go c.writeLoop()

	for {
		body, err := readFrame(c.conn)
		if err != nil {
			return
		}
		if err := c.dispatch(body); err != nil {
			return
		}
	}
}

// handshake validates the client hello and answers with a welcome.
func (c *serverConn) handshake() error {
	deadline := time.Now().Add(c.srv.cfg.HandshakeTimeout)
	c.conn.SetDeadline(deadline)
	defer c.conn.SetDeadline(time.Time{})

	body, err := readFrame(c.conn)
	if err != nil {
		return err
	}
	kind, d, err := splitKind(body)
	if err != nil {
		return err
	}
	if kind != kindHello {
		return fmt.Errorf("%w: first frame kind %d", ErrBadHandshake, kind)
	}
	hello, err := decodeHello(d)
	if err != nil {
		return err
	}
	if hello.version != ProtocolVersion {
		// Best effort: the peer learns why it was rejected only if the
		// write lands; either way the connection ends here.
		writeFrame(c.conn, (&responseMsg{errMsg: fmt.Sprintf("protocol version %d not supported (want %d)", hello.version, ProtocolVersion)}).encode())
		return fmt.Errorf("%w: client speaks %d, server %d", ErrVersionMismatch, hello.version, ProtocolVersion)
	}
	c.name = hello.name
	return writeFrame(c.conn, (&welcomeMsg{version: ProtocolVersion}).encode())
}

// dispatch handles one inbound frame. A returned error is terminal for the
// connection (malformed frames mean a faulty or hostile peer).
func (c *serverConn) dispatch(body []byte) error {
	kind, d, err := splitKind(body)
	if err != nil {
		return err
	}
	switch kind {
	case kindSubscribe:
		m, err := decodeSubscribe(d)
		if err != nil {
			return err
		}
		c.subscribe(m)
		return nil
	case kindUnsubscribe:
		m, err := decodeUnsubscribe(d)
		if err != nil {
			return err
		}
		c.mu.Lock()
		sub := c.subs[m.id]
		delete(c.subs, m.id)
		c.mu.Unlock()
		if sub != nil {
			sub.Cancel()
			c.srv.subCount.Add(-1)
		}
		return nil
	case kindPublish:
		m, err := decodePublish(d)
		if err != nil {
			return err
		}
		payload, err := decodePayload(m.payload)
		if err != nil {
			return err
		}
		c.srv.publishes.Add(1)
		// A closed hub is the only publish failure; the wire is done then.
		return c.srv.hub.Publish(m.topic, m.from, payload)
	case kindRequest:
		m, err := decodeRequest(d)
		if err != nil {
			return err
		}
		// Serve the call off the read loop so a slow handler (a big query)
		// never stalls the subscription stream sharing the connection.
		c.srv.wg.Add(1)
		go c.serveRequest(m)
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
}

// subscribe attaches a hub subscription and streams its deliveries to the
// peer. The ack frame is enqueued after the hub registration, so once the
// client observes it, subsequent publishes from any peer are guaranteed to
// reach this subscription.
func (c *serverConn) subscribe(m *subscribeMsg) {
	sub := c.srv.hub.Subscribe(m.topic, int(m.depth))
	c.mu.Lock()
	if old := c.subs[m.id]; old != nil {
		// Duplicate id: replace, releasing the old hub registration.
		old.Cancel()
		c.srv.subCount.Add(-1)
	}
	c.subs[m.id] = sub
	c.mu.Unlock()
	c.srv.subCount.Add(1)
	c.fwdWG.Add(1)
	go c.forward(m.id, sub)
	c.enqueueControl((&subscribedMsg{id: m.id}).encode())
}

// forward streams one subscription's hub deliveries to the peer until the
// subscription is cancelled or the connection dies.
func (c *serverConn) forward(subID uint64, sub *network.Subscription) {
	defer c.fwdWG.Done()
	for m := range sub.C {
		payload, err := encodePayload(m.Payload)
		if err != nil {
			// In-process payload the wire cannot carry — skip it; remote
			// peers only understand the canonical topic vocabulary.
			continue
		}
		frame := (&messageMsg{subID: subID, topic: m.Topic, from: m.From, payload: payload}).encode()
		select {
		case c.sendq <- frame:
			c.srv.sent.Add(1)
		default:
			c.srv.slowDrops.Add(1) // slow consumer: drop, as the hub would
		}
	}
}

// serveRequest runs one RPC call and enqueues its response.
func (c *serverConn) serveRequest(m *requestMsg) {
	defer c.srv.wg.Done()
	c.srv.requests.Add(1)
	resp := &responseMsg{id: m.id}
	if h, ok := c.srv.handler(m.method); ok {
		body, err := h(m.body)
		if err != nil {
			resp.errMsg = err.Error()
		} else {
			resp.body = body
		}
	} else {
		resp.errMsg = fmt.Sprintf("%v: %q", ErrUnknownMethod, m.method)
	}
	c.enqueueControl(resp.encode())
}

// enqueueControl queues a frame the protocol must not drop (acks, RPC
// responses). It applies backpressure up to WriteTimeout; a peer that
// cannot absorb control traffic in that window is terminated.
func (c *serverConn) enqueueControl(frame []byte) {
	t := time.NewTimer(c.srv.cfg.WriteTimeout)
	defer t.Stop()
	select {
	case c.sendq <- frame:
	case <-c.done:
	case <-t.C:
		c.close()
	}
}

// writeLoop drains the outbound queue onto the socket.
func (c *serverConn) writeLoop() {
	defer c.srv.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case frame := <-c.sendq:
			c.conn.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
			if err := writeFrame(c.conn, frame); err != nil {
				c.close()
				return
			}
		}
	}
}
