package bench

import (
	"strings"
	"testing"

	"dcert"
)

func TestRunCertifyGatesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("certifies 11k blocks; skipped under -short")
	}
	res, err := RunCertify(Small)
	if err != nil {
		t.Fatalf("RunCertify: %v", err)
	}
	if len(res.Points) != len(certifySegSizes) {
		t.Fatalf("%d points, want %d", len(res.Points), len(certifySegSizes))
	}
	for _, p := range res.Points {
		// Ecalls/block must track 1/K exactly: the run's block count is a
		// multiple of every K in the sweep, so there is no ceil slack.
		want := float64(res.Blocks/p.K) / float64(res.Blocks)
		if p.EcallsPerBlock != want {
			t.Fatalf("K=%d: %.4f ecalls/block, want %.4f", p.K, p.EcallsPerBlock, want)
		}
	}
	// Gate 1: the amortization curve — K=8 must model ≥2× the K=1
	// certified-blocks/s (the fixed per-Ecall cost dominates empty blocks).
	var k1, k8 CertifyPoint
	for _, p := range res.Points {
		if p.K == 1 {
			k1 = p
		}
		if p.K == 8 {
			k8 = p
		}
	}
	if k8.Speedup < 2 {
		t.Fatalf("K=8 modeled speedup %.2fx < 2x (K=1 %.1f blocks/s, K=8 %.1f blocks/s; fit fixed %.3f ms + %.3f ms/block)",
			k8.Speedup, k1.ModeledBlocksPerSec, k8.ModeledBlocksPerSec, res.EcallFixedMS, res.EcallPerBlockMS)
	}
	// Gate 2: measured bootstrap fetches equal the exact walk model and stay
	// under the 3·log2(n) sublinearity bound — far below the linear follower.
	measured := 0
	for _, b := range res.Bootstrap {
		if b.Modeled {
			continue
		}
		measured++
		if want := dcert.ModelBootstrapFetches(b.ChainLen, b.SegBlocks); b.Fetches != want {
			t.Fatalf("chain %d: %d fetches, model says %d", b.ChainLen, b.Fetches, want)
		}
		if b.Fetches > b.LogBound {
			t.Fatalf("chain %d: %d fetches beyond the 3·log2(n) bound %d", b.ChainLen, b.Fetches, b.LogBound)
		}
		if uint64(b.Fetches)*10 >= b.ChainLen {
			t.Fatalf("chain %d: %d fetches is not sublinear territory", b.ChainLen, b.Fetches)
		}
	}
	if measured < 2 {
		t.Fatalf("%d measured bootstrap points, want ≥2", measured)
	}
	res.Table().Fprint(&strings.Builder{})
	res.BootstrapTable().Fprint(&strings.Builder{})
}
