// Package dcert_test hosts the testing.B benchmarks that mirror the paper's
// evaluation, one per table/figure. They are per-operation microbenchmarks
// (ns/op of the operation each figure measures); the full experiment sweeps
// with the paper's parameter grids live in internal/bench and are driven by
// cmd/dcert-bench.
//
// Run with:
//
//	go test -bench=. -benchmem
package dcert_test

import (
	"fmt"
	"testing"

	"dcert"
	"dcert/internal/workload"
)

// benchDeployment builds a small deployment for benches.
func benchDeployment(b *testing.B, w dcert.Workload, withEnclaveCost bool) *dcert.Deployment {
	b.Helper()
	cfg := dcert.Config{
		Workload:  w,
		Contracts: 20,
		Accounts:  32,
		KeySpace:  500,
		Seed:      int64(w),
	}
	if withEnclaveCost {
		cfg.EnclaveCost = dcert.DefaultEnclaveCostModel()
	}
	dep, err := dcert.NewDeployment(cfg)
	if err != nil {
		b.Fatalf("NewDeployment: %v", err)
	}
	return dep
}

// BenchmarkTable1Setup measures deployment assembly under the Table 1
// defaults (registry, genesis, enclave init, attestation round trip).
func BenchmarkTable1Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dep, err := dcert.NewDeployment(dcert.Config{Workload: dcert.KVStore, Contracts: 20, Accounts: 8})
		if err != nil {
			b.Fatalf("NewDeployment: %v", err)
		}
		_ = dep
	}
}

// BenchmarkFig7Bootstrap measures the two clients' bootstrap operations: the
// superlight client's constant-cost certificate validation (cold = full
// attestation path, warm = cached report) vs the light client's linear
// header sync at two chain lengths.
func BenchmarkFig7Bootstrap(b *testing.B) {
	dep := benchDeployment(b, dcert.DoNothing, false)
	var lastHdr dcert.Header
	var lastCert *dcert.Certificate
	for i := 0; i < 200; i++ {
		blk, cert, err := dep.MineAndCertify(1)
		if err != nil {
			b.Fatalf("MineAndCertify: %v", err)
		}
		lastHdr, lastCert = blk.Header, cert
	}
	headers := dep.Miner().Store().Headers()

	b.Run("superlight-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			client := dep.NewSuperlightClient()
			if err := client.ValidateChain(&lastHdr, lastCert); err != nil {
				b.Fatalf("ValidateChain: %v", err)
			}
		}
	})
	b.Run("superlight-warm", func(b *testing.B) {
		// Warm path: the attestation report is already checked (the paper's
		// once-per-enclave rule, §4.3), so steady-state validation is the
		// certificate signature over the header digest.
		digest := dcert.BlockDigest(&lastHdr)
		for i := 0; i < b.N; i++ {
			if err := lastCert.VerifySignatureOnly(digest); err != nil {
				b.Fatalf("VerifySignatureOnly: %v", err)
			}
		}
	})
	for _, n := range []int{50, 200} {
		n := n
		b.Run(fmt.Sprintf("light-sync-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lc := dep.NewLightClient()
				if err := lc.Sync(headers[:n+1]); err != nil {
					b.Fatalf("Sync: %v", err)
				}
			}
		})
	}
}

// BenchmarkFig8CertConstruction measures full block-certificate construction
// (Alg. 1: outside pre-processing + in-enclave verification and signing) per
// workload at a fixed block size, with the calibrated enclave cost model.
func BenchmarkFig8CertConstruction(b *testing.B) {
	for _, kind := range workload.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			dep := benchDeployment(b, kind, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				txs, err := dep.GenerateBlockTxs(100)
				if err != nil {
					b.Fatalf("GenerateBlockTxs: %v", err)
				}
				blk, err := dep.Miner().Propose(txs)
				if err != nil {
					b.Fatalf("Propose: %v", err)
				}
				b.StartTimer()
				if _, _, err := dep.Issuer().ProcessBlock(blk); err != nil {
					b.Fatalf("ProcessBlock: %v", err)
				}
			}
		})
	}
}

// BenchmarkFig9BlockSize measures certificate construction at increasing
// block sizes for the two macro workloads.
func BenchmarkFig9BlockSize(b *testing.B) {
	for _, kind := range []dcert.Workload{dcert.KVStore, dcert.SmallBank} {
		for _, size := range []int{50, 100, 200} {
			kind, size := kind, size
			b.Run(fmt.Sprintf("%s-%d", kind, size), func(b *testing.B) {
				dep := benchDeployment(b, kind, true)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					txs, err := dep.GenerateBlockTxs(size)
					if err != nil {
						b.Fatalf("GenerateBlockTxs: %v", err)
					}
					blk, err := dep.Miner().Propose(txs)
					if err != nil {
						b.Fatalf("Propose: %v", err)
					}
					b.StartTimer()
					if _, _, err := dep.Issuer().ProcessBlock(blk); err != nil {
						b.Fatalf("ProcessBlock: %v", err)
					}
				}
			})
		}
	}
}

// fig10Deployment builds a deployment with n certified historical indexes.
func fig10Deployment(b *testing.B, n int) (*dcert.Deployment, []string) {
	b.Helper()
	dep := benchDeployment(b, dcert.KVStore, true)
	names := make([]string, n)
	for i := range names {
		name := fmt.Sprintf("hist-%d", i)
		names[i] = name
		if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
			return dcert.NewHistoricalIndex(name, "ct/")
		}); err != nil {
			b.Fatalf("AddIndex: %v", err)
		}
	}
	return dep, names
}

// BenchmarkFig10MultiIndex measures augmented vs hierarchical certification
// per block at 1 and 8 authenticated indexes.
func BenchmarkFig10MultiIndex(b *testing.B) {
	for _, n := range []int{1, 8} {
		for _, scheme := range []string{"augmented", "hierarchical"} {
			n, scheme := n, scheme
			b.Run(fmt.Sprintf("%s-%d", scheme, n), func(b *testing.B) {
				dep, names := fig10Deployment(b, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					txs, err := dep.GenerateBlockTxs(60)
					if err != nil {
						b.Fatalf("GenerateBlockTxs: %v", err)
					}
					blk, err := dep.Miner().Propose(txs)
					if err != nil {
						b.Fatalf("Propose: %v", err)
					}
					jobs, err := dep.PrepareIndexJobs(blk, names)
					if err != nil {
						b.Fatalf("PrepareIndexJobs: %v", err)
					}
					b.StartTimer()
					switch scheme {
					case "augmented":
						_, _, err = dep.Issuer().ProcessBlockAugmented(blk, jobs)
					case "hierarchical":
						_, _, _, err = dep.Issuer().ProcessBlockHierarchical(blk, jobs)
					}
					if err != nil {
						b.Fatalf("certify: %v", err)
					}
					b.StopTimer()
					if err := dep.SP().ProcessBlock(blk); err != nil {
						b.Fatalf("sp: %v", err)
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkFig11Query measures one verified historical query (SP query +
// client verification) on the DCert two-level index at two window sizes.
func BenchmarkFig11Query(b *testing.B) {
	dep := benchDeployment(b, dcert.KVStore, false)
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewHistoricalIndex("hist", "ct/")
	}); err != nil {
		b.Fatalf("AddIndex: %v", err)
	}
	for i := 0; i < 200; i++ {
		if _, _, err := dep.MineAndCertify(20); err != nil {
			b.Fatalf("MineAndCertify: %v", err)
		}
	}
	ix, err := dep.SP().Index("hist")
	if err != nil {
		b.Fatalf("Index: %v", err)
	}
	root, err := ix.Root()
	if err != nil {
		b.Fatalf("Root: %v", err)
	}
	key := fmt.Sprintf("ct/%s/kv/user-key-7", workload.ContractName(workload.KVStore, 0))

	for _, window := range []uint64{25, 150} {
		window := window
		b.Run(fmt.Sprintf("window-%d", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := dep.SP().HistoricalQuery("hist", key, 200-window, 200)
				if err != nil {
					b.Fatalf("HistoricalQuery: %v", err)
				}
				if err := dcert.VerifyHistorical(root, res); err != nil {
					b.Fatalf("VerifyHistorical: %v", err)
				}
			}
		})
	}
}

// BenchmarkHeadlineStorage reports the certificate and client storage sizes
// as allocations-free size computations (the 2.97 KB constant).
func BenchmarkHeadlineStorage(b *testing.B) {
	dep := benchDeployment(b, dcert.KVStore, false)
	blk, cert, err := dep.MineAndCertify(10)
	if err != nil {
		b.Fatalf("MineAndCertify: %v", err)
	}
	client := dep.NewSuperlightClient()
	if err := client.ValidateChain(&blk.Header, cert); err != nil {
		b.Fatalf("ValidateChain: %v", err)
	}
	b.ReportMetric(float64(client.StorageSize()), "storage-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if client.StorageSize() == 0 {
			b.Fatal("zero storage")
		}
	}
}
