package dcert_test

import (
	"fmt"
	"testing"
	"time"

	"dcert"
)

// Chaos over the wire: the same seeded fault plans the in-process chaos
// suite uses, but with superlight clients attached through real TCP
// connections. Faults inject at the hub — the transport seam every socket
// frame crosses — so drops, duplicates, and reordering constrain traffic
// that genuinely traveled the network, and the instrumentation counters
// must still reconcile exactly with the fault layer's own ledger.

// TestChaosNetSocketTransport runs a lossy certification plane with two
// remote followers over loopback TCP and asserts safety (each remote
// client's certified tip is byte-identical to the miner's), liveness
// (both converge despite 35% cert drops), and accounting (registry
// counters == injection ledger on every topic).
func TestChaosNetSocketTransport(t *testing.T) {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:   dcert.KVStore,
		Contracts:  4,
		Accounts:   8,
		Difficulty: 2,
		Seed:       808,
		KeySpace:   30,
	})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer dep.Net().Close()
	plane, err := dep.StartCertPlane(2)
	if err != nil {
		t.Fatalf("StartCertPlane: %v", err)
	}
	defer plane.Stop()
	// Attach the registry before the first publish so both ledgers observe
	// the same event stream from the start.
	reg, _ := dep.EnableObservability(nil)

	srv, err := dep.ServeWire(dcert.WireServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("ServeWire: %v", err)
	}
	defer srv.Close()

	dep.Net().SetFaults(&dcert.FaultPlan{
		Seed: 808,
		Rules: []dcert.FaultRule{
			{Topic: dcert.TopicCerts, Drop: 0.35, Duplicate: 0.35},
			{Topic: dcert.TopicCertRequests, Drop: 0.3, Duplicate: 0.2},
			{Topic: dcert.TopicBlocks, Drop: 0.2, Reorder: 0.4, ReorderDelay: 5 * time.Millisecond},
		},
	})

	// Two independent TCP clients, each with its own superlight state and
	// follower. Catch-up requests and responses cross the same faulty wire.
	type remote struct {
		wc       *dcert.WireClient
		client   *dcert.SuperlightClient
		follower *dcert.CertFollower
	}
	remotes := make([]*remote, 2)
	for i := range remotes {
		name := fmt.Sprintf("net-follower-%d", i)
		wc, err := dcert.DialWire(srv.Addr(), dcert.WireClientConfig{Name: name})
		if err != nil {
			t.Fatalf("DialWire %s: %v", name, err)
		}
		client, err := dcert.NewRemoteSuperlightClient(wc)
		if err != nil {
			t.Fatalf("NewRemoteSuperlightClient %s: %v", name, err)
		}
		follower := dcert.FollowCertsOver(wc, client, dcert.FollowerConfig{
			Name:          name,
			StallDeadline: 15 * time.Millisecond,
		})
		remotes[i] = &remote{wc: wc, client: client, follower: follower}
	}
	defer func() {
		for _, r := range remotes {
			r.follower.Stop()
			r.wc.Close()
		}
	}()

	for i := 0; i < 12; i++ {
		if _, err := plane.MineAndBroadcast(5); err != nil {
			t.Fatalf("MineAndBroadcast(%d): %v", i, err)
		}
	}

	tip := dep.Miner().Tip()
	for i, r := range remotes {
		if err := r.follower.WaitForHeight(tip.Header.Height, 30*time.Second); err != nil {
			t.Fatalf("remote %d liveness: %v (follower %+v)", i, err, r.follower.Stats())
		}
		hdr, cert := r.client.Latest()
		if hdr.Hash() != tip.Hash() {
			t.Fatalf("remote %d safety: client tip %s != miner tip %s", i, hdr.Hash(), tip.Hash())
		}
		if cert == nil || cert.Digest != dcert.BlockDigest(hdr) {
			t.Fatalf("remote %d safety: accepted certificate does not cover the adopted header", i)
		}
	}

	// Reconcile the instrumentation plane against the fault layer's own
	// injection ledger — now with socket traffic in the mix. The counters
	// live at the hub, which every wire frame passes through, so the
	// identity delivered = published - dropped - partitioned + duplicated
	// must hold exactly per topic.
	counter := func(name, topic string) uint64 {
		return reg.Counter(name, "", dcert.MetricLabel("topic", topic)).Value()
	}
	sawFaults := false
	for _, topic := range []string{dcert.TopicCerts, dcert.TopicCertRequests, dcert.TopicBlocks} {
		tally := dep.FaultTally(topic)
		if tally.Published == 0 && topic != dcert.TopicCertRequests {
			t.Fatalf("topic %s: fault plan observed no publishes", topic)
		}
		got := dcert.NetFaultTally{
			Published:   counter("dcert_net_published_total", topic),
			Dropped:     counter("dcert_net_dropped_total", topic),
			Partitioned: counter("dcert_net_partitioned_total", topic),
			Duplicated:  counter("dcert_net_duplicated_total", topic),
			Reordered:   counter("dcert_net_reordered_total", topic),
		}
		if got != tally {
			t.Fatalf("topic %s: registry counters %+v != injection ledger %+v", topic, got, tally)
		}
		delivered := counter("dcert_net_delivered_total", topic)
		want := tally.Published - tally.Dropped - tally.Partitioned + tally.Duplicated
		if delivered != want {
			t.Fatalf("topic %s: delivered %d, want published-dropped-partitioned+duplicated = %d (%+v)",
				topic, delivered, want, tally)
		}
		if tally.Dropped > 0 || tally.Duplicated > 0 || tally.Reordered > 0 {
			sawFaults = true
		}
	}
	if !sawFaults {
		t.Fatal("seeded plan injected no faults at all; reconciliation was vacuous")
	}

	// The wire itself must have carried the stream: each remote connection
	// subscribed and received topic frames.
	st := srv.Stats()
	if st.Accepted != 2 || st.MessagesSent == 0 {
		t.Fatalf("server stats %+v: expected 2 remote conns with topic traffic", st)
	}
}

// TestChaosNetSlowConsumer pins the wire's slow-consumer policy under
// chaos: a deliberately tiny server-side send queue forces drops at the
// socket (accounted in SlowDrops), while the follower still converges via
// catch-up — backpressure degrades a remote subscriber, never the node.
func TestChaosNetSlowConsumer(t *testing.T) {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:   dcert.KVStore,
		Contracts:  4,
		Accounts:   8,
		Difficulty: 2,
		Seed:       909,
		KeySpace:   30,
	})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	defer dep.Net().Close()
	plane, err := dep.StartCertPlane(1)
	if err != nil {
		t.Fatalf("StartCertPlane: %v", err)
	}
	defer plane.Stop()

	srv, err := dep.ServeWire(dcert.WireServerConfig{Addr: "127.0.0.1:0", QueueDepth: 1})
	if err != nil {
		t.Fatalf("ServeWire: %v", err)
	}
	defer srv.Close()

	wc, err := dcert.DialWire(srv.Addr(), dcert.WireClientConfig{Name: "slow"})
	if err != nil {
		t.Fatalf("DialWire: %v", err)
	}
	defer wc.Close()
	client, err := dcert.NewRemoteSuperlightClient(wc)
	if err != nil {
		t.Fatalf("NewRemoteSuperlightClient: %v", err)
	}
	follower := dcert.FollowCertsOver(wc, client, dcert.FollowerConfig{
		Name:          "slow",
		StallDeadline: 10 * time.Millisecond,
	})
	defer follower.Stop()

	for i := 0; i < 10; i++ {
		if _, err := plane.MineAndBroadcast(4); err != nil {
			t.Fatalf("MineAndBroadcast(%d): %v", i, err)
		}
	}
	tip := dep.Miner().Tip()
	if err := follower.WaitForHeight(tip.Header.Height, 30*time.Second); err != nil {
		t.Fatalf("liveness under backpressure: %v (follower %+v, server %+v)",
			err, follower.Stats(), srv.Stats())
	}
	hdr, _ := client.Latest()
	if hdr.Hash() != tip.Hash() {
		t.Fatalf("safety: client tip %s != miner tip %s", hdr.Hash(), tip.Hash())
	}
}
