package enclave

import (
	"errors"
	"testing"
	"time"

	"dcert/internal/attest"
	"dcert/internal/chash"
)

func newEnclave(t *testing.T, cost CostModel) (*Enclave, *attest.Authority) {
	t.Helper()
	a, err := attest.NewAuthority()
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	e, err := New([]byte("dcert-trusted-program-v1"), p, cost)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, a
}

func TestMeasurementDeterministic(t *testing.T) {
	if Measure([]byte("p")) != Measure([]byte("p")) {
		t.Fatal("measurement must be deterministic")
	}
	if Measure([]byte("p")) == Measure([]byte("q")) {
		t.Fatal("different programs must have different measurements")
	}
	e1, _ := newEnclave(t, CostModel{})
	if e1.Measurement() != Measure([]byte("dcert-trusted-program-v1")) {
		t.Fatal("enclave measurement mismatch")
	}
}

func TestSealedKeySignsInsideOnly(t *testing.T) {
	e, _ := newEnclave(t, CostModel{})
	digest := chash.Leaf([]byte("block digest"))
	var sig []byte
	err := e.Ecall(0, func(ctx *Context) error {
		var err error
		sig, err = ctx.Sign(digest)
		return err
	})
	if err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	if err := e.PublicKey().Verify(digest, sig); err != nil {
		t.Fatalf("signature must verify under pk_enc: %v", err)
	}
}

func TestEcallPropagatesError(t *testing.T) {
	e, _ := newEnclave(t, CostModel{})
	sentinel := errors.New("trusted failure")
	if err := e.Ecall(0, func(*Context) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
}

func TestQuoteBindsKeyAndMeasurement(t *testing.T) {
	e, a := newEnclave(t, CostModel{})
	q, err := e.Quote()
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	rep, err := a.Attest(q)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if err := rep.Verify(a.PublicKey(), e.Measurement(), e.PublicKey().Fingerprint()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestContextMeasurementMatchesEnclave(t *testing.T) {
	e, _ := newEnclave(t, CostModel{})
	if err := e.Ecall(0, func(ctx *Context) error {
		if ctx.Measurement() != e.Measurement() {
			t.Error("context measurement mismatch")
		}
		if !ctx.PublicKey().Equal(e.PublicKey()) {
			t.Error("context public key mismatch")
		}
		return nil
	}); err != nil {
		t.Fatalf("Ecall: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	e, _ := newEnclave(t, CostModel{})
	for i := 0; i < 3; i++ {
		if err := e.Ecall(1024, func(*Context) error { return nil }); err != nil {
			t.Fatalf("Ecall: %v", err)
		}
	}
	s := e.Stats()
	if s.Ecalls != 3 {
		t.Fatalf("Ecalls = %d", s.Ecalls)
	}
	if s.BytesIn != 3*1024 {
		t.Fatalf("BytesIn = %d", s.BytesIn)
	}
	e.ResetStats()
	if e.Stats().Ecalls != 0 {
		t.Fatal("ResetStats must zero the counters")
	}
}

func TestTransitionLatencyCharged(t *testing.T) {
	cost := CostModel{TransitionLatency: 200 * time.Microsecond}
	e, _ := newEnclave(t, cost)
	start := time.Now()
	if err := e.Ecall(0, func(*Context) error { return nil }); err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Microsecond {
		t.Fatalf("transition latency not applied: %v", elapsed)
	}
	if e.Stats().OverheadTime < 150*time.Microsecond {
		t.Fatalf("overhead accounting too low: %v", e.Stats().OverheadTime)
	}
}

func TestComputeFactorCharged(t *testing.T) {
	e, _ := newEnclave(t, CostModel{ComputeFactor: 3.0})
	busy := func(*Context) error {
		deadline := time.Now().Add(2 * time.Millisecond)
		for time.Now().Before(deadline) {
		}
		return nil
	}
	start := time.Now()
	if err := e.Ecall(0, busy); err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	elapsed := time.Since(start)
	// 2 ms of work at 3x should take ≈6 ms; allow generous slack.
	if elapsed < 4*time.Millisecond {
		t.Fatalf("compute factor not applied: %v", elapsed)
	}
	s := e.Stats()
	if s.OverheadTime < s.ExecTime {
		t.Fatalf("overhead %v should be ~2x exec %v at factor 3", s.OverheadTime, s.ExecTime)
	}
}

func TestCopyCostScalesWithInput(t *testing.T) {
	e, _ := newEnclave(t, CostModel{CopyPerKB: 10 * time.Microsecond})
	if err := e.Ecall(100*1024, func(*Context) error { return nil }); err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	if e.Stats().OverheadTime < 500*time.Microsecond {
		t.Fatalf("copy cost too low: %v", e.Stats().OverheadTime)
	}
}

func TestPagingPenaltyBeyondEPC(t *testing.T) {
	cost := CostModel{EPCBudget: 1024, PagingPerKB: 100 * time.Microsecond}
	e, _ := newEnclave(t, cost)
	if err := e.Ecall(1024, func(*Context) error { return nil }); err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	within := e.Stats().OverheadTime
	e.ResetStats()
	if err := e.Ecall(11*1024, func(*Context) error { return nil }); err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	beyond := e.Stats().OverheadTime
	if beyond <= within+500*time.Microsecond {
		t.Fatalf("paging penalty not applied: within=%v beyond=%v", within, beyond)
	}
}

func TestZeroCostModelIsFast(t *testing.T) {
	e, _ := newEnclave(t, CostModel{})
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := e.Ecall(1<<20, func(*Context) error { return nil }); err != nil {
			t.Fatalf("Ecall: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("zero cost model should add no overhead, took %v", elapsed)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	c := DefaultCostModel()
	if c.TransitionLatency <= 0 || c.ComputeFactor <= 1 || c.EPCBudget != 93<<20 {
		t.Fatalf("default cost model implausible: %+v", c)
	}
}

func TestNewRejectsNilPlatform(t *testing.T) {
	if _, err := New([]byte("p"), nil, CostModel{}); err == nil {
		t.Fatal("want error for nil platform")
	}
}

func TestDistinctEnclavesHaveDistinctKeys(t *testing.T) {
	e1, _ := newEnclave(t, CostModel{})
	e2, _ := newEnclave(t, CostModel{})
	if e1.PublicKey().Equal(e2.PublicKey()) {
		t.Fatal("enclave instances must generate distinct sealed keys")
	}
}

func TestVendorProfiles(t *testing.T) {
	if len(AllVendors()) != 4 {
		t.Fatalf("AllVendors = %d", len(AllVendors()))
	}
	for _, v := range AllVendors() {
		cm := CostModelFor(v)
		if v != VendorSGX && cm == (CostModel{}) {
			t.Fatalf("%s: empty cost model", v)
		}
		if cm.ComputeFactor < 1 {
			t.Fatalf("%s: compute factor %v < 1", v, cm.ComputeFactor)
		}
		if v.String() == "" {
			t.Fatalf("vendor %d has no name", int(v))
		}
	}
	if CostModelFor(VendorSGX) != DefaultCostModel() {
		t.Fatal("SGX profile must be the default model")
	}
}

func TestParseVendor(t *testing.T) {
	cases := map[string]Vendor{
		"sgx": VendorSGX, "": VendorSGX, "INTEL": VendorSGX,
		"trustzone": VendorTrustZone, "arm": VendorTrustZone,
		"multizone": VendorMultiZone, "risc-v": VendorMultiZone,
		"sev": VendorSEV, "amd": VendorSEV, "psp": VendorSEV,
	}
	for in, want := range cases {
		got, err := ParseVendor(in)
		if err != nil {
			t.Fatalf("ParseVendor(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseVendor(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseVendor("abacus"); err == nil {
		t.Fatal("want error for unknown vendor")
	}
}
