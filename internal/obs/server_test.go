package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(raw)
}

// TestDebugServerEndpoints drives every route of a live server.
func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dcert_test_total", "Test counter.", L("ci", "ci0")).Add(9)
	tr := NewTracer(8)
	sp := tr.Start("test.op", 0)
	sp.End()
	healthy := true
	srv, err := StartDebugServer("127.0.0.1:0", DebugServerConfig{
		Registry: reg,
		Tracer:   tr,
		Health: func() Health {
			return Health{OK: healthy, TipHeight: 7, CertAgeSeconds: 0.5}
		},
	})
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()

	code, body := getBody(t, srv.URL()+"/metrics")
	if code != 200 || !strings.Contains(body, `dcert_test_total{ci="ci0"} 9`) {
		t.Fatalf("/metrics = %d %q", code, body)
	}

	code, body = getBody(t, srv.URL()+"/debug/spans")
	if code != 200 {
		t.Fatalf("/debug/spans = %d", code)
	}
	var spans struct {
		Total uint64 `json:"total_recorded"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("span JSON: %v (%q)", err, body)
	}
	if spans.Total != 1 || len(spans.Spans) != 1 || spans.Spans[0].Name != "test.op" {
		t.Fatalf("spans = %+v", spans)
	}

	code, body = getBody(t, srv.URL()+"/healthz")
	if code != 200 || !strings.Contains(body, `"tip_height":7`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	healthy = false
	if code, _ = getBody(t, srv.URL()+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz = %d, want 503", code)
	}

	if code, body = getBody(t, srv.URL()+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

// TestDebugServerNoPortLeak: Close must release the port synchronously — a
// new server can rebind the exact same address immediately, across many
// start/stop cycles.
func TestDebugServerNoPortLeak(t *testing.T) {
	first, err := StartDebugServer("127.0.0.1:0", DebugServerConfig{})
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	addr := first.Addr()
	if err := first.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := 0; i < 20; i++ {
		srv, err := StartDebugServer(addr, DebugServerConfig{})
		if err != nil {
			t.Fatalf("cycle %d: rebind %s: %v", i, addr, err)
		}
		if code, _ := getBody(t, srv.URL()+"/healthz"); code != 200 {
			t.Fatalf("cycle %d: healthz = %d", i, code)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("cycle %d: Close: %v", i, err)
		}
	}
	// Double Close and nil Close are safe.
	var nilSrv *DebugServer
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

// TestDebugServerBadAddr: a malformed address errors instead of panicking.
func TestDebugServerBadAddr(t *testing.T) {
	if _, err := StartDebugServer("not-an-addr", DebugServerConfig{}); err == nil {
		t.Fatal("expected listen error")
	}
}

// TestDebugServerEmptyConfig: all-nil config still serves every route.
func TestDebugServerEmptyConfig(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0", DebugServerConfig{})
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()
	for _, route := range []string{"/metrics", "/debug/spans", "/healthz"} {
		if code, _ := getBody(t, srv.URL()+route); code != 200 {
			t.Fatalf("%s = %d with empty config", route, code)
		}
	}
	code, body := getBody(t, srv.URL()+"/debug/spans")
	if code != 200 || !strings.Contains(body, `"spans":[]`) {
		t.Fatalf("/debug/spans = %d %q", code, body)
	}
}
