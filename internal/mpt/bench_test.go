package mpt

import (
	"fmt"
	"testing"
)

// populated builds a trie with n keys and returns it hashed.
func populated(b *testing.B, n int) *Trie {
	b.Helper()
	tr := New()
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("acct-%08d", i)), []byte(fmt.Sprintf("balance-%d", i))); err != nil {
			b.Fatalf("Put: %v", err)
		}
	}
	if _, err := tr.Hash(); err != nil {
		b.Fatalf("Hash: %v", err)
	}
	return tr
}

func BenchmarkTriePut(b *testing.B) {
	tr := populated(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("acct-%08d", i%10000)), []byte(fmt.Sprintf("new-%d", i))); err != nil {
			b.Fatalf("Put: %v", err)
		}
	}
}

func BenchmarkTrieGet(b *testing.B) {
	tr := populated(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get([]byte(fmt.Sprintf("acct-%08d", i%10000))); err != nil {
			b.Fatalf("Get: %v", err)
		}
	}
}

func BenchmarkTrieHashAfterWrite(b *testing.B) {
	tr := populated(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("acct-%08d", i%10000)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			b.Fatalf("Put: %v", err)
		}
		if _, err := tr.Hash(); err != nil {
			b.Fatalf("Hash: %v", err)
		}
	}
}

// BenchmarkTrieCommit measures the post-execution root recomputation that
// statedb.Commit performs: a block-sized batch of writes lands, then Hash
// rehashes every dirty subtree. This is the path the parallel commit fans
// out across cores.
func BenchmarkTrieCommit(b *testing.B) {
	tr := populated(b, 10000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 512; j++ {
			k := (i*311 + j*17) % 10000
			if err := tr.Put([]byte(fmt.Sprintf("acct-%08d", k)), []byte(fmt.Sprintf("c%d-%d", i, j))); err != nil {
				b.Fatalf("Put: %v", err)
			}
		}
		b.StartTimer()
		if _, err := tr.Hash(); err != nil {
			b.Fatalf("Hash: %v", err)
		}
	}
}

func BenchmarkWitnessForKeys(b *testing.B) {
	tr := populated(b, 10000)
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("acct-%08d", i*311%10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.WitnessForKeys(keys); err != nil {
			b.Fatalf("WitnessForKeys: %v", err)
		}
	}
}

func BenchmarkStatelessUpdate(b *testing.B) {
	tr := populated(b, 10000)
	root, err := tr.Hash()
	if err != nil {
		b.Fatalf("Hash: %v", err)
	}
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("acct-%08d", i*311%10000))
	}
	w, err := tr.WitnessForKeys(keys)
	if err != nil {
		b.Fatalf("WitnessForKeys: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := NewPartial(root, w)
		for _, k := range keys {
			if err := pt.Put(k, []byte("updated")); err != nil {
				b.Fatalf("Put: %v", err)
			}
		}
		if _, err := pt.Hash(); err != nil {
			b.Fatalf("Hash: %v", err)
		}
	}
}
