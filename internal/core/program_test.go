package core

import (
	"errors"
	"fmt"
	"testing"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/enclave"
	"dcert/internal/workload"
)

// ecall runs a trusted function in the env's issuer enclave.
func ecall(t *testing.T, e *env, fn func(ctx *enclave.Context) error) error {
	t.Helper()
	return e.issuer.Enclave().Ecall(0, fn)
}

func TestEcallSigGenRejectsWrongGenesis(t *testing.T) {
	e := newEnv(t, workload.DoNothing, enclave.CostModel{})
	blk := e.mine(t, 2)

	// Build a forged "genesis" (height 0) that is not the hard-coded one.
	forgedGenesis := &chain.Block{Header: chain.Header{Height: 0, Time: 999}}
	res, err := e.issuer.Node().State().ExecuteBlock(e.issuer.Node().Registry(), blk.Txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.issuer.Node().State().UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	err = ecall(t, e, func(ctx *enclave.Context) error {
		_, err := e.issuer.Program().EcallSigGen(ctx, forgedGenesis, nil, blk, proof)
		return err
	})
	if !errors.Is(err, ErrGenesisMismatch) {
		t.Fatalf("want ErrGenesisMismatch, got %v", err)
	}
}

func TestEcallSigGenRejectsMissingPrevCert(t *testing.T) {
	e := newEnv(t, workload.DoNothing, enclave.CostModel{})
	// Advance past genesis.
	b1 := e.mine(t, 2)
	if _, _, err := e.issuer.ProcessBlock(b1); err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	b2 := e.mine(t, 2)
	res, err := e.issuer.Node().State().ExecuteBlock(e.issuer.Node().Registry(), b2.Txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.issuer.Node().State().UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	// Previous block is height 1 (not genesis) but no certificate supplied:
	// the recursion base must not be skippable.
	err = ecall(t, e, func(ctx *enclave.Context) error {
		_, err := e.issuer.Program().EcallSigGen(ctx, b1, nil, b2, proof)
		return err
	})
	if !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("want ErrBadCertificate, got %v", err)
	}
}

func TestEcallSigGenRejectsSkippedHeight(t *testing.T) {
	e := newEnv(t, workload.DoNothing, enclave.CostModel{})
	b1 := e.mine(t, 2)
	cert1, _, err := e.issuer.ProcessBlock(b1)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	b2 := e.mine(t, 2)
	if _, _, err := e.issuer.ProcessBlock(b2); err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	b3 := e.mine(t, 2)
	res, err := e.issuer.Node().State().ExecuteBlock(e.issuer.Node().Registry(), b3.Txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.issuer.Node().State().UpdateProofFor(res)
	if err != nil {
		t.Fatalf("UpdateProofFor: %v", err)
	}
	// Claim b3 extends b1 (skipping b2): linkage check must fire.
	err = ecall(t, e, func(ctx *enclave.Context) error {
		_, err := e.issuer.Program().EcallSigGen(ctx, b1, cert1, b3, proof)
		return err
	})
	if !errors.Is(err, chain.ErrBadBlock) {
		t.Fatalf("want ErrBadBlock, got %v", err)
	}
}

func TestHierarchicalIndexRequiresCachedWrites(t *testing.T) {
	// A hierarchical index Ecall for a block whose write set was never
	// established inside THIS enclave must fail: the enclave cannot derive
	// index write data from an unverified block.
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	if err := e.issuer.Program().RegisterUpdater(mockIndex{name: "m"}); err != nil {
		t.Fatalf("RegisterUpdater: %v", err)
	}
	b1 := e.mine(t, 3)
	cert1, _, err := e.issuer.ProcessBlock(b1)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	// Evict the cache by certifying more blocks than the cache holds.
	for i := 0; i < 5; i++ {
		blk := e.mine(t, 1)
		if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
	}
	genesis, err := e.issuer.Node().Store().Get(e.issuer.Node().Store().Genesis())
	if err != nil {
		t.Fatalf("Get genesis: %v", err)
	}
	in := &IndexInput{Updater: "m", PrevRoot: GenesisIndexRoot, NewRoot: chash.Leaf([]byte("x"))}
	err = ecall(t, e, func(ctx *enclave.Context) error {
		_, err := e.issuer.Program().EcallHierarchicalIndex(ctx, genesis, b1, cert1, in)
		return err
	})
	if err == nil {
		t.Fatal("want error for evicted write-set cache")
	}
}

func TestProgramIDBindsParameters(t *testing.T) {
	e := newEnv(t, workload.DoNothing, enclave.CostModel{})
	prog := e.issuer.Program()
	id1 := prog.ID()

	// A program over a different genesis must have a different identity
	// (and therefore a different enclave measurement).
	otherGenesis := chash.Leaf([]byte("other chain"))
	id2 := ProgramID(otherGenesis, e.authority.PublicKey(), e.params)
	if string(id1) == string(id2) {
		t.Fatal("program identity must bind the genesis")
	}
	if enclave.Measure(id1) == enclave.Measure(id2) {
		t.Fatal("measurements must differ across program identities")
	}
}

func TestWriteCacheEviction(t *testing.T) {
	prog := NewTrustedProgram(chash.Zero, nil, consensus.Params{}, nil)
	for i := 0; i < writeCacheLimit+3; i++ {
		prog.cacheWrites(chash.Leaf([]byte(fmt.Sprintf("b%d", i))), map[string][]byte{"k": []byte("v")})
	}
	count := 0
	for i := 0; i < writeCacheLimit+3; i++ {
		if _, ok := prog.lookupWrites(chash.Leaf([]byte(fmt.Sprintf("b%d", i)))); ok {
			count++
		}
	}
	if count > writeCacheLimit {
		t.Fatalf("cache holds %d entries, limit %d", count, writeCacheLimit)
	}
}
