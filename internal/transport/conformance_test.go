package transport_test

import (
	"testing"
	"time"

	"dcert/internal/network"
	"dcert/internal/transport"
	"dcert/internal/transport/conformance"
)

// TestConformanceInProcess runs the shared bus contract against the
// in-process fabric — the reference implementation.
func TestConformanceInProcess(t *testing.T) {
	conformance.Run(t, func(t *testing.T) conformance.Fabric {
		n := network.New()
		t.Cleanup(n.Close)
		return conformance.InProcess{Network: n}
	})
}

// tcpFabric routes the bus API through a real socket: an in-process hub
// behind a transport.Server, driven via a transport.Client. Fault controls
// act on the hub — exactly where they act in a deployed node — so fault
// rules constrain traffic that genuinely crossed TCP.
type tcpFabric struct {
	*transport.Client
	hub *network.Network
}

func (f *tcpFabric) SetFaults(plan *network.FaultPlan)          { f.hub.SetFaults(plan) }
func (f *tcpFabric) Partition(topic string)                     { f.hub.Partition(topic) }
func (f *tcpFabric) Heal(topic string)                          { f.hub.Heal(topic) }
func (f *tcpFabric) FaultTally(topic string) network.FaultTally { return f.hub.FaultTally(topic) }

// Sync flushes a round trip: the server processes connection frames in
// order, so once any RPC issued after our publishes has been answered, the
// hub (and its fault tally) has seen every one of them.
func (f *tcpFabric) Sync() { f.Client.Request("conformance/ping", nil) }

func newTCPFabric(t *testing.T) conformance.Fabric {
	t.Helper()
	hub := network.New()
	srv, err := transport.Serve(hub, transport.ServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	srv.Handle("conformance/ping", func([]byte) ([]byte, error) { return nil, nil })
	client, err := transport.Dial(srv.Addr(), transport.ClientConfig{Name: "conformance"})
	if err != nil {
		srv.Close()
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		hub.Close()
	})
	return &tcpFabric{Client: client, hub: hub}
}

// TestConformanceTCP runs the identical contract over real sockets.
func TestConformanceTCP(t *testing.T) {
	conformance.Run(t, newTCPFabric)
}

// TestTCPCrossClientDelivery is wire-specific glue the shared suite cannot
// express with one connection: a publish from one client must reach a
// subscriber on a different connection of the same server.
func TestTCPCrossClientDelivery(t *testing.T) {
	hub := network.New()
	defer hub.Close()
	srv, err := transport.Serve(hub, transport.ServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	sender, err := transport.Dial(srv.Addr(), transport.ClientConfig{Name: "sender"})
	if err != nil {
		t.Fatalf("dial sender: %v", err)
	}
	defer sender.Close()
	receiver, err := transport.Dial(srv.Addr(), transport.ClientConfig{Name: "receiver"})
	if err != nil {
		t.Fatalf("dial receiver: %v", err)
	}
	defer receiver.Close()

	sub := receiver.Subscribe("cross", 8)
	defer sub.Cancel()
	if err := sender.Publish("cross", "sender", []byte("hello")); err != nil {
		t.Fatalf("publish: %v", err)
	}
	select {
	case m := <-sub.C:
		if string(m.Payload.([]byte)) != "hello" || m.From != "sender" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cross-connection delivery never arrived")
	}

	// An in-process hub subscriber sees remote publishes too: the wire and
	// the node's internal services share one fabric.
	local := hub.Subscribe("cross2", 8)
	defer local.Cancel()
	if err := sender.Publish("cross2", "sender", []byte("to-hub")); err != nil {
		t.Fatalf("publish: %v", err)
	}
	select {
	case m := <-local.C:
		if string(m.Payload.([]byte)) != "to-hub" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hub-side delivery never arrived")
	}
}

// TestTCPServerStats exercises the wire's slow-consumer and RPC accounting.
func TestTCPServerStats(t *testing.T) {
	hub := network.New()
	defer hub.Close()
	srv, err := transport.Serve(hub, transport.ServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	srv.Handle("echo", func(b []byte) ([]byte, error) { return b, nil })

	client, err := transport.Dial(srv.Addr(), transport.ClientConfig{Name: "stats"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	sub := client.Subscribe("stats-topic", 4)
	defer sub.Cancel()
	for i := 0; i < 10; i++ {
		if err := client.Publish("stats-topic", "p", []byte{byte(i)}); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	if _, err := client.Request("echo", []byte("x")); err != nil {
		t.Fatalf("echo: %v", err)
	}

	st := srv.Stats()
	if st.Accepted != 1 || st.ActiveConns != 1 || st.ActiveSubs != 1 {
		t.Fatalf("stats = %+v, want 1 conn with 1 sub", st)
	}
	if st.Publishes != 10 || st.Requests != 1 {
		t.Fatalf("stats = %+v, want 10 publishes and 1 request", st)
	}
	// The per-subscription forwarder runs asynchronously off the hub queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().MessagesSent == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want topic messages sent", srv.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
