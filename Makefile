# DCert reproduction — build and test tiers.
#
# tier1: the fast correctness gate (build + unit/integration tests).
# tier2: the robustness gate — formatting, vet, and the full suite under the
#        race detector, which is what arms the chaos tests (chaos_test.go
#        drives a multi-CI deployment through seeded fault plans and is only
#        considered "passed" when it survives -race).

GO ?= go

.PHONY: all tier1 tier2 chaos chaos-obs chaos-disk chaos-net fmt vet bench bench-state bench-serving bench-certify bench-json fuzz-wire clean

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test -shuffle=on ./...

tier2: fmt vet
	$(GO) test -race ./...

# The chaos suite alone (subset of tier2), for iterating on fault plans.
# -count=1 defeats the test cache: fault plans are seeded but scheduling is
# not, so a cached pass proves nothing about the current build.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' -v .

# Chaos with the instrumentation plane attached: asserts the fault fabric's
# registry counters reconcile exactly with the seeded fault plan's injection
# ledger (injected drops == counted drops, delivered = published - dropped -
# partitioned + duplicated).
chaos-obs:
	$(GO) test -race -count=1 -run 'TestChaosFaultCounterReconciliation' -v .

# Disk-fault chaos: seeded fault plans (failed/short writes, failed/lying
# fsyncs, power cuts with corrupted torn tails) against the durable storage
# engine, asserting crash recovery always yields a gapless certified prefix
# and the resumed issuer never double-signs a recovered height.
chaos-disk:
	$(GO) test -race -count=1 -run 'TestChaosDisk' -v .

# Chaos over the wire transport: seeded fault plans constrain traffic that
# genuinely crossed TCP sockets (remote followers attached via DialWire),
# with registry counters reconciled against the fault ledger, plus the
# cross-process test that spawns real dcert-node/dcert-query subprocesses
# over loopback and SIGKILLs the node mid-run.
chaos-net:
	$(GO) test -race -count=1 -run 'TestChaosNet|TestCrossProcess' -v .

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# State-layer hashing microbenchmarks (allocs/op for the hashing core and the
# Merkle commit paths). Compare against the seed numbers in EXPERIMENTS.md.
bench-state:
	$(GO) test -run='^$$' -bench='Sum|Node|Leaf|Multiproof|TrieCommit|MHTBuild' \
		-benchmem ./internal/chash/ ./internal/smt/ ./internal/mpt/ ./internal/mht/

# Serving-plane experiment: 10k verifying clients against the sharded SP
# fleet vs the single SP, plus the singleflight-burst and batched-multiproof
# micro-measurements. Compare against EXPERIMENTS.md / BENCH_serving.json.
bench-serving:
	$(GO) run ./cmd/dcert-bench -exp serving -json BENCH_serving.json

# Segment-certification experiment: the K-block amortization curve
# (ecalls/block ≈ 1/K, modeled certified-blocks/s from the fitted per-Ecall
# cost) plus the sublinear-bootstrap fetch counts at 1k/10k/100k blocks.
# Compare against EXPERIMENTS.md / BENCH_certify.json; the ≥2×-at-K=8 and
# sublinearity gates live in internal/bench's TestRunCertifyGatesHold.
bench-certify:
	$(GO) run ./cmd/dcert-bench -exp certify -json BENCH_certify.json

# Throughput experiments with machine-readable artifacts.
bench-json:
	$(GO) run ./cmd/dcert-bench -exp pipeline -json BENCH_pipeline.json
	$(GO) run ./cmd/dcert-bench -exp state -json BENCH_state.json
	$(GO) run ./cmd/dcert-bench -exp serving -json BENCH_serving.json
	$(GO) run ./cmd/dcert-bench -exp certify -json BENCH_certify.json

# Fuzz smoke for the query wire codecs (the batch multiproof decoder and the
# canonical request round trip). Short budgets: CI regression surface, not a
# campaign — run with a longer -fuzztime locally when touching the codecs.
fuzz-wire:
	$(GO) test -run='^$$' -fuzz='^FuzzUnmarshalBatchStateResult$$' -fuzztime=10s ./internal/query/
	$(GO) test -run='^$$' -fuzz='^FuzzUnmarshalRequest$$' -fuzztime=10s ./internal/query/
	$(GO) test -run='^$$' -fuzz='^FuzzUnmarshalSegmentCert$$' -fuzztime=10s ./internal/core/

clean:
	$(GO) clean ./...
