package network

import (
	"testing"
	"time"

	"dcert/internal/obs"
)

// TestFaultCountersReconcile publishes through a seeded fault plan with an
// instrumented fabric and checks the registry counters agree exactly with the
// fault layer's own ledger — and that the ledger accounts for every publish.
func TestFaultCountersReconcile(t *testing.T) {
	n := New()
	defer n.Close()
	reg := obs.NewRegistry()
	n.Instrument(reg)
	n.SetFaults(&FaultPlan{
		Seed: 42,
		Rules: []FaultRule{
			{Topic: "chaos", Drop: 0.3, Duplicate: 0.2, Reorder: 0.2},
		},
	})

	sub := n.Subscribe("chaos", 4096)
	defer sub.Cancel()

	const published = 500
	for i := 0; i < published; i++ {
		if err := n.Publish("chaos", "pub", i); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}

	tally := n.FaultTally("chaos")
	if tally.Published != published {
		t.Fatalf("tally published = %d, want %d", tally.Published, published)
	}
	if tally.Dropped == 0 || tally.Duplicated == 0 || tally.Reordered == 0 {
		t.Fatalf("seeded plan injected nothing: %+v", tally)
	}

	counter := func(name string) uint64 {
		return reg.Counter(name, "", obs.L("topic", "chaos")).Value()
	}
	if got := counter("dcert_net_published_total"); got != tally.Published {
		t.Errorf("published counter = %d, tally %d", got, tally.Published)
	}
	if got := counter("dcert_net_dropped_total"); got != tally.Dropped {
		t.Errorf("dropped counter = %d, tally %d", got, tally.Dropped)
	}
	if got := counter("dcert_net_duplicated_total"); got != tally.Duplicated {
		t.Errorf("duplicated counter = %d, tally %d", got, tally.Duplicated)
	}
	if got := counter("dcert_net_reordered_total"); got != tally.Reordered {
		t.Errorf("reordered counter = %d, tally %d", got, tally.Reordered)
	}
	// Delivery fan-outs: every non-dropped publish delivers once, plus one
	// extra per duplication.
	wantDelivered := tally.Published - tally.Dropped + tally.Duplicated
	if got := counter("dcert_net_delivered_total"); got != wantDelivered {
		t.Errorf("delivered counter = %d, want %d", got, wantDelivered)
	}
}

// TestPartitionCounted cuts a topic and checks partition losses are tallied
// separately from rule drops.
func TestPartitionCounted(t *testing.T) {
	n := New()
	defer n.Close()
	reg := obs.NewRegistry()
	n.Instrument(reg)
	n.SetFaults(&FaultPlan{})

	sub := n.Subscribe("certs", 16)
	defer sub.Cancel()

	n.Partition("certs")
	for i := 0; i < 3; i++ {
		if err := n.Publish("certs", "ci", i); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	n.Heal("certs")
	if err := n.Publish("certs", "ci", 99); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	tally := n.FaultTally("certs")
	if tally.Partitioned != 3 || tally.Dropped != 0 || tally.Published != 4 {
		t.Fatalf("tally = %+v, want 3 partitioned / 0 dropped / 4 published", tally)
	}
	if got := reg.Counter("dcert_net_partitioned_total", "", obs.L("topic", "certs")).Value(); got != 3 {
		t.Errorf("partitioned counter = %d, want 3", got)
	}
	select {
	case m := <-sub.C:
		if m.Payload != 99 {
			t.Errorf("payload = %v, want 99", m.Payload)
		}
	case <-time.After(time.Second):
		t.Error("healed publish not delivered")
	}
}

// TestUninstrumentedFabric checks the fabric works with no registry attached
// (nil netObs path) and that FaultTally is zero without a plan.
func TestUninstrumentedFabric(t *testing.T) {
	n := New()
	defer n.Close()
	sub := n.Subscribe("blocks", 4)
	defer sub.Cancel()
	if err := n.Publish("blocks", "miner", "b1"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	select {
	case <-sub.C:
	case <-time.After(time.Second):
		t.Fatal("delivery missing")
	}
	if tally := n.FaultTally("blocks"); tally != (FaultTally{}) {
		t.Fatalf("tally without plan = %+v, want zero", tally)
	}
}
