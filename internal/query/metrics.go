package query

import "dcert/internal/obs"

// Query-protocol instrumentation. Both sides stay uninstrumented (nil
// instruments, one branch per record) until Instrument attaches them to a
// registry.

// requesterObs bundles the client-side counters.
type requesterObs struct {
	requests *obs.Counter
	retries  *obs.Counter
	timeouts *obs.Counter
	failures *obs.Counter
	rttSec   *obs.Histogram
}

// Instrument attaches the requester to a metrics registry under a client
// identity label. Call before issuing requests.
func (r *Requester) Instrument(reg *obs.Registry, id string) {
	r.met = requesterObs{
		requests: reg.Counter("dcert_query_requests_total",
			"Query round trips started.", obs.L("client", id)),
		retries: reg.Counter("dcert_query_retries_total",
			"Attempts beyond each round trip's first.", obs.L("client", id)),
		timeouts: reg.Counter("dcert_query_timeouts_total",
			"Attempts that ran out their per-attempt timeout.", obs.L("client", id)),
		failures: reg.Counter("dcert_query_failures_total",
			"Round trips that exhausted retries or failed terminally.", obs.L("client", id)),
		rttSec: reg.Histogram("dcert_query_rtt_seconds",
			"Latency of successful query round trips.", nil, obs.L("client", id)),
	}
}

// serverObs bundles the SP-side cache counters.
type serverObs struct {
	computed *obs.Counter
	replayed *obs.Counter
}

// Instrument attaches the server to a metrics registry under an SP identity
// label, exposing idempotent-cache hit rates.
func (s *Server) Instrument(reg *obs.Registry, id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = serverObs{
		computed: reg.Counter("dcert_sp_responses_total",
			"Query responses by cache outcome.", obs.L("sp", id), obs.L("cache", "miss")),
		replayed: reg.Counter("dcert_sp_responses_total",
			"Query responses by cache outcome.", obs.L("sp", id), obs.L("cache", "hit")),
	}
	s.rcache.Instrument(reg, id)
}
