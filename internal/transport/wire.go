package transport

import (
	"errors"
	"fmt"

	"dcert/internal/chash"
)

// Protocol messages. Every frame body starts with a one-byte kind; the rest
// is the kind-specific encoding (chash canonical codec, like every other
// DCert wire format). The protocol is strictly client-initiated except for
// kindMessage, which the server pushes for topic deliveries.

// Protocol errors.
var (
	// ErrBadHandshake is returned when the peer's hello/welcome is malformed
	// or carries the wrong magic.
	ErrBadHandshake = errors.New("transport: bad handshake")
	// ErrVersionMismatch is returned when the peer speaks an unsupported
	// protocol version.
	ErrVersionMismatch = errors.New("transport: protocol version mismatch")
	// ErrUnknownKind is returned for an unrecognized message kind.
	ErrUnknownKind = errors.New("transport: unknown message kind")
)

// protocolMagic identifies a DCert wire stream ("DCRT").
const protocolMagic uint32 = 0x44435254

// ProtocolVersion is the wire protocol version spoken by this build. The
// handshake rejects any other version — versioning is strict until there
// are two versions to negotiate between.
const ProtocolVersion uint32 = 1

// Message kinds.
const (
	kindHello       byte = 1 // client → server: magic, version, client name
	kindWelcome     byte = 2 // server → client: magic, version accepted
	kindSubscribe   byte = 3 // client → server: register a topic subscription
	kindSubscribed  byte = 4 // server → client: subscription is live
	kindUnsubscribe byte = 5 // client → server: drop a subscription
	kindPublish     byte = 6 // client → server: publish onto the hub
	kindMessage     byte = 7 // server → client: one topic delivery
	kindRequest     byte = 8 // client → server: RPC call
	kindResponse    byte = 9 // server → client: RPC answer
)

// helloMsg opens a connection.
type helloMsg struct {
	version uint32
	name    string // client identity, diagnostics only
}

func (m *helloMsg) encode() []byte {
	e := chash.NewEncoder(16 + len(m.name))
	e.PutByte(kindHello)
	e.PutUint32(protocolMagic)
	e.PutUint32(m.version)
	e.PutString(m.name)
	return e.Bytes()
}

// decodeHello parses a hello body (kind byte already consumed by dispatch,
// so d is positioned at the magic).
func decodeHello(d *chash.Decoder) (*helloMsg, error) {
	magic, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if magic != protocolMagic {
		return nil, fmt.Errorf("%w: magic %08x", ErrBadHandshake, magic)
	}
	var m helloMsg
	if m.version, err = d.Uint32(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if m.name, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	return &m, nil
}

// welcomeMsg accepts a connection.
type welcomeMsg struct {
	version uint32
}

func (m *welcomeMsg) encode() []byte {
	e := chash.NewEncoder(16)
	e.PutByte(kindWelcome)
	e.PutUint32(protocolMagic)
	e.PutUint32(m.version)
	return e.Bytes()
}

func decodeWelcome(d *chash.Decoder) (*welcomeMsg, error) {
	magic, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if magic != protocolMagic {
		return nil, fmt.Errorf("%w: magic %08x", ErrBadHandshake, magic)
	}
	var m welcomeMsg
	if m.version, err = d.Uint32(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	return &m, nil
}

// subscribeMsg registers a topic subscription under a client-chosen id.
type subscribeMsg struct {
	id    uint64
	topic string
	depth uint32
}

func (m *subscribeMsg) encode() []byte {
	e := chash.NewEncoder(32 + len(m.topic))
	e.PutByte(kindSubscribe)
	e.PutUint64(m.id)
	e.PutString(m.topic)
	e.PutUint32(m.depth)
	return e.Bytes()
}

func decodeSubscribe(d *chash.Decoder) (*subscribeMsg, error) {
	var m subscribeMsg
	var err error
	if m.id, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("transport: subscribe: %w", err)
	}
	if m.topic, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("transport: subscribe: %w", err)
	}
	if m.depth, err = d.Uint32(); err != nil {
		return nil, fmt.Errorf("transport: subscribe: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("transport: subscribe: %w", err)
	}
	return &m, nil
}

// subscribedMsg acknowledges a live subscription. Subscribe is synchronous
// on the client so that a publish issued after Subscribe returns is
// guaranteed to reach the new subscriber — the same happens-before edge the
// in-process bus gives for free.
type subscribedMsg struct {
	id uint64
}

func (m *subscribedMsg) encode() []byte {
	e := chash.NewEncoder(16)
	e.PutByte(kindSubscribed)
	e.PutUint64(m.id)
	return e.Bytes()
}

func decodeSubscribed(d *chash.Decoder) (*subscribedMsg, error) {
	var m subscribedMsg
	var err error
	if m.id, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("transport: subscribed: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("transport: subscribed: %w", err)
	}
	return &m, nil
}

// unsubscribeMsg drops a subscription (fire-and-forget).
type unsubscribeMsg struct {
	id uint64
}

func (m *unsubscribeMsg) encode() []byte {
	e := chash.NewEncoder(16)
	e.PutByte(kindUnsubscribe)
	e.PutUint64(m.id)
	return e.Bytes()
}

func decodeUnsubscribe(d *chash.Decoder) (*unsubscribeMsg, error) {
	var m unsubscribeMsg
	var err error
	if m.id, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("transport: unsubscribe: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("transport: unsubscribe: %w", err)
	}
	return &m, nil
}

// publishMsg carries one client publish onto the server's hub.
type publishMsg struct {
	topic   string
	from    string
	payload []byte // tagged payload encoding (payload.go)
}

func (m *publishMsg) encode() []byte {
	e := chash.NewEncoder(32 + len(m.topic) + len(m.from) + len(m.payload))
	e.PutByte(kindPublish)
	e.PutString(m.topic)
	e.PutString(m.from)
	e.PutBytes(m.payload)
	return e.Bytes()
}

func decodePublish(d *chash.Decoder) (*publishMsg, error) {
	var m publishMsg
	var err error
	if m.topic, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("transport: publish: %w", err)
	}
	if m.from, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("transport: publish: %w", err)
	}
	if m.payload, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("transport: publish: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("transport: publish: %w", err)
	}
	return &m, nil
}

// messageMsg pushes one topic delivery to a subscriber.
type messageMsg struct {
	subID   uint64
	topic   string
	from    string
	payload []byte
}

func (m *messageMsg) encode() []byte {
	e := chash.NewEncoder(40 + len(m.topic) + len(m.from) + len(m.payload))
	e.PutByte(kindMessage)
	e.PutUint64(m.subID)
	e.PutString(m.topic)
	e.PutString(m.from)
	e.PutBytes(m.payload)
	return e.Bytes()
}

func decodeMessage(d *chash.Decoder) (*messageMsg, error) {
	var m messageMsg
	var err error
	if m.subID, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("transport: message: %w", err)
	}
	if m.topic, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("transport: message: %w", err)
	}
	if m.from, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("transport: message: %w", err)
	}
	if m.payload, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("transport: message: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("transport: message: %w", err)
	}
	return &m, nil
}

// requestMsg is one RPC call.
type requestMsg struct {
	id     uint64
	method string
	body   []byte
}

func (m *requestMsg) encode() []byte {
	e := chash.NewEncoder(32 + len(m.method) + len(m.body))
	e.PutByte(kindRequest)
	e.PutUint64(m.id)
	e.PutString(m.method)
	e.PutBytes(m.body)
	return e.Bytes()
}

func decodeRequest(d *chash.Decoder) (*requestMsg, error) {
	var m requestMsg
	var err error
	if m.id, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("transport: request: %w", err)
	}
	if m.method, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("transport: request: %w", err)
	}
	if m.body, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("transport: request: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("transport: request: %w", err)
	}
	return &m, nil
}

// responseMsg answers one RPC call.
type responseMsg struct {
	id     uint64
	errMsg string // "" on success
	body   []byte
}

func (m *responseMsg) encode() []byte {
	e := chash.NewEncoder(32 + len(m.errMsg) + len(m.body))
	e.PutByte(kindResponse)
	e.PutUint64(m.id)
	e.PutString(m.errMsg)
	e.PutBytes(m.body)
	return e.Bytes()
}

func decodeResponse(d *chash.Decoder) (*responseMsg, error) {
	var m responseMsg
	var err error
	if m.id, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("transport: response: %w", err)
	}
	if m.errMsg, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("transport: response: %w", err)
	}
	if m.body, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("transport: response: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("transport: response: %w", err)
	}
	return &m, nil
}

// splitKind peels the kind byte off a frame body and returns a decoder over
// the rest.
func splitKind(body []byte) (byte, *chash.Decoder, error) {
	if len(body) == 0 {
		return 0, nil, ErrFrameEmpty
	}
	return body[0], chash.NewDecoder(body[1:]), nil
}
