package lightclient

import (
	"errors"
	"testing"

	"dcert/internal/chain"
	"dcert/internal/consensus"
)

// buildHeaders seals a linear header chain of the given length (excluding
// genesis) and returns all headers including genesis.
func buildHeaders(t *testing.T, n int, params consensus.Params) []*chain.Header {
	t.Helper()
	genesis := &chain.Header{Height: 0, Time: 1, Consensus: chain.ConsensusProof{Difficulty: params.Difficulty}}
	if err := consensus.Seal(params, genesis); err != nil {
		t.Fatalf("Seal genesis: %v", err)
	}
	out := []*chain.Header{genesis}
	for i := 1; i <= n; i++ {
		h := &chain.Header{Height: uint64(i), PrevHash: out[i-1].Hash(), Time: uint64(i + 1)}
		if err := consensus.Seal(params, h); err != nil {
			t.Fatalf("Seal %d: %v", i, err)
		}
		out = append(out, h)
	}
	return out
}

func TestSyncValidChain(t *testing.T) {
	params := consensus.Params{Difficulty: 4}
	hdrs := buildHeaders(t, 20, params)
	c := New(hdrs[0].Hash(), params)
	if err := c.Sync(hdrs); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if c.Height() != 20 || c.Len() != 21 {
		t.Fatalf("Height=%d Len=%d", c.Height(), c.Len())
	}
	h, err := c.Header(7)
	if err != nil {
		t.Fatalf("Header: %v", err)
	}
	if h.Height != 7 {
		t.Fatalf("Header(7).Height = %d", h.Height)
	}
}

func TestSyncRejectsWrongGenesis(t *testing.T) {
	params := consensus.Params{Difficulty: 4}
	hdrs := buildHeaders(t, 3, params)
	other := buildHeaders(t, 0, params)
	other[0].Time = 999 // different genesis
	c := New(other[0].Hash(), params)
	if err := c.Sync(hdrs); !errors.Is(err, ErrGenesisMismatch) {
		t.Fatalf("want ErrGenesisMismatch, got %v", err)
	}
}

func TestSyncRejectsBrokenLink(t *testing.T) {
	params := consensus.Params{Difficulty: 4}
	hdrs := buildHeaders(t, 10, params)
	hdrs[5].PrevHash = hdrs[3].Hash() // break the chain
	if err := consensus.Seal(params, hdrs[5]); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	c := New(hdrs[0].Hash(), params)
	if err := c.Sync(hdrs); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("want ErrBrokenChain, got %v", err)
	}
}

func TestSyncRejectsBadPoW(t *testing.T) {
	params := consensus.Params{Difficulty: 12}
	hdrs := buildHeaders(t, 5, params)
	hdrs[3].Consensus.Nonce = 0xdeadbeef
	// Relink so only PoW is wrong.
	for i := 4; i < len(hdrs); i++ {
		hdrs[i].PrevHash = hdrs[i-1].Hash()
		if err := consensus.Seal(params, hdrs[i]); err != nil {
			t.Fatalf("Seal: %v", err)
		}
	}
	c := New(hdrs[0].Hash(), params)
	err := c.Sync(hdrs)
	if err == nil {
		t.Skip("lucky nonce met the target")
	}
	if !errors.Is(err, consensus.ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestSyncRefusesShorterChain(t *testing.T) {
	params := consensus.Params{Difficulty: 4}
	hdrs := buildHeaders(t, 10, params)
	c := New(hdrs[0].Hash(), params)
	if err := c.Sync(hdrs); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := c.Sync(hdrs[:5]); err == nil {
		t.Fatal("must refuse a shorter chain")
	}
}

func TestAppend(t *testing.T) {
	params := consensus.Params{Difficulty: 4}
	hdrs := buildHeaders(t, 5, params)
	c := New(hdrs[0].Hash(), params)
	for i, h := range hdrs {
		if err := c.Append(h); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if c.Height() != 5 {
		t.Fatalf("Height = %d", c.Height())
	}
	// Appending a non-extending header fails.
	if err := c.Append(hdrs[2]); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("want ErrBrokenChain, got %v", err)
	}
}

func TestStorageSizeGrowsLinearly(t *testing.T) {
	params := consensus.Params{Difficulty: 4}
	hdrs := buildHeaders(t, 100, params)
	c := New(hdrs[0].Hash(), params)
	if err := c.Sync(hdrs[:51]); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	half := c.StorageSize()
	if err := c.Sync(hdrs); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	full := c.StorageSize()
	perHeader := half / 51
	if half%51 != 0 || full != perHeader*101 {
		t.Fatalf("storage not linear: half=%d full=%d", half, full)
	}
}

func TestHeaderOutOfRange(t *testing.T) {
	params := consensus.Params{Difficulty: 4}
	hdrs := buildHeaders(t, 2, params)
	c := New(hdrs[0].Hash(), params)
	if err := c.Sync(hdrs); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if _, err := c.Header(99); err == nil {
		t.Fatal("want error for out-of-range height")
	}
}

func TestSyncEmpty(t *testing.T) {
	c := New(chainHash(), consensus.Params{})
	if err := c.Sync(nil); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("want ErrBrokenChain, got %v", err)
	}
}

func chainHash() (h [32]byte) {
	h[0] = 1
	return h
}
