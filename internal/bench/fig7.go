package bench

import (
	"fmt"
	"time"

	"dcert"
)

// ethHeaderBytes is the Ethereum header size the paper's footnote 1 uses to
// derive the 7.93 GB light-client figure (508 B × 1.56 × 10⁷ blocks).
const ethHeaderBytes = 508

// Fig7Point is one chain-length sample.
type Fig7Point struct {
	// ChainLength in blocks.
	ChainLength int
	// Measured reports whether the row was measured on a real chain (vs
	// analytically extended).
	Measured bool
	// LightStorage / SuperStorage in bytes.
	LightStorage int
	SuperStorage int
	// LightValidate / SuperValidate in seconds.
	LightValidate float64
	SuperValidate float64
}

// Fig7Result holds the bootstrapping-cost series.
type Fig7Result struct {
	// Points are ordered by chain length.
	Points []Fig7Point
}

// RunFig7 measures Fig. 7 (a: storage, b: validation time): a traditional
// light client syncs and validates every header, the superlight client
// validates one certificate — at several chain lengths, plus analytic rows
// extending the measured per-header costs to Ethereum scale (1.56 × 10⁷
// blocks, the paper's September 2022 reference point).
func RunFig7(scale Scale) (*Fig7Result, error) {
	p := ParamsFor(scale)
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:   dcert.DoNothing, // Fig. 7 varies chain length, not payload
		Contracts:  p.Contracts,
		Accounts:   p.Accounts,
		Difficulty: 4,
		Seed:       1,
	})
	if err != nil {
		return nil, err
	}

	maxLen := p.ChainLengths[len(p.ChainLengths)-1]
	type tipState struct {
		hdr  *dcert.Header
		cert *dcert.Certificate
	}
	tips := make(map[int]tipState, len(p.ChainLengths))
	for i := 1; i <= maxLen; i++ {
		blk, cert, err := dep.MineAndCertify(1)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7 mine %d: %w", i, err)
		}
		for _, l := range p.ChainLengths {
			if i == l {
				hdr := blk.Header
				tips[l] = tipState{hdr: &hdr, cert: cert}
			}
		}
	}
	headers := dep.Miner().Store().Headers()

	res := &Fig7Result{}
	var perHeaderSec float64
	for _, l := range p.ChainLengths {
		// Traditional light client: full header sync + validation.
		lc := dep.NewLightClient()
		start := time.Now()
		if err := lc.Sync(headers[:l+1]); err != nil {
			return nil, fmt.Errorf("bench: fig7 light sync: %w", err)
		}
		lightTime := time.Since(start).Seconds()
		perHeaderSec = lightTime / float64(l+1)

		// Superlight client: validate the single latest certificate from a
		// cold start (full attestation-report path).
		sc := dep.NewSuperlightClient()
		tip := tips[l]
		start = time.Now()
		if err := sc.ValidateChain(tip.hdr, tip.cert); err != nil {
			return nil, fmt.Errorf("bench: fig7 superlight validate: %w", err)
		}
		superTime := time.Since(start).Seconds()

		res.Points = append(res.Points, Fig7Point{
			ChainLength:   l,
			Measured:      true,
			LightStorage:  lc.StorageSize(),
			SuperStorage:  sc.StorageSize(),
			LightValidate: lightTime,
			SuperValidate: superTime,
		})
	}

	// Analytic extension to Ethereum scale using measured per-header costs
	// and the paper's 508 B header size.
	superStorage := res.Points[len(res.Points)-1].SuperStorage
	superValidate := res.Points[len(res.Points)-1].SuperValidate
	for _, l := range []int{100000, 1000000, 15600000} {
		res.Points = append(res.Points, Fig7Point{
			ChainLength:   l,
			Measured:      false,
			LightStorage:  l * ethHeaderBytes,
			SuperStorage:  superStorage,
			LightValidate: perHeaderSec * float64(l),
			SuperValidate: superValidate,
		})
	}
	return res, nil
}

// Table renders the result.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title: "Fig. 7 — bootstrapping cost: traditional light client vs DCert superlight client",
		Note:  "rows marked '(model)' extend measured per-header cost to Ethereum scale (508 B headers)",
		Columns: []string{
			"chain length", "kind",
			"light storage (KB)", "superlight storage (KB)",
			"light validate (ms)", "superlight validate (ms)",
		},
	}
	for _, pt := range r.Points {
		kind := "measured"
		if !pt.Measured {
			kind = "(model)"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.ChainLength), kind,
			kb(pt.LightStorage), kb(pt.SuperStorage),
			ms(pt.LightValidate), ms(pt.SuperValidate),
		})
	}
	return t
}
