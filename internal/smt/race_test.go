package smt

import (
	"fmt"
	"sync"
	"testing"

	"dcert/internal/chash"
)

// TestConcurrentProofs is the regression test for the defaultCache data race:
// the empty-subtree defaults used to live in a lazily-populated global map
// that proof construction and verification wrote without synchronization —
// reachable concurrently from the pipeline's parallel verify workers. The
// defaults are now a read-only table precomputed at init; this test drives
// proof build/verify and tree construction at several depths from many
// goroutines so `go test -race` (tier 2) would catch any regression.
func TestConcurrentProofs(t *testing.T) {
	base, keys := goldenTree(t)
	root := base.Root()
	vals := make(map[Key]chash.Hash, len(keys))
	for _, k := range keys {
		vals[k] = base.Get(k)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				// Fresh trees at varying depths hit the defaults table for
				// every depth concurrently.
				depth := 1 + (w*20+iter)%MaxDepth
				tr, err := New(depth)
				if err != nil {
					errs <- err
					return
				}
				k := KeyFromString(fmt.Sprintf("w%d-i%d", w, iter))
				tr.Put(k, chash.Leaf([]byte("v")))
				mp, err := tr.Prove([]Key{k})
				if err != nil {
					errs <- err
					return
				}
				if err := mp.Verify(tr.Root(), map[Key]chash.Hash{k: tr.Get(k)}); err != nil {
					errs <- fmt.Errorf("depth %d: %w", depth, err)
					return
				}

				// Shared read-only tree: concurrent proof build + verify.
				mp2, err := base.Prove(keys)
				if err != nil {
					errs <- err
					return
				}
				if err := mp2.Verify(root, vals); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
