module dcert

go 1.23
