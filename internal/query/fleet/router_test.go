package fleet

import (
	"fmt"
	"sync"
	"testing"
)

func routeAll(t *testing.T, r *Router, keys []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		m, err := r.Route(k)
		if err != nil {
			t.Fatalf("Route(%q): %v", k, err)
		}
		out[k] = m
	}
	return out
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("acct/%06d", i)
	}
	return keys
}

func TestRouterStableAssignment(t *testing.T) {
	r := NewRouter("sp-0", "sp-1", "sp-2", "sp-3")
	keys := testKeys(5000)
	first := routeAll(t, r, keys)
	second := routeAll(t, r, keys)
	for k := range first {
		if first[k] != second[k] {
			t.Fatalf("key %q flapped: %s then %s", k, first[k], second[k])
		}
	}
	// Load splits roughly evenly: each of 4 members owns 25% ± 10 points.
	counts := map[string]int{}
	for _, m := range first {
		counts[m]++
	}
	for m, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("member %s owns %.1f%% of keys", m, 100*frac)
		}
	}
}

func TestRouterRemoveMovesOnlyOwnedKeys(t *testing.T) {
	r := NewRouter("sp-0", "sp-1", "sp-2", "sp-3")
	keys := testKeys(5000)
	before := routeAll(t, r, keys)

	r.Remove("sp-2")
	after := routeAll(t, r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if before[k] != "sp-2" {
				t.Fatalf("key %q moved from surviving member %s", k, before[k])
			}
		}
		if after[k] == "sp-2" {
			t.Fatalf("key %q routed to removed member", k)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("removal moved %.1f%% of keys, want ~25%%", 100*frac)
	}

	// Re-adding restores the original assignment exactly: rendezvous hashing
	// is a pure function of (member set, key).
	r.Add("sp-2")
	restored := routeAll(t, r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %q not restored after re-add", k)
		}
	}
}

func TestRouterAddMovesAboutOneOverN(t *testing.T) {
	r := NewRouter("sp-0", "sp-1", "sp-2", "sp-3")
	keys := testKeys(5000)
	before := routeAll(t, r, keys)

	r.Add("sp-4")
	after := routeAll(t, r, keys)
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != "sp-4" {
				t.Fatalf("key %q moved to %s, not the new member", k, after[k])
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.30 {
		t.Fatalf("adding a 5th member moved %.1f%% of keys, want ~20%%", 100*frac)
	}
}

func TestRouterEmpty(t *testing.T) {
	r := NewRouter()
	if _, err := r.Route("k"); err == nil {
		t.Fatal("want error routing with no members")
	}
	r.Add("only")
	m, err := r.Route("k")
	if err != nil || m != "only" {
		t.Fatalf("Route = %q, %v", m, err)
	}
	r.Remove("only")
	r.Remove("only") // idempotent
	if _, err := r.Route("k"); err == nil {
		t.Fatal("want error after removing the last member")
	}
}

// Concurrent Route against membership churn: run with -race. Every
// successful Route must return a member that was valid at some point.
func TestRouterConcurrentRouteAndRebalance(t *testing.T) {
	r := NewRouter("sp-0", "sp-1")
	valid := map[string]bool{"sp-0": true, "sp-1": true, "sp-2": true, "sp-3": true}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := testKeys(200)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range keys {
					m, err := r.Route(k)
					if err != nil {
						t.Errorf("Route: %v", err)
						return
					}
					if !valid[m] {
						t.Errorf("Route returned unknown member %q", m)
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		r.Add("sp-2")
		r.Add("sp-3")
		r.Remove("sp-2")
		r.Remove("sp-3")
	}
	close(stop)
	wg.Wait()
}
