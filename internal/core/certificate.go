// Package core implements the DCert decentralized certification framework —
// the paper's primary contribution. It provides:
//
//   - Certificate, the ⟨pk_enc, rep, dig, sig⟩ tuple of §3.3, for blocks
//     (dig = H(hdr)) and authenticated indexes (dig = H(hdr ‖ H_idx));
//   - TrustedProgram, the in-enclave logic of Alg. 2 (ecall_sig_gen,
//     blk_verify_t, cert_verify_t) plus the index-certification extensions;
//   - Issuer, the SGX-enabled certificate issuer (CI) running Alg. 1
//     (block certificates), Alg. 4 (augmented certificates), and Alg. 5
//     (hierarchical certificates); and
//   - SuperlightClient, the constant-cost chain validator of Alg. 3.
package core

import (
	"errors"
	"fmt"

	"dcert/internal/attest"
	"dcert/internal/chain"
	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrBadCertificate is returned when a certificate fails verification.
	ErrBadCertificate = errors.New("core: certificate verification failed")
	// ErrChainRule is returned when a validated block violates the chain
	// selection rule (Alg. 3 line 8).
	ErrChainRule = errors.New("core: chain selection rule violated")
	// ErrGenesisMismatch is returned when a claimed genesis block does not
	// match the hard-coded genesis digest (Alg. 2 line 4).
	ErrGenesisMismatch = errors.New("core: genesis digest mismatch")
	// ErrIndexRootMismatch is returned when a replayed index root does not
	// match the claimed one (Alg. 4 line 10).
	ErrIndexRootMismatch = errors.New("core: index root mismatch")
	// ErrUnknownIndex is returned for operations on unregistered indexes.
	ErrUnknownIndex = errors.New("core: unknown index")
)

// Certificate is the DCert certificate cert = ⟨pk_enc, rep, dig, sig⟩.
// For block certificates dig = H(hdr_i); for augmented/hierarchical index
// certificates dig = H(hdr_i ‖ H_i^idx).
type Certificate struct {
	// PubKey is pk_enc, the enclave-generated public key (DER).
	PubKey []byte
	// Report is rep, the attestation report binding pk_enc to the enclave
	// measurement.
	Report *attest.Report
	// Digest is dig, the certified digest.
	Digest chash.Hash
	// Sig is sig, the enclave's signature over Digest.
	Sig []byte
}

// BlockDigest is the certified digest of a block certificate: H(hdr_i).
func BlockDigest(hdr *chain.Header) chash.Hash {
	return hdr.Hash()
}

// IndexDigest is the certified digest of an index certificate:
// H(hdr_i ‖ H_i^idx). The paper's Alg. 4 line 13 writes the previous block's
// digest here, which contradicts the signature computed on line 12 and the
// verification on line 4; we follow the signature (current block), which is
// the only self-consistent reading.
func IndexDigest(hdr *chain.Header, indexRoot chash.Hash) chash.Hash {
	h := hdr.Hash()
	return chash.Sum(chash.DomainCert, h[:], indexRoot[:])
}

// Verify checks the full certificate chain of trust against an expected
// digest (the shared logic of cert_verify_t, Alg. 2 lines 26-32, and the
// client-side Alg. 3 lines 2-7):
//
//  1. rep is signed by the attestation authority,
//  2. rep's measurement equals the expected enclave program,
//  3. pk_enc matches rep's report data,
//  4. sig verifies dig under pk_enc, and
//  5. dig equals the expected digest.
func (c *Certificate) Verify(authorityPK *chash.PublicKey, measurement chash.Hash, expectDigest chash.Hash) error {
	if c == nil {
		return fmt.Errorf("%w: nil certificate", ErrBadCertificate)
	}
	if c.Report == nil {
		return fmt.Errorf("%w: missing attestation report", ErrBadCertificate)
	}
	pk, err := chash.ParsePublicKey(c.PubKey)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	if err := c.Report.Verify(authorityPK, measurement, pk.Fingerprint()); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	if err := pk.Verify(c.Digest, c.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	if c.Digest != expectDigest {
		return fmt.Errorf("%w: digest mismatch", ErrBadCertificate)
	}
	return nil
}

// VerifySignatureOnly re-checks only the signature and digest, for clients
// that already validated this enclave's attestation report (the paper notes
// the report needs checking only once per CI, §4.3).
func (c *Certificate) VerifySignatureOnly(expectDigest chash.Hash) error {
	if c == nil {
		return fmt.Errorf("%w: nil certificate", ErrBadCertificate)
	}
	pk, err := chash.ParsePublicKey(c.PubKey)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	if err := pk.Verify(c.Digest, c.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}
	if c.Digest != expectDigest {
		return fmt.Errorf("%w: digest mismatch", ErrBadCertificate)
	}
	return nil
}

// Marshal serializes the certificate.
func (c *Certificate) Marshal() []byte {
	rep := c.Report.Marshal()
	e := chash.NewEncoder(256 + len(rep) + len(c.PubKey) + len(c.Sig))
	e.PutBytes(c.PubKey)
	e.PutBytes(rep)
	e.PutHash(c.Digest)
	e.PutBytes(c.Sig)
	return e.Bytes()
}

// UnmarshalCertificate parses a certificate produced by Marshal.
func UnmarshalCertificate(raw []byte) (*Certificate, error) {
	d := chash.NewDecoder(raw)
	var c Certificate
	var err error
	if c.PubKey, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("core: unmarshal certificate: %w", err)
	}
	repRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("core: unmarshal certificate: %w", err)
	}
	if c.Report, err = attest.UnmarshalReport(repRaw); err != nil {
		return nil, fmt.Errorf("core: unmarshal certificate: %w", err)
	}
	if c.Digest, err = d.ReadHash(); err != nil {
		return nil, fmt.Errorf("core: unmarshal certificate: %w", err)
	}
	if c.Sig, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("core: unmarshal certificate: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("core: unmarshal certificate: %w", err)
	}
	return &c, nil
}

// EncodedSize returns the serialized certificate size in bytes — the
// dominant term of the superlight client's constant storage (Fig. 7a).
func (c *Certificate) EncodedSize() int {
	return len(c.Marshal())
}
