package attest

import (
	"errors"
	"testing"

	"dcert/internal/chash"
)

func newAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority()
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	return a
}

func TestQuoteAttestVerifyRoundTrip(t *testing.T) {
	a := newAuthority(t)
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	m := chash.Leaf([]byte("program"))
	rd := chash.Leaf([]byte("pk-fingerprint"))

	q, err := p.SignQuote(m, rd)
	if err != nil {
		t.Fatalf("SignQuote: %v", err)
	}
	rep, err := a.Attest(q)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if err := rep.Verify(a.PublicKey(), m, rd); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestAttestRejectsUnknownPlatform(t *testing.T) {
	a := newAuthority(t)
	other := newAuthority(t)
	p, err := other.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	q, err := p.SignQuote(chash.Leaf([]byte("m")), chash.Leaf([]byte("d")))
	if err != nil {
		t.Fatalf("SignQuote: %v", err)
	}
	if _, err := a.Attest(q); !errors.Is(err, ErrUnknownPlatform) {
		t.Fatalf("want ErrUnknownPlatform, got %v", err)
	}
}

func TestAttestRejectsTamperedQuote(t *testing.T) {
	a := newAuthority(t)
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	q, err := p.SignQuote(chash.Leaf([]byte("m")), chash.Leaf([]byte("d")))
	if err != nil {
		t.Fatalf("SignQuote: %v", err)
	}
	q.Measurement = chash.Leaf([]byte("evil")) // breaks the quote signature
	if _, err := a.Attest(q); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("want ErrBadQuote, got %v", err)
	}
}

func TestVerifyRejectsWrongAuthority(t *testing.T) {
	a := newAuthority(t)
	b := newAuthority(t)
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	m, rd := chash.Leaf([]byte("m")), chash.Leaf([]byte("d"))
	q, err := p.SignQuote(m, rd)
	if err != nil {
		t.Fatalf("SignQuote: %v", err)
	}
	rep, err := a.Attest(q)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if err := rep.Verify(b.PublicKey(), m, rd); !errors.Is(err, ErrBadReport) {
		t.Fatalf("want ErrBadReport, got %v", err)
	}
}

func TestVerifyRejectsWrongMeasurement(t *testing.T) {
	a := newAuthority(t)
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	m, rd := chash.Leaf([]byte("m")), chash.Leaf([]byte("d"))
	q, err := p.SignQuote(m, rd)
	if err != nil {
		t.Fatalf("SignQuote: %v", err)
	}
	rep, err := a.Attest(q)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if err := rep.Verify(a.PublicKey(), chash.Leaf([]byte("other")), rd); !errors.Is(err, ErrMeasurementMismatch) {
		t.Fatalf("want ErrMeasurementMismatch, got %v", err)
	}
}

func TestVerifyRejectsWrongReportData(t *testing.T) {
	a := newAuthority(t)
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	m, rd := chash.Leaf([]byte("m")), chash.Leaf([]byte("d"))
	q, err := p.SignQuote(m, rd)
	if err != nil {
		t.Fatalf("SignQuote: %v", err)
	}
	rep, err := a.Attest(q)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if err := rep.Verify(a.PublicKey(), m, chash.Leaf([]byte("forged-key"))); !errors.Is(err, ErrReportDataMismatch) {
		t.Fatalf("want ErrReportDataMismatch, got %v", err)
	}
}

func TestVerifyRejectsTamperedCertChain(t *testing.T) {
	a := newAuthority(t)
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	m, rd := chash.Leaf([]byte("m")), chash.Leaf([]byte("d"))
	q, err := p.SignQuote(m, rd)
	if err != nil {
		t.Fatalf("SignQuote: %v", err)
	}
	rep, err := a.Attest(q)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	rep.CertChain[0] ^= 0xff
	if err := rep.Verify(a.PublicKey(), m, rd); !errors.Is(err, ErrBadReport) {
		t.Fatalf("want ErrBadReport, got %v", err)
	}
}

func TestReportMarshalRoundTrip(t *testing.T) {
	a := newAuthority(t)
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	m, rd := chash.Leaf([]byte("m")), chash.Leaf([]byte("d"))
	q, err := p.SignQuote(m, rd)
	if err != nil {
		t.Fatalf("SignQuote: %v", err)
	}
	rep, err := a.Attest(q)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	parsed, err := UnmarshalReport(rep.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalReport: %v", err)
	}
	if err := parsed.Verify(a.PublicKey(), m, rd); err != nil {
		t.Fatalf("round-tripped report must verify: %v", err)
	}
	if rep.EncodedSize() != len(rep.Marshal()) {
		t.Fatal("EncodedSize mismatch")
	}
}

func TestReportHasRealisticSize(t *testing.T) {
	a := newAuthority(t)
	p, err := a.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	q, err := p.SignQuote(chash.Leaf([]byte("m")), chash.Leaf([]byte("d")))
	if err != nil {
		t.Fatalf("SignQuote: %v", err)
	}
	rep, err := a.Attest(q)
	if err != nil {
		t.Fatalf("Attest: %v", err)
	}
	if rep.EncodedSize() < 2048 || rep.EncodedSize() > 4096 {
		t.Fatalf("report size %d outside the realistic IAS range", rep.EncodedSize())
	}
}

func TestPlatformIDsUnique(t *testing.T) {
	a := newAuthority(t)
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		p, err := a.NewPlatform()
		if err != nil {
			t.Fatalf("NewPlatform: %v", err)
		}
		if seen[p.ID()] {
			t.Fatal("duplicate platform id")
		}
		seen[p.ID()] = true
	}
}
