package skiplist

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dcert/internal/chash"
)

func buildList(t *testing.T, n int) *List {
	t.Helper()
	l := New()
	for i := 0; i < n; i++ {
		l.Insert(uint64(i*3), []byte(fmt.Sprintf("v%d", i)))
	}
	return l
}

func TestEmptyList(t *testing.T) {
	l := New()
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Get(5) != nil {
		t.Fatal("Get on empty list must return nil")
	}
	got, err := l.Range(0, 100)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Range returned %d entries", len(got))
	}
	if l.Root().IsZero() {
		t.Fatal("empty list still commits to a head label")
	}
}

func TestInsertGet(t *testing.T) {
	l := buildList(t, 500)
	if l.Len() != 500 {
		t.Fatalf("Len = %d, want 500", l.Len())
	}
	for i := 0; i < 500; i++ {
		want := fmt.Sprintf("v%d", i)
		if got := l.Get(uint64(i * 3)); !bytes.Equal(got, []byte(want)) {
			t.Fatalf("Get(%d) = %q, want %q", i*3, got, want)
		}
		if got := l.Get(uint64(i*3 + 1)); got != nil {
			t.Fatalf("Get(absent) = %q", got)
		}
	}
}

func TestInsertOverwrite(t *testing.T) {
	l := New()
	l.Insert(9, []byte("old"))
	l.Insert(9, []byte("new"))
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	if got := l.Get(9); !bytes.Equal(got, []byte("new")) {
		t.Fatalf("Get = %q", got)
	}
}

func TestRange(t *testing.T) {
	l := buildList(t, 200) // versions 0,3,...,597
	tests := []struct {
		lo, hi uint64
		want   int
	}{
		{0, 597, 200},
		{0, 0, 1},
		{1, 2, 0},
		{30, 60, 11},
		{595, 1000, 1},
		{700, 900, 0},
	}
	for _, tc := range tests {
		got, err := l.Range(tc.lo, tc.hi)
		if err != nil {
			t.Fatalf("Range(%d,%d): %v", tc.lo, tc.hi, err)
		}
		if len(got) != tc.want {
			t.Fatalf("Range(%d,%d) = %d entries, want %d", tc.lo, tc.hi, len(got), tc.want)
		}
	}
	if _, err := l.Range(5, 1); !errors.Is(err, ErrBadRange) {
		t.Fatalf("want ErrBadRange, got %v", err)
	}
}

func TestRootChangesOnInsert(t *testing.T) {
	l := New()
	r0 := l.Root()
	l.Insert(1, []byte("a"))
	r1 := l.Root()
	if r0 == r1 {
		t.Fatal("insert must change the root")
	}
	l.Insert(2, []byte("b"))
	if r1 == l.Root() {
		t.Fatal("second insert must change the root")
	}
}

func TestRootHistoryIndependent(t *testing.T) {
	versions := make([]uint64, 100)
	for i := range versions {
		versions[i] = uint64(i * 7)
	}
	a := New()
	for _, v := range versions {
		a.Insert(v, []byte(fmt.Sprintf("v%d", v)))
	}
	shuffled := append([]uint64(nil), versions...)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := New()
	for _, v := range shuffled {
		b.Insert(v, []byte(fmt.Sprintf("v%d", v)))
	}
	if a.Root() != b.Root() {
		t.Fatal("deterministic skip list root must be insert-order independent")
	}
}

func TestProveVerifyRange(t *testing.T) {
	l := buildList(t, 300)
	root := l.Root()
	for _, rg := range [][2]uint64{{0, 897}, {30, 90}, {0, 0}, {897, 897}, {898, 2000}, {1, 2}} {
		proof, err := l.ProveRange(rg[0], rg[1])
		if err != nil {
			t.Fatalf("ProveRange(%v): %v", rg, err)
		}
		got, err := VerifyRange(root, rg[0], rg[1], proof)
		if err != nil {
			t.Fatalf("VerifyRange(%v): %v", rg, err)
		}
		want, err := l.Range(rg[0], rg[1])
		if err != nil {
			t.Fatalf("Range: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("range %v: verified %d entries, want %d", rg, len(got), len(want))
		}
		for i := range got {
			if got[i].Version != want[i].Version || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("range %v entry %d mismatch", rg, i)
			}
		}
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	l := buildList(t, 50)
	proof, err := l.ProveRange(0, 30)
	if err != nil {
		t.Fatalf("ProveRange: %v", err)
	}
	bogus := chash.Leaf([]byte("bogus"))
	if _, err := VerifyRange(bogus, 0, 30, proof); err == nil {
		t.Fatal("want error for wrong root")
	}
}

func TestVerifyRejectsWidenedRange(t *testing.T) {
	l := buildList(t, 200)
	root := l.Root()
	proof, err := l.ProveRange(30, 60)
	if err != nil {
		t.Fatalf("ProveRange: %v", err)
	}
	if _, err := VerifyRange(root, 30, 300, proof); !errors.Is(err, ErrMissingCell) {
		t.Fatalf("want ErrMissingCell for widened range, got %v", err)
	}
}

func TestVerifyRejectsTamperedCell(t *testing.T) {
	l := buildList(t, 50)
	root := l.Root()
	proof, err := l.ProveRange(0, 60)
	if err != nil {
		t.Fatalf("ProveRange: %v", err)
	}
	for h, raw := range proof.cells {
		raw[len(raw)-1] ^= 0x01
		proof.cells[h] = raw
		break
	}
	if _, err := VerifyRange(root, 0, 60, proof); err == nil {
		t.Fatal("tampered proof must not verify")
	}
}

func TestVerifyRejectsStaleRoot(t *testing.T) {
	l := buildList(t, 50)
	oldRoot := l.Root()
	l.Insert(9999, []byte("late"))
	proof, err := l.ProveRange(0, 10000)
	if err != nil {
		t.Fatalf("ProveRange: %v", err)
	}
	if _, err := VerifyRange(oldRoot, 0, 10000, proof); err == nil {
		t.Fatal("proof against a newer tree must not verify under the stale root")
	}
}

func TestProofSizeGrowsWithRange(t *testing.T) {
	l := buildList(t, 1000)
	l.Root()
	small, err := l.ProveRange(0, 30)
	if err != nil {
		t.Fatalf("ProveRange: %v", err)
	}
	large, err := l.ProveRange(0, 2997)
	if err != nil {
		t.Fatalf("ProveRange: %v", err)
	}
	if small.EncodedSize() >= large.EncodedSize() {
		t.Fatalf("proof sizes: small=%d large=%d", small.EncodedSize(), large.EncodedSize())
	}
	if small.Len() <= 0 {
		t.Fatal("proof must contain cells")
	}
}

func TestHeightDeterministic(t *testing.T) {
	for v := uint64(0); v < 1000; v++ {
		if heightOf(v) != heightOf(v) {
			t.Fatal("height must be deterministic")
		}
		if h := heightOf(v); h < 1 || h > maxHeight {
			t.Fatalf("height %d out of range", h)
		}
	}
}

func TestRangeProofQuick(t *testing.T) {
	// Property: for random contents and ranges, the verified result always
	// equals the direct range scan.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New()
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			l.Insert(uint64(rng.Intn(500)), []byte(fmt.Sprintf("v%d", i)))
		}
		root := l.Root()
		lo := uint64(rng.Intn(500))
		hi := lo + uint64(rng.Intn(100))
		proof, err := l.ProveRange(lo, hi)
		if err != nil {
			return false
		}
		got, err := VerifyRange(root, lo, hi, proof)
		if err != nil {
			return false
		}
		want, err := l.Range(lo, hi)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Version != want[i].Version || !bytes.Equal(got[i].Value, want[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
