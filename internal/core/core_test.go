package core

import (
	"errors"
	"sort"
	"testing"

	"dcert/internal/attest"
	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/enclave"
	"dcert/internal/node"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// mockIndex is a trivially replayable IndexUpdater for exercising the
// certificate plumbing: root' = H(root ‖ blockHash ‖ canonical writes).
type mockIndex struct {
	name string
}

func (m mockIndex) Name() string { return m.name }

func (m mockIndex) Replay(prevRoot chash.Hash, _ []byte, blk *chain.Block, writes map[string][]byte) (chash.Hash, error) {
	return mockIndexRoot(prevRoot, blk, writes), nil
}

func mockIndexRoot(prevRoot chash.Hash, blk *chain.Block, writes map[string][]byte) chash.Hash {
	keys := make([]string, 0, len(writes))
	for k := range writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e := chash.NewEncoder(256)
	e.PutHash(prevRoot)
	e.PutHash(blk.Hash())
	for _, k := range keys {
		e.PutString(k)
		e.PutBytes(writes[k])
	}
	return chash.Sum(chash.DomainIndex, e.Bytes())
}

// env is a complete DCert test rig: a miner, a CI with an enclave, the
// attestation authority, and a workload generator.
type env struct {
	authority *attest.Authority
	miner     *node.Miner
	issuer    *Issuer
	gen       *workload.Generator
	params    consensus.Params
}

func newEnv(t testing.TB, kind workload.Kind, cost enclave.CostModel) *env {
	t.Helper()
	accounts, err := workload.NewAccounts(6)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	cfg := workload.Config{Kind: kind, Contracts: 3, Seed: 11, KeySpace: 30, CPUSortSize: 32, IOOpsPerTx: 3}
	params := consensus.Params{Difficulty: 4}

	mkNode := func() *node.FullNode {
		t.Helper()
		reg := vm.NewRegistry()
		if err := workload.Register(reg, kind, cfg.Contracts); err != nil {
			t.Fatalf("Register: %v", err)
		}
		genesis, db, err := node.BuildGenesis(node.GenesisConfig{Time: 1, Consensus: params})
		if err != nil {
			t.Fatalf("BuildGenesis: %v", err)
		}
		n, err := node.NewFullNode(genesis, db, reg, params)
		if err != nil {
			t.Fatalf("NewFullNode: %v", err)
		}
		return n
	}

	authority, err := attest.NewAuthority()
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	platform, err := authority.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	issuer, err := NewIssuer(mkNode(), authority, platform, cost)
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	gen, err := workload.NewGenerator(cfg, accounts)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return &env{
		authority: authority,
		miner:     node.NewMiner(mkNode()),
		issuer:    issuer,
		gen:       gen,
		params:    params,
	}
}

func (e *env) mine(t testing.TB, n int) *chain.Block {
	t.Helper()
	txs, err := e.gen.Block(n)
	if err != nil {
		t.Fatalf("gen.Block: %v", err)
	}
	b, err := e.miner.Propose(txs)
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	return b
}

func (e *env) client() *SuperlightClient {
	return NewSuperlightClient(e.authority.PublicKey(), e.issuer.Measurement(), e.params)
}

func TestBlockCertificationChain(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	client := e.client()

	for i := 0; i < 5; i++ {
		blk := e.mine(t, 10)
		cert, bd, err := e.issuer.ProcessBlock(blk)
		if err != nil {
			t.Fatalf("ProcessBlock(%d): %v", i, err)
		}
		if bd.Total() <= 0 {
			t.Fatal("cost breakdown must be positive")
		}
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			t.Fatalf("ValidateChain(%d): %v", i, err)
		}
	}
	hdr, cert := client.Latest()
	if hdr.Height != 5 || cert == nil {
		t.Fatalf("client tip = %d", hdr.Height)
	}
	if e.issuer.Node().Tip().Header.Height != 5 {
		t.Fatal("issuer replica did not advance")
	}
}

func TestCertificateVerifiesEndToEnd(t *testing.T) {
	e := newEnv(t, workload.DoNothing, enclave.CostModel{})
	blk := e.mine(t, 3)
	cert, _, err := e.issuer.ProcessBlock(blk)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	if err := cert.Verify(e.authority.PublicKey(), e.issuer.Measurement(), BlockDigest(&blk.Header)); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestClientRejectsTamperedHeader(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	client := e.client()
	blk := e.mine(t, 5)
	cert, _, err := e.issuer.ProcessBlock(blk)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	hdr := blk.Header
	hdr.StateRoot = chash.Leaf([]byte("forged state"))
	if err := client.ValidateChain(&hdr, cert); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("want ErrBadCertificate, got %v", err)
	}
}

func TestClientRejectsForgedSignature(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	client := e.client()
	blk := e.mine(t, 5)
	cert, _, err := e.issuer.ProcessBlock(blk)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	forged := *cert
	forged.Sig = append([]byte(nil), cert.Sig...)
	forged.Sig[6] ^= 0xff
	if err := client.ValidateChain(&blk.Header, &forged); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("want ErrBadCertificate, got %v", err)
	}
}

func TestClientRejectsWrongEnclaveKey(t *testing.T) {
	// A certificate signed by a key not bound into the attestation report
	// must fail even if the signature itself is valid.
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	client := e.client()
	blk := e.mine(t, 5)
	cert, _, err := e.issuer.ProcessBlock(blk)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	rogueSK, err := chash.GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	roguePK, err := rogueSK.Public()
	if err != nil {
		t.Fatalf("Public: %v", err)
	}
	sig, err := rogueSK.Sign(BlockDigest(&blk.Header))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	forged := &Certificate{PubKey: roguePK.Marshal(), Report: cert.Report, Digest: cert.Digest, Sig: sig}
	if err := client.ValidateChain(&blk.Header, forged); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("want ErrBadCertificate, got %v", err)
	}
}

func TestClientRejectsWrongMeasurement(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	// Client pins a different program measurement.
	client := NewSuperlightClient(e.authority.PublicKey(), chash.Leaf([]byte("other program")), e.params)
	blk := e.mine(t, 5)
	cert, _, err := e.issuer.ProcessBlock(blk)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	if err := client.ValidateChain(&blk.Header, cert); !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("want ErrBadCertificate, got %v", err)
	}
}

func TestClientEnforcesChainSelectionRule(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	client := e.client()
	b1 := e.mine(t, 3)
	c1, _, err := e.issuer.ProcessBlock(b1)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	b2 := e.mine(t, 3)
	c2, _, err := e.issuer.ProcessBlock(b2)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	if err := client.ValidateChain(&b2.Header, c2); err != nil {
		t.Fatalf("ValidateChain(b2): %v", err)
	}
	// Presenting the older (shorter-chain) block must be rejected.
	if err := client.ValidateChain(&b1.Header, c1); !errors.Is(err, ErrChainRule) {
		t.Fatalf("want ErrChainRule, got %v", err)
	}
}

func TestIssuerRejectsInvalidBlocks(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})

	t.Run("tampered state root", func(t *testing.T) {
		blk := e.mine(t, 3)
		bad := *blk
		bad.Header.StateRoot = chash.Leaf([]byte("forged"))
		if err := consensus.Seal(e.params, &bad.Header); err != nil {
			t.Fatalf("Seal: %v", err)
		}
		if _, _, err := e.issuer.ProcessBlock(&bad); err == nil {
			t.Fatal("issuer must reject forged state roots")
		}
		// The real block still certifies afterwards.
		if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock after rejection: %v", err)
		}
	})

	t.Run("bad consensus proof", func(t *testing.T) {
		blk := e.mine(t, 3)
		bad := *blk
		bad.Header.Consensus.Difficulty = 0
		if _, _, err := e.issuer.ProcessBlock(&bad); !errors.Is(err, consensus.ErrBadProof) {
			t.Fatalf("want ErrBadProof, got %v", err)
		}
		if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock after rejection: %v", err)
		}
	})

	t.Run("truncated txs", func(t *testing.T) {
		blk := e.mine(t, 3)
		bad := &chain.Block{Header: blk.Header, Txs: blk.Txs[:1]}
		if _, _, err := e.issuer.ProcessBlock(bad); !errors.Is(err, chain.ErrBadBlock) {
			t.Fatalf("want ErrBadBlock, got %v", err)
		}
		if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock after rejection: %v", err)
		}
	})
}

func TestStorageSizeConstant(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	client := e.client()
	var sizes []int
	for i := 0; i < 4; i++ {
		blk := e.mine(t, 5)
		cert, _, err := e.issuer.ProcessBlock(blk)
		if err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			t.Fatalf("ValidateChain: %v", err)
		}
		sizes = append(sizes, client.StorageSize())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[0] {
			t.Fatalf("storage not constant: %v", sizes)
		}
	}
	// The paper reports 2.97 KB; ours must be the same order of magnitude.
	if sizes[0] < 1024 || sizes[0] > 8192 {
		t.Fatalf("storage size %d outside plausible range", sizes[0])
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	e := newEnv(t, workload.DoNothing, enclave.CostModel{})
	blk := e.mine(t, 2)
	cert, _, err := e.issuer.ProcessBlock(blk)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	parsed, err := UnmarshalCertificate(cert.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalCertificate: %v", err)
	}
	if err := parsed.Verify(e.authority.PublicKey(), e.issuer.Measurement(), BlockDigest(&blk.Header)); err != nil {
		t.Fatalf("round-tripped cert must verify: %v", err)
	}
	if cert.EncodedSize() != len(cert.Marshal()) {
		t.Fatal("EncodedSize mismatch")
	}
}

func TestUnmarshalCertificateRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalCertificate([]byte{1, 2}); err == nil {
		t.Fatal("want error for garbage certificate")
	}
}

func TestClientSnapshotRestore(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	client := e.client()
	blk := e.mine(t, 5)
	cert, _, err := e.issuer.ProcessBlock(blk)
	if err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	if err := client.ValidateChain(&blk.Header, cert); err != nil {
		t.Fatalf("ValidateChain: %v", err)
	}
	snap, err := client.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// A fresh client restores and re-validates from the snapshot alone.
	fresh := e.client()
	if err := fresh.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	hdr, _ := fresh.Latest()
	if hdr.Height != 1 {
		t.Fatalf("restored height = %d", hdr.Height)
	}

	// A tampered snapshot is rejected during re-validation.
	bad := append([]byte(nil), snap...)
	bad[10] ^= 0xff
	another := e.client()
	if err := another.Restore(bad); err == nil {
		t.Fatal("tampered snapshot must not restore")
	}

	// An empty client has nothing to snapshot.
	if _, err := e.client().Snapshot(); err == nil {
		t.Fatal("want error for empty-client snapshot")
	}
}
