package consensus

import (
	"errors"
	"testing"

	"dcert/internal/chain"
)

func TestSealAndVerify(t *testing.T) {
	p := Params{Difficulty: 10}
	h := &chain.Header{Height: 3, Time: 42}
	if err := Seal(p, h); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := Verify(p, h); err != nil {
		t.Fatalf("Verify after Seal: %v", err)
	}
}

func TestVerifyRejectsBadNonce(t *testing.T) {
	p := Params{Difficulty: 12}
	h := &chain.Header{Height: 3, Time: 42}
	if err := Seal(p, h); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	h.Consensus.Nonce++
	// A nonce off by one almost surely misses a 12-bit target; accept the
	// rare lucky collision by re-checking the work hash directly.
	if err := Verify(p, h); err == nil {
		if leadingZeroBits(workHash(h)) < p.Difficulty {
			t.Fatal("Verify accepted a header below target")
		}
	}
}

func TestVerifyRejectsWrongDifficulty(t *testing.T) {
	p := Params{Difficulty: 8}
	h := &chain.Header{Height: 1}
	if err := Seal(p, h); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := Verify(Params{Difficulty: 9}, h); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestZeroDifficulty(t *testing.T) {
	p := Params{}
	h := &chain.Header{Height: 1}
	if err := Seal(p, h); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if h.Consensus.Nonce != 0 {
		t.Fatal("zero difficulty must not search for a nonce")
	}
	if err := Verify(p, h); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestLeadingZeroBits(t *testing.T) {
	var h [32]byte
	if got := leadingZeroBits(h); got != 256 {
		t.Fatalf("all-zero digest: %d", got)
	}
	h[0] = 0x80
	if got := leadingZeroBits(h); got != 0 {
		t.Fatalf("0x80 first byte: %d", got)
	}
	h[0] = 0x01
	if got := leadingZeroBits(h); got != 7 {
		t.Fatalf("0x01 first byte: %d", got)
	}
	h[0] = 0
	h[1] = 0x10
	if got := leadingZeroBits(h); got != 11 {
		t.Fatalf("0x0010...: %d", got)
	}
}

func TestDefaultParams(t *testing.T) {
	if DefaultParams().Difficulty == 0 {
		t.Fatal("default params must require some work")
	}
}

func TestSealMeetsExactTarget(t *testing.T) {
	// Statistical sanity: sealed headers at difficulty d have ≥ d zero bits.
	p := Params{Difficulty: 6}
	for i := uint64(0); i < 20; i++ {
		h := &chain.Header{Height: i, Time: i * 3}
		if err := Seal(p, h); err != nil {
			t.Fatalf("Seal(%d): %v", i, err)
		}
		if got := leadingZeroBits(workHash(h)); got < 6 {
			t.Fatalf("header %d sealed with %d zero bits", i, got)
		}
	}
}
