package query

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dcert/internal/chash"
	"dcert/internal/network"
)

// Network query service: the SP serves the §5.3 query protocol over the
// simulated fabric using the canonical wire formats, so superlight clients
// interact with it exactly as they would over a real transport — send a
// request, receive serialized results, verify them locally against certified
// roots.

// Service errors.
var (
	// ErrTimeout is returned when a networked query receives no response
	// within the attempt budget.
	ErrTimeout = errors.New("query: request timed out")
	// ErrRemote is returned when the SP reports a failure.
	ErrRemote = errors.New("query: remote error")
	// ErrRequesterClosed is returned by requests pending (or issued) after
	// Close; unlike ErrTimeout it reports a local, permanent condition.
	ErrRequesterClosed = errors.New("query: requester closed")
)

// Network topics for the query protocol.
const (
	// TopicQueries carries requests to the SP.
	TopicQueries = "queries"
	// TopicResults carries responses back to clients.
	TopicResults = "query-results"
)

// Request kinds.
const (
	reqHistorical byte = 1
	reqKeyword    byte = 2
	reqState      byte = 3
	reqBatchState byte = 4
)

// MaxBatchKeys bounds the key count of one batch request.
const MaxBatchKeys = 1024

// Request is a serializable query request.
type Request struct {
	// ID correlates the response.
	ID uint64
	// Kind selects the query type.
	Kind byte
	// Index names the authenticated index (historical/keyword queries).
	Index string
	// Key is the state or account key.
	Key string
	// Lo and Hi bound historical windows.
	Lo, Hi uint64
	// Keywords are the conjuncts of a keyword query.
	Keywords []string
	// Keys are the state keys of a batch query (reqBatchState only; the
	// field is encoded only for that kind, so every pre-batch request kind
	// keeps its exact historical byte encoding).
	Keys []string
}

// Marshal serializes the request.
func (r *Request) Marshal() []byte {
	e := chash.NewEncoder(128)
	e.PutUint64(r.ID)
	e.PutByte(r.Kind)
	e.PutString(r.Index)
	e.PutString(r.Key)
	e.PutUint64(r.Lo)
	e.PutUint64(r.Hi)
	e.PutUint32(uint32(len(r.Keywords)))
	for _, kw := range r.Keywords {
		e.PutString(kw)
	}
	if r.Kind == reqBatchState {
		e.PutUint32(uint32(len(r.Keys)))
		for _, k := range r.Keys {
			e.PutString(k)
		}
	}
	return e.Bytes()
}

// UnmarshalRequest parses a request.
func UnmarshalRequest(raw []byte) (*Request, error) {
	d := chash.NewDecoder(raw)
	var r Request
	var err error
	if r.ID, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Kind, err = d.Byte(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Index, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Key, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Lo, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if r.Hi, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	if n > 64 {
		return nil, fmt.Errorf("query: unmarshal request: %d keywords", n)
	}
	for i := uint32(0); i < n; i++ {
		kw, err := d.ReadString()
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal request: %w", err)
		}
		r.Keywords = append(r.Keywords, kw)
	}
	if r.Kind == reqBatchState {
		k, err := d.Uint32()
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal request: %w", err)
		}
		if k > MaxBatchKeys {
			return nil, fmt.Errorf("query: unmarshal request: %d batch keys", k)
		}
		for i := uint32(0); i < k; i++ {
			key, err := d.ReadString()
			if err != nil {
				return nil, fmt.Errorf("query: unmarshal request: %w", err)
			}
			r.Keys = append(r.Keys, key)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("query: unmarshal request: %w", err)
	}
	return &r, nil
}

// AffinityKey returns the request's routing key: requests about the same
// data map to the same key, so a consistent-hash router sends them to the
// same replica (warm cache, stable load split). The request ID and window
// bounds are deliberately excluded — they vary per attempt without changing
// which replica should answer. A batch request routes as one unit (its
// merged multiproof must come from a single replica's snapshot).
func (r *Request) AffinityKey() string {
	switch r.Kind {
	case reqState:
		return "s\x00" + r.Key
	case reqHistorical:
		return "h\x00" + r.Index + "\x00" + r.Key
	case reqKeyword:
		return "k\x00" + r.Index + "\x00" + strings.Join(r.Keywords, "\x00")
	case reqBatchState:
		return "b\x00" + strings.Join(r.Keys, "\x00")
	default:
		return r.Index + "\x00" + r.Key
	}
}

// SemanticKey returns the request's identity for response caching: two
// requests with the same semantic key ask the same question and may share a
// cached answer. Unlike the raw encoding it excludes the per-attempt request
// ID, so resends and concurrent identical queries from different clients
// collapse onto one computation.
func (r *Request) SemanticKey() string {
	c := *r
	c.ID = 0
	return string(c.Marshal())
}

// Response is a serializable query response.
type Response struct {
	// ID echoes the request.
	ID uint64
	// Err carries a remote failure description ("" on success).
	Err string
	// Body is the serialized result (kind-specific wire format).
	Body []byte
}

// Marshal serializes the response.
func (r *Response) Marshal() []byte {
	e := chash.NewEncoder(64 + len(r.Body))
	e.PutUint64(r.ID)
	e.PutString(r.Err)
	e.PutBytes(r.Body)
	return e.Bytes()
}

// UnmarshalResponse parses a response.
func UnmarshalResponse(raw []byte) (*Response, error) {
	d := chash.NewDecoder(raw)
	var r Response
	var err error
	if r.ID, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("query: unmarshal response: %w", err)
	}
	if r.Err, err = d.ReadString(); err != nil {
		return nil, fmt.Errorf("query: unmarshal response: %w", err)
	}
	if r.Body, err = d.ReadBytes(); err != nil {
		return nil, fmt.Errorf("query: unmarshal response: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("query: unmarshal response: %w", err)
	}
	return &r, nil
}

// Server runs a ServiceProvider behind the network's query topic.
//
// The server is idempotent under duplicated delivery: responses are cached
// keyed by the exact request bytes, so a request replayed by the network (or
// a client resend with the same ID) republishes the original response
// instead of recomputing or double-delivering a fresh one. The cache is a
// byte-bounded singleflight LRU (ResponseCache).
type Server struct {
	sp     *ServiceProvider
	net    network.Bus
	sub    *network.Subscription
	done   chan struct{}
	wg     sync.WaitGroup
	rcache *ResponseCache

	mu       sync.Mutex
	met      serverObs
	computed uint64
	replayed uint64
}

// Serve starts answering requests until Stop is called.
func Serve(sp *ServiceProvider, net network.Bus) *Server {
	s := &Server{
		sp:     sp,
		net:    net,
		sub:    net.Subscribe(TopicQueries, 64),
		done:   make(chan struct{}),
		rcache: NewResponseCache(DefaultCacheBytes),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Stats reports how many requests were computed fresh and how many were
// answered from the idempotent-response cache (hit or collapsed onto an
// in-flight computation).
func (s *Server) Stats() (computed, replayed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.computed, s.replayed
}

// Cache exposes the server's response cache (for instrumentation and
// inspection).
func (s *Server) Cache() *ResponseCache {
	return s.rcache
}

// Stop shuts the server down and waits for the serving goroutine.
func (s *Server) Stop() {
	s.sub.Cancel()
	close(s.done)
	s.wg.Wait()
}

func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case m, ok := <-s.sub.C:
			if !ok {
				return
			}
			raw, isBytes := m.Payload.([]byte)
			if !isBytes {
				continue
			}
			req, err := UnmarshalRequest(raw)
			if err != nil {
				continue // malformed request: nothing to respond to
			}
			respRaw, outcome := s.rcache.Do(string(raw), func() []byte {
				return s.handle(req).Marshal()
			})
			s.mu.Lock()
			if outcome == CacheComputed {
				s.computed++
				s.met.computed.Inc()
			} else {
				s.replayed++
				s.met.replayed.Inc()
			}
			s.mu.Unlock()
			// Publish errors only mean the fabric shut down.
			if err := s.net.Publish(TopicResults, "sp", respRaw); err != nil {
				return
			}
		}
	}
}

// handle executes one request against the local SP.
func (s *Server) handle(req *Request) *Response {
	return Execute(s.sp, req)
}

// Execute answers one parsed request against an SP. It is shared by the
// topic-based Server and the wire transport's request/response path.
func Execute(sp *ServiceProvider, req *Request) *Response {
	resp := &Response{ID: req.ID}
	switch req.Kind {
	case reqHistorical:
		res, err := sp.HistoricalQuery(req.Index, req.Key, req.Lo, req.Hi)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Body = res.Marshal()
	case reqKeyword:
		res, err := sp.KeywordQuery(req.Index, req.Keywords)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Body = res.Marshal()
	case reqState:
		res, err := sp.StateQuery(req.Key)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Body = res.Marshal()
	case reqBatchState:
		res, err := sp.BatchStateQuery(req.Keys)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Body = res.Marshal()
	default:
		resp.Err = fmt.Sprintf("unknown request kind %d", req.Kind)
	}
	return resp
}

// HandleRaw answers one serialized request against an SP, returning the
// serialized response — the entry point a transport RPC route mounts. A
// malformed request yields a serialized error response rather than silence,
// since the RPC path (unlike gossip) always owes its caller an answer.
func HandleRaw(sp *ServiceProvider, raw []byte) []byte {
	req, err := UnmarshalRequest(raw)
	if err != nil {
		return (&Response{Err: err.Error()}).Marshal()
	}
	return Execute(sp, req).Marshal()
}

// RPC-facing request constructors: the wire transport's request/response
// path carries the same serialized Request/Response pair as the topic
// protocol, so a remote client builds requests with these and parses the
// answer with UnmarshalResponse plus the kind-specific result parser.

// NewStateRequest builds a direct state-read request.
func NewStateRequest(key string) *Request {
	return &Request{Kind: reqState, Key: key}
}

// NewHistoricalRequest builds a historical range-query request.
func NewHistoricalRequest(index, key string, lo, hi uint64) *Request {
	return &Request{Kind: reqHistorical, Index: index, Key: key, Lo: lo, Hi: hi}
}

// NewKeywordRequest builds a conjunctive keyword-query request.
func NewKeywordRequest(index string, keywords []string) *Request {
	return &Request{Kind: reqKeyword, Index: index, Keywords: keywords}
}

// NewBatchStateRequest builds a multi-key state-read request answered by one
// merged multiproof.
func NewBatchStateRequest(keys []string) *Request {
	return &Request{Kind: reqBatchState, Keys: keys}
}

// RetryPolicy bounds and paces the Requester's attempts. Each attempt gets
// a fresh request ID, so a response to a late earlier attempt is simply
// dropped and the SP's idempotent cache absorbs network-level duplicates.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (minimum 1).
	MaxAttempts int
	// BaseBackoff is the sleep after the first failed attempt; it doubles
	// per attempt up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = uncapped).
	MaxBackoff time.Duration
	// JitterSeed makes the ±50% backoff jitter reproducible (same seed,
	// same schedule).
	JitterSeed int64
}

// DefaultRetryPolicy retries twice after the first timeout with fast,
// seeded-jitter backoff — suited to the simulated fabric's time scales.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	return p
}

// backoff returns the pause before retry attempt+1 (attempt counts from 0):
// BaseBackoff·2^attempt, capped, with deterministic ±50% jitter.
func (r *Requester) backoff(attempt int) time.Duration {
	d := r.policy.BaseBackoff << uint(attempt)
	if r.policy.MaxBackoff > 0 && d > r.policy.MaxBackoff {
		d = r.policy.MaxBackoff
	}
	if d <= 0 {
		return 0
	}
	r.mu.Lock()
	j := r.jitter.Int63n(int64(d))
	r.mu.Unlock()
	return d/2 + time.Duration(j)/2
}

// Requester issues queries over the network and awaits responses, retrying
// timed-out attempts with exponential backoff + jitter within a bounded
// attempt budget.
//
// Requester is safe for concurrent use.
type Requester struct {
	net     network.Bus
	sub     *network.Subscription
	nextID  atomic.Uint64
	timeout time.Duration
	policy  RetryPolicy
	met     requesterObs
	done    chan struct{}

	mu      sync.Mutex
	jitter  *rand.Rand
	pending map[uint64]chan *Response
	closed  bool
}

// NewRequester creates a query client over the fabric with the default
// retry policy and the given per-attempt timeout.
func NewRequester(net network.Bus, timeout time.Duration) *Requester {
	return NewRequesterWithPolicy(net, timeout, DefaultRetryPolicy())
}

// NewRequesterWithPolicy creates a query client with an explicit retry
// policy (MaxAttempts: 1 restores single-shot behavior).
func NewRequesterWithPolicy(net network.Bus, timeout time.Duration, policy RetryPolicy) *Requester {
	r := &Requester{
		net:     net,
		sub:     net.Subscribe(TopicResults, 64),
		timeout: timeout,
		policy:  policy.withDefaults(),
		done:    make(chan struct{}),
		jitter:  rand.New(rand.NewSource(policy.JitterSeed)),
		pending: make(map[uint64]chan *Response),
	}
	go r.dispatch()
	return r
}

// Close stops the requester. Requests still in flight fail immediately with
// ErrRequesterClosed instead of running out their timeouts.
func (r *Requester) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.pending = make(map[uint64]chan *Response)
	r.mu.Unlock()
	close(r.done)
	r.sub.Cancel()
}

func (r *Requester) dispatch() {
	for m := range r.sub.C {
		raw, ok := m.Payload.([]byte)
		if !ok {
			continue
		}
		resp, err := UnmarshalResponse(raw)
		if err != nil {
			continue
		}
		r.mu.Lock()
		ch, ok := r.pending[resp.ID]
		if ok {
			delete(r.pending, resp.ID)
		}
		r.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// attempt sends the request once under a fresh ID and waits one timeout.
func (r *Requester) attempt(req *Request) (*Response, error) {
	req.ID = r.nextID.Add(1)
	ch := make(chan *Response, 1)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRequesterClosed
	}
	r.pending[req.ID] = ch
	r.mu.Unlock()

	if err := r.net.Publish(TopicQueries, "client", req.Marshal()); err != nil {
		return nil, err
	}
	timer := time.NewTimer(r.timeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Err)
		}
		return resp, nil
	case <-r.done:
		return nil, ErrRequesterClosed
	case <-timer.C:
		r.mu.Lock()
		delete(r.pending, req.ID)
		r.mu.Unlock()
		return nil, ErrTimeout
	}
}

// roundTrip runs the retry loop: timeouts are retried with backoff within
// the attempt budget; remote errors, fabric shutdown, and Close are final.
func (r *Requester) roundTrip(req *Request) (*Response, error) {
	r.met.requests.Inc()
	start := time.Now()
	var err error
	for i := 0; i < r.policy.MaxAttempts; i++ {
		if i > 0 {
			r.met.retries.Inc()
			pause := time.NewTimer(r.backoff(i - 1))
			select {
			case <-pause.C:
			case <-r.done:
				pause.Stop()
				return nil, ErrRequesterClosed
			}
		}
		var resp *Response
		resp, err = r.attempt(req)
		if err == nil {
			r.met.rttSec.Observe(time.Since(start).Seconds())
			return resp, nil
		}
		if !errors.Is(err, ErrTimeout) {
			r.met.failures.Inc()
			return nil, err
		}
		r.met.timeouts.Inc()
	}
	r.met.failures.Inc()
	return nil, fmt.Errorf("%w (after %d attempts)", ErrTimeout, r.policy.MaxAttempts)
}

// Historical runs a remote historical query.
func (r *Requester) Historical(index, key string, lo, hi uint64) (*HistoricalResult, error) {
	resp, err := r.roundTrip(&Request{Kind: reqHistorical, Index: index, Key: key, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	return UnmarshalHistoricalResult(resp.Body)
}

// Keyword runs a remote conjunctive keyword query.
func (r *Requester) Keyword(index string, keywords []string) (*KeywordResult, error) {
	resp, err := r.roundTrip(&Request{Kind: reqKeyword, Index: index, Keywords: keywords})
	if err != nil {
		return nil, err
	}
	return UnmarshalKeywordResult(resp.Body)
}

// State runs a remote direct state read.
func (r *Requester) State(key string) (*StateResult, error) {
	resp, err := r.roundTrip(&Request{Kind: reqState, Key: key})
	if err != nil {
		return nil, err
	}
	return UnmarshalStateResult(resp.Body)
}

// BatchState runs a remote multi-key state read: one round trip, one merged
// multiproof covering every key.
func (r *Requester) BatchState(keys []string) (*BatchStateResult, error) {
	resp, err := r.roundTrip(&Request{Kind: reqBatchState, Keys: keys})
	if err != nil {
		return nil, err
	}
	return UnmarshalBatchStateResult(resp.Body)
}
