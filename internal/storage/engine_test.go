package storage

import (
	"testing"
	"time"

	"dcert/internal/chain"
	"dcert/internal/consensus"
	"dcert/internal/core"
	"dcert/internal/node"
	"dcert/internal/statedb"
	"dcert/internal/storage/vfs"
)

// engineEnv extends archiveEnv with a validating persistence replica whose
// write sets feed the engine, mirroring how the deployment drives it.
type engineEnv struct {
	*archiveEnv
	persist *node.FullNode
	blocks  []*chain.Block
	certs   []*core.Certificate
}

func newEngineEnv(t *testing.T) *engineEnv {
	t.Helper()
	env := newArchiveEnv(t)
	return &engineEnv{archiveEnv: env, persist: env.mkNode()}
}

func (e *engineEnv) resumeCfg() ResumeConfig {
	return ResumeConfig{
		Backend:  statedb.BackendMPT,
		Registry: e.persist.Registry(),
		Params:   consensus.Params{Difficulty: 2},
	}
}

// mine produces one certified block and applies it to the engine. withCert
// false models an issuer outage: the block is persisted uncertified.
func (e *engineEnv) mine(t *testing.T, eng *Engine, withCert bool) {
	t.Helper()
	txs, err := e.gen.Block(4)
	if err != nil {
		t.Fatalf("gen.Block: %v", err)
	}
	blk, err := e.miner.Propose(txs)
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	var cert *core.Certificate
	if withCert {
		if cert, _, err = e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
	}
	writes, err := e.persist.ValidateBlock(blk)
	if err != nil {
		t.Fatalf("ValidateBlock: %v", err)
	}
	if _, err := e.persist.State().Commit(writes); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if _, err := e.persist.Store().Add(blk); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := eng.ApplyBlock(blk, cert, writes); err != nil {
		t.Fatalf("ApplyBlock: %v", err)
	}
	e.blocks = append(e.blocks, blk)
	e.certs = append(e.certs, cert)
}

func TestEngineColdStartRoundTrip(t *testing.T) {
	env := newEngineEnv(t)
	dir := t.TempDir()
	eng, err := OpenEngine(dir, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("OpenEngine: %v", err)
	}
	genesis := env.persist.Store().Best()
	if err := eng.Bootstrap(genesis, nil); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	for i := 0; i < 10; i++ {
		env.mine(t, eng, true)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	eng2, err := OpenEngine(dir, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	rec := eng2.Recovery()
	if rec.TipHeight() != 10 {
		t.Fatalf("recovered tip %d, want 10", rec.TipHeight())
	}
	if rec.Torn || rec.DroppedBlocks != 0 {
		t.Fatalf("clean shutdown recovered dirty: %+v", rec)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Height != 10 {
		t.Fatalf("checkpoint = %+v, want height 10", rec.Checkpoint)
	}
	// Clean shutdown snapshots at the tip: the fast path needs no replay.
	if rec.State == nil || rec.StateHeight != 10 {
		t.Fatalf("state image at %d (nil=%v), want 10", rec.StateHeight, rec.State == nil)
	}
	if err := eng2.Bootstrap(genesis, nil); err != nil {
		t.Fatalf("re-Bootstrap: %v", err)
	}
	n, err := eng2.ResumeNode(env.resumeCfg())
	if err != nil {
		t.Fatalf("ResumeNode: %v", err)
	}
	if n.Tip().Hash() != env.persist.Tip().Hash() {
		t.Fatal("resumed tip differs from pre-shutdown tip")
	}
	root, err := n.State().Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if root != env.persist.Tip().Header.StateRoot {
		t.Fatal("resumed state root differs")
	}
	// The recovered tip certificate still verifies.
	cert, ok := eng2.CertFor(n.Tip().Hash())
	if !ok {
		t.Fatal("tip cert missing after recovery")
	}
	if err := cert.Verify(env.authority.PublicKey(), env.issuer.Measurement(), core.BlockDigest(&n.Tip().Header)); err != nil {
		t.Fatalf("recovered cert must verify: %v", err)
	}
}

func TestEnginePowerCutRecoversCertifiedPrefix(t *testing.T) {
	env := newEngineEnv(t)
	dir := t.TempDir()
	fault := vfs.NewFault(vfs.OS{}, vfs.FaultPlan{Seed: 11})
	eng, err := OpenEngine(dir, Options{FS: fault, FsyncInterval: time.Hour, SnapshotEvery: 3})
	if err != nil {
		t.Fatalf("OpenEngine: %v", err)
	}
	genesis := env.persist.Store().Best()
	if err := eng.Bootstrap(genesis, nil); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	for i := 0; i < 8; i++ {
		env.mine(t, eng, true)
	}
	// Pull the plug without Close: group commit means a suffix of appends
	// (everything since the height-6 snapshot's sync) dies here.
	if err := fault.PowerCut(); err != nil {
		t.Fatalf("PowerCut: %v", err)
	}

	eng2, err := OpenEngine(dir, Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	rec := eng2.Recovery()
	tip := rec.TipHeight()
	if tip < 6 || tip > 8 {
		t.Fatalf("recovered tip %d, want within [6,8] (snapshot sync floor)", tip)
	}
	// The recovered blocks are an exact prefix of what was mined.
	for i, blk := range rec.Blocks[1:] {
		if blk.Hash() != env.blocks[i].Hash() {
			t.Fatalf("recovered block %d diverges from mined chain", i+1)
		}
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Height != tip {
		t.Fatalf("checkpoint %+v, want height %d", rec.Checkpoint, tip)
	}
	if err := eng2.Bootstrap(genesis, nil); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	n, err := eng2.ResumeNode(env.resumeCfg())
	if err != nil {
		t.Fatalf("ResumeNode: %v", err)
	}
	root, err := n.State().Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if root != rec.Blocks[tip].Header.StateRoot {
		t.Fatal("resumed state does not match recovered tip")
	}
}

func TestEngineDropsUncertifiedTail(t *testing.T) {
	env := newEngineEnv(t)
	dir := t.TempDir()
	eng, err := OpenEngine(dir, Options{SnapshotEvery: 100})
	if err != nil {
		t.Fatalf("OpenEngine: %v", err)
	}
	genesis := env.persist.Store().Best()
	if err := eng.Bootstrap(genesis, nil); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	env.mine(t, eng, true)
	env.mine(t, eng, true)
	env.mine(t, eng, false) // issuer down: block persisted without a cert
	env.mine(t, eng, false)
	if err := eng.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Crash without Close (Close would snapshot; the sync already made the
	// uncertified blocks durable — recovery must still refuse them).
	eng.chainLog.Close()
	eng.stateWAL.Close()

	eng2, err := OpenEngine(dir, Options{SnapshotEvery: 100})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	rec := eng2.Recovery()
	if rec.TipHeight() != 2 {
		t.Fatalf("recovered tip %d, want 2 (certified prefix)", rec.TipHeight())
	}
	if rec.DroppedBlocks != 2 {
		t.Fatalf("dropped %d blocks, want 2", rec.DroppedBlocks)
	}
	// The log was physically truncated: appending a *different* height-3
	// block later can never collide with the dropped one.
	var heights []uint64
	err = eng2.chainLog.Scan(func(tag byte, payload []byte) error {
		if tag == tagBlock {
			blk, err := chain.UnmarshalBlock(payload)
			if err != nil {
				return err
			}
			heights = append(heights, blk.Header.Height)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(heights) != 3 || heights[2] != 2 {
		t.Fatalf("physical log holds heights %v, want [0 1 2]", heights)
	}
}

func TestEngineLateCertExtendsCertifiedPrefix(t *testing.T) {
	env := newEngineEnv(t)
	dir := t.TempDir()
	eng, err := OpenEngine(dir, Options{SnapshotEvery: 100})
	if err != nil {
		t.Fatalf("OpenEngine: %v", err)
	}
	genesis := env.persist.Store().Best()
	if err := eng.Bootstrap(genesis, nil); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	env.mine(t, eng, true)
	env.mine(t, eng, false)
	env.mine(t, eng, false)
	// The issuer catches up and re-certifies the missed blocks; the certs
	// land after the blocks in the log (ApplyCert path).
	for i := 1; i < 3; i++ {
		blk := env.blocks[i]
		cert, _, err := env.issuer.ProcessBlock(blk)
		if err != nil {
			t.Fatalf("catch-up ProcessBlock: %v", err)
		}
		if err := eng.ApplyCert(blk.Hash(), cert); err != nil {
			t.Fatalf("ApplyCert: %v", err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	eng2, err := OpenEngine(dir, Options{SnapshotEvery: 100})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	if got := eng2.Recovery().TipHeight(); got != 3 {
		t.Fatalf("recovered tip %d, want 3 (late certs extend the prefix)", got)
	}
	if eng2.Recovery().DroppedBlocks != 0 {
		t.Fatalf("dropped %d blocks, want 0", eng2.Recovery().DroppedBlocks)
	}
}

func TestEngineIdempotentApply(t *testing.T) {
	env := newEngineEnv(t)
	dir := t.TempDir()
	eng, err := OpenEngine(dir, Options{})
	if err != nil {
		t.Fatalf("OpenEngine: %v", err)
	}
	defer eng.Close()
	genesis := env.persist.Store().Best()
	if err := eng.Bootstrap(genesis, nil); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	env.mine(t, eng, true)
	// A second issuer slot re-announcing the same height is a no-op.
	if err := eng.ApplyBlock(env.blocks[0], env.certs[0], nil); err != nil {
		t.Fatalf("duplicate ApplyBlock: %v", err)
	}
	if eng.TipHeight() != 1 {
		t.Fatalf("tip %d, want 1", eng.TipHeight())
	}
	// A gapped height is refused.
	future := &chain.Block{Header: chain.Header{Height: 5}}
	if err := eng.ApplyBlock(future, nil, nil); err == nil {
		t.Fatal("gapped ApplyBlock must fail")
	}
}

func TestEngineRejectsForeignGenesis(t *testing.T) {
	env := newEngineEnv(t)
	dir := t.TempDir()
	eng, err := OpenEngine(dir, Options{})
	if err != nil {
		t.Fatalf("OpenEngine: %v", err)
	}
	genesis := env.persist.Store().Best()
	if err := eng.Bootstrap(genesis, nil); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	env.mine(t, eng, true)
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	eng2, err := OpenEngine(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	other := &chain.Block{Header: chain.Header{Height: 0, Time: 999}}
	if err := eng2.Bootstrap(other, nil); err == nil {
		t.Fatal("foreign genesis must be refused")
	}
}
