package vm

import (
	"errors"
	"testing"

	"dcert/internal/chain"
)

// mapState is a trivial State for tests.
type mapState map[string][]byte

func (m mapState) Read(key []byte) ([]byte, error) {
	return m[string(key)], nil
}

func (m mapState) Write(key, value []byte) error {
	m[string(key)] = value
	return nil
}

// echoContract writes its first argument under the sender address.
type echoContract struct{}

func (echoContract) Execute(st State, tx *chain.Transaction) error {
	if len(tx.Args) == 0 {
		return ErrBadArgs
	}
	return st.Write([]byte("echo/"+tx.From.Hex()), tx.Args[0])
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("echo", echoContract{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := r.Lookup("echo"); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("echo", echoContract{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register("echo", echoContract{}); err == nil {
		t.Fatal("want error for duplicate registration")
	}
}

func TestRegistryRejectsEmptyNameAndNil(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", echoContract{}); err == nil {
		t.Fatal("want error for empty name")
	}
	if err := r.Register("x", nil); err == nil {
		t.Fatal("want error for nil contract")
	}
}

func TestCallUnknownContract(t *testing.T) {
	r := NewRegistry()
	tx := &chain.Transaction{Contract: "ghost"}
	if err := r.Call(mapState{}, tx); !errors.Is(err, ErrUnknownContract) {
		t.Fatalf("want ErrUnknownContract, got %v", err)
	}
}

func TestCallDispatches(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("echo", echoContract{}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	st := mapState{}
	tx := &chain.Transaction{Contract: "echo", Args: [][]byte{[]byte("hello")}}
	if err := r.Call(st, tx); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(st["echo/"+tx.From.Hex()]) != "hello" {
		t.Fatal("contract did not write")
	}
}

func TestMeteredStateEnforcesBudget(t *testing.T) {
	m := &MeteredState{inner: mapState{}, gas: 2}
	if _, err := m.Read([]byte("a")); err != nil {
		t.Fatalf("Read 1: %v", err)
	}
	if err := m.Write([]byte("b"), []byte("v")); err != nil {
		t.Fatalf("Write 1: %v", err)
	}
	if _, err := m.Read([]byte("c")); !errors.Is(err, ErrGas) {
		t.Fatalf("want ErrGas, got %v", err)
	}
	if err := m.Write([]byte("d"), []byte("v")); !errors.Is(err, ErrGas) {
		t.Fatalf("want ErrGas on write, got %v", err)
	}
}

func TestNewMeteredStateDefaultBudget(t *testing.T) {
	m := NewMeteredState(mapState{})
	for i := 0; i < 100; i++ {
		if _, err := m.Read([]byte("k")); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
	}
}
