package core

import (
	"errors"
	"testing"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/enclave"
	"dcert/internal/workload"
)

// registerMockIndexes registers n mock updaters on the issuer's trusted
// program and returns their names.
func registerMockIndexes(t *testing.T, e *env, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = "mock-" + string(rune('a'+i))
		if err := e.issuer.Program().RegisterUpdater(mockIndex{name: names[i]}); err != nil {
			t.Fatalf("RegisterUpdater: %v", err)
		}
	}
	return names
}

// mockJobs builds IndexJobs with the correct expected roots for a block by
// simulating the updater on the miner's write set.
func mockJobs(t *testing.T, e *env, names []string, blkTxs int) (*envBlock, []*IndexJob) {
	t.Helper()
	blk := e.mine(t, blkTxs)
	// Recompute the write set the same way the enclave will.
	res, err := e.issuer.Node().State().ExecuteBlock(e.issuer.Node().Registry(), blk.Txs)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	jobs := make([]*IndexJob, len(names))
	for i, name := range names {
		prevRoot, _ := e.issuer.indexState(name)
		jobs[i] = &IndexJob{
			Updater: name,
			NewRoot: mockIndexRoot(prevRoot, blk, res.WriteSet),
		}
	}
	return &envBlock{blk: blk}, jobs
}

type envBlock struct {
	blk *chain.Block
}

func TestAugmentedCertification(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	names := registerMockIndexes(t, e, 2)
	client := e.client()

	for round := 0; round < 3; round++ {
		eb, jobs := mockJobs(t, e, names, 8)
		certs, bd, err := e.issuer.ProcessBlockAugmented(eb.blk, jobs)
		if err != nil {
			t.Fatalf("round %d: ProcessBlockAugmented: %v", round, err)
		}
		if len(certs) != len(names) {
			t.Fatalf("got %d certs", len(certs))
		}
		if bd.Total() <= 0 {
			t.Fatal("cost breakdown must be positive")
		}
		for i, name := range names {
			if err := client.ValidateIndex(name, &eb.blk.Header, jobs[i].NewRoot, certs[i]); err != nil {
				t.Fatalf("round %d: ValidateIndex(%s): %v", round, name, err)
			}
		}
	}
	root, height, err := client.IndexRoot(names[0])
	if err != nil {
		t.Fatalf("IndexRoot: %v", err)
	}
	if height != 3 || root.IsZero() {
		t.Fatalf("index state height=%d root=%s", height, root)
	}
}

func TestAugmentedRejectsWrongNewRoot(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	names := registerMockIndexes(t, e, 1)
	eb, jobs := mockJobs(t, e, names, 5)
	jobs[0].NewRoot = chash.Leaf([]byte("forged index root"))
	if _, _, err := e.issuer.ProcessBlockAugmented(eb.blk, jobs); !errors.Is(err, ErrIndexRootMismatch) {
		t.Fatalf("want ErrIndexRootMismatch, got %v", err)
	}
}

func TestAugmentedRejectsUnknownUpdater(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	names := registerMockIndexes(t, e, 1)
	eb, jobs := mockJobs(t, e, names, 5)
	jobs[0].Updater = "not-registered"
	if _, _, err := e.issuer.ProcessBlockAugmented(eb.blk, jobs); !errors.Is(err, ErrUnknownIndex) {
		t.Fatalf("want ErrUnknownIndex, got %v", err)
	}
}

func TestAugmentedRequiresJobs(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	blk := e.mine(t, 5)
	if _, _, err := e.issuer.ProcessBlockAugmented(blk, nil); err == nil {
		t.Fatal("want error for zero index jobs")
	}
}

func TestHierarchicalCertification(t *testing.T) {
	e := newEnv(t, workload.SmallBank, enclave.CostModel{})
	names := registerMockIndexes(t, e, 3)
	client := e.client()

	for round := 0; round < 3; round++ {
		eb, jobs := mockJobs(t, e, names, 8)
		blkCert, certs, _, err := e.issuer.ProcessBlockHierarchical(eb.blk, jobs)
		if err != nil {
			t.Fatalf("round %d: ProcessBlockHierarchical: %v", round, err)
		}
		if err := client.ValidateChain(&eb.blk.Header, blkCert); err != nil {
			t.Fatalf("ValidateChain: %v", err)
		}
		for i, name := range names {
			if err := client.ValidateIndex(name, &eb.blk.Header, jobs[i].NewRoot, certs[i]); err != nil {
				t.Fatalf("ValidateIndex(%s): %v", name, err)
			}
		}
	}
}

func TestHierarchicalWithNoIndexesIsPlainBlockCert(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	blk := e.mine(t, 4)
	blkCert, certs, _, err := e.issuer.ProcessBlockHierarchical(blk, nil)
	if err != nil {
		t.Fatalf("ProcessBlockHierarchical: %v", err)
	}
	if len(certs) != 0 {
		t.Fatalf("got %d index certs", len(certs))
	}
	client := e.client()
	if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
		t.Fatalf("ValidateChain: %v", err)
	}
}

func TestHierarchicalRejectsWrongRoot(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	names := registerMockIndexes(t, e, 1)
	eb, jobs := mockJobs(t, e, names, 5)
	jobs[0].NewRoot = chash.Leaf([]byte("forged"))
	if _, _, _, err := e.issuer.ProcessBlockHierarchical(eb.blk, jobs); !errors.Is(err, ErrIndexRootMismatch) {
		t.Fatalf("want ErrIndexRootMismatch, got %v", err)
	}
}

func TestIndexCertChainsAcrossBlocks(t *testing.T) {
	// The second block's index cert must verify against the first's root:
	// tamper with the tracked chain by validating an old cert after a new one.
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	names := registerMockIndexes(t, e, 1)
	client := e.client()

	eb1, jobs1 := mockJobs(t, e, names, 5)
	certs1, _, err := e.issuer.ProcessBlockAugmented(eb1.blk, jobs1)
	if err != nil {
		t.Fatalf("ProcessBlockAugmented: %v", err)
	}
	eb2, jobs2 := mockJobs(t, e, names, 5)
	certs2, _, err := e.issuer.ProcessBlockAugmented(eb2.blk, jobs2)
	if err != nil {
		t.Fatalf("ProcessBlockAugmented: %v", err)
	}
	if err := client.ValidateIndex(names[0], &eb2.blk.Header, jobs2[0].NewRoot, certs2[0]); err != nil {
		t.Fatalf("ValidateIndex: %v", err)
	}
	if err := client.ValidateIndex(names[0], &eb1.blk.Header, jobs1[0].NewRoot, certs1[0]); !errors.Is(err, ErrChainRule) {
		t.Fatalf("want ErrChainRule for stale index cert, got %v", err)
	}
}

func TestRegisterUpdaterRejectsDuplicatesAndNil(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	if err := e.issuer.Program().RegisterUpdater(mockIndex{name: "x"}); err != nil {
		t.Fatalf("RegisterUpdater: %v", err)
	}
	if err := e.issuer.Program().RegisterUpdater(mockIndex{name: "x"}); err == nil {
		t.Fatal("want error for duplicate updater")
	}
	if err := e.issuer.Program().RegisterUpdater(nil); err == nil {
		t.Fatal("want error for nil updater")
	}
}
