package smt

import (
	"fmt"
	"strings"

	"dcert/internal/chash"
)

// Path is a packed bit-path prefix addressing a node inside the tree: the
// first Len() bits, MSB-first, of the root-to-node walk. It replaces the
// '0'/'1' strings the proof code originally used as position identifiers:
// a Path is a fixed-size comparable value, so it works as a map key and sort
// key with zero heap traffic on the proof hot path (one string allocation
// per node per proof, gone).
//
// Trailing bits beyond Len() are always zero, which makes == and map-key
// equality coincide with logical path equality.
type Path struct {
	bits [chash.Size]byte
	n    uint16
}

// Len returns the number of bits in the path.
func (p Path) Len() int {
	return int(p.n)
}

// Bit returns bit i of the path, MSB-first.
func (p Path) Bit(i int) byte {
	return (p.bits[i/8] >> (7 - i%8)) & 1
}

// Append returns the path extended by one bit. The receiver is unchanged.
func (p Path) Append(bit byte) Path {
	if bit != 0 {
		p.bits[p.n/8] |= 1 << (7 - p.n%8)
	}
	p.n++
	return p
}

// Compare orders paths exactly like the lexicographic order of their
// '0'/'1' string forms (the original proof serialization order, which the
// deterministic wire format preserves): bitwise up to the common length,
// then shorter-is-smaller.
func (p Path) Compare(q Path) int {
	min := p.n
	if q.n < min {
		min = q.n
	}
	// Whole bytes first; trailing bits beyond each length are zero, but only
	// the common prefix may be compared bytewise.
	whole := int(min) / 8
	for i := 0; i < whole; i++ {
		if p.bits[i] != q.bits[i] {
			if p.bits[i] < q.bits[i] {
				return -1
			}
			return 1
		}
	}
	for i := whole * 8; i < int(min); i++ {
		pb, qb := p.Bit(i), q.Bit(i)
		if pb != qb {
			if pb < qb {
				return -1
			}
			return 1
		}
	}
	switch {
	case p.n < q.n:
		return -1
	case p.n > q.n:
		return 1
	default:
		return 0
	}
}

// String renders the path as a '0'/'1' string — the wire and display form.
func (p Path) String() string {
	var b strings.Builder
	b.Grow(int(p.n))
	for i := 0; i < int(p.n); i++ {
		b.WriteByte('0' + p.Bit(i))
	}
	return b.String()
}

// PathFromString parses a '0'/'1' string (the wire form) into a packed path.
func PathFromString(s string) (Path, error) {
	if len(s) > MaxDepth {
		return Path{}, fmt.Errorf("%w: path of %d bits", ErrBadProof, len(s))
	}
	var p Path
	for _, c := range []byte(s) {
		switch c {
		case '0':
			p = p.Append(0)
		case '1':
			p = p.Append(1)
		default:
			return Path{}, fmt.Errorf("%w: fill position %q", ErrBadProof, s)
		}
	}
	return p, nil
}
