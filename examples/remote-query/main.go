// Remote-query: the full decoupled deployment of Fig. 2 — the service
// provider answers queries over the network as serialized messages, and a
// superlight client verifies every response against enclave-certified roots
// without ever trusting the wire or the SP.
//
// Run with:
//
//	go run ./examples/remote-query
package main

import (
	"fmt"
	"os"
	"time"

	"dcert"
)

func main() {
	logger := dcert.NewLogger(os.Stderr, dcert.LogInfo, dcert.LogF("node", "remote-query"))
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.SmallBank,
		Contracts: 2,
		Accounts:  10,
		KeySpace:  20,
		Seed:      11,
	})
	if err != nil {
		logger.Fatal("deployment", dcert.LogF("err", err))
	}
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewHistoricalIndex("history", "ct/")
	}); err != nil {
		logger.Fatal("add index", dcert.LogF("err", err))
	}
	client := dep.NewSuperlightClient()

	fmt.Println("building the chain with certified indexes...")
	for i := 0; i < 12; i++ {
		blk, blkCert, idxCerts, err := dep.MineAndCertifyHierarchical(15, []string{"history"})
		if err != nil {
			logger.Fatal("block failed", dcert.LogF("height", i), dcert.LogF("err", err))
		}
		if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
			logger.Fatal("chain validation", dcert.LogF("err", err))
		}
		ix, err := dep.SP().Index("history")
		if err != nil {
			logger.Fatal("index", dcert.LogF("err", err))
		}
		root, err := ix.Root()
		if err != nil {
			logger.Fatal("root", dcert.LogF("err", err))
		}
		if err := client.ValidateIndex("history", &blk.Header, root, idxCerts[0]); err != nil {
			logger.Fatal("index certificate", dcert.LogF("err", err))
		}
	}

	// Stand up the SP's network query service and a remote client.
	server := dep.ServeQueries()
	defer server.Stop()
	requester := dep.NewQueryRequester(2 * time.Second)
	defer requester.Close()

	// 1. Remote historical query, verified against the certified root.
	root, _, err := client.IndexRoot("history")
	if err != nil {
		logger.Fatal("index root", dcert.LogF("err", err))
	}
	hres, err := requester.Historical("history", "ct/SB-0000/checking/cust-4", 0, 100)
	if err != nil {
		logger.Fatal("remote historical", dcert.LogF("err", err))
	}
	if err := dcert.VerifyHistorical(root, hres); err != nil {
		logger.Fatal("verification failed", dcert.LogF("err", err))
	}
	fmt.Printf("remote historical query: %d verified versions (%d B over the wire)\n",
		len(hres.Entries), len(hres.Marshal()))

	// 2. Remote direct state read, verified against the certified header.
	hdr, _ := client.Latest()
	sres, err := requester.State("ct/SB-0000/checking/cust-4")
	if err != nil {
		logger.Fatal("remote state", dcert.LogF("err", err))
	}
	if err := dcert.VerifyState(hdr, sres); err != nil {
		logger.Fatal("state verification failed", dcert.LogF("err", err))
	}
	fmt.Printf("remote state read verified against certified header at height %d\n", hdr.Height)

	// 3. A remote error round-trips cleanly.
	if _, err := requester.Historical("no-such-index", "k", 0, 1); err != nil {
		fmt.Printf("remote errors propagate: %v\n", err)
	}
}
