package bench

import (
	"fmt"

	"dcert"
	"dcert/internal/enclave"
)

// VendorRow is one TEE's certificate-construction measurement.
type VendorRow struct {
	// Vendor is the TEE implementation.
	Vendor enclave.Vendor
	// Construction is the mean per-block time in seconds.
	Construction float64
	// InsideShare is the trusted portion's share of total time.
	InsideShare float64
}

// VendorResult compares DCert across TEE families (§6 discussion).
type VendorResult struct {
	Rows []VendorRow
}

// RunVendors measures block-certificate construction under each TEE
// vendor's cost profile, holding the workload fixed.
func RunVendors(scale Scale) (*VendorResult, error) {
	p := ParamsFor(scale)
	res := &VendorResult{}
	for _, v := range enclave.AllVendors() {
		dep, err := dcert.NewDeployment(dcert.Config{
			Workload: dcert.KVStore, Contracts: p.Contracts, Accounts: p.Accounts,
			Difficulty: 4, EnclaveCost: enclave.CostModelFor(v), Seed: int64(v),
		})
		if err != nil {
			return nil, err
		}
		var sum dcert.CostBreakdown
		for i := 0; i < p.CertBlocks; i++ {
			txs, err := dep.GenerateBlockTxs(p.DefaultBlockSize)
			if err != nil {
				return nil, err
			}
			blk, err := dep.Miner().Propose(txs)
			if err != nil {
				return nil, err
			}
			_, bd, err := dep.Issuer().ProcessBlock(blk)
			if err != nil {
				return nil, fmt.Errorf("bench: vendor %s: %w", v, err)
			}
			sum.OutsideExec += bd.OutsideExec
			sum.OutsideProof += bd.OutsideProof
			sum.InsideExec += bd.InsideExec
			sum.InsideOverhead += bd.InsideOverhead
		}
		n := float64(p.CertBlocks)
		total := sum.Total() / n
		inside := (sum.InsideExec + sum.InsideOverhead) / n
		res.Rows = append(res.Rows, VendorRow{
			Vendor:       v,
			Construction: total,
			InsideShare:  inside / total,
		})
	}
	return res, nil
}

// Table renders the comparison.
func (r *VendorResult) Table() *Table {
	t := &Table{
		Title:   "TEE vendors — certificate construction across trusted-hardware families (§6)",
		Note:    "same trusted program, vendor-specific overhead profiles; DCert is TEE-agnostic",
		Columns: []string{"TEE", "construction (ms/block)", "trusted share"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Vendor.String(), ms(row.Construction), fmt.Sprintf("%.0f%%", row.InsideShare*100),
		})
	}
	return t
}
