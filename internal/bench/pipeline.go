package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dcert"
	"dcert/internal/chain"
)

// Pipeline throughput experiment. The pipelined certification engine
// overlaps the untrusted stages (transaction signature verification,
// execution, proof generation) of block i+1 with block i's enclave call.
// Two numbers are reported per worker count:
//
//   - wall blocks/s — the pipeline actually run on this host. On a
//     single-core CI container the stages time-slice one core, so wall
//     throughput understates the architecture (there is nothing to overlap
//     onto); it is reported for ground truth, with per-stage occupancy.
//   - modeled blocks/s — a deterministic schedule model of the same stage
//     durations on a W-core host: pipeline throughput is the reciprocal of
//     the slowest stage, where the verify stage divides across W workers
//     and the enclave's in-call signature re-verification divides across W
//     TCS threads. Stage durations are measured, not assumed.
//
// The speedup column (modeled vs the measured sequential baseline) is the
// headline: the acceptance gate asserts ≥2× at 4 workers.

// PipelineStageMS is a per-stage duration split in milliseconds.
type PipelineStageMS struct {
	// Verify is transaction-signature + structural verification.
	Verify float64 `json:"verify"`
	// Exec is execution + read/write-set computation (minus verify).
	Exec float64 `json:"exec"`
	// Proof is update-proof generation.
	Proof float64 `json:"proof"`
	// Ecall is the enclave call (trusted replay + recursive signature).
	Ecall float64 `json:"ecall"`
	// Commit is state commit, store append, and residual host work.
	Commit float64 `json:"commit"`
}

// PipelinePoint is one worker count's throughput measurement.
type PipelinePoint struct {
	// Workers is the verify-stage worker / enclave TCS count.
	Workers int `json:"workers"`
	// BlocksPerSec is the modeled W-core pipeline throughput.
	BlocksPerSec float64 `json:"blocks_per_sec"`
	// Speedup is BlocksPerSec over the sequential baseline.
	Speedup float64 `json:"speedup"`
	// WallBlocksPerSec is the real pipeline run on this host.
	WallBlocksPerSec float64 `json:"wall_blocks_per_sec"`
	// Occupancy is each stage's busy/wall fraction in the real run
	// (verify is summed across workers and can exceed 1).
	Occupancy map[string]float64 `json:"occupancy"`
	// Ecalls is the enclave entry count of the real run (instrumentation
	//-plane snapshot: one recursive-certification Ecall per block).
	Ecalls uint64 `json:"ecalls"`
	// StageP99MS is the per-stage p99 latency of the real run, from the
	// pipeline's always-on atomic stage histograms.
	StageP99MS map[string]float64 `json:"stage_p99_ms"`
	// Modeled flags BlocksPerSec as schedule-model output.
	Modeled bool `json:"modeled"`
}

// PipelineResult is the full experiment output (and the BENCH_pipeline.json
// schema).
type PipelineResult struct {
	Scale     string `json:"scale"`
	BlockSize int    `json:"block_size"`
	Blocks    int    `json:"blocks"`
	// SequentialBlocksPerSec is the measured ProcessBlock-loop baseline.
	SequentialBlocksPerSec float64 `json:"sequential_blocks_per_sec"`
	// StageMS is the measured per-block stage split of the baseline.
	StageMS PipelineStageMS `json:"stage_ms"`
	Points  []PipelinePoint `json:"points"`
}

// RunPipeline measures sequential certification stage-by-stage, replays the
// same blocks through real pipelines at 1/4/8 workers, and models the
// W-core schedule from the measured stage durations.
func RunPipeline(scale Scale) (*PipelineResult, error) {
	p := ParamsFor(scale)
	blocks := 8
	if scale == Paper {
		blocks = 24
	}
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:    dcert.KVStore,
		Contracts:   p.Contracts,
		Accounts:    p.Accounts,
		Difficulty:  4,
		EnclaveCost: dcert.DefaultEnclaveCostModel(),
		Seed:        7,
	})
	if err != nil {
		return nil, err
	}

	blks := make([]*dcert.Block, blocks)
	for i := range blks {
		txs, err := dep.GenerateBlockTxs(p.DefaultBlockSize)
		if err != nil {
			return nil, err
		}
		if blks[i], err = dep.Miner().Propose(txs); err != nil {
			return nil, err
		}
	}

	// Sequential baseline on the primary issuer, instrumented per stage.
	// The verify share is measured directly (one extra serial verification
	// pass per block, outside the timed window) so it can be split out of
	// the breakdown's combined outside-exec figure.
	var vfySec, execResSec, proofSec, ecallSec, commitSec float64
	seqStart := time.Now()
	for i, blk := range blks {
		vStart := time.Now()
		if err := chain.VerifyTxs(blk.Txs, 1); err != nil {
			return nil, fmt.Errorf("bench: verify block %d: %w", i, err)
		}
		v := time.Since(vStart).Seconds()
		bStart := time.Now()
		_, bd, err := dep.Issuer().ProcessBlock(blk)
		if err != nil {
			return nil, fmt.Errorf("bench: certify block %d: %w", i, err)
		}
		blockWall := time.Since(bStart).Seconds()
		vfySec += v
		execRes := bd.OutsideExec - v
		if execRes < 0 {
			execRes = 0
		}
		execResSec += execRes
		proofSec += bd.OutsideProof
		ecallSec += bd.InsideExec + bd.InsideOverhead
		rest := blockWall - (bd.OutsideExec + bd.OutsideProof + bd.InsideExec + bd.InsideOverhead)
		if rest < 0 {
			rest = 0
		}
		commitSec += rest
	}
	seqWall := time.Since(seqStart).Seconds() - vfySec // the extra verify pass is not part of the baseline
	n := float64(blocks)
	tVfy, tExec, tProof, tEcall, tCommit := vfySec/n, execResSec/n, proofSec/n, ecallSec/n, commitSec/n
	seqPerBlock := tVfy + tExec + tProof + tEcall + tCommit
	res := &PipelineResult{
		Scale:                  scale.String(),
		BlockSize:              p.DefaultBlockSize,
		Blocks:                 blocks,
		SequentialBlocksPerSec: n / seqWall,
		StageMS: PipelineStageMS{
			Verify: tVfy * 1000, Exec: tExec * 1000, Proof: tProof * 1000,
			Ecall: tEcall * 1000, Commit: tCommit * 1000,
		},
	}

	for _, workers := range []int{1, 4, 8} {
		// Real run: a fresh issuer on the same chain streams the blocks
		// through an actual pipeline.
		ci, err := dep.AddIssuer()
		if err != nil {
			return nil, err
		}
		ecallsBefore := ci.Enclave().Stats().Ecalls
		pl, err := dcert.NewPipeline(ci, dcert.PipelineConfig{Workers: workers})
		if err != nil {
			return nil, err
		}
		go func() {
			for _, blk := range blks {
				if err := pl.Submit(blk); err != nil {
					return
				}
			}
			pl.Close()
		}()
		for pres := range pl.Results() {
			if pres.Err != nil {
				return nil, fmt.Errorf("bench: pipeline workers=%d: %w", workers, pres.Err)
			}
		}
		stats := pl.Stats()
		wall := stats.Wall.Seconds()

		// Schedule model on W cores: the verify stage fans across W
		// workers; the enclave re-verifies signatures on W TCS threads, so
		// its call shortens by the parallelizable verify share; executor
		// and committer host work stay serial. Throughput is set by the
		// slowest stage.
		insideVfy := tVfy
		if max := 0.95 * tEcall; insideVfy > max {
			insideVfy = max
		}
		verifyStage := tVfy / float64(workers)
		execStage := tExec + tProof + tCommit
		ecallStage := (tEcall - insideVfy) + insideVfy/float64(workers)
		bottleneck := verifyStage
		if execStage > bottleneck {
			bottleneck = execStage
		}
		if ecallStage > bottleneck {
			bottleneck = ecallStage
		}
		modeled := 1 / bottleneck

		res.Points = append(res.Points, PipelinePoint{
			Workers:          workers,
			BlocksPerSec:     modeled,
			Speedup:          modeled * seqPerBlock,
			WallBlocksPerSec: n / wall,
			Occupancy: map[string]float64{
				"verify": stats.VerifyBusy.Seconds() / wall,
				"exec":   stats.ExecBusy.Seconds() / wall,
				"commit": stats.CommitBusy.Seconds() / wall,
			},
			Ecalls: ci.Enclave().Stats().Ecalls - ecallsBefore,
			StageP99MS: map[string]float64{
				"verify": stats.VerifyP99.Seconds() * 1000,
				"exec":   stats.ExecP99.Seconds() * 1000,
				"commit": stats.CommitP99.Seconds() * 1000,
			},
			Modeled: true,
		})
	}
	return res, nil
}

// WriteJSON persists the result (the make bench-json artifact).
func (r *PipelineResult) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Table renders the result.
func (r *PipelineResult) Table() *Table {
	t := &Table{
		Title: "Pipeline — certification throughput vs worker count",
		Note: fmt.Sprintf("sequential baseline %.1f blocks/s; stage split (ms): verify %.2f, exec %.2f, proof %.2f, ecall %.2f, commit %.2f; blocks/s is a W-core schedule model over measured stages",
			r.SequentialBlocksPerSec, r.StageMS.Verify, r.StageMS.Exec, r.StageMS.Proof, r.StageMS.Ecall, r.StageMS.Commit),
		Columns: []string{
			"workers", "blocks/s (modeled)", "speedup", "wall blocks/s",
			"verify occ", "exec occ", "commit occ", "ecalls", "commit p99 ms",
		},
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.Workers),
			fmt.Sprintf("%.1f", pt.BlocksPerSec),
			fmt.Sprintf("%.2fx", pt.Speedup),
			fmt.Sprintf("%.1f", pt.WallBlocksPerSec),
			fmt.Sprintf("%.2f", pt.Occupancy["verify"]),
			fmt.Sprintf("%.2f", pt.Occupancy["exec"]),
			fmt.Sprintf("%.2f", pt.Occupancy["commit"]),
			fmt.Sprintf("%d", pt.Ecalls),
			fmt.Sprintf("%.2f", pt.StageP99MS["commit"]),
		})
	}
	return t
}
