package query

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dcert/internal/network"
)

// servedRig builds a rig with indexes and a running network query server.
func servedRig(t *testing.T) (*rig, *network.Network, *Requester, func()) {
	t.Helper()
	r, _, _ := queryableRig(t)
	net := network.New()
	srv := Serve(r.sp, net)
	req := NewRequester(net, 2*time.Second)
	cleanup := func() {
		req.Close()
		srv.Stop()
		net.Close()
	}
	return r, net, req, cleanup
}

func TestNetworkedHistoricalQuery(t *testing.T) {
	r, _, req, cleanup := servedRig(t)
	defer cleanup()

	ix, err := r.sp.Index("hist")
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, ix)
	res, err := req.Historical("hist", key, 0, 100)
	if err != nil {
		t.Fatalf("Historical: %v", err)
	}
	if err := VerifyHistorical(root, res); err != nil {
		t.Fatalf("VerifyHistorical over the wire: %v", err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("expected remote results")
	}
}

func TestNetworkedKeywordQuery(t *testing.T) {
	r, _, req, cleanup := servedRig(t)
	defer cleanup()

	ix, err := r.sp.Index("kw")
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	res, err := req.Keyword("kw", []string{"deposit_check"})
	if err != nil {
		t.Fatalf("Keyword: %v", err)
	}
	if err := VerifyKeyword(root, res); err != nil {
		t.Fatalf("VerifyKeyword over the wire: %v", err)
	}
}

func TestNetworkedStateQuery(t *testing.T) {
	r, _, req, cleanup := servedRig(t)
	defer cleanup()

	tip := r.sp.Node().Tip()
	res, err := req.State("never-written")
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if err := VerifyState(&tip.Header, res); err != nil {
		t.Fatalf("VerifyState over the wire: %v", err)
	}
}

func TestNetworkedQueryRemoteError(t *testing.T) {
	_, _, req, cleanup := servedRig(t)
	defer cleanup()

	_, err := req.Historical("no-such-index", "k", 0, 1)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "unknown index") {
		t.Fatalf("remote error should carry the cause: %v", err)
	}
}

func TestNetworkedQueryTimeout(t *testing.T) {
	// No server running on this fabric.
	net := network.New()
	defer net.Close()
	req := NewRequester(net, 50*time.Millisecond)
	defer req.Close()
	if _, err := req.Historical("hist", "k", 0, 1); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestNetworkedQueryConcurrentClients(t *testing.T) {
	r, _, req, cleanup := servedRig(t)
	defer cleanup()

	ix, err := r.sp.Index("hist")
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	root, err := ix.Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	key := anyIndexedKey(t, ix)

	const parallel = 8
	errs := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		go func() {
			res, err := req.Historical("hist", key, 0, 100)
			if err != nil {
				errs <- err
				return
			}
			errs <- VerifyHistorical(root, res)
		}()
	}
	for i := 0; i < parallel; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent query %d: %v", i, err)
		}
	}
}

func TestRequestMarshalRoundTrip(t *testing.T) {
	req := &Request{ID: 7, Kind: reqKeyword, Index: "kw", Keywords: []string{"a", "b"}}
	parsed, err := UnmarshalRequest(req.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalRequest: %v", err)
	}
	if parsed.ID != 7 || parsed.Kind != reqKeyword || len(parsed.Keywords) != 2 {
		t.Fatalf("round trip mismatch: %+v", parsed)
	}
	if _, err := UnmarshalRequest([]byte{1}); err == nil {
		t.Fatal("want error for garbage request")
	}
	if _, err := UnmarshalResponse([]byte{1}); err == nil {
		t.Fatal("want error for garbage response")
	}
}
