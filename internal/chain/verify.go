package chain

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// VerifyTxs checks every transaction's signature and sender binding (the
// verify(tx) of Alg. 2 line 19) across the given number of workers.
// Signature verification is embarrassingly parallel and dominates block
// validation cost, so this is the primitive both the pipeline's untrusted
// verify stage and the multi-threaded enclave (multiple TCS) build on.
//
// The result is deterministic regardless of worker count: if any
// transaction fails, the error reported is the one with the lowest index.
func VerifyTxs(txs []*Transaction, workers int) error {
	if workers <= 1 || len(txs) < 2 {
		for i, tx := range txs {
			if err := tx.Verify(); err != nil {
				return fmt.Errorf("tx %d: %w", i, err)
			}
		}
		return nil
	}
	if workers > len(txs) {
		workers = len(txs)
	}

	var (
		next     atomic.Int64 // work queue cursor
		firstBad atomic.Int64 // lowest failing index + 1 (0 = none)
		errs     = make([]error, len(txs))
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(txs) {
					return
				}
				// Skip work past an already-known earlier failure.
				if bad := firstBad.Load(); bad != 0 && int(bad-1) < i {
					continue
				}
				if err := txs[i].Verify(); err != nil {
					errs[i] = err
					for {
						bad := firstBad.Load()
						if bad != 0 && int(bad-1) <= i {
							break
						}
						if firstBad.CompareAndSwap(bad, int64(i+1)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if bad := firstBad.Load(); bad != 0 {
		i := int(bad - 1)
		return fmt.Errorf("tx %d: %w", i, errs[i])
	}
	return nil
}
