package chash

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"fmt"
	"math/big"
)

// Signature-related errors.
var (
	// ErrBadSignature is returned when a signature fails verification.
	ErrBadSignature = errors.New("chash: signature verification failed")
	// ErrBadPublicKey is returned when a serialized public key cannot be parsed.
	ErrBadPublicKey = errors.New("chash: malformed public key")
)

// PrivateKey is an ECDSA P-256 signing key. In the real system the issuer's
// instance of this key lives inside the SGX enclave and never leaves it; the
// simulator enforces the same property via the enclave package.
type PrivateKey struct {
	key *ecdsa.PrivateKey
}

// PublicKey is the verification half of a PrivateKey, in a canonical
// serializable form.
type PublicKey struct {
	der []byte
	key *ecdsa.PublicKey
}

// GenerateKey creates a fresh P-256 key pair.
func GenerateKey() (*PrivateKey, error) {
	k, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("chash: generate ecdsa key: %w", err)
	}
	return &PrivateKey{key: k}, nil
}

// Public returns the public half of the key.
func (p *PrivateKey) Public() (*PublicKey, error) {
	der, err := x509.MarshalPKIXPublicKey(&p.key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("chash: marshal public key: %w", err)
	}
	return &PublicKey{der: der, key: &p.key.PublicKey}, nil
}

// SignatureSize is the fixed length of serialized signatures (raw r ‖ s,
// 32 bytes each). A fixed size keeps DCert certificates — and therefore the
// superlight client's storage — exactly constant.
const SignatureSize = 64

// Sign produces a fixed-size raw (r ‖ s) signature over the given digest.
func (p *PrivateKey) Sign(digest Hash) ([]byte, error) {
	r, s, err := ecdsa.Sign(rand.Reader, p.key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("chash: sign: %w", err)
	}
	sig := make([]byte, SignatureSize)
	r.FillBytes(sig[:32])
	s.FillBytes(sig[32:])
	return sig, nil
}

// ParsePublicKey deserializes a public key previously produced by
// PublicKey.Marshal.
func ParsePublicKey(der []byte) (*PublicKey, error) {
	anyKey, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPublicKey, err)
	}
	ek, ok := anyKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: not an ECDSA key", ErrBadPublicKey)
	}
	out := make([]byte, len(der))
	copy(out, der)
	return &PublicKey{der: out, key: ek}, nil
}

// Marshal returns the canonical DER (PKIX) encoding of the key.
func (k *PublicKey) Marshal() []byte {
	out := make([]byte, len(k.der))
	copy(out, k.der)
	return out
}

// Fingerprint returns the digest of the canonical encoding; used to bind the
// key into attestation report data.
func (k *PublicKey) Fingerprint() Hash {
	return Sum(DomainQuote, k.der)
}

// Verify checks a fixed-size raw (r ‖ s) signature over the digest.
func (k *PublicKey) Verify(digest Hash, sig []byte) error {
	if len(sig) != SignatureSize {
		return fmt.Errorf("%w: signature must be %d bytes, got %d", ErrBadSignature, SignatureSize, len(sig))
	}
	r := new(big.Int).SetBytes(sig[:32])
	s := new(big.Int).SetBytes(sig[32:])
	if !ecdsa.Verify(k.key, digest[:], r, s) {
		return ErrBadSignature
	}
	return nil
}

// Equal reports whether two public keys have identical canonical encodings.
func (k *PublicKey) Equal(other *PublicKey) bool {
	if other == nil {
		return false
	}
	return string(k.der) == string(other.der)
}
