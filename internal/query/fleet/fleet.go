package fleet

import (
	"fmt"
	"sync"

	"dcert/internal/chain"
	"dcert/internal/network"
	"dcert/internal/obs"
	"dcert/internal/query"
)

// Fleet is the sharded serving plane: N replicas behind a rendezvous
// router. Every replica ingests every block (full fan-out on the write
// path, which is one block per round), while the read path — millions of
// client queries — splits by key affinity so each replica serves a stable
// slice of the key space from a warm cache.
//
// Fleet is safe for concurrent use on the read path (Handle/HandleRaw);
// ProcessBlock and membership changes must be serialized by the caller, as
// with a single SP.
type Fleet struct {
	router *Router

	mu       sync.RWMutex
	replicas map[string]*Replica
	order    []string // insertion order, for deterministic iteration
}

// New creates an empty fleet.
func New() *Fleet {
	return &Fleet{
		router:   NewRouter(),
		replicas: make(map[string]*Replica),
	}
}

// Add registers a replica with the router.
func (f *Fleet) Add(r *Replica) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.replicas[r.Name()]; ok {
		return fmt.Errorf("fleet: replica %q already added", r.Name())
	}
	f.replicas[r.Name()] = r
	f.order = append(f.order, r.Name())
	f.router.Add(r.Name())
	return nil
}

// Remove detaches a replica; its ~1/N of the key space redistributes over
// the remaining members.
func (f *Fleet) Remove(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.replicas, name)
	for i, n := range f.order {
		if n == name {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	f.router.Remove(name)
}

// Size reports the replica count.
func (f *Fleet) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.replicas)
}

// Replica returns a member by name.
func (f *Fleet) Replica(name string) (*Replica, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	r, ok := f.replicas[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown replica %q", name)
	}
	return r, nil
}

// Router exposes the fleet's consistent-hash router.
func (f *Fleet) Router() *Router {
	return f.router
}

// ProcessBlock feeds the block to every replica, in membership order.
func (f *Fleet) ProcessBlock(blk *chain.Block) error {
	f.mu.RLock()
	names := append([]string(nil), f.order...)
	f.mu.RUnlock()
	for _, name := range names {
		r, err := f.Replica(name)
		if err != nil {
			continue // removed mid-iteration
		}
		if err := r.ProcessBlock(blk); err != nil {
			return fmt.Errorf("fleet: replica %q: %w", name, err)
		}
	}
	return nil
}

// route picks the replica owning a request's affinity key.
func (f *Fleet) route(req *query.Request) (*Replica, error) {
	name, err := f.router.Route(req.AffinityKey())
	if err != nil {
		return nil, err
	}
	return f.Replica(name)
}

// Handle answers one parsed request on the owning replica.
func (f *Fleet) Handle(req *query.Request) *query.Response {
	r, err := f.route(req)
	if err != nil {
		return &query.Response{ID: req.ID, Err: err.Error()}
	}
	return r.Execute(req)
}

// HandleRaw answers one serialized request — the entry point a transport
// RPC route mounts. Safe for concurrent calls (the wire transport runs each
// RPC in its own goroutine).
func (f *Fleet) HandleRaw(raw []byte) []byte {
	req, err := query.UnmarshalRequest(raw)
	if err != nil {
		return (&query.Response{Err: err.Error()}).Marshal()
	}
	return f.Handle(req).Marshal()
}

// Instrument attaches every replica to a metrics registry.
func (f *Fleet) Instrument(reg *obs.Registry) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, name := range f.order {
		f.replicas[name].Instrument(reg)
	}
}

// DefaultQueueDepth bounds each replica's bus-serving queue.
const DefaultQueueDepth = 256

// DefaultWorkers is the per-replica worker count for bus serving.
const DefaultWorkers = 4

// BusServer runs a fleet behind the network's query topic, replacing the
// single-SP query.Server: a dispatcher routes each request to the owning
// replica's bounded queue, and per-replica workers execute and respond.
type BusServer struct {
	fleet *Fleet
	bus   network.Bus
	sub   *network.Subscription
	done  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	queues map[string]chan busTask
}

type busTask struct {
	req *query.Request
}

// ServeBus starts serving the query topic across the fleet's replicas with
// the given per-replica worker count (0 = DefaultWorkers).
func (f *Fleet) ServeBus(bus network.Bus, workers int) *BusServer {
	if workers <= 0 {
		workers = DefaultWorkers
	}
	s := &BusServer{
		fleet:  f,
		bus:    bus,
		sub:    bus.Subscribe(query.TopicQueries, 64),
		done:   make(chan struct{}),
		queues: make(map[string]chan busTask),
	}
	s.wg.Add(1)
	go s.dispatch(workers)
	return s
}

// Stop drains the server: the dispatcher exits, queues close, and workers
// finish their in-flight requests.
func (s *BusServer) Stop() {
	s.sub.Cancel()
	close(s.done)
	s.wg.Wait()
}

// queueFor returns (creating on first use) the owning replica's queue.
func (s *BusServer) queueFor(name string, workers int) chan busTask {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		q = make(chan busTask, DefaultQueueDepth)
		s.queues[name] = q
		for i := 0; i < workers; i++ {
			s.wg.Add(1)
			go s.worker(name, q)
		}
	}
	return q
}

func (s *BusServer) dispatch(workers int) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		for _, q := range s.queues {
			close(q)
		}
		s.mu.Unlock()
	}()
	for {
		select {
		case <-s.done:
			return
		case m, ok := <-s.sub.C:
			if !ok {
				return
			}
			raw, isBytes := m.Payload.([]byte)
			if !isBytes {
				continue
			}
			req, err := query.UnmarshalRequest(raw)
			if err != nil {
				continue // gossip path: malformed traffic is dropped
			}
			name, err := s.fleet.router.Route(req.AffinityKey())
			if err != nil {
				continue // empty fleet
			}
			if r, err := s.fleet.Replica(name); err == nil {
				r.met.queueDepth.Add(1)
				s.queueFor(name, workers) <- busTask{req: req}
			}
		}
	}
}

func (s *BusServer) worker(name string, q chan busTask) {
	defer s.wg.Done()
	for task := range q {
		r, err := s.fleet.Replica(name)
		if err != nil {
			continue
		}
		r.met.queueDepth.Add(-1)
		respRaw := r.Execute(task.req).Marshal()
		if err := s.bus.Publish(query.TopicResults, name, respRaw); err != nil {
			return // fabric shut down
		}
	}
}
