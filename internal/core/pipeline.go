package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/obs"
	"dcert/internal/statedb"
)

// Pipelined certificate construction. Alg. 1 is strictly sequential —
// untrusted prepare, one Ecall, advance — yet only the recursive signature
// step is order-dependent: everything the host does outside the enclave for
// block i+1 can run while block i is inside. The Pipeline decomposes
// gen_cert into four stages over a bounded stream of blocks:
//
//	verify   — W workers; the state-independent checks (consensus seal,
//	           transaction-root, transaction signatures). Signature
//	           verification dominates block cost and parallelizes freely.
//	execute  — one goroutine, block order; comp_data_set + get_update_proof
//	           against the speculative state, then a speculative state
//	           commit (with an undo record) so block i+1 can execute
//	           against block i's post-state before i is certified.
//	commit   — one goroutine, block order; the recursive EcallSigGen (the
//	           only stage the enclave serializes), then the atomic
//	           store-append + certificate publication.
//	index    — hierarchical index certification (Alg. 5) fanned out across
//	           all registered indexes in parallel per block, reusing the
//	           enclave write-set cache; ordered per index across blocks.
//
// The ordering invariant: exactly one block-certification Ecall is in
// flight at any time, and blocks enter it in chain order — the recursive
// certificate chain is identical to the sequential scheme's, byte for byte.
// Everything ahead of the committer is speculation: if an Ecall fails, the
// pipeline is aborted, or the host crashes mid-stream, every state commit
// past the last certified block is rolled back from the undo log (newest
// first), leaving the replica exactly at its certified tip — which is what
// makes checkpointed recovery (ResumeIssuer) oblivious to the pipeline.

// Pipeline errors.
var (
	// ErrPipelineAborted is reported for blocks discarded because the
	// pipeline was aborted or an earlier block failed.
	ErrPipelineAborted = errors.New("core: pipeline aborted")
	// ErrPipelineClosed is returned by Submit after Close or Abort.
	ErrPipelineClosed = errors.New("core: pipeline closed")
	// ErrPipelineBusy is returned when a second pipeline (or a concurrent
	// sequential certification) is started on an issuer mid-stream.
	ErrPipelineBusy = errors.New("core: issuer already has an active pipeline")
)

// PipelineConfig tunes a certification pipeline.
type PipelineConfig struct {
	// Workers is the untrusted verify-stage worker count, and doubles as
	// the enclave thread (TCS) count for in-enclave signature verification.
	// Default 1.
	Workers int
	// Depth bounds the incoming-block channel and therefore how far
	// speculation may run ahead of certification (default 2×Workers).
	Depth int
	// IndexJobs, when set, prepares the hierarchical index-certification
	// jobs for each certified block from its verified write set. It is
	// called in block order from the index stage, so implementations may
	// track per-index recursion state. Nil disables index fan-out.
	IndexJobs func(blk *chain.Block, writes map[string][]byte) ([]*IndexJob, error)

	// Segment, when set with MaxBlocks > 1, replaces the per-block committer
	// with the segment committer: up to MaxBlocks prepared blocks are
	// certified by ONE EcallSegmentSigGen (closing early after MaxDelay so
	// tip latency stays bounded under slow arrival). Mutually exclusive with
	// IndexJobs — hierarchical index certification verifies per-block
	// certificates, which multi-block segments do not produce. MaxBlocks ≤ 1
	// keeps the per-block committer and its byte-identical certificates.
	Segment *SegmentPolicy

	// proofHook, when set, substitutes the update proof handed from the
	// prepare side to the commit side (the trust boundary). Test-only: the
	// fuzz harness injects adversarial proofs here.
	proofHook func(proof *statedb.UpdateProof) *statedb.UpdateProof
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Depth < 1 {
		c.Depth = 2 * c.Workers
	}
	return c
}

// PipelineResult is the per-block outcome, delivered in submission order.
type PipelineResult struct {
	// Block is the submitted block.
	Block *chain.Block
	// Cert is the block certificate (nil on error).
	Cert *Certificate
	// IndexCerts are the hierarchical index certificates in job order
	// (nil without index fan-out).
	IndexCerts []*Certificate
	// Breakdown is the per-block cost split. Stage attribution is exact;
	// under concurrent index fan-out the inside-enclave split may include
	// overlapping index Ecalls.
	Breakdown CostBreakdown
	// Err reports why this block was not certified.
	Err error
	// Segment is the covering segment certificate when this block was
	// certified through the segment committer (shared by every covered
	// block; Cert is then the segment's certificate). Nil on the per-block
	// path.
	Segment *SegmentCert
}

// PipelineStats aggregates per-stage busy time for occupancy accounting.
// Busy times and quantiles are read from the pipeline's always-on atomic
// stage histograms, so snapshotting mid-stream is race-free.
type PipelineStats struct {
	// Blocks is the number certified (errors excluded).
	Blocks int
	// VerifyBusy is summed across all verify workers.
	VerifyBusy time.Duration
	// ExecBusy, CommitBusy, IndexBusy are single-goroutine stage times.
	ExecBusy   time.Duration
	CommitBusy time.Duration
	IndexBusy  time.Duration
	// VerifyP99, ExecP99, CommitP99, IndexP99 are per-block p99 stage
	// latencies (zero for stages that processed nothing).
	VerifyP99 time.Duration
	ExecP99   time.Duration
	CommitP99 time.Duration
	IndexP99  time.Duration
	// Wall is first-submit to pipeline-drained.
	Wall time.Duration
}

// pipeItem is one block moving through the stages.
type pipeItem struct {
	blk      *chain.Block
	verified chan error // capacity 1: verify stage → executor
	res      *PipelineResult
	// span is the block's root trace span (no-op without a tracer); stage
	// goroutines hang child spans off it.
	span obs.SpanHandle
	// prepared state, set by the executor:
	proof  *statedb.UpdateProof
	writes map[string][]byte
}

// undoRec can restore the state database to how it was before one block's
// speculative commit.
type undoRec struct {
	blockHash chash.Hash
	entries   []undoEntry
}

type undoEntry struct {
	key     string
	prior   []byte
	existed bool
}

// Pipeline is a running pipelined certification engine over one Issuer.
type Pipeline struct {
	ci  *Issuer
	cfg PipelineConfig

	verifyCh chan *pipeItem
	orderCh  chan *pipeItem
	commitCh chan *pipeItem
	indexCh  chan *pipeItem
	out      chan *PipelineResult

	// lifeMu serializes Submit against Close (a send on a closed channel
	// panics). It is the only lock held across a blocking channel send; the
	// stages never take it, so a Submit stalled on a full pipeline cannot
	// deadlock them.
	lifeMu sync.Mutex
	closed bool

	mu      sync.Mutex
	undo    []*undoRec // oldest first; entries not yet certified
	failErr error
	failed  atomic.Bool
	started time.Time
	stats   PipelineStats

	// po carries the stage histograms (always-on: they are also the busy
	// accounting) plus registered queue/abort/rollback instruments.
	po pipelineObs

	wg   sync.WaitGroup
	done chan struct{}
}

// NewPipeline starts a certification pipeline on the issuer. The issuer must
// not be driven by anything else (sequential ProcessBlock calls included)
// until the pipeline has drained or aborted.
func NewPipeline(ci *Issuer, cfg PipelineConfig) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	segmented := cfg.Segment != nil && cfg.Segment.MaxBlocks > 1
	// Validate before claiming the issuer: a rejected config must not leave
	// the pipelining latch set.
	if segmented {
		if cfg.IndexJobs != nil {
			return nil, fmt.Errorf("%w: segment certification cannot be combined with index fan-out", ErrBadSegment)
		}
		if cfg.Segment.MaxBlocks > maxSegmentBlocks {
			return nil, fmt.Errorf("%w: MaxBlocks %d beyond %d", ErrBadSegment, cfg.Segment.MaxBlocks, maxSegmentBlocks)
		}
	}
	if !ci.pipelining.CompareAndSwap(false, true) {
		return nil, ErrPipelineBusy
	}
	// The enclave verifies transaction signatures on as many TCS entries as
	// the host runs verify workers.
	ci.prog.SetParallelism(cfg.Workers)

	pl := &Pipeline{
		ci:       ci,
		cfg:      cfg,
		verifyCh: make(chan *pipeItem, cfg.Depth),
		orderCh:  make(chan *pipeItem, cfg.Depth),
		commitCh: make(chan *pipeItem, 1),
		// The index stage may lag certification; the committer blocks once
		// the gap approaches the enclave write-cache budget, so cached
		// write sets are never evicted before their index Ecalls run.
		indexCh: make(chan *pipeItem, writeCacheLimit-2),
		out:     make(chan *PipelineResult, cfg.Depth),
		done:    make(chan struct{}),
	}
	pl.po = newPipelineObs(ci.met)
	pl.started = time.Now()
	ci.met.logger.Debug("pipeline started",
		obs.F("workers", cfg.Workers), obs.F("depth", cfg.Depth))

	for w := 0; w < cfg.Workers; w++ {
		pl.wg.Add(1)
		go pl.verifier()
	}
	pl.wg.Add(2)
	go pl.executor()
	if segmented {
		go pl.committerSegmented()
	} else {
		go pl.committer()
	}
	if cfg.IndexJobs != nil {
		pl.wg.Add(1)
		go pl.indexer()
	}
	go pl.controller()
	return pl, nil
}

// Submit feeds the next block, in chain order. It blocks when the pipeline
// is Depth blocks ahead of certification.
func (pl *Pipeline) Submit(blk *chain.Block) error {
	pl.lifeMu.Lock()
	defer pl.lifeMu.Unlock()
	if pl.closed {
		return ErrPipelineClosed
	}
	item := &pipeItem{
		blk:      blk,
		verified: make(chan error, 1),
		res:      &PipelineResult{Block: blk},
		span:     pl.ci.met.tracer.Start("pipeline.block", 0),
	}
	// Both sends under the lock: orderCh defines result order, verifyCh
	// feeds the workers; the two must enqueue identically.
	pl.po.queueVerify.Add(1)
	pl.orderCh <- item
	pl.verifyCh <- item
	return nil
}

// Close declares the stream complete: already-submitted blocks drain, then
// Results is closed.
func (pl *Pipeline) Close() {
	pl.lifeMu.Lock()
	defer pl.lifeMu.Unlock()
	if pl.closed {
		return
	}
	pl.closed = true
	close(pl.orderCh)
	close(pl.verifyCh)
}

// Abort tears the pipeline down mid-stream: in-flight blocks fail with
// ErrPipelineAborted, every speculative state commit is rolled back, and the
// issuer is left exactly at its certified tip. It blocks until quiescent.
// This is the crash path — Kill on a certification plane calls it.
func (pl *Pipeline) Abort() {
	pl.fail(ErrPipelineAborted)
	pl.Close()
	<-pl.done
}

// Wait blocks until the pipeline has fully drained (Close or Abort must
// have been called) and returns the first failure, if any.
func (pl *Pipeline) Wait() error {
	<-pl.done
	return pl.Err()
}

// Results delivers one PipelineResult per submitted block, in submission
// order. The channel closes once the pipeline has drained after Close.
func (pl *Pipeline) Results() <-chan *PipelineResult {
	return pl.out
}

// Err returns the first failure (nil while healthy).
func (pl *Pipeline) Err() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.failErr
}

// Stats snapshots stage accounting. Wall stops ticking once drained. Safe to
// call concurrently with a running pipeline: busy times and quantiles come
// from the atomic stage histograms, never from stage-goroutine writes.
func (pl *Pipeline) Stats() PipelineStats {
	pl.mu.Lock()
	s := pl.stats
	if s.Wall == 0 {
		s.Wall = time.Since(pl.started)
	}
	pl.mu.Unlock()
	s.VerifyBusy = pl.po.stage[stageVerify].SumDuration()
	s.ExecBusy = pl.po.stage[stageExec].SumDuration()
	s.CommitBusy = pl.po.stage[stageCommit].SumDuration()
	s.IndexBusy = pl.po.stage[stageIndex].SumDuration()
	s.VerifyP99 = stageP99(pl.po.stage[stageVerify])
	s.ExecP99 = stageP99(pl.po.stage[stageExec])
	s.CommitP99 = stageP99(pl.po.stage[stageCommit])
	s.IndexP99 = stageP99(pl.po.stage[stageIndex])
	return s
}

// stageP99 estimates a stage's p99 latency from its histogram (zero while
// the stage has observed nothing).
func stageP99(h *obs.Histogram) time.Duration {
	snap := h.Snapshot()
	if snap.Count == 0 {
		return 0
	}
	return time.Duration(snap.Quantile(0.99) * float64(time.Second))
}

func (pl *Pipeline) fail(err error) {
	pl.mu.Lock()
	first := pl.failErr == nil
	if first {
		pl.failErr = err
	}
	pl.mu.Unlock()
	pl.failed.Store(true)
	if first {
		pl.po.aborts.Inc()
		pl.ci.met.logger.Warn("pipeline aborted", obs.ErrField(err))
	}
}

// verifier is the stateless stage: anything checkable without the state
// database, fanned across Workers goroutines.
func (pl *Pipeline) verifier() {
	defer pl.wg.Done()
	for item := range pl.verifyCh {
		pl.po.queueVerify.Add(-1)
		if pl.failed.Load() {
			item.verified <- ErrPipelineAborted
			continue
		}
		sp := pl.ci.met.tracer.Start("pipeline.verify", item.span.ID())
		start := time.Now()
		err := pl.verifyStateless(item.blk)
		pl.po.observeStage(stageVerify, start)
		sp.End()
		item.verified <- err
	}
}

func (pl *Pipeline) verifyStateless(blk *chain.Block) error {
	if err := consensus.Verify(pl.ci.node.Params(), &blk.Header); err != nil {
		return err
	}
	if err := blk.VerifyTxRoot(); err != nil {
		return err
	}
	if err := chain.VerifyTxs(blk.Txs, 1); err != nil {
		return fmt.Errorf("core: pipeline verify: %w", err)
	}
	return nil
}

// executor is the speculative untrusted stage: execution, proof generation,
// undo capture, and the speculative state commit, strictly in block order.
func (pl *Pipeline) executor() {
	defer pl.wg.Done()
	defer close(pl.commitCh)
	specTip, _ := pl.ci.certifiedTip()
	for item := range pl.orderCh {
		verr := <-item.verified
		if pl.failed.Load() {
			item.res.Err = pl.abortErr()
			pl.po.queueCommit.Add(1)
			pl.commitCh <- item
			continue
		}
		if verr != nil {
			item.res.Err = verr
			pl.fail(verr)
			pl.po.queueCommit.Add(1)
			pl.commitCh <- item
			continue
		}
		sp := pl.ci.met.tracer.Start("pipeline.execute", item.span.ID())
		start := time.Now()
		err := pl.executeSpeculative(specTip, item)
		pl.po.observeStage(stageExec, start)
		sp.End()
		if err != nil {
			item.res.Err = err
			pl.fail(err)
		} else {
			specTip = item.blk
		}
		pl.po.queueCommit.Add(1)
		pl.commitCh <- item
	}
}

// executeSpeculative runs Alg. 1 lines 2-3 for one block on top of the
// speculative state, then commits its writes under an undo record.
func (pl *Pipeline) executeSpeculative(specTip *chain.Block, item *pipeItem) error {
	blk := item.blk
	if blk.Header.PrevHash != specTip.Header.Hash() || blk.Header.Height != specTip.Header.Height+1 {
		return fmt.Errorf("%w: block %d (%s) does not extend pipeline tip %d (%s)",
			chain.ErrBadBlock, blk.Header.Height, blk.Hash(), specTip.Header.Height, specTip.Hash())
	}
	state := pl.ci.node.State()
	execTimer := startTimer()
	res, err := state.ExecuteBlockPreverified(pl.ci.node.Registry(), blk.Txs)
	if err != nil {
		return fmt.Errorf("core: comp_data_set: %w", err)
	}
	item.res.Breakdown.OutsideExec += execTimer()

	proofTimer := startTimer()
	proof, err := state.UpdateProofFor(res)
	if err != nil {
		return fmt.Errorf("core: get_update_proof: %w", err)
	}
	item.res.Breakdown.OutsideProof += proofTimer()
	if pl.cfg.proofHook != nil {
		proof = pl.cfg.proofHook(proof)
	}

	// Capture the undo record before mutating anything, then commit the
	// writes speculatively so the next block executes on this post-state.
	rec := &undoRec{blockHash: blk.Hash(), entries: make([]undoEntry, 0, len(res.WriteSet))}
	for k := range res.WriteSet {
		prior, err := state.Get([]byte(k))
		if err != nil {
			return fmt.Errorf("core: undo capture %q: %w", k, err)
		}
		rec.entries = append(rec.entries, undoEntry{key: k, prior: prior, existed: prior != nil})
	}
	if _, err := state.Commit(res.WriteSet); err != nil {
		return fmt.Errorf("core: speculative commit: %w", err)
	}
	pl.mu.Lock()
	pl.undo = append(pl.undo, rec)
	pl.mu.Unlock()

	item.proof = proof
	item.writes = res.WriteSet
	return nil
}

// committer drains prepared blocks through the one-at-a-time recursive
// Ecall, then atomically adopts block + certificate.
func (pl *Pipeline) committer() {
	defer pl.wg.Done()
	defer close(pl.indexCh)
	prev, prevCert := pl.ci.certifiedTip()
	// Items arrive in block order, so the abort gate is local: blocks
	// before the first failed one must still certify even when a later
	// block has already tripped the pipeline-wide failed flag (the
	// executor runs ahead of the Ecall), and everything from the first
	// failure onward aborts.
	aborted := false
	for item := range pl.commitCh {
		pl.po.queueCommit.Add(-1)
		if item.res.Err != nil {
			aborted = true
		} else if aborted {
			item.res.Err = pl.abortErr()
		} else {
			sp := pl.ci.met.tracer.Start("pipeline.commit", item.span.ID())
			start := time.Now()
			err := pl.commitOne(prev, prevCert, item)
			pl.po.observeStage(stageCommit, start)
			sp.End()
			if err != nil {
				item.res.Err = err
				pl.fail(err)
				aborted = true
			} else {
				prev, prevCert = item.blk, item.res.Cert
				pl.po.blocks.Inc()
				pl.mu.Lock()
				pl.stats.Blocks++
				pl.mu.Unlock()
			}
		}
		if pl.cfg.IndexJobs != nil {
			pl.po.queueIndex.Add(1)
			pl.indexCh <- item
		} else {
			item.span.End()
			pl.out <- item.res
		}
	}
}

func (pl *Pipeline) commitOne(prev *chain.Block, prevCert *Certificate, item *pipeItem) error {
	sig, err := pl.ci.ecallSigGen(prev, prevCert, item.blk, item.proof, &item.res.Breakdown)
	if err != nil {
		return err
	}
	cert := pl.ci.newCert(BlockDigest(&item.blk.Header), sig)
	if err := pl.ci.adopt(item.blk, cert); err != nil {
		return err
	}
	// The block is certified: its speculative commit is now durable, so its
	// undo record (always the oldest) retires.
	pl.mu.Lock()
	if len(pl.undo) > 0 && pl.undo[0].blockHash == item.blk.Hash() {
		pl.undo = pl.undo[1:]
	}
	pl.mu.Unlock()
	item.res.Cert = cert
	return nil
}

// committerSegmented is the amortizing commit stage: it accumulates prepared
// blocks and certifies each batch with ONE segment Ecall. A batch closes at
// MaxBlocks, at MaxDelay after its first block arrived (the tip-latency
// bound), at stream end, or at an error boundary — blocks prepared before a
// failure still certify, exactly like the per-block committer's local abort
// gate. A batch pending when the pipeline has already failed is speculation
// and dies with it: those blocks abort uncertified, their state commits roll
// back, and a restarted issuer re-certifies them as the uncertified suffix.
func (pl *Pipeline) committerSegmented() {
	defer pl.wg.Done()
	defer close(pl.indexCh)
	pol := *pl.cfg.Segment
	prev, prevCert := pl.ci.certifiedTip()
	prevHeaders := pl.ci.lastSegmentHeaders()
	var batch []*pipeItem
	aborted := false

	emit := func(item *pipeItem) {
		item.span.End()
		pl.out <- item.res
	}
	flush := func() {
		if len(batch) == 0 || aborted {
			return
		}
		start := time.Now()
		blks := make([]*chain.Block, len(batch))
		proofs := make([]*statedb.UpdateProof, len(batch))
		for i, it := range batch {
			blks[i] = it.blk
			proofs[i] = it.proof
		}
		tip := batch[len(batch)-1]
		sig, err := pl.ci.ecallSegmentSigGen(prev, prevHeaders, prevCert, blks, proofs, &tip.res.Breakdown)
		if err == nil {
			headers := segmentHeaders(blks)
			cert := pl.ci.newCert(SegmentDigest(headers), sig)
			var seg *SegmentCert
			seg, err = pl.ci.adoptSegment(blks, headers, cert)
			if err == nil {
				pl.mu.Lock()
				for _, it := range batch {
					// Each certified block's speculative commit is now
					// durable; its undo record (always the oldest) retires.
					if len(pl.undo) > 0 && pl.undo[0].blockHash == it.blk.Hash() {
						pl.undo = pl.undo[1:]
					}
					pl.stats.Blocks++
				}
				pl.mu.Unlock()
				prev, prevCert, prevHeaders = blks[len(blks)-1], cert, headers
				for _, it := range batch {
					it.res.Cert = cert
					it.res.Segment = seg
					pl.po.blocks.Inc()
				}
			}
		}
		if err != nil {
			pl.fail(err)
			aborted = true
			for _, it := range batch {
				if it.res.Err == nil {
					it.res.Err = err
				}
			}
		}
		pl.po.observeStage(stageCommit, start)
		for _, it := range batch {
			emit(it)
		}
		batch = batch[:0]
	}

	var timer *time.Timer
	var deadline <-chan time.Time
	disarm := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			deadline = nil
		}
	}
	defer disarm()

	for {
		select {
		case item, ok := <-pl.commitCh:
			if !ok {
				disarm()
				// Stream end: a healthy pipeline certifies its final partial
				// batch; a failed one abandons it (the blocks roll back).
				if pl.failed.Load() && !aborted {
					for _, it := range batch {
						it.res.Err = pl.abortErr()
						emit(it)
					}
					batch = nil
				} else {
					flush()
				}
				return
			}
			pl.po.queueCommit.Add(-1)
			switch {
			case item.res.Err != nil:
				disarm()
				if errors.Is(item.res.Err, ErrPipelineAborted) {
					// Abort boundary: the enclave is being torn down (Kill),
					// so the open batch may not take a last-gasp Ecall — it
					// is speculation and dies with the pipeline, rolling back.
					for _, it := range batch {
						it.res.Err = pl.abortErr()
						emit(it)
					}
					batch = batch[:0]
				} else {
					// Error boundary: everything before the failed block
					// still certifies, everything from it onward aborts.
					flush()
				}
				aborted = true
				emit(item)
			case aborted:
				item.res.Err = pl.abortErr()
				emit(item)
			default:
				batch = append(batch, item)
				if len(batch) == 1 && pol.MaxDelay > 0 {
					timer = time.NewTimer(pol.MaxDelay)
					deadline = timer.C
				}
				if len(batch) >= pol.MaxBlocks {
					disarm()
					flush()
				}
			}
		case <-deadline:
			timer = nil
			deadline = nil
			flush()
		}
	}
}

// indexer fans hierarchical index certification out in parallel across the
// block's indexes (Alg. 5 lines 3-15 per index), in block order across
// blocks so each index's own certificate recursion stays intact.
func (pl *Pipeline) indexer() {
	defer pl.wg.Done()
	// No pipeline-wide failed check here: the committer has already marked
	// every item from the first failure onward, and a block it did commit
	// is certified — its index certs must follow even if a later block has
	// since failed.
	for item := range pl.indexCh {
		pl.po.queueIndex.Add(-1)
		if item.res.Err == nil {
			sp := pl.ci.met.tracer.Start("pipeline.index", item.span.ID())
			start := time.Now()
			err := pl.indexOne(item)
			pl.po.observeStage(stageIndex, start)
			sp.End()
			if err != nil {
				item.res.Err = err
				pl.fail(err)
			}
		}
		item.span.End()
		pl.out <- item.res
	}
}

func (pl *Pipeline) indexOne(item *pipeItem) error {
	jobs, err := pl.cfg.IndexJobs(item.blk, item.writes)
	if err != nil {
		return fmt.Errorf("core: pipeline index jobs: %w", err)
	}
	if len(jobs) == 0 {
		return nil
	}
	prev, err := pl.ci.node.Store().Get(item.blk.Header.PrevHash)
	if err != nil {
		return fmt.Errorf("core: pipeline index prev: %w", err)
	}
	certs := make([]*Certificate, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job *IndexJob) {
			defer wg.Done()
			var bd CostBreakdown
			cert, err := pl.ci.ecallHierarchicalIndex(prev, item.blk, item.res.Cert, job, &bd)
			if err != nil {
				errs[i] = err
				return
			}
			certs[i] = cert
			pl.ci.storeIndexCert(job.Updater, item.blk.Hash(), job.NewRoot, cert)
		}(i, job)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	item.res.IndexCerts = certs
	return nil
}

// controller waits for the stages, rolls back any uncertified speculation,
// and closes the result stream.
func (pl *Pipeline) controller() {
	pl.wg.Wait()
	pl.rollback()
	pl.mu.Lock()
	pl.stats.Wall = time.Since(pl.started)
	pl.mu.Unlock()
	pl.ci.pipelining.Store(false)
	close(pl.out)
	close(pl.done)
}

// rollback undoes every speculative state commit past the certified tip,
// newest first, restoring the replica to exactly the certified state.
func (pl *Pipeline) rollback() {
	pl.mu.Lock()
	pending := pl.undo
	pl.undo = nil
	pl.mu.Unlock()
	if len(pending) > 0 {
		pl.po.rollbacks.Add(uint64(len(pending)))
		pl.ci.met.logger.Warn("rolling back speculative commits",
			obs.F("blocks", len(pending)))
	}
	state := pl.ci.node.State()
	for i := len(pending) - 1; i >= 0; i-- {
		for _, e := range pending[i].entries {
			if e.existed {
				if err := state.Set([]byte(e.key), e.prior); err != nil {
					panic(fmt.Sprintf("core: pipeline rollback %q: %v", e.key, err))
				}
			} else {
				if err := state.Delete([]byte(e.key)); err != nil {
					panic(fmt.Sprintf("core: pipeline rollback delete %q: %v", e.key, err))
				}
			}
		}
	}
}

func (pl *Pipeline) abortErr() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.failErr != nil {
		return fmt.Errorf("%w: %v", ErrPipelineAborted, pl.failErr)
	}
	return ErrPipelineAborted
}

// ProcessBlocksPipelined certifies a batch of blocks through a pipeline and
// returns the per-block results in order — the drop-in pipelined counterpart
// of calling ProcessBlock in a loop (catch-up after recovery uses it).
func (ci *Issuer) ProcessBlocksPipelined(blks []*chain.Block, cfg PipelineConfig) ([]*PipelineResult, error) {
	pl, err := NewPipeline(ci, cfg)
	if err != nil {
		return nil, err
	}
	go func() {
		for _, blk := range blks {
			if err := pl.Submit(blk); err != nil {
				break
			}
		}
		pl.Close()
	}()
	results := make([]*PipelineResult, 0, len(blks))
	for res := range pl.Results() {
		results = append(results, res)
	}
	return results, pl.Err()
}
