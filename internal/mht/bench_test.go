package mht

import (
	"fmt"
	"testing"

	"dcert/internal/chash"
)

func benchLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("tx-payload-%08d", i))
	}
	return leaves
}

// BenchmarkMHTBuild measures full tree construction over a block-sized
// transaction list — the per-block H_tx cost. Leaf digesting and the level
// reduction both fan out across cores above the parallel threshold.
func BenchmarkMHTBuild(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			leaves := benchLeaves(n)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(leaves); err != nil {
					b.Fatalf("Build: %v", err)
				}
			}
		})
	}
}

// BenchmarkMHTBuildFromDigests isolates the interior-node reduction (the
// pure chash.Node loop) from leaf digesting.
func BenchmarkMHTBuildFromDigests(b *testing.B) {
	leaves := benchLeaves(4096)
	digests := make([]chash.Hash, len(leaves))
	for i, l := range leaves {
		digests[i] = chash.Leaf(l)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildFromDigests(digests); err != nil {
			b.Fatalf("BuildFromDigests: %v", err)
		}
	}
}
