package query

import (
	"bytes"
	"testing"

	"dcert/internal/mpt"
)

// Fuzz targets for the batch wire codec: the decoders face untrusted network
// bytes, so they must never panic, and anything they accept must re-encode
// canonically (decode → marshal → decode is a fixed point).

func FuzzUnmarshalBatchStateResult(f *testing.F) {
	// Seed with a genuine encoding so the fuzzer starts near the format.
	tr := mpt.New()
	for _, kv := range [][2]string{{"a", "1"}, {"ab", "2"}, {"abc", "3"}} {
		if err := tr.Put([]byte(kv[0]), []byte(kv[1])); err != nil {
			f.Fatalf("Put: %v", err)
		}
	}
	if _, err := tr.Hash(); err != nil {
		f.Fatalf("Hash: %v", err)
	}
	w, err := tr.WitnessForKeys([][]byte{[]byte("a"), []byte("abc"), []byte("zz")})
	if err != nil {
		f.Fatalf("WitnessForKeys: %v", err)
	}
	seed := &BatchStateResult{
		Keys:   []string{"a", "abc", "zz"},
		Values: [][]byte{[]byte("1"), []byte("3"), nil},
		Proof:  w,
	}
	f.Add(seed.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, raw []byte) {
		res, err := UnmarshalBatchStateResult(raw)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		re := res.Marshal()
		again, err := UnmarshalBatchStateResult(re)
		if err != nil {
			t.Fatalf("accepted bytes failed to re-decode: %v", err)
		}
		if !bytes.Equal(re, again.Marshal()) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}

func FuzzUnmarshalRequest(f *testing.F) {
	f.Add((&Request{ID: 1, Kind: reqState, Key: "k"}).Marshal())
	f.Add(NewBatchStateRequest([]string{"a", "b"}).Marshal())
	f.Add((&Request{ID: 2, Kind: reqKeyword, Index: "kw", Keywords: []string{"x"}}).Marshal())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := UnmarshalRequest(raw)
		if err != nil {
			return
		}
		re := req.Marshal()
		if !bytes.Equal(raw, re) {
			// The codec is canonical: any accepted encoding is exactly what
			// Marshal would produce.
			t.Fatalf("accepted non-canonical request encoding:\n in  %x\n out %x", raw, re)
		}
	})
}
