package obs

import (
	"math"
	"testing"
	"time"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// TestHistogramBucketEdges pins the le-inclusive bucket assignment: a value
// exactly on a bound lands in that bound's bucket, just above lands in the
// next.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1)      // bucket le=1
	h.Observe(1.0001) // bucket le=2
	h.Observe(2)      // bucket le=2
	h.Observe(4)      // bucket le=4
	h.Observe(4.5)    // +Inf
	s := h.Snapshot()
	want := []uint64{1, 2, 1, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (buckets %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if !almostEq(s.Sum, 1+1.0001+2+4+4.5) {
		t.Fatalf("sum = %v", s.Sum)
	}
}

// TestQuantileMath checks interpolation including all the edge cases: exact
// bucket-edge ranks, the first bucket (interpolates from 0), the +Inf
// bucket (clamps to the largest finite bound), empty histograms, and
// out-of-range q.
func TestQuantileMath(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 10 observations in le=1, 10 in le=2: cumulative 10, 20.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	s := h.Snapshot()

	// q=0.5 → rank 10, exactly the top of the first bucket: interpolate to
	// its upper bound.
	if q := s.Quantile(0.5); !almostEq(q, 1) {
		t.Fatalf("p50 = %v, want 1 (rank at bucket edge)", q)
	}
	// q=0.25 → rank 5, midway through the first bucket: 0 + 1*(5/10).
	if q := s.Quantile(0.25); !almostEq(q, 0.5) {
		t.Fatalf("p25 = %v, want 0.5", q)
	}
	// q=0.75 → rank 15, midway through the second bucket: 1 + (2-1)*(5/10).
	if q := s.Quantile(0.75); !almostEq(q, 1.5) {
		t.Fatalf("p75 = %v, want 1.5", q)
	}
	// q=1 → rank 20, the very top of the populated range.
	if q := s.Quantile(1); !almostEq(q, 2) {
		t.Fatalf("p100 = %v, want 2", q)
	}
	// q=0 → rank 0: the bottom edge of the first non-empty bucket.
	if q := s.Quantile(0); !almostEq(q, 0) {
		t.Fatalf("p0 = %v, want 0", q)
	}
	// Out-of-range q clamps.
	if q := s.Quantile(-0.5); !almostEq(q, 0) {
		t.Fatalf("q<0 = %v, want 0", q)
	}
	if q := s.Quantile(1.5); !almostEq(q, 2) {
		t.Fatalf("q>1 = %v, want 2", q)
	}
}

// TestQuantileInfBucket: when the target rank falls in the +Inf bucket the
// estimate clamps to the largest finite bound instead of inventing a value.
func TestQuantileInfBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(10) // +Inf bucket
	s := h.Snapshot()
	if q := s.Quantile(0.99); !almostEq(q, 2) {
		t.Fatalf("p99 = %v, want clamp to 2", q)
	}
}

// TestQuantileLeadingEmptyBuckets: rank 0 must skip empty leading buckets
// rather than report their range.
func TestQuantileLeadingEmptyBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(3) // only the le=4 bucket is populated
	s := h.Snapshot()
	if q := s.Quantile(0); !almostEq(q, 2) {
		t.Fatalf("p0 = %v, want 2 (lower edge of the populated bucket)", q)
	}
	if q := s.Quantile(1); !almostEq(q, 4) {
		t.Fatalf("p100 = %v, want 4", q)
	}
}

// TestQuantileEmpty: empty and degenerate histograms report 0.
func TestQuantileEmpty(t *testing.T) {
	if q := NewHistogram([]float64{1}).Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v", q)
	}
	h := NewHistogram([]float64{})
	h.Observe(1)
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("boundless histogram quantile = %v", q)
	}
}

// TestObserveDuration: durations are recorded in seconds and SumDuration
// round-trips.
func TestObserveDuration(t *testing.T) {
	h := NewHistogram(DefBuckets)
	h.ObserveDuration(250 * time.Millisecond)
	h.ObserveDuration(750 * time.Millisecond)
	if got := h.SumDuration(); got != time.Second {
		t.Fatalf("SumDuration = %v, want 1s", got)
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
}
