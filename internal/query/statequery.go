package query

import (
	"bytes"
	"fmt"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/mht"
	"dcert/internal/mpt"
)

// Direct state and transaction queries (§1, §2.1): a light client verifies
// "specific transaction/state data retrieved from full nodes" against the
// roots committed in a block header. With DCert, the header itself is
// attested by the block certificate, so a superlight client gets the same
// capability from its single stored header.

// StateResult is a proven read of one state key at the tip.
type StateResult struct {
	// Key is the state key.
	Key string
	// Value is the claimed value (nil = proven absent).
	Value []byte
	// Proof is the MPT path witness against the header's state root.
	Proof *mpt.Witness
}

// EncodedSize returns the proof size in bytes.
func (r *StateResult) EncodedSize() int {
	return r.Proof.EncodedSize()
}

// StateQuery answers a direct state read with a Merkle proof against the
// SP's current tip state (whose root is in the tip header the client has
// certified).
func (sp *ServiceProvider) StateQuery(key string) (*StateResult, error) {
	value, err := sp.node.State().Get([]byte(key))
	if err != nil {
		return nil, err
	}
	proof, err := sp.node.State().Prove([]byte(key))
	if err != nil {
		return nil, fmt.Errorf("query: state proof: %w", err)
	}
	return &StateResult{Key: key, Value: value, Proof: proof}, nil
}

// VerifyState validates a state read against a certified header's state
// root. Nil value claims are absence proofs.
func VerifyState(hdr *chain.Header, res *StateResult) error {
	if res == nil || res.Proof == nil {
		return fmt.Errorf("%w: missing state proof", ErrBadProof)
	}
	got, err := mpt.VerifyProof(hdr.StateRoot, []byte(res.Key), res.Proof)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	if !bytes.Equal(got, res.Value) {
		return fmt.Errorf("%w: state value", ErrResultMismatch)
	}
	return nil
}

// TxResult is a proven inclusion of one transaction in a block.
type TxResult struct {
	// BlockHash names the containing block.
	BlockHash chash.Hash
	// Index is the transaction's position.
	Index int
	// Tx is the transaction.
	Tx *chain.Transaction
	// Proof is the Merkle path against the header's tx root.
	Proof *mht.Proof
}

// TxQuery returns a transaction with its inclusion proof.
func (sp *ServiceProvider) TxQuery(blockHash chash.Hash, index int) (*TxResult, error) {
	blk, err := sp.node.Store().Get(blockHash)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= len(blk.Txs) {
		return nil, fmt.Errorf("query: tx index %d out of range (%d txs)", index, len(blk.Txs))
	}
	digests := make([]chash.Hash, len(blk.Txs))
	for i, tx := range blk.Txs {
		digests[i] = tx.Hash()
	}
	tree, err := mht.BuildFromDigests(digests)
	if err != nil {
		return nil, err
	}
	proof, err := tree.Prove(index)
	if err != nil {
		return nil, err
	}
	return &TxResult{BlockHash: blockHash, Index: index, Tx: blk.Txs[index], Proof: proof}, nil
}

// VerifyTx validates a transaction inclusion claim against a certified
// header (its TxRoot) and checks the transaction's own signature.
func VerifyTx(hdr *chain.Header, res *TxResult) error {
	if res == nil || res.Proof == nil || res.Tx == nil {
		return fmt.Errorf("%w: missing tx proof", ErrBadProof)
	}
	if hdr.Hash() != res.BlockHash {
		return fmt.Errorf("%w: header is not the claimed block", ErrBadProof)
	}
	if err := res.Proof.VerifyDigest(hdr.TxRoot, res.Tx.Hash()); err != nil {
		return fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	if err := res.Tx.Verify(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	return nil
}
