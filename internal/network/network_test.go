package network

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func recvOne(t *testing.T, s *Subscription, timeout time.Duration) Message {
	t.Helper()
	select {
	case m, ok := <-s.C:
		if !ok {
			t.Fatal("subscription closed")
		}
		return m
	case <-time.After(timeout):
		t.Fatal("timed out waiting for message")
		return Message{}
	}
}

func TestPublishSubscribe(t *testing.T) {
	n := New()
	defer n.Close()
	sub := n.Subscribe(TopicBlocks, 4)
	defer sub.Cancel()

	if err := n.Publish(TopicBlocks, "miner", 42); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	m := recvOne(t, sub, time.Second)
	if m.From != "miner" || m.Payload.(int) != 42 || m.Topic != TopicBlocks {
		t.Fatalf("message = %+v", m)
	}
}

func TestTopicsIsolated(t *testing.T) {
	n := New()
	defer n.Close()
	blocks := n.Subscribe(TopicBlocks, 4)
	certs := n.Subscribe(TopicCerts, 4)
	defer blocks.Cancel()
	defer certs.Cancel()

	if err := n.Publish(TopicCerts, "ci", "cert"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	recvOne(t, certs, time.Second)
	select {
	case m := <-blocks.C:
		t.Fatalf("blocks subscriber got cert message %+v", m)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestMultipleSubscribersAllReceive(t *testing.T) {
	n := New()
	defer n.Close()
	var subs []*Subscription
	for i := 0; i < 5; i++ {
		subs = append(subs, n.Subscribe(TopicBlocks, 2))
	}
	if err := n.Publish(TopicBlocks, "miner", "blk"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	for i, s := range subs {
		m := recvOne(t, s, time.Second)
		if m.Payload.(string) != "blk" {
			t.Fatalf("subscriber %d payload %v", i, m.Payload)
		}
	}
}

func TestSlowSubscriberDrops(t *testing.T) {
	n := New()
	defer n.Close()
	sub := n.Subscribe(TopicBlocks, 1)
	defer sub.Cancel()
	for i := 0; i < 5; i++ {
		if err := n.Publish(TopicBlocks, "miner", i); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	m := recvOne(t, sub, time.Second)
	if m.Payload.(int) != 0 {
		t.Fatalf("first message = %v", m.Payload)
	}
	select {
	case m := <-sub.C:
		t.Fatalf("overflowed message delivered: %v", m.Payload)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	n := New()
	defer n.Close()
	sub := n.Subscribe(TopicBlocks, 4)
	sub.Cancel()
	sub.Cancel() // idempotent
	if err := n.Publish(TopicBlocks, "miner", 1); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("cancelled subscription received a message")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(WithLatency(50 * time.Millisecond))
	sub := n.Subscribe(TopicBlocks, 4)
	defer sub.Cancel()

	start := time.Now()
	if err := n.Publish(TopicBlocks, "miner", "slow"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	recvOne(t, sub, time.Second)
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("delivered too fast: %v", elapsed)
	}
	n.Close()
}

// TestConcurrentPublishSubscribeCancelStress hammers the fabric from many
// goroutines — publishers racing subscribers racing Cancel racing Close —
// as a regression for the Publish-vs-Cancel send-on-closed-channel panic.
// Run under -race.
func TestConcurrentPublishSubscribeCancelStress(t *testing.T) {
	n := New(WithLatency(100 * time.Microsecond))
	n.SetFaults(&FaultPlan{Seed: 13, Rules: []FaultRule{
		{Drop: 0.1, Duplicate: 0.2, Reorder: 0.2, ReorderDelay: 100 * time.Microsecond},
	}})
	topics := []string{TopicBlocks, TopicCerts, TopicIndexCerts}

	var wg sync.WaitGroup
	// Churning subscribers: subscribe, read a little, cancel.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				sub := n.Subscribe(topics[(i+j)%len(topics)], 2)
				select {
				case <-sub.C:
				case <-time.After(50 * time.Microsecond):
				}
				sub.Cancel()
			}
		}(i)
	}
	// Publishers racing against the churn.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = n.Publish(topics[j%len(topics)], "stress", j)
			}
		}(i)
	}
	// Partition flapping in parallel.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			n.Partition(TopicCerts)
			n.Heal(TopicCerts)
		}
	}()
	wg.Wait()
	n.Close()
	if err := n.Publish(TopicBlocks, "stress", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after Close, got %v", err)
	}
}

func TestPublishAfterClose(t *testing.T) {
	n := New()
	n.Close()
	n.Close() // idempotent
	if err := n.Publish(TopicBlocks, "miner", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
