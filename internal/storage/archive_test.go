package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestCreateRefusesToClobber(t *testing.T) {
	e := newArchiveEnv(t)
	e.buildChain(t, 2)
	path := filepath.Join(t.TempDir(), "chain.archive")
	if err := WriteChain(path, e.issuer.Node(), nil); err != nil {
		t.Fatalf("WriteChain: %v", err)
	}
	if _, err := Create(path); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over non-empty archive: want ErrExists, got %v", err)
	}
	// The refused create must not have damaged the archive.
	c, err := Load(path)
	if err != nil {
		t.Fatalf("Load after refused create: %v", err)
	}
	if len(c.Blocks) != 3 {
		t.Fatalf("archive damaged: %d blocks", len(c.Blocks))
	}
}

func TestOpenAppendsAfterExistingRecords(t *testing.T) {
	e := newArchiveEnv(t)
	e.buildChain(t, 3)
	path := filepath.Join(t.TempDir(), "chain.archive")
	if err := WriteChain(path, e.issuer.Node(), e.issuer.CertFor); err != nil {
		t.Fatalf("WriteChain: %v", err)
	}

	// Mine one more block, then append it through Open.
	e.buildChain(t, 1)
	tip := e.miner.Tip()
	a, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := a.AppendBlock(tip); err != nil {
		t.Fatalf("AppendBlock: %v", err)
	}
	cert, ok := e.issuer.CertFor(tip.Hash())
	if !ok {
		t.Fatal("tip cert missing")
	}
	if err := a.AppendCert(tip.Hash(), cert); err != nil {
		t.Fatalf("AppendCert: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(c.Blocks) != 5 || len(c.Certs) != 4 {
		t.Fatalf("appended archive has %d blocks / %d certs, want 5/4", len(c.Blocks), len(c.Certs))
	}
	if c.Blocks[4].Hash() != tip.Hash() {
		t.Fatal("appended block mismatch")
	}
}

func TestOpenRefusesCorruptArchive(t *testing.T) {
	e := newArchiveEnv(t)
	e.buildChain(t, 2)
	path := filepath.Join(t.TempDir(), "chain.archive")
	if err := WriteChain(path, e.issuer.Node(), nil); err != nil {
		t.Fatalf("WriteChain: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on torn archive: want ErrCorrupt, got %v", err)
	}
}

// TestRecoverTruncatesToLastValidFrame is the satellite's table: each damage
// mode must leave Recover with the longest valid prefix, a physically
// repaired file, and no corrupt record in the returned contents.
func TestRecoverTruncatesToLastValidFrame(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, raw []byte) []byte
		blocks int // surviving blocks (of 4: genesis + 3)
	}{
		{
			name:   "truncated tail",
			damage: func(t *testing.T, raw []byte) []byte { return raw[:len(raw)-11] },
			blocks: 3,
		},
		{
			name: "flipped byte in last record",
			damage: func(t *testing.T, raw []byte) []byte {
				raw[len(raw)-3] ^= 0x40
				return raw
			},
			blocks: 3,
		},
		{
			name: "oversized length in last record header",
			damage: func(t *testing.T, raw []byte) []byte {
				// Find the last frame boundary by walking valid frames.
				off := 0
				last := 0
				for {
					n, ok := nextFrame(raw[off:])
					if !ok {
						break
					}
					last = off
					off += n
				}
				raw[last] = 0xFF // length high byte → oversized
				return raw
			},
			blocks: 3,
		},
		{
			name:   "garbage-only file",
			damage: func(t *testing.T, raw []byte) []byte { return []byte{1, 2, 3, 4, 5, 6, 7, 8, 9} },
			blocks: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newArchiveEnv(t)
			e.buildChain(t, 3)
			path := filepath.Join(t.TempDir(), "chain.archive")
			// Blocks only: each record is one block, so damage maps to a
			// predictable survivor count.
			if err := WriteChain(path, e.issuer.Node(), nil); err != nil {
				t.Fatalf("WriteChain: %v", err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			if err := os.WriteFile(path, tc.damage(t, raw), 0o644); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}

			c, rec, err := Recover(path)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if !rec.Torn {
				t.Fatal("Recover must report the repair")
			}
			if len(c.Blocks) != tc.blocks {
				t.Fatalf("recovered %d blocks, want %d", len(c.Blocks), tc.blocks)
			}
			for i, blk := range c.Blocks {
				want, err := e.miner.Store().AtHeight(uint64(i))
				if err != nil {
					t.Fatalf("AtHeight: %v", err)
				}
				if blk.Hash() != want.Hash() {
					t.Fatalf("recovered block %d is not the mined block (corrupt record served)", i)
				}
			}
			// The file is repaired in place: strict Load now succeeds.
			c2, err := Load(path)
			if err != nil {
				t.Fatalf("Load after Recover: %v", err)
			}
			if len(c2.Blocks) != tc.blocks {
				t.Fatalf("repaired file loads %d blocks, want %d", len(c2.Blocks), tc.blocks)
			}
		})
	}
}
