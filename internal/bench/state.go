package bench

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"dcert/internal/chash"
	"dcert/internal/mht"
	"dcert/internal/mpt"
	"dcert/internal/obs"
	"dcert/internal/smt"
)

// State-layer hashing experiment. Every authenticated structure (MHT, SMT,
// MPT, MB-tree, skip list) funnels through internal/chash, and the paper's
// per-block certification cost is dominated by exactly that hash traffic, so
// this experiment measures the hashing core and the two commit paths that
// sit directly on it:
//
//   - chash primitives against a faithful replica of the seed implementation
//     (fresh sha256.New per digest) — real, same-host A/B;
//   - SMT multiproof verification against a replica of the original
//     string-position algorithm — real, same-host A/B;
//   - MPT dirty-subtree commit and MHT block build, reported as measured
//     wall time plus a W-core schedule model over the measured serial
//     residue — the same modeled-vs-wall convention the pipeline experiment
//     uses, because single-core CI hosts have nothing to fan out onto.
//
// `dcert-bench -exp state -json BENCH_state.json` (wired into `make
// bench-json`) persists the result; EXPERIMENTS.md records the reference
// run next to the seed numbers.

// StateHashEntry is one measured primitive.
type StateHashEntry struct {
	// Name identifies the primitive and preimage shape.
	Name string `json:"name"`
	// NsPerOp is the optimized implementation's per-op cost.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the optimized implementation's heap allocations per op.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BaselineNsPerOp is the seed-replica cost (0 when no baseline exists).
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	// Speedup is BaselineNsPerOp / NsPerOp.
	Speedup float64 `json:"speedup,omitempty"`
}

// StateModelPoint is a modeled W-core commit throughput point.
type StateModelPoint struct {
	Workers int     `json:"workers"`
	Speedup float64 `json:"speedup"`
}

// StateCommit is a commit-path measurement: wall numbers on this host plus
// the W-core schedule model.
type StateCommit struct {
	// Items is the dirty-key (MPT) or leaf (MHT) count per commit.
	Items int `json:"items"`
	// SeqMs is the measured single-threaded commit time.
	SeqMs float64 `json:"seq_ms"`
	// WallMs is the measured time of the parallel entry point on this host
	// (equals SeqMs on a single-core host, where fan-out is bypassed).
	WallMs float64 `json:"wall_ms"`
	// SerialMs is the measured non-parallelizable residue (top-of-tree
	// merge) the model charges to every worker count.
	SerialMs float64 `json:"serial_ms"`
	// Fanout is the number of independent dirty subtrees available.
	Fanout int `json:"fanout"`
	// Modeled is speedup vs SeqMs for each worker count: SeqMs /
	// (SerialMs + (SeqMs-SerialMs)/min(W, Fanout)).
	Modeled []StateModelPoint `json:"modeled"`
}

// StateResult is the experiment output and the BENCH_state.json schema.
type StateResult struct {
	Scale string `json:"scale"`
	CPUs  int    `json:"cpus"`
	// Hash are the chash/SMT primitive measurements.
	Hash []StateHashEntry `json:"hash"`
	// MPTCommit is the post-execution state-root recomputation path.
	MPTCommit StateCommit `json:"mpt_commit"`
	// MHTBuild is the per-block transaction-root construction path.
	MHTBuild StateCommit `json:"mht_build"`
	// Obs are the instrumentation-plane primitive costs (counter increment,
	// histogram observation, span start+end) — the per-event overhead every
	// instrumented hot-path site pays. No baseline: the comparison point is
	// zero (the uninstrumented path), so ns/op and allocs/op are the numbers.
	Obs []StateHashEntry `json:"obs"`
	// NodeAllocsPerOp restates the chash.Node steady-state allocation count
	// (the zero-allocation acceptance gate).
	NodeAllocsPerOp float64 `json:"node_allocs_per_op"`
	// HashPathSpeedup is the headline: the larger of the measured SMT
	// multiproof speedup (real A/B on this host) and the modeled 4-worker
	// MPT commit speedup.
	HashPathSpeedup float64 `json:"hash_path_speedup"`
}

// measure times fn and reports per-op wall nanoseconds and heap allocations,
// calibrating the iteration count to the target duration.
func measure(target time.Duration, fn func()) (nsPerOp, allocsPerOp float64) {
	fn() // warm pools and caches
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if el := time.Since(start); el >= target || iters > 1<<24 {
			break
		} else if el <= 0 {
			iters *= 1024
		} else {
			next := int(float64(iters) * float64(target) / float64(el) * 1.2)
			if next <= iters {
				next = iters * 2
			}
			iters = next
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	el := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(el.Nanoseconds()) / float64(iters),
		float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// naiveSum replicates the seed chash.Sum: a fresh interface-dispatched
// sha256 state per digest. It is the baseline the optimized engine is
// measured against.
func naiveSum(domain byte, parts ...[]byte) chash.Hash {
	h := sha256.New()
	h.Write([]byte{domain})
	for _, p := range parts {
		h.Write(p)
	}
	var out chash.Hash
	h.Sum(out[:0])
	return out
}

// naiveComputeRoot replicates the seed SMT root recomputation: '0'/'1'
// string node positions built by concatenation, a string-keyed fill map, and
// a lazily built per-depth defaults slice.
func naiveComputeRoot(mp *smt.Multiproof, fills map[string]chash.Hash, values map[smt.Key]chash.Hash) chash.Hash {
	defaults := make([]chash.Hash, mp.Depth+1)
	defaults[mp.Depth] = chash.Zero
	for l := mp.Depth - 1; l >= 0; l-- {
		defaults[l] = chash.Node(defaults[l+1], defaults[l+1])
	}
	var rec func(level int, prefix string, keys []smt.Key) chash.Hash
	rec = func(level int, prefix string, keys []smt.Key) chash.Hash {
		if len(keys) == 0 {
			if h, ok := fills[prefix]; ok {
				return h
			}
			return defaults[level]
		}
		if level == mp.Depth {
			return values[keys[0]]
		}
		split := sort.Search(len(keys), func(i int) bool { return keys[i].Bit(level) == 1 })
		left := rec(level+1, prefix+"0", keys[:split])
		right := rec(level+1, prefix+"1", keys[split:])
		return chash.Node(left, right)
	}
	return rec(0, "", mp.Keys)
}

// modelCommit fills in the schedule model: with W workers and S independent
// dirty subtrees, the commit takes serial + parallel/min(W,S).
func modelCommit(c *StateCommit) {
	parallel := c.SeqMs - c.SerialMs
	if parallel < 0 {
		parallel = 0
	}
	for _, w := range []int{2, 4, 8, 16} {
		eff := w
		if c.Fanout > 0 && eff > c.Fanout {
			eff = c.Fanout
		}
		modeled := c.SerialMs + parallel/float64(eff)
		pt := StateModelPoint{Workers: w}
		if modeled > 0 {
			pt.Speedup = c.SeqMs / modeled
		}
		c.Modeled = append(c.Modeled, pt)
	}
}

// RunState measures the state-layer hash path.
func RunState(scale Scale) (*StateResult, error) {
	target := 60 * time.Millisecond
	smtKeys, mptKeys, dirty, mhtLeaves := 10000, 10000, 512, 4096
	if scale == Paper {
		target = 250 * time.Millisecond
		smtKeys, mptKeys, dirty, mhtLeaves = 50000, 50000, 2048, 16384
	}
	res := &StateResult{Scale: scale.String(), CPUs: runtime.GOMAXPROCS(0)}

	// --- chash primitives ---------------------------------------------
	part96a, part96b := make([]byte, 32), make([]byte, 64)
	left, right := chash.Leaf([]byte("left")), chash.Leaf([]byte("right"))
	var sink chash.Hash
	// addAB measures opt and base in alternating rounds and keeps each side's
	// best, so frequency drift on a shared host cannot bias one side.
	addAB := func(name string, opt, base func()) float64 {
		var ns, allocs, bns float64
		for round := 0; round < 3; round++ {
			n, a := measure(target, opt)
			bn, _ := measure(target, base)
			if round == 0 || n < ns {
				ns, allocs = n, a
			}
			if round == 0 || bn < bns {
				bns = bn
			}
		}
		e := StateHashEntry{Name: name, NsPerOp: ns, AllocsPerOp: allocs, BaselineNsPerOp: bns}
		if ns > 0 {
			e.Speedup = bns / ns
		}
		res.Hash = append(res.Hash, e)
		return e.Speedup
	}
	addAB("sum_96B", func() { sink = chash.Sum(chash.DomainHeader, part96a, part96b) },
		func() { sink = naiveSum(byte(chash.DomainHeader), part96a, part96b) })
	addAB("node", func() { sink = chash.Node(left, right) },
		func() { sink = naiveSum(byte(chash.DomainNode), left[:], right[:]) })
	nodeIdx := len(res.Hash) - 1
	res.NodeAllocsPerOp = res.Hash[nodeIdx].AllocsPerOp
	payload := make([]byte, 4096)
	addAB("leaf_4KiB", func() { sink = chash.Leaf(payload) },
		func() { sink = naiveSum(byte(chash.DomainLeaf), payload) })
	_ = sink

	// --- SMT multiproof verify (real A/B) ------------------------------
	tree, err := smt.New(64)
	if err != nil {
		return nil, err
	}
	keys := make([]smt.Key, smtKeys)
	for i := range keys {
		keys[i] = smt.KeyFromString(fmt.Sprintf("state-k%d", i))
		tree.Put(keys[i], chash.Leaf([]byte(fmt.Sprintf("state-v%d", i))))
	}
	batch := keys[:32]
	proof, err := tree.Prove(batch)
	if err != nil {
		return nil, err
	}
	vals := make(map[smt.Key]chash.Hash, len(batch))
	for _, k := range batch {
		vals[k] = tree.Get(k)
	}
	root := tree.Root()
	stringFills := make(map[string]chash.Hash, len(proof.Fills))
	for p, h := range proof.Fills {
		stringFills[p.String()] = h
	}
	if naiveComputeRoot(proof, stringFills, vals) != root {
		return nil, fmt.Errorf("bench: string-path baseline replica diverged from committed root")
	}
	smtSpeedup := addAB("smt_verify_32keys",
		func() {
			if err := proof.Verify(root, vals); err != nil {
				panic(err)
			}
		},
		func() {
			if naiveComputeRoot(proof, stringFills, vals) != root {
				panic("baseline root mismatch")
			}
		})
	proveNs, proveAllocs := measure(target, func() {
		if _, err := tree.Prove(batch); err != nil {
			panic(err)
		}
	})
	res.Hash = append(res.Hash, StateHashEntry{Name: "smt_prove_32keys", NsPerOp: proveNs, AllocsPerOp: proveAllocs})

	// --- MPT commit (wall + model) --------------------------------------
	trie := mpt.New()
	for i := 0; i < mptKeys; i++ {
		if err := trie.Put([]byte(fmt.Sprintf("acct-%08d", i)), []byte(fmt.Sprintf("bal-%d", i))); err != nil {
			return nil, err
		}
	}
	if _, err := trie.Hash(); err != nil {
		return nil, err
	}
	gen := 0
	dirtyAll := func() error {
		gen++
		for j := 0; j < dirty; j++ {
			k := (j * 17) % mptKeys
			if err := trie.Put([]byte(fmt.Sprintf("acct-%08d", k)), []byte(fmt.Sprintf("g%d-%d", gen, j))); err != nil {
				return err
			}
		}
		return nil
	}
	commitTimes := func(hash func() (chash.Hash, error)) (float64, error) {
		reps := 5
		best := 0.0
		for r := 0; r < reps; r++ {
			if err := dirtyAll(); err != nil {
				return 0, err
			}
			start := time.Now()
			if _, err := hash(); err != nil {
				return 0, err
			}
			el := float64(time.Since(start).Nanoseconds()) / 1e6
			if best == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}
	mc := &res.MPTCommit
	mc.Items = dirty
	if err := dirtyAll(); err != nil {
		return nil, err
	}
	mc.Fanout = trie.DirtyFanout()
	if mc.SeqMs, err = commitTimes(trie.HashSequential); err != nil {
		return nil, err
	}
	if mc.WallMs, err = commitTimes(trie.Hash); err != nil {
		return nil, err
	}
	// Serial residue: rehash with a single dirty leaf — the root-ward path
	// no fan-out can shorten.
	if err := trie.Put([]byte("acct-00000000"), []byte("residue")); err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := trie.HashSequential(); err != nil {
		return nil, err
	}
	mc.SerialMs = float64(time.Since(start).Nanoseconds()) / 1e6
	if mc.SerialMs > mc.SeqMs {
		mc.SerialMs = mc.SeqMs
	}
	modelCommit(mc)

	// --- MHT build (wall + model) ---------------------------------------
	leaves := make([][]byte, mhtLeaves)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("tx-payload-%08d", i))
	}
	mb := &res.MHTBuild
	mb.Items = mhtLeaves
	seqBuild := func() (chash.Hash, error) {
		level := make([]chash.Hash, len(leaves))
		for i, l := range leaves {
			level[i] = chash.Leaf(l)
		}
		for len(level) > 1 {
			next := make([]chash.Hash, (len(level)+1)/2)
			for i := range next {
				r := chash.Zero
				if 2*i+1 < len(level) {
					r = level[2*i+1]
				}
				next[i] = chash.Node(level[2*i], r)
			}
			level = next
		}
		return level[0], nil
	}
	bestOf := func(fn func() (chash.Hash, error)) (float64, error) {
		best := 0.0
		for r := 0; r < 5; r++ {
			start := time.Now()
			if _, err := fn(); err != nil {
				return 0, err
			}
			el := float64(time.Since(start).Nanoseconds()) / 1e6
			if best == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}
	if mb.SeqMs, err = bestOf(seqBuild); err != nil {
		return nil, err
	}
	if mb.WallMs, err = bestOf(func() (chash.Hash, error) {
		t, err := mht.Build(leaves)
		if err != nil {
			return chash.Zero, err
		}
		return t.Root(), nil
	}); err != nil {
		return nil, err
	}
	// Levels narrower than the parallel threshold reduce sequentially; the
	// model charges them as the serial residue.
	totalNodes, serialNodes := 0, 0
	for w := mhtLeaves; w > 1; w = (w + 1) / 2 {
		nodes := (w + 1) / 2
		totalNodes += nodes
		if nodes < 512 {
			serialNodes += nodes
		}
	}
	totalWork := mhtLeaves + totalNodes // leaf digests + interior nodes
	mb.Fanout = runtime.NumCPU() * 64   // chunked loops: fan-out is not the limit
	mb.SerialMs = mb.SeqMs * float64(serialNodes) / float64(totalWork)
	modelCommit(mb)

	// --- instrumentation-plane primitives --------------------------------
	reg := obs.NewRegistry()
	ctr := reg.Counter("bench_events_total", "")
	hist := reg.Histogram("bench_latency_seconds", "", nil)
	tracer := obs.NewTracer(1024)
	addObs := func(name string, fn func()) {
		ns, allocs := measure(target, fn)
		res.Obs = append(res.Obs, StateHashEntry{Name: name, NsPerOp: ns, AllocsPerOp: allocs})
	}
	addObs("obs_counter_inc", func() { ctr.Inc() })
	addObs("obs_histogram_observe", func() { hist.Observe(1.5e-3) })
	addObs("obs_span_start_end", func() { tracer.Start("bench", 0).End() })

	// --- headline -------------------------------------------------------
	res.HashPathSpeedup = smtSpeedup
	for _, pt := range mc.Modeled {
		if pt.Workers == 4 && pt.Speedup > res.HashPathSpeedup {
			res.HashPathSpeedup = pt.Speedup
		}
	}
	return res, nil
}

// WriteJSON persists the result (the make bench-json artifact).
func (r *StateResult) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Table renders the result.
func (r *StateResult) Table() *Table {
	t := &Table{
		Title: "State layer — zero-allocation hashing core and parallel commit",
		Note: fmt.Sprintf("%d CPU(s); baselines are same-host replicas of the seed implementation; commit 'model W' is the schedule model over measured serial residue (speedup vs sequential), headline hash-path speedup %.2fx",
			r.CPUs, r.HashPathSpeedup),
		Columns: []string{"path", "ns/op or ms", "allocs/op", "baseline", "speedup"},
	}
	for _, e := range r.Hash {
		base, speed := "-", "-"
		if e.BaselineNsPerOp > 0 {
			base = fmt.Sprintf("%.0f ns", e.BaselineNsPerOp)
			speed = fmt.Sprintf("%.2fx", e.Speedup)
		}
		t.Rows = append(t.Rows, []string{
			e.Name, fmt.Sprintf("%.0f ns", e.NsPerOp), fmt.Sprintf("%.1f", e.AllocsPerOp), base, speed,
		})
	}
	for _, e := range r.Obs {
		t.Rows = append(t.Rows, []string{
			e.Name, fmt.Sprintf("%.1f ns", e.NsPerOp), fmt.Sprintf("%.1f", e.AllocsPerOp), "-", "-",
		})
	}
	commitRow := func(name string, c *StateCommit) {
		speed := ""
		for _, pt := range c.Modeled {
			if pt.Workers == 4 {
				speed = fmt.Sprintf("model 4w %.2fx", pt.Speedup)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%d items)", name, c.Items),
			fmt.Sprintf("%.2f ms", c.WallMs), "-",
			fmt.Sprintf("%.2f ms seq", c.SeqMs), speed,
		})
	}
	commitRow("mpt_commit", &r.MPTCommit)
	commitRow("mht_build", &r.MHTBuild)
	return t
}
