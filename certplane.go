package dcert

import (
	"errors"
	"fmt"
	"sync"

	"dcert/internal/core"
	"dcert/internal/node"
)

// The certification plane: redundant certificate issuers over one chain.
// The paper notes the CI is "any SGX full node" and that redundancy restores
// availability (§4.3) — a deployment can run N CIs, each certifying every
// block with its own enclave, and a superlight client accepts a certificate
// from any properly attested enclave, tracking the highest certified height.
// Issuers can be killed (crash: the enclave and its sealed key are lost) and
// restarted (resume from the last persisted certificate, re-certify only the
// blocks missed while down).

// Cert-plane types (package internal/core).
type (
	// CertBundle pairs a header with its certificate for the fabric.
	CertBundle = core.CertBundle
	// CertRequest is a client's explicit catch-up request.
	CertRequest = core.CertRequest
	// CertFollower drives a SuperlightClient from the certificate stream,
	// re-requesting the latest certificate when the stream stalls.
	CertFollower = core.Follower
	// FollowerConfig tunes a CertFollower.
	FollowerConfig = core.FollowerConfig
	// FollowerStats counts a follower's activity.
	FollowerStats = core.FollowerStats
	// CertResponder answers catch-up requests for one issuer.
	CertResponder = core.CertResponder
	// IssuerCheckpoint is a CI's crash-recovery record.
	IssuerCheckpoint = core.IssuerCheckpoint
)

// FollowCerts starts a certificate follower for a client on the
// deployment's fabric.
func (d *Deployment) FollowCerts(client *SuperlightClient, cfg FollowerConfig) *CertFollower {
	return core.FollowCerts(client, d.net, cfg)
}

// ciSlot is one issuer of the certification plane.
type ciSlot struct {
	name      string
	issuer    *core.Issuer // nil while crashed
	node      *node.FullNode
	responder *core.CertResponder
	// checkpoint holds the serialized recovery record persisted before the
	// crash (in a real deployment the CI writes it after every certificate).
	checkpoint []byte
	alive      bool
	// pipe is the slot's certification pipeline while pipelined mining is on.
	pipe *core.Pipeline
	// pipeDone closes when the slot's bundle-publishing consumer exits.
	pipeDone chan struct{}
	// pipeErr is the first non-abort certification failure the consumer saw
	// (written by the consumer goroutine, read after pipeDone closes).
	pipeErr error
}

// CertPlane runs N redundant certificate issuers over the deployment's
// chain and publishes one certificate bundle per live issuer per block.
type CertPlane struct {
	d  *Deployment
	mu sync.Mutex
	// slots are the plane's issuers, slot 0 being the deployment's primary.
	slots []*ciSlot
	// pipeCfg is non-nil while pipelined mining is on (StartPipelines).
	pipeCfg *PipelineConfig
}

// StartCertPlane builds a certification plane of n issuers (n ≥ 1). The
// deployment's primary issuer becomes slot "ci0"; n-1 additional issuers
// ("ci1", ...) are provisioned on the same chain and authority. Every live
// issuer serves catch-up requests on TopicCertRequests. Stop the plane to
// release the responders.
func (d *Deployment) StartCertPlane(n int) (*CertPlane, error) {
	if n < 1 {
		return nil, fmt.Errorf("dcert: cert plane needs at least 1 issuer, got %d", n)
	}
	p := &CertPlane{d: d}
	for i := 0; i < n; i++ {
		ci := d.issuer
		if i > 0 {
			extra, err := d.AddIssuer()
			if err != nil {
				p.Stop()
				return nil, err
			}
			ci = extra
		}
		name := fmt.Sprintf("ci%d", i)
		if d.reg != nil && i > 0 {
			// Slot 0 is the primary, instrumented by EnableObservability;
			// extra issuers join the same plane under their slot identity.
			ci.Instrument(d.reg, d.tracer, d.logger, name)
		}
		p.slots = append(p.slots, &ciSlot{
			name:      name,
			issuer:    ci,
			node:      ci.Node(),
			responder: core.ServeCertRequests(ci, d.net, name),
			alive:     true,
		})
	}
	return p, nil
}

// slot finds an issuer by name.
func (p *CertPlane) slot(name string) (*ciSlot, error) {
	for _, s := range p.slots {
		if s.name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("dcert: unknown issuer %q", name)
}

// Live lists the names of issuers currently certifying.
func (p *CertPlane) Live() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, s := range p.slots {
		if s.alive {
			out = append(out, s.name)
		}
	}
	return out
}

// Issuer returns a live issuer by name.
func (p *CertPlane) Issuer(name string) (*Issuer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.slot(name)
	if err != nil {
		return nil, err
	}
	if !s.alive {
		return nil, fmt.Errorf("dcert: issuer %q is down", name)
	}
	return s.issuer, nil
}

// MineAndBroadcast mines a block of n transactions, has every live issuer
// certify it, feeds the SP, and publishes the block plus one CertBundle per
// live issuer on the fabric. With zero live issuers the block is still mined
// and published — clients simply see no certificate until an issuer returns.
func (p *CertPlane) MineAndBroadcast(n int) (*Block, error) {
	txs, err := p.d.gen.Block(n)
	if err != nil {
		return nil, err
	}
	blk, err := p.d.miner.Propose(txs)
	if err != nil {
		return nil, fmt.Errorf("dcert: propose: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstCert *Certificate
	for _, s := range p.slots {
		if !s.alive {
			continue
		}
		cert, _, err := s.issuer.ProcessBlock(blk)
		if err != nil {
			return nil, fmt.Errorf("dcert: %s certify: %w", s.name, err)
		}
		if firstCert == nil {
			firstCert = cert
		}
		if err := p.d.net.Publish(TopicCerts, s.name, &CertBundle{Header: &blk.Header, Cert: cert}); err != nil {
			return nil, err
		}
	}
	if err := p.d.feedServing(blk); err != nil {
		return nil, fmt.Errorf("dcert: SP: %w", err)
	}
	if err := p.d.net.Publish(TopicBlocks, "miner", blk); err != nil {
		return nil, err
	}
	// Journal the block with the first live issuer's certificate (redundant
	// issuers re-certify the same height; one durable copy suffices). With
	// zero live issuers the block persists uncertified — recovery drops it
	// unless a certificate lands before the crash.
	if err := p.d.persistBlock(blk, firstCert); err != nil {
		return nil, err
	}
	return blk, nil
}

// StartPipelines switches the plane to pipelined certification: every live
// issuer gets a core.Pipeline, and MineAndBroadcastPipelined feeds blocks to
// all of them concurrently. Certificate bundles publish asynchronously as
// each pipeline's committer lands them. DrainPipelines (or Kill per slot)
// tears the pipelines down.
func (p *CertPlane) StartPipelines(cfg PipelineConfig) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pipeCfg != nil {
		return fmt.Errorf("dcert: pipelines already running")
	}
	c := cfg
	p.pipeCfg = &c
	for _, s := range p.slots {
		if !s.alive {
			continue
		}
		if err := p.startSlotPipeline(s); err != nil {
			for _, t := range p.slots {
				if t.pipe != nil {
					t.pipe.Abort()
					<-t.pipeDone
					t.pipe, t.pipeDone, t.pipeErr = nil, nil, nil
				}
			}
			p.pipeCfg = nil
			return fmt.Errorf("dcert: start pipeline %s: %w", s.name, err)
		}
	}
	return nil
}

// startSlotPipeline (mu held) attaches a pipeline plus its bundle-publishing
// consumer to a live slot.
func (p *CertPlane) startSlotPipeline(s *ciSlot) error {
	pl, err := core.NewPipeline(s.issuer, *p.pipeCfg)
	if err != nil {
		return err
	}
	s.pipe = pl
	s.pipeDone = make(chan struct{})
	s.pipeErr = nil
	go func(s *ciSlot, pl *core.Pipeline) {
		defer close(s.pipeDone)
		for res := range pl.Results() {
			if res.Err != nil {
				if s.pipeErr == nil && !errors.Is(res.Err, core.ErrPipelineAborted) {
					s.pipeErr = res.Err
				}
				continue
			}
			// Segment-certified blocks share one certificate: publish the
			// whole segment once, when its tip lands (a per-block bundle
			// would not verify — the certificate covers the segment digest,
			// not any single block digest).
			if res.Segment != nil && len(res.Segment.Headers) > 1 {
				if res.Segment.End() == res.Block.Header.Height {
					if err := p.d.net.Publish(TopicCerts, s.name, res.Segment); err != nil && s.pipeErr == nil {
						s.pipeErr = err
					}
				}
			} else {
				bundle := &CertBundle{Header: &res.Block.Header, Cert: res.Cert}
				if err := p.d.net.Publish(TopicCerts, s.name, bundle); err != nil && s.pipeErr == nil {
					s.pipeErr = err
				}
			}
			// The block was journaled (uncertified) at submit time; attach
			// the certificate now that the enclave has produced it. ApplyCert
			// is idempotent, so redundant slots landing the same height race
			// harmlessly.
			if err := p.d.persistCert(res.Block.Hash(), res.Cert); err != nil && s.pipeErr == nil {
				s.pipeErr = err
			}
		}
	}(s, pl)
	return nil
}

// MineAndBroadcastPipelined mines a block and submits it to every live
// issuer's pipeline instead of certifying inline: block i+1 is proposed,
// verified, and speculatively executed while block i is still inside the
// enclaves. The block itself (and the SP feed) publishes immediately;
// bundles follow as the pipelines certify.
func (p *CertPlane) MineAndBroadcastPipelined(n int) (*Block, error) {
	txs, err := p.d.gen.Block(n)
	if err != nil {
		return nil, err
	}
	blk, err := p.d.miner.Propose(txs)
	if err != nil {
		return nil, fmt.Errorf("dcert: propose: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pipeCfg == nil {
		return nil, fmt.Errorf("dcert: pipelines not running (call StartPipelines first)")
	}
	// Journal the block before any pipeline can land its certificate: the
	// engine refuses certificates for blocks it has never seen.
	if err := p.d.persistBlock(blk, nil); err != nil {
		return nil, err
	}
	for _, s := range p.slots {
		if !s.alive || s.pipe == nil {
			continue
		}
		if err := s.pipe.Submit(blk); err != nil {
			return nil, fmt.Errorf("dcert: %s submit: %w", s.name, err)
		}
	}
	if err := p.d.feedServing(blk); err != nil {
		return nil, fmt.Errorf("dcert: SP: %w", err)
	}
	if err := p.d.net.Publish(TopicBlocks, "miner", blk); err != nil {
		return nil, err
	}
	return blk, nil
}

// DrainPipelines completes pipelined certification: every live pipeline is
// closed, all in-flight blocks certify and publish, and the plane returns to
// inline mining. It reports the first certification failure, if any.
func (p *CertPlane) DrainPipelines() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pipeCfg == nil {
		return fmt.Errorf("dcert: pipelines not running")
	}
	var firstErr error
	for _, s := range p.slots {
		if s.pipe == nil {
			continue
		}
		s.pipe.Close()
		err := s.pipe.Wait()
		<-s.pipeDone
		if firstErr == nil {
			if err != nil {
				firstErr = err
			} else if s.pipeErr != nil {
				firstErr = s.pipeErr
			}
		}
		s.pipe, s.pipeDone, s.pipeErr = nil, nil, nil
	}
	p.pipeCfg = nil
	return firstErr
}

// CheckpointHeight reports the certified height recorded in a crashed
// issuer's persisted checkpoint (zero when it crashed before certifying).
func (p *CertPlane) CheckpointHeight(name string) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.slot(name)
	if err != nil {
		return 0, err
	}
	if s.checkpoint == nil {
		return 0, nil
	}
	ckpt, err := core.UnmarshalIssuerCheckpoint(s.checkpoint)
	if err != nil {
		return 0, err
	}
	return ckpt.Height, nil
}

// Kill crashes an issuer: its enclave (and sealed key) is destroyed, its
// responder stops answering, and the plane stops feeding it blocks. The
// issuer's full-node replica and its last persisted certificate survive, as
// they would on the untrusted host's disk. If the issuer was running a
// certification pipeline, every speculative (uncertified) state commit is
// rolled back first, so the surviving replica and checkpoint describe
// exactly the certified tip — in-flight speculation dies with the enclave.
func (p *CertPlane) Kill(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.slot(name)
	if err != nil {
		return err
	}
	if !s.alive {
		return fmt.Errorf("dcert: issuer %q already down", name)
	}
	if s.pipe != nil {
		s.pipe.Abort()
		<-s.pipeDone
		s.pipe, s.pipeDone, s.pipeErr = nil, nil, nil
	}
	if ckpt := s.issuer.Checkpoint(); ckpt != nil {
		s.checkpoint = ckpt.Marshal()
		if p.d.engine != nil && s.name == "ci0" {
			// The primary's recovery record also lands on disk, so a full
			// process restart resumes the recursion from the same point.
			if err := p.d.engine.SaveCheckpoint(ckpt); err != nil {
				return fmt.Errorf("dcert: kill %s: persist checkpoint: %w", name, err)
			}
		}
	}
	s.responder.Stop()
	s.responder = nil
	s.issuer = nil
	s.alive = false
	return nil
}

// Restart recovers a crashed issuer: a fresh enclave resumes from the
// persisted checkpoint, re-certifies only the blocks mined while it was
// down (fetching them from the miner, as a recovering full node would from
// its peers), re-publishes its newest bundle, and resumes serving catch-up
// requests.
func (p *CertPlane) Restart(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.slot(name)
	if err != nil {
		return err
	}
	if s.alive {
		return fmt.Errorf("dcert: issuer %q is not down", name)
	}
	var ckpt *core.IssuerCheckpoint
	if s.checkpoint != nil {
		if ckpt, err = core.UnmarshalIssuerCheckpoint(s.checkpoint); err != nil {
			return fmt.Errorf("dcert: restart %s: %w", name, err)
		}
	}
	platform, err := p.d.authority.NewPlatform()
	if err != nil {
		return fmt.Errorf("dcert: restart %s: %w", name, err)
	}
	ci, err := core.ResumeIssuer(s.node, p.d.authority, platform, p.d.cfg.EnclaveCost, ckpt)
	if err != nil {
		return fmt.Errorf("dcert: restart %s: %w", name, err)
	}
	if p.d.reg != nil {
		// Re-instrument under the same slot identity: the registry dedups by
		// (name, labels), so the resumed issuer continues its predecessor's
		// series instead of forking new ones.
		ci.Instrument(p.d.reg, p.d.tracer, p.d.logger, name)
	}
	// Catch up: certify the blocks missed while down, continuing the
	// recursion from the checkpointed certificate. The missed blocks form a
	// batch, so they stream through a catch-up pipeline (the recovering CI's
	// enclave never idles waiting for the host to prepare the next block).
	minerStore := p.d.miner.Store()
	var missed []*Block
	for h := s.node.Tip().Header.Height + 1; h <= minerStore.BestHeight(); h++ {
		// Prefer the durable engine's copy — a real recovering CI reads its
		// host's disk before asking peers — falling back to the live miner.
		blk, ok := (*Block)(nil), false
		if p.d.engine != nil {
			blk, ok = p.d.engine.BlockAt(h)
		}
		if !ok {
			var err error
			if blk, err = minerStore.AtHeight(h); err != nil {
				return fmt.Errorf("dcert: restart %s: fetch height %d: %w", name, h, err)
			}
		}
		missed = append(missed, blk)
	}
	if len(missed) > 0 {
		catchUp := PipelineConfig{}
		if p.pipeCfg != nil {
			catchUp = *p.pipeCfg
		}
		results, err := ci.ProcessBlocksPipelined(missed, catchUp)
		if err != nil {
			return fmt.Errorf("dcert: restart %s: re-certify: %w", name, err)
		}
		for _, res := range results {
			if res.Err != nil {
				return fmt.Errorf("dcert: restart %s: re-certify height %d: %w", name, res.Block.Header.Height, res.Err)
			}
			if err := p.d.persistCert(res.Block.Hash(), res.Cert); err != nil {
				return fmt.Errorf("dcert: restart %s: persist cert height %d: %w", name, res.Block.Header.Height, err)
			}
		}
	}
	if bundle := ci.LatestBundle(); bundle != nil {
		if err := p.d.net.Publish(TopicCerts, name, bundle); err != nil {
			return err
		}
	} else if seg := ci.LatestSegment(); seg != nil {
		// The resumed tip certificate covers a multi-block segment, so there
		// is no per-block bundle for it — re-publish the segment instead.
		if err := p.d.net.Publish(TopicCerts, name, seg); err != nil {
			return err
		}
	}
	s.issuer = ci
	s.responder = core.ServeCertRequests(ci, p.d.net, name)
	s.alive = true
	if p.pipeCfg != nil {
		if err := p.startSlotPipeline(s); err != nil {
			return fmt.Errorf("dcert: restart %s: pipeline: %w", name, err)
		}
	}
	if s.name == "ci0" {
		p.d.issuer = ci // keep Deployment.Issuer() pointing at the live primary
	}
	return nil
}

// Stop shuts down the plane's responders (issuers stay usable).
func (p *CertPlane) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.slots {
		if s.responder != nil {
			s.responder.Stop()
			s.responder = nil
		}
	}
}
