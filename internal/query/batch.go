package query

import (
	"bytes"
	"fmt"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/mpt"
)

// Batched multi-key state queries: K keys travel in one request and come
// back with ONE merged multiproof — a single witness holding the union of
// every key's MPT path. Shared upper nodes (the root and the top of the
// trie, which every path crosses) appear once, so the batch proof is
// strictly smaller than K single-key proofs and the client pays one round
// trip and one witness decode instead of K. A K=1 batch carries exactly the
// same witness bytes a single-key StateQuery would (both are the key's path
// witness), so single-key stays the degenerate case of the batch path.

// BatchStateResult is a proven multi-key state read at the tip.
type BatchStateResult struct {
	// Keys are the queried state keys, in request order.
	Keys []string
	// Values are the claimed values, aligned with Keys (nil = proven
	// absent).
	Values [][]byte
	// Proof is the merged multiproof: one witness covering every key's path
	// against the header's state root.
	Proof *mpt.Witness
}

// EncodedSize returns the merged proof size in bytes.
func (r *BatchStateResult) EncodedSize() int {
	return r.Proof.EncodedSize()
}

// Marshal serializes a batch state result.
func (r *BatchStateResult) Marshal() []byte {
	proof := r.Proof.Marshal()
	e := chash.NewEncoder(64 + len(proof) + 32*len(r.Keys))
	e.PutUint32(uint32(len(r.Keys)))
	for i, k := range r.Keys {
		e.PutString(k)
		e.PutBool(r.Values[i] != nil)
		if r.Values[i] != nil {
			e.PutBytes(r.Values[i])
		}
	}
	e.PutBytes(proof)
	return e.Bytes()
}

// UnmarshalBatchStateResult parses a batch state result.
func UnmarshalBatchStateResult(raw []byte) (*BatchStateResult, error) {
	d := chash.NewDecoder(raw)
	n, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal batch result: %w", err)
	}
	if n > MaxBatchKeys {
		return nil, fmt.Errorf("query: unmarshal batch result: %d keys", n)
	}
	r := &BatchStateResult{
		Keys:   make([]string, 0, n),
		Values: make([][]byte, 0, n),
	}
	for i := uint32(0); i < n; i++ {
		k, err := d.ReadString()
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal batch result: %w", err)
		}
		present, err := d.Bool()
		if err != nil {
			return nil, fmt.Errorf("query: unmarshal batch result: %w", err)
		}
		var v []byte
		if present {
			if v, err = d.ReadBytes(); err != nil {
				return nil, fmt.Errorf("query: unmarshal batch result: %w", err)
			}
		}
		r.Keys = append(r.Keys, k)
		r.Values = append(r.Values, v)
	}
	proofRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("query: unmarshal batch result: %w", err)
	}
	if r.Proof, err = mpt.UnmarshalWitness(proofRaw); err != nil {
		return nil, fmt.Errorf("query: unmarshal batch result: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("query: unmarshal batch result: %w", err)
	}
	return r, nil
}

// BatchStateQuery answers a multi-key direct state read with one merged
// multiproof against the SP's current tip state.
func (sp *ServiceProvider) BatchStateQuery(keys []string) (*BatchStateResult, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("query: empty batch query")
	}
	if len(keys) > MaxBatchKeys {
		return nil, fmt.Errorf("query: batch of %d keys exceeds limit %d", len(keys), MaxBatchKeys)
	}
	res := &BatchStateResult{Keys: keys, Values: make([][]byte, len(keys))}
	raw := make([][]byte, len(keys))
	for i, k := range keys {
		raw[i] = []byte(k)
		v, err := sp.node.State().Get(raw[i])
		if err != nil {
			return nil, err
		}
		res.Values[i] = v
	}
	proof, err := sp.node.State().ProveKeys(raw)
	if err != nil {
		return nil, fmt.Errorf("query: batch state proof: %w", err)
	}
	res.Proof = proof
	return res, nil
}

// VerifyBatchState validates a multi-key state read against a certified
// header's state root: every key is replayed through the one merged witness,
// and each proven value must match the claim (nil claims are absence
// proofs).
func VerifyBatchState(hdr *chain.Header, res *BatchStateResult) error {
	if res == nil || res.Proof == nil {
		return fmt.Errorf("%w: missing batch proof", ErrBadProof)
	}
	if len(res.Keys) == 0 || len(res.Values) != len(res.Keys) {
		return fmt.Errorf("%w: malformed batch result", ErrBadProof)
	}
	// One partial trie re-used across keys: the witness is decoded and its
	// nodes verified once, each key then walks its path.
	pt := mpt.NewPartial(hdr.StateRoot, res.Proof)
	for i, k := range res.Keys {
		got, err := pt.Get([]byte(k))
		if err != nil {
			return fmt.Errorf("%w: key %q: %v", ErrBadProof, k, err)
		}
		if !bytes.Equal(got, res.Values[i]) {
			return fmt.Errorf("%w: value for key %q", ErrResultMismatch, k)
		}
	}
	return nil
}
