package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bucket upper bounds in seconds,
// spanning the ~10µs enclave transition to multi-second chaos stalls.
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket atomic histogram. Observations are
// non-negative float64s (the hot paths feed it seconds). Observe is
// lock-free and allocation-free; Snapshot (cold) copies the counters and
// derives quantiles.
type Histogram struct {
	bounds []float64       // ascending upper bounds; implicit +Inf last
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds (nil = DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Values land in the first bucket whose upper
// bound is >= v (Prometheus "le" semantics); values beyond every bound land
// in the implicit +Inf bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// SumDuration returns Sum interpreted as seconds.
func (h *Histogram) SumDuration() time.Duration {
	return time.Duration(h.Sum() * float64(time.Second))
}

// HistogramSnapshot is a consistent-enough point-in-time copy (buckets are
// read individually; a snapshot taken mid-Observe may be off by one
// observation, which quantile estimation tolerates).
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds.
	Bounds []float64
	// Buckets are per-bucket (non-cumulative) counts; the last entry is the
	// +Inf bucket.
	Buckets []uint64
	// Count and Sum aggregate all observations.
	Count uint64
	Sum   float64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.counts)),
		Count:   h.count.Load(),
		Sum:     h.Sum(),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket containing the target rank, the same estimator
// Prometheus' histogram_quantile uses:
//
//   - the first bucket interpolates from 0 (observations are non-negative);
//   - the +Inf bucket returns the largest finite bound (the estimate is
//     clamped — there is no upper edge to interpolate toward);
//   - an empty histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Buckets {
		prev := float64(cum)
		cum += c
		// Target the lowest non-empty bucket whose cumulative count reaches
		// the rank (cum > 0 skips leading empty buckets when rank is 0).
		if float64(cum) < rank || cum == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite bound — there is no
			// upper edge to interpolate toward.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// P50, P95 and P99 are convenience quantiles.
func (s HistogramSnapshot) P50() float64 { return s.Quantile(0.50) }

// P95 estimates the 95th percentile.
func (s HistogramSnapshot) P95() float64 { return s.Quantile(0.95) }

// P99 estimates the 99th percentile.
func (s HistogramSnapshot) P99() float64 { return s.Quantile(0.99) }

// QuantileDuration returns Quantile as a time.Duration of seconds.
func (s HistogramSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q) * float64(time.Second))
}
