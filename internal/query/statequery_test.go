package query

import (
	"errors"
	"testing"

	"dcert/internal/chash"
	"dcert/internal/workload"
)

func TestStateQueryRoundTrip(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 5, 12)
	tip := r.sp.Node().Tip()

	// Find a written state key via the state DB itself.
	res, err := r.sp.Node().State().ExecuteBlock(r.sp.Node().Registry(), nil)
	if err != nil {
		t.Fatalf("ExecuteBlock: %v", err)
	}
	_ = res

	// Probe a key the KV workload writes.
	key := ""
	for i := 0; i < 100 && key == ""; i++ {
		probe := "ct/" + workload.ContractName(workload.KVStore, 0) + "/kv/user-key-" + itoa(i)
		v, err := r.sp.Node().State().Get([]byte(probe))
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if v != nil {
			key = probe
		}
	}
	if key == "" {
		t.Skip("no written key found")
	}

	sr, err := r.sp.StateQuery(key)
	if err != nil {
		t.Fatalf("StateQuery: %v", err)
	}
	if sr.Value == nil {
		t.Fatal("expected a present value")
	}
	if err := VerifyState(&tip.Header, sr); err != nil {
		t.Fatalf("VerifyState: %v", err)
	}
	if sr.EncodedSize() <= 0 {
		t.Fatal("state proof must have a size")
	}

	// Tampering with the value fails.
	sr.Value = []byte("forged")
	if err := VerifyState(&tip.Header, sr); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("want ErrResultMismatch, got %v", err)
	}
}

func TestStateQueryAbsence(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 3, 10)
	tip := r.sp.Node().Tip()

	sr, err := r.sp.StateQuery("never-written-key")
	if err != nil {
		t.Fatalf("StateQuery: %v", err)
	}
	if sr.Value != nil {
		t.Fatal("expected proven absence")
	}
	if err := VerifyState(&tip.Header, sr); err != nil {
		t.Fatalf("VerifyState(absent): %v", err)
	}
	// Claiming a value for an absent key fails.
	sr.Value = []byte("ghost")
	if err := VerifyState(&tip.Header, sr); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("want ErrResultMismatch, got %v", err)
	}
}

func TestStateQueryStaleHeader(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 3, 10)
	oldTip := r.sp.Node().Tip()
	r.advance(t, 3, 10)

	// A fresh proof does not verify against the stale header unless the key
	// was untouched; find a touched key to make the negative case solid.
	key := ""
	for i := 0; i < 100 && key == ""; i++ {
		probe := "ct/" + workload.ContractName(workload.KVStore, 0) + "/kv/user-key-" + itoa(i)
		v, err := r.sp.Node().State().Get([]byte(probe))
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if v != nil {
			key = probe
		}
	}
	if key == "" {
		t.Skip("no written key")
	}
	sr, err := r.sp.StateQuery(key)
	if err != nil {
		t.Fatalf("StateQuery: %v", err)
	}
	// Against the stale header the proof may fail outright (different root)
	// — it must never succeed with a different value than the stale state.
	if err := VerifyState(&oldTip.Header, sr); err == nil {
		oldVal, err := r.sp.Node().State().Get([]byte(key))
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if string(oldVal) != string(sr.Value) {
			t.Fatal("stale-header verification accepted a newer value")
		}
	}
}

func TestTxQueryRoundTrip(t *testing.T) {
	r := newRig(t, workload.SmallBank)
	r.advance(t, 4, 10)
	blk, err := r.sp.Node().Store().AtHeight(2)
	if err != nil {
		t.Fatalf("AtHeight: %v", err)
	}

	res, err := r.sp.TxQuery(blk.Hash(), 3)
	if err != nil {
		t.Fatalf("TxQuery: %v", err)
	}
	if err := VerifyTx(&blk.Header, res); err != nil {
		t.Fatalf("VerifyTx: %v", err)
	}

	// Wrong header (different block) fails.
	other, err := r.sp.Node().Store().AtHeight(3)
	if err != nil {
		t.Fatalf("AtHeight: %v", err)
	}
	if err := VerifyTx(&other.Header, res); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}

	// Substituted transaction fails.
	swapped := *res
	swapped.Tx = blk.Txs[4]
	if err := VerifyTx(&blk.Header, &swapped); !errors.Is(err, ErrBadProof) {
		t.Fatalf("want ErrBadProof, got %v", err)
	}
}

func TestTxQueryOutOfRange(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 2, 5)
	blk, err := r.sp.Node().Store().AtHeight(1)
	if err != nil {
		t.Fatalf("AtHeight: %v", err)
	}
	if _, err := r.sp.TxQuery(blk.Hash(), 99); err == nil {
		t.Fatal("want error for out-of-range index")
	}
	if _, err := r.sp.TxQuery(chash.Leaf([]byte("ghost")), 0); err == nil {
		t.Fatal("want error for unknown block")
	}
}

// itoa avoids importing strconv in tests repeatedly.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestStateAndTxWireRoundTrips(t *testing.T) {
	r := newRig(t, workload.KVStore)
	r.advance(t, 3, 10)
	tip := r.sp.Node().Tip()

	sr, err := r.sp.StateQuery("never-written")
	if err != nil {
		t.Fatalf("StateQuery: %v", err)
	}
	parsedSR, err := UnmarshalStateResult(sr.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalStateResult: %v", err)
	}
	if err := VerifyState(&tip.Header, parsedSR); err != nil {
		t.Fatalf("VerifyState after round trip: %v", err)
	}

	blk, err := r.sp.Node().Store().AtHeight(2)
	if err != nil {
		t.Fatalf("AtHeight: %v", err)
	}
	tr, err := r.sp.TxQuery(blk.Hash(), 1)
	if err != nil {
		t.Fatalf("TxQuery: %v", err)
	}
	parsedTR, err := UnmarshalTxResult(tr.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalTxResult: %v", err)
	}
	if err := VerifyTx(&blk.Header, parsedTR); err != nil {
		t.Fatalf("VerifyTx after round trip: %v", err)
	}

	if _, err := UnmarshalStateResult([]byte{3}); err == nil {
		t.Fatal("want error for garbage state result")
	}
	if _, err := UnmarshalTxResult([]byte{3}); err == nil {
		t.Fatal("want error for garbage tx result")
	}
}
