package mpt

import (
	"bytes"
	"fmt"
	"testing"
)

func FuzzUnmarshalWitness(f *testing.F) {
	tr := New()
	for i := 0; i < 30; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			f.Fatalf("Put: %v", err)
		}
	}
	if _, err := tr.Hash(); err != nil {
		f.Fatalf("Hash: %v", err)
	}
	w, err := tr.Prove([]byte("k7"))
	if err != nil {
		f.Fatalf("Prove: %v", err)
	}
	f.Add(w.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 3, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := UnmarshalWitness(raw)
		if err != nil {
			return
		}
		// Decoded witnesses are content-addressed, so re-marshal is a
		// permutation-stable canonical form.
		again, err := UnmarshalWitness(parsed.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		if !bytes.Equal(again.Marshal(), parsed.Marshal()) {
			t.Fatal("witness marshal not canonical")
		}
	})
}

// FuzzPartialTrieOps throws fuzzed key/value operations at a partial trie
// built from a hostile (fuzz-mutated) witness; nothing may panic, and
// successful reads must come from authenticated nodes only.
func FuzzPartialTrieOps(f *testing.F) {
	tr := New()
	for i := 0; i < 10; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("acct-%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			f.Fatalf("Put: %v", err)
		}
	}
	root, err := tr.Hash()
	if err != nil {
		f.Fatalf("Hash: %v", err)
	}
	w, err := tr.WitnessForKeys([][]byte{[]byte("acct-3"), []byte("acct-7")})
	if err != nil {
		f.Fatalf("WitnessForKeys: %v", err)
	}
	f.Add(w.Marshal(), []byte("acct-3"))
	f.Add(w.Marshal(), []byte("zzz"))
	f.Fuzz(func(t *testing.T, rawWitness, key []byte) {
		parsed, err := UnmarshalWitness(rawWitness)
		if err != nil {
			return
		}
		pt := NewPartial(root, parsed)
		if v, err := pt.Get(key); err == nil && v != nil {
			// Any successful read must match the real trie (content
			// addressing makes forgery impossible).
			want, err := tr.Get(key)
			if err != nil {
				t.Fatalf("real Get: %v", err)
			}
			if !bytes.Equal(v, want) {
				t.Fatalf("partial trie returned forged value %q for %q", v, key)
			}
		}
	})
}
