// Superlight-vs-light: the Fig. 7 comparison as a runnable demo.
//
// A traditional light client must download and validate every block header —
// linear storage and bootstrap time. The DCert superlight client validates
// one certificate. This example grows a chain and prints both clients' costs
// side by side at increasing lengths, then extrapolates the light client to
// Ethereum scale using the paper's 508-byte header size.
//
// Run with:
//
//	go run ./examples/superlight-vs-light
package main

import (
	"fmt"
	"os"
	"time"

	"dcert"
)

func main() {
	logger := dcert.NewLogger(os.Stderr, dcert.LogInfo, dcert.LogF("node", "superlight-vs-light"))
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.DoNothing, // header costs are what matter here
		Contracts: 5,
		Accounts:  8,
	})
	if err != nil {
		logger.Fatal("deployment", dcert.LogF("err", err))
	}

	checkpoints := map[uint64]bool{25: true, 50: true, 100: true}
	type tip struct {
		hdr  dcert.Header
		cert *dcert.Certificate
	}
	tips := make(map[uint64]tip)

	fmt.Println("growing the chain to 100 blocks...")
	for i := 0; i < 100; i++ {
		blk, cert, err := dep.MineAndCertify(1)
		if err != nil {
			logger.Fatal("mine", dcert.LogF("err", err))
		}
		if checkpoints[blk.Header.Height] {
			tips[blk.Header.Height] = tip{hdr: blk.Header, cert: cert}
		}
	}
	headers := dep.Miner().Store().Headers()

	fmt.Printf("\n%-10s %-22s %-22s\n", "", "traditional light client", "DCert superlight client")
	fmt.Printf("%-10s %-10s %-11s %-10s %-11s\n", "height", "storage", "bootstrap", "storage", "bootstrap")
	var perHeader time.Duration
	for _, h := range []uint64{25, 50, 100} {
		lc := dep.NewLightClient()
		start := time.Now()
		if err := lc.Sync(headers[:h+1]); err != nil {
			logger.Fatal("light sync", dcert.LogF("err", err))
		}
		lightTime := time.Since(start)
		perHeader = lightTime / time.Duration(h+1)

		sc := dep.NewSuperlightClient()
		cp := tips[h]
		start = time.Now()
		if err := sc.ValidateChain(&cp.hdr, cp.cert); err != nil {
			logger.Fatal("superlight validate", dcert.LogF("err", err))
		}
		superTime := time.Since(start)

		fmt.Printf("%-10d %-10s %-11v %-10s %-11v\n", h,
			fmt.Sprintf("%dB", lc.StorageSize()), lightTime.Round(time.Microsecond),
			fmt.Sprintf("%dB", sc.StorageSize()), superTime.Round(time.Microsecond))
	}

	// Extrapolate to Ethereum scale (paper footnote 1: 1.56e7 blocks,
	// 508 B headers → 7.93 GB).
	const ethBlocks = 15_600_000
	fmt.Printf("\nat Ethereum scale (%d blocks):\n", ethBlocks)
	fmt.Printf("  light client:      %.2f GB storage, ~%v bootstrap\n",
		float64(ethBlocks)*508/(1<<30), (perHeader * ethBlocks).Round(time.Second))
	sc := dep.NewSuperlightClient()
	cp := tips[100]
	if err := sc.ValidateChain(&cp.hdr, cp.cert); err != nil {
		logger.Fatal("superlight validate", dcert.LogF("err", err))
	}
	fmt.Printf("  superlight client: %.2f KB storage, sub-millisecond bootstrap — constant forever\n",
		float64(sc.StorageSize())/1024)
}
