package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dcert"
	"dcert/internal/storage"
	"dcert/internal/storage/vfs"
)

// Storage durability experiment. Three questions about the crash-safe
// engine, each with a number the paper's deployment story depends on:
//
//   - sustained commit throughput: segment-log append rate with ~1 KB
//     records, per-record fsync vs group commit — the price of the "every
//     block durable before mining continues" setting against the batched
//     default;
//   - cold-start-to-certifying time: close a deployment with a six-figure
//     certified chain, reopen it, and measure how long until recovery,
//     node resume, issuer checkpoint adoption, and the first new
//     certificate complete;
//   - torn-tail recovery time: damage the chain log's tail (a torn final
//     frame, as a mid-write power cut leaves behind) and measure the
//     reopen-scan-truncate repair.

// StorageLogPoint is one fsync policy's append throughput.
type StorageLogPoint struct {
	// Mode names the fsync policy ("per-record fsync" or "group commit").
	Mode string `json:"mode"`
	// RecordsPerSec is the sustained append rate.
	RecordsPerSec float64 `json:"records_per_sec"`
	// MBPerSec is the corresponding byte throughput.
	MBPerSec float64 `json:"mb_per_sec"`
	// Fsyncs is how many fsyncs the run issued (counted at the vfs seam).
	Fsyncs uint64 `json:"fsyncs"`
}

// StorageResult is the full experiment output (and the BENCH_storage.json
// schema).
type StorageResult struct {
	Scale string `json:"scale"`
	// Blocks is the certified chain length built for the cold-start cycle.
	Blocks int `json:"blocks"`
	// LogRecords / LogRecordBytes size the segment-log microbenchmark.
	LogRecords     int               `json:"log_records"`
	LogRecordBytes int               `json:"log_record_bytes"`
	Log            []StorageLogPoint `json:"log"`
	// MineBlocksPerSec is the sustained mine→certify→journal loop rate
	// (group-commit fsync) while building the chain.
	MineBlocksPerSec float64 `json:"mine_blocks_per_sec"`
	// CloseSeconds is the shutdown cost (final snapshot + sync).
	CloseSeconds float64 `json:"close_seconds"`
	// ColdStartSeconds is OpenDeployment on the closed directory: log scan,
	// state image load, four full-node resumes, issuer checkpoint adoption.
	ColdStartSeconds float64 `json:"cold_start_seconds"`
	// FirstCertSeconds is cold start plus mining and certifying one new
	// block — the cold-start-to-certifying figure.
	FirstCertSeconds float64 `json:"first_cert_seconds"`
	// RecoveredHeight is the tip the cold start recovered.
	RecoveredHeight uint64 `json:"recovered_height"`
	// TornRecoveryMillis is the reopen time after the chain log's tail is
	// damaged (scan + physical truncation).
	TornRecoveryMillis float64 `json:"torn_recovery_millis"`
	// TornTruncatedBytes is how much the repair cut.
	TornTruncatedBytes int64 `json:"torn_truncated_bytes"`
	// TornRecoveredHeight is the tip after the torn-tail repair (the tip
	// certificate died with the tail, so one block is dropped).
	TornRecoveredHeight uint64 `json:"torn_recovered_height"`
}

// runStorageLog measures segment-log append throughput for one fsync policy.
func runStorageLog(records, recordBytes int, interval time.Duration, mode string) (StorageLogPoint, error) {
	dir, err := os.MkdirTemp("", "dcert-bench-seglog-")
	if err != nil {
		return StorageLogPoint{}, err
	}
	defer os.RemoveAll(dir)
	counter := vfs.NewFault(vfs.OS{}, vfs.FaultPlan{}) // pass-through, counts ops
	lg, err := storage.OpenLog(counter, dir, storage.LogOptions{FsyncInterval: interval})
	if err != nil {
		return StorageLogPoint{}, err
	}
	payload := make([]byte, recordBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	for i := 0; i < records; i++ {
		if err := lg.Append(1, payload); err != nil {
			lg.Close()
			return StorageLogPoint{}, err
		}
	}
	if err := lg.Sync(); err != nil {
		lg.Close()
		return StorageLogPoint{}, err
	}
	elapsed := time.Since(start).Seconds()
	if err := lg.Close(); err != nil {
		return StorageLogPoint{}, err
	}
	return StorageLogPoint{
		Mode:          mode,
		RecordsPerSec: float64(records) / elapsed,
		MBPerSec:      float64(records*(recordBytes+9)) / elapsed / (1 << 20),
		Fsyncs:        counter.Stats().Syncs,
	}, nil
}

// RunStorage builds a certified chain on disk, cycles it through a clean
// close / cold start / torn-tail crash, and benchmarks the segment log's
// fsync policies.
func RunStorage(scale Scale) (*StorageResult, error) {
	blocks := 2000
	logRecords := 20000
	if scale == Paper {
		blocks = 100000
		logRecords = 100000
	}
	res := &StorageResult{
		Scale:          scale.String(),
		Blocks:         blocks,
		LogRecords:     logRecords,
		LogRecordBytes: 1024,
	}

	// Segment-log microbenchmark: the same record stream under the two
	// fsync policies.
	perRecord, err := runStorageLog(logRecords, res.LogRecordBytes, 0, "per-record fsync")
	if err != nil {
		return nil, err
	}
	grouped, err := runStorageLog(logRecords, res.LogRecordBytes, 5*time.Millisecond, "group commit 5ms")
	if err != nil {
		return nil, err
	}
	res.Log = []StorageLogPoint{perRecord, grouped}

	// Build the certified chain: a lean deployment (trivial PoW, no
	// simulated enclave overhead, one tx per block) so the loop measures
	// the certification + journaling path, not mining.
	dir, err := os.MkdirTemp("", "dcert-bench-storage-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cfg := dcert.Config{
		Workload:   dcert.KVStore,
		Contracts:  2,
		Accounts:   4,
		Difficulty: 1,
		Seed:       7,
		KeySpace:   64,
		Storage:    &dcert.StorageConfig{Dir: dir, FsyncInterval: 5 * time.Millisecond},
	}
	dep, err := dcert.NewDeployment(cfg)
	if err != nil {
		return nil, err
	}
	mineStart := time.Now()
	for i := 0; i < blocks; i++ {
		if _, _, err := dep.MineAndCertify(1); err != nil {
			return nil, fmt.Errorf("bench: storage mine block %d: %w", i+1, err)
		}
	}
	res.MineBlocksPerSec = float64(blocks) / time.Since(mineStart).Seconds()

	closeStart := time.Now()
	if err := dep.Close(); err != nil {
		return nil, err
	}
	res.CloseSeconds = time.Since(closeStart).Seconds()

	// Cold start: reopen the data directory and certify one new block.
	openStart := time.Now()
	resumed, err := dcert.OpenDeployment(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: storage cold start: %w", err)
	}
	res.ColdStartSeconds = time.Since(openStart).Seconds()
	rec := resumed.StorageRecovery()
	if rec == nil || rec.TipHeight() != uint64(blocks) {
		resumed.Close()
		return nil, fmt.Errorf("bench: cold start recovered height %d, want %d", rec.TipHeight(), blocks)
	}
	res.RecoveredHeight = rec.TipHeight()
	if _, _, err := resumed.MineAndCertify(1); err != nil {
		resumed.Close()
		return nil, fmt.Errorf("bench: storage first cert: %w", err)
	}
	res.FirstCertSeconds = time.Since(openStart).Seconds()
	if err := resumed.Close(); err != nil {
		return nil, err
	}

	// Torn tail: cut into the chain log's final frame (the tip
	// certificate), reopen the engine, and time the scan-and-repair.
	osFS := vfs.OS{}
	segs, err := osFS.ReadDir(vfs.Join(dir, "chain"))
	if err != nil || len(segs) == 0 {
		return nil, fmt.Errorf("bench: chain segments: %v", err)
	}
	last := vfs.Join(dir, "chain", segs[len(segs)-1])
	f, err := osFS.OpenFile(last, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err == nil {
		err = f.Truncate(size - 17)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	tornStart := time.Now()
	eng, err := storage.OpenEngine(dir, storage.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: torn-tail reopen: %w", err)
	}
	res.TornRecoveryMillis = float64(time.Since(tornStart).Microseconds()) / 1e3
	tornRec := eng.Recovery()
	res.TornTruncatedBytes = tornRec.TruncatedBytes
	res.TornRecoveredHeight = tornRec.TipHeight()
	if err := eng.Close(); err != nil {
		return nil, err
	}
	if !tornRec.Torn || res.TornRecoveredHeight >= res.RecoveredHeight+1 {
		return nil, fmt.Errorf("bench: torn-tail repair recovered height %d of %d (torn=%v)",
			res.TornRecoveredHeight, res.RecoveredHeight+1, tornRec.Torn)
	}
	return res, nil
}

// WriteJSON persists the result (the make bench-json artifact).
func (r *StorageResult) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Table renders the result.
func (r *StorageResult) Table() *Table {
	t := &Table{
		Title: "storage — durable engine: commit throughput and crash recovery",
		Note: fmt.Sprintf("certified chain of %d blocks; log microbenchmark %d × %d B records",
			r.Blocks, r.LogRecords, r.LogRecordBytes),
		Columns: []string{"metric", "value"},
	}
	for _, p := range r.Log {
		t.Rows = append(t.Rows, []string{
			"log append, " + p.Mode,
			fmt.Sprintf("%.0f rec/s (%.1f MB/s, %d fsyncs)", p.RecordsPerSec, p.MBPerSec, p.Fsyncs),
		})
	}
	t.Rows = append(t.Rows,
		[]string{"mine+certify+journal", fmt.Sprintf("%.0f blocks/s", r.MineBlocksPerSec)},
		[]string{"clean close (snapshot)", fmt.Sprintf("%.3f s", r.CloseSeconds)},
		[]string{"cold start (recover+resume)", fmt.Sprintf("%.3f s to height %d", r.ColdStartSeconds, r.RecoveredHeight)},
		[]string{"cold start to first certificate", fmt.Sprintf("%.3f s", r.FirstCertSeconds)},
		[]string{"torn-tail repair", fmt.Sprintf("%.1f ms (%d B cut, tip %d)", r.TornRecoveryMillis, r.TornTruncatedBytes, r.TornRecoveredHeight)},
	)
	return t
}
