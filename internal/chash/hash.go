// Package chash provides the cryptographic primitives shared by every DCert
// module: domain-separated SHA-256 hashing, ECDSA P-256 signatures, and
// canonical binary encoding helpers.
//
// All Merkle structures in this repository (MHT, SMT, MPT, MB-tree, skip
// list) hash through this package so that domain separation is applied
// uniformly and hash-collision assumptions are centralized.
package chash

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Size is the byte length of every digest used in DCert.
const Size = sha256.Size

// Hash is a fixed-size SHA-256 digest.
type Hash [Size]byte

// Zero is the all-zero hash, used as the digest of empty subtrees and as a
// nil sentinel in Merkle structures.
var Zero Hash

// Domain tags keep hashes of different structures from colliding with each
// other (e.g. a Merkle leaf can never be reinterpreted as an interior node).
type Domain byte

// Domain separation tags. Start at one so that the zero value is invalid.
const (
	DomainLeaf Domain = iota + 1
	DomainNode
	DomainHeader
	DomainTx
	DomainState
	DomainCert
	DomainQuote
	DomainReport
	DomainIndex
	DomainConsensus
)

// String implements fmt.Stringer for diagnostics.
func (d Domain) String() string {
	switch d {
	case DomainLeaf:
		return "leaf"
	case DomainNode:
		return "node"
	case DomainHeader:
		return "header"
	case DomainTx:
		return "tx"
	case DomainState:
		return "state"
	case DomainCert:
		return "cert"
	case DomainQuote:
		return "quote"
	case DomainReport:
		return "report"
	case DomainIndex:
		return "index"
	case DomainConsensus:
		return "consensus"
	default:
		return fmt.Sprintf("domain(%d)", byte(d))
	}
}

// Sum hashes the concatenation of the given byte slices under the domain tag.
// Parts are concatenated with no per-part framing; callers needing injective
// encodings length-prefix through Encoder first. The steady state allocates
// nothing: see engine.go.
func Sum(d Domain, parts ...[]byte) Hash {
	if len(parts) == 1 {
		return sumOne(d, parts[0])
	}
	return sumParts(d, parts...)
}

// SumBytes hashes a single byte slice with no domain tag. It exists for
// interoperability points where the exact preimage matters (e.g. content
// addressing of raw payloads).
func SumBytes(b []byte) Hash {
	return sha256.Sum256(b)
}

// Leaf hashes a leaf payload.
func Leaf(payload []byte) Hash {
	return sumOne(DomainLeaf, payload)
}

// Node hashes two child digests into an interior-node digest
// (h = H(left || right), Fig. 1 of the paper). This is the Merkle inner loop
// — one stack buffer, one single-shot compression, zero allocations.
func Node(left, right Hash) Hash {
	var buf [1 + 2*Size]byte
	buf[0] = byte(DomainNode)
	copy(buf[1:1+Size], left[:])
	copy(buf[1+Size:], right[:])
	return sha256.Sum256(buf[:])
}

// IsZero reports whether the hash is the all-zero sentinel.
func (h Hash) IsZero() bool {
	return h == Zero
}

// Bytes returns the digest as a freshly allocated byte slice.
func (h Hash) Bytes() []byte {
	out := make([]byte, Size)
	copy(out, h[:])
	return out
}

// Hex returns the full lowercase hex encoding of the digest.
func (h Hash) Hex() string {
	return hex.EncodeToString(h[:])
}

// String returns an abbreviated hex form for logs.
func (h Hash) String() string {
	return hex.EncodeToString(h[:6]) + "…"
}

// FromBytes converts a byte slice to a Hash, erroring on length mismatch.
func FromBytes(b []byte) (Hash, error) {
	if len(b) != Size {
		return Zero, fmt.Errorf("chash: digest must be %d bytes, got %d", Size, len(b))
	}
	var h Hash
	copy(h[:], b)
	return h, nil
}

// FromHex parses a full hex-encoded digest.
func FromHex(s string) (Hash, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("chash: parse hex digest: %w", err)
	}
	return FromBytes(b)
}

// Uint64Bytes encodes v in big-endian order. Canonical integer encoding for
// everything that gets hashed (heights, timestamps, nonces).
func Uint64Bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Uint32Bytes encodes v in big-endian order.
func Uint32Bytes(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}
