package core

import (
	"fmt"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/enclave"
	"dcert/internal/statedb"
)

// IndexJob is the CI-side input for certifying one authenticated index over
// one block: the claimed new root and the update witness (prepared by the
// index replica or the SP), plus the updater identity. The previous root and
// certificate are tracked by the Issuer itself.
type IndexJob struct {
	// Updater names the registered index-update logic.
	Updater string
	// NewRoot is the claimed post-block index root H_i^idx.
	NewRoot chash.Hash
	// Witness is the update proof π_i^idx.
	Witness []byte
}

// indexState returns the tracked (prevRoot, prevCert) pair for an index.
func (ci *Issuer) indexState(name string) (chash.Hash, *Certificate) {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	return ci.indexRoots[name], ci.lastIndexCert(name)
}

// lastIndexCert must be called with ci.mu held.
func (ci *Issuer) lastIndexCert(name string) *Certificate {
	certs := ci.indexCerts[name]
	if len(certs) == 0 {
		return nil
	}
	// The tracked root corresponds to the cert stored under lastIndexBlock.
	return certs[ci.lastIndexBlock[name]]
}

// storeIndexCert records a fresh index certificate.
func (ci *Issuer) storeIndexCert(name string, blockHash chash.Hash, root chash.Hash, cert *Certificate) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if ci.indexCerts[name] == nil {
		ci.indexCerts[name] = make(map[chash.Hash]*Certificate)
	}
	ci.indexCerts[name][blockHash] = cert
	ci.indexRoots[name] = root
	if ci.lastIndexBlock == nil {
		ci.lastIndexBlock = make(map[string]chash.Hash)
	}
	ci.lastIndexBlock[name] = blockHash
}

// ProcessBlockAugmented runs the augmented scheme (Alg. 4) for a block and a
// set of authenticated indexes: one Ecall per index, each of which
// re-verifies the previous augmented certificate, the full block transition,
// and the index update, then signs H(hdr_i ‖ H_i^idx).
//
// The returned certificates are in job order. The block itself advances the
// CI's replica once, after all index certificates succeed.
func (ci *Issuer) ProcessBlockAugmented(blk *chain.Block, jobs []*IndexJob) ([]*Certificate, CostBreakdown, error) {
	var bd CostBreakdown
	if len(jobs) == 0 {
		return nil, bd, fmt.Errorf("core: augmented certification needs at least one index")
	}
	prev, _ := ci.certifiedTip()

	proof, res, err := ci.prepare(blk, &bd)
	if err != nil {
		return nil, bd, err
	}

	certs := make([]*Certificate, 0, len(jobs))
	for _, job := range jobs {
		prevRoot, prevCert := ci.indexState(job.Updater)
		in := &IndexInput{
			Updater:  job.Updater,
			PrevRoot: prevRoot,
			PrevCert: prevCert,
			NewRoot:  job.NewRoot,
			Witness:  job.Witness,
		}
		var sig []byte
		inputSize := ecallInputSize(prev, blk, prevCert, proof) + len(job.Witness)
		before := ci.encl.Stats()
		err := ci.encl.Ecall(inputSize, func(ctx *enclave.Context) error {
			var err error
			sig, err = ci.prog.EcallAugmented(ctx, prev, blk, proof, in)
			return err
		})
		after := ci.encl.Stats()
		bd.InsideExec += (after.ExecTime - before.ExecTime).Seconds()
		bd.InsideOverhead += (after.OverheadTime - before.OverheadTime).Seconds()
		ci.met.ecallsIndex.Inc()
		ci.met.enclaveIndexSec.Observe((after.InsideTime() - before.InsideTime()).Seconds())
		if err != nil {
			return nil, bd, fmt.Errorf("core: augmented ecall (%s): %w", job.Updater, err)
		}
		certs = append(certs, ci.newCert(IndexDigest(&blk.Header, job.NewRoot), sig))
	}

	if err := ci.advance(blk, res); err != nil {
		return nil, bd, err
	}
	for i, job := range jobs {
		ci.storeIndexCert(job.Updater, blk.Hash(), job.NewRoot, certs[i])
	}
	return certs, bd, nil
}

// ProcessBlockHierarchical runs the hierarchical scheme (Alg. 5): first the
// plain block certificate (Alg. 1, one Ecall with full verification), then
// one cheap Ecall per index that verifies the fresh block certificate
// instead of re-executing the block.
//
// It returns the block certificate and the index certificates in job order.
func (ci *Issuer) ProcessBlockHierarchical(blk *chain.Block, jobs []*IndexJob) (*Certificate, []*Certificate, CostBreakdown, error) {
	var bd CostBreakdown
	prev, prevBlockCert := ci.certifiedTip()

	proof, res, err := ci.prepare(blk, &bd)
	if err != nil {
		return nil, nil, bd, err
	}

	// Line 1: gen_cert — the block certificate.
	blkSig, err := ci.ecallSigGen(prev, prevBlockCert, blk, proof, &bd)
	if err != nil {
		return nil, nil, bd, err
	}
	blkCert := ci.newCert(BlockDigest(&blk.Header), blkSig)

	// Lines 2-18: per-index certification against the block certificate.
	certs := make([]*Certificate, 0, len(jobs))
	for _, job := range jobs {
		cert, err := ci.ecallHierarchicalIndex(prev, blk, blkCert, job, &bd)
		if err != nil {
			return nil, nil, bd, err
		}
		certs = append(certs, cert)
	}

	if _, err := ci.node.State().Commit(res.WriteSet); err != nil {
		return nil, nil, bd, fmt.Errorf("core: advance state: %w", err)
	}
	if err := ci.adopt(blk, blkCert); err != nil {
		return nil, nil, bd, err
	}
	for i, job := range jobs {
		ci.storeIndexCert(job.Updater, blk.Hash(), job.NewRoot, certs[i])
	}
	return blkCert, certs, bd, nil
}

// ecallHierarchicalIndex runs one per-index Ecall of Alg. 5 (the cheap path:
// verify the block certificate, replay the index update from the enclave-
// cached write set) and returns the index certificate. Both the sequential
// hierarchical scheme and the pipeline's index fan-out stage funnel through
// here; the per-index recursion state is read from the issuer's tracking.
func (ci *Issuer) ecallHierarchicalIndex(prev, blk *chain.Block, blkCert *Certificate, job *IndexJob, bd *CostBreakdown) (*Certificate, error) {
	prevRoot, prevCert := ci.indexState(job.Updater)
	in := &IndexInput{
		Updater:  job.Updater,
		PrevRoot: prevRoot,
		PrevCert: prevCert,
		NewRoot:  job.NewRoot,
		Witness:  job.Witness,
	}
	inputSize := len(prev.Header.Marshal()) + len(blk.Header.Marshal()) +
		blkCert.EncodedSize() + len(job.Witness)
	if prevCert != nil {
		inputSize += prevCert.EncodedSize()
	}
	var sig []byte
	before := ci.encl.Stats()
	err := ci.encl.Ecall(inputSize, func(ctx *enclave.Context) error {
		var err error
		sig, err = ci.prog.EcallHierarchicalIndex(ctx, prev, blk, blkCert, in)
		return err
	})
	after := ci.encl.Stats()
	bd.InsideExec += (after.ExecTime - before.ExecTime).Seconds()
	bd.InsideOverhead += (after.OverheadTime - before.OverheadTime).Seconds()
	ci.met.ecallsIndex.Inc()
	ci.met.enclaveIndexSec.Observe((after.InsideTime() - before.InsideTime()).Seconds())
	if err != nil {
		return nil, fmt.Errorf("core: hierarchical ecall (%s): %w", job.Updater, err)
	}
	return ci.newCert(IndexDigest(&blk.Header, job.NewRoot), sig), nil
}

// advance commits the block's writes and appends it to the CI's store (the
// store append under ci.mu, so tip readers stay consistent with adopt).
func (ci *Issuer) advance(blk *chain.Block, res *statedb.ExecResult) error {
	if _, err := ci.node.State().Commit(res.WriteSet); err != nil {
		return fmt.Errorf("core: advance state: %w", err)
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if _, err := ci.node.Store().Add(blk); err != nil {
		return fmt.Errorf("core: advance chain: %w", err)
	}
	return nil
}
