package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock pins record timestamps for exact-output assertions.
func fixedClock(l *Logger) {
	l.core.now = func() time.Time {
		return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	}
}

// TestLoggerFormat pins the logfmt record shape: timestamp, level, message,
// identity tags before call-site fields, quoting only when needed.
func TestLoggerFormat(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(&b, LevelInfo, F("node", "ci0"))
	fixedClock(lg)
	lg.Info("block certified", F("height", 42), F("note", "two words"))
	want := `2026-08-06T12:00:00.000Z INFO "block certified" node=ci0 height=42 note="two words"` + "\n"
	if b.String() != want {
		t.Fatalf("record:\n got %q\nwant %q", b.String(), want)
	}
}

// TestLoggerLevels: records below the threshold are dropped; SetLevel moves
// the shared threshold, including for With-derived children.
func TestLoggerLevels(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(&b, LevelWarn)
	fixedClock(lg)
	child := lg.With(F("ci", "ci1"))
	child.Info("dropped")
	child.Debug("dropped")
	if b.Len() != 0 {
		t.Fatalf("below-threshold records written: %q", b.String())
	}
	child.Error("kept", ErrField(strings.NewReader("").UnreadRune()))
	if !strings.Contains(b.String(), "ERROR kept ci=ci1 err=") {
		t.Fatalf("error record malformed: %q", b.String())
	}
	lg.SetLevel(LevelDebug)
	if !child.Enabled(LevelDebug) {
		t.Fatal("SetLevel did not propagate to derived logger")
	}
}

// TestLoggerConcurrent: records from concurrent writers must not interleave
// mid-line.
func TestLoggerConcurrent(t *testing.T) {
	var b syncBuilder
	lg := NewLogger(&b, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				lg.Info("msg", F("k", "vvvvvvvv"))
			}
		}()
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !strings.HasSuffix(line, "k=vvvvvvvv") {
			t.Fatalf("torn record: %q", line)
		}
	}
}

// TestLoggerFatal: Fatal writes the record and exits with status 1 (exit
// intercepted).
func TestLoggerFatal(t *testing.T) {
	defer func(orig func(int)) { osExit = orig }(osExit)
	code := -1
	osExit = func(c int) { code = c }
	var b strings.Builder
	lg := NewLogger(&b, LevelError)
	fixedClock(lg)
	lg.Fatal("boom", F("why", "test"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(b.String(), "ERROR boom why=test") {
		t.Fatalf("fatal record missing: %q", b.String())
	}
}

// syncBuilder is a mutex-guarded strings.Builder (the logger already locks,
// but the test reads concurrently-written state afterwards).
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
