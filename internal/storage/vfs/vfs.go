// Package vfs abstracts the file-system operations the storage engine
// performs, so that disk faults — write errors, short writes, failed or
// lying fsyncs, power cuts that discard un-synced bytes — can be injected
// deterministically under the same seam the real OS implementation uses.
// It is the disk analogue of internal/network's fault fabric: production
// code runs on OS, chaos plans run on Fault wrapping OS.
package vfs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the slice of file-system behaviour the storage engine needs.
// Implementations must be safe for concurrent use by multiple goroutines
// operating on distinct files.
type FS interface {
	// OpenFile opens (or creates) a file with the given flags.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and its parents.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadDir lists a directory's entry names in lexical order.
	ReadDir(dir string) ([]string, error)
	// Stat returns file metadata.
	Stat(name string) (os.FileInfo, error)
}

// File is an open file handle. Writes always append at the current end of
// file (the engine's logs are append-only; snapshots are written once).
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Truncate cuts the file to the given size.
	Truncate(size int64) error
	// Size returns the current file size.
	Size() (int64, error)
	// Name returns the path the file was opened with.
	Name() string
}

// OS is the production FS backed by the operating system.
type OS struct{}

var _ FS = OS{}

type osFile struct {
	f *os.File
}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}

// Remove implements FS.
func (OS) Remove(name string) error {
	return os.Remove(name)
}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string, perm os.FileMode) error {
	return os.MkdirAll(dir, perm)
}

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (OS) Stat(name string) (os.FileInfo, error) {
	return os.Stat(name)
}

func (f *osFile) Write(p []byte) (int, error)             { return f.f.Write(p) }
func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *osFile) Close() error                            { return f.f.Close() }
func (f *osFile) Sync() error                             { return f.f.Sync() }
func (f *osFile) Truncate(size int64) error               { return f.f.Truncate(size) }
func (f *osFile) Name() string                            { return f.f.Name() }

func (f *osFile) Size() (int64, error) {
	info, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// ReadFile reads a whole file through an FS.
func ReadFile(fs FS, name string) ([]byte, error) {
	f, err := fs.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size == 0 {
		return buf, nil
	}
	// io.ReaderAt reads len(buf) bytes or returns an error, so one call
	// covers the file.
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("vfs: read %s: %w", name, err)
	}
	return buf, nil
}

// Exists reports whether a path exists on the FS.
func Exists(fs FS, name string) bool {
	_, err := fs.Stat(name)
	return err == nil
}

// Join is filepath.Join, re-exported so engine code depends only on vfs.
func Join(elem ...string) string {
	return filepath.Join(elem...)
}
