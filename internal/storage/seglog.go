package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dcert/internal/obs"
	"dcert/internal/storage/vfs"
)

// The segment log is the engine's durable primitive: an append-only,
// CRC32C-framed record log split across fixed-size segment files, with
// group-commit fsync batching and a tail-repairing opener.
//
// Frame layout (big-endian):
//
//	[4B body length][4B CRC32C of body][body: 1B tag + payload]
//
// A frame is written in a single Write call; durability follows from the
// log's fsync policy, not from the write. On open the log scans every
// segment in order and stops at the first structural defect — a torn
// length/CRC prefix, a body shorter than its declared length, a CRC
// mismatch, or an oversized length — truncates the file there, and deletes
// any later segments: everything past a defect is unordered garbage, and
// recovery promises a *prefix*, never a patchwork.

// crcTable is the Castagnoli polynomial, the conventional storage CRC.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the per-record framing overhead.
const frameHeaderSize = 8

// segSuffix names segment files: 00000001.seg, 00000002.seg, ...
const segSuffix = ".seg"

// LogOptions tunes a segment log.
type LogOptions struct {
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (default 64 MiB).
	SegmentBytes int64
	// FsyncInterval batches fsyncs: 0 syncs after every append (each
	// record durable before Append returns); >0 syncs at most once per
	// interval, so a crash may lose the last interval's worth of appends —
	// but never corrupt what came before.
	FsyncInterval time.Duration
}

func (o LogOptions) withDefaults() LogOptions {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// LogRecovery describes what the opener found and repaired.
type LogRecovery struct {
	// Records is the number of valid records in the log after repair.
	Records int
	// Bytes is the valid byte size across segments after repair.
	Bytes int64
	// TruncatedBytes counts bytes cut from the tail (torn or corrupt).
	TruncatedBytes int64
	// DroppedSegments counts whole segments deleted past a defect.
	DroppedSegments int
	// Torn reports whether any repair happened at all.
	Torn bool
}

// logMetrics are the log's nil-safe instrumentation hooks.
type logMetrics struct {
	appends  *obs.Counter
	bytes    *obs.Counter
	fsyncs   *obs.Counter
	fsyncSec *obs.Histogram
	segments *obs.Gauge
}

// Log is an append-only CRC-framed segment log.
//
// Log is safe for concurrent use.
type Log struct {
	fs   vfs.FS
	dir  string
	opts LogOptions

	mu       sync.Mutex
	cur      vfs.File // active segment
	curIdx   int      // active segment index
	curSize  int64
	segments []int // all live segment indices, ascending
	dirty    bool
	lastSync time.Time
	met      logMetrics
	rec      LogRecovery
}

// segName renders a segment file name.
func segName(idx int) string {
	return fmt.Sprintf("%08d%s", idx, segSuffix)
}

// parseSegName extracts a segment index, or -1.
func parseSegName(name string) int {
	if !strings.HasSuffix(name, segSuffix) {
		return -1
	}
	idx, err := strconv.Atoi(strings.TrimSuffix(name, segSuffix))
	if err != nil || idx <= 0 {
		return -1
	}
	return idx
}

// OpenLog opens (creating if needed) the segment log in dir, scanning and
// repairing the tail so appending can resume exactly after the last valid
// record.
func OpenLog(fs vfs.FS, dir string, opts LogOptions) (*Log, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: log dir: %w", err)
	}
	l := &Log{fs: fs, dir: dir, opts: opts.withDefaults(), lastSync: time.Now()}

	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: log dir: %w", err)
	}
	var idxs []int
	for _, name := range names {
		if idx := parseSegName(name); idx > 0 {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)

	if len(idxs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}

	// Scan segments in order. The first defect ends the trustworthy
	// prefix: the defective segment is truncated there, later segments
	// are deleted, and any index gap counts as a defect too (a missing
	// middle segment means everything after it is not a prefix).
	defect := false
	for i, idx := range idxs {
		if defect || (i > 0 && idx != idxs[i-1]+1) {
			if err := fs.Remove(vfs.Join(dir, segName(idx))); err != nil {
				return nil, fmt.Errorf("storage: drop segment %d: %w", idx, err)
			}
			l.rec.DroppedSegments++
			l.rec.Torn = true
			defect = true
			continue
		}
		valid, records, total, err := scanSegment(fs, vfs.Join(dir, segName(idx)))
		if err != nil {
			return nil, err
		}
		l.rec.Records += records
		l.rec.Bytes += valid
		if valid < total {
			if err := truncateSegment(fs, vfs.Join(dir, segName(idx)), valid); err != nil {
				return nil, err
			}
			l.rec.TruncatedBytes += total - valid
			l.rec.Torn = true
			defect = true
		}
		l.segments = append(l.segments, idx)
	}

	last := l.segments[len(l.segments)-1]
	if err := l.openSegment(last); err != nil {
		return nil, err
	}
	l.segments = l.segments[:len(l.segments)-1] // openSegment re-appends
	return l, nil
}

// openSegment opens segment idx for appending and makes it current.
func (l *Log) openSegment(idx int) error {
	f, err := l.fs.OpenFile(vfs.Join(l.dir, segName(idx)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open segment %d: %w", idx, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: segment %d size: %w", idx, err)
	}
	l.cur, l.curIdx, l.curSize = f, idx, size
	l.segments = append(l.segments, idx)
	l.met.segments.Set(int64(len(l.segments)))
	return nil
}

// Recovery reports what the opener repaired.
func (l *Log) Recovery() LogRecovery {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rec
}

// instrument attaches registry metrics under the given log name label.
func (l *Log) instrument(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	label := obs.L("log", name)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met = logMetrics{
		appends:  reg.Counter("dcert_storage_appends_total", "records appended", label),
		bytes:    reg.Counter("dcert_storage_bytes_total", "bytes appended (incl. framing)", label),
		fsyncs:   reg.Counter("dcert_storage_fsyncs_total", "fsync calls issued", label),
		fsyncSec: reg.Histogram("dcert_storage_fsync_seconds", "fsync latency", obs.DefBuckets, label),
		segments: reg.Gauge("dcert_storage_segments", "live segment files", label),
	}
	l.met.segments.Set(int64(len(l.segments)))
}

// Append writes one tagged record and applies the fsync policy. With a zero
// FsyncInterval the record is durable when Append returns; otherwise
// durability lags by at most the interval (group commit).
func (l *Log) Append(tag byte, payload []byte) error {
	if len(payload)+1 > maxRecord {
		return fmt.Errorf("storage: append: record of %d bytes exceeds limit", len(payload))
	}
	frame := buildFrame(tag, payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return errors.New("storage: append to closed log")
	}
	if l.curSize > 0 && l.curSize+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.cur.Write(frame)
	l.curSize += int64(n)
	if err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	l.dirty = true
	l.met.appends.Inc()
	l.met.bytes.Add(uint64(len(frame)))
	if l.opts.FsyncInterval == 0 || time.Since(l.lastSync) >= l.opts.FsyncInterval {
		return l.syncLocked()
	}
	return nil
}

// rotateLocked seals the current segment (fsyncing it) and starts the next.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("storage: rotate: %w", err)
	}
	l.cur = nil
	return l.openSegment(l.curIdx + 1)
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	l.met.fsyncs.Inc()
	l.met.fsyncSec.Observe(time.Since(start).Seconds())
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Scan replays every valid record in order. It reads from disk (not from a
// cache), so it sees exactly what a recovery would.
func (l *Log) Scan(fn func(tag byte, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]int(nil), l.segments...)
	dir := l.dir
	fs := l.fs
	l.mu.Unlock()
	for _, idx := range segs {
		if err := scanRecords(fs, vfs.Join(dir, segName(idx)), fn); err != nil {
			return err
		}
	}
	return nil
}

// scanPos is Scan with each record's position: the segment index and the
// byte offset just past the record's frame within that segment.
func (l *Log) scanPos(fn func(tag byte, payload []byte, seg int, end int64) error) error {
	l.mu.Lock()
	segs := append([]int(nil), l.segments...)
	dir := l.dir
	fs := l.fs
	l.mu.Unlock()
	for _, idx := range segs {
		raw, err := vfs.ReadFile(fs, vfs.Join(dir, segName(idx)))
		if err != nil {
			return fmt.Errorf("storage: scan %s: %w", segName(idx), err)
		}
		off := 0
		for {
			n, ok := nextFrame(raw[off:])
			if !ok {
				break
			}
			body := raw[off+frameHeaderSize : off+n]
			off += n
			if err := fn(body[0], body[1:], idx, int64(off)); err != nil {
				return err
			}
		}
	}
	return nil
}

// TruncateTail cuts the log back to (seg, end): segment seg keeps its first
// end bytes, later segments are deleted, and appending resumes at the cut.
// Used by recovery to discard records past the certified prefix, so a later
// session can never append a height the log already holds.
func (l *Log) TruncateTail(seg int, end int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur != nil {
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("storage: truncate tail: %w", err)
		}
		l.cur = nil
	}
	var kept []int
	for _, idx := range l.segments {
		switch {
		case idx < seg:
			kept = append(kept, idx)
		case idx == seg:
			if err := truncateSegment(l.fs, vfs.Join(l.dir, segName(idx)), end); err != nil {
				return err
			}
			kept = append(kept, idx)
		default:
			if err := l.fs.Remove(vfs.Join(l.dir, segName(idx))); err != nil {
				return fmt.Errorf("storage: truncate tail: %w", err)
			}
		}
	}
	if len(kept) == 0 || kept[len(kept)-1] != seg {
		return fmt.Errorf("storage: truncate tail: segment %d not in log", seg)
	}
	l.segments = kept[:len(kept)-1]
	l.dirty = false
	return l.openSegment(seg)
}

// Size returns the total valid byte size across segments.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var size int64
	for _, idx := range l.segments {
		if idx == l.curIdx {
			size += l.curSize
			continue
		}
		if info, err := l.fs.Stat(vfs.Join(l.dir, segName(idx))); err == nil {
			size += info.Size()
		}
	}
	return size
}

// Reset deletes every segment and starts the log over (used after a state
// snapshot makes the old WAL obsolete).
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur != nil {
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("storage: reset: %w", err)
		}
		l.cur = nil
	}
	for _, idx := range l.segments {
		if err := l.fs.Remove(vfs.Join(l.dir, segName(idx))); err != nil {
			return fmt.Errorf("storage: reset: %w", err)
		}
	}
	l.segments = nil
	l.dirty = false
	return l.openSegment(1)
}

// Close syncs and closes the log. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.cur.Close(); err == nil {
		err = cerr
	}
	l.cur = nil
	return err
}

// scanSegment validates a segment's frames, returning the valid prefix
// length, the record count within it, and the file's total size.
func scanSegment(fs vfs.FS, path string) (valid int64, records int, total int64, err error) {
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("storage: scan %s: %w", path, err)
	}
	total = int64(len(raw))
	off := 0
	for {
		n, ok := nextFrame(raw[off:])
		if !ok {
			break
		}
		off += n
		records++
	}
	return int64(off), records, total, nil
}

// buildFrame assembles one CRC32C frame around a tagged payload.
func buildFrame(tag byte, payload []byte) []byte {
	frame := make([]byte, frameHeaderSize+1+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(1+len(payload)))
	frame[frameHeaderSize] = tag
	copy(frame[frameHeaderSize+1:], payload)
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(frame[frameHeaderSize:], crcTable))
	return frame
}

// nextFrame validates the frame at the head of buf, returning its total
// size and whether it is intact.
func nextFrame(buf []byte) (int, bool) {
	if len(buf) < frameHeaderSize {
		return 0, false
	}
	bodyLen := binary.BigEndian.Uint32(buf[0:4])
	if bodyLen == 0 || bodyLen > maxRecord {
		return 0, false
	}
	end := frameHeaderSize + int(bodyLen)
	if len(buf) < end {
		return 0, false
	}
	crc := binary.BigEndian.Uint32(buf[4:8])
	if crc32.Checksum(buf[frameHeaderSize:end], crcTable) != crc {
		return 0, false
	}
	return end, true
}

// scanRecords streams a segment's valid records to fn.
func scanRecords(fs vfs.FS, path string, fn func(tag byte, payload []byte) error) error {
	raw, err := vfs.ReadFile(fs, path)
	if err != nil {
		return fmt.Errorf("storage: scan %s: %w", path, err)
	}
	off := 0
	for {
		n, ok := nextFrame(raw[off:])
		if !ok {
			return nil
		}
		body := raw[off+frameHeaderSize : off+n]
		if err := fn(body[0], body[1:]); err != nil {
			return err
		}
		off += n
	}
}

// truncateSegment cuts a segment to its valid prefix and fsyncs the repair.
func truncateSegment(fs vfs.FS, path string, size int64) error {
	f, err := fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: truncate %s: %w", path, err)
	}
	err = f.Truncate(size)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: truncate %s: %w", path, err)
	}
	return nil
}
