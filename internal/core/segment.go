package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/enclave"
	"dcert/internal/statedb"
)

// Segment certification: amortizing the block-certification Ecall. The
// recursive scheme of Alg. 1 pays one enclave entry per block — the dominant
// stage of the pipeline (BENCH_pipeline.json). A segment certificate extends
// the recursion unit from one block to K consecutive blocks: the enclave
// verifies the previous segment's certificate once, replays all K state
// transitions, and signs a single digest covering every header in the
// segment. Per-block state and index roots stay inside the signed headers,
// so query verification against a certified header is unchanged.
//
// K=1 is not a special mode but an identity: SegmentDigest of a single
// header IS BlockDigest of that header, so a one-block segment certificate
// is byte-for-byte the existing single-block certificate (golden-pinned by
// TestSegmentK1ByteIdentity).
//
// On top of segments, every certificate carries an interlink — hash links to
// the certified headers at exponentially spaced back-heights, the same
// deterministic exponential back-structure as internal/skiplist's tower —
// which lets a stale superlight client walk from the tip back to any trusted
// anchor in O(log n) certificate fetches (BootstrapSublinear) instead of
// replaying the stream. The interlink itself is NOT signed (signing it would
// break the K=1 byte identity): it is a routing hint, and every hop is
// verified by fetching the pointed-to segment, validating its enclave
// signature, and comparing its own certified header hash against the
// pointer. A forged pointer is therefore refuted by the first honest
// segment it names; soundness reduces to the enclave-only-signs-valid-chains
// invariant that all DCert trust rests on (DESIGN.md §15).

// Segment errors.
var (
	// ErrBadSegment is returned for structurally invalid segment
	// certificates (empty, broken internal linkage, digest mismatch).
	ErrBadSegment = errors.New("core: bad segment certificate")
	// ErrBadInterlink is returned when a bootstrap walk refutes an interlink
	// pointer or cannot converge on the trusted anchor.
	ErrBadInterlink = errors.New("core: bad interlink pointer")
	// ErrSegmentUnavailable is returned when no segment covering a requested
	// height is available from the serving issuer.
	ErrSegmentUnavailable = errors.New("core: segment unavailable")
)

// Hard decode bounds for untrusted segment bytes: a segment never spans more
// blocks than the deepest batching policy, and interlink levels are bounded
// by the height space (2^64). Counts beyond these are rejected before any
// allocation proportional to them.
const (
	maxSegmentBlocks   = 4096
	maxInterlinkLevels = 64
)

// SegmentDigest is the certified digest of a K-block segment. For a single
// header it is exactly BlockDigest — the K=1 byte identity that keeps
// one-block segment certificates indistinguishable from the pre-segment
// scheme. For K>1 it is a domain-separated hash over the ordered header
// hashes.
func SegmentDigest(headers []*chain.Header) chash.Hash {
	if len(headers) == 1 {
		return BlockDigest(headers[0])
	}
	e := chash.NewEncoder(32 + len(headers)*32)
	e.PutString("dcert-segment-digest-v1")
	e.PutUint32(uint32(len(headers)))
	for _, h := range headers {
		e.PutHash(h.Hash())
	}
	return chash.Sum(chash.DomainCert, e.Bytes())
}

// SegmentCert is a certified K-block segment: the covered headers (in chain
// order), one certificate whose digest is SegmentDigest(Headers), and the
// unsigned interlink routing hints for sublinear bootstrap. Interlink[l] is
// the certified header hash at height Start()−2^l (level 0 duplicates the
// first header's PrevHash and is cross-checked against it).
type SegmentCert struct {
	// Headers are the covered block headers, ascending, contiguous.
	Headers []*chain.Header
	// Cert is the enclave certificate over SegmentDigest(Headers).
	Cert *Certificate
	// Interlink holds certified header hashes at heights Start()−2^l.
	Interlink []chash.Hash
}

// Start is the first covered height.
func (s *SegmentCert) Start() uint64 { return s.Headers[0].Height }

// End is the last covered height (the segment's tip).
func (s *SegmentCert) End() uint64 { return s.Headers[len(s.Headers)-1].Height }

// Tip is the last covered header.
func (s *SegmentCert) Tip() *chain.Header { return s.Headers[len(s.Headers)-1] }

// HeaderAt returns the covered header at a height (nil if out of range).
func (s *SegmentCert) HeaderAt(height uint64) *chain.Header {
	if len(s.Headers) == 0 || height < s.Start() || height > s.End() {
		return nil
	}
	return s.Headers[height-s.Start()]
}

// Digest recomputes the segment's certified digest.
func (s *SegmentCert) Digest() chash.Hash { return SegmentDigest(s.Headers) }

// Marshal renders the segment certificate canonically.
func (s *SegmentCert) Marshal() []byte {
	cert := s.Cert.Marshal()
	e := chash.NewEncoder(16 + len(s.Headers)*128 + len(cert) + len(s.Interlink)*32)
	e.PutUint32(uint32(len(s.Headers)))
	for _, h := range s.Headers {
		e.PutBytes(h.Marshal())
	}
	e.PutBytes(cert)
	e.PutUint32(uint32(len(s.Interlink)))
	for _, link := range s.Interlink {
		e.PutHash(link)
	}
	return e.Bytes()
}

// UnmarshalSegmentCert parses untrusted segment-certificate bytes. Count
// fields are bounded before any count-proportional allocation: oversized
// claims fail immediately instead of pre-allocating.
func UnmarshalSegmentCert(raw []byte) (*SegmentCert, error) {
	d := chash.NewDecoder(raw)
	n, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
	}
	if n == 0 || n > maxSegmentBlocks {
		return nil, fmt.Errorf("%w: header count %d out of range [1,%d]", ErrBadSegment, n, maxSegmentBlocks)
	}
	// Grow by append from a small capacity: the claimed count never sizes an
	// allocation before the bytes backing it have been consumed.
	headers := make([]*chain.Header, 0, min(int(n), 64))
	for i := uint32(0); i < n; i++ {
		hraw, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("%w: header %d: %v", ErrBadSegment, i, err)
		}
		hdr, err := chain.UnmarshalHeader(hraw)
		if err != nil {
			return nil, fmt.Errorf("%w: header %d: %v", ErrBadSegment, i, err)
		}
		headers = append(headers, hdr)
	}
	certRaw, err := d.ReadBytes()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
	}
	cert, err := UnmarshalCertificate(certRaw)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
	}
	ln, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
	}
	if ln > maxInterlinkLevels {
		return nil, fmt.Errorf("%w: interlink levels %d beyond %d", ErrBadSegment, ln, maxInterlinkLevels)
	}
	var interlink []chash.Hash
	for i := uint32(0); i < ln; i++ {
		link, err := d.ReadHash()
		if err != nil {
			return nil, fmt.Errorf("%w: interlink %d: %v", ErrBadSegment, i, err)
		}
		interlink = append(interlink, link)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSegment, err)
	}
	return &SegmentCert{Headers: headers, Cert: cert, Interlink: interlink}, nil
}

// EncodedSize is the segment certificate's wire footprint.
func (s *SegmentCert) EncodedSize() int { return len(s.Marshal()) }

// InterlinkHeights is the deterministic back-height schedule for a segment
// starting at height start: start−1, start−2, start−4, ... while the step
// stays on-chain. Height 0 (genesis) participates like any other height.
func InterlinkHeights(start uint64) []uint64 {
	if start == 0 {
		return nil
	}
	var heights []uint64
	for step := uint64(1); step != 0 && step <= start; step <<= 1 {
		heights = append(heights, start-step)
	}
	return heights
}

// SegmentPolicy is the committer's adaptive batching policy: a segment
// closes at MaxBlocks, or MaxDelay after its first block arrived, whichever
// comes first — steady-state throughput rides the amortization curve while
// tip latency under slow arrival stays bounded by the deadline.
type SegmentPolicy struct {
	// MaxBlocks is K, the largest segment (values below 2 keep the
	// single-block committer and its byte-identical certificates).
	MaxBlocks int
	// MaxDelay bounds how long a partial segment may wait for more blocks
	// before certifying what it has (0 = wait for MaxBlocks or stream end).
	MaxDelay time.Duration
}

// lastSegmentHeaders snapshots the headers of the issuer's newest certified
// segment (nil before the first certificate).
func (ci *Issuer) lastSegmentHeaders() []*chain.Header {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	return ci.lastSegHeaders
}

// buildInterlink resolves the interlink schedule for a segment starting at
// start against the issuer's own (certified) chain. Called with ci.mu held
// or on a quiescent issuer; the store has its own lock.
func (ci *Issuer) buildInterlink(start uint64) []chash.Hash {
	heights := InterlinkHeights(start)
	links := make([]chash.Hash, 0, len(heights))
	for _, h := range heights {
		blk, err := ci.node.Store().AtHeight(h)
		if err != nil {
			return nil // unreachable on a contiguous store; degrade to no hints
		}
		links = append(links, blk.Hash())
	}
	return links
}

// recordSegmentLocked appends a segment to the issuer's ordered serving
// history (ci.mu held; the covered blocks are already in the store).
func (ci *Issuer) recordSegmentLocked(headers []*chain.Header, cert *Certificate) *SegmentCert {
	seg := &SegmentCert{Headers: headers, Cert: cert, Interlink: ci.buildInterlink(headers[0].Height)}
	ci.segs = append(ci.segs, seg)
	ci.lastSegHeaders = headers
	return seg
}

// SegmentCovering returns the certified segment containing height, or nil if
// the issuer holds none (heights certified before a restart are served only
// from the resumed tip segment onward).
func (ci *Issuer) SegmentCovering(height uint64) *SegmentCert {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	segs := ci.segs
	i := sort.Search(len(segs), func(i int) bool { return segs[i].End() >= height })
	if i < len(segs) && segs[i].Start() <= height {
		return segs[i]
	}
	return nil
}

// LatestSegment returns the issuer's newest certified segment, or nil before
// the first certificate (or mid-certification, mirroring LatestBundle).
func (ci *Issuer) LatestSegment() *SegmentCert {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	if len(ci.segs) == 0 {
		return nil
	}
	seg := ci.segs[len(ci.segs)-1]
	if seg.End() != ci.node.Tip().Header.Height {
		return nil
	}
	return seg
}

// captureUndo records the prior value of every key a block is about to
// write, so a failed segment Ecall can restore the replica to its certified
// state.
func captureUndo(state *statedb.DB, blockHash chash.Hash, writes map[string][]byte) (*undoRec, error) {
	rec := &undoRec{blockHash: blockHash, entries: make([]undoEntry, 0, len(writes))}
	for k := range writes {
		prior, err := state.Get([]byte(k))
		if err != nil {
			return nil, fmt.Errorf("core: undo capture %q: %w", k, err)
		}
		rec.entries = append(rec.entries, undoEntry{key: k, prior: prior, existed: prior != nil})
	}
	return rec, nil
}

// applyUndo restores speculative commits, newest record first.
func applyUndo(state *statedb.DB, recs []*undoRec) {
	for i := len(recs) - 1; i >= 0; i-- {
		for _, e := range recs[i].entries {
			if e.existed {
				if err := state.Set([]byte(e.key), e.prior); err != nil {
					panic(fmt.Sprintf("core: segment rollback %q: %v", e.key, err))
				}
			} else {
				if err := state.Delete([]byte(e.key)); err != nil {
					panic(fmt.Sprintf("core: segment rollback delete %q: %v", e.key, err))
				}
			}
		}
	}
}

// ProcessSegment certifies a contiguous run of blocks extending the CI's tip
// with ONE enclave entry: untrusted pre-processing for every block (each
// executed on the previous block's committed post-state), a single
// EcallSegmentSigGen, then atomic adoption of all K blocks under the one
// segment certificate. On any failure every speculative state commit is
// rolled back and the replica is left exactly at its certified tip.
func (ci *Issuer) ProcessSegment(blks []*chain.Block) (*SegmentCert, CostBreakdown, error) {
	var bd CostBreakdown
	if len(blks) == 0 {
		return nil, bd, fmt.Errorf("%w: empty segment", ErrBadSegment)
	}
	certifyStart := time.Now()
	prev, prevCert := ci.certifiedTip()
	prevHeaders := ci.lastSegmentHeaders()

	state := ci.node.State()
	proofs := make([]*statedb.UpdateProof, len(blks))
	var undo []*undoRec
	rollback := func() { applyUndo(state, undo) }
	for i, blk := range blks {
		proof, res, err := ci.prepare(blk, &bd)
		if err != nil {
			rollback()
			return nil, bd, err
		}
		rec, err := captureUndo(state, blk.Hash(), res.WriteSet)
		if err != nil {
			rollback()
			return nil, bd, err
		}
		if _, err := state.Commit(res.WriteSet); err != nil {
			rollback()
			return nil, bd, fmt.Errorf("core: segment speculative commit: %w", err)
		}
		undo = append(undo, rec)
		proofs[i] = proof
	}

	sig, err := ci.ecallSegmentSigGen(prev, prevHeaders, prevCert, blks, proofs, &bd)
	if err != nil {
		rollback()
		return nil, bd, err
	}
	headers := segmentHeaders(blks)
	cert := ci.newCert(SegmentDigest(headers), sig)
	seg, err := ci.adoptSegment(blks, headers, cert)
	if err != nil {
		rollback()
		return nil, bd, err
	}
	ci.met.certifySec.Observe(time.Since(certifyStart).Seconds())
	return seg, bd, nil
}

// segmentHeaders projects a block run onto its headers.
func segmentHeaders(blks []*chain.Block) []*chain.Header {
	headers := make([]*chain.Header, len(blks))
	for i := range blks {
		headers[i] = &blks[i].Header
	}
	return headers
}

// ecallSegmentSigGen runs the single segment-certification Ecall. The input
// sizing covers everything marshalled through the boundary: every block and
// its proof, the previous segment's headers, and the previous certificate.
func (ci *Issuer) ecallSegmentSigGen(prev *chain.Block, prevHeaders []*chain.Header, prevCert *Certificate, blks []*chain.Block, proofs []*statedb.UpdateProof, bd *CostBreakdown) ([]byte, error) {
	size := len(prev.Header.Marshal())
	for i := range blks {
		size += len(blks[i].Marshal()) + proofs[i].EncodedSize()
	}
	for _, h := range prevHeaders {
		size += h.EncodedSize()
	}
	if prevCert != nil {
		size += prevCert.EncodedSize()
	}
	var sig []byte
	before := ci.encl.Stats()
	err := ci.encl.Ecall(size, func(ctx *enclave.Context) error {
		var err error
		sig, err = ci.prog.EcallSegmentSigGen(ctx, prev, prevHeaders, prevCert, blks, proofs)
		return err
	})
	after := ci.encl.Stats()
	bd.InsideExec += (after.ExecTime - before.ExecTime).Seconds()
	bd.InsideOverhead += (after.OverheadTime - before.OverheadTime).Seconds()
	ci.met.ecallsBlock.Inc()
	ci.met.enclaveBlockSec.Observe((after.InsideTime() - before.InsideTime()).Seconds())
	if err != nil {
		return nil, fmt.Errorf("core: ecall_segment_sig_gen: %w", err)
	}
	return sig, nil
}

// adoptSegment appends all covered blocks and publishes the segment
// certificate as one atomic transition (the segment-wide analogue of adopt):
// concurrent readers see either the old tip with the old certificate or the
// new tip with the new one — never a partially adopted segment.
func (ci *Issuer) adoptSegment(blks []*chain.Block, headers []*chain.Header, cert *Certificate) (*SegmentCert, error) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	for _, blk := range blks {
		if _, err := ci.node.Store().Add(blk); err != nil {
			return nil, fmt.Errorf("core: advance chain: %w", err)
		}
		ci.certs[blk.Hash()] = cert
		ci.met.blocksCertified.Inc()
	}
	ci.lastCert = cert
	ci.lastCertAt = time.Now()
	return ci.recordSegmentLocked(headers, cert), nil
}

// ModelBootstrapFetches predicts BootstrapSublinear's fetch count for a
// chain of chainLen blocks certified in segBlocks-block segments, walking to
// the genesis anchor. It mirrors the client's greedy largest-hop walk
// exactly (the regression test pins model == measured), so the 100k-block
// point in BENCH_certify.json is honest arithmetic, not extrapolation.
func ModelBootstrapFetches(chainLen uint64, segBlocks int) int {
	if chainLen == 0 {
		return 0
	}
	k := uint64(segBlocks)
	if k < 1 {
		k = 1
	}
	segStart := func(h uint64) uint64 { return (h-1)/k*k + 1 }
	cur := segStart(chainLen)
	fetches := 0
	for cur > 1 {
		level := interlinkHop(cur, 0, maxInterlinkLevels)
		target := cur - (uint64(1) << uint(level))
		cur = segStart(target)
		fetches++
	}
	return fetches
}

// interlinkHop picks the greedy hop level from a segment starting at start
// toward anchor: the largest level whose target start−2^level stays at or
// above the anchor (and above genesis, which no segment covers), clamped to
// the levels the interlink actually carries.
func interlinkHop(start, anchor uint64, levels int) int {
	lo := anchor
	if lo == 0 {
		lo = 1
	}
	best := 0
	for l := 1; l < maxInterlinkLevels; l++ {
		step := uint64(1) << uint(l)
		if step > start || start-step < lo {
			break
		}
		best = l
	}
	if levels > 0 && best >= levels {
		best = levels - 1
	}
	return best
}

// SegmentFetcher retrieves the certified segment covering a height (served
// by Issuer.SegmentCovering locally or the dcert/cert-segment wire route
// remotely).
type SegmentFetcher func(height uint64) (*SegmentCert, error)

// verifySegment validates a segment certificate without adopting it: the
// enclave certificate over the segment digest, per-header consensus checks,
// internal hash/height linkage, and the level-0 interlink consistency rule.
func (c *SuperlightClient) verifySegment(seg *SegmentCert) error {
	if seg == nil || len(seg.Headers) == 0 {
		return fmt.Errorf("%w: empty segment", ErrBadSegment)
	}
	if len(seg.Headers) > maxSegmentBlocks {
		return fmt.Errorf("%w: %d headers beyond %d", ErrBadSegment, len(seg.Headers), maxSegmentBlocks)
	}
	if err := c.verifyCert(seg.Cert, SegmentDigest(seg.Headers)); err != nil {
		return err
	}
	for i, hdr := range seg.Headers {
		if hdr == nil {
			return fmt.Errorf("%w: nil header", ErrBadSegment)
		}
		if err := consensus.Verify(c.params, hdr); err != nil {
			return err
		}
		if i > 0 {
			if hdr.PrevHash != seg.Headers[i-1].Hash() || hdr.Height != seg.Headers[i-1].Height+1 {
				return fmt.Errorf("%w: linkage broken at height %d", ErrBadSegment, hdr.Height)
			}
		}
	}
	// The unsigned level-0 hint must agree with the signed PrevHash; a
	// mismatch is a tampered interlink regardless of what it points at.
	if len(seg.Interlink) > 0 && seg.Interlink[0] != seg.Headers[0].PrevHash {
		return fmt.Errorf("%w: level 0 disagrees with signed PrevHash", ErrBadInterlink)
	}
	return nil
}

// ValidateSegment is validate_chain extended to segment certificates: verify
// the certificate chain of trust over the segment digest, check every
// covered header, apply the longest-chain rule on the segment's tip, and
// adopt it.
func (c *SuperlightClient) ValidateSegment(seg *SegmentCert) error {
	if err := c.verifySegment(seg); err != nil {
		return err
	}
	return c.adoptSegment(seg)
}

// adoptSegment applies the chain rule and adopts a verified segment's tip.
func (c *SuperlightClient) adoptSegment(seg *SegmentCert) error {
	tip := seg.Tip()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.latestHdr != nil && tip.Height <= c.latestHdr.Height {
		return fmt.Errorf("%w: height %d does not extend %d", ErrChainRule, tip.Height, c.latestHdr.Height)
	}
	c.latestHdr = tip
	c.latestCert = seg.Cert
	if len(seg.Headers) > 1 {
		c.latestSeg = seg
	} else {
		c.latestSeg = nil
	}
	return nil
}

// BootstrapSublinear brings the client current from a tip segment in
// O(log n) certificate fetches: starting from the (fully verified) tip
// segment, it repeatedly takes the largest interlink hop that does not
// overshoot the trusted anchor, fetches the segment covering the hop target,
// verifies that segment's own enclave certificate, and cross-checks its
// certified header hash against the pointer — a forged pointer is refuted at
// the first hop that uses it. The walk terminates when a verified segment
// reaches the anchor height and its certified hash (or, for an anchor just
// below a segment, the signed PrevHash) equals anchorHash; only then is the
// tip adopted. It returns the number of fetches performed.
//
// anchorHeight/anchorHash are the client's trusted anchor — genesis, or any
// previously validated tip. Each hop at least halves the remaining distance,
// so fetches ≤ log2(tip−anchor)+1 regardless of chain length.
func (c *SuperlightClient) BootstrapSublinear(fetch SegmentFetcher, tip *SegmentCert, anchorHeight uint64, anchorHash chash.Hash) (int, error) {
	if err := c.verifySegment(tip); err != nil {
		return 0, err
	}
	if tip.End() < anchorHeight {
		return 0, fmt.Errorf("%w: tip height %d below anchor %d", ErrBadInterlink, tip.End(), anchorHeight)
	}
	fetches := 0
	cur := tip
	// 2 fetches per possible interlink level is far beyond any honest walk;
	// an adversarial fetcher cannot loop the client past this.
	for steps := 0; ; steps++ {
		if steps > 2*maxInterlinkLevels {
			return fetches, fmt.Errorf("%w: walk did not converge on anchor %d", ErrBadInterlink, anchorHeight)
		}
		start := cur.Start()
		if start <= anchorHeight {
			// The current segment covers the anchor height: its certified
			// header there must BE the anchor.
			hdr := cur.HeaderAt(anchorHeight)
			if hdr == nil || hdr.Hash() != anchorHash {
				return fetches, fmt.Errorf("%w: anchor at height %d refuted", ErrBadInterlink, anchorHeight)
			}
			break
		}
		if start == anchorHeight+1 {
			// The anchor immediately precedes this segment: the signed
			// PrevHash settles it (this is also the genesis case).
			if cur.Headers[0].PrevHash != anchorHash {
				return fetches, fmt.Errorf("%w: anchor at height %d refuted", ErrBadInterlink, anchorHeight)
			}
			break
		}
		level := interlinkHop(start, anchorHeight, len(cur.Interlink))
		target := start - (uint64(1) << uint(level))
		var expect chash.Hash
		switch {
		case level == 0:
			expect = cur.Headers[0].PrevHash // signed, beats the hint
		case level < len(cur.Interlink):
			expect = cur.Interlink[level]
		default:
			return fetches, fmt.Errorf("%w: segment at %d is missing interlink level %d", ErrBadInterlink, start, level)
		}
		seg, err := fetch(target)
		fetches++
		if err != nil {
			return fetches, err
		}
		if err := c.verifySegment(seg); err != nil {
			return fetches, err
		}
		hdr := seg.HeaderAt(target)
		if hdr == nil {
			return fetches, fmt.Errorf("%w: fetched segment [%d,%d] does not cover %d", ErrBadInterlink, seg.Start(), seg.End(), target)
		}
		if hdr.Hash() != expect {
			return fetches, fmt.Errorf("%w: pointer to height %d refuted by certified segment", ErrBadInterlink, target)
		}
		cur = seg
	}
	return fetches, c.adoptSegment(tip)
}
