package chain

import (
	"errors"
	"testing"

	"dcert/internal/chash"
)

func genesisBlock() *Block {
	return &Block{Header: Header{Height: 0, Time: 1}}
}

// childOf builds a minimal valid child block.
func childOf(parent *Block, tweak uint64) *Block {
	return &Block{Header: Header{
		Height:   parent.Header.Height + 1,
		PrevHash: parent.Hash(),
		Time:     parent.Header.Time + 1 + tweak,
	}}
}

func TestNewStoreRejectsBadGenesis(t *testing.T) {
	if _, err := NewStore(&Block{Header: Header{Height: 3}}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("want ErrBadBlock, got %v", err)
	}
}

func TestStoreLinearChain(t *testing.T) {
	g := genesisBlock()
	s, err := NewStore(g)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	cur := g
	for i := 0; i < 10; i++ {
		b := childOf(cur, 0)
		best, err := s.Add(b)
		if err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		if !best {
			t.Fatalf("block %d should become best", i)
		}
		cur = b
	}
	if s.BestHeight() != 10 {
		t.Fatalf("BestHeight = %d", s.BestHeight())
	}
	if s.Best().Hash() != cur.Hash() {
		t.Fatal("Best() is not the tip")
	}
	if s.Len() != 11 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreRejectsUnknownParent(t *testing.T) {
	s, err := NewStore(genesisBlock())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	orphan := &Block{Header: Header{Height: 1, PrevHash: chash.Leaf([]byte("nowhere"))}}
	if _, err := s.Add(orphan); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("want ErrUnknownParent, got %v", err)
	}
}

func TestStoreRejectsWrongHeight(t *testing.T) {
	g := genesisBlock()
	s, err := NewStore(g)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	bad := &Block{Header: Header{Height: 5, PrevHash: g.Hash()}}
	if _, err := s.Add(bad); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("want ErrBadBlock, got %v", err)
	}
}

func TestStoreDuplicateAddIsNoop(t *testing.T) {
	g := genesisBlock()
	s, err := NewStore(g)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	b := childOf(g, 0)
	if _, err := s.Add(b); err != nil {
		t.Fatalf("Add: %v", err)
	}
	best, err := s.Add(b)
	if err != nil {
		t.Fatalf("duplicate Add: %v", err)
	}
	if best {
		t.Fatal("duplicate add must not change best")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLongestChainRule(t *testing.T) {
	g := genesisBlock()
	s, err := NewStore(g)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	// Main chain: g -> a1 -> a2.
	a1 := childOf(g, 0)
	a2 := childOf(a1, 0)
	// Fork: g -> b1 (same height as a1, arrives later).
	b1 := childOf(g, 100)

	if _, err := s.Add(a1); err != nil {
		t.Fatalf("Add(a1): %v", err)
	}
	best, err := s.Add(b1)
	if err != nil {
		t.Fatalf("Add(b1): %v", err)
	}
	if best {
		t.Fatal("equal-height fork must not displace the first-seen tip")
	}
	if s.Best().Hash() != a1.Hash() {
		t.Fatal("tie must keep first-arrived block")
	}
	// Extending the fork past the main chain flips the best tip.
	b2 := childOf(b1, 0)
	b3 := childOf(b2, 0)
	if _, err := s.Add(a2); err != nil {
		t.Fatalf("Add(a2): %v", err)
	}
	if _, err := s.Add(b2); err != nil {
		t.Fatalf("Add(b2): %v", err)
	}
	best, err = s.Add(b3)
	if err != nil {
		t.Fatalf("Add(b3): %v", err)
	}
	if !best {
		t.Fatal("longer fork must become best")
	}
	if s.Best().Hash() != b3.Hash() {
		t.Fatal("best tip must be the longest chain")
	}
	// AtHeight walks the canonical (fork) chain.
	at1, err := s.AtHeight(1)
	if err != nil {
		t.Fatalf("AtHeight: %v", err)
	}
	if at1.Hash() != b1.Hash() {
		t.Fatal("AtHeight must follow the canonical chain")
	}
}

func TestAtHeightBeyondTip(t *testing.T) {
	s, err := NewStore(genesisBlock())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if _, err := s.AtHeight(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestGetUnknown(t *testing.T) {
	s, err := NewStore(genesisBlock())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if _, err := s.Get(chash.Leaf([]byte("missing"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestHeaders(t *testing.T) {
	g := genesisBlock()
	s, err := NewStore(g)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	cur := g
	for i := 0; i < 5; i++ {
		b := childOf(cur, 0)
		if _, err := s.Add(b); err != nil {
			t.Fatalf("Add: %v", err)
		}
		cur = b
	}
	hdrs := s.Headers()
	if len(hdrs) != 6 {
		t.Fatalf("Headers len = %d", len(hdrs))
	}
	for i, h := range hdrs {
		if h.Height != uint64(i) {
			t.Fatalf("header %d has height %d", i, h.Height)
		}
		if i > 0 && h.PrevHash != hdrs[i-1].Hash() {
			t.Fatalf("header %d not linked", i)
		}
	}
}

func TestPruneKeepsRecentTailAndGenesis(t *testing.T) {
	g := genesisBlock()
	s, err := NewStore(g)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	cur := g
	for i := 0; i < 20; i++ {
		b := childOf(cur, 0)
		if _, err := s.Add(b); err != nil {
			t.Fatalf("Add: %v", err)
		}
		cur = b
	}
	dropped := s.Prune(5)
	if dropped != 14 { // heights 1..14 dropped; 15..20 + genesis kept
		t.Fatalf("dropped %d blocks, want 14", dropped)
	}
	// Tip and genesis survive.
	if s.Best().Hash() != cur.Hash() {
		t.Fatal("tip lost after prune")
	}
	if _, err := s.Get(s.Genesis()); err != nil {
		t.Fatal("genesis lost after prune")
	}
	// Recent tail is intact.
	if _, err := s.AtHeight(16); err != nil {
		t.Fatalf("AtHeight(16): %v", err)
	}
	// Deep history is gone; walks past the horizon fail cleanly.
	if _, err := s.AtHeight(3); err == nil {
		t.Fatal("pruned height should not resolve")
	}
	if s.Headers() != nil {
		t.Fatal("Headers over a pruned store must return nil")
	}
	// The chain keeps extending after pruning.
	b := childOf(cur, 0)
	if _, err := s.Add(b); err != nil {
		t.Fatalf("Add after prune: %v", err)
	}
}

func TestPruneNoopOnShortChain(t *testing.T) {
	g := genesisBlock()
	s, err := NewStore(g)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	b := childOf(g, 0)
	if _, err := s.Add(b); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if dropped := s.Prune(10); dropped != 0 {
		t.Fatalf("dropped %d on short chain", dropped)
	}
}
