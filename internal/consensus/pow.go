// Package consensus implements the simulated proof-of-work protocol used by
// the substrate blockchain: a header's work hash must have a configurable
// number of leading zero bits. The enclave's verify_cons check (Alg. 2
// line 15) and the miner's sealing loop both live here.
package consensus

import (
	"errors"
	"fmt"
	"math/bits"

	"dcert/internal/chain"
	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrBadProof is returned when a header's work hash misses the target.
	ErrBadProof = errors.New("consensus: proof of work below difficulty target")
	// ErrExhausted is returned when sealing gives up.
	ErrExhausted = errors.New("consensus: nonce space exhausted")
)

// Params configures the protocol.
type Params struct {
	// Difficulty is the required number of leading zero bits in the work
	// hash. Zero disables the work requirement (useful in unit tests).
	Difficulty uint32
}

// DefaultParams returns a low-difficulty setting suitable for simulation:
// blocks seal in microseconds while still exercising the verification path.
func DefaultParams() Params {
	return Params{Difficulty: 8}
}

// workHash computes the PoW digest of a header (which includes the nonce).
func workHash(h *chain.Header) chash.Hash {
	hh := h.Hash()
	return chash.Sum(chash.DomainConsensus, hh[:])
}

// leadingZeroBits counts the leading zero bits of a digest.
func leadingZeroBits(h chash.Hash) uint32 {
	var n uint32
	for _, b := range h {
		if b == 0 {
			n += 8
			continue
		}
		n += uint32(bits.LeadingZeros8(b))
		break
	}
	return n
}

// Verify checks π_cons: the header's difficulty matches the protocol
// parameters and the work hash meets the target.
func Verify(p Params, h *chain.Header) error {
	if h.Consensus.Difficulty != p.Difficulty {
		return fmt.Errorf("%w: difficulty %d, want %d", ErrBadProof, h.Consensus.Difficulty, p.Difficulty)
	}
	if p.Difficulty == 0 {
		return nil
	}
	if got := leadingZeroBits(workHash(h)); got < p.Difficulty {
		return fmt.Errorf("%w: %d leading zero bits, need %d", ErrBadProof, got, p.Difficulty)
	}
	return nil
}

// Seal searches for a nonce that satisfies the difficulty target, mutating
// the header's consensus proof in place.
func Seal(p Params, h *chain.Header) error {
	h.Consensus.Difficulty = p.Difficulty
	if p.Difficulty == 0 {
		h.Consensus.Nonce = 0
		return nil
	}
	for nonce := uint64(0); nonce < 1<<40; nonce++ {
		h.Consensus.Nonce = nonce
		if leadingZeroBits(workHash(h)) >= p.Difficulty {
			return nil
		}
	}
	return ErrExhausted
}
