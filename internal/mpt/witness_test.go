package mpt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dcert/internal/chash"
)

// buildTestTrie returns a populated trie and its key/value map.
func buildTestTrie(t *testing.T, n int) (*Trie, map[string]string) {
	t.Helper()
	tr := New()
	kv := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("acct-%04d", i)
		v := fmt.Sprintf("state-%d", i*3)
		kv[k] = v
		mustPut(t, tr, k, v)
	}
	return tr, kv
}

func TestProofMembership(t *testing.T) {
	tr, kv := buildTestTrie(t, 200)
	root := mustHash(t, tr)

	for _, k := range []string{"acct-0000", "acct-0077", "acct-0199"} {
		proof, err := tr.Prove([]byte(k))
		if err != nil {
			t.Fatalf("Prove(%q): %v", k, err)
		}
		got, err := VerifyProof(root, []byte(k), proof)
		if err != nil {
			t.Fatalf("VerifyProof(%q): %v", k, err)
		}
		if !bytes.Equal(got, []byte(kv[k])) {
			t.Fatalf("VerifyProof(%q) = %q, want %q", k, got, kv[k])
		}
	}
}

func TestProofAbsence(t *testing.T) {
	tr, _ := buildTestTrie(t, 50)
	root := mustHash(t, tr)

	absent := "acct-9999"
	proof, err := tr.Prove([]byte(absent))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	got, err := VerifyProof(root, []byte(absent), proof)
	if err != nil {
		t.Fatalf("VerifyProof: %v", err)
	}
	if got != nil {
		t.Fatalf("absence proof returned %q", got)
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	tr, _ := buildTestTrie(t, 50)
	mustHash(t, tr)
	proof, err := tr.Prove([]byte("acct-0001"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	bogus := chash.Leaf([]byte("bogus root"))
	if _, err := VerifyProof(bogus, []byte("acct-0001"), proof); err == nil {
		t.Fatal("want error for wrong root")
	}
}

func TestProofCannotClaimDifferentValue(t *testing.T) {
	// A valid proof binds the key to exactly one value: the verifier reads
	// the value out of the witness, so there is nothing to tamper without
	// breaking content addressing.
	tr, kv := buildTestTrie(t, 50)
	root := mustHash(t, tr)
	proof, err := tr.Prove([]byte("acct-0001"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	got, err := VerifyProof(root, []byte("acct-0001"), proof)
	if err != nil {
		t.Fatalf("VerifyProof: %v", err)
	}
	if !bytes.Equal(got, []byte(kv["acct-0001"])) {
		t.Fatal("proof must return the committed value")
	}
}

func TestProofMissingNodeDetected(t *testing.T) {
	tr, _ := buildTestTrie(t, 200)
	root := mustHash(t, tr)
	// A proof for one key does not authenticate an unrelated key.
	proof, err := tr.Prove([]byte("acct-0002"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if _, err := VerifyProof(root, []byte("acct-0150"), proof); !errors.Is(err, ErrMissingNode) {
		t.Fatalf("want ErrMissingNode, got %v", err)
	}
}

func TestPartialTrieStatelessUpdate(t *testing.T) {
	// The core enclave flow: extract a witness for read+write keys, rebuild
	// a partial trie, apply the writes, and check the new root matches the
	// real trie's.
	tr, _ := buildTestTrie(t, 300)
	root := mustHash(t, tr)

	readKeys := [][]byte{[]byte("acct-0010"), []byte("acct-0200")}
	writeKeys := [][]byte{[]byte("acct-0010"), []byte("acct-0299"), []byte("acct-9000")} // update, update, insert
	all := append(append([][]byte{}, readKeys...), writeKeys...)

	witness, err := tr.WitnessForKeys(all)
	if err != nil {
		t.Fatalf("WitnessForKeys: %v", err)
	}

	pt := NewPartial(root, witness)
	// Reads replay.
	v, err := pt.Get([]byte("acct-0010"))
	if err != nil || v == nil {
		t.Fatalf("partial Get: %v %q", err, v)
	}
	// Writes replay.
	for _, wk := range writeKeys {
		if err := pt.Put(wk, []byte("new-"+string(wk))); err != nil {
			t.Fatalf("partial Put(%q): %v", wk, err)
		}
	}
	gotRoot, err := pt.Hash()
	if err != nil {
		t.Fatalf("partial Hash: %v", err)
	}

	for _, wk := range writeKeys {
		mustPut(t, tr, string(wk), "new-"+string(wk))
	}
	if gotRoot != mustHash(t, tr) {
		t.Fatal("stateless update root disagrees with the real trie")
	}
}

func TestPartialTrieRejectsUnwitnessedAccess(t *testing.T) {
	tr, _ := buildTestTrie(t, 300)
	root := mustHash(t, tr)
	witness, err := tr.WitnessForKeys([][]byte{[]byte("acct-0001")})
	if err != nil {
		t.Fatalf("WitnessForKeys: %v", err)
	}
	pt := NewPartial(root, witness)
	if _, err := pt.Get([]byte("acct-0222")); !errors.Is(err, ErrMissingNode) {
		t.Fatalf("want ErrMissingNode, got %v", err)
	}
	if err := pt.Put([]byte("acct-0222"), []byte("x")); !errors.Is(err, ErrMissingNode) {
		t.Fatalf("want ErrMissingNode on Put, got %v", err)
	}
}

func TestTamperedWitnessNodeFailsResolution(t *testing.T) {
	tr, _ := buildTestTrie(t, 20)
	root := mustHash(t, tr)
	witness, err := tr.Prove([]byte("acct-0001"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	// Flip a byte in one stored node: resolution must fail (bytes no longer
	// hash to the reference).
	for h, raw := range witness.nodes {
		raw[len(raw)-1] ^= 0xff
		witness.nodes[h] = raw
		break
	}
	if _, err := VerifyProof(root, []byte("acct-0001"), witness); err == nil {
		t.Fatal("tampered witness must not verify")
	}
}

func TestWitnessMarshalRoundTrip(t *testing.T) {
	tr, kv := buildTestTrie(t, 100)
	root := mustHash(t, tr)
	witness, err := tr.WitnessForKeys([][]byte{[]byte("acct-0042"), []byte("acct-0087")})
	if err != nil {
		t.Fatalf("WitnessForKeys: %v", err)
	}

	parsed, err := UnmarshalWitness(witness.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalWitness: %v", err)
	}
	if parsed.Len() != witness.Len() {
		t.Fatalf("Len = %d, want %d", parsed.Len(), witness.Len())
	}
	got, err := VerifyProof(root, []byte("acct-0042"), parsed)
	if err != nil {
		t.Fatalf("VerifyProof after round trip: %v", err)
	}
	if !bytes.Equal(got, []byte(kv["acct-0042"])) {
		t.Fatal("round-tripped witness returned wrong value")
	}
}

func TestWitnessMarshalDeterministic(t *testing.T) {
	tr, _ := buildTestTrie(t, 50)
	mustHash(t, tr)
	w, err := tr.WitnessForKeys([][]byte{[]byte("acct-0001"), []byte("acct-0030")})
	if err != nil {
		t.Fatalf("WitnessForKeys: %v", err)
	}
	if !bytes.Equal(w.Marshal(), w.Marshal()) {
		t.Fatal("Marshal must be deterministic")
	}
}

func TestUnmarshalWitnessRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalWitness([]byte{0xff}); err == nil {
		t.Fatal("want error for garbage witness")
	}
}

func TestWitnessMerge(t *testing.T) {
	tr, _ := buildTestTrie(t, 100)
	root := mustHash(t, tr)
	w1, err := tr.Prove([]byte("acct-0001"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	w2, err := tr.Prove([]byte("acct-0090"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	w1.Merge(w2)
	if _, err := VerifyProof(root, []byte("acct-0090"), w1); err != nil {
		t.Fatalf("merged witness should cover both keys: %v", err)
	}
}

func TestWitnessEncodedSize(t *testing.T) {
	tr, _ := buildTestTrie(t, 100)
	mustHash(t, tr)
	w, err := tr.Prove([]byte("acct-0001"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if w.EncodedSize() != len(w.Marshal()) {
		t.Fatalf("EncodedSize = %d, Marshal len = %d", w.EncodedSize(), len(w.Marshal()))
	}
}

func TestStatelessUpdateQuick(t *testing.T) {
	// Property: for random tries and random non-deleting write batches, the
	// stateless update always reproduces the real trie's new root.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		n := 10 + rng.Intn(100)
		for i := 0; i < n; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				return false
			}
		}
		root, err := tr.Hash()
		if err != nil {
			return false
		}
		nw := 1 + rng.Intn(10)
		writes := make(map[string]string, nw)
		keys := make([][]byte, 0, nw)
		for i := 0; i < nw; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(n*2)) // mix of updates and inserts
			writes[k] = fmt.Sprintf("nv%d", rng.Int())
			keys = append(keys, []byte(k))
		}
		w, err := tr.WitnessForKeys(keys)
		if err != nil {
			return false
		}
		pt := NewPartial(root, w)
		for k, v := range writes {
			if err := pt.Put([]byte(k), []byte(v)); err != nil {
				return false
			}
		}
		ptRoot, err := pt.Hash()
		if err != nil {
			return false
		}
		for k, v := range writes {
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				return false
			}
		}
		realRoot, err := tr.Hash()
		if err != nil {
			return false
		}
		return ptRoot == realRoot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
