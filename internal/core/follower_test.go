package core

import (
	"testing"
	"time"

	"dcert/internal/enclave"
	"dcert/internal/network"
	"dcert/internal/workload"
)

func TestFollowerConsumesBundleStream(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	net := network.New()
	defer net.Close()
	f := FollowCerts(e.client(), net, FollowerConfig{Name: "c1", StallDeadline: time.Second})
	defer f.Stop()

	const n = 4
	for i := 0; i < n; i++ {
		blk := e.mine(t, 3)
		if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
		if err := net.Publish(network.TopicCerts, "ci", e.issuer.LatestBundle()); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	if err := f.WaitForHeight(n, 5*time.Second); err != nil {
		t.Fatalf("WaitForHeight: %v", err)
	}
	if st := f.Stats(); st.Accepted != n {
		t.Fatalf("stats = %+v, want %d accepted", st, n)
	}
}

// TestFollowerCatchesUpViaRerequest starves the follower of the live stream
// entirely: every bundle publish is lost. The stall deadline must trigger an
// explicit TopicCertRequests catch-up, and the responder's answer must bring
// the client to the tip in one validation.
func TestFollowerCatchesUpViaRerequest(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	net := network.New()
	defer net.Close()
	responder := ServeCertRequests(e.issuer, net, "ci")
	defer responder.Stop()

	// Certify 3 blocks without publishing anything — the live stream is gone.
	for i := 0; i < 3; i++ {
		blk := e.mine(t, 3)
		if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
	}

	f := FollowCerts(e.client(), net, FollowerConfig{Name: "c1", StallDeadline: 20 * time.Millisecond})
	defer f.Stop()
	if err := f.WaitForHeight(3, 5*time.Second); err != nil {
		t.Fatalf("catch-up via re-request failed: %v", err)
	}
	st := f.Stats()
	if st.Rerequests == 0 {
		t.Fatalf("stall never triggered a re-request: %+v", st)
	}
}

func TestResponderStaysSilentWhenNotAhead(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	net := network.New()
	defer net.Close()
	responder := ServeCertRequests(e.issuer, net, "ci")
	defer responder.Stop()

	certs := net.Subscribe(network.TopicCerts, 8)
	defer certs.Cancel()

	// Before any certification there is nothing to serve.
	if err := net.Publish(network.TopicCertRequests, "c1", &CertRequest{From: "c1"}); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	select {
	case m := <-certs.C:
		t.Fatalf("responder answered with nothing certified: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}

	// A requester already at the tip gets no redundant broadcast.
	blk := e.mine(t, 3)
	if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
		t.Fatalf("ProcessBlock: %v", err)
	}
	if err := net.Publish(network.TopicCertRequests, "c1", &CertRequest{From: "c1", Height: 1}); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	select {
	case m := <-certs.C:
		t.Fatalf("responder answered a caught-up client: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
}
