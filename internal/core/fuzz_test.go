package core

import (
	"testing"

	"dcert/internal/chain"
	"dcert/internal/enclave"
	"dcert/internal/statedb"
	"dcert/internal/workload"
)

func FuzzUnmarshalCertificate(f *testing.F) {
	// Seed with a genuine certificate.
	e := newEnv(f, workload.DoNothing, enclave.CostModel{})
	blk := e.mine(f, 2)
	cert, _, err := e.issuer.ProcessBlock(blk)
	if err != nil {
		f.Fatalf("ProcessBlock: %v", err)
	}
	f.Add(cert.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4})

	authorityPK := e.authority.PublicKey()
	measurement := e.issuer.Measurement()
	digest := BlockDigest(&blk.Header)

	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := UnmarshalCertificate(raw)
		if err != nil {
			return
		}
		// Decodable bytes must re-encode canonically.
		if string(parsed.Marshal()) != string(raw) {
			t.Fatal("non-canonical certificate decode")
		}
		// Verification must never panic; it may only succeed for the
		// genuine certificate bytes.
		if err := parsed.Verify(authorityPK, measurement, digest); err == nil {
			if string(raw) != string(cert.Marshal()) {
				t.Fatal("a mutated certificate verified")
			}
		}
	})
}

// FuzzUnmarshalSegmentCert attacks the segment-certificate wire codec with
// adversarial bytes. Properties: decodable bytes re-encode canonically; a
// parsed segment never panics the client's verifier; verification only
// succeeds when the signed content (headers + certificate) is the genuine
// one — the unsigned interlink hints may mutate freely, they are refuted at
// bootstrap time, not parse time; and claimed counts never drive
// allocations, so absurd counts fail fast on truncated input.
func FuzzUnmarshalSegmentCert(f *testing.F) {
	r := newSegRig(f, "segment-fuzz-v1")
	blks := r.mineEmpty(f, 8)
	if _, _, err := r.ci.ProcessSegment(blks[:4]); err != nil {
		f.Fatalf("ProcessSegment: %v", err)
	}
	seg, _, err := r.ci.ProcessSegment(blks[4:])
	if err != nil {
		f.Fatalf("ProcessSegment: %v", err)
	}
	genuine := seg.Marshal()
	f.Add(genuine)
	for _, i := range []int{4, len(genuine) / 2, len(genuine) - 2} {
		mut := append([]byte(nil), genuine...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte{})
	// A claimed 2^32−1 headers over 4 bytes of payload: must fail before any
	// count-proportional allocation.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Add([]byte{0, 0, 0, 0})

	authorityPK := r.auth.PublicKey()
	measurement := r.ci.Measurement()
	genuineCert := seg.Cert.Marshal()
	genuineTip := seg.Tip().Hash()

	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := UnmarshalSegmentCert(raw)
		if err != nil {
			return
		}
		if string(parsed.Marshal()) != string(raw) {
			t.Fatal("non-canonical segment decode")
		}
		cl := NewSuperlightClient(authorityPK, measurement, r.params)
		if err := cl.ValidateSegment(parsed); err == nil {
			if string(parsed.Cert.Marshal()) != string(genuineCert) || parsed.Tip().Hash() != genuineTip {
				t.Fatal("a segment with mutated signed content validated")
			}
		}
	})
}

// FuzzPipelineProof attacks the pipeline's prepare/commit trust boundary:
// the update proof is computed by the untrusted executor stage and handed to
// the committer, which feeds it into the enclave. A compromised host could
// hand over arbitrary bytes there. The property: no matter what proof the
// enclave is fed, a certificate is only ever signed for the block's true
// digest — and a rejected proof must leave the replica rolled back to its
// certified tip with no speculative residue.
func FuzzPipelineProof(f *testing.F) {
	// One mined block, reused across every fuzz iteration; each iteration
	// certifies it on a fresh issuer so state is always pristine genesis.
	e := newEnv(f, workload.KVStore, enclave.CostModel{})
	blk := e.mine(f, 6)

	// Seed with the genuine proof (the one honest execution yields), a few
	// structured mutations of it, and garbage.
	res, err := e.issuer.Node().State().ExecuteBlock(e.issuer.Node().Registry(), blk.Txs)
	if err != nil {
		f.Fatalf("ExecuteBlock: %v", err)
	}
	proof, err := e.issuer.Node().State().UpdateProofFor(res)
	if err != nil {
		f.Fatalf("UpdateProofFor: %v", err)
	}
	genuine := statedb.MarshalUpdateProof(proof)
	f.Add(genuine)
	for _, i := range []int{1, len(genuine) / 2, len(genuine) - 2} {
		mut := append([]byte(nil), genuine...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, raw []byte) {
		fuzzed, err := statedb.UnmarshalUpdateProof(raw)
		if err != nil {
			return
		}
		fresh := newEnv(t, workload.KVStore, enclave.CostModel{})
		ci := fresh.issuer
		genesisRoot, err := ci.Node().State().Root()
		if err != nil {
			t.Fatalf("Root: %v", err)
		}
		results, _ := ci.ProcessBlocksPipelined([]*chain.Block{blk}, PipelineConfig{
			Workers:   1,
			proofHook: func(*statedb.UpdateProof) *statedb.UpdateProof { return fuzzed },
		})
		if len(results) != 1 {
			t.Fatalf("%d results", len(results))
		}
		root, err := ci.Node().State().Root()
		if err != nil {
			t.Fatalf("Root after pipeline: %v", err)
		}
		if results[0].Err == nil {
			// The enclave accepted the proof: the certificate must be for the
			// block's true digest (never a wrong one), it must verify through
			// the full attestation chain, and the replica must land exactly
			// on the block's claimed post-state.
			cert := results[0].Cert
			if cert == nil {
				t.Fatal("nil cert without error")
			}
			if cert.Digest != BlockDigest(&blk.Header) {
				t.Fatalf("certificate signed for digest %s, want %s", cert.Digest, BlockDigest(&blk.Header))
			}
			if err := cert.Verify(fresh.authority.PublicKey(), ci.Measurement(), BlockDigest(&blk.Header)); err != nil {
				t.Fatalf("issued certificate does not verify: %v", err)
			}
			if root != blk.Header.StateRoot {
				t.Fatalf("certified but state root %s != header %s", root, blk.Header.StateRoot)
			}
			if ci.Node().Tip().Header.Height != 1 {
				t.Fatal("certified but tip did not advance")
			}
		} else {
			// Rejected: full rollback — genesis state, genesis tip.
			if root != genesisRoot {
				t.Fatalf("rejected proof left state root %s, want genesis %s", root, genesisRoot)
			}
			if ci.Node().Tip().Header.Height != 0 {
				t.Fatal("rejected proof advanced the tip")
			}
		}
	})
}
