package workload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"dcert/internal/chain"
	"dcert/internal/vm"
)

// mapState is a trivial vm.State.
type mapState map[string][]byte

func (m mapState) Read(key []byte) ([]byte, error) { return m[string(key)], nil }
func (m mapState) Write(key, value []byte) error {
	if len(value) == 0 {
		return errors.New("empty value")
	}
	m[string(key)] = value
	return nil
}

func arg8(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func tx(contract, method string, args ...[]byte) *chain.Transaction {
	return &chain.Transaction{Contract: contract, Method: method, Args: args}
}

func mustContract(t *testing.T, k Kind) vm.Contract {
	t.Helper()
	c, err := k.Contract()
	if err != nil {
		t.Fatalf("Contract(%v): %v", k, err)
	}
	return c
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{DoNothing: "DN", CPUHeavy: "CPU", IOHeavy: "IO", KVStore: "KV", SmallBank: "SB"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%v.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if len(AllKinds()) != 5 {
		t.Fatal("AllKinds must list all five workloads")
	}
}

func TestDoNothing(t *testing.T) {
	c := mustContract(t, DoNothing)
	st := mapState{}
	if err := c.Execute(st, tx("DN-0000", "noop")); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(st) != 0 {
		t.Fatal("DoNothing must not write state")
	}
	if err := c.Execute(st, tx("DN-0000", "other")); !errors.Is(err, vm.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

func TestCPUHeavy(t *testing.T) {
	c := mustContract(t, CPUHeavy)
	st := mapState{}
	if err := c.Execute(st, tx("CPU-0000", "sort", arg8(42), arg8(128))); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(st) != 1 {
		t.Fatal("CPUHeavy must record a result digest")
	}
	// Deterministic across executions.
	st2 := mapState{}
	if err := c.Execute(st2, tx("CPU-0000", "sort", arg8(42), arg8(128))); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	for k, v := range st {
		if !bytes.Equal(st2[k], v) {
			t.Fatal("CPUHeavy must be deterministic")
		}
	}
	if err := c.Execute(st, tx("CPU-0000", "sort", arg8(1), arg8(0))); !errors.Is(err, vm.ErrBadArgs) {
		t.Fatalf("want ErrBadArgs for size 0, got %v", err)
	}
	if err := c.Execute(st, tx("CPU-0000", "sort")); !errors.Is(err, vm.ErrBadArgs) {
		t.Fatalf("want ErrBadArgs for missing args, got %v", err)
	}
}

func TestIOHeavy(t *testing.T) {
	c := mustContract(t, IOHeavy)
	st := mapState{}
	if err := c.Execute(st, tx("IO-0000", "write", arg8(100), arg8(8), []byte("blob"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	if len(st) != 8 {
		t.Fatalf("write created %d keys, want 8", len(st))
	}
	scan := tx("IO-0000", "scan", arg8(100), arg8(8))
	if err := c.Execute(st, scan); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if _, ok := st["ct/IO-0000/scansum/"+scan.From.Hex()]; !ok {
		t.Fatal("scan must record a checksum")
	}
	if err := c.Execute(st, tx("IO-0000", "write", arg8(0), arg8(1<<20), nil)); !errors.Is(err, vm.ErrBadArgs) {
		t.Fatalf("want ErrBadArgs for huge count, got %v", err)
	}
}

func TestKVStore(t *testing.T) {
	c := mustContract(t, KVStore)
	st := mapState{}
	if err := c.Execute(st, tx("KV-0000", "set", []byte("k"), []byte("v"))); err != nil {
		t.Fatalf("set: %v", err)
	}
	if !bytes.Equal(st["ct/KV-0000/kv/k"], []byte("v")) {
		t.Fatal("set did not store the value")
	}
	if err := c.Execute(st, tx("KV-0000", "get", []byte("k"))); err != nil {
		t.Fatalf("get: %v", err)
	}
	if err := c.Execute(st, tx("KV-0000", "set", []byte("k"))); !errors.Is(err, vm.ErrBadArgs) {
		t.Fatalf("want ErrBadArgs, got %v", err)
	}
}

func TestSmallBankLifecycle(t *testing.T) {
	c := mustContract(t, SmallBank)
	st := mapState{}
	name := "SB-0000"
	steps := []struct {
		method string
		args   [][]byte
	}{
		{"deposit_check", [][]byte{[]byte("a"), arg8(100)}},
		{"update_saving", [][]byte{[]byte("a"), arg8(50)}},
		{"deposit_check", [][]byte{[]byte("b"), arg8(10)}},
		{"send_payment", [][]byte{[]byte("a"), []byte("b"), arg8(40)}},
		{"write_check", [][]byte{[]byte("b"), arg8(25)}},
		{"get_balance", [][]byte{[]byte("a")}},
	}
	for i, s := range steps {
		if err := c.Execute(st, tx(name, s.method, s.args...)); err != nil {
			t.Fatalf("step %d (%s): %v", i, s.method, err)
		}
	}
	chkA := binary.BigEndian.Uint64(st["ct/SB-0000/checking/a"])
	savA := binary.BigEndian.Uint64(st["ct/SB-0000/savings/a"])
	chkB := binary.BigEndian.Uint64(st["ct/SB-0000/checking/b"])
	if chkA != 60 || savA != 50 || chkB != 25 {
		t.Fatalf("balances a.chk=%d a.sav=%d b.chk=%d, want 60/50/25", chkA, savA, chkB)
	}

	// Amalgamate moves everything to b's checking.
	if err := c.Execute(st, tx(name, "amalgamate", []byte("a"), []byte("b"))); err != nil {
		t.Fatalf("amalgamate: %v", err)
	}
	if got := binary.BigEndian.Uint64(st["ct/SB-0000/checking/b"]); got != 135 {
		t.Fatalf("b checking after amalgamate = %d, want 135", got)
	}
	if got := binary.BigEndian.Uint64(st["ct/SB-0000/checking/a"]); got != 0 {
		t.Fatalf("a checking after amalgamate = %d, want 0", got)
	}
}

func TestSmallBankOverdraftReverts(t *testing.T) {
	c := mustContract(t, SmallBank)
	st := mapState{}
	if err := c.Execute(st, tx("SB-0000", "write_check", []byte("empty"), arg8(5))); !errors.Is(err, vm.ErrRevert) {
		t.Fatalf("want ErrRevert, got %v", err)
	}
	if err := c.Execute(st, tx("SB-0000", "send_payment", []byte("x"), []byte("y"), arg8(5))); !errors.Is(err, vm.ErrRevert) {
		t.Fatalf("want ErrRevert, got %v", err)
	}
}

func TestGeneratorProducesValidSignedTxs(t *testing.T) {
	accounts, err := NewAccounts(4)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	for _, kind := range AllKinds() {
		gen, err := NewGenerator(Config{Kind: kind, Contracts: 3, Seed: 7, KeySpace: 10, CPUSortSize: 16, IOOpsPerTx: 2}, accounts)
		if err != nil {
			t.Fatalf("NewGenerator(%v): %v", kind, err)
		}
		txs, err := gen.Block(20)
		if err != nil {
			t.Fatalf("Block(%v): %v", kind, err)
		}
		if len(txs) != 20 {
			t.Fatalf("Block returned %d txs", len(txs))
		}
		for i, txn := range txs {
			if err := txn.Verify(); err != nil {
				t.Fatalf("%v tx %d: %v", kind, i, err)
			}
		}
	}
}

func TestGeneratorDeterministicStream(t *testing.T) {
	accounts, err := NewAccounts(2)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	mk := func() []string {
		gen, err := NewGenerator(Config{Kind: KVStore, Contracts: 2, Seed: 9, KeySpace: 5}, accounts)
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		txs, err := gen.Block(10)
		if err != nil {
			t.Fatalf("Block: %v", err)
		}
		var out []string
		for _, txn := range txs {
			out = append(out, txn.Contract+"/"+txn.Method)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverges at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestGeneratorRejectsBadConfig(t *testing.T) {
	accounts, err := NewAccounts(1)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	if _, err := NewGenerator(Config{Kind: Kind(99)}, accounts); err == nil {
		t.Fatal("want error for unknown kind")
	}
	if _, err := NewGenerator(Config{Kind: KVStore}, nil); err == nil {
		t.Fatal("want error for no accounts")
	}
}

func TestRegisterAll(t *testing.T) {
	reg := vm.NewRegistry()
	if err := RegisterAll(reg, 3); err != nil {
		t.Fatalf("RegisterAll: %v", err)
	}
	if reg.Len() != 15 {
		t.Fatalf("Len = %d, want 15", reg.Len())
	}
	if _, err := reg.Lookup(ContractName(SmallBank, 2)); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
}

func TestNewAccountsDistinct(t *testing.T) {
	accounts, err := NewAccounts(10)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	seen := make(map[chain.Address]bool)
	for _, a := range accounts {
		if seen[a.Addr] {
			t.Fatal("duplicate account address")
		}
		seen[a.Addr] = true
		if a.Key == nil {
			t.Fatal("account missing key")
		}
	}
}
