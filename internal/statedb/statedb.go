// Package statedb maintains the blockchain's global state as a Merkle
// Patricia Trie and implements both halves of DCert's certificate
// construction data flow:
//
//   - Outside the enclave (Alg. 1 lines 2-3): execute a block's transactions
//     against the committed state, producing the read set {r}, the write set
//     {w}, and the update proof π (an MPT witness covering both).
//   - Inside the enclave (Alg. 2 lines 17-23): replay the transactions
//     statelessly against the witness, cross-check the declared read set,
//     and recompute the post-state root.
package statedb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/mpt"
	"dcert/internal/smt"
	"dcert/internal/vm"
)

// Package errors.
var (
	// ErrReadSetMismatch is returned when the declared read set disagrees
	// with the authenticated witness.
	ErrReadSetMismatch = errors.New("statedb: read set does not match witness")
	// ErrStateRootMismatch is returned when a replayed block's post-state
	// root differs from the claimed one.
	ErrStateRootMismatch = errors.New("statedb: state root mismatch")
	// ErrTxInvalid is returned when a block contains an invalid transaction.
	ErrTxInvalid = errors.New("statedb: invalid transaction in block")
)

// DB is the full-node state database. The commitment structure is
// selectable: the default Merkle Patricia Trie, or the Fig. 4 sparse Merkle
// tree (see backend_smt.go).
//
// DB is not safe for concurrent use.
type DB struct {
	kind BackendKind
	trie *mpt.Trie // BackendMPT
	smt  *smtState // BackendSMT
}

// New returns an empty MPT-backed state database.
func New() *DB {
	return &DB{kind: BackendMPT, trie: mpt.New()}
}

// NewWithBackend returns an empty state database over the given commitment
// structure.
func NewWithBackend(kind BackendKind) (*DB, error) {
	switch kind {
	case BackendMPT:
		return New(), nil
	case BackendSMT:
		s, err := newSMTState()
		if err != nil {
			return nil, err
		}
		return &DB{kind: BackendSMT, smt: s}, nil
	default:
		return nil, fmt.Errorf("statedb: unknown backend %d", byte(kind))
	}
}

// Backend reports the commitment structure in use.
func (db *DB) Backend() BackendKind {
	return db.kind
}

// Root returns the state commitment H_state.
func (db *DB) Root() (chash.Hash, error) {
	if db.kind == BackendSMT {
		return db.smt.tree.Root(), nil
	}
	return db.trie.Hash()
}

// Get reads a raw state value.
func (db *DB) Get(key []byte) ([]byte, error) {
	if db.kind == BackendSMT {
		return db.smt.get(key)
	}
	return db.trie.Get(key)
}

// Set writes a raw state value directly (genesis initialization only; block
// execution goes through ExecuteBlock/Commit).
func (db *DB) Set(key, value []byte) error {
	if db.kind == BackendSMT {
		return db.smt.set(key, value)
	}
	return db.trie.Put(key, value)
}

// ExecResult captures a block execution: the read and write sets over the
// pre-state, plus per-transaction revert outcomes.
type ExecResult struct {
	// ReadSet maps each key read from the pre-state to the value observed
	// ({r} in the paper; nil value = proven absent).
	ReadSet map[string][]byte
	// WriteSet maps each written key to its final value ({w}).
	WriteSet map[string][]byte
	// Reverted lists the indices of transactions whose writes were dropped.
	Reverted []int
}

// overlay implements vm.State over a base read function with read/write
// tracking and nested (per-transaction) write buffers.
type overlay struct {
	base   func(key []byte) ([]byte, error)
	reads  map[string][]byte
	writes map[string][]byte
	txBuf  map[string][]byte // current transaction's uncommitted writes
}

var _ vm.State = (*overlay)(nil)

func newOverlay(base func(key []byte) ([]byte, error)) *overlay {
	return &overlay{
		base:   base,
		reads:  make(map[string][]byte),
		writes: make(map[string][]byte),
	}
}

func (o *overlay) beginTx() {
	o.txBuf = make(map[string][]byte)
}

func (o *overlay) commitTx() {
	for k, v := range o.txBuf {
		o.writes[k] = v
	}
	o.txBuf = nil
}

func (o *overlay) revertTx() {
	o.txBuf = nil
}

// Read implements vm.State: uncommitted writes, then committed writes, then
// the recorded read set, then the base state (recording the observation).
func (o *overlay) Read(key []byte) ([]byte, error) {
	k := string(key)
	if o.txBuf != nil {
		if v, ok := o.txBuf[k]; ok {
			return v, nil
		}
	}
	if v, ok := o.writes[k]; ok {
		return v, nil
	}
	if v, ok := o.reads[k]; ok {
		return v, nil
	}
	v, err := o.base(key)
	if err != nil {
		return nil, err
	}
	o.reads[k] = v
	return v, nil
}

// Write implements vm.State.
func (o *overlay) Write(key, value []byte) error {
	if len(value) == 0 {
		return mpt.ErrEmptyValue
	}
	cp := make([]byte, len(value))
	copy(cp, value)
	if o.txBuf == nil {
		o.writes[string(key)] = cp
		return nil
	}
	o.txBuf[string(key)] = cp
	return nil
}

// nonceKey is the state key holding an account's next expected nonce.
func nonceKey(addr chain.Address) []byte {
	return []byte("sys/nonce/" + addr.Hex())
}

// checkAndBumpNonce enforces per-account replay protection: the transaction
// nonce must equal the account's stored counter, which is then advanced.
// The bump is written outside the per-transaction buffer so it survives
// contract-level reverts (as on Ethereum: a reverted tx still consumes its
// nonce).
func checkAndBumpNonce(o *overlay, tx *chain.Transaction) error {
	key := nonceKey(tx.From)
	raw, err := o.Read(key)
	if err != nil {
		return err
	}
	var next uint64
	if raw != nil {
		if len(raw) != 8 {
			return fmt.Errorf("%w: corrupt nonce entry", ErrTxInvalid)
		}
		next = binary.BigEndian.Uint64(raw)
	}
	if tx.Nonce != next {
		return fmt.Errorf("%w: nonce %d, account at %d", ErrTxInvalid, tx.Nonce, next)
	}
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, next+1)
	o.writes[string(key)] = buf
	return nil
}

// runTxs executes the block's transactions over the overlay with
// per-transaction revert semantics. Transaction signatures and account
// nonces are verified first (Alg. 2 line 19 plus replay protection);
// contract-level errors revert the single transaction, while infrastructure
// errors (missing witness nodes) abort.
func runTxs(reg *vm.Registry, o *overlay, txs []*chain.Transaction) ([]int, error) {
	return runTxsOpts(reg, o, txs, false)
}

// runTxsOpts is runTxs with the signature check optionally hoisted out: the
// pipeline verifies signatures in a parallel stage (or, in the enclave, on
// multiple TCS) before execution, and must not pay for them twice.
func runTxsOpts(reg *vm.Registry, o *overlay, txs []*chain.Transaction, preverified bool) ([]int, error) {
	var reverted []int
	for i, tx := range txs {
		if !preverified {
			if err := tx.Verify(); err != nil {
				return nil, fmt.Errorf("%w: tx %d: %v", ErrTxInvalid, i, err)
			}
		}
		if err := checkAndBumpNonce(o, tx); err != nil {
			if errors.Is(err, ErrTxInvalid) {
				return nil, fmt.Errorf("tx %d: %w", i, err)
			}
			return nil, err
		}
		o.beginTx()
		err := reg.Call(vm.NewMeteredState(o), tx)
		switch {
		case err == nil:
			o.commitTx()
		case errors.Is(err, mpt.ErrMissingNode), errors.Is(err, ErrUnprovenRead):
			// Witness insufficiency is an integrity failure, not a revert.
			return nil, err
		default:
			o.revertTx()
			reverted = append(reverted, i)
		}
	}
	return reverted, nil
}

// ExecuteBlock runs the transactions against the committed state without
// mutating it, returning the read/write sets (comp_data_set, Alg. 1 line 2).
func (db *DB) ExecuteBlock(reg *vm.Registry, txs []*chain.Transaction) (*ExecResult, error) {
	return db.executeBlock(reg, txs, false)
}

// ExecuteBlockPreverified is ExecuteBlock for transactions whose signatures
// have already been checked (the pipeline's parallel verify stage). Nonce
// replay protection still runs — it is state-dependent and belongs here.
func (db *DB) ExecuteBlockPreverified(reg *vm.Registry, txs []*chain.Transaction) (*ExecResult, error) {
	return db.executeBlock(reg, txs, true)
}

func (db *DB) executeBlock(reg *vm.Registry, txs []*chain.Transaction, preverified bool) (*ExecResult, error) {
	o := newOverlay(db.Get)
	reverted, err := runTxsOpts(reg, o, txs, preverified)
	if err != nil {
		return nil, err
	}
	return &ExecResult{ReadSet: o.reads, WriteSet: o.writes, Reverted: reverted}, nil
}

// Commit applies a write set to the state and returns the new root.
func (db *DB) Commit(writes map[string][]byte) (chash.Hash, error) {
	for k, v := range writes {
		if err := db.Set([]byte(k), v); err != nil {
			return chash.Zero, fmt.Errorf("statedb: commit %q: %w", k, err)
		}
	}
	return db.Root()
}

// Delete removes a key from the state. It exists for speculative-execution
// rollback: a pipelined issuer commits write sets ahead of certification and
// must be able to restore keys that did not exist before (deleting an absent
// key is a no-op).
func (db *DB) Delete(key []byte) error {
	if db.kind == BackendSMT {
		db.smt.del(key)
		return nil
	}
	return db.trie.Delete(key)
}

// UpdateProof is π_i = ⟨{r}_i, π_r, π_w⟩ from Alg. 1: the declared read set
// plus a commitment witness covering the read and write keys against the
// pre-state root. The witness shape depends on the state backend: an MPT
// node witness, or an SMT multiproof with the explicit prior-value set.
type UpdateProof struct {
	// Kind names the backend this proof is for.
	Kind BackendKind
	// ReadSet is the declared {r} (key → observed pre-state value).
	ReadSet map[string][]byte
	// Witness authenticates the read and write paths (BackendMPT).
	Witness *mpt.Witness
	// SMT is the combined multiproof over all touched keys (BackendSMT).
	SMT *smt.Multiproof
	// Prior holds the pre-state value of every touched key (BackendSMT).
	Prior map[string][]byte
}

// EncodedSize returns the serialized proof size in bytes.
func (p *UpdateProof) EncodedSize() int {
	size := 0
	switch p.Kind {
	case BackendSMT:
		size = p.SMT.EncodedSize()
		for k, v := range p.Prior {
			size += 8 + len(k) + len(v)
		}
	default:
		size = p.Witness.EncodedSize()
	}
	for k, v := range p.ReadSet {
		size += 8 + len(k) + len(v)
	}
	return size
}

// UpdateProofFor builds the update proof for an executed block
// (get_update_proof, Alg. 1 line 3).
func (db *DB) UpdateProofFor(res *ExecResult) (*UpdateProof, error) {
	if db.kind == BackendSMT {
		return db.smt.updateProof(res)
	}
	keys := make([][]byte, 0, len(res.ReadSet)+len(res.WriteSet))
	for k := range res.ReadSet {
		keys = append(keys, []byte(k))
	}
	for k := range res.WriteSet {
		keys = append(keys, []byte(k))
	}
	w, err := db.trie.WitnessForKeys(keys)
	if err != nil {
		return nil, fmt.Errorf("statedb: update proof: %w", err)
	}
	reads := make(map[string][]byte, len(res.ReadSet))
	for k, v := range res.ReadSet {
		reads[k] = v
	}
	return &UpdateProof{Kind: BackendMPT, ReadSet: reads, Witness: w}, nil
}

// ReplayBlock is the trusted half (blk_verify_t lines 17-23): it rebuilds a
// partial trie over the witness, cross-checks the declared read set against
// it, re-executes the transactions, applies the writes, and returns the
// recomputed post-state root. Every state access is authenticated against
// prevRoot; missing or tampered witness data fails the replay.
func ReplayBlock(prevRoot chash.Hash, proof *UpdateProof, reg *vm.Registry, txs []*chain.Transaction) (chash.Hash, error) {
	root, _, err := ReplayBlockWithWrites(prevRoot, proof, reg, txs)
	return root, err
}

// ReplayBlockWithWrites is ReplayBlock, additionally returning the verified
// write set — the DCert trusted program feeds it to index certification
// (get_index_write_data without re-execution).
func ReplayBlockWithWrites(prevRoot chash.Hash, proof *UpdateProof, reg *vm.Registry, txs []*chain.Transaction) (chash.Hash, map[string][]byte, error) {
	return replayBlock(prevRoot, proof, reg, txs, false)
}

// ReplayBlockWithWritesPreverified is ReplayBlockWithWrites minus the per-
// transaction signature check, for trusted programs that have already
// verified all signatures on parallel enclave threads (multiple TCS). The
// caller vouches for the signatures; everything state-dependent (read-set
// cross-check, nonces, re-execution, root recomputation) still runs.
func ReplayBlockWithWritesPreverified(prevRoot chash.Hash, proof *UpdateProof, reg *vm.Registry, txs []*chain.Transaction) (chash.Hash, map[string][]byte, error) {
	return replayBlock(prevRoot, proof, reg, txs, true)
}

func replayBlock(prevRoot chash.Hash, proof *UpdateProof, reg *vm.Registry, txs []*chain.Transaction, preverified bool) (chash.Hash, map[string][]byte, error) {
	if proof.Kind == BackendSMT {
		return replaySMT(prevRoot, proof, reg, txs, preverified)
	}
	pt := mpt.NewPartial(prevRoot, proof.Witness)

	// verify_mht(H_{i-1}^s, π_r, {r}): every declared read must match the
	// authenticated pre-state.
	for k, declared := range proof.ReadSet {
		got, err := pt.Get([]byte(k))
		if err != nil {
			return chash.Zero, nil, fmt.Errorf("%w: read %q: %v", ErrReadSetMismatch, k, err)
		}
		if !bytes.Equal(got, declared) {
			return chash.Zero, nil, fmt.Errorf("%w: read %q", ErrReadSetMismatch, k)
		}
	}

	// Re-execute transactions; reads resolve through the partial trie, so
	// any read outside the witness aborts the replay.
	o := newOverlay(pt.Get)
	if _, err := runTxsOpts(reg, o, txs, preverified); err != nil {
		return chash.Zero, nil, err
	}

	// update(π_w, {w}): apply the recomputed write set and derive the root.
	for k, v := range o.writes {
		if err := pt.Put([]byte(k), v); err != nil {
			return chash.Zero, nil, fmt.Errorf("statedb: replay write %q: %w", k, err)
		}
	}
	root, err := pt.Hash()
	if err != nil {
		return chash.Zero, nil, fmt.Errorf("statedb: replay root: %w", err)
	}
	return root, o.writes, nil
}

// Prove builds a single-key Merkle proof (path witness) against the current
// state root, for direct verifiable state reads by light clients (§1).
// Only the MPT backend serves path proofs.
func (db *DB) Prove(key []byte) (*mpt.Witness, error) {
	if db.kind != BackendMPT {
		return nil, fmt.Errorf("statedb: state proofs require the MPT backend, have %s", db.kind)
	}
	return db.trie.Prove(key)
}

// ProveKeys builds one merged multiproof covering all the given keys: a
// single witness holding the union of the keys' path nodes. Shared upper
// path nodes appear once (the witness is content-addressed), so a K-key
// multiproof is strictly smaller than K single-key proofs and verifies every
// key against the same root. Only the MPT backend serves path proofs.
func (db *DB) ProveKeys(keys [][]byte) (*mpt.Witness, error) {
	if db.kind != BackendMPT {
		return nil, fmt.Errorf("statedb: state proofs require the MPT backend, have %s", db.kind)
	}
	return db.trie.WitnessForKeys(keys)
}
