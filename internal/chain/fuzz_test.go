package chain

import (
	"testing"

	"dcert/internal/chash"
)

// Fuzz targets: decoders must never panic on hostile bytes, and valid inputs
// must round-trip. Seeds come from real encodings; `go test` runs the seed
// corpus, `go test -fuzz` explores further.

func FuzzUnmarshalHeader(f *testing.F) {
	h := Header{Height: 3, PrevHash: chash.Leaf([]byte("p")), Time: 9,
		Consensus: ConsensusProof{Nonce: 1, Difficulty: 8}}
	f.Add(h.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, raw []byte) {
		hdr, err := UnmarshalHeader(raw)
		if err != nil {
			return
		}
		// Valid decodes must re-encode to the identical bytes (canonical form).
		if got := hdr.Marshal(); string(got) != string(raw) {
			t.Fatalf("non-canonical header decode: % x vs % x", got, raw)
		}
	})
}

func FuzzUnmarshalTransaction(f *testing.F) {
	sk, err := chash.GenerateKey()
	if err != nil {
		f.Fatalf("GenerateKey: %v", err)
	}
	tx := &Transaction{Nonce: 1, Contract: "kv-0001", Method: "set",
		Args: [][]byte{[]byte("k"), []byte("v")}}
	if err := tx.Sign(sk); err != nil {
		f.Fatalf("Sign: %v", err)
	}
	f.Add(tx.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x14})
	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := UnmarshalTransaction(raw)
		if err != nil {
			return
		}
		if got := parsed.Marshal(); string(got) != string(raw) {
			t.Fatalf("non-canonical tx decode")
		}
		// Verification must not panic on decoded data either.
		_ = parsed.Verify()
	})
}

func FuzzUnmarshalBlock(f *testing.F) {
	sk, err := chash.GenerateKey()
	if err != nil {
		f.Fatalf("GenerateKey: %v", err)
	}
	tx := &Transaction{Nonce: 1, Contract: "kv-0001", Method: "set",
		Args: [][]byte{[]byte("k"), []byte("v")}}
	if err := tx.Sign(sk); err != nil {
		f.Fatalf("Sign: %v", err)
	}
	root, err := ComputeTxRoot([]*Transaction{tx})
	if err != nil {
		f.Fatalf("ComputeTxRoot: %v", err)
	}
	b := &Block{Header: Header{Height: 1, TxRoot: root}, Txs: []*Transaction{tx}}
	f.Add(b.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		blk, err := UnmarshalBlock(raw)
		if err != nil {
			return
		}
		if got := blk.Marshal(); string(got) != string(raw) {
			t.Fatalf("non-canonical block decode")
		}
		_ = blk.VerifyTxRoot()
	})
}
