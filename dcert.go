// Package dcert is the public API of the DCert decentralized certification
// framework (Ji, Xu, Zhang, Xu — ACM/IFIP Middleware 2022): secure,
// efficient, and versatile blockchain light clients backed by trusted
// hardware.
//
// DCert lets a superlight client validate an entire blockchain — and run
// rich verifiable queries over its history — while storing only the latest
// block header and one certificate (~3 KB), with constant validation time.
// An SGX-enabled full node (the certificate issuer, CI) recursively
// certifies every block inside an enclave: the enclave verifies the previous
// block's certificate, replays the new block's state transition against
// Merkle proofs, and signs the new header with an enclave-sealed key whose
// public half is bound to the enclave measurement by a remote-attestation
// report.
//
// # Package layout
//
// This package re-exports the user-facing types from the internal packages
// and adds a Deployment helper that assembles a complete simulated DCert
// network (miner, CI with enclave, service provider, attestation authority):
//
//   - Issuer (CI), SuperlightClient, Certificate — the certification core;
//   - ServiceProvider, TwoLevel indexes, query proofs — verifiable queries;
//   - LightClient — the traditional baseline;
//   - Deployment — one-call setup for examples, tests, and benchmarks.
//
// # Quick start
//
//	dep, err := dcert.NewDeployment(dcert.Config{Workload: dcert.KVStore})
//	...
//	client := dep.NewSuperlightClient()
//	blk, cert, err := dep.MineAndCertify(200) // 200-tx block
//	err = client.ValidateChain(&blk.Header, cert)
//
// See examples/ for complete programs, and DESIGN.md for the system
// inventory and the mapping to the paper's algorithms and figures.
package dcert

import (
	"time"

	"dcert/internal/attest"
	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/core"
	"dcert/internal/enclave"
	"dcert/internal/lightclient"
	"dcert/internal/mbtree"
	"dcert/internal/network"
	"dcert/internal/query"
	"dcert/internal/statedb"
	"dcert/internal/workload"
)

// Core certification types (package internal/core).
type (
	// Certificate is the DCert certificate ⟨pk_enc, rep, dig, sig⟩.
	Certificate = core.Certificate
	// Issuer is the SGX-enabled certificate issuer (CI).
	Issuer = core.Issuer
	// SuperlightClient validates the chain at constant cost (Alg. 3).
	SuperlightClient = core.SuperlightClient
	// IndexJob is the CI-side input for certifying one index over one block.
	IndexJob = core.IndexJob
	// IndexUpdater is the trusted index-update logic interface.
	IndexUpdater = core.IndexUpdater
	// CostBreakdown decomposes certificate-construction time (Fig. 8).
	CostBreakdown = core.CostBreakdown
	// Pipeline is the pipelined certification engine over one issuer.
	Pipeline = core.Pipeline
	// PipelineConfig tunes a certification pipeline.
	PipelineConfig = core.PipelineConfig
	// PipelineResult is one block's outcome from a pipeline.
	PipelineResult = core.PipelineResult
	// PipelineStats reports per-stage busy time and wall clock.
	PipelineStats = core.PipelineStats
	// SegmentCert is a certified K-block segment with its interlink.
	SegmentCert = core.SegmentCert
	// SegmentPolicy tunes the pipeline's adaptive segment batching
	// (PipelineConfig.Segment).
	SegmentPolicy = core.SegmentPolicy
	// SegmentFetcher retrieves the certified segment covering a height for
	// BootstrapSublinear.
	SegmentFetcher = core.SegmentFetcher
)

// SegmentDigest returns the certified digest of a header run (for one header
// it equals BlockDigest — the K=1 byte identity).
func SegmentDigest(headers []*Header) Hash {
	return core.SegmentDigest(headers)
}

// ModelBootstrapFetches predicts the sublinear bootstrap's fetch count for a
// chain certified in fixed-size segments (mirrors the client's walk exactly).
func ModelBootstrapFetches(chainLen uint64, segBlocks int) int {
	return core.ModelBootstrapFetches(chainLen, segBlocks)
}

// NewPipeline starts a certification pipeline on an issuer.
func NewPipeline(ci *Issuer, cfg PipelineConfig) (*Pipeline, error) {
	return core.NewPipeline(ci, cfg)
}

// Chain substrate types (package internal/chain).
type (
	// Block is a blockchain block.
	Block = chain.Block
	// Header is a block header (Fig. 1).
	Header = chain.Header
	// Transaction is a signed contract invocation.
	Transaction = chain.Transaction
	// Address is an account address.
	Address = chain.Address
)

// Verifiable-query types (package internal/query).
type (
	// ServiceProvider maintains authenticated indexes and answers queries.
	ServiceProvider = query.ServiceProvider
	// AuthIndex is the two-level authenticated index of Fig. 5.
	AuthIndex = query.TwoLevel
	// HistoricalResult is a historical range-query answer with proof.
	HistoricalResult = query.HistoricalResult
	// KeywordResult is a conjunctive keyword-query answer with proofs.
	KeywordResult = query.KeywordResult
	// RangeProof is a two-level range-query integrity proof.
	RangeProof = query.RangeProof
	// Entry is a versioned index entry.
	Entry = mbtree.Entry
	// Posting is one keyword-index hit.
	Posting = query.Posting
)

// Trusted-hardware simulation types.
type (
	// EnclaveCostModel parameterizes the simulated SGX overheads.
	EnclaveCostModel = enclave.CostModel
	// AttestationAuthority simulates the Intel Attestation Service.
	AttestationAuthority = attest.Authority
	// AttestationReport is an IAS attestation report.
	AttestationReport = attest.Report
)

// LightClient is the traditional light client baseline (linear cost).
type LightClient = lightclient.Client

// Hash is the digest type used throughout DCert.
type Hash = chash.Hash

// Workload identifies a Blockbench benchmark workload.
type Workload = workload.Kind

// Blockbench workloads (the paper's evaluation suite).
const (
	// DoNothing is the DN micro-benchmark.
	DoNothing = workload.DoNothing
	// CPUHeavy is the CPU micro-benchmark.
	CPUHeavy = workload.CPUHeavy
	// IOHeavy is the IO micro-benchmark.
	IOHeavy = workload.IOHeavy
	// KVStore is the KV macro-benchmark.
	KVStore = workload.KVStore
	// SmallBank is the SB macro-benchmark.
	SmallBank = workload.SmallBank
)

// DefaultEnclaveCostModel returns SGX overheads calibrated to published
// measurements (used by the paper-reproduction benchmarks).
func DefaultEnclaveCostModel() EnclaveCostModel {
	return enclave.DefaultCostModel()
}

// NewHistoricalIndex builds a historical-account index over state keys with
// the given prefix (Fig. 5, left).
func NewHistoricalIndex(name, prefix string) (*AuthIndex, error) {
	return query.NewHistoricalIndex(name, prefix)
}

// NewKeywordIndex builds an inverted keyword index over transactions
// (Fig. 5, right).
func NewKeywordIndex(name string) (*AuthIndex, error) {
	return query.NewKeywordIndex(name)
}

// VerifyHistorical validates a historical query result against a certified
// index root (client side).
func VerifyHistorical(indexRoot Hash, res *HistoricalResult) error {
	return query.VerifyHistorical(indexRoot, res)
}

// VerifyKeyword validates a conjunctive keyword query result against a
// certified index root (client side).
func VerifyKeyword(indexRoot Hash, res *KeywordResult) error {
	return query.VerifyKeyword(indexRoot, res)
}

// Network topics for the simulated fabric.
const (
	// TopicBlocks carries proposed blocks.
	TopicBlocks = network.TopicBlocks
	// TopicCerts carries block certificates.
	TopicCerts = network.TopicCerts
	// TopicIndexCerts carries index certificates.
	TopicIndexCerts = network.TopicIndexCerts
	// TopicCertRequests carries clients' certificate catch-up requests.
	TopicCertRequests = network.TopicCertRequests
	// TopicQueries carries serialized query requests to the SP.
	TopicQueries = query.TopicQueries
	// TopicQueryResults carries the SP's serialized answers.
	TopicQueryResults = query.TopicResults
)

// Fault injection (package internal/network): deterministic adversarial
// delivery for chaos testing — install a plan with Deployment.Net().SetFaults.
type (
	// FaultPlan is a seeded set of delivery-perturbation rules.
	FaultPlan = network.FaultPlan
	// FaultRule perturbs messages matching a topic/publisher pattern.
	FaultRule = network.FaultRule
)

// ConsensusParams configures the substrate's proof-of-work.
type ConsensusParams = consensus.Params

// newLightClient constructs the baseline light client (indirection keeps the
// lightclient package out of the deployment file's imports).
func newLightClient(genesis Hash, params ConsensusParams) *LightClient {
	return lightclient.New(genesis, params)
}

// BlockDigest returns the certified digest of a block header (dig = H(hdr)).
func BlockDigest(hdr *Header) Hash {
	return core.BlockDigest(hdr)
}

// IndexDigest returns the certified digest of an index certificate
// (dig = H(hdr ‖ indexRoot)).
func IndexDigest(hdr *Header, indexRoot Hash) Hash {
	return core.IndexDigest(hdr, indexRoot)
}

// Aggregation queries (extension per §5.1: any authenticated query type).
type (
	// AggregateOp selects an aggregation operator.
	AggregateOp = query.AggregateOp
	// AggregateResult is a verified aggregation answer.
	AggregateResult = query.AggregateResult
)

// Aggregation operators.
const (
	// AggCount counts versions in the window.
	AggCount = query.AggCount
	// AggSum sums uint64-encoded values.
	AggSum = query.AggSum
	// AggMin takes the minimum value.
	AggMin = query.AggMin
	// AggMax takes the maximum value.
	AggMax = query.AggMax
)

// VerifyAggregate validates an aggregation result against a certified index
// root (client side).
func VerifyAggregate(indexRoot Hash, res *AggregateResult) error {
	return query.VerifyAggregate(indexRoot, res)
}

// Direct verifiable reads against a certified header (§1: light clients
// verify specific transaction/state data retrieved from full nodes).
type (
	// StateResult is a proven state read.
	StateResult = query.StateResult
	// TxResult is a proven transaction inclusion.
	TxResult = query.TxResult
	// BatchStateResult is a proven multi-key state read: one merged
	// multiproof covers every key.
	BatchStateResult = query.BatchStateResult
)

// VerifyState validates a direct state read against a certified header's
// state root.
func VerifyState(hdr *Header, res *StateResult) error {
	return query.VerifyState(hdr, res)
}

// VerifyBatchState validates a multi-key state read against a certified
// header's state root: every key replays through the one merged witness.
func VerifyBatchState(hdr *Header, res *BatchStateResult) error {
	return query.VerifyBatchState(hdr, res)
}

// VerifyTx validates a transaction-inclusion claim against a certified
// header's transaction root.
func VerifyTx(hdr *Header, res *TxResult) error {
	return query.VerifyTx(hdr, res)
}

// State commitment backends (Config.StateBackend).
const (
	// StateBackendMPT is the Merkle Patricia Trie state (default).
	StateBackendMPT = statedb.BackendMPT
	// StateBackendSMT is the Fig. 4 sparse-Merkle-tree state.
	StateBackendSMT = statedb.BackendSMT
)

// Networked query service: the SP answers serialized queries over the
// deployment's fabric; clients verify the responses locally.
type (
	// QueryServer runs a ServiceProvider behind the network's query topic.
	QueryServer = query.Server
	// QueryRequester issues queries over the network.
	QueryRequester = query.Requester
)

// QueryRetryPolicy bounds and paces a requester's attempts.
type QueryRetryPolicy = query.RetryPolicy

// DefaultQueryRetryPolicy is the requester's standard backoff schedule.
func DefaultQueryRetryPolicy() QueryRetryPolicy {
	return query.DefaultRetryPolicy()
}

// ServeQueries starts answering query requests on the deployment's network.
func (d *Deployment) ServeQueries() *QueryServer {
	return query.Serve(d.sp, d.net)
}

// NewQueryRequester creates a networked query client on the deployment's
// fabric with the given per-attempt timeout and the default retry policy.
func (d *Deployment) NewQueryRequester(timeout time.Duration) *QueryRequester {
	return query.NewRequester(d.net, timeout)
}

// NewQueryRequesterWithPolicy creates a networked query client with an
// explicit retry policy (MaxAttempts: 1 restores single-shot behavior).
func (d *Deployment) NewQueryRequesterWithPolicy(timeout time.Duration, policy QueryRetryPolicy) *QueryRequester {
	return query.NewRequesterWithPolicy(d.net, timeout, policy)
}
