// Command dcert-archive demonstrates cold-storage operation: it builds a
// certified chain, persists blocks and certificates to an archive file,
// restores them into a fresh full node (re-validating every block), and has
// a superlight client bootstrap from the archived tip certificate alone.
//
// Usage:
//
//	dcert-archive [-blocks N] [-txs N] [-out path]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dcert"
	"dcert/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dcert-archive: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	blocks := flag.Int("blocks", 8, "number of blocks to build and archive")
	txs := flag.Int("txs", 20, "transactions per block")
	out := flag.String("out", "", "archive path (default: temp file)")
	flag.Parse()

	path := *out
	if path == "" {
		path = filepath.Join(os.TempDir(), "dcert-chain.archive")
	}

	// Build and certify a chain.
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.KVStore,
		Contracts: 10,
		Accounts:  16,
		KeySpace:  200,
	})
	if err != nil {
		return err
	}
	fmt.Printf("building %d certified blocks...\n", *blocks)
	for i := 0; i < *blocks; i++ {
		if _, _, err := dep.MineAndCertify(*txs); err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
	}

	// Persist the canonical chain plus all certificates.
	if err := storage.WriteChain(path, dep.Issuer().Node(), dep.Issuer().CertFor); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("archived chain to %s (%d bytes)\n", path, info.Size())

	// Restore into a brand-new full node: every block is re-validated.
	contents, err := storage.Load(path)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d blocks and %d certificates\n", len(contents.Blocks), len(contents.Certs))

	restored, err := dep.AddIssuer() // fresh node+enclave on the same chain params
	if err != nil {
		return err
	}
	applied, err := storage.Replay(restored.Node(), contents)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	fmt.Printf("restored node re-validated %d blocks; tip height %d\n",
		applied, restored.Node().Tip().Header.Height)

	// A superlight client bootstraps from the archived tip certificate.
	tip := contents.Blocks[len(contents.Blocks)-1]
	cert, ok := contents.Certs[tip.Hash()]
	if !ok {
		return fmt.Errorf("tip certificate missing from archive")
	}
	client := dep.NewSuperlightClient()
	if err := client.ValidateChain(&tip.Header, cert); err != nil {
		return fmt.Errorf("client bootstrap from archive: %w", err)
	}
	fmt.Printf("superlight client bootstrapped from cold storage: height %d, %d bytes of state\n",
		tip.Header.Height, client.StorageSize())
	return nil
}
