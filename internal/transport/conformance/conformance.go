// Package conformance is the executable contract of the network.Bus topic
// API. It is one shared table of behavior tests — ordered delivery per
// publisher, fan-out, subscriber independence, bounded-queue backpressure,
// Close/Cancel races, fault-rule semantics, and certificate byte-identity —
// run against every fabric that claims the Bus semantics: the in-process
// network.Network and the TCP wire transport. A fabric passes the suite or
// it is not a DCert bus; the two implementations are proven interchangeable
// by passing identically.
package conformance

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"dcert/internal/attest"
	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/core"
	"dcert/internal/network"
)

// Fabric is the surface the suite exercises: the topic bus plus the fault
// controls every DCert fabric exposes for chaos testing.
type Fabric interface {
	network.Bus
	// SetFaults installs a seeded fault plan on the fabric.
	SetFaults(plan *network.FaultPlan)
	// Partition cuts a topic until Heal (requires an installed plan).
	Partition(topic string)
	// Heal restores a partitioned topic.
	Heal(topic string)
	// FaultTally returns the fault layer's ledger for a topic.
	FaultTally(topic string) network.FaultTally
	// Sync blocks until every Publish issued before the call has been
	// processed by the fabric's fault layer, so FaultTally is complete.
	// For the in-process bus Publish is synchronous and Sync is a no-op;
	// the wire transport flushes a round trip through the connection.
	Sync()
}

// InProcess adapts the in-process Network to the Fabric surface.
type InProcess struct {
	*network.Network
}

// Sync is a no-op: in-process publishes reach the fault layer before
// Publish returns.
func (InProcess) Sync() {}

// Factory builds a fresh fabric for one subtest. Register teardown with
// t.Cleanup.
type Factory func(t *testing.T) Fabric

// waitTimeout bounds every wait in the suite. Generous because the race
// detector and loaded CI machines stretch wall-clock freely.
const waitTimeout = 10 * time.Second

// Run executes the full conformance suite against fabrics built by the
// factory. Every subtest gets a fresh fabric.
func Run(t *testing.T, newFabric Factory) {
	t.Run("OrderedDeliveryPerPublisher", func(t *testing.T) { testOrderedDelivery(t, newFabric(t)) })
	t.Run("FanOut", func(t *testing.T) { testFanOut(t, newFabric(t)) })
	t.Run("SubscriberIndependence", func(t *testing.T) { testSubscriberIndependence(t, newFabric(t)) })
	t.Run("Backpressure", func(t *testing.T) { testBackpressure(t, newFabric(t)) })
	t.Run("CancelRaces", func(t *testing.T) { testCancelRaces(t, newFabric(t)) })
	t.Run("FaultDrop", func(t *testing.T) { testFaultDrop(t, newFabric(t)) })
	t.Run("FaultDuplicate", func(t *testing.T) { testFaultDuplicate(t, newFabric(t)) })
	t.Run("PartitionHeal", func(t *testing.T) { testPartitionHeal(t, newFabric(t)) })
	t.Run("CertBundleByteIdentity", func(t *testing.T) { testCertBundleByteIdentity(t, newFabric(t)) })
}

// seq renders a sequence number as a wire payload.
func seq(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

// seqOf parses a sequence payload.
func seqOf(t *testing.T, m network.Message) int {
	t.Helper()
	b, ok := m.Payload.([]byte)
	if !ok || len(b) != 8 {
		t.Fatalf("payload %T %v, want 8-byte sequence", m.Payload, m.Payload)
	}
	return int(binary.BigEndian.Uint64(b))
}

// waitFor polls until cond holds or the suite timeout expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(waitTimeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// collect drains exactly n messages from the subscription.
func collect(t *testing.T, sub *network.Subscription, n int) []network.Message {
	t.Helper()
	out := make([]network.Message, 0, n)
	timer := time.NewTimer(waitTimeout)
	defer timer.Stop()
	for len(out) < n {
		select {
		case m, ok := <-sub.C:
			if !ok {
				t.Fatalf("subscription closed after %d of %d messages", len(out), n)
			}
			out = append(out, m)
		case <-timer.C:
			t.Fatalf("timed out after %d of %d messages", len(out), n)
		}
	}
	return out
}

// testOrderedDelivery interleaves two publishers on one topic: each
// subscriber must observe every publisher's messages in publish order.
func testOrderedDelivery(t *testing.T, f Fabric) {
	const topic = "conformance-order"
	const perPublisher = 50
	sub := f.Subscribe(topic, 4*perPublisher)
	defer sub.Cancel()

	var wg sync.WaitGroup
	for _, from := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(from string) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				if err := f.Publish(topic, from, seq(i)); err != nil {
					t.Errorf("publish %s/%d: %v", from, i, err)
					return
				}
			}
		}(from)
	}
	wg.Wait()

	got := collect(t, sub, 2*perPublisher)
	next := map[string]int{"alice": 0, "bob": 0}
	for _, m := range got {
		want := next[m.From]
		if s := seqOf(t, m); s != want {
			t.Fatalf("publisher %s: got seq %d, want %d (per-publisher order violated)", m.From, s, want)
		}
		next[m.From]++
	}
}

// testFanOut publishes once and requires every current subscriber to see
// the full stream in order.
func testFanOut(t *testing.T, f Fabric) {
	const topic = "conformance-fanout"
	const n = 40
	subs := make([]*network.Subscription, 3)
	for i := range subs {
		subs[i] = f.Subscribe(topic, 2*n)
		defer subs[i].Cancel()
	}
	for i := 0; i < n; i++ {
		if err := f.Publish(topic, "pub", seq(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	for si, sub := range subs {
		for i, m := range collect(t, sub, n) {
			if s := seqOf(t, m); s != i {
				t.Fatalf("subscriber %d: got seq %d at position %d", si, s, i)
			}
		}
	}
}

// testSubscriberIndependence cancels one subscriber mid-stream; the
// survivor must still receive everything, and the cancelled channel must
// close without disturbing the stream.
func testSubscriberIndependence(t *testing.T, f Fabric) {
	const topic = "conformance-independence"
	const n = 40
	keeper := f.Subscribe(topic, 2*n)
	defer keeper.Cancel()
	quitter := f.Subscribe(topic, 2*n)

	for i := 0; i < n/2; i++ {
		if err := f.Publish(topic, "pub", seq(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	quitter.Cancel()
	for i := n / 2; i < n; i++ {
		if err := f.Publish(topic, "pub", seq(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	for i, m := range collect(t, keeper, n) {
		if s := seqOf(t, m); s != i {
			t.Fatalf("keeper: got seq %d at position %d", s, i)
		}
	}
	waitFor(t, "quitter channel close", func() bool {
		for {
			select {
			case _, ok := <-quitter.C:
				if !ok {
					return true
				}
			default:
				return false
			}
		}
	})
}

// testBackpressure stuffs a small-depth subscriber far past capacity: the
// publisher must never block, the subscriber must retain exactly its queue
// depth, and the retained messages must be an in-order subsequence of the
// published stream starting at its head.
func testBackpressure(t *testing.T, f Fabric) {
	const topic = "conformance-backpressure"
	const depth = 4
	const n = 64
	sub := f.Subscribe(topic, depth)
	defer sub.Cancel()

	start := time.Now()
	for i := 0; i < n; i++ {
		if err := f.Publish(topic, "firehose", seq(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > waitTimeout {
		t.Fatalf("publisher blocked on a slow subscriber: %d publishes took %v", n, elapsed)
	}
	f.Sync()

	waitFor(t, "queue to fill to depth", func() bool { return len(sub.C) == depth })
	prev := -1
	for i, m := range collect(t, sub, depth) {
		s := seqOf(t, m)
		if i == 0 && s != 0 {
			t.Fatalf("first retained message has seq %d, want 0 (head of stream)", s)
		}
		if s <= prev || s >= n {
			t.Fatalf("retained seq %d after %d: not an in-order subsequence", s, prev)
		}
		prev = s
	}
}

// testCancelRaces hammers Subscribe/Cancel/Publish concurrently, including
// double-Cancel; the fabric must neither deadlock nor corrupt (the suite
// runs under -race in tier 2).
func testCancelRaces(t *testing.T, f Fabric) {
	const topic = "conformance-races"
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			f.Publish(topic, "pub", seq(i))
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub := f.Subscribe(topic, 2)
				// Drain a little, then cancel twice, concurrently with
				// in-flight deliveries.
				select {
				case <-sub.C:
				default:
				}
				done := make(chan struct{})
				go func() { sub.Cancel(); close(done) }()
				sub.Cancel()
				<-done
			}
		}()
	}
	wg.Wait()
}

// testFaultDrop installs a total-loss rule: the tally must account every
// publish as dropped and nothing may be delivered.
func testFaultDrop(t *testing.T, f Fabric) {
	const topic = "conformance-drop"
	const n = 25
	f.SetFaults(&network.FaultPlan{Seed: 1, Rules: []network.FaultRule{{Topic: topic, Drop: 1.0}}})
	sub := f.Subscribe(topic, 2*n)
	defer sub.Cancel()

	for i := 0; i < n; i++ {
		if err := f.Publish(topic, "pub", seq(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	f.Sync()

	tally := f.FaultTally(topic)
	if tally.Published != n || tally.Dropped != n {
		t.Fatalf("tally = %+v, want %d published and %d dropped", tally, n, n)
	}
	if got := len(sub.C); got != 0 {
		t.Fatalf("%d messages delivered through a total-drop rule", got)
	}
}

// testFaultDuplicate installs a total-duplication rule: every publish must
// arrive exactly twice.
func testFaultDuplicate(t *testing.T, f Fabric) {
	const topic = "conformance-duplicate"
	const n = 20
	f.SetFaults(&network.FaultPlan{Seed: 2, Rules: []network.FaultRule{{Topic: topic, Duplicate: 1.0}}})
	sub := f.Subscribe(topic, 8*n)
	defer sub.Cancel()

	for i := 0; i < n; i++ {
		if err := f.Publish(topic, "pub", seq(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	f.Sync()
	tally := f.FaultTally(topic)
	if tally.Published != n || tally.Duplicated != n {
		t.Fatalf("tally = %+v, want %d published and %d duplicated", tally, n, n)
	}

	counts := make(map[int]int)
	for _, m := range collect(t, sub, 2*n) {
		counts[seqOf(t, m)]++
	}
	for i := 0; i < n; i++ {
		if counts[i] != 2 {
			t.Fatalf("seq %d delivered %d times, want exactly 2", i, counts[i])
		}
	}
}

// testPartitionHeal cuts a topic, loses everything published meanwhile, and
// verifies delivery resumes after Heal.
func testPartitionHeal(t *testing.T, f Fabric) {
	const topic = "conformance-partition"
	const n = 15
	f.SetFaults(&network.FaultPlan{Seed: 3}) // partitions require a plan
	sub := f.Subscribe(topic, 4*n)
	defer sub.Cancel()

	f.Partition(topic)
	for i := 0; i < n; i++ {
		if err := f.Publish(topic, "pub", seq(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	f.Sync()
	if tally := f.FaultTally(topic); tally.Partitioned != n {
		t.Fatalf("tally = %+v, want %d partitioned", tally, n)
	}
	if got := len(sub.C); got != 0 {
		t.Fatalf("%d messages crossed an active partition", got)
	}

	f.Heal(topic)
	for i := n; i < 2*n; i++ {
		if err := f.Publish(topic, "pub", seq(i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	for i, m := range collect(t, sub, n) {
		if s := seqOf(t, m); s != n+i {
			t.Fatalf("after heal: got seq %d at position %d, want %d", s, i, n+i)
		}
	}
}

// testCertBundleByteIdentity publishes the certificate-plane vocabulary —
// a cert bundle and a block — and requires the received values to marshal
// byte-identically to the sent ones, whatever the fabric did in between.
// This is the acceptance bar for the wire payload codec: a certificate
// fetched over sockets is the same certificate, bit for bit.
func testCertBundleByteIdentity(t *testing.T, f Fabric) {
	bundle := &core.CertBundle{
		Header: &chain.Header{
			Height:    7,
			PrevHash:  chash.Sum(chash.DomainHeader, []byte("prev")),
			StateRoot: chash.Sum(chash.DomainHeader, []byte("state")),
			TxRoot:    chash.Sum(chash.DomainHeader, []byte("tx")),
			Time:      1700000000,
			Consensus: chain.ConsensusProof{Nonce: 42, Difficulty: 8},
		},
		Cert: &core.Certificate{
			PubKey: []byte("der-encoded-public-key"),
			Report: &attest.Report{
				Measurement: chash.Sum(chash.DomainHeader, []byte("measurement")),
				ReportData:  chash.Sum(chash.DomainHeader, []byte("report-data")),
				PlatformID:  "sim-platform",
				CertChain:   []byte("certificate-chain"),
				Signature:   []byte("authority-signature"),
			},
			Digest: chash.Sum(chash.DomainHeader, []byte("digest")),
			Sig:    []byte("enclave-signature"),
		},
	}
	block := &chain.Block{Header: *bundle.Header}

	sub := f.Subscribe(network.TopicCerts, 4)
	defer sub.Cancel()
	blocks := f.Subscribe(network.TopicBlocks, 4)
	defer blocks.Cancel()

	if err := f.Publish(network.TopicCerts, "ci", bundle); err != nil {
		t.Fatalf("publish bundle: %v", err)
	}
	if err := f.Publish(network.TopicBlocks, "miner", block); err != nil {
		t.Fatalf("publish block: %v", err)
	}

	m := collect(t, sub, 1)[0]
	got, ok := m.Payload.(*core.CertBundle)
	if !ok {
		t.Fatalf("cert payload arrived as %T, want *core.CertBundle", m.Payload)
	}
	if fmt.Sprintf("%x", got.Cert.Marshal()) != fmt.Sprintf("%x", bundle.Cert.Marshal()) {
		t.Fatalf("certificate bytes changed in transit")
	}
	if fmt.Sprintf("%x", got.Header.Marshal()) != fmt.Sprintf("%x", bundle.Header.Marshal()) {
		t.Fatalf("bundle header bytes changed in transit")
	}

	bm := collect(t, blocks, 1)[0]
	gotBlock, ok := bm.Payload.(*chain.Block)
	if !ok {
		t.Fatalf("block payload arrived as %T, want *chain.Block", bm.Payload)
	}
	if fmt.Sprintf("%x", gotBlock.Marshal()) != fmt.Sprintf("%x", block.Marshal()) {
		t.Fatalf("block bytes changed in transit")
	}
}
