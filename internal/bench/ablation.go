package bench

import (
	"fmt"
	"time"

	"dcert"
	"dcert/internal/enclave"
	"dcert/internal/statedb"
)

// Ablations isolate the design choices the paper motivates in §2.2 and §4.1:
//
//   - A1: Ecall transition cost — why DCert minimizes enclave entries (and
//     why the augmented scheme wins at exactly one index).
//   - A2: the stateless-enclave design — update-proof size vs shipping the
//     full state into the enclave, as the state grows.
//   - A3: EPC paging — the cliff when a call's working set exceeds the
//     usable enclave memory, motivating witness minimization.
//   - A4: attestation-report caching — cold vs warm client validation
//     (the §4.3 "check the report only once" rule).

// AblationRow is one ablation sample.
type AblationRow struct {
	// Study names the ablation (A1..A4).
	Study string
	// Setting describes the varied knob.
	Setting string
	// Metric names what Value measures.
	Metric string
	// Value is the measurement.
	Value string
}

// AblationResult aggregates all ablation studies.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblation executes the four ablation studies.
func RunAblation(scale Scale) (*AblationResult, error) {
	p := ParamsFor(scale)
	res := &AblationResult{}

	if err := ablationTransitionCost(p, res); err != nil {
		return nil, fmt.Errorf("bench: ablation A1: %w", err)
	}
	if err := ablationStateless(p, res); err != nil {
		return nil, fmt.Errorf("bench: ablation A2: %w", err)
	}
	if err := ablationPaging(p, res); err != nil {
		return nil, fmt.Errorf("bench: ablation A3: %w", err)
	}
	if err := ablationReportCache(p, res); err != nil {
		return nil, fmt.Errorf("bench: ablation A4: %w", err)
	}
	if err := ablationBackend(p, res); err != nil {
		return nil, fmt.Errorf("bench: ablation A5: %w", err)
	}
	return res, nil
}

// ablationBackend compares the two state-commitment designs: the default
// Merkle Patricia Trie against the paper's Fig. 4 sparse Merkle tree, on
// update-proof size and certificate construction time.
func ablationBackend(p Params, res *AblationResult) error {
	for _, backend := range []statedb.BackendKind{statedb.BackendMPT, statedb.BackendSMT} {
		dep, err := dcert.NewDeployment(dcert.Config{
			Workload: dcert.KVStore, Contracts: p.Contracts, Accounts: p.Accounts,
			Difficulty: 4, Seed: 5, StateBackend: backend,
		})
		if err != nil {
			return err
		}
		var totalSec float64
		var proofBytes int
		for i := 0; i < p.CertBlocks; i++ {
			txs, err := dep.GenerateBlockTxs(p.DefaultBlockSize)
			if err != nil {
				return err
			}
			blk, err := dep.Miner().Propose(txs)
			if err != nil {
				return err
			}
			ex, err := dep.Issuer().Node().State().ExecuteBlock(dep.Issuer().Node().Registry(), blk.Txs)
			if err != nil {
				return err
			}
			proof, err := dep.Issuer().Node().State().UpdateProofFor(ex)
			if err != nil {
				return err
			}
			proofBytes += proof.EncodedSize()
			_, bd, err := dep.Issuer().ProcessBlock(blk)
			if err != nil {
				return err
			}
			totalSec += bd.Total()
		}
		res.Rows = append(res.Rows,
			AblationRow{Study: "A5 state backend", Setting: backend.String() + " commitment",
				Metric: "update-proof size (KB)", Value: kb(proofBytes / p.CertBlocks)},
			AblationRow{Study: "A5 state backend", Setting: backend.String() + " commitment",
				Metric: "construction (ms/block)", Value: ms(totalSec / float64(p.CertBlocks))},
		)
	}
	return nil
}

// certifyBlocks mines and certifies n blocks, returning mean construction time.
func certifyBlocks(dep *dcert.Deployment, blocks, blockSize int) (float64, error) {
	var total float64
	for i := 0; i < blocks; i++ {
		txs, err := dep.GenerateBlockTxs(blockSize)
		if err != nil {
			return 0, err
		}
		blk, err := dep.Miner().Propose(txs)
		if err != nil {
			return 0, err
		}
		_, bd, err := dep.Issuer().ProcessBlock(blk)
		if err != nil {
			return 0, err
		}
		total += bd.Total()
	}
	return total / float64(blocks), nil
}

// ablationTransitionCost sweeps the Ecall transition latency.
func ablationTransitionCost(p Params, res *AblationResult) error {
	// The top setting is deliberately extreme so the effect clears
	// measurement noise even at small scale.
	for _, lat := range []time.Duration{0, 8 * time.Microsecond, 1 * time.Millisecond, 100 * time.Millisecond} {
		cost := enclave.CostModel{TransitionLatency: lat}
		dep, err := dcert.NewDeployment(dcert.Config{
			Workload: dcert.KVStore, Contracts: p.Contracts, Accounts: p.Accounts,
			Difficulty: 4, EnclaveCost: cost, Seed: 1,
		})
		if err != nil {
			return err
		}
		mean, err := certifyBlocks(dep, p.CertBlocks, p.DefaultBlockSize)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, AblationRow{
			Study:   "A1 transition cost",
			Setting: fmt.Sprintf("ecall latency %v", lat),
			Metric:  "construction (ms/block)",
			Value:   ms(mean),
		})
	}
	return nil
}

// ablationStateless compares the update-proof size against the full state
// size as the chain grows — the data that would otherwise cross the enclave
// boundary under a stateful design.
func ablationStateless(p Params, res *AblationResult) error {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload: dcert.KVStore, Contracts: p.Contracts, Accounts: p.Accounts,
		Difficulty: 4, Seed: 2, KeySpace: 20000,
	})
	if err != nil {
		return err
	}
	checkpoints := map[int]bool{10: true, 40: true, 80: true}
	stateKeys := 0
	for i := 1; i <= 80; i++ {
		txs, err := dep.GenerateBlockTxs(p.DefaultBlockSize)
		if err != nil {
			return err
		}
		blk, err := dep.Miner().Propose(txs)
		if err != nil {
			return err
		}
		// Measure the update proof the CI ships into the enclave.
		ex, err := dep.Issuer().Node().State().ExecuteBlock(dep.Issuer().Node().Registry(), blk.Txs)
		if err != nil {
			return err
		}
		proof, err := dep.Issuer().Node().State().UpdateProofFor(ex)
		if err != nil {
			return err
		}
		stateKeys += len(ex.WriteSet)
		if _, _, err := dep.Issuer().ProcessBlock(blk); err != nil {
			return err
		}
		if checkpoints[i] {
			// Approximate full-state size: keys grow with the chain; the
			// stateless witness stays proportional to the touched set.
			res.Rows = append(res.Rows, AblationRow{
				Study:   "A2 stateless enclave",
				Setting: fmt.Sprintf("block %d (~%d cumulative state writes)", i, stateKeys),
				Metric:  "update-proof size (KB)",
				Value:   kb(proof.EncodedSize()),
			})
		}
	}
	return nil
}

// ablationPaging shrinks the EPC budget below the call input size.
func ablationPaging(p Params, res *AblationResult) error {
	for _, budget := range []int{93 << 20, 64 << 10, 16 << 10} {
		// A deliberately steep paging penalty makes the cliff visible above
		// run-to-run noise even at small scale.
		cost := enclave.CostModel{EPCBudget: budget, PagingPerKB: 500 * time.Microsecond}
		dep, err := dcert.NewDeployment(dcert.Config{
			Workload: dcert.KVStore, Contracts: p.Contracts, Accounts: p.Accounts,
			Difficulty: 4, EnclaveCost: cost, Seed: 3,
		})
		if err != nil {
			return err
		}
		mean, err := certifyBlocks(dep, p.CertBlocks, p.DefaultBlockSize)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, AblationRow{
			Study:   "A3 EPC paging",
			Setting: fmt.Sprintf("EPC budget %d KB", budget/1024),
			Metric:  "construction (ms/block)",
			Value:   ms(mean),
		})
	}
	return nil
}

// ablationReportCache measures cold vs warm client validation.
func ablationReportCache(p Params, res *AblationResult) error {
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload: dcert.KVStore, Contracts: p.Contracts, Accounts: p.Accounts,
		Difficulty: 4, Seed: 4,
	})
	if err != nil {
		return err
	}
	blk, cert, err := dep.MineAndCertify(p.DefaultBlockSize)
	if err != nil {
		return err
	}

	const reps = 50
	var coldSec float64
	for i := 0; i < reps; i++ {
		client := dep.NewSuperlightClient()
		start := time.Now()
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			return err
		}
		coldSec += time.Since(start).Seconds()
	}
	digest := dcert.BlockDigest(&blk.Header)
	var warmSec float64
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := cert.VerifySignatureOnly(digest); err != nil {
			return err
		}
		warmSec += time.Since(start).Seconds()
	}
	res.Rows = append(res.Rows,
		AblationRow{Study: "A4 report caching", Setting: "cold (full attestation path)",
			Metric: "validation (ms)", Value: ms(coldSec / reps)},
		AblationRow{Study: "A4 report caching", Setting: "warm (report cached, §4.3)",
			Metric: "validation (ms)", Value: ms(warmSec / reps)},
	)
	return nil
}

// Table renders the ablation studies.
func (r *AblationResult) Table() *Table {
	t := &Table{
		Title:   "Ablations — design choices isolated",
		Note:    "A1: minimize Ecalls; A2: stateless enclave keeps inputs small; A3: stay within EPC; A4: check the attestation report once; A5: commitment structure trade-off",
		Columns: []string{"study", "setting", "metric", "value"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Study, row.Setting, row.Metric, row.Value})
	}
	return t
}
