// Package vm is the deterministic smart-contract runtime of the substrate
// blockchain. Contracts are host-language implementations of a narrow State
// interface (read/write of byte keys), so that executing a block yields
// exactly the read and write sets the DCert certificate construction needs
// (Alg. 1 line 2), and so the same execution replays identically inside the
// enclave (Alg. 2 lines 18-21).
package vm

import (
	"errors"
	"fmt"

	"dcert/internal/chain"
)

// Package errors.
var (
	// ErrUnknownContract is returned for calls to unregistered contracts.
	ErrUnknownContract = errors.New("vm: unknown contract")
	// ErrUnknownMethod is returned for calls to undefined methods.
	ErrUnknownMethod = errors.New("vm: unknown method")
	// ErrBadArgs is returned for malformed call arguments.
	ErrBadArgs = errors.New("vm: bad arguments")
	// ErrRevert is returned when a contract aborts; its writes are dropped.
	ErrRevert = errors.New("vm: execution reverted")
	// ErrGas is returned when a call exceeds its step budget.
	ErrGas = errors.New("vm: out of gas")
)

// State is the storage interface contracts execute against. Reads of absent
// keys return nil. Writes of empty values are rejected (the state model is
// create/update only, which keeps enclave-side stateless replay witnesses
// minimal).
type State interface {
	// Read returns the value at key, or nil if absent.
	Read(key []byte) ([]byte, error)
	// Write stores value at key; value must be non-empty.
	Write(key, value []byte) error
}

// Contract is a deterministic smart contract.
type Contract interface {
	// Execute runs the method named by tx.Method against st. Returning an
	// error reverts the transaction's writes.
	Execute(st State, tx *chain.Transaction) error
}

// Registry maps contract names to implementations. Registration happens at
// node start-up; execution is read-only on the registry, so a populated
// Registry is safe for concurrent use.
type Registry struct {
	contracts map[string]Contract
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{contracts: make(map[string]Contract)}
}

// Register binds a contract name. Re-registering a name is an error.
func (r *Registry) Register(name string, c Contract) error {
	if name == "" {
		return fmt.Errorf("vm: empty contract name")
	}
	if c == nil {
		return fmt.Errorf("vm: nil contract %q", name)
	}
	if _, ok := r.contracts[name]; ok {
		return fmt.Errorf("vm: contract %q already registered", name)
	}
	r.contracts[name] = c
	return nil
}

// Lookup returns the contract bound to name.
func (r *Registry) Lookup(name string) (Contract, error) {
	c, ok := r.contracts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownContract, name)
	}
	return c, nil
}

// Len returns the number of registered contracts.
func (r *Registry) Len() int {
	return len(r.contracts)
}

// Call dispatches a transaction to its target contract.
func (r *Registry) Call(st State, tx *chain.Transaction) error {
	c, err := r.Lookup(tx.Contract)
	if err != nil {
		return err
	}
	return c.Execute(st, tx)
}

// GasLimit bounds the number of state operations per transaction. It exists
// so hostile transactions cannot stall the certificate issuer's enclave.
const GasLimit = 1 << 20

// MeteredState wraps a State with an operation budget.
type MeteredState struct {
	inner State
	gas   int
}

var _ State = (*MeteredState)(nil)

// NewMeteredState wraps st with the default gas budget.
func NewMeteredState(st State) *MeteredState {
	return &MeteredState{inner: st, gas: GasLimit}
}

// Read implements State.
func (m *MeteredState) Read(key []byte) ([]byte, error) {
	if m.gas--; m.gas < 0 {
		return nil, ErrGas
	}
	return m.inner.Read(key)
}

// Write implements State.
func (m *MeteredState) Write(key, value []byte) error {
	if m.gas--; m.gas < 0 {
		return ErrGas
	}
	return m.inner.Write(key, value)
}
