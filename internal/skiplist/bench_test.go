package skiplist

import (
	"fmt"
	"testing"
)

func populated(b *testing.B, n int) *List {
	b.Helper()
	l := New()
	for i := 0; i < n; i++ {
		l.Insert(uint64(i), []byte(fmt.Sprintf("v%d", i)))
	}
	l.Root()
	return l
}

func BenchmarkRangeScan(b *testing.B) {
	l := populated(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Range(4000, 4200); err != nil {
			b.Fatalf("Range: %v", err)
		}
	}
}

func BenchmarkProveRange(b *testing.B) {
	l := populated(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ProveRange(4000, 4200); err != nil {
			b.Fatalf("ProveRange: %v", err)
		}
	}
}

func BenchmarkVerifyRange(b *testing.B) {
	l := populated(b, 10000)
	root := l.Root()
	proof, err := l.ProveRange(4000, 4200)
	if err != nil {
		b.Fatalf("ProveRange: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerifyRange(root, 4000, 4200, proof); err != nil {
			b.Fatalf("VerifyRange: %v", err)
		}
	}
}
