package core

import (
	"fmt"
	"sync"
	"time"

	"dcert/internal/chain"
	"dcert/internal/network"
)

// Client-side certificate catch-up (the liveness half of the fault-tolerant
// certification plane). A superlight client normally just consumes the
// certificate stream; under message loss or a partition the stream can stall
// forever. The Follower detects the stall and explicitly re-requests the
// latest certificate on TopicCertRequests; any live CertResponder answers by
// re-publishing its newest ⟨header, certificate⟩ bundle — one accepted
// bundle brings the client fully current (the superlight catch-up property).

// CertBundle pairs a header with its certificate — the unit a superlight
// client needs to adopt a new tip, published on TopicCerts.
type CertBundle struct {
	// Header is the certified block header.
	Header *chain.Header
	// Cert is the certificate over H(Header).
	Cert *Certificate
}

// CertRequest asks live issuers to re-publish their latest bundle.
type CertRequest struct {
	// From identifies the requesting client (diagnostics only).
	From string
	// Height is the requester's current tip height; responders whose tip is
	// not ahead may stay silent.
	Height uint64
}

// FollowerConfig tunes a certificate follower.
type FollowerConfig struct {
	// Name identifies the follower on the fabric (default "client").
	Name string
	// StallDeadline is how long the cert stream may stay silent before the
	// follower re-requests the latest certificate (default 200ms).
	StallDeadline time.Duration
	// QueueDepth is the cert subscription's buffer (default 64).
	QueueDepth int
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.Name == "" {
		c.Name = "client"
	}
	if c.StallDeadline <= 0 {
		c.StallDeadline = 200 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// FollowerStats counts a follower's activity.
type FollowerStats struct {
	// Accepted is the number of bundles that advanced the client's tip.
	Accepted uint64
	// Rejected is the number of bundles that failed validation or were
	// stale/duplicated (expected under chaotic delivery).
	Rejected uint64
	// Rerequests is the number of stall-triggered catch-up requests sent.
	Rerequests uint64
}

// Follower drives a SuperlightClient from the fabric's certificate stream,
// re-requesting the latest certificate whenever the stream stalls.
type Follower struct {
	client *SuperlightClient
	net    network.Bus
	sub    *network.Subscription
	cfg    FollowerConfig
	done   chan struct{}
	wg     sync.WaitGroup

	mu    sync.Mutex
	stats FollowerStats
}

// FollowCerts starts following certificate bundles on the client's behalf.
func FollowCerts(client *SuperlightClient, net network.Bus, cfg FollowerConfig) *Follower {
	cfg = cfg.withDefaults()
	f := &Follower{
		client: client,
		net:    net,
		sub:    net.Subscribe(network.TopicCerts, cfg.QueueDepth),
		cfg:    cfg,
		done:   make(chan struct{}),
	}
	f.wg.Add(1)
	go f.loop()
	return f
}

// Stop ends the follower.
func (f *Follower) Stop() {
	select {
	case <-f.done:
		return
	default:
	}
	close(f.done)
	f.sub.Cancel()
	f.wg.Wait()
}

// Stats snapshots the follower's counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Client returns the wrapped superlight client.
func (f *Follower) Client() *SuperlightClient {
	return f.client
}

func (f *Follower) loop() {
	defer f.wg.Done()
	stall := time.NewTimer(f.cfg.StallDeadline)
	defer stall.Stop()
	for {
		select {
		case <-f.done:
			return
		case m, ok := <-f.sub.C:
			if !ok {
				return
			}
			var verr error
			switch b := m.Payload.(type) {
			case *CertBundle:
				verr = f.client.ValidateChain(b.Header, b.Cert)
			case *SegmentCert:
				verr = f.client.ValidateSegment(b)
			default:
				continue
			}
			f.mu.Lock()
			if verr == nil {
				f.stats.Accepted++
				// Progress: push the stall horizon out.
				if !stall.Stop() {
					select {
					case <-stall.C:
					default:
					}
				}
				stall.Reset(f.cfg.StallDeadline)
			} else {
				f.stats.Rejected++
			}
			f.mu.Unlock()
		case <-stall.C:
			hdr, _ := f.client.Latest()
			var height uint64
			if hdr != nil {
				height = hdr.Height
			}
			// Publish errors only mean the fabric shut down.
			if err := f.net.Publish(network.TopicCertRequests, f.cfg.Name, &CertRequest{From: f.cfg.Name, Height: height}); err != nil {
				return
			}
			f.mu.Lock()
			f.stats.Rerequests++
			f.mu.Unlock()
			stall.Reset(f.cfg.StallDeadline)
		}
	}
}

// WaitForHeight blocks until the client's tip reaches height (polling; the
// follower keeps validating in the background) or the timeout elapses.
func (f *Follower) WaitForHeight(height uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		hdr, _ := f.client.Latest()
		if hdr != nil && hdr.Height >= height {
			return nil
		}
		if time.Now().After(deadline) {
			cur := uint64(0)
			if hdr != nil {
				cur = hdr.Height
			}
			st := f.Stats()
			return fmt.Errorf("core: follower stuck at height %d, want %d (accepted %d, rejected %d, rerequests %d)",
				cur, height, st.Accepted, st.Rejected, st.Rerequests)
		}
		time.Sleep(time.Millisecond)
	}
}

// CertResponder serves catch-up requests for one issuer: every CertRequest
// whose sender is behind gets the issuer's newest bundle re-published on
// TopicCerts (a broadcast, so all stalled clients benefit from one answer).
type CertResponder struct {
	ci   *Issuer
	net  network.Bus
	name string
	sub  *network.Subscription
	done chan struct{}
	wg   sync.WaitGroup
}

// ServeCertRequests starts answering catch-up requests on the issuer's
// behalf under the given fabric identity.
func ServeCertRequests(ci *Issuer, net network.Bus, name string) *CertResponder {
	r := &CertResponder{
		ci:   ci,
		net:  net,
		name: name,
		sub:  net.Subscribe(network.TopicCertRequests, 64),
		done: make(chan struct{}),
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Stop ends the responder (a killed CI answers nothing).
func (r *CertResponder) Stop() {
	select {
	case <-r.done:
		return
	default:
	}
	close(r.done)
	r.sub.Cancel()
	r.wg.Wait()
}

// LatestBundle returns the issuer's newest ⟨header, certificate⟩ pair, or
// nil before the first certified block.
func (ci *Issuer) LatestBundle() *CertBundle {
	ci.mu.RLock()
	defer ci.mu.RUnlock()
	if ci.lastCert == nil {
		return nil
	}
	tip := ci.node.Tip()
	if ci.lastCert.Digest != BlockDigest(&tip.Header) {
		return nil // mid-certification: tip advanced, cert not recorded yet
	}
	return &CertBundle{Header: &tip.Header, Cert: ci.lastCert}
}

func (r *CertResponder) loop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case m, ok := <-r.sub.C:
			if !ok {
				return
			}
			req, isReq := m.Payload.(*CertRequest)
			if !isReq {
				continue
			}
			// The newest certificate may cover a multi-block segment, in
			// which case there is no per-block bundle for the tip — answer
			// with the whole segment instead.
			var payload any
			if bundle := r.ci.LatestBundle(); bundle != nil && bundle.Header.Height > req.Height {
				payload = bundle
			} else if seg := r.ci.LatestSegment(); seg != nil && seg.End() > req.Height {
				payload = seg
			} else {
				continue // nothing newer to offer
			}
			// Publish errors only mean the fabric shut down.
			if err := r.net.Publish(network.TopicCerts, r.name, payload); err != nil {
				return
			}
		}
	}
}
