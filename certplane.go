package dcert

import (
	"fmt"
	"sync"

	"dcert/internal/core"
	"dcert/internal/node"
)

// The certification plane: redundant certificate issuers over one chain.
// The paper notes the CI is "any SGX full node" and that redundancy restores
// availability (§4.3) — a deployment can run N CIs, each certifying every
// block with its own enclave, and a superlight client accepts a certificate
// from any properly attested enclave, tracking the highest certified height.
// Issuers can be killed (crash: the enclave and its sealed key are lost) and
// restarted (resume from the last persisted certificate, re-certify only the
// blocks missed while down).

// Cert-plane types (package internal/core).
type (
	// CertBundle pairs a header with its certificate for the fabric.
	CertBundle = core.CertBundle
	// CertRequest is a client's explicit catch-up request.
	CertRequest = core.CertRequest
	// CertFollower drives a SuperlightClient from the certificate stream,
	// re-requesting the latest certificate when the stream stalls.
	CertFollower = core.Follower
	// FollowerConfig tunes a CertFollower.
	FollowerConfig = core.FollowerConfig
	// FollowerStats counts a follower's activity.
	FollowerStats = core.FollowerStats
	// CertResponder answers catch-up requests for one issuer.
	CertResponder = core.CertResponder
	// IssuerCheckpoint is a CI's crash-recovery record.
	IssuerCheckpoint = core.IssuerCheckpoint
)

// FollowCerts starts a certificate follower for a client on the
// deployment's fabric.
func (d *Deployment) FollowCerts(client *SuperlightClient, cfg FollowerConfig) *CertFollower {
	return core.FollowCerts(client, d.net, cfg)
}

// ciSlot is one issuer of the certification plane.
type ciSlot struct {
	name      string
	issuer    *core.Issuer // nil while crashed
	node      *node.FullNode
	responder *core.CertResponder
	// checkpoint holds the serialized recovery record persisted before the
	// crash (in a real deployment the CI writes it after every certificate).
	checkpoint []byte
	alive      bool
}

// CertPlane runs N redundant certificate issuers over the deployment's
// chain and publishes one certificate bundle per live issuer per block.
type CertPlane struct {
	d  *Deployment
	mu sync.Mutex
	// slots are the plane's issuers, slot 0 being the deployment's primary.
	slots []*ciSlot
}

// StartCertPlane builds a certification plane of n issuers (n ≥ 1). The
// deployment's primary issuer becomes slot "ci0"; n-1 additional issuers
// ("ci1", ...) are provisioned on the same chain and authority. Every live
// issuer serves catch-up requests on TopicCertRequests. Stop the plane to
// release the responders.
func (d *Deployment) StartCertPlane(n int) (*CertPlane, error) {
	if n < 1 {
		return nil, fmt.Errorf("dcert: cert plane needs at least 1 issuer, got %d", n)
	}
	p := &CertPlane{d: d}
	for i := 0; i < n; i++ {
		ci := d.issuer
		if i > 0 {
			extra, err := d.AddIssuer()
			if err != nil {
				p.Stop()
				return nil, err
			}
			ci = extra
		}
		name := fmt.Sprintf("ci%d", i)
		p.slots = append(p.slots, &ciSlot{
			name:      name,
			issuer:    ci,
			node:      ci.Node(),
			responder: core.ServeCertRequests(ci, d.net, name),
			alive:     true,
		})
	}
	return p, nil
}

// slot finds an issuer by name.
func (p *CertPlane) slot(name string) (*ciSlot, error) {
	for _, s := range p.slots {
		if s.name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("dcert: unknown issuer %q", name)
}

// Live lists the names of issuers currently certifying.
func (p *CertPlane) Live() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, s := range p.slots {
		if s.alive {
			out = append(out, s.name)
		}
	}
	return out
}

// Issuer returns a live issuer by name.
func (p *CertPlane) Issuer(name string) (*Issuer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.slot(name)
	if err != nil {
		return nil, err
	}
	if !s.alive {
		return nil, fmt.Errorf("dcert: issuer %q is down", name)
	}
	return s.issuer, nil
}

// MineAndBroadcast mines a block of n transactions, has every live issuer
// certify it, feeds the SP, and publishes the block plus one CertBundle per
// live issuer on the fabric. With zero live issuers the block is still mined
// and published — clients simply see no certificate until an issuer returns.
func (p *CertPlane) MineAndBroadcast(n int) (*Block, error) {
	txs, err := p.d.gen.Block(n)
	if err != nil {
		return nil, err
	}
	blk, err := p.d.miner.Propose(txs)
	if err != nil {
		return nil, fmt.Errorf("dcert: propose: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.slots {
		if !s.alive {
			continue
		}
		cert, _, err := s.issuer.ProcessBlock(blk)
		if err != nil {
			return nil, fmt.Errorf("dcert: %s certify: %w", s.name, err)
		}
		if err := p.d.net.Publish(TopicCerts, s.name, &CertBundle{Header: &blk.Header, Cert: cert}); err != nil {
			return nil, err
		}
	}
	if err := p.d.sp.ProcessBlock(blk); err != nil {
		return nil, fmt.Errorf("dcert: SP: %w", err)
	}
	if err := p.d.net.Publish(TopicBlocks, "miner", blk); err != nil {
		return nil, err
	}
	return blk, nil
}

// Kill crashes an issuer: its enclave (and sealed key) is destroyed, its
// responder stops answering, and the plane stops feeding it blocks. The
// issuer's full-node replica and its last persisted certificate survive, as
// they would on the untrusted host's disk.
func (p *CertPlane) Kill(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.slot(name)
	if err != nil {
		return err
	}
	if !s.alive {
		return fmt.Errorf("dcert: issuer %q already down", name)
	}
	if ckpt := s.issuer.Checkpoint(); ckpt != nil {
		s.checkpoint = ckpt.Marshal()
	}
	s.responder.Stop()
	s.responder = nil
	s.issuer = nil
	s.alive = false
	return nil
}

// Restart recovers a crashed issuer: a fresh enclave resumes from the
// persisted checkpoint, re-certifies only the blocks mined while it was
// down (fetching them from the miner, as a recovering full node would from
// its peers), re-publishes its newest bundle, and resumes serving catch-up
// requests.
func (p *CertPlane) Restart(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, err := p.slot(name)
	if err != nil {
		return err
	}
	if s.alive {
		return fmt.Errorf("dcert: issuer %q is not down", name)
	}
	var ckpt *core.IssuerCheckpoint
	if s.checkpoint != nil {
		if ckpt, err = core.UnmarshalIssuerCheckpoint(s.checkpoint); err != nil {
			return fmt.Errorf("dcert: restart %s: %w", name, err)
		}
	}
	platform, err := p.d.authority.NewPlatform()
	if err != nil {
		return fmt.Errorf("dcert: restart %s: %w", name, err)
	}
	ci, err := core.ResumeIssuer(s.node, p.d.authority, platform, p.d.cfg.EnclaveCost, ckpt)
	if err != nil {
		return fmt.Errorf("dcert: restart %s: %w", name, err)
	}
	// Catch up: certify the blocks missed while down, continuing the
	// recursion from the checkpointed certificate.
	minerStore := p.d.miner.Store()
	for h := s.node.Tip().Header.Height + 1; h <= minerStore.BestHeight(); h++ {
		blk, err := minerStore.AtHeight(h)
		if err != nil {
			return fmt.Errorf("dcert: restart %s: fetch height %d: %w", name, h, err)
		}
		if _, _, err := ci.ProcessBlock(blk); err != nil {
			return fmt.Errorf("dcert: restart %s: re-certify height %d: %w", name, h, err)
		}
	}
	if bundle := ci.LatestBundle(); bundle != nil {
		if err := p.d.net.Publish(TopicCerts, name, bundle); err != nil {
			return err
		}
	}
	s.issuer = ci
	s.responder = core.ServeCertRequests(ci, p.d.net, name)
	s.alive = true
	if s.name == "ci0" {
		p.d.issuer = ci // keep Deployment.Issuer() pointing at the live primary
	}
	return nil
}

// Stop shuts down the plane's responders (issuers stay usable).
func (p *CertPlane) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.slots {
		if s.responder != nil {
			s.responder.Stop()
			s.responder = nil
		}
	}
}
