package mpt

import (
	"fmt"
	"math/rand"
	"testing"

	"dcert/internal/chash"
)

// TestGoldenTrieRoot pins the trie root for a fixed insert/delete scenario
// to the digest produced by the original single-threaded implementation:
// the parallel commit must be byte-identical, since state roots are signed
// into certificates.
func TestGoldenTrieRoot(t *testing.T) {
	tr := New()
	for i := 0; i < 32; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("golden/key/%02d", i)), []byte(fmt.Sprintf("golden-value-%d", i*i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < 32; i += 5 {
		if err := tr.Delete([]byte(fmt.Sprintf("golden/key/%02d", i))); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	const want = "77d8171d26d84ad8d5a7e6b081081dd584c352f94e04c75b2cea8f04ab91cbab"
	h, err := tr.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if h.Hex() != want {
		t.Fatalf("root = %s, want %s", h.Hex(), want)
	}
}

// TestParallelHashEquivalence drives two identical tries through randomized
// insert/update/delete batches, committing one with the parallel Hash and
// the other with the sequential reference, and asserts the roots agree at
// every commit point.
func TestParallelHashEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	par, seq := New(), New()
	apply := func(key, val []byte, del bool) {
		for _, tr := range []*Trie{par, seq} {
			var err error
			if del {
				err = tr.Delete(key)
			} else {
				err = tr.Put(key, val)
			}
			if err != nil {
				t.Fatalf("mutate: %v", err)
			}
		}
	}
	for round := 0; round < 6; round++ {
		batch := 1 << (round + 2) // 4 .. 128 dirty keys spans both sides of parallelDirtyMin
		for j := 0; j < batch; j++ {
			k := []byte(fmt.Sprintf("acct-%06d", rng.Intn(2000)))
			if rng.Intn(5) == 0 {
				apply(k, nil, true)
				continue
			}
			apply(k, []byte(fmt.Sprintf("v-%d-%d", round, rng.Int63())), false)
		}
		hp, err := par.Hash()
		if err != nil {
			t.Fatalf("round %d: parallel Hash: %v", round, err)
		}
		hs, err := seq.HashSequential()
		if err != nil {
			t.Fatalf("round %d: sequential Hash: %v", round, err)
		}
		if hp != hs {
			t.Fatalf("round %d: parallel root %s != sequential root %s", round, hp, hs)
		}
	}
}

// TestParallelHashPartialTrie exercises the fan-out on a witness-backed
// partial trie: stateless updates must produce the same root whether hashed
// in parallel or sequentially.
func TestParallelHashPartialTrie(t *testing.T) {
	full := New()
	for i := 0; i < 512; i++ {
		if err := full.Put([]byte(fmt.Sprintf("acct-%06d", i)), []byte(fmt.Sprintf("bal-%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	root, err := full.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("acct-%06d", i*7))
	}
	w, err := full.WitnessForKeys(keys)
	if err != nil {
		t.Fatalf("WitnessForKeys: %v", err)
	}

	update := func(hash func(*Trie) (chash.Hash, error)) chash.Hash {
		t.Helper()
		pt := NewPartial(root, w)
		for i, k := range keys {
			if err := pt.Put(k, []byte(fmt.Sprintf("new-%d", i))); err != nil {
				t.Fatalf("partial Put: %v", err)
			}
		}
		h, err := hash(pt)
		if err != nil {
			t.Fatalf("partial Hash: %v", err)
		}
		return h
	}
	hp := update((*Trie).Hash)
	hs := update((*Trie).HashSequential)
	if hp != hs {
		t.Fatalf("partial trie: parallel root %s != sequential root %s", hp, hs)
	}
	// And both must match re-committing the same writes on the full trie.
	for i, k := range keys {
		if err := full.Put(k, []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatalf("full Put: %v", err)
		}
	}
	hf, err := full.Hash()
	if err != nil {
		t.Fatalf("full Hash: %v", err)
	}
	if hf != hp {
		t.Fatalf("full root %s != partial root %s", hf, hp)
	}
}
