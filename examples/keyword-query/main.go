// Keyword-query: conjunctive keyword search over blockchain transactions
// (the paper's §5.4, q = [Stock AND Bank] example) with verified results.
//
// An inverted keyword index (keyword → authenticated posting list) is
// maintained by the untrusted service provider and certified by the CI's
// enclave on every block. The superlight client runs a conjunctive query and
// verifies each posting list is complete before intersecting them, so the SP
// can neither fabricate nor hide matching transactions.
//
// Run with:
//
//	go run ./examples/keyword-query
package main

import (
	"fmt"
	"os"

	"dcert"
)

func main() {
	logger := dcert.NewLogger(os.Stderr, dcert.LogInfo, dcert.LogF("node", "keyword-query"))
	dep, err := dcert.NewDeployment(dcert.Config{
		Workload:  dcert.SmallBank,
		Contracts: 3,
		Accounts:  12,
		KeySpace:  30,
		Seed:      5,
	})
	if err != nil {
		logger.Fatal("deployment", dcert.LogF("err", err))
	}
	if _, err := dep.AddIndex(func() (*dcert.AuthIndex, error) {
		return dcert.NewKeywordIndex("keywords")
	}); err != nil {
		logger.Fatal("add index", dcert.LogF("err", err))
	}
	client := dep.NewSuperlightClient()

	fmt.Println("building a chain with a certified keyword index...")
	for i := 0; i < 15; i++ {
		blk, blkCert, idxCerts, err := dep.MineAndCertifyHierarchical(25, []string{"keywords"})
		if err != nil {
			logger.Fatal("block failed", dcert.LogF("height", i), dcert.LogF("err", err))
		}
		if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
			logger.Fatal("chain validation", dcert.LogF("err", err))
		}
		ix, err := dep.SP().Index("keywords")
		if err != nil {
			logger.Fatal("index", dcert.LogF("err", err))
		}
		root, err := ix.Root()
		if err != nil {
			logger.Fatal("root", dcert.LogF("err", err))
		}
		if err := client.ValidateIndex("keywords", &blk.Header, root, idxCerts[0]); err != nil {
			logger.Fatal("index certificate", dcert.LogF("err", err))
		}
	}
	certifiedRoot, _, err := client.IndexRoot("keywords")
	if err != nil {
		logger.Fatal("index root", dcert.LogF("err", err))
	}

	// Conjunctive query: transactions that are send_payment calls on a
	// specific contract instance (both keywords must match one tx).
	queries := [][]string{
		{"send_payment"},
		{"SB-0001", "send_payment"},
		{"SB-0001", "amalgamate"},
		{"deposit_check", "update_saving"}, // mutually exclusive → no hits
	}
	for _, q := range queries {
		res, err := dep.SP().KeywordQuery("keywords", q)
		if err != nil {
			logger.Fatal("query failed", dcert.LogF("query", q), dcert.LogF("err", err))
		}
		if err := dcert.VerifyKeyword(certifiedRoot, res); err != nil {
			logger.Fatal("keyword verification failed", dcert.LogF("query", q), dcert.LogF("err", err))
		}
		fmt.Printf("\nquery %v: %d verified matches (proof %d B)\n", q, len(res.Matches), res.ProofSize())
		for i, m := range res.Matches {
			if i >= 3 {
				fmt.Printf("  ... and %d more\n", len(res.Matches)-3)
				break
			}
			fmt.Printf("  block %d, tx %s\n", m.Version>>20, m.TxHash)
		}
	}

	// A forged match is rejected by the verifier.
	res, err := dep.SP().KeywordQuery("keywords", []string{"send_payment"})
	if err != nil {
		logger.Fatal("query", dcert.LogF("err", err))
	}
	if len(res.Matches) > 1 {
		res.Matches = res.Matches[:len(res.Matches)-1] // SP hides a match
		if err := dcert.VerifyKeyword(certifiedRoot, res); err != nil {
			fmt.Printf("\nhiding a matching transaction is caught: %v\n", err)
		} else {
			logger.Fatal("BUG: hidden match went undetected")
		}
	}
}
