package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"small": Small, "": Small, "paper": Paper, "FULL": Paper} {
		got, err := ParseScale(in)
		if err != nil {
			t.Fatalf("ParseScale(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseScale(%q) = %v", in, got)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("want error for unknown scale")
	}
	if Small.String() != "small" || Paper.String() != "paper" {
		t.Fatal("Scale.String mismatch")
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Note:    "note",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "note", "long-column", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunParams(t *testing.T) {
	tab := RunParams(Small)
	if len(tab.Rows) < 5 {
		t.Fatalf("Table 1 has %d rows", len(tab.Rows))
	}
	pp := ParamsFor(Paper)
	if pp.DefaultBlockSize != 2000 || pp.Contracts != 500 {
		t.Fatalf("paper params must match Table 1: %+v", pp)
	}
	sp := ParamsFor(Small)
	if sp.QueryChainBlocks >= pp.QueryChainBlocks {
		t.Fatal("small scale must be smaller than paper scale")
	}
}

func TestRunFig7ShapeHolds(t *testing.T) {
	res, err := RunFig7(Small)
	if err != nil {
		t.Fatalf("RunFig7: %v", err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("fig7 has %d points", len(res.Points))
	}
	var prevLight int
	var superSizes []int
	for _, pt := range res.Points {
		if pt.LightStorage <= prevLight {
			t.Fatalf("light storage must grow with chain length: %+v", pt)
		}
		prevLight = pt.LightStorage
		superSizes = append(superSizes, pt.SuperStorage)
	}
	for _, s := range superSizes[1:] {
		if s != superSizes[0] {
			t.Fatalf("superlight storage must be constant: %v", superSizes)
		}
	}
	// At the largest measured length, light validation must exceed
	// superlight validation.
	last := res.Points[len(res.Points)-1]
	if last.LightValidate <= last.SuperValidate {
		t.Fatalf("light validation (%v) should exceed superlight (%v) at length %d",
			last.LightValidate, last.SuperValidate, last.ChainLength)
	}
	res.Table().Fprint(&strings.Builder{})
}

func TestRunFig8ShapeHolds(t *testing.T) {
	res, err := RunFig8(Small)
	if err != nil {
		t.Fatalf("RunFig8: %v", err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("fig8 has %d points, want 5 workloads", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Total() <= 0 {
			t.Fatalf("%s: zero total", pt.Workload)
		}
		if pt.EnclaveFactor < 1 {
			t.Fatalf("%s: enclave factor %v < 1", pt.Workload, pt.EnclaveFactor)
		}
		// The calibrated model keeps the factor in the paper's ballpark.
		if pt.EnclaveFactor > 3 {
			t.Fatalf("%s: enclave factor %v implausibly high", pt.Workload, pt.EnclaveFactor)
		}
	}
	res.Table().Fprint(&strings.Builder{})
}

func TestRunFig9ShapeHolds(t *testing.T) {
	res, err := RunFig9(Small)
	if err != nil {
		t.Fatalf("RunFig9: %v", err)
	}
	p := ParamsFor(Small)
	if len(res.Points) != 2*len(p.BlockSizes) {
		t.Fatalf("fig9 has %d points", len(res.Points))
	}
	// Within each workload, total time must grow from smallest to largest
	// block size.
	byWorkload := map[string][]Fig8Point{}
	for _, pt := range res.Points {
		byWorkload[pt.Workload.String()] = append(byWorkload[pt.Workload.String()], pt)
	}
	for w, pts := range byWorkload {
		first, last := pts[0], pts[len(pts)-1]
		if last.Total() <= first.Total() {
			t.Fatalf("%s: total did not grow with block size (%v → %v)", w, first.Total(), last.Total())
		}
	}
	res.Table().Fprint(&strings.Builder{})
}

func TestRunFig10ShapeHolds(t *testing.T) {
	res, err := RunFig10(Small)
	if err != nil {
		t.Fatalf("RunFig10: %v", err)
	}
	byScheme := map[string]map[int]Fig10Point{}
	for _, pt := range res.Points {
		if byScheme[pt.Scheme] == nil {
			byScheme[pt.Scheme] = map[int]Fig10Point{}
		}
		byScheme[pt.Scheme][pt.Indexes] = pt
	}
	p := ParamsFor(Small)
	maxIdx := p.IndexCounts[len(p.IndexCounts)-1]
	aug, hier := byScheme["augmented"], byScheme["hierarchical"]
	// At many indexes the hierarchical scheme must win decisively.
	if hier[maxIdx].Construction >= aug[maxIdx].Construction {
		t.Fatalf("hierarchical (%v) must beat augmented (%v) at %d indexes",
			hier[maxIdx].Construction, aug[maxIdx].Construction, maxIdx)
	}
	// Augmented grows steeply with index count; hierarchical only mildly.
	augGrowth := aug[maxIdx].Construction / aug[1].Construction
	hierGrowth := hier[maxIdx].Construction / hier[1].Construction
	if augGrowth <= hierGrowth {
		t.Fatalf("augmented growth (%.2fx) must exceed hierarchical growth (%.2fx)", augGrowth, hierGrowth)
	}
	// Ecall counts match the schemes' designs: augmented = N, hierarchical = N+1.
	if aug[4].Ecalls != 4 || hier[4].Ecalls != 5 {
		t.Fatalf("ecalls: augmented=%v hierarchical=%v, want 4 and 5", aug[4].Ecalls, hier[4].Ecalls)
	}
	res.Table().Fprint(&strings.Builder{})
}

func TestRunFig11ShapeHolds(t *testing.T) {
	res, err := RunFig11(Small)
	if err != nil {
		t.Fatalf("RunFig11: %v", err)
	}
	p := ParamsFor(Small)
	if len(res.Points) != 2*len(p.WindowBlocks) {
		t.Fatalf("fig11 has %d points", len(res.Points))
	}
	// For every window the DCert index must produce smaller proofs than the
	// skip-list baseline (the paper's headline for Fig. 11b).
	byWindow := map[int]map[string]Fig11Point{}
	for _, pt := range res.Points {
		if byWindow[pt.WindowBlocks] == nil {
			byWindow[pt.WindowBlocks] = map[string]Fig11Point{}
		}
		byWindow[pt.WindowBlocks][pt.Design] = pt
	}
	for w, m := range byWindow {
		if m["dcert"].ProofSize >= m["lineagechain"].ProofSize {
			t.Fatalf("window %d: dcert proof %d must be smaller than baseline %d",
				w, m["dcert"].ProofSize, m["lineagechain"].ProofSize)
		}
		if m["dcert"].Results != m["lineagechain"].Results {
			t.Fatalf("window %d: result sets differ between designs", w)
		}
	}
	res.Table().Fprint(&strings.Builder{})
}

func TestRunHeadline(t *testing.T) {
	res, err := RunHeadline(Small)
	if err != nil {
		t.Fatalf("RunHeadline: %v", err)
	}
	if res.StorageBytes < 1024 || res.StorageBytes > 8192 {
		t.Fatalf("storage %d bytes outside plausible range", res.StorageBytes)
	}
	if res.BootstrapWarm <= 0 || res.BootstrapWarm > 0.05 {
		t.Fatalf("warm bootstrap %v s implausible", res.BootstrapWarm)
	}
	// Cold includes the attestation path, so it should not be drastically
	// faster than warm; allow scheduler noise on loaded machines.
	if res.BootstrapCold < res.BootstrapWarm/2 {
		t.Fatalf("cold bootstrap (%v) should not beat warm (%v)", res.BootstrapCold, res.BootstrapWarm)
	}
	if res.Construction >= 15 {
		t.Fatalf("construction %v s exceeds the block interval", res.Construction)
	}
	res.Table().Fprint(&strings.Builder{})
}

func TestRunAblationShapeHolds(t *testing.T) {
	res, err := RunAblation(Small)
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	byStudy := map[string][]AblationRow{}
	for _, row := range res.Rows {
		byStudy[row.Study] = append(byStudy[row.Study], row)
	}
	if len(byStudy) != 5 {
		t.Fatalf("expected 5 studies, got %d", len(byStudy))
	}
	// A1: a 100 ms per-ecall latency must visibly dominate the zero-latency
	// baseline (the signal is ~100 ms/block, far above scheduler noise even
	// when the whole suite runs in parallel).
	a1 := byStudy["A1 transition cost"]
	if parseMS(t, a1[len(a1)-1].Value) < parseMS(t, a1[0].Value)+50 {
		t.Fatalf("A1: higher ecall latency should not be cheaper: %v vs %v", a1[0].Value, a1[len(a1)-1].Value)
	}
	// A3: shrinking the EPC budget far below the witness size must cost more.
	a3 := byStudy["A3 EPC paging"]
	if parseMS(t, a3[len(a3)-1].Value) <= parseMS(t, a3[0].Value) {
		t.Fatalf("A3: tiny EPC budget should be slower: %v vs %v", a3[0].Value, a3[len(a3)-1].Value)
	}
	// A4: warm validation must beat cold validation.
	a4 := byStudy["A4 report caching"]
	if parseMS(t, a4[1].Value) >= parseMS(t, a4[0].Value) {
		t.Fatalf("A4: warm (%s) must beat cold (%s)", a4[1].Value, a4[0].Value)
	}
	// A5: both backends produce working measurements.
	if len(byStudy["A5 state backend"]) != 4 {
		t.Fatalf("A5: got %d rows", len(byStudy["A5 state backend"]))
	}
	res.Table().Fprint(&strings.Builder{})
}

func parseMS(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestRunVendors(t *testing.T) {
	res, err := RunVendors(Small)
	if err != nil {
		t.Fatalf("RunVendors: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 vendors, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Construction <= 0 {
			t.Fatalf("%s: zero construction time", row.Vendor)
		}
		if row.InsideShare <= 0 || row.InsideShare >= 1 {
			t.Fatalf("%s: implausible trusted share %v", row.Vendor, row.InsideShare)
		}
	}
	res.Table().Fprint(&strings.Builder{})
}

func TestRunServingGatesHold(t *testing.T) {
	res, err := RunServing(Small)
	if err != nil {
		t.Fatalf("RunServing: %v", err)
	}
	// Every response the load generator received must have verified.
	wantVerified := res.Clients*2 + res.BurstWaiters + 8*(res.BatchK+1)
	if res.Verified != wantVerified {
		t.Fatalf("verified %d responses, want %d", res.Verified, wantVerified)
	}
	// Gate 1: the 4-replica fleet must model ≥3× the single SP.
	if res.Replicas != 4 {
		t.Fatalf("expected 4 replicas, got %d", res.Replicas)
	}
	if res.SpeedupModeled < 3 {
		t.Fatalf("modeled fleet speedup %.2fx < 3x (single %.0f rps, fleet %.0f rps)",
			res.SpeedupModeled, res.SingleSP.ModeledRPS, res.Fleet.ModeledRPS)
	}
	// Gate 2: a 100-way cold-key burst collapses to one computation.
	if res.BurstComputations != 1 {
		t.Fatalf("burst ran %d computations, want 1 (collapsed %d of %d)",
			res.BurstComputations, res.BurstCollapsed, res.BurstWaiters)
	}
	// Gate 3: one K-key multiproof beats K sequential round trips by ≥2x.
	if res.BatchRatio >= 0.5 {
		t.Fatalf("batch ratio %.3f ≥ 0.5 (batch %.2f ms vs sequential %.2f ms)",
			res.BatchRatio, res.BatchMS, res.SequentialMS)
	}
	if res.Fleet.HitRate <= 0.5 {
		t.Fatalf("fleet hit rate %.3f implausibly low for a hot-key working set", res.Fleet.HitRate)
	}
	res.Table().Fprint(&strings.Builder{})
}
