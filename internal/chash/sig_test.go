package chash

import (
	"errors"
	"testing"
)

func mustKey(t *testing.T) (*PrivateKey, *PublicKey) {
	t.Helper()
	sk, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	pk, err := sk.Public()
	if err != nil {
		t.Fatalf("Public: %v", err)
	}
	return sk, pk
}

func TestSignVerify(t *testing.T) {
	sk, pk := mustKey(t)
	digest := Leaf([]byte("message"))

	sig, err := sk.Sign(digest)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := pk.Verify(digest, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsWrongDigest(t *testing.T) {
	sk, pk := mustKey(t)
	sig, err := sk.Sign(Leaf([]byte("signed")))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	err = pk.Verify(Leaf([]byte("other")), sig)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	sk, _ := mustKey(t)
	_, otherPK := mustKey(t)
	digest := Leaf([]byte("message"))
	sig, err := sk.Sign(digest)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := otherPK.Verify(digest, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestVerifyRejectsMangledSignature(t *testing.T) {
	sk, pk := mustKey(t)
	digest := Leaf([]byte("message"))
	sig, err := sk.Sign(digest)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	sig[len(sig)/2] ^= 0xff
	if err := pk.Verify(digest, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	sk, pk := mustKey(t)
	parsed, err := ParsePublicKey(pk.Marshal())
	if err != nil {
		t.Fatalf("ParsePublicKey: %v", err)
	}
	if !parsed.Equal(pk) {
		t.Fatal("round-tripped key not equal to original")
	}

	digest := Leaf([]byte("via parsed key"))
	sig, err := sk.Sign(digest)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := parsed.Verify(digest, sig); err != nil {
		t.Fatalf("Verify via parsed key: %v", err)
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	if _, err := ParsePublicKey([]byte("garbage")); !errors.Is(err, ErrBadPublicKey) {
		t.Fatalf("want ErrBadPublicKey, got %v", err)
	}
}

func TestFingerprintStable(t *testing.T) {
	_, pk := mustKey(t)
	if pk.Fingerprint() != pk.Fingerprint() {
		t.Fatal("fingerprint must be deterministic")
	}
	_, other := mustKey(t)
	if pk.Fingerprint() == other.Fingerprint() {
		t.Fatal("distinct keys must have distinct fingerprints")
	}
}

func TestPublicKeyEqualNil(t *testing.T) {
	_, pk := mustKey(t)
	if pk.Equal(nil) {
		t.Fatal("Equal(nil) must be false")
	}
}
