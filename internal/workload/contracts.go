// Package workload implements the Blockbench benchmark suite (Dinh et al.,
// SIGMOD'17) used throughout the DCert paper's evaluation: the
// micro-benchmarks DoNothing (DN), CPUHeavy (CPU), and IOHeavy (IO), and the
// macro-benchmarks KVStore (KV) and SmallBank (SB). It also provides
// deterministic transaction generators matching the paper's setup (500
// deployed contracts, randomly generated sender accounts).
package workload

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dcert/internal/chain"
	"dcert/internal/vm"
)

// Kind identifies a Blockbench workload.
type Kind int

// Workload kinds, in the order the paper's figures list them.
const (
	DoNothing Kind = iota + 1
	CPUHeavy
	IOHeavy
	KVStore
	SmallBank
)

// AllKinds lists every workload in presentation order.
func AllKinds() []Kind {
	return []Kind{DoNothing, CPUHeavy, IOHeavy, KVStore, SmallBank}
}

// String returns the paper's abbreviation for the workload.
func (k Kind) String() string {
	switch k {
	case DoNothing:
		return "DN"
	case CPUHeavy:
		return "CPU"
	case IOHeavy:
		return "IO"
	case KVStore:
		return "KV"
	case SmallBank:
		return "SB"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Contract returns a fresh contract implementation for the workload.
func (k Kind) Contract() (vm.Contract, error) {
	switch k {
	case DoNothing:
		return doNothingContract{}, nil
	case CPUHeavy:
		return cpuHeavyContract{}, nil
	case IOHeavy:
		return ioHeavyContract{}, nil
	case KVStore:
		return kvStoreContract{}, nil
	case SmallBank:
		return smallBankContract{}, nil
	default:
		return nil, fmt.Errorf("workload: unknown kind %d", int(k))
	}
}

// storageKey namespaces a contract instance's storage.
func storageKey(tx *chain.Transaction, parts ...string) []byte {
	key := "ct/" + tx.Contract
	for _, p := range parts {
		key += "/" + p
	}
	return []byte(key)
}

// u64 encodes an integer state value.
func u64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// parseU64 decodes an integer state value; absent (nil) reads as zero.
func parseU64(b []byte) (uint64, error) {
	if b == nil {
		return 0, nil
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: want 8-byte integer, got %d bytes", vm.ErrBadArgs, len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// doNothingContract is Blockbench DN: the transaction carries payload but
// touches no state, isolating consensus/bookkeeping overhead.
type doNothingContract struct{}

var _ vm.Contract = doNothingContract{}

// Execute implements vm.Contract.
func (doNothingContract) Execute(_ vm.State, tx *chain.Transaction) error {
	if tx.Method != "noop" {
		return fmt.Errorf("%w: %q", vm.ErrUnknownMethod, tx.Method)
	}
	return nil
}

// cpuHeavyContract is Blockbench CPU: sorts a pseudo-random array derived
// from the seed argument, exercising pure computation.
//
// Method "sort": args = [seed (8 bytes), size (8 bytes)].
type cpuHeavyContract struct{}

var _ vm.Contract = cpuHeavyContract{}

// maxSortSize bounds the per-transaction sort to keep gas semantics sane.
const maxSortSize = 1 << 16

// Execute implements vm.Contract.
func (cpuHeavyContract) Execute(st vm.State, tx *chain.Transaction) error {
	if tx.Method != "sort" {
		return fmt.Errorf("%w: %q", vm.ErrUnknownMethod, tx.Method)
	}
	if len(tx.Args) != 2 || len(tx.Args[0]) != 8 || len(tx.Args[1]) != 8 {
		return fmt.Errorf("%w: sort(seed, size)", vm.ErrBadArgs)
	}
	seed := binary.BigEndian.Uint64(tx.Args[0])
	size := binary.BigEndian.Uint64(tx.Args[1])
	if size == 0 || size > maxSortSize {
		return fmt.Errorf("%w: size %d out of range", vm.ErrBadArgs, size)
	}
	// Deterministic xorshift fill, then sort.
	arr := make([]uint64, size)
	x := seed | 1
	for i := range arr {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		arr[i] = x
	}
	sort.Slice(arr, func(i, j int) bool { return arr[i] < arr[j] })
	// Record a digest of the result so the computation is observable state.
	return st.Write(storageKey(tx, "sorted", fmt.Sprintf("%d", seed)), u64(arr[0]^arr[size-1]))
}

// ioHeavyContract is Blockbench IO: bulk writes and scans over a key range,
// exercising the state tree.
//
// Methods:
//
//	"write": args = [start (8 bytes), count (8 bytes), blob]
//	"scan":  args = [start (8 bytes), count (8 bytes)]
type ioHeavyContract struct{}

var _ vm.Contract = ioHeavyContract{}

// maxIOCount bounds per-transaction key touches.
const maxIOCount = 1 << 12

// Execute implements vm.Contract.
func (ioHeavyContract) Execute(st vm.State, tx *chain.Transaction) error {
	switch tx.Method {
	case "write":
		if len(tx.Args) != 3 || len(tx.Args[0]) != 8 || len(tx.Args[1]) != 8 {
			return fmt.Errorf("%w: write(start, count, blob)", vm.ErrBadArgs)
		}
		start := binary.BigEndian.Uint64(tx.Args[0])
		count := binary.BigEndian.Uint64(tx.Args[1])
		if count == 0 || count > maxIOCount {
			return fmt.Errorf("%w: count %d out of range", vm.ErrBadArgs, count)
		}
		blob := tx.Args[2]
		if len(blob) == 0 {
			blob = []byte{0}
		}
		for i := uint64(0); i < count; i++ {
			if err := st.Write(storageKey(tx, "row", fmt.Sprintf("%d", start+i)), blob); err != nil {
				return err
			}
		}
		return nil
	case "scan":
		if len(tx.Args) != 2 || len(tx.Args[0]) != 8 || len(tx.Args[1]) != 8 {
			return fmt.Errorf("%w: scan(start, count)", vm.ErrBadArgs)
		}
		start := binary.BigEndian.Uint64(tx.Args[0])
		count := binary.BigEndian.Uint64(tx.Args[1])
		if count == 0 || count > maxIOCount {
			return fmt.Errorf("%w: count %d out of range", vm.ErrBadArgs, count)
		}
		var checksum uint64
		for i := uint64(0); i < count; i++ {
			v, err := st.Read(storageKey(tx, "row", fmt.Sprintf("%d", start+i)))
			if err != nil {
				return err
			}
			for _, b := range v {
				checksum = checksum*131 + uint64(b)
			}
		}
		return st.Write(storageKey(tx, "scansum", tx.From.Hex()), u64(checksum))
	default:
		return fmt.Errorf("%w: %q", vm.ErrUnknownMethod, tx.Method)
	}
}

// kvStoreContract is Blockbench KV: a plain key-value store.
//
// Methods:
//
//	"set": args = [key, value]
//	"get": args = [key]
type kvStoreContract struct{}

var _ vm.Contract = kvStoreContract{}

// Execute implements vm.Contract.
func (kvStoreContract) Execute(st vm.State, tx *chain.Transaction) error {
	switch tx.Method {
	case "set":
		if len(tx.Args) != 2 || len(tx.Args[0]) == 0 || len(tx.Args[1]) == 0 {
			return fmt.Errorf("%w: set(key, value)", vm.ErrBadArgs)
		}
		return st.Write(storageKey(tx, "kv", string(tx.Args[0])), tx.Args[1])
	case "get":
		if len(tx.Args) != 1 || len(tx.Args[0]) == 0 {
			return fmt.Errorf("%w: get(key)", vm.ErrBadArgs)
		}
		_, err := st.Read(storageKey(tx, "kv", string(tx.Args[0])))
		return err
	default:
		return fmt.Errorf("%w: %q", vm.ErrUnknownMethod, tx.Method)
	}
}

// smallBankContract is Blockbench SB: the SmallBank OLTP schema with
// checking and savings balances per customer.
//
// Methods (amounts are 8-byte big-endian):
//
//	"send_payment":   args = [from, to, amount]         checking → checking
//	"write_check":    args = [acct, amount]             checking -= amount
//	"deposit_check":  args = [acct, amount]             checking += amount
//	"update_saving":  args = [acct, amount]             savings += amount
//	"amalgamate":     args = [src, dst]                 all funds → dst checking
//	"get_balance":    args = [acct]                     read both balances
type smallBankContract struct{}

var _ vm.Contract = smallBankContract{}

func (smallBankContract) checking(tx *chain.Transaction, acct string) []byte {
	return storageKey(tx, "checking", acct)
}

func (smallBankContract) savings(tx *chain.Transaction, acct string) []byte {
	return storageKey(tx, "savings", acct)
}

func readU64(st vm.State, key []byte) (uint64, error) {
	raw, err := st.Read(key)
	if err != nil {
		return 0, err
	}
	return parseU64(raw)
}

// Execute implements vm.Contract.
func (c smallBankContract) Execute(st vm.State, tx *chain.Transaction) error {
	argU64 := func(i int) (uint64, error) {
		if i >= len(tx.Args) || len(tx.Args[i]) != 8 {
			return 0, fmt.Errorf("%w: arg %d must be 8 bytes", vm.ErrBadArgs, i)
		}
		return binary.BigEndian.Uint64(tx.Args[i]), nil
	}
	argStr := func(i int) (string, error) {
		if i >= len(tx.Args) || len(tx.Args[i]) == 0 {
			return "", fmt.Errorf("%w: arg %d must be an account id", vm.ErrBadArgs, i)
		}
		return string(tx.Args[i]), nil
	}

	switch tx.Method {
	case "send_payment":
		from, err := argStr(0)
		if err != nil {
			return err
		}
		to, err := argStr(1)
		if err != nil {
			return err
		}
		amount, err := argU64(2)
		if err != nil {
			return err
		}
		fromBal, err := readU64(st, c.checking(tx, from))
		if err != nil {
			return err
		}
		if fromBal < amount {
			return fmt.Errorf("%w: insufficient funds", vm.ErrRevert)
		}
		toBal, err := readU64(st, c.checking(tx, to))
		if err != nil {
			return err
		}
		if err := st.Write(c.checking(tx, from), u64(fromBal-amount)); err != nil {
			return err
		}
		return st.Write(c.checking(tx, to), u64(toBal+amount))
	case "write_check":
		acct, err := argStr(0)
		if err != nil {
			return err
		}
		amount, err := argU64(1)
		if err != nil {
			return err
		}
		bal, err := readU64(st, c.checking(tx, acct))
		if err != nil {
			return err
		}
		if bal < amount {
			return fmt.Errorf("%w: insufficient funds", vm.ErrRevert)
		}
		return st.Write(c.checking(tx, acct), u64(bal-amount))
	case "deposit_check":
		acct, err := argStr(0)
		if err != nil {
			return err
		}
		amount, err := argU64(1)
		if err != nil {
			return err
		}
		bal, err := readU64(st, c.checking(tx, acct))
		if err != nil {
			return err
		}
		return st.Write(c.checking(tx, acct), u64(bal+amount))
	case "update_saving":
		acct, err := argStr(0)
		if err != nil {
			return err
		}
		amount, err := argU64(1)
		if err != nil {
			return err
		}
		bal, err := readU64(st, c.savings(tx, acct))
		if err != nil {
			return err
		}
		return st.Write(c.savings(tx, acct), u64(bal+amount))
	case "amalgamate":
		src, err := argStr(0)
		if err != nil {
			return err
		}
		dst, err := argStr(1)
		if err != nil {
			return err
		}
		srcSav, err := readU64(st, c.savings(tx, src))
		if err != nil {
			return err
		}
		srcChk, err := readU64(st, c.checking(tx, src))
		if err != nil {
			return err
		}
		dstChk, err := readU64(st, c.checking(tx, dst))
		if err != nil {
			return err
		}
		if err := st.Write(c.savings(tx, src), u64(0)); err != nil {
			return err
		}
		if err := st.Write(c.checking(tx, src), u64(0)); err != nil {
			return err
		}
		return st.Write(c.checking(tx, dst), u64(dstChk+srcSav+srcChk))
	case "get_balance":
		acct, err := argStr(0)
		if err != nil {
			return err
		}
		if _, err := readU64(st, c.checking(tx, acct)); err != nil {
			return err
		}
		_, err = readU64(st, c.savings(tx, acct))
		return err
	default:
		return fmt.Errorf("%w: %q", vm.ErrUnknownMethod, tx.Method)
	}
}
