package dcert

import (
	"testing"
)

// newTestDeployment builds a small, fast deployment.
func newTestDeployment(t *testing.T, w Workload) *Deployment {
	t.Helper()
	dep, err := NewDeployment(Config{
		Workload:    w,
		Contracts:   4,
		Accounts:    8,
		Difficulty:  2,
		Seed:        7,
		KeySpace:    30,
		CPUSortSize: 32,
		IOOpsPerTx:  3,
	})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	return dep
}

func TestDeploymentEndToEnd(t *testing.T) {
	dep := newTestDeployment(t, KVStore)
	client := dep.NewSuperlightClient()

	for i := 0; i < 5; i++ {
		blk, cert, err := dep.MineAndCertify(10)
		if err != nil {
			t.Fatalf("MineAndCertify(%d): %v", i, err)
		}
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			t.Fatalf("ValidateChain(%d): %v", i, err)
		}
	}
	hdr, _ := client.Latest()
	if hdr.Height != 5 {
		t.Fatalf("client height = %d", hdr.Height)
	}
	if client.StorageSize() == 0 {
		t.Fatal("client must report a storage footprint")
	}
}

func TestDeploymentWithIndexesEndToEnd(t *testing.T) {
	dep := newTestDeployment(t, SmallBank)
	hist, err := dep.AddIndex(func() (*AuthIndex, error) {
		return NewHistoricalIndex("hist", "ct/")
	})
	if err != nil {
		t.Fatalf("AddIndex(hist): %v", err)
	}
	if _, err := dep.AddIndex(func() (*AuthIndex, error) {
		return NewKeywordIndex("kw")
	}); err != nil {
		t.Fatalf("AddIndex(kw): %v", err)
	}
	client := dep.NewSuperlightClient()
	names := []string{"hist", "kw"}

	for i := 0; i < 6; i++ {
		blk, blkCert, idxCerts, err := dep.MineAndCertifyHierarchical(12, names)
		if err != nil {
			t.Fatalf("MineAndCertifyHierarchical(%d): %v", i, err)
		}
		if err := client.ValidateChain(&blk.Header, blkCert); err != nil {
			t.Fatalf("ValidateChain: %v", err)
		}
		for j, name := range names {
			ix, err := dep.SP().Index(name)
			if err != nil {
				t.Fatalf("Index: %v", err)
			}
			r, err := ix.Root()
			if err != nil {
				t.Fatalf("Root: %v", err)
			}
			if err := client.ValidateIndex(name, &blk.Header, r, idxCerts[j]); err != nil {
				t.Fatalf("ValidateIndex(%s): %v", name, err)
			}
		}
	}

	// Run a verified historical query against the certified root.
	root, _, err := client.IndexRoot("hist")
	if err != nil {
		t.Fatalf("IndexRoot: %v", err)
	}
	spRoot, err := hist.Root()
	if err != nil {
		t.Fatalf("hist.Root: %v", err)
	}
	if root != spRoot {
		t.Fatal("client-certified root differs from SP root")
	}
	res, err := dep.SP().HistoricalQuery("hist", "ct/probe", 0, 100)
	if err != nil {
		t.Fatalf("HistoricalQuery: %v", err)
	}
	if err := VerifyHistorical(root, res); err != nil {
		t.Fatalf("VerifyHistorical(absent): %v", err)
	}

	// And a verified keyword query.
	kroot, _, err := client.IndexRoot("kw")
	if err != nil {
		t.Fatalf("IndexRoot(kw): %v", err)
	}
	kres, err := dep.SP().KeywordQuery("kw", []string{"deposit_check"})
	if err != nil {
		t.Fatalf("KeywordQuery: %v", err)
	}
	if err := VerifyKeyword(kroot, kres); err != nil {
		t.Fatalf("VerifyKeyword: %v", err)
	}
}

func TestDeploymentAllWorkloads(t *testing.T) {
	for _, w := range []Workload{DoNothing, CPUHeavy, IOHeavy, KVStore, SmallBank} {
		w := w
		t.Run(w.String(), func(t *testing.T) {
			dep := newTestDeployment(t, w)
			client := dep.NewSuperlightClient()
			blk, cert, err := dep.MineAndCertify(6)
			if err != nil {
				t.Fatalf("MineAndCertify: %v", err)
			}
			if err := client.ValidateChain(&blk.Header, cert); err != nil {
				t.Fatalf("ValidateChain: %v", err)
			}
		})
	}
}

func TestLightClientBaselineTracksChain(t *testing.T) {
	dep := newTestDeployment(t, KVStore)
	lc := dep.NewLightClient()

	for i := 0; i < 4; i++ {
		if _, _, err := dep.MineAndCertify(5); err != nil {
			t.Fatalf("MineAndCertify: %v", err)
		}
	}
	if err := lc.Sync(dep.Miner().Store().Headers()); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if lc.Height() != 4 {
		t.Fatalf("light client height = %d", lc.Height())
	}
	// Light client storage grows with the chain; superlight stays constant.
	client := dep.NewSuperlightClient()
	blk, cert, err := dep.MineAndCertify(5)
	if err != nil {
		t.Fatalf("MineAndCertify: %v", err)
	}
	if err := client.ValidateChain(&blk.Header, cert); err != nil {
		t.Fatalf("ValidateChain: %v", err)
	}
	if lc.StorageSize() <= client.StorageSize()/10 {
		// Not a strict relation at tiny chain lengths; just sanity.
		t.Logf("light=%d superlight=%d", lc.StorageSize(), client.StorageSize())
	}
}

func TestDefaultEnclaveCostModelExposed(t *testing.T) {
	if DefaultEnclaveCostModel().TransitionLatency <= 0 {
		t.Fatal("default cost model must charge transitions")
	}
}

func TestDeploymentWithSMTBackend(t *testing.T) {
	dep, err := NewDeployment(Config{
		Workload:     SmallBank,
		Contracts:    4,
		Accounts:     8,
		Difficulty:   2,
		Seed:         7,
		KeySpace:     30,
		StateBackend: StateBackendSMT,
	})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	client := dep.NewSuperlightClient()
	for i := 0; i < 5; i++ {
		blk, cert, err := dep.MineAndCertify(12)
		if err != nil {
			t.Fatalf("MineAndCertify(%d): %v", i, err)
		}
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			t.Fatalf("ValidateChain(%d): %v", i, err)
		}
	}
	hdr, _ := client.Latest()
	if hdr.Height != 5 {
		t.Fatalf("client height = %d", hdr.Height)
	}
}
