package query

import (
	"bytes"
	"fmt"
	"strings"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/mpt"
	"dcert/internal/skiplist"
)

// SkipListIndex is the LineageChain-style baseline of Fig. 11: the same
// two-level layout, but the lower level is an authenticated deterministic
// skip list instead of a Merkle B⁺-tree. It is used to compare query latency
// and proof size against DCert's MPT + MB-tree design.
//
// SkipListIndex is not safe for concurrent use.
type SkipListIndex struct {
	name   string
	prefix string
	upper  *mpt.Trie
	lowers map[string]*skiplist.List
}

// NewSkipListIndex creates an empty baseline index over state keys matching
// prefix.
func NewSkipListIndex(name, prefix string) *SkipListIndex {
	return &SkipListIndex{
		name:   name,
		prefix: prefix,
		upper:  mpt.New(),
		lowers: make(map[string]*skiplist.List),
	}
}

// Name returns the index name.
func (ix *SkipListIndex) Name() string {
	return ix.name
}

// Root returns the index commitment.
func (ix *SkipListIndex) Root() (chash.Hash, error) {
	return ix.upper.Hash()
}

// Apply updates the index with a block's state writes.
func (ix *SkipListIndex) Apply(blk *chain.Block, writes map[string][]byte) error {
	for k, v := range writes {
		if !strings.HasPrefix(k, ix.prefix) {
			continue
		}
		lower, ok := ix.lowers[k]
		if !ok {
			lower = skiplist.New()
			ix.lowers[k] = lower
		}
		lower.Insert(blk.Header.Height, v)
		if err := ix.upper.Put([]byte(k), lower.Root().Bytes()); err != nil {
			return fmt.Errorf("query: baseline apply %q: %w", k, err)
		}
	}
	return nil
}

// SkipRangeProof is the baseline's query proof.
type SkipRangeProof struct {
	// Upper authenticates key → lower root.
	Upper *mpt.Witness
	// Lower is the skip-list traversal proof (nil when the key is absent).
	Lower *skiplist.Proof
}

// EncodedSize returns the proof size in bytes.
func (p *SkipRangeProof) EncodedSize() int {
	size := p.Upper.EncodedSize()
	if p.Lower != nil {
		size += p.Lower.EncodedSize()
	}
	return size
}

// QueryRange answers a historical range query with proofs.
func (ix *SkipListIndex) QueryRange(key string, lo, hi uint64) ([]skiplist.Entry, *SkipRangeProof, error) {
	upperW, err := ix.upper.Prove([]byte(key))
	if err != nil {
		return nil, nil, fmt.Errorf("query: baseline upper proof: %w", err)
	}
	lower, ok := ix.lowers[key]
	if !ok {
		return nil, &SkipRangeProof{Upper: upperW}, nil
	}
	entries, err := lower.Range(lo, hi)
	if err != nil {
		return nil, nil, err
	}
	proof, err := lower.ProveRange(lo, hi)
	if err != nil {
		return nil, nil, err
	}
	return entries, &SkipRangeProof{Upper: upperW, Lower: proof}, nil
}

// VerifySkipRange validates a baseline query result against the index root.
func VerifySkipRange(indexRoot chash.Hash, key string, lo, hi uint64, claimed []skiplist.Entry, proof *SkipRangeProof) error {
	if proof == nil || proof.Upper == nil {
		return fmt.Errorf("%w: missing proof", ErrBadProof)
	}
	rootBytes, err := mpt.VerifyProof(indexRoot, []byte(key), proof.Upper)
	if err != nil {
		return fmt.Errorf("%w: upper: %v", ErrBadProof, err)
	}
	if rootBytes == nil {
		if len(claimed) != 0 {
			return fmt.Errorf("%w: results claimed for absent key", ErrResultMismatch)
		}
		return nil
	}
	lowerRoot, err := chash.FromBytes(rootBytes)
	if err != nil {
		return fmt.Errorf("%w: lower root: %v", ErrBadProof, err)
	}
	if proof.Lower == nil {
		return fmt.Errorf("%w: missing lower proof", ErrBadProof)
	}
	verified, err := skiplist.VerifyRange(lowerRoot, lo, hi, proof.Lower)
	if err != nil {
		return fmt.Errorf("%w: lower: %v", ErrBadProof, err)
	}
	if len(verified) != len(claimed) {
		return fmt.Errorf("%w: %d claimed, %d proven", ErrResultMismatch, len(claimed), len(verified))
	}
	for i := range verified {
		if verified[i].Version != claimed[i].Version || !bytes.Equal(verified[i].Value, claimed[i].Value) {
			return fmt.Errorf("%w: entry %d", ErrResultMismatch, i)
		}
	}
	return nil
}
