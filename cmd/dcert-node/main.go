// Command dcert-node runs a complete simulated DCert network — miner,
// SGX-enabled certificate issuer, query service provider, and a superlight
// client — and streams the certification workflow of Fig. 2 to stdout:
// blocks are mined, certified in the enclave, broadcast, and validated by
// the superlight client at constant cost.
//
// Usage:
//
//	dcert-node [-blocks N] [-txs N] [-workload DN|CPU|IO|KV|SB] [-tee sgx|trustzone|multizone|sev] [-interval d]
//	           [-pipeline W] [-debug-addr host:port] [-linger d]
//	           [-data-dir path] [-fsync-interval d] [-listen host:port]
//
// With -listen the node becomes a multi-process server: after mining its
// blocks it keeps running, serving the wire transport protocol on the given
// address — live certificate/block topic streams, certificate catch-up, and
// the RPC routes (node info, latest certificate, raw blocks, verifiable
// queries) — until interrupted. Point dcert-query -connect (or any
// dcert.DialWire client) at the printed address from another OS process.
// Combined with -data-dir, kill -9 the server and rerun with the same
// directory: it recovers, mines on, and remote clients re-verify against the
// same trust anchors.
//
// With -debug-addr the node serves its instrumentation plane over HTTP while
// it runs: /metrics (Prometheus text), /debug/spans, /healthz, and
// /debug/pprof/. With -pipeline W certification runs through the W-worker
// pipelined engine, so /metrics carries live per-stage latency histograms.
//
// With -data-dir the node journals every block, certificate, and state write
// set through the crash-safe storage engine. Kill the process at any point
// and rerun with the same -data-dir: recovery truncates any torn log tail,
// resumes from the certified tip, and a fresh enclave continues the
// certificate recursion from the persisted checkpoint without re-signing any
// certified height. -fsync-interval batches fsyncs (group commit); 0 syncs
// every append.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dcert"
	"dcert/internal/enclave"
	"dcert/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dcert-node: %v\n", err)
		os.Exit(1)
	}
}

func parseWorkload(s string) (dcert.Workload, error) {
	for _, k := range workload.AllKinds() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown workload %q (want DN|CPU|IO|KV|SB)", s)
}

func run() error {
	blocks := flag.Int("blocks", 10, "number of blocks to mine and certify")
	txs := flag.Int("txs", 50, "transactions per block")
	workloadFlag := flag.String("workload", "KV", "Blockbench workload: DN, CPU, IO, KV, SB")
	interval := flag.Duration("interval", 0, "pause between blocks (simulated block interval)")
	teeFlag := flag.String("tee", "sgx", "TEE vendor profile: sgx, trustzone, multizone, sev")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/spans, /healthz, /debug/pprof on this address")
	pipeline := flag.Int("pipeline", 0, "certify through the pipelined engine with this many verify workers (0 = sequential)")
	linger := flag.Duration("linger", 0, "keep the debug server up this long after the run (for scraping)")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = in-memory only); rerun with the same directory to resume after a crash")
	fsyncInterval := flag.Duration("fsync-interval", 0, "batch log fsyncs at this interval (group commit); 0 = fsync every append")
	listen := flag.String("listen", "", "serve the wire transport on this address (host:port, :0 picks a port) and keep running until interrupted")
	flag.Parse()

	kind, err := parseWorkload(*workloadFlag)
	if err != nil {
		return err
	}
	vendor, err := enclave.ParseVendor(*teeFlag)
	if err != nil {
		return err
	}

	fmt.Printf("starting DCert network: workload=%s blocks=%d txs/block=%d tee=%s\n", kind, *blocks, *txs, vendor)
	cfg := dcert.Config{
		Workload:    kind,
		Contracts:   20,
		Accounts:    32,
		Difficulty:  8,
		EnclaveCost: enclave.CostModelFor(vendor),
		KeySpace:    1000,
	}
	if *dataDir != "" {
		cfg.Storage = &dcert.StorageConfig{Dir: *dataDir, FsyncInterval: *fsyncInterval}
	}
	dep, err := dcert.OpenDeployment(cfg)
	if err != nil {
		return err
	}
	defer dep.Close()
	if rec := dep.StorageRecovery(); rec != nil && len(rec.Blocks) > 0 {
		fmt.Printf("  recovered from %s: height=%d blocks=%d certs=%d torn=%v truncated=%dB dropped=%d in %v\n",
			*dataDir, rec.TipHeight(), len(rec.Blocks), len(rec.Certs), rec.Torn,
			rec.TruncatedBytes, rec.DroppedBlocks, rec.Elapsed.Round(time.Millisecond))
	} else if *dataDir != "" {
		fmt.Printf("  data directory:         %s (fresh, fsync-interval=%v)\n", *dataDir, *fsyncInterval)
	}
	fmt.Printf("  CI enclave measurement: %s\n", dep.Issuer().Measurement())
	fmt.Printf("  attestation report:     %d bytes (platform %s)\n",
		dep.Issuer().Report().EncodedSize(), dep.Issuer().Report().PlatformID)

	logger := dcert.NewLogger(os.Stderr, dcert.LogInfo, dcert.LogF("node", "dcert-node"))
	if *debugAddr != "" {
		dep.EnableObservability(logger)
		dbg, err := dep.StartDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("  debug endpoint:         %s/metrics  /debug/spans  /healthz  /debug/pprof/\n", dbg.URL())
	}

	if *listen != "" {
		return runServer(dep, *listen, *blocks, *txs, *interval)
	}

	client := dep.NewSuperlightClient()
	var runErr error
	if *pipeline > 0 {
		runErr = runPipelined(dep, client, *blocks, *txs, *pipeline, *interval)
	} else {
		runErr = runSequential(dep, client, *blocks, *txs, *interval)
	}
	if runErr != nil {
		return runErr
	}

	stats := dep.Issuer().Enclave().Stats()
	fmt.Printf("\nenclave: %d ecalls, %.1f MB copied in, exec=%v overhead=%v\n",
		stats.Ecalls, float64(stats.BytesIn)/(1<<20),
		stats.ExecTime.Round(time.Millisecond), stats.OverheadTime.Round(time.Millisecond))
	hdr, _ := client.Latest()
	fmt.Printf("superlight client final state: height=%d storage=%d bytes (constant)\n",
		hdr.Height, client.StorageSize())
	if *debugAddr != "" && *linger > 0 {
		fmt.Printf("debug server up for another %v...\n", *linger)
		time.Sleep(*linger)
	}
	return nil
}

// runServer runs the node as a long-lived wire server: a certification
// plane with catch-up responders, the networked query service, and the TCP
// transport bridged onto the deployment's fabric. It mines the requested
// blocks (each broadcast as a live CertBundle on the certificate topic),
// then serves until SIGINT/SIGTERM.
func runServer(dep *dcert.Deployment, addr string, blocks, txs int, interval time.Duration) error {
	plane, err := dep.StartCertPlane(1)
	if err != nil {
		return err
	}
	defer plane.Stop()
	qs := dep.ServeQueries()
	defer qs.Stop()
	srv, err := dep.ServeWire(dcert.WireServerConfig{Addr: addr})
	if err != nil {
		return err
	}
	defer srv.Close()
	// The "serving on" line is the machine-readable readiness signal:
	// integration harnesses parse the bound address from it.
	fmt.Printf("wire: serving on %s\n", srv.Addr())

	for i := 1; i <= blocks; i++ {
		blk, err := plane.MineAndBroadcast(txs)
		if err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		fmt.Printf("block %4d  hash=%s  txs=%d  broadcast\n", blk.Header.Height, blk.Hash(), len(blk.Txs))
		if interval > 0 {
			time.Sleep(interval)
		}
	}
	fmt.Printf("wire: mining done at height %d; serving until interrupted\n", dep.Miner().Store().BestHeight())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := srv.Stats()
	fmt.Printf("wire: shutting down (conns=%d subs=%d sent=%d dropped=%d publishes=%d requests=%d)\n",
		st.ActiveConns, st.ActiveSubs, st.MessagesSent, st.SlowDrops, st.Publishes, st.Requests)
	return nil
}

// runSequential drives the inline certification loop (Alg. 1 per block).
func runSequential(dep *dcert.Deployment, client *dcert.SuperlightClient, blocks, txs int, interval time.Duration) error {
	for i := 1; i <= blocks; i++ {
		blk, cert, err := dep.MineAndCertify(txs)
		if err != nil {
			return fmt.Errorf("block %d: %w", i, err)
		}
		start := time.Now()
		if err := client.ValidateChain(&blk.Header, cert); err != nil {
			return fmt.Errorf("client validation %d: %w", i, err)
		}
		validate := time.Since(start)
		fmt.Printf("block %4d  hash=%s  txs=%d  cert=%dB  client-validate=%v  client-storage=%dB\n",
			blk.Header.Height, blk.Hash(), len(blk.Txs), cert.EncodedSize(),
			validate.Round(time.Microsecond), client.StorageSize())
		if interval > 0 {
			time.Sleep(interval)
		}
	}
	return nil
}

// runPipelined streams blocks through the pipelined certification engine:
// block i+1 is mined and speculatively executed while block i is still
// inside the enclave. The client validates certificates as they land.
func runPipelined(dep *dcert.Deployment, client *dcert.SuperlightClient, blocks, txs, workers int, interval time.Duration) error {
	pl, err := dcert.NewPipeline(dep.Issuer(), dcert.PipelineConfig{Workers: workers})
	if err != nil {
		return err
	}
	consumed := make(chan error, 1)
	go func() {
		consumed <- func() error {
			for res := range pl.Results() {
				if res.Err != nil {
					return fmt.Errorf("block %d: %w", res.Block.Header.Height, res.Err)
				}
				start := time.Now()
				if err := client.ValidateChain(&res.Block.Header, res.Cert); err != nil {
					return fmt.Errorf("client validation %d: %w", res.Block.Header.Height, err)
				}
				validate := time.Since(start)
				if err := dep.Net().Publish(dcert.TopicCerts, "ci0", res.Cert); err != nil {
					return err
				}
				fmt.Printf("block %4d  hash=%s  txs=%d  cert=%dB  client-validate=%v  client-storage=%dB\n",
					res.Block.Header.Height, res.Block.Hash(), len(res.Block.Txs),
					res.Cert.EncodedSize(), validate.Round(time.Microsecond), client.StorageSize())
			}
			return nil
		}()
	}()
	for i := 1; i <= blocks; i++ {
		batch, err := dep.GenerateBlockTxs(txs)
		if err != nil {
			pl.Abort()
			<-consumed
			return err
		}
		blk, err := dep.Miner().Propose(batch)
		if err != nil {
			pl.Abort()
			<-consumed
			return fmt.Errorf("propose %d: %w", i, err)
		}
		if err := pl.Submit(blk); err != nil {
			<-consumed
			return fmt.Errorf("submit %d: %w", i, err)
		}
		if err := dep.Net().Publish(dcert.TopicBlocks, "miner", blk); err != nil {
			pl.Abort()
			<-consumed
			return err
		}
		if interval > 0 {
			time.Sleep(interval)
		}
	}
	pl.Close()
	if err := <-consumed; err != nil {
		pl.Wait()
		return err
	}
	if err := pl.Wait(); err != nil {
		return err
	}
	st := pl.Stats()
	fmt.Printf("\npipeline: %d blocks, wall=%v, stage p99 verify=%v execute=%v commit=%v\n",
		st.Blocks, st.Wall.Round(time.Millisecond),
		st.VerifyP99.Round(time.Microsecond), st.ExecP99.Round(time.Microsecond), st.CommitP99.Round(time.Microsecond))
	return nil
}
