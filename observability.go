package dcert

import (
	"io"
	"time"

	"dcert/internal/network"
	"dcert/internal/obs"
)

// The instrumentation plane (package internal/obs): a dependency-free metrics
// registry, a ring-buffer span tracer, a leveled structured logger, and an
// HTTP debug endpoint. A deployment is born uninstrumented; one
// EnableObservability call wires the primary issuer, the fabric, and (via
// CertPlane) every redundant issuer into a shared registry.

// Observability types (package internal/obs).
type (
	// MetricsRegistry collects counters, gauges, and histograms and renders
	// them in Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// MetricsHistogram is a fixed-bucket atomic latency histogram.
	MetricsHistogram = obs.Histogram
	// Tracer records lightweight spans into a ring buffer.
	Tracer = obs.Tracer
	// Span is one recorded trace span.
	Span = obs.Span
	// Logger is the leveled structured (logfmt) logger.
	Logger = obs.Logger
	// LogField is one structured logging key/value pair.
	LogField = obs.Field
	// LogLevel orders logger severities.
	LogLevel = obs.Level
	// DebugServer serves /metrics, /debug/spans, /healthz, and pprof.
	DebugServer = obs.DebugServer
	// Health is the /healthz payload.
	Health = obs.Health
	// MetricLabelPair is one metric label (key/value).
	MetricLabelPair = obs.Label
	// NetFaultTally is the fault layer's per-topic injection ledger.
	NetFaultTally = network.FaultTally
)

// Log levels.
const (
	LogDebug = obs.LevelDebug
	LogInfo  = obs.LevelInfo
	LogWarn  = obs.LevelWarn
	LogError = obs.LevelError
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer creates a span tracer keeping the most recent capacity spans.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewLogger creates a structured logger writing logfmt lines at or above min.
func NewLogger(w io.Writer, min LogLevel, tags ...LogField) *Logger {
	return obs.NewLogger(w, min, tags...)
}

// LogF builds one structured logging field.
func LogF(key string, value any) LogField { return obs.F(key, value) }

// MetricLabel builds one metric label.
func MetricLabel(key, value string) MetricLabelPair { return obs.L(key, value) }

// EnableObservability attaches the deployment to a fresh instrumentation
// plane: the primary issuer (as "ci0"), and the network fabric. The logger
// may be nil (metrics and traces still work). Idempotent — repeated calls
// return the existing plane. Issuers added later through StartCertPlane (and
// plane restarts) join the same registry automatically.
func (d *Deployment) EnableObservability(logger *Logger) (*MetricsRegistry, *Tracer) {
	if d.reg != nil {
		return d.reg, d.tracer
	}
	d.reg = obs.NewRegistry()
	d.tracer = obs.NewTracer(4096)
	d.logger = logger
	d.net.Instrument(d.reg)
	d.issuer.Instrument(d.reg, d.tracer, logger, "ci0")
	if d.engine != nil {
		d.engine.Instrument(d.reg)
	}
	if f := d.fleet.Load(); f != nil {
		f.Instrument(d.reg)
	}
	return d.reg, d.tracer
}

// Observability returns the deployment's instrumentation plane (all nil
// until EnableObservability).
func (d *Deployment) Observability() (*MetricsRegistry, *Tracer, *Logger) {
	return d.reg, d.tracer, d.logger
}

// StartDebugServer enables observability (if not already enabled) and serves
// the debug endpoints on addr (host:port; ":0" picks a free port):
// /metrics, /debug/spans, /healthz, and /debug/pprof/. The health probe
// reports the primary issuer's certified tip height and certificate age.
func (d *Deployment) StartDebugServer(addr string) (*DebugServer, error) {
	d.EnableObservability(d.logger)
	return obs.StartDebugServer(addr, obs.DebugServerConfig{
		Registry: d.reg,
		Tracer:   d.tracer,
		Logger:   d.logger,
		Health:   d.health,
	})
}

// health builds the /healthz payload from the primary issuer.
func (d *Deployment) health() Health {
	ci := d.issuer
	tip := ci.Node().Tip()
	h := Health{TipHeight: tip.Header.Height}
	last := ci.LastCertTime()
	if last.IsZero() {
		// Healthy only while nothing has been certified because nothing has
		// been mined: a non-genesis tip with no certificate is a stall.
		h.OK = tip.Header.Height == 0
		h.CertAgeSeconds = -1
		h.Detail = "no certificate yet"
		return h
	}
	h.OK = true
	h.CertAgeSeconds = time.Since(last).Seconds()
	return h
}

// FaultTally returns the fault layer's injection ledger for one topic (zero
// without an installed fault plan).
func (d *Deployment) FaultTally(topic string) NetFaultTally {
	return d.net.FaultTally(topic)
}
