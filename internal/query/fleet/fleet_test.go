package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dcert/internal/chain"
	"dcert/internal/consensus"
	"dcert/internal/network"
	"dcert/internal/node"
	"dcert/internal/query"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// frig wires a miner and an N-replica fleet over the same genesis.
type frig struct {
	miner *node.Miner
	fleet *Fleet
	gen   *workload.Generator
}

func mkNode(t *testing.T, contracts int, params consensus.Params) *node.FullNode {
	t.Helper()
	reg := vm.NewRegistry()
	if err := workload.Register(reg, workload.KVStore, contracts); err != nil {
		t.Fatalf("Register: %v", err)
	}
	genesis, db, err := node.BuildGenesis(node.GenesisConfig{Time: 1, Consensus: params})
	if err != nil {
		t.Fatalf("BuildGenesis: %v", err)
	}
	n, err := node.NewFullNode(genesis, db, reg, params)
	if err != nil {
		t.Fatalf("NewFullNode: %v", err)
	}
	return n
}

func newFleetRig(t *testing.T, replicas int) *frig {
	t.Helper()
	accounts, err := workload.NewAccounts(5)
	if err != nil {
		t.Fatalf("NewAccounts: %v", err)
	}
	cfg := workload.Config{Kind: workload.KVStore, Contracts: 2, Seed: 3, KeySpace: 20, CPUSortSize: 16, IOOpsPerTx: 2}
	params := consensus.Params{Difficulty: 2}
	gen, err := workload.NewGenerator(cfg, accounts)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	f := New()
	for i := 0; i < replicas; i++ {
		sp := query.NewServiceProvider(mkNode(t, cfg.Contracts, params))
		ix, err := query.NewHistoricalIndex("hist", "ct/")
		if err != nil {
			t.Fatalf("NewHistoricalIndex: %v", err)
		}
		if err := sp.AddIndex(ix); err != nil {
			t.Fatalf("AddIndex: %v", err)
		}
		rep, err := NewReplica(fmt.Sprintf("sp-%d", i), sp, 1<<20)
		if err != nil {
			t.Fatalf("NewReplica: %v", err)
		}
		if err := f.Add(rep); err != nil {
			t.Fatalf("fleet.Add: %v", err)
		}
	}
	return &frig{
		miner: node.NewMiner(mkNode(t, cfg.Contracts, params)),
		fleet: f,
		gen:   gen,
	}
}

// advance mines n blocks and feeds them to every replica.
func (r *frig) advance(t *testing.T, n, txs int) {
	t.Helper()
	for i := 0; i < n; i++ {
		batch, err := r.gen.Block(txs)
		if err != nil {
			t.Fatalf("gen.Block: %v", err)
		}
		blk, err := r.miner.Propose(batch)
		if err != nil {
			t.Fatalf("Propose: %v", err)
		}
		if err := r.fleet.ProcessBlock(blk); err != nil {
			t.Fatalf("fleet.ProcessBlock: %v", err)
		}
	}
}

// writtenKey probes the KV key space for a key present in state.
func writtenKey(t *testing.T, f *Fleet) string {
	t.Helper()
	rep, err := f.Replica("sp-0")
	if err != nil {
		t.Fatalf("Replica: %v", err)
	}
	for i := 0; i < 100; i++ {
		probe := "ct/" + workload.ContractName(workload.KVStore, 0) + "/kv/user-key-" + fmt.Sprintf("%d", i)
		resp := rep.Execute(query.NewStateRequest(probe))
		if resp.Err != "" {
			t.Fatalf("Execute: %s", resp.Err)
		}
		res, err := query.UnmarshalStateResult(resp.Body)
		if err != nil {
			t.Fatalf("UnmarshalStateResult: %v", err)
		}
		if res.Value != nil {
			return probe
		}
	}
	t.Skip("no written key found")
	return ""
}

func TestFleetServesVerifiedQueries(t *testing.T) {
	r := newFleetRig(t, 4)
	r.advance(t, 5, 12)
	key := writtenKey(t, r.fleet)

	// Every replica serves the same certified tip.
	tip := mustTip(t, r.fleet, "sp-0")
	for i := 1; i < 4; i++ {
		other := mustTip(t, r.fleet, fmt.Sprintf("sp-%d", i))
		if other.StateRoot != tip.StateRoot {
			t.Fatalf("replica sp-%d diverged from sp-0", i)
		}
	}

	// Single-key via the fleet front door.
	resp := r.fleet.Handle(query.NewStateRequest(key))
	if resp.Err != "" {
		t.Fatalf("Handle: %s", resp.Err)
	}
	sr, err := query.UnmarshalStateResult(resp.Body)
	if err != nil {
		t.Fatalf("UnmarshalStateResult: %v", err)
	}
	if err := query.VerifyState(tip, sr); err != nil {
		t.Fatalf("VerifyState: %v", err)
	}

	// Batch via the fleet front door: one replica, one merged proof.
	resp = r.fleet.Handle(query.NewBatchStateRequest([]string{key, "never-written"}))
	if resp.Err != "" {
		t.Fatalf("Handle(batch): %s", resp.Err)
	}
	br, err := query.UnmarshalBatchStateResult(resp.Body)
	if err != nil {
		t.Fatalf("UnmarshalBatchStateResult: %v", err)
	}
	if err := query.VerifyBatchState(tip, br); err != nil {
		t.Fatalf("VerifyBatchState: %v", err)
	}

	// Historical query routes and verifies too.
	resp = r.fleet.Handle(query.NewHistoricalRequest("hist", key, 0, 100))
	if resp.Err != "" {
		t.Fatalf("Handle(historical): %s", resp.Err)
	}
	if _, err := query.UnmarshalHistoricalResult(resp.Body); err != nil {
		t.Fatalf("UnmarshalHistoricalResult: %v", err)
	}
}

func mustTip(t *testing.T, f *Fleet, name string) *chain.Header {
	t.Helper()
	rep, err := f.Replica(name)
	if err != nil {
		t.Fatalf("Replica: %v", err)
	}
	return rep.Tip()
}

func TestFleetAffinityPinsKeysToReplicas(t *testing.T) {
	r := newFleetRig(t, 4)
	r.advance(t, 3, 10)
	key := writtenKey(t, r.fleet)

	req := query.NewStateRequest(key)
	owner, err := r.fleet.Router().Route(req.AffinityKey())
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	// Baseline stats (the key probe above already touched sp-0's cache).
	baseHits := map[string]uint64{}
	baseMisses := map[string]uint64{}
	for _, name := range r.fleet.Router().Members() {
		rep, err := r.fleet.Replica(name)
		if err != nil {
			t.Fatalf("Replica: %v", err)
		}
		h, m, _, _ := rep.Cache().Stats()
		baseHits[name], baseMisses[name] = h, m
	}
	// Repeated queries for the same key hit only the owner's cache.
	for i := 0; i < 10; i++ {
		if resp := r.fleet.Handle(query.NewStateRequest(key)); resp.Err != "" {
			t.Fatalf("Handle: %s", resp.Err)
		}
	}
	for _, name := range r.fleet.Router().Members() {
		rep, err := r.fleet.Replica(name)
		if err != nil {
			t.Fatalf("Replica: %v", err)
		}
		h, m, _, _ := rep.Cache().Stats()
		dh, dm := h-baseHits[name], m-baseMisses[name]
		if name == owner {
			if dm > 1 || dh+dm != 10 {
				t.Fatalf("owner cache delta: %d misses, %d hits; want ≤1, 10 total", dm, dh)
			}
		} else if dh+dm != 0 {
			t.Fatalf("non-owner %s touched: %d hits, %d misses", name, dh, dm)
		}
	}
}

func TestFleetServesBusTraffic(t *testing.T) {
	r := newFleetRig(t, 3)
	r.advance(t, 4, 12)
	key := writtenKey(t, r.fleet)

	bus := network.New()
	defer bus.Close()
	srv := r.fleet.ServeBus(bus, 2)
	defer srv.Stop()
	req := query.NewRequester(bus, 2*time.Second)
	defer req.Close()

	tip := mustTip(t, r.fleet, "sp-0")
	sr, err := req.State(key)
	if err != nil {
		t.Fatalf("State over bus: %v", err)
	}
	if err := query.VerifyState(tip, sr); err != nil {
		t.Fatalf("VerifyState: %v", err)
	}
	br, err := req.BatchState([]string{key, "never-written"})
	if err != nil {
		t.Fatalf("BatchState over bus: %v", err)
	}
	if err := query.VerifyBatchState(tip, br); err != nil {
		t.Fatalf("VerifyBatchState: %v", err)
	}
	if _, err := req.Historical("ghost-index", key, 0, 1); !errors.Is(err, query.ErrRemote) {
		t.Fatalf("want ErrRemote for unknown index, got %v", err)
	}
}

// The RCU snapshot discipline: queries hammer the fleet from many
// goroutines while blocks land. Run with -race. Every response must verify
// against one of the certified headers observed during the run.
func TestFleetQueriesConcurrentWithBlockIngest(t *testing.T) {
	r := newFleetRig(t, 2)
	r.advance(t, 2, 10)
	key := writtenKey(t, r.fleet)

	var hmu sync.Mutex
	headers := []*chain.Header{mustTip(t, r.fleet, "sp-0"), mustTip(t, r.fleet, "sp-1")}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp := r.fleet.Handle(query.NewStateRequest(key))
				if resp.Err != "" {
					t.Errorf("Handle: %s", resp.Err)
					return
				}
				sr, err := query.UnmarshalStateResult(resp.Body)
				if err != nil {
					t.Errorf("UnmarshalStateResult: %v", err)
					return
				}
				hmu.Lock()
				hs := append([]*chain.Header(nil), headers...)
				hmu.Unlock()
				ok := false
				for _, h := range hs {
					if query.VerifyState(h, sr) == nil {
						ok = true
						break
					}
				}
				if !ok {
					t.Error("response verified against no observed header")
					return
				}
			}
		}()
	}

	for i := 0; i < 6; i++ {
		batch, err := r.gen.Block(10)
		if err != nil {
			t.Fatalf("gen.Block: %v", err)
		}
		blk, err := r.miner.Propose(batch)
		if err != nil {
			t.Fatalf("Propose: %v", err)
		}
		// Record the header before ingest: a replica may serve the new
		// height the instant its ProcessBlock returns, while its siblings
		// are still applying.
		hmu.Lock()
		headers = append(headers, &blk.Header)
		hmu.Unlock()
		if err := r.fleet.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestFleetRemoveRedistributes(t *testing.T) {
	r := newFleetRig(t, 3)
	r.advance(t, 3, 10)
	key := writtenKey(t, r.fleet)

	r.fleet.Remove("sp-1")
	if r.fleet.Size() != 2 {
		t.Fatalf("Size = %d after remove", r.fleet.Size())
	}
	resp := r.fleet.Handle(query.NewStateRequest(key))
	if resp.Err != "" {
		t.Fatalf("Handle after remove: %s", resp.Err)
	}
	owner, err := r.fleet.Router().Route(query.NewStateRequest(key).AffinityKey())
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if owner == "sp-1" {
		t.Fatal("removed replica still owns keys")
	}
}
