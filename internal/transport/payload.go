package transport

import (
	"errors"
	"fmt"

	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/core"
)

// Payload codec: the in-process bus carries typed payloads (*chain.Block,
// *core.CertBundle, ...); the wire carries bytes. This codec maps the topic
// vocabulary of the DCert fabric onto tagged canonical encodings, so a
// remote subscriber receives exactly the same Go value an in-process one
// would — and, for certificates, byte-identical Marshal output, since the
// codec round-trips through each type's own canonical wire format.

// Payload errors.
var (
	// ErrPayloadType is returned when publishing a type the wire cannot carry.
	ErrPayloadType = errors.New("transport: unsupported payload type")
	// ErrPayloadCorrupt is returned when a tagged payload fails to decode.
	ErrPayloadCorrupt = errors.New("transport: corrupt payload")
)

// Payload tags.
const (
	payloadBytes       byte = 0 // raw []byte (query protocol)
	payloadBlock       byte = 1 // *chain.Block
	payloadCertificate byte = 2 // *core.Certificate
	payloadCertBundle  byte = 3 // *core.CertBundle
	payloadCertRequest byte = 4 // *core.CertRequest
)

// encodePayload renders a topic payload as a tagged byte string.
func encodePayload(p any) ([]byte, error) {
	switch v := p.(type) {
	case []byte:
		return append([]byte{payloadBytes}, v...), nil
	case *chain.Block:
		return append([]byte{payloadBlock}, v.Marshal()...), nil
	case *core.Certificate:
		return append([]byte{payloadCertificate}, v.Marshal()...), nil
	case *core.CertBundle:
		if v.Header == nil || v.Cert == nil {
			return nil, fmt.Errorf("%w: incomplete cert bundle", ErrPayloadType)
		}
		hdr := v.Header.Marshal()
		cert := v.Cert.Marshal()
		e := chash.NewEncoder(16 + len(hdr) + len(cert))
		e.PutByte(payloadCertBundle)
		e.PutBytes(hdr)
		e.PutBytes(cert)
		return e.Bytes(), nil
	case *core.CertRequest:
		e := chash.NewEncoder(24 + len(v.From))
		e.PutByte(payloadCertRequest)
		e.PutString(v.From)
		e.PutUint64(v.Height)
		return e.Bytes(), nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrPayloadType, p)
	}
}

// decodePayload parses a tagged byte string back into its typed payload.
func decodePayload(raw []byte) (any, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrPayloadCorrupt)
	}
	tag, rest := raw[0], raw[1:]
	switch tag {
	case payloadBytes:
		out := make([]byte, len(rest))
		copy(out, rest)
		return out, nil
	case payloadBlock:
		blk, err := chain.UnmarshalBlock(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: block: %v", ErrPayloadCorrupt, err)
		}
		return blk, nil
	case payloadCertificate:
		cert, err := core.UnmarshalCertificate(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: certificate: %v", ErrPayloadCorrupt, err)
		}
		return cert, nil
	case payloadCertBundle:
		d := chash.NewDecoder(rest)
		hdrRaw, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("%w: bundle: %v", ErrPayloadCorrupt, err)
		}
		certRaw, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("%w: bundle: %v", ErrPayloadCorrupt, err)
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: bundle: %v", ErrPayloadCorrupt, err)
		}
		hdr, err := chain.UnmarshalHeader(hdrRaw)
		if err != nil {
			return nil, fmt.Errorf("%w: bundle header: %v", ErrPayloadCorrupt, err)
		}
		cert, err := core.UnmarshalCertificate(certRaw)
		if err != nil {
			return nil, fmt.Errorf("%w: bundle certificate: %v", ErrPayloadCorrupt, err)
		}
		return &core.CertBundle{Header: hdr, Cert: cert}, nil
	case payloadCertRequest:
		d := chash.NewDecoder(rest)
		var req core.CertRequest
		var err error
		if req.From, err = d.ReadString(); err != nil {
			return nil, fmt.Errorf("%w: cert request: %v", ErrPayloadCorrupt, err)
		}
		if req.Height, err = d.Uint64(); err != nil {
			return nil, fmt.Errorf("%w: cert request: %v", ErrPayloadCorrupt, err)
		}
		if err := d.Finish(); err != nil {
			return nil, fmt.Errorf("%w: cert request: %v", ErrPayloadCorrupt, err)
		}
		return &req, nil
	default:
		return nil, fmt.Errorf("%w: tag %d", ErrPayloadCorrupt, tag)
	}
}
