package mht

import (
	"fmt"
	"testing"

	"dcert/internal/chash"
)

// TestGoldenRoot pins a fixed 7-leaf tree (odd count exercises the zero-hash
// pairing) to the root the original sequential builder produced: the
// parallel build must stay byte-identical.
func TestGoldenRoot(t *testing.T) {
	leaves := make([][]byte, 7)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("golden-mht-leaf-%d", i))
	}
	tr, err := Build(leaves)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	const want = "c655aee5c49876e0dd4a9181587f370e14635db6167b7a456807ddd5827c8319"
	if got := tr.Root().Hex(); got != want {
		t.Fatalf("root = %s, want %s", got, want)
	}
}

// TestParallelBuildEquivalence compares the (potentially parallel) Build
// against an inline sequential reference at sizes straddling the parallel
// threshold, including the above-threshold widths where forEachChunk fans
// out.
func TestParallelBuildEquivalence(t *testing.T) {
	for _, n := range []int{1, 7, parallelBuildMin - 1, parallelBuildMin, 2*parallelBuildMin + 13} {
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = []byte(fmt.Sprintf("leaf-%d-%d", n, i))
		}
		tr, err := Build(leaves)
		if err != nil {
			t.Fatalf("Build(%d): %v", n, err)
		}

		// Sequential reference: same shape rules, plain loops.
		level := make([]chash.Hash, n)
		for i, l := range leaves {
			level[i] = chash.Leaf(l)
		}
		for len(level) > 1 {
			next := make([]chash.Hash, (len(level)+1)/2)
			for i := range next {
				right := chash.Zero
				if 2*i+1 < len(level) {
					right = level[2*i+1]
				}
				next[i] = chash.Node(level[2*i], right)
			}
			level = next
		}
		if tr.Root() != level[0] {
			t.Fatalf("n=%d: parallel root %s != sequential root %s", n, tr.Root(), level[0])
		}
	}
}
