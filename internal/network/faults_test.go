package network

import (
	"testing"
	"time"
)

// collect drains messages until the subscription is quiet for the grace
// period, returning the payloads in arrival order.
func collect(s *Subscription, grace time.Duration) []any {
	var out []any
	for {
		select {
		case m := <-s.C:
			out = append(out, m.Payload)
		case <-time.After(grace):
			return out
		}
	}
}

func TestFaultDropIsDeterministic(t *testing.T) {
	run := func() []any {
		n := New()
		defer n.Close()
		n.SetFaults(&FaultPlan{Seed: 42, Rules: []FaultRule{{Topic: TopicBlocks, Drop: 0.5}}})
		sub := n.Subscribe(TopicBlocks, 64)
		defer sub.Cancel()
		for i := 0; i < 20; i++ {
			if err := n.Publish(TopicBlocks, "miner", i); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}
		return collect(sub, 20*time.Millisecond)
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 20 {
		t.Fatalf("drop rule had no effect: %d/20 delivered", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different outcomes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different sequence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFaultDuplicate(t *testing.T) {
	n := New()
	defer n.Close()
	n.SetFaults(&FaultPlan{Seed: 7, Rules: []FaultRule{{Topic: TopicCerts, Duplicate: 1}}})
	sub := n.Subscribe(TopicCerts, 64)
	defer sub.Cancel()
	for i := 0; i < 5; i++ {
		if err := n.Publish(TopicCerts, "ci", i); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	got := collect(sub, 20*time.Millisecond)
	if len(got) != 10 {
		t.Fatalf("Duplicate=1 delivered %d messages, want 10", len(got))
	}
}

func TestFaultReorder(t *testing.T) {
	n := New()
	defer n.Close()
	// First message is always held back; the rest pass untouched.
	n.SetFaults(&FaultPlan{Seed: 1, Rules: []FaultRule{
		{Topic: TopicBlocks, From: "laggy", Reorder: 1, ReorderDelay: 30 * time.Millisecond},
		{Topic: TopicBlocks},
	}})
	sub := n.Subscribe(TopicBlocks, 64)
	defer sub.Cancel()
	if err := n.Publish(TopicBlocks, "laggy", "late"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := n.Publish(TopicBlocks, "miner", "early"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got := collect(sub, 60*time.Millisecond)
	if len(got) != 2 || got[0] != "early" || got[1] != "late" {
		t.Fatalf("reorder did not overtake: %v", got)
	}
}

func TestFaultRuleScopedToPublisher(t *testing.T) {
	n := New()
	defer n.Close()
	n.SetFaults(&FaultPlan{Seed: 3, Rules: []FaultRule{{Topic: TopicBlocks, From: "evil", Drop: 1}}})
	sub := n.Subscribe(TopicBlocks, 8)
	defer sub.Cancel()
	if err := n.Publish(TopicBlocks, "evil", "lost"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := n.Publish(TopicBlocks, "miner", "kept"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got := collect(sub, 20*time.Millisecond)
	if len(got) != 1 || got[0] != "kept" {
		t.Fatalf("per-publisher rule leaked: %v", got)
	}
}

func TestFaultJitterDelaysButDelivers(t *testing.T) {
	n := New()
	n.SetFaults(&FaultPlan{Seed: 9, Rules: []FaultRule{{JitterMax: 10 * time.Millisecond}}})
	sub := n.Subscribe(TopicCerts, 64)
	defer sub.Cancel()
	for i := 0; i < 10; i++ {
		if err := n.Publish(TopicCerts, "ci", i); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	n.Close() // flushes delayed deliveries
	got := collect(sub, 20*time.Millisecond)
	if len(got) != 10 {
		t.Fatalf("jitter lost messages: %d/10", len(got))
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New()
	defer n.Close()
	n.SetFaults(&FaultPlan{Seed: 5})
	sub := n.Subscribe(TopicCerts, 8)
	defer sub.Cancel()

	n.Partition(TopicCerts)
	if err := n.Publish(TopicCerts, "ci", "cut"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if got := collect(sub, 20*time.Millisecond); len(got) != 0 {
		t.Fatalf("partitioned topic delivered: %v", got)
	}

	n.Heal(TopicCerts)
	if err := n.Publish(TopicCerts, "ci", "healed"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got := collect(sub, 20*time.Millisecond)
	if len(got) != 1 || got[0] != "healed" {
		t.Fatalf("healed topic did not deliver: %v", got)
	}
}

func TestPartitionIsPerTopic(t *testing.T) {
	n := New()
	defer n.Close()
	n.SetFaults(&FaultPlan{Seed: 5})
	blocks := n.Subscribe(TopicBlocks, 8)
	defer blocks.Cancel()

	n.Partition(TopicCerts)
	if err := n.Publish(TopicBlocks, "miner", "flows"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got := collect(blocks, 20*time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("partition of another topic blocked delivery: %v", got)
	}
}

func TestSetFaultsNilRestoresCleanDelivery(t *testing.T) {
	n := New()
	defer n.Close()
	n.SetFaults(&FaultPlan{Seed: 2, Rules: []FaultRule{{Drop: 1}}})
	n.SetFaults(nil)
	sub := n.Subscribe(TopicBlocks, 8)
	defer sub.Cancel()
	if err := n.Publish(TopicBlocks, "miner", 1); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if got := collect(sub, 20*time.Millisecond); len(got) != 1 {
		t.Fatalf("cleared plan still perturbs: %v", got)
	}
}
