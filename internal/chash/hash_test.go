package chash

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSumDomainSeparation(t *testing.T) {
	payload := []byte("same payload")
	if Sum(DomainLeaf, payload) == Sum(DomainNode, payload) {
		t.Fatal("different domains produced identical digests")
	}
}

func TestSumConcatenationUnambiguity(t *testing.T) {
	// Sum over parts must equal Sum over the concatenation: parts are a
	// convenience, not a framing mechanism. Framing is the Encoder's job.
	a := Sum(DomainTx, []byte("ab"), []byte("c"))
	b := Sum(DomainTx, []byte("a"), []byte("bc"))
	if a != b {
		t.Fatal("Sum must hash the raw concatenation of parts")
	}
}

func TestNodeOrderSensitive(t *testing.T) {
	l := Leaf([]byte("l"))
	r := Leaf([]byte("r"))
	if Node(l, r) == Node(r, l) {
		t.Fatal("interior node hash must depend on child order")
	}
}

func TestHashRoundTrips(t *testing.T) {
	h := Leaf([]byte("round trip"))

	fromB, err := FromBytes(h.Bytes())
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if fromB != h {
		t.Fatal("FromBytes round trip mismatch")
	}

	fromH, err := FromHex(h.Hex())
	if err != nil {
		t.Fatalf("FromHex: %v", err)
	}
	if fromH != h {
		t.Fatal("FromHex round trip mismatch")
	}
}

func TestFromBytesRejectsBadLength(t *testing.T) {
	if _, err := FromBytes(make([]byte, Size-1)); err == nil {
		t.Fatal("expected error for short digest")
	}
	if _, err := FromBytes(make([]byte, Size+1)); err == nil {
		t.Fatal("expected error for long digest")
	}
}

func TestFromHexRejectsGarbage(t *testing.T) {
	if _, err := FromHex("not-hex"); err == nil {
		t.Fatal("expected error for invalid hex")
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() must be true")
	}
	if Leaf(nil).IsZero() {
		t.Fatal("Leaf(nil) must not be the zero hash")
	}
}

func TestDomainString(t *testing.T) {
	for d := DomainLeaf; d <= DomainConsensus; d++ {
		if s := d.String(); s == "" || s[0] == 'd' && s != "domain" {
			// all defined domains have explicit names
			if len(s) > 6 && s[:6] == "domain" {
				t.Fatalf("domain %d has no explicit name", d)
			}
		}
	}
	if Domain(200).String() != "domain(200)" {
		t.Fatal("unknown domain should format numerically")
	}
}

func TestSumInjectivityQuick(t *testing.T) {
	// Property: distinct inputs (under the same domain) produce distinct
	// digests. A failure here would be a SHA-256 collision.
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return Sum(DomainState, a) == Sum(DomainState, b)
		}
		return Sum(DomainState, a) != Sum(DomainState, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintBytes(t *testing.T) {
	if got := Uint64Bytes(0x0102030405060708); !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("Uint64Bytes wrong encoding: %v", got)
	}
	if got := Uint32Bytes(0x01020304); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("Uint32Bytes wrong encoding: %v", got)
	}
}
