// Package smt implements a fixed-depth sparse Merkle tree over bit-string
// keys, the structure shown in Fig. 4 of the DCert paper. It provides the two
// trusted primitives the in-enclave program relies on:
//
//   - verify_mht(root, π, {kv}): check a multiproof for a set of keys (reads
//     or write neighbourhoods) against a committed root, and
//   - update(π, {w}): recompute the root after replacing the proven leaves
//     with new values, using only the proof — no access to the full tree.
//
// Empty subtrees hash to per-level default digests, so absence of a key is
// provable with the same multiproof mechanism.
package smt

import (
	"errors"
	"fmt"
	"sort"

	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrBadDepth is returned for tree depths outside [1, MaxDepth].
	ErrBadDepth = errors.New("smt: depth out of range")
	// ErrBadProof is returned when a multiproof fails verification.
	ErrBadProof = errors.New("smt: proof verification failed")
	// ErrKeyMismatch is returned when the key set given to a proof operation
	// differs from the proof's key set.
	ErrKeyMismatch = errors.New("smt: key set does not match proof")
)

// MaxDepth is the deepest supported tree (one bit per level of a digest).
const MaxDepth = 8 * chash.Size

// Key addresses a leaf: the first Tree.Depth() bits (MSB-first) select the
// path from the root.
type Key [chash.Size]byte

// KeyFromBytes derives a key by hashing arbitrary bytes, spreading keys
// uniformly across the address space.
func KeyFromBytes(b []byte) Key {
	return Key(chash.Sum(chash.DomainState, b))
}

// KeyFromString derives a key from a string identifier.
func KeyFromString(s string) Key {
	return KeyFromBytes([]byte(s))
}

// Bit returns bit i of the key, MSB-first.
func (k Key) Bit(i int) byte {
	return (k[i/8] >> (7 - i%8)) & 1
}

// Path returns the first depth bits as a '0'/'1' string. Used as the node
// position identifier inside proofs.
func (k Key) Path(depth int) string {
	buf := make([]byte, depth)
	for i := 0; i < depth; i++ {
		buf[i] = '0' + k.Bit(i)
	}
	return string(buf)
}

// defaults[l] is the digest of an empty subtree whose root sits at level l
// (level depth = leaves, level 0 = tree root). Indexed by level, computed
// once per depth and shared.
var defaultCache = map[int][]chash.Hash{}

func defaultsForDepth(depth int) []chash.Hash {
	if d, ok := defaultCache[depth]; ok {
		return d
	}
	d := make([]chash.Hash, depth+1)
	d[depth] = chash.Zero
	for l := depth - 1; l >= 0; l-- {
		d[l] = chash.Node(d[l+1], d[l+1])
	}
	defaultCache[depth] = d
	return d
}

type node struct {
	left, right *node
	hash        chash.Hash
}

// Tree is a mutable sparse Merkle tree. Leaves store value digests; callers
// keep the values themselves. Writing the zero digest deletes a leaf.
//
// Tree is not safe for concurrent use; wrap it if shared across goroutines.
type Tree struct {
	depth    int
	root     *node
	defaults []chash.Hash
	leaves   map[Key]chash.Hash
}

// New creates an empty tree of the given depth.
func New(depth int) (*Tree, error) {
	if depth < 1 || depth > MaxDepth {
		return nil, fmt.Errorf("%w: %d", ErrBadDepth, depth)
	}
	return &Tree{
		depth:    depth,
		defaults: defaultsForDepth(depth),
		leaves:   make(map[Key]chash.Hash),
	}, nil
}

// Depth returns the tree depth in bits.
func (t *Tree) Depth() int {
	return t.depth
}

// Len returns the number of non-empty leaves.
func (t *Tree) Len() int {
	return len(t.leaves)
}

// Root returns the current root digest.
func (t *Tree) Root() chash.Hash {
	if t.root == nil {
		return t.defaults[0]
	}
	return t.root.hash
}

// Get returns the value digest stored at key (chash.Zero if absent).
func (t *Tree) Get(key Key) chash.Hash {
	return t.leaves[key]
}

// Put stores a value digest at key. The zero digest removes the leaf.
func (t *Tree) Put(key Key, valueHash chash.Hash) {
	if valueHash.IsZero() {
		delete(t.leaves, key)
	} else {
		t.leaves[key] = valueHash
	}
	t.root = t.update(t.root, 0, key, valueHash)
}

// update rewrites the path for key at the given level, pruning empty subtrees.
func (t *Tree) update(n *node, level int, key Key, valueHash chash.Hash) *node {
	if level == t.depth {
		if valueHash.IsZero() {
			return nil
		}
		return &node{hash: valueHash}
	}
	if n == nil {
		if valueHash.IsZero() {
			return nil
		}
		n = &node{}
	}
	if key.Bit(level) == 0 {
		n.left = t.update(n.left, level+1, key, valueHash)
	} else {
		n.right = t.update(n.right, level+1, key, valueHash)
	}
	if n.left == nil && n.right == nil {
		return nil
	}
	n.hash = chash.Node(t.childHash(n.left, level+1), t.childHash(n.right, level+1))
	return n
}

func (t *Tree) childHash(n *node, level int) chash.Hash {
	if n == nil {
		return t.defaults[level]
	}
	return n.hash
}

// Multiproof is a combined (non-)membership proof for a set of keys. It holds
// the digests of every maximal subtree that is off the union of the keys'
// paths and not an empty default.
type Multiproof struct {
	// Depth is the proven tree's depth.
	Depth int
	// Keys is the sorted set of proven keys.
	Keys []Key
	// Fills maps a node position (bit-path prefix) to its digest. Positions
	// absent from Fills are default (empty) subtrees.
	Fills map[string]chash.Hash
}

// sortKeys returns a sorted, deduplicated copy of keys.
func sortKeys(keys []Key) []Key {
	uniq := make(map[Key]struct{}, len(keys))
	for _, k := range keys {
		uniq[k] = struct{}{}
	}
	out := make([]Key, 0, len(uniq))
	for k := range uniq {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i][:]) < string(out[j][:])
	})
	return out
}

// Prove builds a multiproof for the given keys (present or absent).
func (t *Tree) Prove(keys []Key) (*Multiproof, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("smt: proof over zero keys")
	}
	mp := &Multiproof{
		Depth: t.depth,
		Keys:  sortKeys(keys),
		Fills: make(map[string]chash.Hash),
	}
	t.fill(t.root, 0, "", mp.Keys, mp.Fills)
	return mp, nil
}

// fill walks the union of key paths and records off-path sibling digests.
func (t *Tree) fill(n *node, level int, prefix string, keys []Key, fills map[string]chash.Hash) {
	if len(keys) == 0 {
		// Off-path subtree: record its digest unless it is the default.
		if n != nil && n.hash != t.defaults[level] {
			fills[prefix] = n.hash
		}
		return
	}
	if level == t.depth {
		return // leaf value supplied by the verifier
	}
	split := sort.Search(len(keys), func(i int) bool { return keys[i].Bit(level) == 1 })
	var left, right *node
	if n != nil {
		left, right = n.left, n.right
	}
	t.fill(left, level+1, prefix+"0", keys[:split], fills)
	t.fill(right, level+1, prefix+"1", keys[split:], fills)
}

// Verify checks the proof against root for the given key→digest assignment.
// Absent keys must map to chash.Zero. The assignment must cover exactly the
// proof's key set.
func (mp *Multiproof) Verify(root chash.Hash, values map[Key]chash.Hash) error {
	got, err := mp.ComputeRoot(values)
	if err != nil {
		return err
	}
	if got != root {
		return fmt.Errorf("%w: root mismatch", ErrBadProof)
	}
	return nil
}

// ComputeRoot recomputes the root implied by assigning the given value
// digests to the proof's keys. Calling it with the old values and comparing
// to the old root is verify_mht; calling it with new values is update.
func (mp *Multiproof) ComputeRoot(values map[Key]chash.Hash) (chash.Hash, error) {
	if mp.Depth < 1 || mp.Depth > MaxDepth {
		return chash.Zero, fmt.Errorf("%w: depth %d", ErrBadProof, mp.Depth)
	}
	if len(values) != len(mp.Keys) {
		return chash.Zero, fmt.Errorf("%w: %d values for %d keys", ErrKeyMismatch, len(values), len(mp.Keys))
	}
	for _, k := range mp.Keys {
		if _, ok := values[k]; !ok {
			return chash.Zero, fmt.Errorf("%w: missing value for key %x", ErrKeyMismatch, k[:4])
		}
	}
	defaults := defaultsForDepth(mp.Depth)
	return mp.computeNode(0, "", mp.Keys, values, defaults), nil
}

func (mp *Multiproof) computeNode(level int, prefix string, keys []Key, values map[Key]chash.Hash, defaults []chash.Hash) chash.Hash {
	if len(keys) == 0 {
		if h, ok := mp.Fills[prefix]; ok {
			return h
		}
		return defaults[level]
	}
	if level == mp.Depth {
		return values[keys[0]]
	}
	split := sort.Search(len(keys), func(i int) bool { return keys[i].Bit(level) == 1 })
	left := mp.computeNode(level+1, prefix+"0", keys[:split], values, defaults)
	right := mp.computeNode(level+1, prefix+"1", keys[split:], values, defaults)
	return chash.Node(left, right)
}

// UpdateRoot verifies the proof for oldValues against oldRoot, then returns
// the root implied by newValues. This is the enclave's
// "verify_mht + update" step done in one call.
func (mp *Multiproof) UpdateRoot(oldRoot chash.Hash, oldValues, newValues map[Key]chash.Hash) (chash.Hash, error) {
	if err := mp.Verify(oldRoot, oldValues); err != nil {
		return chash.Zero, err
	}
	return mp.ComputeRoot(newValues)
}

// EncodedSize returns the serialized size of the proof in bytes, used for the
// proof-size measurements in the evaluation.
func (mp *Multiproof) EncodedSize() int {
	size := 4 + len(mp.Keys)*chash.Size + 4
	for prefix := range mp.Fills {
		size += 4 + len(prefix)/8 + 1 + chash.Size
	}
	return size
}

// Marshal serializes the multiproof.
func (mp *Multiproof) Marshal() []byte {
	e := chash.NewEncoder(mp.EncodedSize() + 64)
	e.PutUint32(uint32(mp.Depth))
	e.PutUint32(uint32(len(mp.Keys)))
	for _, k := range mp.Keys {
		e.PutBytes(k[:])
	}
	// Deterministic fill order: sorted by position string.
	prefixes := make([]string, 0, len(mp.Fills))
	for p := range mp.Fills {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	e.PutUint32(uint32(len(prefixes)))
	for _, p := range prefixes {
		e.PutString(p)
		e.PutHash(mp.Fills[p])
	}
	return e.Bytes()
}

// UnmarshalMultiproof parses a multiproof produced by Marshal.
func UnmarshalMultiproof(raw []byte) (*Multiproof, error) {
	d := chash.NewDecoder(raw)
	depth, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("smt: unmarshal proof: %w", err)
	}
	if depth < 1 || depth > MaxDepth {
		return nil, fmt.Errorf("%w: %d", ErrBadDepth, depth)
	}
	nKeys, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("smt: unmarshal proof: %w", err)
	}
	if nKeys > 1<<20 {
		return nil, fmt.Errorf("smt: unmarshal proof: %d keys", nKeys)
	}
	mp := &Multiproof{Depth: int(depth), Fills: make(map[string]chash.Hash)}
	for i := uint32(0); i < nKeys; i++ {
		kb, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("smt: unmarshal proof key: %w", err)
		}
		if len(kb) != chash.Size {
			return nil, fmt.Errorf("smt: unmarshal proof: key of %d bytes", len(kb))
		}
		var k Key
		copy(k[:], kb)
		mp.Keys = append(mp.Keys, k)
	}
	nFills, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("smt: unmarshal proof: %w", err)
	}
	if nFills > 1<<22 {
		return nil, fmt.Errorf("smt: unmarshal proof: %d fills", nFills)
	}
	for i := uint32(0); i < nFills; i++ {
		p, err := d.ReadString()
		if err != nil {
			return nil, fmt.Errorf("smt: unmarshal proof fill: %w", err)
		}
		for _, c := range p {
			if c != '0' && c != '1' {
				return nil, fmt.Errorf("%w: fill position %q", ErrBadProof, p)
			}
		}
		if len(p) > int(depth) {
			return nil, fmt.Errorf("%w: fill position deeper than tree", ErrBadProof)
		}
		h, err := d.ReadHash()
		if err != nil {
			return nil, fmt.Errorf("smt: unmarshal proof fill: %w", err)
		}
		mp.Fills[p] = h
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("smt: unmarshal proof: %w", err)
	}
	mp.Keys = sortKeys(mp.Keys)
	return mp, nil
}
