// Package mht implements the static binary Merkle Hash Tree from Fig. 1 of
// the DCert paper. It is used for the per-block transaction root (H_tx) and
// anywhere an ordered list of items needs a compact commitment with
// membership proofs.
//
// The tree is built bottom-up over the leaf digests; an odd node at any level
// is paired with the zero hash so that the shape is deterministic for any
// leaf count. Single-leaf proofs return the sibling path (as in the paper's
// S2 example: {h1, h6}); multiproofs return the minimal set of subtree
// digests needed to recompute the root for a set of leaves.
package mht

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dcert/internal/chash"
)

// Package errors.
var (
	// ErrEmptyTree is returned when constructing or proving over zero leaves.
	ErrEmptyTree = errors.New("mht: tree has no leaves")
	// ErrIndexRange is returned when a leaf index is out of range.
	ErrIndexRange = errors.New("mht: leaf index out of range")
	// ErrBadProof is returned when a proof fails verification.
	ErrBadProof = errors.New("mht: proof verification failed")
)

// Tree is an immutable binary Merkle tree over a list of leaf payloads.
type Tree struct {
	// levels[0] is the leaf level; levels[len-1] has exactly one digest, the root.
	levels [][]chash.Hash
	n      int
}

// parallelBuildMin is the smallest level width worth fanning out across
// cores: below it, goroutine overhead beats the hashing saved. Block-sized
// transaction lists (hundreds to thousands of leaves) clear it comfortably.
const parallelBuildMin = 512

// forEachChunk runs fn over [0, n) — sequentially for small n or single-core
// hosts, otherwise split into one contiguous chunk per core. Every output
// index is written by exactly one invocation, so the result is deterministic
// regardless of scheduling.
func forEachChunk(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelBuildMin || workers < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Build constructs a tree over the given leaf payloads. Leaf digesting fans
// out across cores for block-sized inputs.
func Build(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmptyTree
	}
	digests := make([]chash.Hash, len(leaves))
	forEachChunk(len(leaves), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			digests[i] = chash.Leaf(leaves[i])
		}
	})
	return BuildFromDigests(digests)
}

// BuildFromDigests constructs a tree over pre-hashed leaf digests. Each
// level's reduction is independent per output index, so wide levels are
// combined in parallel; the digests are byte-identical to a sequential
// build.
func BuildFromDigests(digests []chash.Hash) (*Tree, error) {
	if len(digests) == 0 {
		return nil, ErrEmptyTree
	}
	level := make([]chash.Hash, len(digests))
	copy(level, digests)

	levels := [][]chash.Hash{level}
	for len(level) > 1 {
		next := make([]chash.Hash, (len(level)+1)/2)
		prev := level
		forEachChunk(len(next), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				left := prev[2*i]
				right := chash.Zero
				if 2*i+1 < len(prev) {
					right = prev[2*i+1]
				}
				next[i] = chash.Node(left, right)
			}
		})
		levels = append(levels, next)
		level = next
	}
	return &Tree{levels: levels, n: len(digests)}, nil
}

// Root returns the root digest.
func (t *Tree) Root() chash.Hash {
	return t.levels[len(t.levels)-1][0]
}

// Len returns the number of leaves.
func (t *Tree) Len() int {
	return t.n
}

// LeafDigest returns the digest of leaf i.
func (t *Tree) LeafDigest(i int) (chash.Hash, error) {
	if i < 0 || i >= t.n {
		return chash.Zero, fmt.Errorf("%w: %d of %d", ErrIndexRange, i, t.n)
	}
	return t.levels[0][i], nil
}

// Proof is a single-leaf membership proof: the sibling digest at each level
// from the leaf up to (excluding) the root.
type Proof struct {
	// Index is the leaf position the proof is for.
	Index int
	// Leaves is the total leaf count of the tree, fixing its shape.
	Leaves int
	// Siblings holds one digest per tree level, bottom-up.
	Siblings []chash.Hash
}

// Prove returns the membership proof for leaf i.
func (t *Tree) Prove(i int) (*Proof, error) {
	if i < 0 || i >= t.n {
		return nil, fmt.Errorf("%w: %d of %d", ErrIndexRange, i, t.n)
	}
	siblings := make([]chash.Hash, 0, len(t.levels)-1)
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		sib := idx ^ 1
		s := chash.Zero
		if sib < len(t.levels[lvl]) {
			s = t.levels[lvl][sib]
		}
		siblings = append(siblings, s)
		idx /= 2
	}
	return &Proof{Index: i, Leaves: t.n, Siblings: siblings}, nil
}

// Verify checks the proof for the given leaf payload against root.
func (p *Proof) Verify(root chash.Hash, leaf []byte) error {
	return p.VerifyDigest(root, chash.Leaf(leaf))
}

// VerifyDigest checks the proof for a pre-hashed leaf digest against root.
func (p *Proof) VerifyDigest(root chash.Hash, digest chash.Hash) error {
	if p.Leaves <= 0 || p.Index < 0 || p.Index >= p.Leaves {
		return fmt.Errorf("%w: index %d of %d", ErrBadProof, p.Index, p.Leaves)
	}
	if want := treeHeight(p.Leaves); len(p.Siblings) != want {
		return fmt.Errorf("%w: %d siblings, want %d", ErrBadProof, len(p.Siblings), want)
	}
	cur := digest
	idx := p.Index
	for _, sib := range p.Siblings {
		if idx%2 == 0 {
			cur = chash.Node(cur, sib)
		} else {
			cur = chash.Node(sib, cur)
		}
		idx /= 2
	}
	if cur != root {
		return fmt.Errorf("%w: root mismatch", ErrBadProof)
	}
	return nil
}

// treeHeight returns the number of interior levels for n leaves.
func treeHeight(n int) int {
	h := 0
	for l := n; l > 1; l = (l + 1) / 2 {
		h++
	}
	return h
}

// MultiProof proves membership of a set of leaves with the minimal digest
// set: for every tree node that is an ancestor-sibling of the proven leaves
// and not derivable from them, its digest is included.
type MultiProof struct {
	// Leaves is the total leaf count of the tree.
	Leaves int
	// Indices are the proven leaf positions, sorted ascending.
	Indices []int
	// Fills maps (level, index) positions to their digests.
	Fills map[NodePos]chash.Hash
}

// NodePos addresses a node inside the tree: Level 0 is the leaf level.
type NodePos struct {
	Level int
	Index int
}

// ProveMulti returns a combined proof for the given leaf indices.
// Duplicate indices are coalesced.
func (t *Tree) ProveMulti(indices []int) (*MultiProof, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("mht: multiproof over zero indices")
	}
	uniq := make(map[int]struct{}, len(indices))
	for _, i := range indices {
		if i < 0 || i >= t.n {
			return nil, fmt.Errorf("%w: %d of %d", ErrIndexRange, i, t.n)
		}
		uniq[i] = struct{}{}
	}
	sorted := make([]int, 0, len(uniq))
	for i := range uniq {
		sorted = append(sorted, i)
	}
	sort.Ints(sorted)

	fills := make(map[NodePos]chash.Hash)
	known := make(map[int]struct{}, len(sorted))
	for _, i := range sorted {
		known[i] = struct{}{}
	}
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		next := make(map[int]struct{}, len(known))
		for idx := range known {
			next[idx/2] = struct{}{}
		}
		// For every parent we will compute, both children must be available:
		// either known (computed from below) or supplied as a fill.
		for parent := range next {
			for _, child := range []int{2 * parent, 2*parent + 1} {
				if _, ok := known[child]; ok {
					continue
				}
				pos := NodePos{Level: lvl, Index: child}
				if child >= len(t.levels[lvl]) {
					fills[pos] = chash.Zero
					continue
				}
				fills[pos] = t.levels[lvl][child]
			}
		}
		known = next
	}
	return &MultiProof{Leaves: t.n, Indices: sorted, Fills: fills}, nil
}

// Verify checks that the given index→digest assignment hashes up to root.
// digests must contain exactly the proof's indices.
func (mp *MultiProof) Verify(root chash.Hash, digests map[int]chash.Hash) error {
	got, err := mp.computeRoot(digests)
	if err != nil {
		return err
	}
	if got != root {
		return fmt.Errorf("%w: root mismatch", ErrBadProof)
	}
	return nil
}

func (mp *MultiProof) computeRoot(digests map[int]chash.Hash) (chash.Hash, error) {
	if mp.Leaves <= 0 {
		return chash.Zero, fmt.Errorf("%w: empty tree", ErrBadProof)
	}
	if len(digests) != len(mp.Indices) {
		return chash.Zero, fmt.Errorf("%w: %d digests for %d indices", ErrBadProof, len(digests), len(mp.Indices))
	}
	known := make(map[int]chash.Hash, len(digests))
	for _, i := range mp.Indices {
		d, ok := digests[i]
		if !ok {
			return chash.Zero, fmt.Errorf("%w: missing digest for index %d", ErrBadProof, i)
		}
		if i < 0 || i >= mp.Leaves {
			return chash.Zero, fmt.Errorf("%w: index %d of %d", ErrBadProof, i, mp.Leaves)
		}
		known[i] = d
	}

	width := mp.Leaves
	for lvl := 0; width > 1; lvl++ {
		parents := make(map[int]chash.Hash, (len(known)+1)/2)
		parentSet := make(map[int]struct{}, len(known))
		for idx := range known {
			parentSet[idx/2] = struct{}{}
		}
		for parent := range parentSet {
			var child [2]chash.Hash
			for k := 0; k < 2; k++ {
				ci := 2*parent + k
				if d, ok := known[ci]; ok {
					child[k] = d
					continue
				}
				d, ok := mp.Fills[NodePos{Level: lvl, Index: ci}]
				if !ok {
					if ci >= width {
						d = chash.Zero
					} else {
						return chash.Zero, fmt.Errorf("%w: missing fill at level %d index %d", ErrBadProof, lvl, ci)
					}
				}
				child[k] = d
			}
			parents[parent] = chash.Node(child[0], child[1])
		}
		known = parents
		width = (width + 1) / 2
	}
	rootDigest, ok := known[0]
	if !ok {
		return chash.Zero, fmt.Errorf("%w: root not derivable", ErrBadProof)
	}
	return rootDigest, nil
}

// Marshal serializes a single-leaf proof.
func (p *Proof) Marshal() []byte {
	e := chash.NewEncoder(16 + len(p.Siblings)*chash.Size)
	e.PutUint32(uint32(p.Index))
	e.PutUint32(uint32(p.Leaves))
	e.PutUint32(uint32(len(p.Siblings)))
	for _, s := range p.Siblings {
		e.PutHash(s)
	}
	return e.Bytes()
}

// UnmarshalProof parses a proof produced by Marshal.
func UnmarshalProof(raw []byte) (*Proof, error) {
	d := chash.NewDecoder(raw)
	idx, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("mht: unmarshal proof: %w", err)
	}
	leaves, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("mht: unmarshal proof: %w", err)
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("mht: unmarshal proof: %w", err)
	}
	if n > 64 {
		return nil, fmt.Errorf("%w: %d siblings", ErrBadProof, n)
	}
	p := &Proof{Index: int(idx), Leaves: int(leaves), Siblings: make([]chash.Hash, 0, n)}
	for i := uint32(0); i < n; i++ {
		h, err := d.ReadHash()
		if err != nil {
			return nil, fmt.Errorf("mht: unmarshal proof: %w", err)
		}
		p.Siblings = append(p.Siblings, h)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("mht: unmarshal proof: %w", err)
	}
	return p, nil
}

// EncodedSize returns the serialized proof size in bytes.
func (p *Proof) EncodedSize() int {
	return 12 + len(p.Siblings)*chash.Size
}
