package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"dcert/internal/attest"
	"dcert/internal/chain"
	"dcert/internal/chash"
	"dcert/internal/consensus"
	"dcert/internal/enclave"
	"dcert/internal/node"
	"dcert/internal/vm"
	"dcert/internal/workload"
)

// newSeededIssuer builds an issuer whose entire key material (attestation
// authority, platform quoting key, sealed enclave key) derives from one seed:
// two issuers built from the same seed emit byte-identical certificates for
// the same blocks, which is what lets the equivalence tests compare the
// sequential and pipelined engines byte for byte.
func newSeededIssuer(t testing.TB, kind workload.Kind, seed string) *Issuer {
	t.Helper()
	authority, err := attest.NewAuthorityFromSeed([]byte(seed))
	if err != nil {
		t.Fatalf("NewAuthorityFromSeed: %v", err)
	}
	platform, err := authority.NewPlatformFromSeed([]byte(seed))
	if err != nil {
		t.Fatalf("NewPlatformFromSeed: %v", err)
	}
	reg := vm.NewRegistry()
	if err := workload.Register(reg, kind, 3); err != nil {
		t.Fatalf("Register: %v", err)
	}
	params := consensus.Params{Difficulty: 4}
	genesis, db, err := node.BuildGenesis(node.GenesisConfig{Time: 1, Consensus: params})
	if err != nil {
		t.Fatalf("BuildGenesis: %v", err)
	}
	n, err := node.NewFullNode(genesis, db, reg, params)
	if err != nil {
		t.Fatalf("NewFullNode: %v", err)
	}
	ci, err := NewIssuerFromSeed(n, authority, platform, enclave.CostModel{}, []byte(seed))
	if err != nil {
		t.Fatalf("NewIssuerFromSeed: %v", err)
	}
	return ci
}

// mockIndexJobs returns a PipelineConfig.IndexJobs callback that prepares
// mock-index jobs, tracking each index's root recursion across blocks the
// way an SP replica would (the callback runs in block order).
func mockIndexJobs(names []string) func(blk *chain.Block, writes map[string][]byte) ([]*IndexJob, error) {
	roots := make(map[string]chash.Hash, len(names))
	return func(blk *chain.Block, writes map[string][]byte) ([]*IndexJob, error) {
		jobs := make([]*IndexJob, len(names))
		for i, name := range names {
			newRoot := mockIndexRoot(roots[name], blk, writes)
			jobs[i] = &IndexJob{Updater: name, NewRoot: newRoot}
			roots[name] = newRoot
		}
		return jobs, nil
	}
}

// mineBlocks produces a deterministic block stream once; every engine under
// comparison certifies the same bytes.
func mineBlocks(t testing.TB, kind workload.Kind, n, txs int) []*chain.Block {
	t.Helper()
	e := newEnv(t, kind, enclave.CostModel{})
	blks := make([]*chain.Block, n)
	for i := range blks {
		blks[i] = e.mine(t, txs)
	}
	return blks
}

// TestPipelineEquivalence is the core correctness property of the pipelined
// engine: for any worker count, the pipeline must emit byte-identical block
// certificates, byte-identical index certificates, and the same final state
// root as the sequential ProcessBlockHierarchical loop.
func TestPipelineEquivalence(t *testing.T) {
	const seed = "equivalence-v1"
	const numBlocks, txsPerBlock = 6, 8
	indexNames := []string{"mock-a", "mock-b"}
	blks := mineBlocks(t, workload.KVStore, numBlocks, txsPerBlock)

	type run struct {
		certBytes [][]byte
		idxBytes  [][][]byte // block → index → cert bytes
		finalRoot chash.Hash
		tipHeight uint64
	}

	register := func(ci *Issuer) {
		for _, name := range indexNames {
			if err := ci.Program().RegisterUpdater(mockIndex{name: name}); err != nil {
				t.Fatalf("RegisterUpdater: %v", err)
			}
		}
	}
	snapshot := func(ci *Issuer, certs []*Certificate, idx [][]*Certificate) run {
		var r run
		for _, c := range certs {
			r.certBytes = append(r.certBytes, c.Marshal())
		}
		for _, blkCerts := range idx {
			var row [][]byte
			for _, c := range blkCerts {
				row = append(row, c.Marshal())
			}
			r.idxBytes = append(r.idxBytes, row)
		}
		root, err := ci.Node().State().Root()
		if err != nil {
			t.Fatalf("Root: %v", err)
		}
		r.finalRoot = root
		r.tipHeight = ci.Node().Tip().Header.Height
		return r
	}

	// Reference: the sequential hierarchical engine.
	seq := newSeededIssuer(t, workload.KVStore, seed)
	register(seq)
	seqJobs := mockIndexJobs(indexNames)
	var seqCerts []*Certificate
	var seqIdx [][]*Certificate
	for _, blk := range blks {
		res, err := seq.Node().State().ExecuteBlock(seq.Node().Registry(), blk.Txs)
		if err != nil {
			t.Fatalf("ExecuteBlock: %v", err)
		}
		jobs, err := seqJobs(blk, res.WriteSet)
		if err != nil {
			t.Fatalf("jobs: %v", err)
		}
		blkCert, idxCerts, _, err := seq.ProcessBlockHierarchical(blk, jobs)
		if err != nil {
			t.Fatalf("ProcessBlockHierarchical: %v", err)
		}
		seqCerts = append(seqCerts, blkCert)
		seqIdx = append(seqIdx, idxCerts)
	}
	want := snapshot(seq, seqCerts, seqIdx)
	if want.tipHeight != numBlocks {
		t.Fatalf("sequential tip = %d", want.tipHeight)
	}

	for _, workers := range []int{1, 4, 8} {
		pi := newSeededIssuer(t, workload.KVStore, seed)
		register(pi)
		results, err := pi.ProcessBlocksPipelined(blks, PipelineConfig{
			Workers:   workers,
			IndexJobs: mockIndexJobs(indexNames),
		})
		if err != nil {
			t.Fatalf("workers=%d: pipeline: %v", workers, err)
		}
		if len(results) != numBlocks {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		var certs []*Certificate
		var idx [][]*Certificate
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("workers=%d: block %d: %v", workers, i, res.Err)
			}
			if res.Block.Hash() != blks[i].Hash() {
				t.Fatalf("workers=%d: result %d out of order", workers, i)
			}
			certs = append(certs, res.Cert)
			idx = append(idx, res.IndexCerts)
		}
		got := snapshot(pi, certs, idx)

		if got.tipHeight != want.tipHeight {
			t.Fatalf("workers=%d: tip %d, want %d", workers, got.tipHeight, want.tipHeight)
		}
		if got.finalRoot != want.finalRoot {
			t.Fatalf("workers=%d: final state root %s, want %s", workers, got.finalRoot, want.finalRoot)
		}
		for i := range want.certBytes {
			if !bytes.Equal(got.certBytes[i], want.certBytes[i]) {
				t.Fatalf("workers=%d: block cert %d differs from sequential", workers, i)
			}
		}
		for i := range want.idxBytes {
			if len(got.idxBytes[i]) != len(want.idxBytes[i]) {
				t.Fatalf("workers=%d: block %d index cert count", workers, i)
			}
			for j := range want.idxBytes[i] {
				if !bytes.Equal(got.idxBytes[i][j], want.idxBytes[i][j]) {
					t.Fatalf("workers=%d: index cert %d/%d differs from sequential", workers, i, j)
				}
			}
		}
	}
}

// TestPipelineRejectsBadBlock: a block the enclave rejects mid-stream must
// fail that block and every later one, and roll the replica back to the last
// certified block — no speculative writes survive.
func TestPipelineAbortRollsBackSpeculation(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	var blks []*chain.Block
	for i := 0; i < 5; i++ {
		blks = append(blks, e.mine(t, 5))
	}
	// Corrupt block 3's claimed state root: verify and execution pass (the
	// seal is re-mined), but the enclave's replay must reject it.
	bad := *blks[2]
	bad.Header.StateRoot = chash.Leaf([]byte("speculative poison"))
	if err := consensus.Seal(e.params, &bad.Header); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	blks[2] = &bad

	results, err := e.issuer.ProcessBlocksPipelined(blks, PipelineConfig{Workers: 2})
	if err == nil {
		t.Fatal("pipeline must report the failure")
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("blocks before the bad one must certify: %v %v", results[0].Err, results[1].Err)
	}
	if results[2].Err == nil {
		t.Fatal("bad block must fail")
	}
	for i := 3; i < 5; i++ {
		if results[i].Err == nil {
			t.Fatalf("block %d after failure must not certify", i)
		}
	}
	// The replica sits exactly at the last certified block: height 2, with
	// state root matching that block's header (all speculation undone).
	tip := e.issuer.Node().Tip()
	if tip.Header.Height != 2 {
		t.Fatalf("tip height %d after rollback, want 2", tip.Header.Height)
	}
	root, err := e.issuer.Node().State().Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if root != tip.Header.StateRoot {
		t.Fatalf("state root %s does not match certified tip %s after rollback", root, tip.Header.StateRoot)
	}
	// And the issuer keeps working sequentially from there.
	if _, _, err := e.issuer.ProcessBlock(blks[3]); err == nil {
		t.Fatal("stale block 4 must not certify on top of height 2")
	}
}

// TestPipelineAbortMidStream aborts a healthy pipeline and checks the replica
// lands on a certified prefix with no speculative residue.
func TestPipelineAbortMidStream(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	var blks []*chain.Block
	for i := 0; i < 6; i++ {
		blks = append(blks, e.mine(t, 5))
	}
	pl, err := NewPipeline(e.issuer, PipelineConfig{Workers: 2})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	var results []*PipelineResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for res := range pl.Results() {
			results = append(results, res)
		}
	}()
	for i, blk := range blks {
		if err := pl.Submit(blk); err != nil {
			t.Errorf("Submit(%d): %v", i, err)
		}
		if i == 2 {
			pl.Abort()
			break
		}
	}
	wg.Wait()
	if err := pl.Wait(); !errors.Is(err, ErrPipelineAborted) {
		t.Fatalf("want ErrPipelineAborted, got %v", err)
	}
	if err := pl.Submit(blks[4]); !errors.Is(err, ErrPipelineClosed) {
		t.Fatalf("Submit after abort: %v", err)
	}
	tip := e.issuer.Node().Tip()
	root, err := e.issuer.Node().State().Root()
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	if root != tip.Header.StateRoot {
		t.Fatalf("state root %s does not match certified tip %s after abort", root, tip.Header.StateRoot)
	}
	// Every certified prefix block verifies; the issuer resumes from the tip.
	for h := tip.Header.Height; h < uint64(len(blks)); h++ {
		if _, _, err := e.issuer.ProcessBlock(blks[h]); err != nil {
			t.Fatalf("resume at height %d: %v", h+1, err)
		}
	}
	if e.issuer.Node().Tip().Header.Height != uint64(len(blks)) {
		t.Fatal("issuer did not resume to the full chain")
	}
}

// TestPipelineExclusive: one pipeline at a time per issuer.
func TestPipelineExclusive(t *testing.T) {
	e := newEnv(t, workload.DoNothing, enclave.CostModel{})
	pl, err := NewPipeline(e.issuer, PipelineConfig{})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if _, err := NewPipeline(e.issuer, PipelineConfig{}); !errors.Is(err, ErrPipelineBusy) {
		t.Fatalf("want ErrPipelineBusy, got %v", err)
	}
	pl.Abort()
	pl2, err := NewPipeline(e.issuer, PipelineConfig{})
	if err != nil {
		t.Fatalf("NewPipeline after drain: %v", err)
	}
	pl2.Abort()
}

// TestCheckpointCertConsistency is the regression test for the tip/cert read
// skew: Checkpoint and LatestBundle used to read the store tip and the latest
// certificate without a common critical section, so a concurrent ProcessBlock
// could advance the tip between the two reads and pair block i's identity
// with block i-1's certificate — a checkpoint that ResumeIssuer then rejects.
// Readers hammer both accessors while the issuer certifies; every observed
// pair must be self-consistent (the cert's digest matches the checkpointed
// header). Run under -race this also proves the accesses are synchronized.
func TestCheckpointCertConsistency(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	const numBlocks = 12
	var blks []*chain.Block
	for i := 0; i < numBlocks; i++ {
		blks = append(blks, e.mine(t, 2))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var violations [2]int
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ckpt := e.issuer.Checkpoint(); ckpt != nil {
					blk, err := e.issuer.Node().Store().Get(ckpt.BlockHash)
					if err != nil || blk.Header.Height != ckpt.Height ||
						ckpt.Cert.Digest != BlockDigest(&blk.Header) {
						violations[r]++
						return
					}
				}
				if bundle := e.issuer.LatestBundle(); bundle != nil {
					if bundle.Cert.Digest != BlockDigest(bundle.Header) {
						violations[r]++
						return
					}
				}
			}
		}(r)
	}

	for i, blk := range blks {
		if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock(%d): %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	for r, v := range violations {
		if v != 0 {
			t.Fatalf("reader %d observed a tip/cert pair from different blocks", r)
		}
	}
}
