package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugServer exposes the instrumentation plane over HTTP:
//
//	/metrics       — the registry in Prometheus text exposition format
//	/debug/spans   — the tracer's recent spans as JSON (?limit=N)
//	/healthz       — liveness JSON (tip height + certificate freshness);
//	                 200 while healthy, 503 once the tip goes stale
//	/debug/pprof/  — the standard Go profiling endpoints
//
// It listens on its own mux (never the default one), supports ":0" for an
// ephemeral port, and Close releases the port synchronously — start/stop
// cycles do not leak listeners.

// Health is the /healthz payload.
type Health struct {
	// OK is the overall verdict (mirrored in the HTTP status).
	OK bool `json:"ok"`
	// TipHeight is the certified chain tip.
	TipHeight uint64 `json:"tip_height"`
	// CertAgeSeconds is how long ago the newest certificate landed
	// (negative when no certificate exists yet).
	CertAgeSeconds float64 `json:"cert_age_seconds"`
	// Detail carries an optional human-readable note.
	Detail string `json:"detail,omitempty"`
}

// DebugServerConfig assembles a DebugServer. Any nil field simply disables
// its endpoint's content (the route still responds).
type DebugServerConfig struct {
	// Registry feeds /metrics.
	Registry *Registry
	// Tracer feeds /debug/spans.
	Tracer *Tracer
	// Health feeds /healthz; nil reports a static OK.
	Health func() Health
	// Logger, when set, records serve lifecycle events.
	Logger *Logger
}

// DebugServer is a running debug endpoint.
type DebugServer struct {
	lis    net.Listener
	srv    *http.Server
	logger *Logger
	done   chan struct{}
}

// StartDebugServer listens on addr (host:port; port 0 picks a free one) and
// serves the debug endpoints until Close.
func StartDebugServer(addr string, cfg DebugServerConfig) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if s := r.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				limit = n
			}
		}
		spans := cfg.Tracer.Recent(limit)
		if spans == nil {
			spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Total uint64 `json:"total_recorded"`
			Spans []Span `json:"spans"`
		}{cfg.Tracer.Total(), spans})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{OK: true, Detail: "no health probe configured"}
		if cfg.Health != nil {
			h = cfg.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &DebugServer{
		lis:    lis,
		srv:    &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		logger: cfg.Logger,
		done:   make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			s.logger.Error("debug server stopped", ErrField(err))
		}
	}()
	s.logger.Info("debug server listening", F("addr", s.Addr()))
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// URL returns the server's base URL.
func (s *DebugServer) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close shuts the server down, releasing the port before returning. Safe on
// nil and safe to call twice.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close() // closes the listener and in-flight conns
	<-s.done
	return err
}
