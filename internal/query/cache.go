package query

import (
	"container/list"
	"sync"

	"dcert/internal/obs"
)

// ResponseCache is the SP's idempotent-response cache: a byte-bounded LRU
// with singleflight collapsing. It replaces the earlier fixed-entry FIFO,
// which had two serving-plane problems: entry-count bounds let a few huge
// proofs pin unbounded memory, and concurrent identical requests each
// recomputed the proof. Here the budget is bytes (key + response, honest
// accounting), eviction is least-recently-used so hot keys survive churn,
// and a cold key being computed parks identical callers on the first
// caller's flight instead of duplicating the work.
//
// ResponseCache is safe for concurrent use.
type ResponseCache struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	lru      *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight
	met      cacheObs
	gen      uint64 // bumped by Reset; in-flight results from older gens are not stored

	hitN, missN, collapsedN, evictedN uint64
}

// cacheEntry is one cached response; its cost is len(key)+len(resp).
type cacheEntry struct {
	key  string
	resp []byte
}

// flight is one in-progress computation that identical callers wait on.
type flight struct {
	done chan struct{}
	resp []byte
}

// CacheOutcome describes how Do satisfied a request.
type CacheOutcome int

const (
	// CacheComputed: this caller ran the computation.
	CacheComputed CacheOutcome = iota
	// CacheHit: the response was already cached.
	CacheHit
	// CacheCollapsed: an identical computation was in flight; this caller
	// waited on it instead of recomputing.
	CacheCollapsed
)

// DefaultCacheBytes is the default response-cache budget.
const DefaultCacheBytes = 4 << 20

// NewResponseCache creates a cache bounded to maxBytes of key+response
// payload (minimum 1; a non-positive value falls back to the default).
func NewResponseCache(maxBytes int) *ResponseCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &ResponseCache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the response for key, computing it at most once across all
// concurrent callers: a cached response is returned immediately (and
// refreshed in LRU order), an in-flight computation is joined, and only a
// cold key runs compute.
func (c *ResponseCache) Do(key string, compute func() []byte) ([]byte, CacheOutcome) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		resp := el.Value.(*cacheEntry).resp
		c.hitN++
		c.met.hits.Inc()
		c.mu.Unlock()
		return resp, CacheHit
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		c.mu.Lock()
		c.collapsedN++
		c.mu.Unlock()
		c.met.collapsed.Inc()
		return f.resp, CacheCollapsed
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.missN++
	c.met.misses.Inc()
	gen := c.gen
	c.mu.Unlock()

	f.resp = compute()

	c.mu.Lock()
	if c.inflight[key] == f {
		delete(c.inflight, key)
	}
	if c.gen == gen {
		c.insert(key, f.resp)
	}
	c.mu.Unlock()
	close(f.done)
	return f.resp, CacheComputed
}

// Reset empties the cache (cumulative stats survive). Serving planes whose
// responses are only valid at one height call this on every height advance:
// a proof cached against the old root must not be replayed once clients
// hold the new certified header. Computations already in flight when Reset
// runs still answer their waiting callers, but their results are not stored
// into the fresh generation.
func (c *ResponseCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
	c.curBytes = 0
	c.met.bytes.Set(0)
	c.met.entriesN.Set(0)
}

// Get returns the cached response for key without computing.
func (c *ResponseCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hitN++
	c.met.hits.Inc()
	return el.Value.(*cacheEntry).resp, true
}

// insert stores a response and evicts LRU entries past the byte budget.
// Callers hold c.mu.
func (c *ResponseCache) insert(key string, resp []byte) {
	if _, ok := c.entries[key]; ok {
		return
	}
	cost := len(key) + len(resp)
	if cost > c.maxBytes {
		return // larger than the whole budget: serve it, never cache it
	}
	for c.curBytes+cost > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, ev.key)
		c.curBytes -= len(ev.key) + len(ev.resp)
		c.evictedN++
		c.met.evictions.Inc()
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, resp: resp})
	c.curBytes += cost
	c.met.bytes.Set(int64(c.curBytes))
	c.met.entriesN.Set(int64(len(c.entries)))
}

// Bytes reports the cached payload size (keys + responses).
func (c *ResponseCache) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

// Len reports the number of cached responses.
func (c *ResponseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports cumulative cache outcomes since creation.
func (c *ResponseCache) Stats() (hits, misses, collapsed, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hitN, c.missN, c.collapsedN, c.evictedN
}

// cacheObs bundles the cache instruments (nil-safe until Instrument).
type cacheObs struct {
	hits      *obs.Counter
	misses    *obs.Counter
	collapsed *obs.Counter
	evictions *obs.Counter
	bytes     *obs.Gauge
	entriesN  *obs.Gauge
}

// Instrument attaches the cache to a metrics registry under an SP identity.
func (c *ResponseCache) Instrument(reg *obs.Registry, id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met = cacheObs{
		hits: reg.Counter("dcert_sp_cache_outcomes_total",
			"Response cache lookups by outcome.", obs.L("sp", id), obs.L("outcome", "hit")),
		misses: reg.Counter("dcert_sp_cache_outcomes_total",
			"Response cache lookups by outcome.", obs.L("sp", id), obs.L("outcome", "miss")),
		collapsed: reg.Counter("dcert_sp_cache_outcomes_total",
			"Response cache lookups by outcome.", obs.L("sp", id), obs.L("outcome", "collapsed")),
		evictions: reg.Counter("dcert_sp_cache_evictions_total",
			"Responses evicted to stay inside the byte budget.", obs.L("sp", id)),
		bytes: reg.Gauge("dcert_sp_cache_bytes",
			"Bytes of cached responses (keys + payloads).", obs.L("sp", id)),
		entriesN: reg.Gauge("dcert_sp_cache_entries",
			"Cached responses.", obs.L("sp", id)),
	}
}
