package storage

import (
	"fmt"

	"dcert/internal/chain"
	"dcert/internal/consensus"
	"dcert/internal/node"
	"dcert/internal/statedb"
	"dcert/internal/vm"
)

// ResumeConfig describes how to rebuild a full node from an engine's
// recovered chain.
type ResumeConfig struct {
	// Backend selects the state commitment structure.
	Backend statedb.BackendKind
	// Registry is the contract registry (shared across nodes).
	Registry *vm.Registry
	// Params are the consensus parameters.
	Params consensus.Params
	// GenesisState is the full key/value image at height 0, used when the
	// durable state image cannot be trusted and the chain must be replayed.
	GenesisState map[string][]byte
	// Restore re-journals replayed write sets into the engine's state WAL,
	// rebuilding durability as the replay proceeds. Set it on exactly one
	// resumed node per engine (the others share the recovered image without
	// touching the journal).
	Restore bool
}

// ResumeNode rebuilds a full node at the engine's recovered tip. The fast
// path loads the snapshot+WAL state image and links recovered blocks
// without re-execution; if the image does not reproduce the chain's state
// root commitment, the node falls back to replaying transactions from
// genesis (and, with Restore, re-journals the write sets so the next cold
// start is fast again). Call after Bootstrap.
func (e *Engine) ResumeNode(cfg ResumeConfig) (*node.FullNode, error) {
	if cfg.Backend == 0 {
		cfg.Backend = statedb.BackendMPT
	}
	e.mu.Lock()
	blocks := append([]*chain.Block(nil), e.blocks...)
	e.mu.Unlock()
	if len(blocks) == 0 {
		return nil, fmt.Errorf("storage: resume before bootstrap")
	}

	rec := e.rec
	if rec.State != nil && rec.StateHeight < uint64(len(blocks)) {
		n, err := e.resumeFast(cfg, blocks)
		if err == nil {
			return n, nil
		}
		// The image is unusable after all; fall through to full replay.
	}
	return e.resumeReplay(cfg, blocks)
}

// resumeFast builds the statedb from the recovered image and links blocks
// without re-execution, validating only blocks past the image height.
func (e *Engine) resumeFast(cfg ResumeConfig, blocks []*chain.Block) (*node.FullNode, error) {
	rec := e.rec
	db, err := statedb.NewWithBackend(cfg.Backend)
	if err != nil {
		return nil, err
	}
	for k, v := range rec.State {
		if err := db.Set([]byte(k), v); err != nil {
			return nil, err
		}
	}
	root, err := db.Root()
	if err != nil {
		return nil, err
	}
	m := rec.StateHeight
	if root != blocks[m].Header.StateRoot {
		return nil, fmt.Errorf("%w: state image root mismatch at height %d", ErrCorrupt, m)
	}
	n, err := node.ResumeFullNode(blocks[:m+1], db, cfg.Registry, cfg.Params)
	if err != nil {
		return nil, err
	}
	// Validate and apply any certified blocks past the image height.
	for _, blk := range blocks[m+1:] {
		writes, err := n.ValidateBlock(blk)
		if err != nil {
			return nil, fmt.Errorf("storage: resume validate height %d: %w", blk.Header.Height, err)
		}
		if _, err := n.State().Commit(writes); err != nil {
			return nil, err
		}
		if _, err := n.Store().Add(blk); err != nil {
			return nil, err
		}
		if cfg.Restore {
			if err := e.RestoreState(blk.Header.Height, blk.Header.StateRoot, writes); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}

// resumeReplay rebuilds the node by replaying every block's transactions
// from the genesis state — the slow, trust-nothing path.
func (e *Engine) resumeReplay(cfg ResumeConfig, blocks []*chain.Block) (*node.FullNode, error) {
	if cfg.Restore {
		// Re-root the journal at genesis so the replayed write sets form a
		// contiguous WAL on a complete base image.
		if err := e.resetState(cfg.GenesisState, blocks[0].Header.StateRoot); err != nil {
			return nil, err
		}
	}
	db, err := statedb.NewWithBackend(cfg.Backend)
	if err != nil {
		return nil, err
	}
	for k, v := range cfg.GenesisState {
		if err := db.Set([]byte(k), v); err != nil {
			return nil, err
		}
	}
	n, err := node.NewFullNode(blocks[0], db, cfg.Registry, cfg.Params)
	if err != nil {
		return nil, err
	}
	for _, blk := range blocks[1:] {
		writes, err := n.ValidateBlock(blk)
		if err != nil {
			return nil, fmt.Errorf("storage: resume replay height %d: %w", blk.Header.Height, err)
		}
		if _, err := n.State().Commit(writes); err != nil {
			return nil, err
		}
		if _, err := n.Store().Add(blk); err != nil {
			return nil, err
		}
		if cfg.Restore {
			if err := e.RestoreState(blk.Header.Height, blk.Header.StateRoot, writes); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}
