package fleet

import (
	"runtime"
	"sync/atomic"

	"dcert/internal/chain"
	"dcert/internal/obs"
	"dcert/internal/query"
)

// Replica is one serving shard: a full SP (own state replica and indexes)
// behind an epoch guard and a byte-bounded singleflight response cache.
//
// The epoch discipline makes reads lock-free against an immutable
// per-height view: readers acquire the current epoch with an atomic
// load + refcount (no mutex on the read path), and the writer advances
// heights by first swapping in a new *unready* epoch — parking new readers
// on its ready channel — then draining the old epoch's readers to zero,
// mutating the SP, re-sealing it (pre-hashing every lazily-hashed
// structure so reads stay pure), and finally opening the new epoch. At any
// instant every active reader sees one fully-hashed height; a query never
// observes a half-applied block.
type Replica struct {
	name  string
	cur   atomic.Pointer[epoch]
	cache *query.ResponseCache
	met   replicaObs
}

// epoch guards one sealed height of the replica's SP.
type epoch struct {
	sp      *query.ServiceProvider
	readers atomic.Int64
	ready   chan struct{} // closed once the height is sealed
}

// NewReplica wraps a freshly built SP as a serving shard. The SP must not
// be used directly afterwards — all access goes through the replica.
func NewReplica(name string, sp *query.ServiceProvider, cacheBytes int) (*Replica, error) {
	if err := sp.Seal(); err != nil {
		return nil, err
	}
	ep := &epoch{sp: sp, ready: make(chan struct{})}
	close(ep.ready)
	r := &Replica{name: name, cache: query.NewResponseCache(cacheBytes)}
	r.cur.Store(ep)
	return r, nil
}

// Name returns the replica's router identity.
func (r *Replica) Name() string {
	return r.name
}

// Cache exposes the replica's response cache.
func (r *Replica) Cache() *query.ResponseCache {
	return r.cache
}

// acquire pins the current epoch for reading, waiting out an in-progress
// height advance. The increment-then-recheck loop closes the race with a
// concurrent writer swap: if the epoch pointer moved between load and
// increment, the refcount touched a retired epoch (harmless) and the reader
// retries on the fresh one.
func (r *Replica) acquire() *epoch {
	for {
		ep := r.cur.Load()
		ep.readers.Add(1)
		if r.cur.Load() == ep {
			<-ep.ready
			return ep
		}
		ep.readers.Add(-1)
	}
}

// ProcessBlock advances the replica one height. Callers must serialize
// ProcessBlock (one block pipeline per deployment); queries may run
// concurrently throughout.
func (r *Replica) ProcessBlock(blk *chain.Block) error {
	old := r.cur.Load()
	next := &epoch{sp: old.sp, ready: make(chan struct{})}
	r.cur.Store(next)
	// Drain readers still inside the old epoch before mutating under them.
	for old.readers.Load() > 0 {
		runtime.Gosched()
	}
	err := old.sp.ProcessBlock(blk)
	if err == nil {
		err = old.sp.Seal()
		// Cached responses prove against the pre-block roots; flush them so
		// the new height never replays a stale proof.
		r.cache.Reset()
	}
	close(next.ready) // even on error: serve the last good height
	return err
}

// Execute answers one request against the replica's current sealed height,
// collapsing concurrent identical questions (by semantic key, ignoring the
// per-attempt request ID) onto one computation.
func (r *Replica) Execute(req *query.Request) *query.Response {
	r.met.served.Inc()
	raw, _ := r.cache.Do(req.SemanticKey(), func() []byte {
		ep := r.acquire()
		defer ep.readers.Add(-1)
		canon := *req
		canon.ID = 0
		return query.Execute(ep.sp, &canon).Marshal()
	})
	resp, err := query.UnmarshalResponse(raw)
	if err != nil {
		// Impossible for bytes we just marshaled; fail loudly per request.
		return &query.Response{ID: req.ID, Err: "fleet: corrupt cached response"}
	}
	resp.ID = req.ID
	return resp
}

// Tip returns the replica's current chain tip header, pinned to a sealed
// epoch.
func (r *Replica) Tip() *chain.Header {
	ep := r.acquire()
	defer ep.readers.Add(-1)
	hdr := ep.sp.Node().Tip().Header
	return &hdr
}

// replicaObs bundles per-replica serving instruments.
type replicaObs struct {
	served     *obs.Counter
	queueDepth *obs.Gauge
}

// Instrument attaches the replica (and its cache) to a metrics registry.
func (r *Replica) Instrument(reg *obs.Registry) {
	r.met = replicaObs{
		served: reg.Counter("dcert_fleet_requests_total",
			"Requests served by this replica.", obs.L("replica", r.name)),
		queueDepth: reg.Gauge("dcert_fleet_queue_depth",
			"Requests waiting in this replica's serving queue.", obs.L("replica", r.name)),
	}
	r.cache.Instrument(reg, r.name)
}
