package core

import (
	"errors"
	"testing"

	"dcert/internal/enclave"
	"dcert/internal/workload"
)

// certifyBlocks mines and certifies n blocks on the env's issuer.
func certifyBlocks(t *testing.T, e *env, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		blk := e.mine(t, 4)
		if _, _, err := e.issuer.ProcessBlock(blk); err != nil {
			t.Fatalf("ProcessBlock(%d): %v", i, err)
		}
	}
}

func TestIssuerCheckpointMarshalRoundTrip(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	if ckpt := e.issuer.Checkpoint(); ckpt != nil {
		t.Fatalf("checkpoint before any certification: %+v", ckpt)
	}
	certifyBlocks(t, e, 3)

	ckpt := e.issuer.Checkpoint()
	if ckpt == nil || ckpt.Height != 3 {
		t.Fatalf("checkpoint = %+v", ckpt)
	}
	parsed, err := UnmarshalIssuerCheckpoint(ckpt.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalIssuerCheckpoint: %v", err)
	}
	if parsed.Height != ckpt.Height || parsed.BlockHash != ckpt.BlockHash || parsed.Cert.Digest != ckpt.Cert.Digest {
		t.Fatalf("round trip mismatch: %+v vs %+v", parsed, ckpt)
	}
	if _, err := UnmarshalIssuerCheckpoint([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error for garbage checkpoint")
	}
}

// TestIssuerCrashRestartResumesFromCheckpoint is the recovery contract: a
// restarted CI adopts the persisted certificate and continues the recursion
// from the crash point — its fresh enclave performs zero Ecalls for already
// certified history (it never re-executes certification from genesis), and
// clients accept its certificates after one new attestation check.
func TestIssuerCrashRestartResumesFromCheckpoint(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	client := e.client()
	certifyBlocks(t, e, 4)
	hdr := e.issuer.Node().Tip().Header
	if err := client.ValidateChain(&hdr, e.issuer.LatestCert()); err != nil {
		t.Fatalf("pre-crash ValidateChain: %v", err)
	}
	oldKey := string(e.issuer.Enclave().PublicKey().Marshal())

	// Persist the checkpoint, then "crash": the enclave (and its sealed key)
	// is gone; the full-node replica and the checkpoint bytes survive.
	raw := e.issuer.Checkpoint().Marshal()
	survivingNode := e.issuer.Node()
	e.issuer = nil

	ckpt, err := UnmarshalIssuerCheckpoint(raw)
	if err != nil {
		t.Fatalf("UnmarshalIssuerCheckpoint: %v", err)
	}
	platform, err := e.authority.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	resumed, err := ResumeIssuer(survivingNode, e.authority, platform, enclave.CostModel{}, ckpt)
	if err != nil {
		t.Fatalf("ResumeIssuer: %v", err)
	}
	if got := resumed.Enclave().Stats().Ecalls; got != 0 {
		t.Fatalf("restart performed %d Ecalls before any new block — it re-certified history", got)
	}
	if string(resumed.Enclave().PublicKey().Marshal()) == oldKey {
		t.Fatal("restarted enclave must generate a fresh sealed key")
	}

	// Certification resumes from the checkpoint: the next block's enclave
	// call verifies the predecessor's certificate and extends the chain.
	e.issuer = resumed
	blk := e.mine(t, 4)
	cert, _, err := resumed.ProcessBlock(blk)
	if err != nil {
		t.Fatalf("post-restart ProcessBlock: %v", err)
	}
	if blk.Header.Height != 5 {
		t.Fatalf("post-restart block height = %d, want 5", blk.Header.Height)
	}
	if got := resumed.Enclave().Stats().Ecalls; got != 1 {
		t.Fatalf("one new block cost %d Ecalls, want exactly 1", got)
	}
	// The client crosses enclave instances transparently: same measurement,
	// one fresh attestation-report check for the new key.
	if err := client.ValidateChain(&blk.Header, cert); err != nil {
		t.Fatalf("ValidateChain across restart: %v", err)
	}
}

func TestResumeIssuerRejectsBadCheckpoints(t *testing.T) {
	e := newEnv(t, workload.KVStore, enclave.CostModel{})
	certifyBlocks(t, e, 2)
	stale := e.issuer.Checkpoint()
	certifyBlocks(t, e, 2) // tip moves past the stale checkpoint

	platform, err := e.authority.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	n := e.issuer.Node()

	if _, err := ResumeIssuer(n, e.authority, platform, enclave.CostModel{}, stale); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("stale checkpoint: want ErrBadCheckpoint, got %v", err)
	}
	if _, err := ResumeIssuer(n, e.authority, platform, enclave.CostModel{}, nil); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("nil checkpoint past genesis: want ErrBadCheckpoint, got %v", err)
	}

	tampered := e.issuer.Checkpoint()
	sig := append([]byte(nil), tampered.Cert.Sig...)
	sig[0] ^= 0xFF
	tampered.Cert = &Certificate{
		PubKey: tampered.Cert.PubKey,
		Report: tampered.Cert.Report,
		Digest: tampered.Cert.Digest,
		Sig:    sig,
	}
	if _, err := ResumeIssuer(n, e.authority, platform, enclave.CostModel{}, tampered); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("tampered checkpoint: want ErrBadCheckpoint, got %v", err)
	}
}
