package mpt

import (
	"fmt"
	"sort"

	"dcert/internal/chash"
)

// Witness is a set of content-addressed node encodings: a partial trie
// sufficient to replay Get (and non-deleting Put) for the keys it was
// extracted for. Because nodes are addressed by the hash of their bytes, a
// witness cannot equivocate: tampered bytes simply fail to resolve.
//
// Witness is the DCert update proof π_i = ({r}, π_r, π_w) carrier: the CI
// extracts it outside the enclave and the enclave replays reads and state
// updates against it (Alg. 1 line 3, Alg. 2 lines 17 and 22-23).
type Witness struct {
	nodes map[chash.Hash][]byte
}

var _ Resolver = (*Witness)(nil)

// NewWitness returns an empty witness.
func NewWitness() *Witness {
	return &Witness{nodes: make(map[chash.Hash][]byte)}
}

// Node implements Resolver.
func (w *Witness) Node(h chash.Hash) ([]byte, error) {
	raw, ok := w.nodes[h]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrMissingNode, h)
	}
	return raw, nil
}

// add stores a node encoding under its content hash.
func (w *Witness) add(raw []byte) {
	h := chash.Sum(chash.DomainNode, raw)
	if _, ok := w.nodes[h]; ok {
		return
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	w.nodes[h] = cp
}

// Merge copies all nodes from other into w.
func (w *Witness) Merge(other *Witness) {
	for h, raw := range other.nodes {
		if _, ok := w.nodes[h]; !ok {
			w.nodes[h] = raw
		}
	}
}

// Len returns the number of distinct nodes.
func (w *Witness) Len() int {
	return len(w.nodes)
}

// EncodedSize returns the serialized size in bytes (the proof-size metric).
func (w *Witness) EncodedSize() int {
	size := 4
	for _, raw := range w.nodes {
		size += 4 + len(raw)
	}
	return size
}

// Marshal serializes the witness deterministically (nodes sorted by hash).
func (w *Witness) Marshal() []byte {
	hashes := make([]chash.Hash, 0, len(w.nodes))
	for h := range w.nodes {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		return string(hashes[i][:]) < string(hashes[j][:])
	})
	e := chash.NewEncoder(w.EncodedSize())
	e.PutUint32(uint32(len(hashes)))
	for _, h := range hashes {
		e.PutBytes(w.nodes[h])
	}
	return e.Bytes()
}

// UnmarshalWitness parses a witness produced by Marshal. Node hashes are
// recomputed from the bytes, so a corrupted witness yields unusable (not
// wrong) nodes.
func UnmarshalWitness(raw []byte) (*Witness, error) {
	d := chash.NewDecoder(raw)
	n, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("mpt: unmarshal witness: %w", err)
	}
	w := NewWitness()
	for i := uint32(0); i < n; i++ {
		nodeRaw, err := d.ReadBytes()
		if err != nil {
			return nil, fmt.Errorf("mpt: unmarshal witness node %d: %w", i, err)
		}
		w.add(nodeRaw)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("mpt: unmarshal witness: %w", err)
	}
	return w, nil
}

// WitnessForKeys extracts the nodes along the lookup paths of all keys. The
// resulting witness supports, on a partial trie with the same root:
//
//   - Get for every listed key (membership and proven absence), and
//   - Put for every listed key (inserts restructure only path nodes).
//
// Deletions may need extra sibling nodes and are not guaranteed to replay.
func (t *Trie) WitnessForKeys(keys [][]byte) (*Witness, error) {
	if _, err := t.Hash(); err != nil {
		return nil, fmt.Errorf("mpt: hash before witness: %w", err)
	}
	w := NewWitness()
	for _, key := range keys {
		if err := t.witnessWalk(t.root, keyToNibbles(key), w); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func (t *Trie) witnessWalk(n node, path []byte, w *Witness) error {
	if n == nil {
		return nil
	}
	resolved, err := t.resolve(n)
	if err != nil {
		return err
	}
	n = resolved
	raw, err := encodeNode(n)
	if err != nil {
		return err
	}
	w.add(raw)
	switch v := n.(type) {
	case *leafNode:
		return nil
	case *extNode:
		if len(path) < len(v.path) || commonPrefixLen(v.path, path) != len(v.path) {
			return nil // divergence: path ends here
		}
		return t.witnessWalk(v.child, path[len(v.path):], w)
	case *branchNode:
		if len(path) == 0 {
			return nil
		}
		return t.witnessWalk(v.children[path[0]], path[1:], w)
	default:
		return fmt.Errorf("mpt: witness walk on unexpected node %T", n)
	}
}

// Prove returns a single-key membership/absence proof (a witness of the
// key's path). Verify with VerifyProof.
func (t *Trie) Prove(key []byte) (*Witness, error) {
	return t.WitnessForKeys([][]byte{key})
}

// VerifyProof checks a single-key proof against a trie root. It returns the
// proven value (nil for proven absence). Any missing or tampered node yields
// an error instead.
func VerifyProof(root chash.Hash, key []byte, proof *Witness) ([]byte, error) {
	pt := NewPartial(root, proof)
	return pt.Get(key)
}
